//go:build !race

package shadow_test

const raceEnabled = false
