module shadow

go 1.22
