//go:build race

package shadow_test

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation multiplies the cost of every mutex operation and
// makes wall-clock overhead measurements meaningless.
const raceEnabled = true
