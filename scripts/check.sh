#!/usr/bin/env bash
# check.sh — the repository's full verification gate, as run in CI and by
# `make verify`: formatting, go vet, the shadowvet static-analysis suite
# (simulator determinism + DRAM-protocol invariants), the build, and the
# test suite under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l cmd internal examples ./*.go)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

# The -json report and the SARIF log are kept as CI artifacts so a reviewer
# can diff findings across runs (and a forge can render inline annotations)
# without re-running the suite. shadowvet exits non-zero on any finding,
# which aborts the gate via set -e; tee still leaves the report behind for
# inspection. The full-tree pass is also held to a wall-clock budget in a
# non-fatal warning lane below: the suite now builds a module-wide call
# graph (allocflow/detflow), and lint latency creeping past the budget must
# be visible without blocking correctness fixes.
echo "==> shadowvet"
SHADOWVET_BUDGET_SECONDS=${SHADOWVET_BUDGET_SECONDS:-120}
shadowvet_start=$(date +%s)
go run ./cmd/shadowvet -json ./... | tee shadowvet-report.json
go run ./cmd/shadowvet -sarif ./... > shadowvet.sarif
shadowvet_elapsed=$(( $(date +%s) - shadowvet_start ))
echo "shadowvet: full-tree pass (json + sarif) took ${shadowvet_elapsed}s (budget ${SHADOWVET_BUDGET_SECONDS}s)"
if [ "$shadowvet_elapsed" -gt "$SHADOWVET_BUDGET_SECONDS" ]; then
    echo "WARNING: shadowvet wall clock ${shadowvet_elapsed}s exceeds the ${SHADOWVET_BUDGET_SECONDS}s lint budget (non-fatal; profile the analyzers or the call-graph build)" >&2
fi

# The span tracker sits on the memory controller's critical path; gate it
# explicitly so a future package move can't silently drop it from the
# determinism analyzer's restricted set.
echo "==> shadowvet (span tracker)"
go run ./cmd/shadowvet ./internal/obs/span

# The flight recorder is teed into the same hot path (every DRAM command
# passes through Ring.Record); hold it to the same explicit gate.
echo "==> shadowvet (flight recorder)"
go run ./cmd/shadowvet ./internal/obs/flight

# The fleet aggregator renders merged expositions that must be byte-identical
# across renders (determinism) and is fed concurrently from sweep workers,
# the scrape poller, and HTTP handlers (nilguard/sharedflow); gate it by name
# so a package move can't silently drop it from the registries.
echo "==> shadowvet (fleet aggregator)"
go run ./cmd/shadowvet ./internal/obs/fleet

# The fleet collector is the one component whose whole job is cross-goroutine
# merging; its tests run under the race detector on their own lane so a
# synchronization regression there fails loudly and fast.
echo "==> go test -race (fleet collector)"
go test -race ./internal/obs/fleet

# Self-check: the analyzer framework — including the cfg package the
# flow-sensitive analyzers are built on — must pass its own suite. Gated
# by name so a refactor of internal/analysis can't waive itself out.
echo "==> shadowvet (self-check)"
go run ./cmd/shadowvet ./internal/analysis/...

# Static concurrency checking (lockflow/goroleak/sharedflow above) and
# dynamic checking gate together: a fast, focused race lane over the
# packages that actually spawn goroutines (the exp sweep workers, the obs
# inspector serving HTTP during a run) runs before the full race sweep at
# the end, so concurrency regressions fail in seconds, not minutes.
echo "==> go test -race (concurrency-focused lane)"
go test -race ./internal/exp/... ./internal/obs/...

# examples/ is built but (deliberately) excluded from layering: it sits above
# internal/ like cmd/. Gate it explicitly so the demos keep passing the rest
# of the suite — panic messages, command-error handling, lock hygiene.
echo "==> shadowvet (examples)"
go run ./cmd/shadowvet ./examples/...

# The scheduler matrix — {event-cache, full-rescan} x {event-wheel,
# per-tick} — must stay bit-identical to the retained double-oracle
# (full-rescan + per-tick) for every mitigation scheme (Stats, flips, span
# blame, command log). The suite runs inside `go test ./...` too; gating it
# by name keeps the contract visible and the failure mode unambiguous when
# someone touches the readiness cache or a readiness lower bound.
echo "==> scheduler equivalence (2x2 matrix)"
go test -run 'TestSchedulerEquivalence' ./internal/sim/

echo "==> go test -race"
go test -race ./...

# The telemetry overhead budget is a wall-clock gate; race-detector
# instrumentation multiplies mutex cost, so it self-skips above and is
# enforced here on the uninstrumented build.
echo "==> telemetry overhead budget"
go test -run 'TestTelemetryOverheadBudget' -v . | grep -E 'overhead|PASS|FAIL|ok '

# Perf-trajectory warning lane (non-fatal): one quick pass over the headline
# scheduler benchmarks, compared against the committed BENCH_history.jsonl.
# A >10% ns/op regression prints a warning and keeps the gate green — perf
# noise must not block correctness fixes, but it must be visible. The run
# appends nothing (-history '') so the committed trajectory only grows via
# `make bench`.
if [ -f BENCH_history.jsonl ]; then
    echo "==> bench trajectory (warning lane)"
    go test -bench 'BenchmarkSim/shadow/' -benchtime 1x -benchmem -run '^$' . |
        go run ./cmd/shadowbench -o /dev/null -no-sims -history '' -against BENCH_history.jsonl ||
        echo "WARNING: benchmark regression vs BENCH_history.jsonl (non-fatal; see above)" >&2
fi

echo "OK"
