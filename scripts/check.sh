#!/usr/bin/env bash
# check.sh — the repository's full verification gate, as run in CI and by
# `make verify`: formatting, go vet, the shadowvet static-analysis suite
# (simulator determinism + DRAM-protocol invariants), the build, and the
# test suite under the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> shadowvet"
go run ./cmd/shadowvet ./...

# The span tracker sits on the memory controller's critical path; gate it
# explicitly so a future package move can't silently drop it from the
# determinism analyzer's restricted set.
echo "==> shadowvet (span tracker)"
go run ./cmd/shadowvet ./internal/obs/span

echo "==> go test -race"
go test -race ./...

echo "OK"
