# Developer entry points. `make verify` is the full gate every PR must pass.

.PHONY: build test race vet fmt bench verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go run ./cmd/shadowvet ./...

fmt:
	gofmt -w cmd internal examples bench_test.go

# One pass over every benchmark as a smoke test. For real measurements run
# with -count=10 and compare with benchstat (see README "Observability &
# profiling").
bench:
	go test -bench . -benchtime 1x -run '^$$' ./...

verify:
	./scripts/check.sh
