# Developer entry points. `make verify` is the full gate every PR must pass.

.PHONY: build test race race-focused vet lint fmt bench verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# The concurrency-focused race lane: just the packages that spawn
# goroutines (exp sweep workers, the obs inspector). Pairs with the
# static concurrency analyzers (lockflow/goroleak/sharedflow) in `make
# lint` — run both when touching anything concurrent.
race-focused:
	go test -race ./internal/exp/... ./internal/obs/...

vet:
	go vet ./...
	go run ./cmd/shadowvet ./...

# shadowvet alone, for fast iteration on analyzer findings; `make vet` runs
# it behind go vet, `make verify` behind the whole gate.
lint:
	go run ./cmd/shadowvet ./...

fmt:
	gofmt -w cmd internal examples ./*.go

# Three passes over every benchmark as a smoke test, plus a machine-readable
# report ($(BENCH_OUT)): shadowbench echoes the benchmark output through
# and appends headline per-scheme simulation stats with the shadowtap blame
# split. -benchmem feeds allocs/op into the report so the zero-alloc hot
# path is pinned by data, not just by the regression tests. -benchtime 3x keeps the
# single-iteration noise of the heavyweight BenchmarkSim lanes out of the
# trajectory (ns/op is still the per-iteration average). Each run also
# appends one line to BENCH_history.jsonl (git rev + every benchmark), the
# trajectory scripts/check.sh warns against. Set BENCH_BEFORE=<prior
# report.json> to embed before/after comparisons (speedup, alloc reduction)
# against an earlier run. For real measurements run with -count=10 and
# compare with benchstat (see README "Observability & profiling").
BENCH_OUT ?= BENCH_pr10.json
bench:
	go test -bench . -benchmem -benchtime 3x -run '^$$' ./... | \
		go run ./cmd/shadowbench -o $(BENCH_OUT) $(if $(BENCH_BEFORE),-before $(BENCH_BEFORE))

verify:
	./scripts/check.sh
