# Developer entry points. `make verify` is the full gate every PR must pass.

.PHONY: build test race vet fmt verify

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

vet:
	go vet ./...
	go run ./cmd/shadowvet ./...

fmt:
	gofmt -w cmd internal examples bench_test.go

verify:
	./scripts/check.sh
