// Attack: mount classic Row Hammer attacks against an unprotected DRAM
// device and against a SHADOW-protected one, and watch what happens to the
// victim rows' data.
//
//	go run ./examples/attack
package main

import (
	"fmt"
	"log"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func main() {
	const (
		hcnt   = 1024 // a very vulnerable part, to keep the demo fast
		raaimt = 32
		budget = 64 * 1024 // attacker activations
	)
	geo := dram.TestGeometry()
	geo.RowsPerSubarray = 128
	geo.RowBytes = 256 // the remapping table must fit in one row
	victim := geo.RowsPerSubarray / 2

	patterns := []struct {
		name string
		pat  trace.Pattern
	}{
		{"single-sided", &trace.SingleSided{Bank: 0, Row: victim}},
		{"double-sided", &trace.DoubleSided{Bank: 0, Victim: victim}},
		{"blast (d=2)", trace.Blast(0, victim, 2)}, // non-adjacent blast-attack
	}

	fmt.Printf("Row Hammer attack demo — H_cnt %d, blast radius 3, %d ACT budget\n\n", hcnt, budget)
	fmt.Printf("%-14s  %-22s  %-22s\n", "pattern", "unprotected", "SHADOW (RAAIMT 32)")

	for _, p := range patterns {
		plain := runOne(geo, hcnt, raaimt, false, clonePattern(p.pat, victim))
		prot := runOne(geo, hcnt, raaimt, true, clonePattern(p.pat, victim))
		fmt.Printf("%-14s  %-22s  %-22s\n", p.name,
			describe(plain), describe(prot))
	}

	fmt.Println("\nSHADOW's shuffle relocates the aggressor: the attacker keeps hammering")
	fmt.Println("the same physical address, but its data — and therefore the disturbance")
	fmt.Println("it causes — keeps moving to fresh, fully charged neighborhoods.")
}

func clonePattern(p trace.Pattern, victim int) trace.Pattern {
	// Patterns are stateful; build a fresh one per run.
	switch v := p.(type) {
	case *trace.SingleSided:
		return &trace.SingleSided{Bank: v.Bank, Row: v.Row}
	case *trace.DoubleSided:
		return &trace.DoubleSided{Bank: v.Bank, Victim: v.Victim}
	case *trace.ManySided:
		return &trace.ManySided{Bank: v.Bank, Rows: append([]int(nil), v.Rows...)}
	}
	return p
}

func runOne(geo dram.Geometry, hcnt, raaimt int, protected bool, pat trace.Pattern) *sim.AttackResult {
	params := timing.NewParams(timing.DDR4_2666)
	var mit dram.Mitigator
	if protected {
		params = params.WithShadow(circuit.DefaultShadowTimings(params)).WithRAAIMT(raaimt)
		mit = shadow.New(shadow.Options{Seed: 7})
	}
	res, err := sim.RunAttack(sim.AttackConfig{
		Params:    params,
		Geometry:  geo,
		Hammer:    hammer.Config{HCnt: hcnt, BlastRadius: 3},
		DeviceMit: mit,
		MaxActs:   64 * 1024,
		Duration:  timing.Forever / 2,
	}, pat)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func describe(r *sim.AttackResult) string {
	if r.Flips == 0 {
		return fmt.Sprintf("0 flips in %d ACTs", r.Acts)
	}
	return fmt.Sprintf("%d bit flips", r.Flips)
}
