// Templating: show why memory templating — the reconnaissance phase of every
// precision Row Hammer attack — fails against SHADOW (Sections II-C, III-A).
//
// An attacker first builds a *template*: a map of which physical addresses
// are DRAM-adjacent, obtained by timing side channels or reverse
// engineering. Against a static mapping the template stays valid forever.
// SHADOW shuffles rows on every RFM, so the template rots while the attacker
// is still using it.
//
//	go run ./examples/templating
package main

import (
	"fmt"
	"log"
	"strings"

	"shadow/internal/security"
)

func main() {
	points, err := security.MeasureTemplatingDecay(security.TemplatingConfig{
		RowsPerSubarray: 128,
		RAAIMT:          32,
		Checkpoints:     []int64{0, 8, 16, 32, 64, 128, 256, 512},
		Seed:            2023,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Template validity under SHADOW (128-row subarray, RAAIMT 32)")
	fmt.Println("fraction of initially adjacent PA pairs still physically adjacent:")
	fmt.Println()
	for _, p := range points {
		bar := strings.Repeat("#", int(p.ValidFraction*50+0.5))
		fmt.Printf("%5d shuffles  %5.1f%%  %s\n", p.Shuffles, p.ValidFraction*100, bar)
	}
	fmt.Println()
	fmt.Println("Each shuffle takes one RFM (every RAAIMT = 32 activations), so a busy")
	fmt.Println("subarray invalidates an attacker's template in well under a millisecond —")
	fmt.Println("before a templated double-sided attack can accumulate even a fraction of")
	fmt.Println("H_cnt activations. This is the paper's Section III-A argument: known")
	fmt.Println("precision attacks need adjacency knowledge that SHADOW keeps destroying.")
}
