// Blastradius: demonstrate why non-adjacent (blast) Row Hammer attacks break
// TRR-based defenses but not SHADOW (Sections III-A and VII).
//
// A TRR defense refreshes the aggressor's neighbors out to the radius it was
// designed for. A blast-attack hammers from *outside* that assumption using
// distance-2 aggressors, whose disturbance still reaches the victim at half
// weight. SHADOW does not chase victims at all — it relocates aggressors —
// so the radius does not matter.
//
//	go run ./examples/blastradius
package main

import (
	"fmt"
	"log"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func main() {
	const (
		hcnt   = 1024
		raaimt = 32
		budget = 96 * 1024
	)
	geo := dram.TestGeometry()
	geo.RowsPerSubarray = 128
	geo.RowBytes = 256
	victim := geo.RowsPerSubarray / 2

	fmt.Printf("blast-attack sweep — H_cnt %d, device blast radius 3, %d ACTs\n\n", hcnt, budget)
	fmt.Printf("%-20s  %-12s  %-16s  %-12s\n", "attack distance", "unprotected", "TRR (radius 1)", "SHADOW")

	for dist := 1; dist <= 3; dist++ {
		pat := func() trace.Pattern { return trace.Blast(0, victim, dist) }

		base := run(geo, hcnt, raaimt, nil, pat())
		// A narrow TRR defense sized for adjacent-only attacks: this is the
		// "vanilla" configuration blast-attacks were designed to evade.
		trr := run(geo, hcnt, raaimt, mitigate.NewPARFM(1, 5), pat())
		sh := run(geo, hcnt, raaimt, shadow.New(shadow.Options{Seed: 5}), pat())

		fmt.Printf("aggressors at ±%d     %-12s  %-16s  %-12s\n",
			dist, flips(base), flips(trr), flips(sh))
	}

	fmt.Println("\nEven for adjacent attacks, disturbance reaches distance-2/3 victims that a")
	fmt.Println("radius-1 TRR never refreshes, so it only reduces flips — and wider attacks")
	fmt.Println("make it worse. Widening TRR costs extra refreshes per RFM and a lower")
	fmt.Println("RAAIMT (Figure 10); SHADOW stays at zero flips at every distance with")
	fmt.Println("unchanged cost, because it relocates aggressors instead of chasing victims.")
}

func run(geo dram.Geometry, hcnt, raaimt int, mit dram.Mitigator, pat trace.Pattern) *sim.AttackResult {
	params := timing.NewParams(timing.DDR4_2666).WithRAAIMT(raaimt)
	if _, ok := mit.(*shadow.Controller); ok {
		params = params.WithShadow(circuit.DefaultShadowTimings(params))
	}
	res, err := sim.RunAttack(sim.AttackConfig{
		Params:    params,
		Geometry:  geo,
		Hammer:    hammer.Config{HCnt: hcnt, BlastRadius: 3},
		DeviceMit: mit,
		MaxActs:   96 * 1024,
		Duration:  timing.Forever / 2,
	}, pat)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func flips(r *sim.AttackResult) string {
	if r.Flips == 0 {
		return "0 flips"
	}
	return fmt.Sprintf("%d flips", r.Flips)
}
