// Quickstart: build a SHADOW-protected DDR5 memory system, run a
// multiprogrammed workload through it, and print what the mitigation did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func main() {
	// 1. Timing: DDR5-4800 with the SHADOW additions from the circuit model
	//    (tRCD' = tRCD + tRD_RM) and the secure RFM rate for H_cnt = 4K.
	base := timing.NewParams(timing.DDR5_4800)
	params := base.WithShadow(circuit.DefaultShadowTimings(base)).WithRAAIMT(64)

	// 2. The SHADOW controller: remapping rows, subarray pairing, PRINCE
	//    CSPRNG — installed as the device's mitigator.
	ctrl := shadow.New(shadow.Options{Seed: 42})

	// 3. A four-core memory-intensive workload.
	geo := dram.DefaultGeometry(true)
	geo.SubarraysPerBank = 16 // keep the example light
	workload := trace.Generators(trace.MixHigh(4), geo, 1)

	res, err := sim.Run(sim.Config{
		Params:    params,
		Geometry:  geo,
		Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
		DeviceMit: ctrl,
		Workload:  workload,
		Duration:  200 * timing.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SHADOW quickstart — DDR5-4800, H_cnt 4K, RAAIMT 64")
	fmt.Printf("simulated %v with %d cores (mix-high)\n\n", res.Duration, len(res.IPC))
	for i, ipc := range res.IPC {
		fmt.Printf("  core %d: %.2f instructions/ns\n", i, ipc)
	}
	fmt.Printf("\nmemory controller: %d ACTs, %d RFM commands, %d refreshes\n",
		res.MC.Acts, res.MC.RFMs, res.MC.Refs)
	fmt.Printf("SHADOW controller: %d row-shuffles (%d in-DRAM row copies), %d incremental refreshes\n",
		ctrl.Stats.Shuffles, res.Dev.RowCopies, ctrl.Stats.IncRefreshes)
	fmt.Printf("remapping-row reads (one per ACT): %d\n", ctrl.Stats.RemapReads)
	fmt.Printf("Row Hammer bit flips: %d\n", res.Flips)

	// Show that the PA-to-DA mapping really changed: after the run, shuffled
	// rows no longer live at their power-on device addresses.
	moved := 0
	total := 0
	for bank := 0; bank < geo.Banks; bank++ {
		b := res.Device.Bank(bank)
		for sub := 0; sub < geo.SubarraysPerBank; sub++ {
			for idx, da := range ctrl.MappingOf(b, sub) {
				total++
				if da != idx {
					moved++
				}
			}
		}
	}
	fmt.Printf("\ndynamic remapping: %d of %d logical rows no longer at their power-on location\n", moved, total)
	fmt.Printf("data transparency: PA row 0 corrupted bits = %d (always 0: shuffles move data with the mapping)\n",
		res.Device.CorruptedBitsPA(0, 0))
}
