// Compare: run one memory-intensive workload under every mitigation scheme
// the paper evaluates and print the relative performance — a miniature of
// Figures 8 and 11.
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"shadow/internal/exp"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func main() {
	o := exp.RunOpts{
		Duration: 400 * timing.Microsecond,
		Warmup:   timing.Millisecond, // let trackers/filters reach steady state
		Cores:    4,
		Seed:     11,
	}
	workload := trace.MixHigh(o.Cores)

	fmt.Println("mix-high (4 cores), DDR5-4800 — normalized weighted speedup vs no mitigation")
	fmt.Printf("%-14s", "scheme")
	hcnts := []int{8192, 4096, 2048}
	for _, h := range hcnts {
		fmt.Printf("  Hcnt=%-6d", h)
	}
	fmt.Println()

	for _, s := range exp.AllSchemes {
		fmt.Printf("%-14s", s)
		for _, h := range hcnts {
			pt := exp.Point{Scheme: s, HCnt: h, Grade: timing.DDR5_4800, Seed: o.Seed}
			ws, _, err := exp.RunPoint(pt, workload, o)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.3f      ", ws)
		}
		fmt.Println()
	}
	fmt.Println("\n(1.000 = no slowdown; the paper's headline is SHADOW staying near 1.0")
	fmt.Println(" while tracker- and throttle-based schemes degrade as H_cnt falls)")
}
