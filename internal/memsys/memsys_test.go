package memsys

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

func newSystem(t *testing.T, channels int) *System {
	t.Helper()
	ctls := make([]*memctrl.Controller, channels)
	for ch := range ctls {
		d, err := dram.NewDevice(dram.Config{
			Geometry: dram.TestGeometry(),
			Params:   timing.NewParams(timing.DDR4_2666),
			Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctls[ch] = memctrl.New(d, memctrl.Options{})
	}
	s, err := New(ctls)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRouteInterleavesChannelsFirst(t *testing.T) {
	s := newSystem(t, 4)
	if s.TotalBanks() != 16 {
		t.Fatalf("TotalBanks = %d", s.TotalBanks())
	}
	// Consecutive global banks land on consecutive channels.
	for gb := 0; gb < 8; gb++ {
		ch, bank := s.Route(gb)
		if ch != gb%4 || bank != gb/4 {
			t.Fatalf("Route(%d) = (%d,%d), want (%d,%d)", gb, ch, bank, gb%4, gb/4)
		}
	}
	// Out-of-range banks wrap.
	ch, _ := s.Route(100)
	if ch < 0 || ch >= 4 {
		t.Fatal("wrapped route out of range")
	}
}

func TestEnqueueRewritesBank(t *testing.T) {
	s := newSystem(t, 2)
	r := &memctrl.Request{Bank: 5, Row: 1} // channel 1, local bank 2
	if !s.Enqueue(r) {
		t.Fatal("enqueue failed")
	}
	if r.Bank != 2 {
		t.Fatalf("request bank rewritten to %d, want 2", r.Bank)
	}
	if !s.Controller(1).Pending() || s.Controller(0).Pending() {
		t.Fatal("request routed to wrong channel")
	}
	if !s.Pending() {
		t.Fatal("system should be pending")
	}
}

func TestStepDrivesAllChannels(t *testing.T) {
	s := newSystem(t, 2)
	for gb := 0; gb < 8; gb++ {
		if !s.Enqueue(&memctrl.Request{Bank: gb, Row: 3}) {
			t.Fatal("enqueue failed")
		}
	}
	now := timing.Tick(0)
	for s.Pending() && now < timing.Millisecond {
		next := s.Step(now)
		if next <= now {
			continue
		}
		now = next
	}
	if s.Pending() {
		t.Fatal("requests stuck")
	}
	st := s.Stats()
	if st.Reads != 8 || st.Acts != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if s.DeviceStats().Acts != 8 {
		t.Fatalf("device acts = %d", s.DeviceStats().Acts)
	}
	if s.FlipCount() != 0 {
		t.Fatal("unexpected flips")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty channel list accepted")
	}
}
