// Package memsys composes multiple memory channels into one system, as in
// the paper's actual-system configuration (Table IV: 4 channels, 1 DIMM per
// channel). Each channel owns an independent memory controller and DRAM
// rank; requests are distributed by global bank index, so sequential
// physical addresses interleave across channels first (the
// parallelism-maximizing layout of Section II-B).
//
// Channels are fully independent in DDR systems — separate command, address,
// and data buses — so the system's Step is simply the earliest next event
// across per-channel controllers. (Multiple ranks per channel would share
// buses; the paper's machine has one DIMM per channel, and we fold its two
// physical ranks into the per-channel bank count.)
package memsys

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

// System is a set of independent memory channels.
type System struct {
	channels []*memctrl.Controller
	banks    int // banks per channel
}

// New builds a system from per-channel controllers. All channels must have
// the same geometry.
func New(channels []*memctrl.Controller) (*System, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("memsys: need at least one channel")
	}
	banks := channels[0].Device().Banks()
	for i, c := range channels {
		if c.Device().Banks() != banks {
			return nil, fmt.Errorf("memsys: channel %d has %d banks, want %d", i, c.Device().Banks(), banks)
		}
	}
	return &System{channels: channels, banks: banks}, nil
}

// Channels returns the number of channels.
func (s *System) Channels() int { return len(s.channels) }

// TotalBanks returns the system-wide bank count (the global bank space).
func (s *System) TotalBanks() int { return s.banks * len(s.channels) }

// Controller returns channel ch's controller.
func (s *System) Controller(ch int) *memctrl.Controller { return s.channels[ch] }

// Route splits a global bank index into (channel, local bank): banks
// interleave across channels first.
func (s *System) Route(globalBank int) (ch, bank int) {
	gb := globalBank % s.TotalBanks()
	return gb % len(s.channels), gb / len(s.channels)
}

// Enqueue routes a request whose Bank field is a global bank index; the
// field is rewritten to the channel-local bank.
func (s *System) Enqueue(r *memctrl.Request) bool {
	ch, bank := s.Route(r.Bank)
	r.Bank = bank
	return s.channels[ch].Enqueue(r)
}

// EnqueueCh routes and enqueues like Enqueue and additionally reports which
// channel the request landed on, so the event wheel can mark that channel
// due without sweeping all of them.
func (s *System) EnqueueCh(r *memctrl.Request) (ok bool, ch int) {
	ch, bank := s.Route(r.Bank)
	r.Bank = bank
	return s.channels[ch].Enqueue(r), ch
}

// Step runs every channel that can act at `now` and returns the earliest
// future instant any channel could act. Like Controller.Step, a return value
// equal to now means call again.
func (s *System) Step(now timing.Tick) timing.Tick {
	next := timing.Forever
	for _, c := range s.channels {
		t := c.Step(now)
		if t < next {
			next = t
		}
	}
	return next
}

// Pending reports whether any channel has queued requests.
func (s *System) Pending() bool {
	for _, c := range s.channels {
		if c.Pending() {
			return true
		}
	}
	return false
}

// Stats sums controller statistics across channels.
func (s *System) Stats() memctrl.Stats {
	var t memctrl.Stats
	for _, c := range s.channels {
		st := c.Stats
		t.Acts += st.Acts
		t.Reads += st.Reads
		t.Writes += st.Writes
		t.Pres += st.Pres
		t.Refs += st.Refs
		t.RFMs += st.RFMs
		t.SkippedRFMs += st.SkippedRFMs
		t.Swaps += st.Swaps
		t.TRRs += st.TRRs
		t.RowHits += st.RowHits
		t.RowMisses += st.RowMisses
		t.ReadLatency += st.ReadLatency
		t.CompletedReads += st.CompletedReads
		t.CompletedWrites += st.CompletedWrites
		t.BlockedTime += st.BlockedTime
	}
	return t
}

// DeviceStats sums device statistics across channels.
func (s *System) DeviceStats() dram.BankStats {
	var t dram.BankStats
	for _, c := range s.channels {
		st := c.Device().TotalStats()
		t.Acts += st.Acts
		t.Reads += st.Reads
		t.Writes += st.Writes
		t.Pres += st.Pres
		t.RefRows += st.RefRows
		t.RFMs += st.RFMs
		t.RowCopies += st.RowCopies
		t.Flips += st.Flips
	}
	return t
}

// FlipCount sums Row Hammer flips across channels.
func (s *System) FlipCount() int {
	n := 0
	for _, c := range s.channels {
		n += c.Device().FlipCount()
	}
	return n
}
