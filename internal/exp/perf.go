package exp

import (
	"fmt"

	"shadow/internal/timing"
	"shadow/internal/trace"
)

// PerfPoint is one measured relative-performance value.
type PerfPoint struct {
	Workload string
	Scheme   Scheme
	HCnt     int
	Blast    int
	Rel      float64 // normalized weighted speedup vs. no-mitigation baseline
}

// perfJob is one operating point to simulate.
type perfJob struct {
	workload string
	profiles []trace.Profile
	pt       Point
	// out receives the measured relative performance.
	out *PerfPoint
}

// runJobs sweeps the jobs, concurrently up to o.Workers, pre-warming the
// per-workload baselines so parallel points only contend on the cache read.
func runJobs(jobs []perfJob, o RunOpts) error {
	o = o.withDefaults()
	// Pre-warm baselines serially (one per distinct workload+grade).
	seen := map[string]bool{}
	for _, j := range jobs {
		key := fmt.Sprintf("%s/%v", j.workload, j.pt.Grade)
		if seen[key] {
			continue
		}
		seen[key] = true
		geo := o.Geometry(j.pt.Grade)
		profiles := append([]trace.Profile(nil), j.profiles...)
		clampWS(profiles, geo)
		if _, err := baselineRun(j.pt.Grade, profiles, geo, o); err != nil {
			return err
		}
	}
	if o.OnPointsPlanned != nil {
		o.OnPointsPlanned(len(jobs))
	}
	return parallelEach(len(jobs), o.Workers, func(worker, i int) error {
		j := jobs[i]
		ow := o
		ow.workerID = worker
		ws, _, err := runPoint(j.pt, append([]trace.Profile(nil), j.profiles...), ow)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", j.workload, j.pt.Scheme, err)
		}
		*j.out = PerfPoint{
			Workload: j.workload,
			Scheme:   j.pt.Scheme,
			HCnt:     j.pt.HCnt,
			Blast:    j.pt.Blast,
			Rel:      ws,
		}
		return nil
	})
}

// Fig8 reproduces Figure 8: relative performance of SHADOW, PARFM,
// Mithril-perf, Mithril-area, and DRR on single-threaded SPEC groups,
// multi-threaded GAPBS/NPB, and the multiprogrammed mixes, on the DDR4-2666
// actual-system configuration at the default H_cnt (4K).
func Fig8(o RunOpts) ([]PerfPoint, *Table, error) {
	o = o.withDefaults()
	const hcnt = 4096
	schemes := []Scheme{Shadow, PARFM, MithrilPerf, MithrilArea, DRR}

	type wl struct {
		name     string
		profiles []trace.Profile
	}
	workloads := []wl{
		{"spec-HIGH", groupAsCores(trace.SpecHigh, 1)},
		{"spec-MED", groupAsCores(trace.SpecMed, 1)},
		{"spec-LOW", groupAsCores(trace.SpecLow, 1)},
		{"gapbs", groupAsCores(trace.GAPBS[:4], 1)},
		{"npb", groupAsCores(trace.NPB[:4], 1)},
		{"mix-high", trace.MixHigh(o.Cores)},
		{"mix-blend", trace.MixBlend(o.Cores)},
	}

	points := make([]PerfPoint, len(workloads)*len(schemes))
	var jobs []perfJob
	for wi, w := range workloads {
		for si, s := range schemes {
			jobs = append(jobs, perfJob{
				workload: w.name,
				profiles: w.profiles,
				pt:       Point{Scheme: s, HCnt: hcnt, Grade: timing.DDR4_2666, Seed: o.Seed},
				out:      &points[wi*len(schemes)+si],
			})
		}
	}
	if err := runJobs(jobs, o); err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:  "Figure 8: relative performance at Hcnt=4K (DDR4-2666)",
		Header: append([]string{"workload"}, schemeNames(schemes)...),
		Notes: []string{
			"paper shape: all schemes near 1.0 single-threaded; SHADOW <3% down on intensive loads;",
			"Mithril-perf best; SHADOW comparable to Mithril-area and ahead of PARFM and DRR",
		},
	}
	for wi, w := range workloads {
		row := []string{w.name}
		for si := range schemes {
			row = append(row, fmt.Sprintf("%.3f", points[wi*len(schemes)+si].Rel))
		}
		t.Rows = append(t.Rows, row)
	}
	return points, t, nil
}

// groupAsCores averages a suite by running one core per application (n
// copies each).
func groupAsCores(suite []trace.Profile, n int) []trace.Profile {
	var out []trace.Profile
	for _, p := range suite {
		for i := 0; i < n; i++ {
			out = append(out, p)
		}
	}
	return out
}

// Fig9 reproduces Figure 9: SHADOW's sensitivity to the tRCD' value (23, 25,
// 27 tCK vs. the 19 tCK baseline) on mix-high and mix-blend while sweeping
// H_cnt 16K -> 2K.
func Fig9(o RunOpts) ([]PerfPoint, *Table, error) {
	o = o.withDefaults()
	hcnts := []int{16384, 8192, 4096, 2048}
	trcds := []int{23, 25, 27}
	wnames := []string{"mix-high", "mix-blend"}

	points := make([]PerfPoint, len(wnames)*len(hcnts)*len(trcds))
	var jobs []perfJob
	idx := 0
	for _, wname := range wnames {
		profiles := mixByName(wname, o.Cores)
		for _, h := range hcnts {
			for _, trcd := range trcds {
				jobs = append(jobs, perfJob{
					workload: wname,
					profiles: profiles,
					pt:       Point{Scheme: Shadow, HCnt: h, Grade: timing.DDR4_2666, TRCDCycles: trcd, Seed: o.Seed},
					out:      &points[idx],
				})
				idx++
			}
		}
	}
	if err := runJobs(jobs, o); err != nil {
		return nil, nil, err
	}
	// The Blast field carries the tRCD value for Fig9 points.
	for i := range points {
		points[i].Blast = jobs[i].pt.TRCDCycles
	}

	t := &Table{
		Title:  "Figure 9: SHADOW tRCD sensitivity (weighted speedup vs tRCD19 baseline)",
		Header: []string{"workload", "Hcnt", "tRCD23", "tRCD25", "tRCD27"},
		Notes: []string{
			"paper shape: visible tRCD effect at Hcnt 16K, shrinking at 2K where RFMs dominate;",
			"all cases < 4% overhead",
		},
	}
	idx = 0
	for _, wname := range wnames {
		for _, h := range hcnts {
			row := []string{wname, fmt.Sprintf("%d", h)}
			for range trcds {
				row = append(row, fmt.Sprintf("%.3f", points[idx].Rel))
				idx++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return points, t, nil
}

// Fig10 reproduces Figure 10: blast-radius sensitivity (1-5) of SHADOW,
// PARFM, and Mithril at H_cnt 2K on mix-high and mix-blend. SHADOW's curve
// is flat; the TRR-based schemes pay more per mitigation and need more
// frequent RFMs as the radius grows.
func Fig10(o RunOpts) ([]PerfPoint, *Table, error) {
	o = o.withDefaults()
	const hcnt = 2048
	schemes := []Scheme{Shadow, PARFM, MithrilArea}
	wnames := []string{"mix-high", "mix-blend"}

	points := make([]PerfPoint, len(wnames)*5*len(schemes))
	var jobs []perfJob
	idx := 0
	for _, wname := range wnames {
		profiles := mixByName(wname, o.Cores)
		for blast := 1; blast <= 5; blast++ {
			for _, s := range schemes {
				jobs = append(jobs, perfJob{
					workload: wname,
					profiles: profiles,
					pt:       Point{Scheme: s, HCnt: hcnt, Blast: blast, Grade: timing.DDR4_2666, Seed: o.Seed},
					out:      &points[idx],
				})
				idx++
			}
		}
	}
	if err := runJobs(jobs, o); err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:  "Figure 10: blast radius sensitivity at Hcnt=2K",
		Header: []string{"workload", "blast", "shadow", "parfm", "mithril-area"},
		Notes: []string{
			"paper shape: SHADOW flat across radii; beyond radius 2 SHADOW outperforms the others",
		},
	}
	idx = 0
	for _, wname := range wnames {
		for blast := 1; blast <= 5; blast++ {
			row := []string{wname, fmt.Sprintf("%d", blast)}
			for range schemes {
				row = append(row, fmt.Sprintf("%.3f", points[idx].Rel))
				idx++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return points, t, nil
}

// Fig11 reproduces Figure 11: the architectural-simulation comparison of
// SHADOW against BlockHammer and RRS on DDR5-4800 across H_cnt 16K -> 2K on
// mix-high, mix-blend, and mix-random.
func Fig11(o RunOpts) ([]PerfPoint, *Table, error) {
	o = o.withDefaults()
	// BlockHammer's blacklist and RRS's swap threshold accumulate over the
	// refresh window; horizons under ~1 ms end before any hot row crosses
	// them, hiding the schemes' cost entirely. Warm the trackers for 1 ms
	// and measure at least 500 us of steady state.
	if o.Warmup == 0 {
		o.Warmup = timing.Millisecond
	}
	if o.Duration < 500*timing.Microsecond {
		o.Duration = 500 * timing.Microsecond
	}
	hcnts := []int{16384, 8192, 4096, 2048}
	schemes := []Scheme{Shadow, BlockHammer, RRS}
	wnames := []string{"mix-high", "mix-blend", "mix-random"}

	points := make([]PerfPoint, len(wnames)*len(hcnts)*len(schemes))
	var jobs []perfJob
	idx := 0
	for _, wname := range wnames {
		profiles := mixByName(wname, o.Cores)
		for _, h := range hcnts {
			for _, s := range schemes {
				jobs = append(jobs, perfJob{
					workload: wname,
					profiles: profiles,
					pt:       Point{Scheme: s, HCnt: h, Grade: timing.DDR5_4800, Seed: o.Seed},
					out:      &points[idx],
				})
				idx++
			}
		}
	}
	if err := runJobs(jobs, o); err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:  "Figure 11: SHADOW vs BlockHammer vs RRS (DDR5-4800)",
		Header: []string{"workload", "Hcnt", "shadow", "blockhammer", "rrs"},
		Notes: []string{
			"paper shape: SHADOW robust everywhere and best below Hcnt 4K;",
			"RRS collapses from channel-blocking swaps and BlockHammer from misidentification at low Hcnt",
		},
	}
	idx = 0
	for _, wname := range wnames {
		for _, h := range hcnts {
			row := []string{wname, fmt.Sprintf("%d", h)}
			for range schemes {
				row = append(row, fmt.Sprintf("%.3f", points[idx].Rel))
				idx++
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return points, t, nil
}

func mixByName(name string, cores int) []trace.Profile {
	switch name {
	case "mix-high":
		return trace.MixHigh(cores)
	case "mix-blend":
		return trace.MixBlend(cores)
	case "mix-random":
		return trace.MixRandom(cores, 20230223)
	}
	panic("exp: unknown mix " + name)
}

func schemeNames(ss []Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = string(s)
	}
	return out
}

// Fig8Sweep extends Figure 8 along the H_cnt axis (the figure's grouped bars
// at 16K/8K/4K/2K): the RFM-compatible schemes on mix-high, DDR4-2666. The
// paper's observation is that the ordering holds across the sweep, with the
// gap between Mithril-area and SHADOW shrinking at low H_cnt.
func Fig8Sweep(o RunOpts) ([]PerfPoint, *Table, error) {
	o = o.withDefaults()
	hcnts := []int{16384, 8192, 4096, 2048}
	schemes := []Scheme{Shadow, PARFM, MithrilPerf, MithrilArea, DRR}
	profiles := trace.MixHigh(o.Cores)

	points := make([]PerfPoint, len(hcnts)*len(schemes))
	var jobs []perfJob
	idx := 0
	for _, h := range hcnts {
		for _, s := range schemes {
			jobs = append(jobs, perfJob{
				workload: "mix-high",
				profiles: profiles,
				pt:       Point{Scheme: s, HCnt: h, Grade: timing.DDR4_2666, Seed: o.Seed},
				out:      &points[idx],
			})
			idx++
		}
	}
	if err := runJobs(jobs, o); err != nil {
		return nil, nil, err
	}

	t := &Table{
		Title:  "Figure 8 (Hcnt sweep): mix-high relative performance (DDR4-2666)",
		Header: append([]string{"Hcnt"}, schemeNames(schemes)...),
		Notes: []string{
			"paper shape: ordering stable across the sweep; Mithril-area/SHADOW gap shrinks at low Hcnt",
		},
	}
	idx = 0
	for _, h := range hcnts {
		row := []string{fmt.Sprintf("%d", h)}
		for range schemes {
			row = append(row, fmt.Sprintf("%.3f", points[idx].Rel))
			idx++
		}
		t.Rows = append(t.Rows, row)
	}
	return points, t, nil
}
