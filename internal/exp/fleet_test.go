package exp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"shadow/internal/obs"
	"shadow/internal/obs/fleet"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// fleetSweep runs a 12-point sweep (4 schemes x 3 H_cnt values, one
// workload) through runJobs with the full shadowfleet wiring shadowexp uses:
// per-worker recorders handed out by WorkerProbe, point lifecycle hooks
// feeding a Collector, and a final ingest per worker. It returns the
// measured points and the collector.
func fleetSweep(t *testing.T, o RunOpts, col *fleet.Collector) []PerfPoint {
	t.Helper()
	schemes := []Scheme{Shadow, DRR, PARFM, MithrilArea}
	hcnts := []int{1024, 2048, 4096}
	profiles := trace.MixHigh(o.Cores)

	points := make([]PerfPoint, len(schemes)*len(hcnts))
	var jobs []perfJob
	for si, s := range schemes {
		for hi, h := range hcnts {
			jobs = append(jobs, perfJob{
				workload: "mix-high",
				profiles: profiles,
				pt:       Point{Scheme: s, HCnt: h, Grade: timing.DDR4_2666, Seed: o.Seed},
				out:      &points[si*len(hcnts)+hi],
			})
		}
	}

	if col != nil {
		maxWorkers := o.Workers
		if maxWorkers <= 0 {
			maxWorkers = 1
		}
		workerRecs := make([]*obs.Recorder, maxWorkers)
		wid := func(worker int) string { return fmt.Sprintf("w%d", worker) }
		// ingest renders a worker's registry and hands the bytes to the
		// collector — the same one-merge-path flow cmd/shadowexp uses. Runs on
		// the worker's own goroutine; the recorder is never shared.
		ingest := func(worker int) {
			if workerRecs[worker] == nil {
				return
			}
			var buf bytes.Buffer
			if err := workerRecs[worker].Metrics().WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
			if err := col.Ingest(wid(worker), buf.Bytes()); err != nil {
				t.Errorf("ingest worker %d: %v", worker, err)
			}
		}
		o.OnPointsPlanned = col.ExpectPoints
		o.WorkerProbe = func(worker int, label string) *obs.Probe {
			if workerRecs[worker] == nil {
				workerRecs[worker] = obs.NewRecorder(obs.Options{Metrics: true})
			}
			return workerRecs[worker].NewTrack(label)
		}
		o.OnPointStart = func(worker int, label, scheme string, seed uint64) {
			col.PointStart(wid(worker), label, scheme, seed)
		}
		o.OnPointProgress = func(worker int, label string, now, total timing.Tick) {
			if col.PointProgress(wid(worker), label, now, total) {
				ingest(worker)
				col.Tick()
			}
		}
		o.OnPointDone = func(worker int, label, scheme string, seed, cmdHash uint64, rel float64) {
			col.PointDone(wid(worker), label, scheme, seed, cmdHash)
			ingest(worker)
			col.Tick()
		}
	}

	if err := runJobs(jobs, o); err != nil {
		t.Fatal(err)
	}
	return points
}

// TestPointLabelInjective pins the contract the fleet divergence watchdog
// depends on: points that build different configurations must never share
// a label, or a healthy fig9/fig10/fig11 sweep would falsely trip the
// (fatal) same-point-same-seed hash comparison. Caught live: fig9's three
// tRCD variants of one workload+H_cnt used to collide.
func TestPointLabelInjective(t *testing.T) {
	profiles := trace.MixHigh(1)
	pts := []Point{
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666},
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, TRCDCycles: 23},
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, TRCDCycles: 25},
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, Blast: 1},
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, Blast: 5},
		{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR5_4800},
		{Scheme: DRR, HCnt: 4096, Grade: timing.DDR4_2666},
		{Scheme: Shadow, HCnt: 2048, Grade: timing.DDR4_2666},
	}
	seen := map[string]Point{}
	for _, pt := range pts {
		label := pointLabel(pt, profiles)
		if prev, dup := seen[label]; dup {
			t.Errorf("label %q collides: %+v and %+v", label, prev, pt)
		}
		seen[label] = pt
	}
	// The default point keeps the short, documented form.
	if got := pointLabel(pts[0], profiles); got != "shadow/"+profiles[0].Name+"/h4096" {
		t.Errorf("default label = %q, want the short scheme/workload/hNNNN form", got)
	}
}

// TestFleetSweepObservedAndNeutral is the acceptance-criteria integration
// test: a 12-point parallel sweep with the fleet layer attached (a) merges
// per-worker counters so the fleet totals account for 100% of them, (b)
// finishes with 100% fleet progress and no watchdog trip, and (c) produces
// bit-identical results to the same-seed bare sweep — observation must not
// perturb the simulation.
func TestFleetSweepObservedAndNeutral(t *testing.T) {
	base := RunOpts{
		Duration:  20 * timing.Microsecond,
		Cores:     1,
		Subarrays: 8,
		Seed:      9100, // unique: keeps this test's baseline-cache keys distinct
		Workers:   4,
	}

	// Bare sweep first: no fleet layer at all.
	barePoints := fleetSweep(t, base, nil)

	// Fleet-attached sweep, same seed. The injected clock is frozen (reads
	// from every worker goroutine race-free because nothing mutates it): all
	// wall durations are zero, which keeps the straggler median path off.
	wall := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	col := fleet.NewCollector(fleet.Options{Clock: func() time.Time { return wall }})
	fleetPoints := fleetSweep(t, base, col)
	col.Tick()

	// (c) Observation neutrality: every point's measured relative performance
	// is bit-identical to the bare sweep's.
	if len(barePoints) != 12 || len(fleetPoints) != 12 {
		t.Fatalf("sweep sizes: bare %d, fleet %d, want 12", len(barePoints), len(fleetPoints))
	}
	for i := range barePoints {
		if barePoints[i] != fleetPoints[i] {
			t.Errorf("point %d diverged under observation: bare %+v, fleet %+v", i, barePoints[i], fleetPoints[i])
		}
	}

	// (b) Fleet accounting: every point completed, progress 100, no trips.
	fj := col.Fleet()
	if fj.PointsExpected != 12 || fj.PointsDone != 12 {
		t.Fatalf("fleet points = %d/%d, want 12/12", fj.PointsDone, fj.PointsExpected)
	}
	if fj.ProgressPercent != 100 {
		t.Fatalf("fleet progress = %v, want 100", fj.ProgressPercent)
	}
	if fj.Watchdog != nil {
		t.Fatalf("watchdog tripped on a healthy sweep: %+v", fj.Watchdog)
	}
	seenPoints := map[string]bool{}
	for _, rec := range fj.Completed {
		if rec.CmdHash == "" || rec.CmdHash == "0x0000000000000000" {
			t.Errorf("completed point %s has no command hash", rec.Point)
		}
		seenPoints[rec.Point] = true
	}
	if len(seenPoints) != 12 {
		t.Fatalf("completed records cover %d distinct points, want 12", len(seenPoints))
	}

	// (a) Sum invariant on the merged exposition: for every instrument,
	// the fleet counter total equals the sum of the per-worker samples.
	var merged bytes.Buffer
	if err := col.WriteMetrics(&merged); err != nil {
		t.Fatal(err)
	}
	fams, err := fleet.Parse(merged.Bytes())
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v", err)
	}
	perWorker := map[string]float64{}
	fleetTotal := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			switch f.Name {
			case "shadow_counter":
				if s.Label("worker") == "" {
					t.Fatalf("per-worker sample without worker label: %+v", s)
				}
				perWorker[s.Label("name")] += s.Value
			case "shadow_fleet_counter":
				fleetTotal[s.Label("name")] = s.Value
			}
		}
	}
	if len(perWorker) == 0 {
		t.Fatal("no per-worker counters in merged exposition")
	}
	for name, sum := range perWorker {
		if got, ok := fleetTotal[name]; !ok || got != sum {
			t.Errorf("fleet total for %q = %v, want worker sum %v", name, got, sum)
		}
	}
	if len(fleetTotal) != len(perWorker) {
		t.Errorf("fleet totals cover %d instruments, workers expose %d", len(fleetTotal), len(perWorker))
	}

	// Divergence watchdog end-to-end: replaying the same points with the same
	// seed through the same collector must agree hash-for-hash — feeding it a
	// second sweep is exactly the same-point-same-seed comparison it guards.
	fleetSweep(t, base, col)
	if tr := col.Tick(); tr != nil {
		t.Fatalf("same-seed replay tripped %s: %s", tr.Watchdog, tr.Detail)
	}
}
