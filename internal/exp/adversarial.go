package exp

import (
	"fmt"

	"shadow/internal/hammer"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// AdversarialResult holds the Section VII-C worst-case bounds: the paper
// reports <3% degradation from SHADOW's longer tRCD alone and <9% with the
// theoretically most frequent RFM stream, on a random-stream microbenchmark
// chosen to maximize both effects.
type AdversarialResult struct {
	TRCDOnly float64 // relative performance with tRCD' but RFM disabled
	Full     float64 // relative performance with tRCD' and max-frequency RFM
}

// Adversarial measures the two bounds.
func Adversarial(o RunOpts) (AdversarialResult, *Table, error) {
	o = o.withDefaults()
	geo := o.Geometry(timing.DDR4_2666)
	mk := func(pt Point, rfm bool) (float64, error) {
		p, dm, mc := pt.Build(geo, o.Duration)
		if !rfm {
			p.RAAIMT = 0 // isolate the tRCD' effect
		}
		gen := func() []trace.Generator {
			return []trace.Generator{trace.RandomStream(geo, o.Seed)}
		}
		// The stream microbenchmark runs on hardware with deep MLP; model it
		// with a generous MSHR count so the bound isolates DRAM effects.
		base, err := sim.Run(sim.Config{
			Params:   timing.NewParams(timing.DDR4_2666),
			Geometry: geo,
			Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
			Workload: gen(),
			Duration: o.Duration,
			MSHR:     16,
		})
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(sim.Config{
			Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
			Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
			Workload: gen(),
			Duration: o.Duration,
			MSHR:     16,
		})
		if err != nil {
			return 0, err
		}
		return sim.RelativePerformance(res, base), nil
	}

	var out AdversarialResult
	var err error
	// tRCD-only bound.
	out.TRCDOnly, err = mk(Point{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, Seed: o.Seed}, false)
	if err != nil {
		return out, nil, err
	}
	// Max-RFM bound: the lowest RAAIMT SHADOW ever uses (H_cnt 2K -> 32).
	out.Full, err = mk(Point{Scheme: Shadow, HCnt: 2048, Grade: timing.DDR4_2666, Seed: o.Seed}, true)
	if err != nil {
		return out, nil, err
	}

	t := &Table{
		Title:  "Section VII-C: worst-case adversarial stream bounds",
		Header: []string{"configuration", "relative performance", "paper bound"},
		Rows: [][]string{
			{"tRCD' only (no RFM)", fmt.Sprintf("%.3f", out.TRCDOnly), ">= 0.97"},
			{"tRCD' + max-frequency RFM", fmt.Sprintf("%.3f", out.Full), ">= 0.91"},
		},
	}
	return out, t, nil
}
