package exp

import (
	"fmt"

	"shadow/internal/hammer"
	"shadow/internal/power"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// PowerPoint is one Figure 12 measurement.
type PowerPoint struct {
	Workload  string
	HCnt      int
	RelPower  float64 // SHADOW system power / baseline system power
	RFMPerREF float64 // RFM count normalized to REF count
}

// Fig12 reproduces Figure 12: SHADOW's relative system-level power and the
// number of RFMs (normalized to refreshes) on mix-high and mix-blend while
// H_cnt sweeps 16K -> 2K.
func Fig12(o RunOpts) ([]PowerPoint, *Table, error) {
	o = o.withDefaults()
	hcnts := []int{16384, 8192, 4096, 2048}
	model := power.DefaultModel()
	model.PBackground *= 8 // 4 channels x 2 ranks of background power
	var points []PowerPoint
	t := &Table{
		Title:  "Figure 12: SHADOW relative system power and RFM/REF ratio",
		Header: []string{"workload", "Hcnt", "rel. system power", "RFMs/REFs"},
		Notes: []string{
			"paper shape: power increase < 0.63% even at Hcnt 2K; RFM count grows as Hcnt falls;",
			"added power dominated by remapping-row accesses, not shuffles",
		},
	}
	for _, wname := range []string{"mix-high", "mix-blend"} {
		profiles := mixByName(wname, o.Cores)
		geo := o.Geometry(timing.DDR4_2666)
		clampWS(profiles, geo)

		basePt := Point{Scheme: Baseline, Grade: timing.DDR4_2666, Seed: o.Seed}
		bp, _, _ := basePt.Build(geo, o.Duration)
		baseRes, err := sim.Run(sim.Config{
			Params: bp, Geometry: geo,
			Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
			Workload: trace.Generators(profiles, geo, o.Seed),
			Duration: o.Duration,
		})
		if err != nil {
			return nil, nil, err
		}
		baseAct := power.FromStats(baseRes.MC, 0, 0, 0, o.Duration)

		for _, h := range hcnts {
			pt := Point{Scheme: Shadow, HCnt: h, Grade: timing.DDR4_2666, Seed: o.Seed}
			p, dm, mc := pt.Build(geo, o.Duration)
			res, err := sim.Run(sim.Config{
				Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
				Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
				Workload: trace.Generators(profiles, geo, o.Seed),
				Duration: o.Duration,
			})
			if err != nil {
				return nil, nil, err
			}
			act := power.FromStats(res.MC,
				res.Dev.RowCopies,
				res.MC.RFMs, // one incremental refresh per RFM
				res.MC.Acts, // every ACT reads the remapping-row
				o.Duration)
			// The paper's system has 4 channels x 2 ranks; scale the
			// simulated rank's activity to the full memory system before
			// comparing against the 165 W CPU.
			const ranks = 8
			act = scaleActivity(act, ranks)
			baseScaled := scaleActivity(baseAct, ranks)
			rel := model.RelativeSystemPower(act, baseScaled)
			// REF is an all-bank command; RFM is per-bank. Normalize both to
			// per-bank row-maintenance events.
			ratio := 0.0
			if res.MC.Refs > 0 {
				ratio = float64(res.MC.RFMs) / (float64(res.MC.Refs) * float64(geo.Banks))
			}
			points = append(points, PowerPoint{Workload: wname, HCnt: h, RelPower: rel, RFMPerREF: ratio})
			t.Rows = append(t.Rows, []string{
				wname, fmt.Sprintf("%d", h),
				fmt.Sprintf("%.4f", rel), fmt.Sprintf("%.2f", ratio),
			})
		}
	}
	return points, t, nil
}

// scaleActivity multiplies a rank's command counts by the number of ranks in
// the system (background power is scaled on the model instead, since it is
// duration-based).
func scaleActivity(a power.Activity, ranks int64) power.Activity {
	a.Acts *= ranks
	a.Reads *= ranks
	a.Writes *= ranks
	a.Refs *= ranks
	a.RFMs *= ranks
	a.RowCopies *= ranks
	a.IncRefreshes *= ranks
	a.RemapAccesses *= ranks
	return a
}
