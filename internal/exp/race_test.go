package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"shadow/internal/timing"
	"shadow/internal/trace"
)

// TestParallelFanOutSharedBaseline exercises the real goroutine fan-out of
// the experiment harness under the race detector: several scheme points run
// concurrently through parallelEach, all contending on the shared baseline
// cache (baselineMu). Run with -race; any unsynchronized access to the
// cache or the error slot fails the build's `go test -race ./...` gate.
func TestParallelFanOutSharedBaseline(t *testing.T) {
	o := RunOpts{
		Duration:  20 * timing.Microsecond,
		Cores:     1,
		Subarrays: 8,
		Seed:      7001, // keys distinct from other tests' cache entries
		Workers:   8,
	}
	schemes := []Scheme{Shadow, DRR, PARFM, MithrilArea}
	rel := make([]float64, len(schemes))
	err := parallelEach(len(schemes), o.Workers, func(_, i int) error {
		ws, _, err := runPoint(Point{
			Scheme: schemes[i], HCnt: 4096, Grade: timing.DDR4_2666, Seed: o.Seed,
		}, trace.MixHigh(o.Cores), o)
		rel[i] = ws
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ws := range rel {
		if ws <= 0 || ws > 1.2 {
			t.Errorf("%s: relative performance %.3f implausible", schemes[i], ws)
		}
	}
	// Every point shares one workload/grade/opts key: the baseline must have
	// been simulated once and served from the cache afterwards.
	key := baselineKeyCount(o)
	if key != 1 {
		t.Errorf("baseline cache holds %d entries for this config, want 1", key)
	}
}

// baselineKeyCount counts cache entries carrying this test's unique seed
// (keys are "grade/duration/warmup/cores/seed/subarrays,profiles...").
func baselineKeyCount(o RunOpts) int {
	o = o.withDefaults()
	marker := fmt.Sprintf("/%d/", o.Seed)
	baselineMu.Lock()
	defer baselineMu.Unlock()
	n := 0
	for key := range baselineCache {
		if strings.Contains(key, marker) {
			n++ //shadowvet:ignore determinism -- order-independent count
		}
	}
	return n
}

// TestParallelEachErrorFirstWins hammers the error path: many workers fail
// concurrently and exactly one error must surface, with errMu keeping the
// write race-free (verified by -race).
func TestParallelEachErrorFirstWins(t *testing.T) {
	boom := errors.New("exp: synthetic failure")
	var calls atomic.Int64
	err := parallelEach(200, 8, func(_, i int) error {
		calls.Add(1)
		if i%3 == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the synthetic failure", err)
	}
	if calls.Load() == 0 || calls.Load() > 200 {
		t.Fatalf("calls = %d out of range", calls.Load())
	}
}

// TestParallelEachCoversAll checks the work-stealing index distribution:
// every index runs exactly once across workers.
func TestParallelEachCoversAll(t *testing.T) {
	const n = 500
	var hits [n]atomic.Int32
	if err := parallelEach(n, 16, func(_, i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}
