package exp

import (
	"strconv"
	"strings"
	"testing"

	"shadow/internal/timing"
	"shadow/internal/trace"
)

// fastOpts keeps the experiment tests inside a CI-friendly budget; the cmd
// tool and benchmarks run the larger defaults.
func fastOpts() RunOpts {
	return RunOpts{Duration: 40 * timing.Microsecond, Cores: 2, Subarrays: 8, Seed: 7}
}

func TestTable2Rendering(t *testing.T) {
	tab := Table2()
	s := tab.String()
	for _, frag := range []string{"RAAIMT", "Hcnt=8K", "128", "32", "*"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table II rendering missing %q:\n%s", frag, s)
		}
	}
	if len(tab.Rows) != 3 || len(tab.Rows[0]) != 4 {
		t.Fatalf("Table II shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	// Secure diagonal marked, insecure corner not.
	if !strings.Contains(tab.Rows[2][1], "*") { // RAAIMT 32, Hcnt 8K
		t.Error("RAAIMT=32/Hcnt=8K should be secure")
	}
	if strings.Contains(tab.Rows[0][3], "*") { // RAAIMT 128, Hcnt 2K
		t.Error("RAAIMT=128/Hcnt=2K must not be secure")
	}
}

func TestTable3Rendering(t *testing.T) {
	tab := Table3()
	s := tab.String()
	for _, frag := range []string{"tRCD'", "tRD_RM", "17.7", "row-shuffle total"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table III missing %q:\n%s", frag, s)
		}
	}
}

func TestAreaTable(t *testing.T) {
	s := AreaTable().String()
	for _, frag := range []string{"0.47%", "0.6%", "logic area"} {
		if !strings.Contains(s, frag) {
			t.Errorf("area table missing %q:\n%s", frag, s)
		}
	}
}

func TestShadowRAAIMTTable(t *testing.T) {
	want := map[int]int{16384: 256, 8192: 128, 4096: 64, 2048: 32}
	for h, r := range want {
		if got := ShadowRAAIMT(h); got != r {
			t.Errorf("ShadowRAAIMT(%d) = %d, want %d", h, got, r)
		}
	}
}

func TestTRRBlastAdjustment(t *testing.T) {
	// Wider radius -> lower RAAIMT (more frequent RFMs) for TRR schemes.
	if trrRAAIMT(64, 3) >= trrRAAIMT(64, 1) {
		t.Error("blast radius should reduce TRR RAAIMT")
	}
	p := timing.NewParams(timing.DDR4_2666)
	if trrRFMSlots(p, 1) != 1 {
		t.Error("radius-1 TRR should fit one tRFM")
	}
	if trrRFMSlots(p, 5) < 2 {
		t.Error("radius-5 TRR (10 refreshes) should need multiple tRFM slots")
	}
}

func TestPointBuildAllSchemes(t *testing.T) {
	geo := fastOpts().Geometry(timing.DDR5_4800)
	for _, s := range append([]Scheme{Baseline}, AllSchemes...) {
		pt := Point{Scheme: s, HCnt: 4096, Grade: timing.DDR5_4800, Seed: 1}
		p, dm, mc := pt.Build(geo, 150*timing.Microsecond)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", s, err)
		}
		switch s {
		case Shadow, PARFM, MithrilPerf, MithrilArea, Panopticon:
			if dm == nil {
				t.Errorf("%s: missing device mitigator", s)
			}
		case BlockHammer, RRS, Graphene, PARA:
			if mc == nil {
				t.Errorf("%s: missing MC-side policy", s)
			}
		default:
			// Baseline and DRR are timing-only: no mitigator of either kind.
			if dm != nil || mc != nil {
				t.Errorf("%s: unexpected mitigator for a timing-only scheme", s)
			}
		}
	}
}

func TestFig8SmokeShape(t *testing.T) {
	points, tab, err := Fig8(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || len(tab.Rows) == 0 {
		t.Fatal("empty fig8")
	}
	for _, p := range points {
		if p.Rel <= 0 || p.Rel > 1.05 {
			t.Errorf("%s/%s: rel %.3f out of range", p.Workload, p.Scheme, p.Rel)
		}
		if p.Workload == "spec-LOW" && p.Rel < 0.97 {
			t.Errorf("spec-LOW %s slowed to %.3f; low-MPKI apps should be unaffected", p.Scheme, p.Rel)
		}
	}
}

func TestFig9TRCDMonotonic(t *testing.T) {
	o := fastOpts()
	points, _, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	// At fixed workload and Hcnt, larger tRCD must not be faster (small
	// tolerance for simulation noise).
	byKey := map[string]map[int]float64{}
	for _, p := range points {
		k := p.Workload + "/" + strconv.Itoa(p.HCnt)
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][p.Blast] = p.Rel // Blast field carries tRCD for fig9 points
	}
	for k, m := range byKey {
		if m[27] > m[23]+0.01 {
			t.Errorf("%s: tRCD27 (%.3f) faster than tRCD23 (%.3f)", k, m[27], m[23])
		}
	}
}

func TestFig10ShadowFlat(t *testing.T) {
	points, _, err := Fig10(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var minS, maxS = 2.0, 0.0
	for _, p := range points {
		if p.Scheme != Shadow {
			continue
		}
		if p.Rel < minS {
			minS = p.Rel
		}
		if p.Rel > maxS {
			maxS = p.Rel
		}
	}
	if maxS-minS > 0.03 {
		t.Errorf("SHADOW not flat across blast radii: [%.3f, %.3f]", minS, maxS)
	}
	// At radius >= 4 SHADOW must beat the TRR schemes.
	rel := map[Scheme]float64{}
	for _, p := range points {
		if p.Blast == 5 && p.Workload == "mix-high" {
			rel[p.Scheme] = p.Rel
		}
	}
	if rel[Shadow] < rel[PARFM] || rel[Shadow] < rel[MithrilArea] {
		t.Errorf("at blast 5 SHADOW (%.3f) should beat PARFM (%.3f) and Mithril (%.3f)",
			rel[Shadow], rel[PARFM], rel[MithrilArea])
	}
}

func TestFig12PowerShape(t *testing.T) {
	points, _, err := Fig12(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.RelPower < 1.0 || p.RelPower > 1.02 {
			t.Errorf("%s/%d: relative power %.4f out of the paper's band", p.Workload, p.HCnt, p.RelPower)
		}
	}
	// RFM/REF ratio grows as Hcnt falls.
	byW := map[string]map[int]float64{}
	for _, p := range points {
		if byW[p.Workload] == nil {
			byW[p.Workload] = map[int]float64{}
		}
		byW[p.Workload][p.HCnt] = p.RFMPerREF
	}
	for w, m := range byW {
		if m[2048] <= m[16384] {
			t.Errorf("%s: RFM/REF should grow as Hcnt falls (16K: %.2f, 2K: %.2f)", w, m[16384], m[2048])
		}
	}
}

// TestFig11PointCrossover checks the Figure 11 headline at one operating
// point with tracker warmup: below Hcnt 4K SHADOW outperforms both
// BlockHammer and RRS.
func TestFig11PointCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("needs ~10s of simulation")
	}
	// mix-high(4) includes mcf, whose hot rows drive the tracker schemes.
	o := RunOpts{Duration: 400 * timing.Microsecond, Warmup: timing.Millisecond, Cores: 4, Subarrays: 8, Seed: 3}
	rel := map[Scheme]float64{}
	for _, s := range []Scheme{Shadow, BlockHammer, RRS} {
		ws, _, err := runPoint(Point{Scheme: s, HCnt: 2048, Grade: timing.DDR5_4800, Seed: 3}, trace.MixHigh(o.Cores), o)
		if err != nil {
			t.Fatal(err)
		}
		rel[s] = ws
	}
	if rel[Shadow] < 0.95 {
		t.Errorf("SHADOW at 2K = %.3f, want > 0.95", rel[Shadow])
	}
	if rel[Shadow] <= rel[BlockHammer] || rel[Shadow] <= rel[RRS] {
		t.Errorf("SHADOW (%.3f) should beat BlockHammer (%.3f) and RRS (%.3f) at Hcnt 2K",
			rel[Shadow], rel[BlockHammer], rel[RRS])
	}
}

func TestAdversarialBounds(t *testing.T) {
	res, tab, err := Adversarial(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.TRCDOnly < 0.95 {
		t.Errorf("tRCD-only bound %.3f, paper reports >= 0.97", res.TRCDOnly)
	}
	if res.Full < 0.88 {
		t.Errorf("max-RFM bound %.3f, paper reports >= 0.91", res.Full)
	}
	if res.Full > res.TRCDOnly+0.01 {
		t.Error("adding RFMs cannot help performance")
	}
	if !strings.Contains(tab.String(), "tRCD'") {
		t.Error("bad rendering")
	}
}

func TestBaselineCacheHit(t *testing.T) {
	o := fastOpts()
	o.Seed = 991 // avoid keys other tests already populated
	before := len(baselineCache)
	_, _, err := runPoint(Point{Scheme: Shadow, HCnt: 4096, Grade: timing.DDR4_2666, Seed: o.Seed}, trace.MixHigh(o.Cores), o)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(baselineCache)
	_, _, err = runPoint(Point{Scheme: DRR, HCnt: 4096, Grade: timing.DDR4_2666, Seed: o.Seed}, trace.MixHigh(o.Cores), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(baselineCache) != mid || mid <= before {
		t.Errorf("baseline cache not reused: %d -> %d -> %d", before, mid, len(baselineCache))
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		Title:  "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "va,lue"}, {"2", `q"t`}},
		Notes:  []string{"n1"},
	}
	csv := tab.CSV()
	want := "a,b\n1,\"va,lue\"\n2,\"q\"\"t\"\n# n1\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	// Real tables render without error and start with their header.
	if got := Table2().CSV(); !strings.HasPrefix(got, "RAAIMT,") {
		t.Fatalf("Table2 CSV prefix wrong: %q", got[:20])
	}
}

func TestFig8SweepOrderingStable(t *testing.T) {
	points, tab, err := Fig8Sweep(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// SHADOW stays within a few percent at every Hcnt.
	for _, p := range points {
		if p.Scheme == Shadow && p.Rel < 0.93 {
			t.Errorf("SHADOW at Hcnt %d = %.3f", p.HCnt, p.Rel)
		}
	}
}

// TestDeterministicTablesGolden pins the analytics-only tables: they depend
// on no simulation and must render byte-identically across runs.
func TestDeterministicTablesGolden(t *testing.T) {
	a, b := Table2().String(), Table2().String()
	if a != b {
		t.Fatal("Table2 not deterministic")
	}
	for _, frag := range []string{"6E-15 *", "~0 *", "1E+00"} {
		if !strings.Contains(a, frag) {
			t.Errorf("Table2 golden fragment %q missing:\n%s", frag, a)
		}
	}
	t3 := Table3().String()
	for _, frag := range []string{"17.7ns", "73.9ns", "4.0ns", "+29%"} {
		if !strings.Contains(t3, frag) {
			t.Errorf("Table3 golden fragment %q missing:\n%s", frag, t3)
		}
	}
	area := AreaTable().String()
	for _, frag := range []string{"0.35", "0.47%", "0.59%"} {
		if !strings.Contains(area, frag) {
			t.Errorf("AreaTable golden fragment %q missing:\n%s", frag, area)
		}
	}
}

func TestChartRendersPerfPoints(t *testing.T) {
	pts := []PerfPoint{
		{Workload: "mix-high", Scheme: Shadow, HCnt: 2048, Rel: 0.99},
		{Workload: "mix-high", Scheme: RRS, HCnt: 2048, Rel: 0.86},
		{Workload: "mix-high", Scheme: Shadow, HCnt: 4096, Rel: 0.99},
	}
	out := Chart("demo", pts).String()
	for _, frag := range []string{"demo", "mix-high Hcnt=2048", "shadow", "rrs", "0.860"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
}
