package exp

import (
	"fmt"
	"strings"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/power"
	"shadow/internal/report"
	"shadow/internal/security"
	"shadow/internal/timing"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header row first, notes as
// trailing comment lines), for piping into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Table2 reproduces Table II: the RH-induced bit-flip probability of SHADOW
// for a DDR5 rank over a year, maximized over the three Appendix XI attack
// scenarios, with the secure cells marked.
func Table2() *Table {
	raaimts := []int{128, 64, 32}
	hcnts := []int{8192, 4096, 2048}
	t := &Table{
		Title:  "Table II: SHADOW rank-year bit-flip probability",
		Header: []string{"RAAIMT", "Hcnt=8K", "Hcnt=4K", "Hcnt=2K"},
		Notes: []string{
			"paper: 128 -> 2E-15, 4E-01, 1 ; 64 -> 2E-43, 1E-14, 5E-01 ; 32 -> 0, 1E-43, 9E-15",
			"* marks secure configurations (< 1%/rank-year), matching the paper's bold cells",
		},
	}
	for _, r := range raaimts {
		row := []string{fmt.Sprintf("%d", r)}
		for _, h := range hcnts {
			c := security.DefaultConfig(h, r)
			p := c.BitFlipProbability()
			cell := fmt.Sprintf("%.0E", p)
			if p < 1e-90 {
				cell = "~0"
			}
			if c.Secure() {
				cell += " *"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table3 reproduces Table III: SHADOW's timing values from the circuit
// model, with the paper's SPICE values for comparison.
func Table3() *Table {
	p := timing.NewParams(timing.DDR4_2666)
	r := circuit.DefaultModel().Evaluate(p)
	t := &Table{
		Title:  "Table III: SHADOW timing values (analytical circuit model)",
		Header: []string{"Definition", "Abbrev", "Model", "Paper", "Baseline", "Ratio"},
	}
	add := func(def, abbr string, got, paper, base float64) {
		ratio := "-"
		if base > 0 {
			ratio = fmt.Sprintf("%+.0f%%", (got/base-1)*100)
		}
		baseS := "-"
		if base > 0 {
			baseS = fmt.Sprintf("%.1fns", base)
		}
		t.Rows = append(t.Rows, []string{
			def, abbr, fmt.Sprintf("%.1fns", got), fmt.Sprintf("%.1fns", paper), baseS, ratio,
		})
	}
	add("Row activation in SHADOW", "tRCD'", r.TRCDShadow, 17.7, r.TRCDBaseline)
	add("Row copy w/ precharge", "-", r.RowCopy, 73.9, 0)
	add("Remapping-row sensing", "tRCD_RM", r.TRCDRM, 2.3, r.TRCDBaseline)
	add("Remapping-row write recovery", "tWR_RM", r.TWRRM, 9.0, r.TWRBaseline)
	add("Remapping-row read latency", "tRD_RM", r.TRDRM, 4.0, r.TRCDBaseline)
	st := p.WithShadow(r.ShadowTimings())
	t.Notes = append(t.Notes,
		fmt.Sprintf("row-shuffle total: %.0fns DDR4-2666 (paper 178ns), %.0fns DDR5-4800 (paper 186ns)",
			st.ShuffleTime().Nanoseconds(),
			timing.NewParams(timing.DDR5_4800).WithShadow(r.ShadowTimings()).ShuffleTime().Nanoseconds()),
		fmt.Sprintf("isolation transistor capacitance reduction: %.0fx (paper: >100x)",
			circuit.DefaultModel().CapacitanceReduction()))
	return t
}

// AreaTable reproduces the Section VII-D synthesis results.
func AreaTable() *Table {
	am := power.DefaultAreaModel()
	g := dram.DefaultGeometry(true)
	t := &Table{
		Title:  "Section VII-D: SHADOW area and capacity overhead",
		Header: []string{"Metric", "Model", "Paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"logic area (mm^2)", fmt.Sprintf("%.2f", am.LogicArea(g)), "0.35"},
		[]string{"chip area overhead", fmt.Sprintf("%.2f%%", am.AreaOverhead(g)*100), "0.47%"},
		[]string{"capacity overhead", fmt.Sprintf("%.2f%%", am.CapacityOverhead(g)*100), "0.6%"},
	)
	t.Notes = append(t.Notes, "area is independent of H_cnt: SHADOW keeps no tracking table")
	return t
}

// Chart renders performance points as a grouped ASCII bar chart (the
// terminal counterpart of the paper's figures): one group per workload (and
// H_cnt when the sweep varies it), one bar per scheme, scaled to 1.0 =
// baseline performance.
func Chart(title string, points []PerfPoint) *report.BarChart {
	c := &report.BarChart{Title: title, YMax: 1.0, MaxWidth: 44}
	multiH := false
	seenH := -1
	for _, p := range points {
		if seenH == -1 {
			seenH = p.HCnt
		} else if p.HCnt != seenH {
			multiH = true
		}
	}
	for _, p := range points {
		label := p.Workload
		if multiH {
			label = fmt.Sprintf("%s Hcnt=%d", p.Workload, p.HCnt)
		}
		series := string(p.Scheme)
		if p.Blast > 5 { // Fig9 reuses Blast for the tRCD value
			series = fmt.Sprintf("tRCD%d", p.Blast)
		} else if p.Blast > 0 && p.Scheme == Shadow || p.Blast > 0 && p.Scheme == PARFM || p.Blast > 0 && p.Scheme == MithrilArea {
			label = fmt.Sprintf("%s blast=%d", p.Workload, p.Blast)
		}
		c.Add(series, label, p.Rel)
	}
	return c
}
