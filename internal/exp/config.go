// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Table II, Table III, Figures 8-12, and
// the Section VII-C adversarial bounds), built on the simulator, the
// security analytics, the circuit model, and the power model.
//
// Scheme configuration policy (documented here because every figure depends
// on it):
//
//   - SHADOW uses the secure RAAIMT of Table II for each H_cnt (2K:32,
//     4K:64, 8K:128, 16K:256), computed by security.SecureRAAIMT.
//   - PARFM needs roughly twice SHADOW's RFM rate for equal protection
//     because TRR leaves the aggressor in place (it keeps hammering from the
//     same location between samples), so RAAIMT_PARFM = RAAIMT_SHADOW / 2.
//   - Mithril-perf uses a large (10 KB/bank-class) tracker, which permits a
//     high RAAIMT = H_cnt/8; Mithril-area pins RAAIMT = 32 with a small
//     table, exactly the paper's two configurations.
//   - TRR-based schemes (PARFM, Mithril) degrade with the blast radius:
//     the per-RFM TRR must refresh 2*blast victims (multiple tRFM slots when
//     they no longer fit) and the effective per-aggressor budget shrinks by
//     W_sum/2, so their RAAIMT scales by 2/W_sum. SHADOW's RAAIMT is blast-
//     independent: the shuffle relocates the aggressor, protecting every row
//     in the blast radius at once (Section III-A).
//   - BlockHammer blacklists at half the blast-adjusted threshold and
//     throttles to spread the remaining budget over the refresh window;
//     RRS swaps at H_cnt/6 (the paper's favorable configuration) with a 4 us
//     channel-blocking swap.
//
// Short-horizon scaling: full refresh windows (32 ms) are too long for test
// and benchmark budgets, so window-relative thresholds (BlockHammer
// blacklist, RRS swap) are scaled by Duration/tREFW, preserving the *rate*
// of mitigation events per unit time; throttle delays are unchanged by
// construction. Running with Duration >= tREFW disables the scaling.
package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/security"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// Scheme identifies a mitigation configuration.
type Scheme string

// The schemes of the paper's evaluation.
const (
	Baseline    Scheme = "baseline"
	Shadow      Scheme = "shadow"
	PARFM       Scheme = "parfm"
	MithrilPerf Scheme = "mithril-perf"
	MithrilArea Scheme = "mithril-area"
	DRR         Scheme = "drr"
	BlockHammer Scheme = "blockhammer"
	RRS         Scheme = "rrs"
	Graphene    Scheme = "graphene"
	PARA        Scheme = "para"
	Panopticon  Scheme = "panopticon"
)

// AllSchemes lists every non-baseline scheme. The paper's Figure 8/11 set
// comes first; Graphene, classic PARA, and Panopticon (Section IX related
// work) follow.
var AllSchemes = []Scheme{Shadow, PARFM, MithrilPerf, MithrilArea, DRR, BlockHammer, RRS, Graphene, PARA, Panopticon}

// ShadowRAAIMT returns SHADOW's secure RFM threshold for an H_cnt.
func ShadowRAAIMT(hcnt int) int {
	if r := security.SecureRAAIMT(hcnt); r > 0 {
		return r
	}
	return 8
}

// trrRAAIMT blast-adjusts a TRR scheme's RAAIMT.
func trrRAAIMT(base, blast int) int {
	w := hammer.Config{HCnt: 1, BlastRadius: blast}.WSum()
	r := int(float64(base) * 2 / w)
	if r < 8 {
		r = 8
	}
	return r
}

// trrRFMSlots returns how many tRFM slots one TRR mitigation needs: 2*blast
// victim refreshes at tRAS+tRP each must fit in tRFM.
func trrRFMSlots(p *timing.Params, blast int) int {
	need := timing.Tick(2*blast) * (p.RAS + p.RP)
	slots := int((need + p.RFM - 1) / p.RFM)
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Point is one experiment operating point.
type Point struct {
	Scheme Scheme
	HCnt   int
	Blast  int
	Grade  timing.Grade
	// TRCDCycles overrides SHADOW's effective tRCD in clock cycles (Fig. 9
	// sensitivity study); 0 uses the circuit model's value.
	TRCDCycles int
	Seed       uint64
}

// Build assembles the timing parameters and mitigators for a point.
// Duration is needed to time-scale window-relative thresholds.
func (pt Point) Build(geo dram.Geometry, duration timing.Tick) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
	base := timing.NewParams(pt.Grade)
	blast := pt.Blast
	if blast == 0 {
		blast = 3
	}
	_ = duration

	switch pt.Scheme {
	case Baseline:
		return base, nil, nil

	case Shadow:
		p := base.WithShadow(circuit.DefaultShadowTimings(base)).WithRAAIMT(ShadowRAAIMT(pt.HCnt))
		if pt.TRCDCycles > 0 {
			// Express the sensitivity point as tRCD' = TRCDCycles * tCK.
			p.Shadow.RDRM = p.Cycles(pt.TRCDCycles) - p.RCD
			if p.Shadow.RDRM < 0 {
				p.Shadow.RDRM = 0
			}
		}
		return p, shadow.New(shadow.Options{Seed: pt.Seed + 1}), nil

	case PARFM:
		p := base.WithRAAIMT(trrRAAIMT(ShadowRAAIMT(pt.HCnt)/2, blast))
		p.RFM *= timing.Tick(trrRFMSlots(p, blast))
		return p, mitigate.NewPARFM(blast, pt.Seed+2), nil

	case MithrilPerf:
		raaimt := pt.HCnt / 8
		if raaimt < 8 {
			raaimt = 8
		}
		p := base.WithRAAIMT(trrRAAIMT(raaimt, blast))
		p.RFM *= timing.Tick(trrRFMSlots(p, blast))
		return p, mitigate.NewMithril(2048, blast), nil

	case MithrilArea:
		p := base.WithRAAIMT(trrRAAIMT(32, blast))
		p.RFM *= timing.Tick(trrRFMSlots(p, blast))
		return p, mitigate.NewMithril(256, blast), nil

	case DRR:
		return base.WithRefreshScale(2), nil, nil

	case BlockHammer:
		return base, nil, mitigate.NewBlockHammer(mitigate.BlockHammerConfig{
			Hammer: hammer.Config{HCnt: pt.HCnt, BlastRadius: blast},
			REFW:   base.REFW,
			Seed:   pt.Seed + 3,
		})

	case RRS:
		thr := int64(pt.HCnt / 6)
		if thr < 2 {
			thr = 2
		}
		return base, nil, mitigate.NewRRS(mitigate.RRSConfig{
			SwapThreshold: thr,
			RowsPerBank:   geo.PARowsPerBank(),
			REFW:          base.REFW,
			Seed:          pt.Seed + 4,
		})

	case Graphene:
		return base, nil, mitigate.NewGraphene(mitigate.GrapheneConfig{
			Hammer:      hammer.Config{HCnt: pt.HCnt, BlastRadius: blast},
			RowsPerBank: geo.PARowsPerBank(),
			REFW:        base.REFW,
		})

	case PARA:
		return base, nil, mitigate.NewPARA(
			hammer.Config{HCnt: pt.HCnt, BlastRadius: blast},
			geo.PARowsPerBank(), pt.Seed+5)

	case Panopticon:
		// Per-row counters drain their refresh queue at RFM slots; pace them
		// like Mithril-area.
		p := base.WithRAAIMT(trrRAAIMT(32, blast))
		return p, mitigate.NewPanopticon(pt.HCnt, blast), nil
	}
	panic(fmt.Sprintf("exp: unknown scheme %q", pt.Scheme))
}

// RunOpts controls the simulation scale of the figure experiments. Zero
// values take the defaults below — sized so the full suite regenerates in
// minutes; raise Duration toward tREFW (32 ms) for full-fidelity runs.
type RunOpts struct {
	Duration timing.Tick // default 150 us
	// Warmup runs (and discards) this much simulated time before Duration,
	// letting tracker/filter state reach steady state. Fig11 defaults it to
	// 1 ms when unset.
	Warmup timing.Tick
	Cores  int // default 4 (one channel's share of the 14-core mixes)
	Seed   uint64
	// Subarrays shrinks per-bank subarray count to bound memory (default 16).
	Subarrays int
	// Workers bounds the number of operating points simulated concurrently
	// (default GOMAXPROCS; forced to 1 when ProbeFor is set).
	Workers int
	// ProbeFor, when set, supplies a shadowscope probe for each scheme run,
	// keyed by a "<scheme>/<workloads>/h<hcnt>" label. Baseline runs are
	// never probed (they are shared through the cache and must stay
	// unperturbed). Setting it forces Workers=1: a Recorder is not safe for
	// concurrent use.
	ProbeFor func(label string) *obs.Probe
	// SpansFor, when set, supplies a shadowtap span collector for each
	// scheme run, keyed like ProbeFor. Baseline runs are never span-tracked.
	// Setting it forces Workers=1 (callers typically aggregate the
	// collectors from one goroutine).
	SpansFor func(label string) *span.Collector
	// Progress, when set, receives per-run progress callbacks: the run's
	// label, its current simulated time, and its total horizon (drives the
	// live -inspect endpoint). Setting it forces Workers=1.
	Progress func(label string, now, total timing.Tick)
	// FullRescan runs every simulation with the pre-event-driven full-rescan
	// scheduler (see sim.Config.FullRescan): the scheduler-overhead baseline
	// for BenchmarkSim and the equivalence tests.
	FullRescan bool
	// NoTimeSkip runs every simulation with the per-tick scheduler loop
	// instead of the tick-skipping event wheel (see sim.Config.NoTimeSkip):
	// the wall-clock baseline for BenchmarkSim and the equivalence tests.
	NoTimeSkip bool

	// Fleet hooks (shadowfleet, internal/obs/fleet). Unlike ProbeFor /
	// SpansFor / Progress these do NOT force Workers=1: the fleet collector
	// synchronizes internally, and WorkerProbe hands each fan-out worker its
	// own recorder, so the sweep keeps its full parallelism while being
	// observed. All hooks may be called concurrently from every worker.
	//
	// OnPointsPlanned announces a sweep's job count before any point runs
	// (fleet progress % and ETA need the denominator; called once per
	// figure sweep, counts accumulate).
	OnPointsPlanned func(n int)
	// OnPointStart fires when a worker picks up an operating point.
	OnPointStart func(worker int, label, scheme string, seed uint64)
	// OnPointProgress mirrors Progress per worker (label, sim now/total).
	OnPointProgress func(worker int, label string, now, total timing.Tick)
	// OnPointDone fires after a point's scheme run completes, carrying the
	// order-sensitive FNV hash of its DRAM command log (the fleet divergence
	// watchdog compares it across workers for same point+seed) and the
	// measured relative performance. Setting it attaches an observation-only
	// sim.Config.OnCommand hook to scheme runs.
	OnPointDone func(worker int, label, scheme string, seed, cmdHash uint64, rel float64)
	// WorkerProbe supplies a per-(worker, point) shadowscope probe; use it
	// instead of ProbeFor when the sweep should stay parallel. The probe's
	// recorder is only ever touched from that worker's goroutine.
	WorkerProbe func(worker int, label string) *obs.Probe

	// workerID is the fan-out worker index running this point, threaded by
	// runJobs through its per-worker RunOpts copy.
	workerID int
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Duration == 0 {
		o.Duration = 150 * timing.Microsecond
	}
	if o.Cores == 0 {
		o.Cores = 4
	}
	if o.Subarrays == 0 {
		o.Subarrays = 16
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ProbeFor != nil || o.SpansFor != nil || o.Progress != nil {
		o.Workers = 1
	}
	return o
}

func (o RunOpts) Geometry(grade timing.Grade) dram.Geometry {
	g := dram.DefaultGeometry(grade == timing.DDR5_4800)
	if o.Subarrays > 0 {
		g.SubarraysPerBank = o.Subarrays
	} else {
		g.SubarraysPerBank = 16
	}
	return g
}

// runPoint simulates one (scheme, workload) point and its matching baseline,
// returning the normalized weighted speedup.
func runPoint(pt Point, profiles []trace.Profile, o RunOpts) (float64, *sim.Result, error) {
	o = o.withDefaults()
	geo := o.Geometry(pt.Grade)
	clampWS(profiles, geo)

	total := o.Duration + o.Warmup
	baseRes, err := baselineRun(pt.Grade, profiles, geo, o)
	if err != nil {
		return 0, nil, err
	}

	p, dm, mc := pt.Build(geo, o.Duration)
	label := pointLabel(pt, profiles)
	if o.OnPointStart != nil {
		o.OnPointStart(o.workerID, label, string(pt.Scheme), o.Seed)
	}
	var probe *obs.Probe
	if o.ProbeFor != nil {
		probe = o.ProbeFor(label)
	} else if o.WorkerProbe != nil {
		probe = o.WorkerProbe(o.workerID, label)
	}
	var spans *span.Collector
	if o.SpansFor != nil {
		spans = o.SpansFor(label)
	}
	var progress func(timing.Tick)
	if o.Progress != nil || o.OnPointProgress != nil {
		progress = func(now timing.Tick) {
			if o.Progress != nil {
				o.Progress(label, now, total)
			}
			if o.OnPointProgress != nil {
				o.OnPointProgress(o.workerID, label, now, total)
			}
		}
	}
	var cmdHash *flight.CmdHash
	var onCommand func(ch int, cmd memctrl.Cmd)
	if o.OnPointDone != nil {
		cmdHash = flight.NewCmdHash()
		onCommand = func(ch int, cmd memctrl.Cmd) {
			cmdHash.Note(int(cmd.Kind), cmd.Bank, cmd.Row, cmd.At)
		}
	}
	res, err := sim.Run(sim.Config{
		Params: p, Geometry: geo, DeviceMit: dm, MCSide: mc,
		Hammer:    hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
		Workload:  trace.Generators(profiles, geo, o.Seed),
		Duration:  total,
		Warmup:    o.Warmup,
		Probe:     probe,
		Spans:     spans,
		Progress:  progress,
		OnCommand: onCommand,

		FullRescan: o.FullRescan,
		NoTimeSkip: o.NoTimeSkip,
	})
	if err != nil {
		return 0, nil, err
	}
	ws := sim.WeightedSpeedup(res, baseRes)
	if o.OnPointDone != nil {
		o.OnPointDone(o.workerID, label, string(pt.Scheme), o.Seed, cmdHash.Sum(), ws)
	}
	return ws, res, nil
}

// pointLabel names a scheme run's shadowscope track. The label must be
// injective over the point's configuration: the fleet divergence watchdog
// compares command hashes of completions sharing a (label, seed) key, so
// two differently-configured points with one label would falsely trip it
// (Fig. 9 varies tRCD, Fig. 10 blast radius, Fig. 11 the DRAM grade, all
// at a fixed scheme/workload/H_cnt). Non-default fields append suffixes
// so the common case keeps the short scheme/workload/hNNNN form.
func pointLabel(pt Point, profiles []trace.Profile) string {
	names := ""
	for i, p := range profiles {
		if i > 0 {
			names += "+"
		}
		names += p.Name
	}
	label := fmt.Sprintf("%s/%s/h%d", pt.Scheme, names, pt.HCnt)
	if pt.Blast != 0 {
		label += fmt.Sprintf("/b%d", pt.Blast)
	}
	if pt.TRCDCycles != 0 {
		label += fmt.Sprintf("/trcd%d", pt.TRCDCycles)
	}
	if pt.Grade != timing.DDR4_2666 {
		label += "/" + pt.Grade.String()
	}
	return label
}

// clampWS bounds working sets to the geometry.
func clampWS(profiles []trace.Profile, g dram.Geometry) {
	for i := range profiles {
		if profiles[i].WorkingSetRows > g.PARowsPerBank() {
			profiles[i].WorkingSetRows = g.PARowsPerBank()
		}
	}
}

// RunPoint simulates one (scheme, workload) operating point and its
// matching no-mitigation baseline, returning the normalized weighted speedup
// and the scheme run's full result.
func RunPoint(pt Point, profiles []trace.Profile, o RunOpts) (float64, *sim.Result, error) {
	return runPoint(pt, profiles, o)
}

// baselineCache memoizes no-mitigation runs: every scheme point of a figure
// shares its baseline. The mutex serializes baseline construction so
// concurrent scheme points never duplicate the work.
var (
	baselineMu    sync.Mutex
	baselineCache = map[string]*sim.Result{}
)

func baselineRun(grade timing.Grade, profiles []trace.Profile, geo dram.Geometry, o RunOpts) (*sim.Result, error) {
	key := fmt.Sprintf("%v/%d/%d/%d/%d/%d/%v/%v", grade, o.Duration, o.Warmup, o.Cores, o.Seed, o.Subarrays, o.FullRescan, o.NoTimeSkip)
	for _, p := range profiles {
		key += "," + p.Name
	}
	baselineMu.Lock()
	defer baselineMu.Unlock()
	if r, ok := baselineCache[key]; ok {
		return r, nil
	}
	bp := timing.NewParams(grade)
	res, err := sim.Run(sim.Config{
		Params: bp, Geometry: geo,
		Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
		Workload: trace.Generators(profiles, geo, o.Seed),
		Duration: o.Duration + o.Warmup,
		Warmup:   o.Warmup,

		FullRescan: o.FullRescan,
		NoTimeSkip: o.NoTimeSkip,
	})
	if err != nil {
		return nil, err
	}
	baselineCache[key] = res
	return res, nil
}

// parallelEach runs f(worker, i) for i in [0, n) on up to workers
// goroutines and returns the first error. Experiment figures use it to
// sweep operating points concurrently; each point's simulation is
// independent (the shared baseline cache is internally synchronized). The
// worker index identifies the goroutine running the item — stable across
// the call, in [0, workers) — so per-worker state (fleet identity,
// per-worker recorders) needs no further synchronization. The sequential
// path runs everything as worker 0.
func parallelEach(n, workers int, f func(worker, i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := f(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg    sync.WaitGroup
		next  int64
		errMu sync.Mutex
		first error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := f(worker, i); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}
