package dram

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"shadow/internal/hammer"
	"shadow/internal/timing"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666).WithRAAIMT(16),
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGeometryHelpers(t *testing.T) {
	g := DefaultGeometry(true)
	if g.Banks != 32 {
		t.Errorf("DDR5 banks = %d, want 32", g.Banks)
	}
	if DefaultGeometry(false).Banks != 16 {
		t.Error("DDR4 banks != 16")
	}
	if g.DARowsPerSubarray() != 513 {
		t.Errorf("DA rows per subarray = %d, want 513", g.DARowsPerSubarray())
	}
	if g.PARowsPerBank() != 128*512 {
		t.Errorf("PA rows per bank = %d", g.PARowsPerBank())
	}
	sub, idx := g.SubarrayOf(513)
	if sub != 1 || idx != 1 {
		t.Errorf("SubarrayOf(513) = (%d,%d), want (1,1)", sub, idx)
	}
	if g.PARow(sub, idx) != 513 {
		t.Error("PARow does not invert SubarrayOf")
	}
	// Paper: 0.6% DRAM capacity overhead for additional rows.
	if ov := g.CapacityOverhead(); ov < 0.003 || ov > 0.006 {
		t.Errorf("capacity overhead = %.4f, want ~0.4%%", ov)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Banks: 0, SubarraysPerBank: 1, RowsPerSubarray: 1, RowBytes: 1},
		{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 1, RowBytes: 0},
		{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 1, RowBytes: 1, ExtraRows: -1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
	if err := TestGeometry().Validate(); err != nil {
		t.Errorf("TestGeometry invalid: %v", err)
	}
}

func TestRowPatternDeterminism(t *testing.T) {
	var r Row
	r.SetSeed(42)
	b1 := append([]byte(nil), r.Bytes(64)...)
	var r2 Row
	r2.SetSeed(42)
	if !bytes.Equal(b1, r2.Bytes(64)) {
		t.Fatal("same seed produced different patterns")
	}
	if !bytes.Equal(b1, PatternBytes(42, 64)) {
		t.Fatal("PatternBytes mismatch")
	}
	var r3 Row
	r3.SetSeed(43)
	if bytes.Equal(b1, r3.Bytes(64)) {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestRowFlipAndIntegrity(t *testing.T) {
	var r Row
	r.SetSeed(7)
	if got := r.CorruptedBits(7, 64); got != 0 {
		t.Fatalf("fresh row corrupted bits = %d", got)
	}
	r.FlipBit(100, 64)
	if got := r.CorruptedBits(7, 64); got != 1 {
		t.Fatalf("after one flip corrupted bits = %d", got)
	}
	r.FlipBit(100, 64) // flip back
	if got := r.CorruptedBits(7, 64); got != 0 {
		t.Fatalf("after flip-back corrupted bits = %d", got)
	}
}

func TestRowCopyFrom(t *testing.T) {
	var src, dst Row
	src.SetSeed(1)
	dst.SetSeed(2)
	// Unmaterialized copy moves only the seed.
	dst.CopyFrom(&src, 64)
	if dst.Materialized() {
		t.Fatal("copy of unmaterialized row should stay unmaterialized")
	}
	if dst.CorruptedBits(1, 64) != 0 {
		t.Fatal("copied row does not match source pattern")
	}
	// Materialized (corrupted) copy moves the bytes.
	src.FlipBit(5, 64)
	dst.CopyFrom(&src, 64)
	if dst.CorruptedBits(1, 64) != 1 {
		t.Fatal("copy did not preserve corruption")
	}
}

func TestActivateReadPrechargeCycle(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	now := timing.Tick(0)
	if err := d.Activate(0, 5, now); err != nil {
		t.Fatal(err)
	}
	// RD before tRCD must fail.
	if err := d.Read(0, now+p.RCD-1); err == nil {
		t.Fatal("RD before tRCD accepted")
	}
	if err := d.Read(0, now+p.RCD); err != nil {
		t.Fatal(err)
	}
	// PRE before tRAS must fail.
	if err := d.Precharge(0, now+p.RAS-1); err == nil {
		t.Fatal("PRE before tRAS accepted")
	}
	if err := d.Precharge(0, now+p.RAS); err != nil {
		t.Fatal(err)
	}
	// ACT before tRP must fail.
	if err := d.Activate(0, 6, now+p.RAS+p.RP-1); err == nil {
		t.Fatal("ACT before tRP accepted")
	}
	if err := d.Activate(0, 6, now+p.RAS+p.RP); err != nil {
		t.Fatal(err)
	}
	var te *TimingError
	err := d.Read(0, now+p.RAS+p.RP)
	if !errors.As(err, &te) {
		t.Fatalf("want TimingError, got %v", err)
	}
	if !strings.Contains(te.Error(), "RD") {
		t.Errorf("error lacks command name: %v", te)
	}
}

func TestDoubleActivateRejected(t *testing.T) {
	d := testDevice(t)
	if err := d.Activate(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Activate(1, 1, d.Params().RC); err == nil {
		t.Fatal("ACT on open bank accepted")
	}
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	if err := d.Activate(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	wrAt := p.EffectiveRCD()
	if err := d.Write(0, wrAt); err != nil {
		t.Fatal(err)
	}
	preOK := wrAt + p.WL + p.BL + p.WR
	if preOK < p.RAS {
		t.Skip("geometry makes tRAS dominate")
	}
	if err := d.Precharge(0, preOK-1); err == nil {
		t.Fatal("PRE inside write recovery accepted")
	}
	if err := d.Precharge(0, preOK); err != nil {
		t.Fatal(err)
	}
}

func TestPrechargeClosedBankIsNoop(t *testing.T) {
	d := testDevice(t)
	if err := d.Precharge(2, 0); err != nil {
		t.Fatalf("PRE on idle bank should be a no-op, got %v", err)
	}
}

func TestRefreshCoversAllRowsWithinREFW(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	slots := int(p.REFW / p.REFI)
	rows := d.Geometry().DARowsPerBank()
	if got := d.RowsPerREF() * slots; got < rows {
		t.Fatalf("auto-refresh covers %d rows per tREFW, need >= %d", got, rows)
	}
	now := timing.Tick(0)
	if err := d.Refresh(now); err != nil {
		t.Fatal(err)
	}
	if d.Refs != 1 {
		t.Fatalf("Refs = %d", d.Refs)
	}
	// Bank busy during tRFC.
	if err := d.Activate(0, 0, now+p.RFC-1); err == nil {
		t.Fatal("ACT during tRFC accepted")
	}
	if err := d.Activate(0, 0, now+p.RFC); err != nil {
		t.Fatal(err)
	}
	// REF with an open bank must fail.
	if err := d.Refresh(now + p.RFC); err == nil {
		t.Fatal("REF with open bank accepted")
	}
}

func TestAutoRefreshResetsHammerPressure(t *testing.T) {
	d, err := NewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: 1000, BlastRadius: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Params()
	now := timing.Tick(0)
	// Hammer row 5 of bank 0 for a while.
	for i := 0; i < 100; i++ {
		if err := d.Activate(0, 5, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(0, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
	}
	sa := d.Bank(0).Subarray(0)
	if sa.Hammer.Pressure(4) != 100 {
		t.Fatalf("pressure = %g, want 100", sa.Hammer.Pressure(4))
	}
	// One full sweep of REF commands must reset it.
	slots := int(p.REFW/p.REFI) + 1
	for i := 0; i < slots; i++ {
		if err := d.Refresh(now); err != nil {
			t.Fatal(err)
		}
		now += p.RFC
	}
	if got := sa.Hammer.Pressure(4); got != 0 {
		t.Fatalf("pressure after full refresh sweep = %g, want 0", got)
	}
}

func TestHammerFlipCorruptsData(t *testing.T) {
	d, err := NewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: 50, BlastRadius: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := d.Params()
	now := timing.Tick(0)
	for i := 0; i < 50; i++ {
		if err := d.Activate(0, 5, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(0, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
	}
	if d.FlipCount() != 2 {
		t.Fatalf("FlipCount = %d, want 2 (both neighbors)", d.FlipCount())
	}
	if got := d.CorruptedBitsPA(0, 4); got != 1 {
		t.Errorf("PA row 4 corrupted bits = %d, want 1", got)
	}
	if got := d.CorruptedBitsPA(0, 6); got != 1 {
		t.Errorf("PA row 6 corrupted bits = %d, want 1", got)
	}
	if got := d.CorruptedBitsPA(0, 5); got != 0 {
		t.Errorf("aggressor row corrupted bits = %d, want 0", got)
	}
	for _, f := range d.Flips() {
		if f.Bank != 0 || f.Sub != 0 {
			t.Errorf("flip at bank %d sub %d, want 0/0", f.Bank, f.Sub)
		}
	}
}

func TestRowCopyMovesData(t *testing.T) {
	d := testDevice(t)
	b := d.Bank(0)
	sa := b.Subarray(2)
	want := append([]byte(nil), sa.Row(3).Bytes(d.Geometry().RowBytes)...)
	if err := b.RowCopy(2, 3, 9, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Row(9).Bytes(d.Geometry().RowBytes), want) {
		t.Fatal("row copy did not move data")
	}
	if b.Stats.RowCopies != 1 {
		t.Fatalf("RowCopies = %d", b.Stats.RowCopies)
	}
	if err := b.RowCopy(2, 4, 4, 0); err == nil {
		t.Fatal("self copy accepted")
	}
}

func TestRowCopyRequiresClosedBank(t *testing.T) {
	d := testDevice(t)
	if err := d.Activate(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Bank(0).RowCopy(0, 1, 2, d.Params().RCD); err == nil {
		t.Fatal("row copy with open bank accepted")
	}
}

func TestRFMBusyAndRAA(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	now := timing.Tick(0)
	// Run RAAIMT activations.
	for i := 0; i < p.RAAIMT; i++ {
		if err := d.Activate(3, i, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(3, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
	}
	if got := d.Bank(3).RAA; got != p.RAAIMT {
		t.Fatalf("RAA = %d, want %d", got, p.RAAIMT)
	}
	if err := d.RFM(3, now); err != nil {
		t.Fatal(err)
	}
	if got := d.Bank(3).RAA; got != 0 {
		t.Fatalf("RAA after RFM = %d, want 0", got)
	}
	// Bank busy for tRFM.
	if err := d.Activate(3, 0, now+p.RFM-1); err == nil {
		t.Fatal("ACT during tRFM accepted")
	}
	if err := d.Activate(3, 0, now+p.RFM); err != nil {
		t.Fatal(err)
	}
	if d.Bank(3).Stats.RFMs != 1 {
		t.Fatal("RFM not counted")
	}
}

func TestIdentityTranslate(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	f := func(row uint16) bool {
		pa := int(row) % g.PARowsPerBank()
		sub, da := Identity{}.Translate(d.Bank(0), pa)
		wsub, wda := g.SubarrayOf(pa)
		return sub == wsub && da == wda
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (Identity{}).Name() != "baseline" {
		t.Error("unexpected identity name")
	}
}

func TestBadAddressesRejected(t *testing.T) {
	d := testDevice(t)
	if err := d.Activate(99, 0, 0); err == nil {
		t.Error("bad bank accepted")
	}
	if err := d.Activate(0, -1, 0); err == nil {
		t.Error("negative row accepted")
	}
	if err := d.Activate(0, d.Geometry().PARowsPerBank(), 0); err == nil {
		t.Error("row beyond PA space accepted")
	}
	if err := d.Read(-1, 0); err == nil {
		t.Error("bad bank read accepted")
	}
}

func TestSoftPPR(t *testing.T) {
	d := testDevice(t)
	g := d.Geometry()
	// Corrupt PA row 7's current cell, then repair it to the spare row.
	before := append([]byte(nil), d.InspectPA(0, 7)...)
	if err := d.SoftPPR(0, 7, 0, g.DARowsPerSubarray()-1); err != nil {
		t.Fatal(err)
	}
	if d.SPPRCount(0) != 1 {
		t.Fatalf("SPPRCount = %d", d.SPPRCount(0))
	}
	// Data followed the repair.
	if !bytes.Equal(d.InspectPA(0, 7), before) {
		t.Fatal("sPPR lost row contents")
	}
	// Activation goes to the spare now.
	if err := d.Activate(0, 7, 0); err != nil {
		t.Fatal(err)
	}
	_, da, ok := d.Bank(0).Open()
	if !ok || da != g.DARowsPerSubarray()-1 {
		t.Fatalf("open row = %d, want spare %d", da, g.DARowsPerSubarray()-1)
	}
	// Repairing to the same spot is rejected.
	if err := d.SoftPPR(0, 7, 0, g.DARowsPerSubarray()-1); err == nil {
		t.Fatal("duplicate sPPR accepted")
	}
}

func TestTotalStats(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	now := timing.Tick(0)
	for bank := 0; bank < 2; bank++ {
		if err := d.Activate(bank, 0, now); err != nil {
			t.Fatal(err)
		}
		if err := d.Read(bank, now+p.EffectiveRCD()); err != nil {
			t.Fatal(err)
		}
		if err := d.Precharge(bank, now+p.RAS); err != nil {
			t.Fatal(err)
		}
	}
	s := d.TotalStats()
	if s.Acts != 2 || s.Reads != 2 || s.Pres != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNewDeviceValidation(t *testing.T) {
	_, err := NewDevice(Config{Geometry: Geometry{}, Params: timing.NewParams(timing.DDR4_2666), Hammer: hammer.DefaultConfig()})
	if err == nil {
		t.Error("bad geometry accepted")
	}
	_, err = NewDevice(Config{Geometry: TestGeometry(), Params: timing.NewParams(timing.DDR4_2666), Hammer: hammer.Config{}})
	if err == nil {
		t.Error("bad hammer config accepted")
	}
}

func TestSoftPPRRejectsActiveRemapper(t *testing.T) {
	// A non-identity mitigator (anything that remaps) must reject sPPR.
	d, err := NewDevice(Config{
		Geometry:  TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666),
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Mitigator: fakeRemapper{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SoftPPR(0, 1, 0, 5); err == nil {
		t.Fatal("sPPR accepted with a dynamic remapper installed")
	}
}

// fakeRemapper is a trivial non-identity mitigator for the sPPR guard test.
type fakeRemapper struct{ Identity }

func (fakeRemapper) Name() string { return "fake-remapper" }

func TestScrubFindsFlips(t *testing.T) {
	d, err := NewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: 40, BlastRadius: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := d.Scrub(); rep.CorruptedRows != 0 || rep.RowsChecked == 0 {
		t.Fatalf("fresh device scrub = %+v", rep)
	}
	p := d.Params()
	now := timing.Tick(0)
	for i := 0; i < 40; i++ {
		if err := d.Activate(1, 5, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(1, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
	}
	rep := d.Scrub()
	if rep.CorruptedRows != 2 || rep.CorruptedBits != 2 {
		t.Fatalf("scrub = %+v, want 2 rows / 2 bits", rep)
	}
	if rep.PerBank[1] != 2 || rep.PerBank[0] != 0 {
		t.Fatalf("per-bank = %v", rep.PerBank)
	}
}

func TestBankAccessors(t *testing.T) {
	d := testDevice(t)
	b := d.Bank(2)
	if b.ID() != 2 {
		t.Fatalf("ID = %d", b.ID())
	}
	if b.Params() != d.Params() {
		t.Fatal("Params mismatch")
	}
	if b.Geometry() != d.Geometry() {
		t.Fatal("Geometry mismatch")
	}
	if d.Banks() != d.Geometry().Banks {
		t.Fatalf("Banks = %d", d.Banks())
	}
	if d.Mitigator().Name() != "baseline" {
		t.Fatalf("Mitigator = %q", d.Mitigator().Name())
	}
	// Remap row accessible and distinct from ordinary rows.
	sa := b.Subarray(0)
	if sa.RemapRow() == sa.Row(0) {
		t.Fatal("remap row aliases an ordinary row")
	}
}

func TestNextReadyTimes(t *testing.T) {
	d := testDevice(t)
	p := d.Params()
	b := d.Bank(0)
	// Closed bank: ACT ready now, RD/PRE never.
	if b.NextACTReady() != 0 {
		t.Fatalf("NextACTReady = %v", b.NextACTReady())
	}
	if b.NextRDReady() != timing.Forever || b.NextPREReady() != timing.Forever {
		t.Fatal("closed bank should never be RD/PRE ready")
	}
	if err := d.Activate(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	if b.NextACTReady() != timing.Forever {
		t.Fatal("open bank should never be ACT ready")
	}
	if b.NextRDReady() != p.EffectiveRCD() {
		t.Fatalf("NextRDReady = %v, want tRCD %v", b.NextRDReady(), p.EffectiveRCD())
	}
	if b.NextPREReady() != p.RAS {
		t.Fatalf("NextPREReady = %v, want tRAS %v", b.NextPREReady(), p.RAS)
	}
	if b.BusyUntil() != 0 {
		t.Fatalf("BusyUntil = %v", b.BusyUntil())
	}
}

func TestInternalActivateDisturbsAndRestores(t *testing.T) {
	d, err := NewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: 1000, BlastRadius: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := d.Bank(0)
	sa := b.Subarray(0)
	// Build pressure on row 5 via its neighbor.
	for i := 0; i < 10; i++ {
		sa.Hammer.Activate(6)
	}
	if sa.Hammer.Pressure(5) != 10 {
		t.Fatal("setup failed")
	}
	b.InternalActivate(0, 5)
	if sa.Hammer.Pressure(5) != 0 {
		t.Fatal("internal activate did not restore the row")
	}
	if sa.Hammer.Pressure(4) != 1 {
		t.Fatalf("neighbor pressure = %g, want 1 (internal ACT disturbs)", sa.Hammer.Pressure(4))
	}
}

func TestMustNewDevice(t *testing.T) {
	d := MustNewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.DefaultConfig(),
	})
	if d == nil {
		t.Fatal("nil device")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewDevice with bad config did not panic")
		}
	}()
	MustNewDevice(Config{})
}

func TestRefreshBank(t *testing.T) {
	// DDR4 has no tRFCsb.
	d4 := testDevice(t)
	if err := d4.RefreshBank(0, 0); err == nil {
		t.Fatal("REFsb accepted on DDR4")
	}
	d5 := MustNewDevice(Config{
		Geometry: TestGeometry(),
		Params:   timing.NewParams(timing.DDR5_4800),
		Hammer:   hammer.DefaultConfig(),
	})
	p := d5.Params()
	if err := d5.RefreshBank(1, 0); err != nil {
		t.Fatal(err)
	}
	if d5.Refs != 1 {
		t.Fatalf("Refs = %d", d5.Refs)
	}
	// Only bank 1 is busy.
	if err := d5.Activate(1, 0, p.RFCsb-1); err == nil {
		t.Fatal("ACT on refreshing bank accepted")
	}
	if err := d5.Activate(2, 0, p.RFCsb-1); err != nil {
		t.Fatalf("other bank blocked by REFsb: %v", err)
	}
	if d5.Bank(1).Stats.RefRows != int64(d5.RowsPerREF()) {
		t.Fatalf("RefRows = %d", d5.Bank(1).Stats.RefRows)
	}
}

func TestSwapRowsDevice(t *testing.T) {
	d := testDevice(t)
	a := append([]byte(nil), d.InspectPA(0, 3)...)
	bb := append([]byte(nil), d.InspectPA(0, 9)...)
	if err := d.SwapRows(0, 3, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.InspectPA(0, 3), bb) || !bytes.Equal(d.InspectPA(0, 9), a) {
		t.Fatal("swap did not exchange contents")
	}
	if err := d.SwapRows(0, 3, 3); err == nil {
		t.Fatal("self swap accepted")
	}
	if err := d.SwapRows(99, 0, 1); err == nil {
		t.Fatal("bad bank accepted")
	}
}

func TestRowSeedAccessor(t *testing.T) {
	var r Row
	r.SetSeed(77)
	if r.Seed() != 77 {
		t.Fatalf("Seed = %d", r.Seed())
	}
	// Unmaterialized rows with different seeds compare by pattern.
	var q Row
	q.SetSeed(78)
	if q.CorruptedBits(77, 32) == 0 {
		t.Fatal("different seeds should differ")
	}
	var same Row
	same.SetSeed(77)
	if same.CorruptedBits(77, 32) != 0 {
		t.Fatal("same seed should match without materializing")
	}
}
