package dram

import "fmt"

// Soft post-package repair (sPPR), a DDR4/DDR5 maintenance feature the paper
// highlights (Section VIII) as evidence that a low-overhead runtime address
// relocation path already exists in commodity DRAM — the same path SHADOW's
// remapping reuses. SoftPPR redirects a PA row to any chosen device row;
// the override sits in front of the installed mitigator's translation,
// mirroring how the sPPR fuse-latch match happens before row decoding.

// spprEntry records one repair.
type spprEntry struct{ sub, da int }

// SoftPPR remaps PA row paRow of bank to device row (sub, da), copying the
// row's current contents to the replacement (repair semantics). It is a
// maintenance operation outside the timing model.
func (d *Device) SoftPPR(bank, paRow, sub, da int) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if _, ok := d.mit.(Identity); !ok {
		// A dynamic remapper (SHADOW) may later choose the repair target as
		// a shuffle destination; composing the two needs the controller to
		// reserve repair rows, which this model does not implement.
		return fmt.Errorf("dram: sPPR requires the identity mitigator (device runs %q)", d.mit.Name())
	}
	if paRow < 0 || paRow >= d.geo.PARowsPerBank() {
		return fmt.Errorf("dram: sPPR PA row %d out of range", paRow)
	}
	if sub < 0 || sub >= d.geo.SubarraysPerBank || da < 0 || da >= d.geo.DARowsPerSubarray() {
		return fmt.Errorf("dram: sPPR target (%d,%d) out of range", sub, da)
	}
	b := d.banks[bank]
	curSub, curDA := d.translate(b, paRow)
	if curSub == sub && curDA == da {
		return fmt.Errorf("dram: sPPR target equals current location (%d,%d)", sub, da)
	}
	dst := b.Subarray(sub).Row(da)
	dst.CopyFrom(b.Subarray(curSub).Row(curDA), d.geo.RowBytes)
	if b.sppr == nil {
		b.sppr = make(map[int]spprEntry)
	}
	b.sppr[paRow] = spprEntry{sub: sub, da: da}
	return nil
}

// SPPRCount returns the number of active repairs in a bank.
func (d *Device) SPPRCount(bank int) int { return len(d.banks[bank].sppr) }

// translate resolves a PA row through the sPPR override, then the mitigator.
func (d *Device) translate(b *Bank, paRow int) (int, int) {
	if e, ok := b.sppr[paRow]; ok {
		return e.sub, e.da
	}
	return d.mit.Translate(b, paRow)
}
