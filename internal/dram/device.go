package dram

import (
	"fmt"

	"shadow/internal/hammer"
	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

// Mitigator is the in-DRAM protection hook. The device consults it to
// translate MC-visible PA rows to device rows on every ACT and hands it the
// RFM commands the MC issues. The identity mitigator (an unprotected device)
// is the zero behaviour; package shadow provides the paper's contribution
// and package mitigate the DRAM-side baselines (PARFM, Mithril).
type Mitigator interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Translate maps a PA row of a bank to the (subarray, DA row) that
	// currently holds its data.
	Translate(b *Bank, paRow int) (sub, da int)
	// OnACT observes every MC-issued activation (after translation).
	OnACT(b *Bank, paRow, sub, da int, now timing.Tick)
	// OnRFM performs the scheme's mitigating action for an RFM command on
	// bank b. The bank is precharged and will be held busy for tRFM.
	OnRFM(b *Bank, now timing.Tick)
	// NextEventAt returns the earliest future instant at which the scheme
	// could act on its own schedule rather than in response to a command
	// (timing.Forever when it has no autonomous timer). The event wheel
	// folds this into its jump bound; returning a too-early time costs an
	// extra no-op wakeup, never correctness.
	NextEventAt(now timing.Tick) timing.Tick
}

// Identity is the unprotected device's translation: PA row i lives at
// subarray i/512, row i%512, forever.
type Identity struct{}

// Name implements Mitigator.
func (Identity) Name() string { return "baseline" }

// Translate implements Mitigator.
func (Identity) Translate(b *Bank, paRow int) (int, int) {
	return b.geo.SubarrayOf(paRow)
}

// OnACT implements Mitigator.
func (Identity) OnACT(*Bank, int, int, int, timing.Tick) {}

// OnRFM implements Mitigator.
func (Identity) OnRFM(*Bank, timing.Tick) {}

// NextEventAt implements Mitigator: an unprotected device has no timers.
func (Identity) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// FlipRecord is a bit flip observed anywhere in the device.
type FlipRecord struct {
	Bank, Sub, DA int
	Flip          hammer.Flip
}

// Device models one DRAM rank.
type Device struct {
	geo   Geometry
	p     *timing.Params
	banks []*Bank
	mit   Mitigator

	refRowsPerREF int
	flips         []FlipRecord

	// shadowscope instrumentation. cmdAt is the time of the command being
	// executed, recorded so the flip sink (which has no time parameter) can
	// timestamp flip events.
	probe      *obs.Probe
	flipSeries *obs.Series
	// flipCount mirrors the flip series as a plain counter so the Inspector's
	// Prometheus exposition (counters/gauges/histograms only) can alert on
	// flips; series stay in the JSON/CSV dumps.
	flipCount *obs.Counter
	cmdAt     timing.Tick

	// shadowtap span tracker (nil-inert): the device opens pre-attributed
	// busy windows when REF/REFsb/RFM commands start their busy time, so the
	// controller can blame ACT waits on the right cause. rfmCause is what the
	// mitigator claims for the RFM windows it fills.
	spans    *span.Tracker
	rfmCause span.Cause

	// busyNotify, when set, observes every device-side bank busy window
	// (REF/REFsb/RFM) as it opens. The memory controller registers it to
	// keep its per-bank readiness cache tight: nothing can issue on the
	// bank before the window closes.
	busyNotify func(bank int, until timing.Tick)

	// Stats aggregated over banks plus rank-level commands.
	Refs int64
}

// Config bundles device construction parameters.
type Config struct {
	Geometry Geometry
	Params   *timing.Params
	Hammer   hammer.Config
	// Mitigator defaults to Identity when nil.
	Mitigator Mitigator
	// Probe, when set, records bit-flip events and a flip-rate series.
	Probe *obs.Probe
	// Spans, when set, attaches shadowtap busy-window attribution for
	// REF/REFsb/RFM commands.
	Spans *span.Tracker
}

// NewDevice builds a rank.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Hammer.HCnt <= 0 || cfg.Hammer.BlastRadius <= 0 {
		return nil, fmt.Errorf("dram: invalid hammer config %+v", cfg.Hammer)
	}
	mit := cfg.Mitigator
	if mit == nil {
		mit = Identity{}
	}
	d := &Device{
		geo:   cfg.Geometry,
		p:     cfg.Params,
		banks: make([]*Bank, cfg.Geometry.Banks),
		mit:   mit,
		probe: cfg.Probe,
		spans: cfg.Spans,
	}
	d.flipSeries = cfg.Probe.Series("dram/flips")
	d.flipCount = cfg.Probe.Counter("dram/flips_total")
	d.rfmCause = span.CauseRFM
	if a, ok := mit.(span.Attributor); ok {
		d.rfmCause = a.RFMBlame()
	}
	// Auto-refresh must cover every DA row once per tREFW: rows per REF =
	// ceil(rows / (REFW/REFI)).
	slots := int(cfg.Params.REFW / cfg.Params.REFI)
	if slots <= 0 {
		slots = 1
	}
	d.refRowsPerREF = (cfg.Geometry.DARowsPerBank() + slots - 1) / slots
	for i := range d.banks {
		b := newBank(i, cfg.Geometry, cfg.Params, cfg.Hammer)
		b.flipSink = func(bankID, sub, da int, f hammer.Flip) {
			d.flips = append(d.flips, FlipRecord{Bank: bankID, Sub: sub, DA: da, Flip: f})
			if d.probe != nil {
				d.probe.Emit(obs.Event{
					At: d.cmdAt, Kind: obs.KindFlip,
					Bank: bankID, Row: da, Aux: int64(sub),
				})
				d.flipSeries.Add(d.cmdAt, 1)
				d.flipCount.Inc()
			}
		}
		d.banks[i] = b
	}
	return d, nil
}

// MustNewDevice is NewDevice that panics on configuration errors, for tests
// and examples with known-good configs.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(fmt.Sprintf("dram: invalid device config: %v", err))
	}
	return d
}

// SetBusyNotifier registers fn to observe every bank busy window the device
// opens (REF, REFsb, RFM), with the tick at which the window ends. One
// observer; nil detaches.
func (d *Device) SetBusyNotifier(fn func(bank int, until timing.Tick)) {
	d.busyNotify = fn
}

// Geometry returns the rank geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Params returns the timing parameters.
func (d *Device) Params() *timing.Params { return d.p }

// Mitigator returns the installed protection scheme.
func (d *Device) Mitigator() Mitigator { return d.mit }

// Bank returns bank i.
func (d *Device) Bank(i int) *Bank { return d.banks[i] }

// Banks returns the number of banks.
func (d *Device) Banks() int { return len(d.banks) }

// NextDeadline returns the earliest future device-side deadline: the
// installed mitigator's next autonomous timer, timing.Forever when it has
// none. Per-bank busy windows (Bank.NextDeadline) are deliberately NOT
// folded in: a bank finishing its REF/RFM is only actionable if a request
// waits on it, and that request's bank already has a (sound, lower-bound)
// key in the controller's readiness cache — adding the busy horizon here
// would wake the wheel at every staggered per-bank refresh completion and
// cost an O(banks) scan per quiescent bound. The event wheel folds this
// into its jump bound; it is a pure query.
func (d *Device) NextDeadline(now timing.Tick) timing.Tick {
	return d.mit.NextEventAt(now)
}

// RowsPerREF returns how many rows each bank refreshes per REF command.
func (d *Device) RowsPerREF() int { return d.refRowsPerREF }

// Activate opens PA row paRow of bank at time now, translating through the
// mitigator.
func (d *Device) Activate(bank, paRow int, now timing.Tick) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if paRow < 0 || paRow >= d.geo.PARowsPerBank() {
		return fmt.Errorf("dram: PA row %d out of range [0,%d)", paRow, d.geo.PARowsPerBank()) //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b := d.banks[bank]
	sub, da := d.translate(b, paRow)
	d.cmdAt = now
	if err := b.Activate(sub, da, now); err != nil {
		return err
	}
	d.mit.OnACT(b, paRow, sub, da, now)
	return nil
}

// Read performs a column read on bank's open row.
func (d *Device) Read(bank int, now timing.Tick) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	return d.banks[bank].Read(now)
}

// Write performs a column write on bank's open row.
func (d *Device) Write(bank int, now timing.Tick) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	return d.banks[bank].Write(now)
}

// Precharge closes bank's open row.
func (d *Device) Precharge(bank int, now timing.Tick) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	return d.banks[bank].Precharge(now)
}

// Refresh executes an all-bank auto-refresh (REF): every bank refreshes its
// next RowsPerREF rows and the rank is busy for tRFC. All banks must be
// precharged.
func (d *Device) Refresh(now timing.Tick) error {
	for _, b := range d.banks {
		if b.open {
			return &TimingError{Cmd: "REF (bank open)", Bank: b.id, Now: now, ReadyAt: b.preReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
		}
	}
	for _, b := range d.banks {
		if err := b.AutoRefresh(d.refRowsPerREF, now, d.p.RFC); err != nil {
			return err
		}
		if d.busyNotify != nil {
			d.busyNotify(b.id, now+d.p.RFC) //shadowvet:ignore allocflow -- wired to the controller's readiness-cache update, itself covered by the minq zero-alloc roots
		}
	}
	d.Refs++
	d.spans.NoteAllBusy(now, now+d.p.RFC, span.CauseRefresh)
	return nil
}

// RefreshBank executes a DDR5 same-bank refresh (REFsb): only the named
// bank refreshes its next RowsPerREF rows and is busy for tRFCsb; other
// banks keep serving. Unsupported (tRFCsb = 0) parameter sets reject it.
func (d *Device) RefreshBank(bank int, now timing.Tick) error {
	if d.p.RFCsb <= 0 {
		return fmt.Errorf("dram: REFsb unsupported by %v", d.p.Grade) //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if err := d.checkBank(bank); err != nil {
		return err
	}
	b := d.banks[bank]
	if err := b.AutoRefresh(d.refRowsPerREF, now, d.p.RFCsb); err != nil {
		return err
	}
	d.Refs++
	if d.busyNotify != nil {
		d.busyNotify(bank, now+d.p.RFCsb) //shadowvet:ignore allocflow -- wired to the controller's readiness-cache update, itself covered by the minq zero-alloc roots
	}
	d.spans.NoteBusy(bank, now, now+d.p.RFCsb, span.CauseRefresh)
	return nil
}

// RFM executes a per-bank refresh-management command: the bank is busy for
// tRFM while the mitigator performs its action (SHADOW: row-shuffle +
// incremental refresh; PARFM/Mithril: TRR). The bank's RAA counter is
// decremented by RAAIMT per JEDEC.
func (d *Device) RFM(bank int, now timing.Tick) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	b := d.banks[bank]
	if b.open {
		return &TimingError{Cmd: "RFM (bank open)", Bank: b.id, Now: now, ReadyAt: b.preReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if r := b.readyForACT(); now < r {
		return &TimingError{Cmd: "RFM", Bank: b.id, Now: now, ReadyAt: r} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b.Stats.RFMs++
	b.RAA -= d.p.RAAIMT
	if b.RAA < 0 {
		b.RAA = 0
	}
	d.cmdAt = now
	d.mit.OnRFM(b, now)
	b.setBusy(now + d.p.RFM)
	if d.busyNotify != nil {
		d.busyNotify(bank, now+d.p.RFM) //shadowvet:ignore allocflow -- wired to the controller's readiness-cache update, itself covered by the minq zero-alloc roots
	}
	d.spans.NoteBusy(bank, now, now+d.p.RFM, d.rfmCause)
	return nil
}

// SwapRows exchanges the contents of two PA rows of a bank — the data
// movement behind an RRS row swap, performed by the MC with reads and writes
// over the channel. Both rows end fully restored. The caller accounts for
// the channel-blocking time.
func (d *Device) SwapRows(bank, paA, paB int) error {
	if err := d.checkBank(bank); err != nil {
		return err
	}
	if paA == paB {
		return fmt.Errorf("dram: swap of row %d with itself", paA) //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b := d.banks[bank]
	subA, daA := d.translate(b, paA)
	subB, daB := d.translate(b, paB)
	ra, rb := b.Subarray(subA).Row(daA), b.Subarray(subB).Row(daB)
	var tmp Row
	tmp.CopyFrom(ra, d.geo.RowBytes)
	ra.CopyFrom(rb, d.geo.RowBytes)
	rb.CopyFrom(&tmp, d.geo.RowBytes)
	b.Subarray(subA).Hammer.Refresh(daA)
	b.Subarray(subB).Hammer.Refresh(daB)
	return nil
}

// Flips returns every bit flip the device has suffered.
func (d *Device) Flips() []FlipRecord { return d.flips }

// FlipCount returns the total number of bit flips.
func (d *Device) FlipCount() int { return len(d.flips) }

// InspectPA returns the current payload of a PA row (debug/verification
// path; no timing effects).
func (d *Device) InspectPA(bank, paRow int) []byte {
	b := d.banks[bank]
	sub, da := d.translate(b, paRow)
	return b.Subarray(sub).Row(da).Bytes(d.geo.RowBytes)
}

// ScrubReport summarizes a device-wide integrity scrub.
type ScrubReport struct {
	RowsChecked   int
	CorruptedRows int
	CorruptedBits int
	// PerBank counts corrupted rows by bank.
	PerBank map[int]int
}

// Scrub verifies every PA row of every bank against its power-on pattern —
// the ECC-scrubber's view of the device after an attack. Rows written by the
// workload would legitimately differ; the simulator's traffic never writes
// new values (writes re-commit the stored pattern), so any mismatch is Row
// Hammer corruption.
func (d *Device) Scrub() ScrubReport {
	rep := ScrubReport{PerBank: make(map[int]int)}
	for bank := range d.banks {
		for pa := 0; pa < d.geo.PARowsPerBank(); pa++ {
			rep.RowsChecked++
			if bits := d.CorruptedBitsPA(bank, pa); bits > 0 {
				rep.CorruptedRows++
				rep.CorruptedBits += bits
				rep.PerBank[bank]++
			}
		}
	}
	return rep
}

// CorruptedBitsPA counts bit errors in a PA row relative to its power-on
// pattern.
func (d *Device) CorruptedBitsPA(bank, paRow int) int {
	b := d.banks[bank]
	sub, da := d.translate(b, paRow)
	return b.Subarray(sub).Row(da).CorruptedBits(b.InitialSeed(paRow), d.geo.RowBytes)
}

// TotalStats sums the per-bank statistics.
func (d *Device) TotalStats() BankStats {
	var t BankStats
	for _, b := range d.banks {
		t.Acts += b.Stats.Acts
		t.Reads += b.Stats.Reads
		t.Writes += b.Stats.Writes
		t.Pres += b.Stats.Pres
		t.RefRows += b.Stats.RefRows
		t.RFMs += b.Stats.RFMs
		t.RowCopies += b.Stats.RowCopies
		t.Flips += b.Stats.Flips
	}
	return t
}

func (d *Device) checkBank(bank int) error {
	if bank < 0 || bank >= len(d.banks) {
		return fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks)) //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	return nil
}
