package dram

import (
	"fmt"

	"shadow/internal/hammer"
	"shadow/internal/timing"
)

// Subarray is one 2D cell mat: its device-addressable rows (PA rows plus the
// extra rows SHADOW provisions), its remapping-row (physically present in
// every subarray; used only when SHADOW pairs it), and the hammer tracker
// covering the ordinary rows. Disturbance never crosses subarrays (threat
// model item 3), which is why the tracker lives here.
type Subarray struct {
	rows   []Row
	remap  Row
	Hammer *hammer.Subarray
}

// Row returns the row at DA index da within the subarray.
func (s *Subarray) Row(da int) *Row { return &s.rows[da] }

// RemapRow returns the subarray's remapping-row payload.
func (s *Subarray) RemapRow() *Row { return &s.remap }

// Bank is one DRAM bank: subarrays plus the JEDEC state machine. All
// timing-checked entry points take the current time and return a
// *TimingError if the command violates a constraint.
type Bank struct {
	id   int
	geo  Geometry
	p    *timing.Params
	hcfg hammer.Config

	subs []*Subarray // lazily allocated

	// State machine.
	open       bool
	openSub    int
	openDA     int
	rdReadyAt  timing.Tick // ACT + tRCD'
	preReadyAt timing.Tick // max(ACT+tRAS, RD+tRTP, WR+WL+BL+tWR)
	actReadyAt timing.Tick // PRE + tRP, or REF/RFM completion
	busyUntil  timing.Tick // REF/RFM in progress

	refreshPtr int // next DA row (bank-linear) for auto-refresh

	// sppr holds active soft post-package repairs (see sppr.go).
	sppr map[int]spprEntry

	// RAA is the Rolling Accumulated ACT counter of the RFM interface. The
	// MC mirrors it; the device keeps the authoritative copy.
	RAA int

	Stats BankStats

	flipSink func(bankID, sub, da int, f hammer.Flip)
}

// BankStats counts the commands a bank executed.
type BankStats struct {
	Acts, Reads, Writes, Pres, RefRows, RFMs int64
	RowCopies                                int64
	Flips                                    int64
}

// TimingError reports a command issued before the bank was ready.
type TimingError struct {
	Cmd     string
	Bank    int
	Now     timing.Tick
	ReadyAt timing.Tick
}

func (e *TimingError) Error() string {
	return fmt.Sprintf("dram: bank %d: %s at %v before ready time %v", e.Bank, e.Cmd, e.Now, e.ReadyAt)
}

func newBank(id int, geo Geometry, p *timing.Params, hcfg hammer.Config) *Bank {
	return &Bank{
		id:   id,
		geo:  geo,
		p:    p,
		hcfg: hcfg,
		subs: make([]*Subarray, geo.SubarraysPerBank),
	}
}

// ID returns the bank's index within its rank.
func (b *Bank) ID() int { return b.id }

// Params returns the timing parameters the bank operates under.
func (b *Bank) Params() *timing.Params { return b.p }

// Geometry returns the rank geometry.
func (b *Bank) Geometry() Geometry { return b.geo }

// Subarray returns (lazily allocating) subarray s.
func (b *Bank) Subarray(s int) *Subarray {
	if s < 0 || s >= len(b.subs) {
		panic(fmt.Sprintf("dram: bank %d subarray %d out of range [0,%d)", b.id, s, len(b.subs)))
	}
	if b.subs[s] == nil {
		da := b.geo.DARowsPerSubarray()
		sa := &Subarray{ //shadowvet:ignore allocflow -- first-touch lazy subarray build, warm before steady state
			rows:   make([]Row, da), //shadowvet:ignore allocflow -- first-touch lazy subarray build, warm before steady state
			Hammer: hammer.NewSubarray(da, b.hcfg),
		}
		// Every ordinary row starts with the deterministic pattern for its
		// initial (identity-mapped) location.
		for i := range sa.rows {
			sa.rows[i].SetSeed(rowSeed(b.id, s, i))
		}
		sa.remap.SetSeed(rowSeed(b.id, s, -1))
		b.subs[s] = sa
	}
	return b.subs[s]
}

// rowSeed derives the initial data seed for a row: a function of its initial
// identity so integrity checks can recompute it.
func rowSeed(bank, sub, da int) uint64 {
	return uint64(bank)<<40 ^ uint64(sub)<<20 ^ uint64(uint32(da)) ^ 0xABCD_EF01_2345_6789
}

// InitialSeed returns the pattern seed a PA row held at power-on under the
// identity mapping — the reference for integrity checks.
func (b *Bank) InitialSeed(paRow int) uint64 {
	sub, idx := b.geo.SubarrayOf(paRow)
	return rowSeed(b.id, sub, idx)
}

// Open reports whether a row is open, and which (sub, da) if so.
func (b *Bank) Open() (sub, da int, ok bool) {
	return b.openSub, b.openDA, b.open
}

// ready returns the earliest time the named command may issue.
func (b *Bank) readyForACT() timing.Tick { return maxTick(b.actReadyAt, b.busyUntil) }

// Activate opens DA row (sub, da) at time now, applying the hammer model.
func (b *Bank) Activate(sub, da int, now timing.Tick) error {
	if b.open {
		return &TimingError{Cmd: "ACT (bank open)", Bank: b.id, Now: now, ReadyAt: b.preReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if r := b.readyForACT(); now < r {
		return &TimingError{Cmd: "ACT", Bank: b.id, Now: now, ReadyAt: r} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b.open = true
	b.openSub, b.openDA = sub, da
	b.rdReadyAt = now + b.p.EffectiveRCD()
	b.preReadyAt = now + b.p.RAS
	b.Stats.Acts++
	b.RAA++
	b.recordACT(sub, da)
	return nil
}

// recordACT applies the fault model for an activation of (sub, da) and
// physically flips bits for any victims that cross H_cnt.
func (b *Bank) recordACT(sub, da int) {
	sa := b.Subarray(sub)
	for _, f := range sa.Hammer.Activate(da) {
		b.Stats.Flips++
		// Deterministic-but-spread bit position derived from the flip count.
		bit := int((uint64(f.Row)*2654435761 + uint64(b.Stats.Flips)*40503) % uint64(b.geo.RowBytes*8))
		sa.Row(f.Row).FlipBit(bit, b.geo.RowBytes)
		if b.flipSink != nil {
			b.flipSink(b.id, sub, f.Row, f) //shadowvet:ignore allocflow -- flip observer hook, nil unless tracing; flips are rare model events outside the steady-state contract
		}
	}
}

// Read performs a column read from the open row.
func (b *Bank) Read(now timing.Tick) error {
	if !b.open {
		return &TimingError{Cmd: "RD (bank closed)", Bank: b.id, Now: now, ReadyAt: timing.Forever} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if now < b.rdReadyAt {
		return &TimingError{Cmd: "RD", Bank: b.id, Now: now, ReadyAt: b.rdReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b.preReadyAt = maxTick(b.preReadyAt, now+b.p.RTP)
	b.Stats.Reads++
	return nil
}

// Write performs a column write to the open row.
func (b *Bank) Write(now timing.Tick) error {
	if !b.open {
		return &TimingError{Cmd: "WR (bank closed)", Bank: b.id, Now: now, ReadyAt: timing.Forever} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if now < b.rdReadyAt {
		return &TimingError{Cmd: "WR", Bank: b.id, Now: now, ReadyAt: b.rdReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b.preReadyAt = maxTick(b.preReadyAt, now+b.p.WL+b.p.BL+b.p.WR)
	b.Stats.Writes++
	return nil
}

// Precharge closes the open row.
func (b *Bank) Precharge(now timing.Tick) error {
	if !b.open {
		// Precharge on a closed bank is a legal no-op per JEDEC.
		return nil
	}
	if now < b.preReadyAt {
		return &TimingError{Cmd: "PRE", Bank: b.id, Now: now, ReadyAt: b.preReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	b.open = false
	b.actReadyAt = now + b.p.RP
	b.Stats.Pres++
	return nil
}

// NextACTReady returns when the next ACT may issue (for MC scheduling).
func (b *Bank) NextACTReady() timing.Tick {
	if b.open {
		return timing.Forever
	}
	return b.readyForACT()
}

// NextRDReady returns when a RD/WR may issue on the open row.
func (b *Bank) NextRDReady() timing.Tick {
	if !b.open {
		return timing.Forever
	}
	return b.rdReadyAt
}

// NextPREReady returns when a PRE may issue.
func (b *Bank) NextPREReady() timing.Tick {
	if !b.open {
		return timing.Forever
	}
	return b.preReadyAt
}

// Busy blocks the bank until `until` (REF and RFM service time).
func (b *Bank) setBusy(until timing.Tick) {
	b.busyUntil = maxTick(b.busyUntil, until)
	b.actReadyAt = maxTick(b.actReadyAt, until)
}

// BusyUntil reports when the current REF/RFM completes.
func (b *Bank) BusyUntil() timing.Tick { return b.busyUntil }

// NextDeadline returns the end of the bank's current REF/REFsb/RFM busy
// window — the next device-side instant at which this bank's schedulability
// changes on its own — or timing.Forever when no window is open. The event
// wheel does not fold it into its jump bound (a busy-window end is only
// actionable through a queued request, which the readiness cache already
// bounds; see Device.NextDeadline); it is a pure query for tooling and
// tests.
func (b *Bank) NextDeadline(now timing.Tick) timing.Tick {
	if b.busyUntil > now {
		return b.busyUntil
	}
	return timing.Forever
}

// AutoRefresh refreshes the next n DA rows in refresh-pointer order,
// restoring their charge. Called by the device for each REF command.
func (b *Bank) AutoRefresh(n int, now timing.Tick, busy timing.Tick) error {
	if b.open {
		return &TimingError{Cmd: "REF (bank open)", Bank: b.id, Now: now, ReadyAt: b.preReadyAt} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	if r := b.readyForACT(); now < r {
		return &TimingError{Cmd: "REF", Bank: b.id, Now: now, ReadyAt: r} //shadowvet:ignore allocflow -- error path for protocol violations; the controller panics on any device error, so it never runs on a green run
	}
	total := b.geo.DARowsPerBank()
	daPer := b.geo.DARowsPerSubarray()
	for i := 0; i < n; i++ {
		lin := b.refreshPtr % total
		b.refreshPtr = (b.refreshPtr + 1) % total
		sub, da := lin/daPer, lin%daPer
		b.RefreshRow(sub, da)
	}
	b.setBusy(now + busy)
	return nil
}

// RefreshRow fully restores one row's charge (TRR, incremental refresh, and
// auto-refresh all funnel here).
func (b *Bank) RefreshRow(sub, da int) {
	b.Subarray(sub).Hammer.Refresh(da)
	b.Stats.RefRows++
}

// InternalActivate performs a device-internal ACT-PRE of a row, the
// primitive behind TRR refreshes and SHADOW's incremental refresh: the row's
// own charge is fully restored while its neighbors receive one activation's
// worth of disturbance (mitigating actions can themselves hammer).
func (b *Bank) InternalActivate(sub, da int) {
	b.recordACT(sub, da)
}

// RowCopy performs an intra-subarray row copy from srcDA to dstDA: the
// source is sensed into the row buffer (an activation, with its disturbance
// and restore), then driven into the destination row (an activation of the
// destination wordline followed by a full restore of the new data).
// Cross-subarray copies are impossible in this microarchitecture.
func (b *Bank) RowCopy(sub, srcDA, dstDA int, now timing.Tick) error {
	if b.open {
		return &TimingError{Cmd: "ROWCOPY (bank open)", Bank: b.id, Now: now, ReadyAt: b.preReadyAt}
	}
	if srcDA == dstDA {
		return fmt.Errorf("dram: bank %d row copy onto itself (sub %d, da %d)", b.id, sub, srcDA)
	}
	sa := b.Subarray(sub)
	b.recordACT(sub, srcDA)
	b.recordACT(sub, dstDA)
	sa.Row(dstDA).CopyFrom(sa.Row(srcDA), b.geo.RowBytes)
	// The destination holds freshly driven charge.
	sa.Hammer.Refresh(dstDA)
	b.Stats.RowCopies++
	return nil
}

func maxTick(a, b timing.Tick) timing.Tick {
	if a > b {
		return a
	}
	return b
}
