package dram

// Row is one DRAM row's payload. To keep multi-gigabyte ranks cheap to
// simulate, a row stores a 64-bit pattern seed until something needs the
// actual bytes (a bit flip, a remapping-row update, an integrity check); the
// byte payload is materialized on demand from the seed and stays
// authoritative afterwards.
type Row struct {
	seed uint64
	data []byte
}

// patternByte derives byte i of the deterministic fill pattern for a seed,
// using a SplitMix64-style mix so every row and byte differ.
func patternByte(seed uint64, i int) byte {
	z := seed + 0x9e3779b97f4a7c15*uint64(i/8+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return byte(z >> (8 * (uint(i) % 8)))
}

// PatternBytes returns the full expected pattern for a seed — what a row
// initialized with SetSeed(seed) contains before any corruption.
func PatternBytes(seed uint64, n int) []byte {
	b := make([]byte, n) //shadowvet:ignore allocflow -- cold materialization of an untouched row's expected pattern; rows keep their buffers thereafter
	for i := range b {
		b[i] = patternByte(seed, i)
	}
	return b
}

// SetSeed resets the row to the deterministic pattern for seed, dropping any
// materialized (possibly corrupted) data.
func (r *Row) SetSeed(seed uint64) {
	r.seed = seed
	r.data = nil
}

// Seed returns the row's pattern seed (meaningful only if the row has not
// been rewritten with explicit bytes).
func (r *Row) Seed() uint64 { return r.seed }

// Bytes materializes and returns the row's payload of length n. The returned
// slice is the row's backing store; mutations persist.
func (r *Row) Bytes(n int) []byte {
	if r.data == nil {
		r.data = PatternBytes(r.seed, n)
	}
	return r.data
}

// Materialized reports whether the payload has been materialized.
func (r *Row) Materialized() bool { return r.data != nil }

// FlipBit inverts bit `bit` (0 = LSB of byte 0) in a row of n bytes,
// materializing it first. It reports the byte index touched.
func (r *Row) FlipBit(bit, n int) int {
	b := r.Bytes(n)
	idx := (bit / 8) % n
	b[idx] ^= 1 << (uint(bit) % 8)
	return idx
}

// CopyFrom makes this row an exact copy of src (the row-copy primitive).
// When src is unmaterialized the copy stays cheap: only the seed moves.
func (r *Row) CopyFrom(src *Row, n int) {
	r.seed = src.seed
	if src.data == nil {
		r.data = nil
		return
	}
	if r.data == nil || len(r.data) != len(src.data) {
		r.data = make([]byte, len(src.data)) //shadowvet:ignore allocflow -- first-touch sizing of the destination row buffer; later copies reuse it
	}
	copy(r.data, src.data)
}

// CorruptedBits counts the bits in the row that differ from the pattern the
// given seed would have produced — the integrity-check primitive used by the
// attack examples.
func (r *Row) CorruptedBits(seed uint64, n int) int {
	if r.data == nil {
		if r.seed == seed {
			return 0
		}
		// Different seed entirely: compare patterns.
		diff := 0
		for i := 0; i < n; i++ {
			diff += popcount8(patternByte(r.seed, i) ^ patternByte(seed, i))
		}
		return diff
	}
	diff := 0
	for i := 0; i < n; i++ {
		diff += popcount8(r.data[i] ^ patternByte(seed, i))
	}
	return diff
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
