// Package dram models a DRAM rank at command granularity: banks composed of
// subarrays of rows, JEDEC bank state machines with timing validation,
// per-row data payloads, intra-subarray row-copy (RowClone/LISA-style, the
// primitive SHADOW's row-shuffle is built on), auto-refresh bookkeeping, and
// the Row Hammer fault model hooks.
//
// The device executes commands issued by a memory controller (package
// memctrl) and delegates PA-to-DA translation and RFM handling to a
// pluggable Mitigator — the identity mitigator for an unprotected device,
// package shadow for the paper's contribution, or the TRR-based baselines in
// package mitigate.
package dram

import "fmt"

// Geometry describes the organization of one DRAM rank.
type Geometry struct {
	Banks            int // banks in the rank
	SubarraysPerBank int
	RowsPerSubarray  int // PA-addressable rows per subarray (512 in the paper)
	RowBytes         int // bytes per row (1 KB in the paper)

	// ExtraRows is the number of additional non-PA-addressable rows per
	// subarray. SHADOW provisions one (Row_empt). These rows exist in DA
	// space, are refreshed, and participate in hammer accounting, but the MC
	// cannot name them.
	ExtraRows int
}

// DefaultGeometry returns the paper's organization for a rank: 512-row
// subarrays of 1 KB rows, one extra row per subarray, 16 banks for DDR4 and
// 32 for DDR5.
func DefaultGeometry(ddr5 bool) Geometry {
	banks := 16
	if ddr5 {
		banks = 32
	}
	return Geometry{
		Banks:            banks,
		SubarraysPerBank: 128,
		RowsPerSubarray:  512,
		RowBytes:         1024,
		ExtraRows:        1,
	}
}

// TestGeometry returns a small geometry for fast unit tests.
func TestGeometry() Geometry {
	return Geometry{Banks: 4, SubarraysPerBank: 4, RowsPerSubarray: 32, RowBytes: 64, ExtraRows: 1}
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0 || g.SubarraysPerBank <= 0 || g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: geometry dimensions must be positive: %+v", g)
	case g.RowBytes <= 0:
		return fmt.Errorf("dram: RowBytes must be positive: %d", g.RowBytes)
	case g.ExtraRows < 0:
		return fmt.Errorf("dram: ExtraRows must be non-negative: %d", g.ExtraRows)
	}
	return nil
}

// DARowsPerSubarray is the number of device-addressable rows per subarray
// (PA rows plus the extra rows).
func (g Geometry) DARowsPerSubarray() int { return g.RowsPerSubarray + g.ExtraRows }

// PARowsPerBank is the number of MC-addressable rows per bank.
func (g Geometry) PARowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// DARowsPerBank is the number of device rows per bank, excluding
// remapping-rows (which live outside the ordinary row space).
func (g Geometry) DARowsPerBank() int { return g.SubarraysPerBank * g.DARowsPerSubarray() }

// SubarrayOf decomposes a PA row index into (subarray, intra-subarray row).
func (g Geometry) SubarrayOf(paRow int) (sub, idx int) {
	return paRow / g.RowsPerSubarray, paRow % g.RowsPerSubarray
}

// PARow composes a PA row index from (subarray, intra-subarray row).
func (g Geometry) PARow(sub, idx int) int { return sub*g.RowsPerSubarray + idx }

// CapacityOverhead returns the fraction of extra device capacity SHADOW
// provisions: the extra rows plus one remapping-row per subarray relative to
// the PA-addressable rows. For the default geometry (1 empty + 1 remap per
// 512 rows paired across two subarrays) this is ~0.4-0.6%, matching the
// paper's 0.6% figure.
func (g Geometry) CapacityOverhead() float64 {
	extra := float64(g.ExtraRows + 1) // empty rows + remapping-row
	return extra / float64(g.RowsPerSubarray)
}
