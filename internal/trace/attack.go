package trace

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/rng"
)

// Pattern is a Row Hammer attack: an infinite sequence of row activations
// against one rank. Patterns drive the device directly (attackers bypass
// caching with clflush-style streams), so they emit (bank, row) pairs rather
// than Events.
type Pattern interface {
	Name() string
	// NextRow returns the next (bank, PA row) to activate.
	NextRow() (bank, row int)
}

// SingleSided hammers one aggressor row forever — the classic attack.
type SingleSided struct {
	Bank, Row int
}

// Name implements Pattern.
func (s *SingleSided) Name() string { return "single-sided" }

// NextRow implements Pattern.
func (s *SingleSided) NextRow() (int, int) { return s.Bank, s.Row }

// DoubleSided alternates the two rows sandwiching a victim, the strongest
// classic pattern (victim pressure grows 1 per activation).
type DoubleSided struct {
	Bank, Victim int
	flip         bool
}

// Name implements Pattern.
func (d *DoubleSided) Name() string { return "double-sided" }

// NextRow implements Pattern.
func (d *DoubleSided) NextRow() (int, int) {
	d.flip = !d.flip
	if d.flip {
		return d.Bank, d.Victim - 1
	}
	return d.Bank, d.Victim + 1
}

// ManySided cycles through an arbitrary aggressor set (TRRespass-style
// n-sided patterns).
type ManySided struct {
	Bank int
	Rows []int
	i    int
}

// Name implements Pattern.
func (m *ManySided) Name() string { return fmt.Sprintf("%d-sided", len(m.Rows)) }

// NextRow implements Pattern.
func (m *ManySided) NextRow() (int, int) {
	r := m.Rows[m.i%len(m.Rows)]
	m.i++
	return m.Bank, r
}

// Blast hammers the rows at the given distance on both sides of a victim —
// the non-adjacent blast-attack (Half-Double style) that evades
// adjacent-only TRR while still disturbing the victim through the blast
// radius.
func Blast(bank, victim, distance int) *ManySided {
	return &ManySided{Bank: bank, Rows: []int{victim - distance, victim + distance}}
}

// HalfDouble builds the Google Half-Double pattern (Kogler et al., USENIX
// Security 2022): heavy hammering at distance 2 from the victim, assisted by
// occasional distance-1 accesses. On devices with TRR sampling, the
// distance-1 "decoy" rows absorb the mitigations while the distance-2
// aggressors accumulate disturbance through the blast radius.
type HalfDouble struct {
	Bank, Victim int
	// AssistEvery inserts one distance-1 access per this many distance-2
	// accesses (default 8).
	AssistEvery int
	i           int
}

// Name implements Pattern.
func (h *HalfDouble) Name() string { return "half-double" }

// NextRow implements Pattern.
func (h *HalfDouble) NextRow() (int, int) {
	every := h.AssistEvery
	if every <= 0 {
		every = 8
	}
	h.i++
	switch {
	case h.i%(2*every) == 0:
		return h.Bank, h.Victim - 1
	case h.i%every == 0:
		return h.Bank, h.Victim + 1
	case h.i%2 == 0:
		return h.Bank, h.Victim - 2
	default:
		return h.Bank, h.Victim + 2
	}
}

// ScenarioI is Appendix XI attack scenario I against SHADOW: hammer a single
// PA row for one full RFM interval (RAAIMT activations), then move to a new
// random PA row of the same subarray, relying on the chance that shuffled
// locations collide near a common victim (the birthday-paradox pattern).
type ScenarioI struct {
	Bank, Subarray int
	RAAIMT         int
	geo            dram.Geometry
	src            rng.Source
	cur            int
	n              int
}

// NewScenarioI builds the pattern.
func NewScenarioI(bank, subarray, raaimt int, g dram.Geometry, seed uint64) *ScenarioI {
	s := &ScenarioI{Bank: bank, Subarray: subarray, RAAIMT: raaimt, geo: g, src: rng.NewCSPRNG(seed)}
	s.pick()
	return s
}

// Name implements Pattern.
func (s *ScenarioI) Name() string { return "scenario-I" }

func (s *ScenarioI) pick() {
	s.cur = s.geo.PARow(s.Subarray, rng.Intn(s.src, s.geo.RowsPerSubarray))
}

// NextRow implements Pattern.
func (s *ScenarioI) NextRow() (int, int) {
	if s.n >= s.RAAIMT {
		s.n = 0
		s.pick()
	}
	s.n++
	return s.Bank, s.cur
}

// NewScenarioII builds Appendix XI scenario II: nAggr fixed aggressor rows
// inside one subarray, activated round-robin (each receives m =
// RAAIMT/nAggr activations per RFM interval), betting that some aggressor
// escapes the per-RFM shuffle long enough to reach H_cnt.
func NewScenarioII(bank, subarray, nAggr int, g dram.Geometry, seed uint64) *ManySided {
	src := rng.NewCSPRNG(seed)
	perm := rng.Perm(src, g.RowsPerSubarray)
	rows := make([]int, nAggr)
	for i := range rows {
		rows[i] = g.PARow(subarray, perm[i])
	}
	return &ManySided{Bank: bank, Rows: rows}
}

// NewScenarioIII builds Appendix XI scenario III: nAggr aggressor rows
// spread across distinct subarrays of one bank, so SHADOW's per-RFM shuffle
// (which targets one subarray) can thin them only one at a time.
func NewScenarioIII(bank, nAggr int, g dram.Geometry, seed uint64) *ManySided {
	src := rng.NewCSPRNG(seed)
	rows := make([]int, nAggr)
	for i := range rows {
		sub := i % g.SubarraysPerBank
		rows[i] = g.PARow(sub, rng.Intn(src, g.RowsPerSubarray))
	}
	return &ManySided{Bank: bank, Rows: rows}
}
