// Package trace generates the memory-request streams of the paper's
// evaluation: synthetic per-application workloads calibrated to the memory
// behaviour of SPEC CPU2017 (grouped into spec-high/med/low exactly as in
// Section VII-C), GAPBS graph kernels, NPB, the multiprogrammed mixes
// (mix-high, mix-blend, mix-random), the adversarial random-stream
// microbenchmark, and the Row Hammer attack patterns used by the security
// analysis (single-/double-/many-sided, blast, and the Appendix XI attack
// scenarios I-III).
//
// We do not have the SPEC/GAPBS/NPB binaries (and the paper's actual-system
// numbers come from hardware we also lack), so each application is modelled
// by the statistics that determine its interaction with the DRAM timing
// model: LLC misses per kilo-instruction, row-buffer locality, bank spread,
// working-set size, and write fraction. The profile constants are calibrated
// to the published memory intensity of each suite; what the experiments
// measure is how each *mitigation scheme* changes execution time for a given
// memory behaviour, which these streams preserve.
package trace

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/rng"
)

// Event is one memory access emitted by a workload.
type Event struct {
	// Gap is the number of non-memory instructions executed before this
	// access issues.
	Gap int
	// Bank, Row, Col locate the access.
	Bank, Row, Col int
	// Write marks a store.
	Write bool
}

// Generator produces an infinite memory-access stream.
type Generator interface {
	Name() string
	Next() Event
}

// Profile describes one application's memory behaviour.
type Profile struct {
	Name string
	// MPKI is last-level-cache misses per kilo-instruction: the paper's
	// memory-intensity classes (spec-high/med/low) differ primarily here.
	MPKI float64
	// RowLocality is the probability that an access hits the previously
	// accessed row of its bank (row-buffer locality).
	RowLocality float64
	// WorkingSetRows bounds the rows touched per bank.
	WorkingSetRows int
	// WriteFrac is the fraction of accesses that are stores.
	WriteFrac float64
	// HotFrac is the probability that a row change targets the hot set —
	// the access skew real applications exhibit (frequently revisited
	// structures). Tracker-based mitigations (RRS, BlockHammer, Mithril)
	// interact with exactly this concentration.
	HotFrac float64
	// HotRows is the size of the hot set (0 disables skew).
	HotRows int
}

// Synth is the synthetic generator for a Profile.
type Synth struct {
	prof Profile
	geo  dram.Geometry
	src  rng.Source

	curBank, curRow, curCol int
	gapMean                 int
	hot                     []struct{ bank, row int }
}

var _ Generator = (*Synth)(nil)

// NewSynth builds a generator for profile p over geometry g.
func NewSynth(p Profile, g dram.Geometry, seed uint64) *Synth {
	if p.MPKI <= 0 {
		panic(fmt.Sprintf("trace: profile %q needs positive MPKI", p.Name))
	}
	ws := p.WorkingSetRows
	if ws <= 0 || ws > g.PARowsPerBank() {
		ws = g.PARowsPerBank()
	}
	p.WorkingSetRows = ws
	s := &Synth{
		prof:    p,
		geo:     g,
		src:     rng.NewSplitMix(seed ^ hashName(p.Name)),
		gapMean: int(1000.0/p.MPKI + 0.5),
	}
	for i := 0; i < p.HotRows; i++ {
		s.hot = append(s.hot, struct{ bank, row int }{
			bank: rng.Intn(s.src, g.Banks),
			row:  rng.Intn(s.src, p.WorkingSetRows),
		})
	}
	s.newRow()
	return s
}

func hashName(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// Name implements Generator.
func (s *Synth) Name() string { return s.prof.Name }

// Profile returns the generator's profile.
func (s *Synth) Profile() Profile { return s.prof }

func (s *Synth) newRow() {
	if len(s.hot) > 0 && rng.Float64(s.src) < s.prof.HotFrac {
		h := s.hot[rng.Intn(s.src, len(s.hot))]
		s.curBank, s.curRow = h.bank, h.row
	} else {
		s.curBank = rng.Intn(s.src, s.geo.Banks)
		s.curRow = rng.Intn(s.src, s.prof.WorkingSetRows)
	}
	s.curCol = 0
}

// Next implements Generator.
func (s *Synth) Next() Event {
	if rng.Float64(s.src) >= s.prof.RowLocality {
		s.newRow()
	} else {
		s.curCol = (s.curCol + 1) % colsPerRow(s.geo)
	}
	// Geometric-ish gap around the mean, floor 1.
	gap := 1
	if s.gapMean > 1 {
		gap = 1 + rng.Intn(s.src, 2*s.gapMean-1)
	}
	return Event{
		Gap:   gap,
		Bank:  s.curBank,
		Row:   s.curRow,
		Col:   s.curCol,
		Write: rng.Float64(s.src) < s.prof.WriteFrac,
	}
}

func colsPerRow(g dram.Geometry) int {
	c := g.RowBytes / 64
	if c < 1 {
		c = 1
	}
	return c
}

// RandomStream returns the Section VII-C adversarial microbenchmark: every
// access opens a fresh random row ("issues frequent activations... sensitive
// to tRCD changes and can frequently trigger RFM").
func RandomStream(g dram.Geometry, seed uint64) *Synth {
	return NewSynth(Profile{
		Name:        "random-stream",
		MPKI:        200, // essentially every few instructions miss
		RowLocality: 0,
		WriteFrac:   0.2,
	}, g, seed)
}
