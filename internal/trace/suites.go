package trace

import (
	"fmt"
	"sort"

	"shadow/internal/dram"
	"shadow/internal/rng"
)

// The workload suites of Section VII-C. Profile constants encode each
// application's published memory character: SPEC CPU2017 LLC MPKI classes
// (the paper's spec-high/med/low grouping is reproduced exactly), GAPBS's
// irregular low-locality graph traversals over a 2^26-vertex Kronecker
// graph, and NPB class C's regular streaming kernels.

// SpecHigh is the paper's memory-intensive SPEC CPU2017 group.
var SpecHigh = []Profile{
	{Name: "bwaves", MPKI: 25, RowLocality: 0.80, WorkingSetRows: 1 << 14, WriteFrac: 0.25, HotFrac: 0.10, HotRows: 64},
	{Name: "fotonik3d", MPKI: 30, RowLocality: 0.75, WorkingSetRows: 1 << 14, WriteFrac: 0.30, HotFrac: 0.10, HotRows: 64},
	{Name: "lbm", MPKI: 40, RowLocality: 0.70, WorkingSetRows: 1 << 14, WriteFrac: 0.45, HotFrac: 0.10, HotRows: 32},
	{Name: "mcf", MPKI: 70, RowLocality: 0.30, WorkingSetRows: 1 << 15, WriteFrac: 0.20, HotFrac: 0.25, HotRows: 16},
	{Name: "wrf", MPKI: 20, RowLocality: 0.75, WorkingSetRows: 1 << 13, WriteFrac: 0.30, HotFrac: 0.10, HotRows: 32},
}

// SpecMed is the paper's medium-intensity group.
var SpecMed = []Profile{
	{Name: "deepsjeng", MPKI: 5, RowLocality: 0.50, WorkingSetRows: 1 << 12, WriteFrac: 0.25, HotFrac: 0.20, HotRows: 8},
	{Name: "gcc", MPKI: 6, RowLocality: 0.60, WorkingSetRows: 1 << 13, WriteFrac: 0.30, HotFrac: 0.20, HotRows: 16},
	{Name: "xz", MPKI: 8, RowLocality: 0.40, WorkingSetRows: 1 << 14, WriteFrac: 0.35, HotFrac: 0.15, HotRows: 16},
}

// SpecLow is the paper's low-intensity group.
var SpecLow = []Profile{
	{Name: "exchange2", MPKI: 0.2, RowLocality: 0.70, WorkingSetRows: 1 << 10, WriteFrac: 0.20, HotFrac: 0.30, HotRows: 4},
	{Name: "imagick", MPKI: 0.5, RowLocality: 0.80, WorkingSetRows: 1 << 11, WriteFrac: 0.30, HotFrac: 0.20, HotRows: 8},
	{Name: "leela", MPKI: 1.0, RowLocality: 0.55, WorkingSetRows: 1 << 11, WriteFrac: 0.25, HotFrac: 0.20, HotRows: 8},
}

// GAPBS models the GAP benchmark kernels on a Kronecker graph (2^26
// vertices): intense, irregular, low row locality.
var GAPBS = []Profile{
	{Name: "gapbs-bc", MPKI: 35, RowLocality: 0.25, WorkingSetRows: 1 << 15, WriteFrac: 0.15, HotFrac: 0.30, HotRows: 32},
	{Name: "gapbs-bfs", MPKI: 45, RowLocality: 0.20, WorkingSetRows: 1 << 15, WriteFrac: 0.15, HotFrac: 0.30, HotRows: 32},
	{Name: "gapbs-cc", MPKI: 40, RowLocality: 0.22, WorkingSetRows: 1 << 15, WriteFrac: 0.20, HotFrac: 0.30, HotRows: 32},
	{Name: "gapbs-pr", MPKI: 50, RowLocality: 0.30, WorkingSetRows: 1 << 15, WriteFrac: 0.25, HotFrac: 0.30, HotRows: 32},
	{Name: "gapbs-sssp", MPKI: 42, RowLocality: 0.22, WorkingSetRows: 1 << 15, WriteFrac: 0.18, HotFrac: 0.30, HotRows: 32},
	{Name: "gapbs-tc", MPKI: 25, RowLocality: 0.35, WorkingSetRows: 1 << 15, WriteFrac: 0.10, HotFrac: 0.25, HotRows: 32},
}

// NPB models the NAS Parallel Benchmarks, class C: regular streaming.
var NPB = []Profile{
	{Name: "npb-bt", MPKI: 12, RowLocality: 0.80, WorkingSetRows: 1 << 14, WriteFrac: 0.40, HotFrac: 0.05, HotRows: 64},
	{Name: "npb-cg", MPKI: 30, RowLocality: 0.45, WorkingSetRows: 1 << 14, WriteFrac: 0.20, HotFrac: 0.10, HotRows: 64},
	{Name: "npb-ft", MPKI: 20, RowLocality: 0.75, WorkingSetRows: 1 << 14, WriteFrac: 0.45, HotFrac: 0.05, HotRows: 64},
	{Name: "npb-is", MPKI: 25, RowLocality: 0.40, WorkingSetRows: 1 << 13, WriteFrac: 0.35, HotFrac: 0.10, HotRows: 64},
	{Name: "npb-lu", MPKI: 15, RowLocality: 0.78, WorkingSetRows: 1 << 14, WriteFrac: 0.40, HotFrac: 0.05, HotRows: 64},
	{Name: "npb-mg", MPKI: 22, RowLocality: 0.70, WorkingSetRows: 1 << 15, WriteFrac: 0.35, HotFrac: 0.05, HotRows: 64},
	{Name: "npb-sp", MPKI: 18, RowLocality: 0.76, WorkingSetRows: 1 << 14, WriteFrac: 0.40, HotFrac: 0.05, HotRows: 64},
	{Name: "npb-ua", MPKI: 14, RowLocality: 0.60, WorkingSetRows: 1 << 14, WriteFrac: 0.30, HotFrac: 0.05, HotRows: 64},
}

// AllSpec returns the full categorized SPEC CPU2017 set.
func AllSpec() []Profile {
	out := append([]Profile(nil), SpecHigh...)
	out = append(out, SpecMed...)
	return append(out, SpecLow...)
}

// ProfileByName looks up any known profile.
func ProfileByName(name string) (Profile, error) {
	for _, set := range [][]Profile{SpecHigh, SpecMed, SpecLow, GAPBS, NPB} {
		for _, p := range set {
			if p.Name == name {
				return p, nil
			}
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// Names returns the sorted names of all known profiles.
func Names() []string {
	var out []string
	for _, set := range [][]Profile{SpecHigh, SpecMed, SpecLow, GAPBS, NPB} {
		for _, p := range set {
			out = append(out, p.Name)
		}
	}
	sort.Strings(out)
	return out
}

// MixHigh returns the paper's mix-high workload: n copies drawn cyclically
// from the spec-high applications (14 on the actual system, 16/32 in the
// architectural simulation).
func MixHigh(n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = SpecHigh[i%len(SpecHigh)]
	}
	return out
}

// MixLow returns mix-low: n copies drawn cyclically from the spec-low
// applications. The sub-1-MPKI intensity class leaves the memory system idle
// for most of the horizon — the workload shape where the tick-skipping event
// wheel's jumps are largest (BenchmarkSim's mix-low lane).
func MixLow(n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = SpecLow[i%len(SpecLow)]
	}
	return out
}

// MixBlend returns mix-blend: n applications drawn round-robin across the
// spec-high, spec-med, and spec-low groups so every blend size mixes all
// three intensity classes uniformly.
func MixBlend(n int) []Profile {
	groups := [][]Profile{SpecHigh, SpecMed, SpecLow}
	out := make([]Profile, n)
	for i := range out {
		g := groups[i%len(groups)]
		out[i] = g[(i/len(groups))%len(g)]
	}
	return out
}

// MixRandom returns one of the paper's mix-random workloads: n applications
// chosen uniformly at random from SPEC CPU2017 under the given seed.
func MixRandom(n int, seed uint64) []Profile {
	all := AllSpec()
	src := rng.NewCSPRNG(seed)
	out := make([]Profile, n)
	for i := range out {
		out[i] = all[rng.Intn(src, len(all))]
	}
	return out
}

// Generators instantiates one generator per profile with per-core seeds.
func Generators(profiles []Profile, g dram.Geometry, seed uint64) []Generator {
	out := make([]Generator, len(profiles))
	for i, p := range profiles {
		out[i] = NewSynth(p, g, seed+uint64(i)*0x9E3779B9)
	}
	return out
}
