package trace

import (
	"math"
	"testing"

	"shadow/internal/dram"
)

func TestSynthDeterministic(t *testing.T) {
	g := dram.TestGeometry()
	a := NewSynth(SpecHigh[0], g, 1)
	b := NewSynth(SpecHigh[0], g, 1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSynth(SpecHigh[0], g, 2)
	diff := 0
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSynthEventRanges(t *testing.T) {
	g := dram.TestGeometry()
	for _, p := range AllSpec() {
		s := NewSynth(p, g, 3)
		for i := 0; i < 1000; i++ {
			e := s.Next()
			if e.Bank < 0 || e.Bank >= g.Banks {
				t.Fatalf("%s: bank %d out of range", p.Name, e.Bank)
			}
			if e.Row < 0 || e.Row >= g.PARowsPerBank() {
				t.Fatalf("%s: row %d out of range", p.Name, e.Row)
			}
			if e.Gap < 1 {
				t.Fatalf("%s: gap %d < 1", p.Name, e.Gap)
			}
		}
	}
}

// TestGapMatchesMPKI: mean instruction gap must approximate 1000/MPKI.
func TestGapMatchesMPKI(t *testing.T) {
	g := dram.DefaultGeometry(false)
	for _, p := range []Profile{SpecHigh[0], SpecMed[0]} {
		s := NewSynth(p, g, 5)
		const n = 20000
		total := 0
		for i := 0; i < n; i++ {
			total += s.Next().Gap
		}
		mean := float64(total) / n
		want := 1000 / p.MPKI
		if math.Abs(mean-want)/want > 0.1 {
			t.Errorf("%s: mean gap %.1f, want ~%.1f", p.Name, mean, want)
		}
	}
}

// TestRowLocalityRealized: measured same-row streak fraction approximates
// the profile's RowLocality.
func TestRowLocalityRealized(t *testing.T) {
	g := dram.DefaultGeometry(false)
	p := Profile{Name: "loc-test", MPKI: 50, RowLocality: 0.7, WorkingSetRows: 4096}
	s := NewSynth(p, g, 7)
	prevBank, prevRow := -1, -1
	same, total := 0, 0
	for i := 0; i < 20000; i++ {
		e := s.Next()
		if prevBank == e.Bank && prevRow == e.Row {
			same++
		}
		total++
		prevBank, prevRow = e.Bank, e.Row
	}
	frac := float64(same) / float64(total)
	if math.Abs(frac-0.7) > 0.05 {
		t.Errorf("realized locality %.3f, want ~0.7", frac)
	}
}

func TestRandomStreamHasNoLocality(t *testing.T) {
	g := dram.DefaultGeometry(false)
	s := RandomStream(g, 1)
	prevRow := -1
	same := 0
	for i := 0; i < 5000; i++ {
		e := s.Next()
		if e.Row == prevRow {
			same++
		}
		prevRow = e.Row
	}
	if same > 50 {
		t.Fatalf("random stream repeated rows %d/5000 times", same)
	}
}

func TestSuitesComplete(t *testing.T) {
	// The paper's grouping (Section VII-C).
	if len(SpecHigh) != 5 || len(SpecMed) != 3 || len(SpecLow) != 3 {
		t.Fatalf("SPEC groups sized %d/%d/%d, want 5/3/3", len(SpecHigh), len(SpecMed), len(SpecLow))
	}
	for _, p := range SpecHigh {
		if p.MPKI < 10 {
			t.Errorf("spec-high %s MPKI %.1f too low", p.Name, p.MPKI)
		}
	}
	for _, p := range SpecLow {
		if p.MPKI > 2 {
			t.Errorf("spec-low %s MPKI %.1f too high", p.Name, p.MPKI)
		}
	}
	if len(Names()) != len(AllSpec())+len(GAPBS)+len(NPB) {
		t.Fatal("Names() incomplete")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ProfileByName(mcf) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestMixes(t *testing.T) {
	high := MixHigh(14)
	if len(high) != 14 {
		t.Fatalf("MixHigh length %d", len(high))
	}
	for _, p := range high {
		if p.MPKI < 10 {
			t.Fatalf("mix-high includes non-intensive %s", p.Name)
		}
	}
	blend := MixBlend(14)
	classes := map[string]bool{}
	for _, p := range blend {
		classes[p.Name] = true
	}
	if len(classes) < 10 {
		t.Fatalf("mix-blend spans only %d distinct apps", len(classes))
	}
	r1 := MixRandom(16, 1)
	r2 := MixRandom(16, 1)
	for i := range r1 {
		if r1[i].Name != r2[i].Name {
			t.Fatal("MixRandom not deterministic per seed")
		}
	}
	r3 := MixRandom(16, 99)
	diff := 0
	for i := range r1 {
		if r1[i].Name != r3[i].Name {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("MixRandom ignores seed")
	}
}

func TestGenerators(t *testing.T) {
	g := dram.TestGeometry()
	gens := Generators(MixHigh(4), g, 11)
	if len(gens) != 4 {
		t.Fatal("wrong generator count")
	}
	// Same profile on different cores must not emit identical streams.
	a, b := gens[0], gens[1] // bwaves vs fotonik3d actually; compare 0 and 5%len... use copies
	_ = b
	c0 := Generators([]Profile{SpecHigh[0], SpecHigh[0]}, g, 11)
	same := 0
	for i := 0; i < 100; i++ {
		if c0[0].Next() == c0[1].Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("two cores of the same app emitted %d/100 identical events", same)
	}
	_ = a
}

func TestAttackPatterns(t *testing.T) {
	g := dram.TestGeometry()

	ss := &SingleSided{Bank: 1, Row: 10}
	for i := 0; i < 5; i++ {
		if b, r := ss.NextRow(); b != 1 || r != 10 {
			t.Fatal("single-sided wandered")
		}
	}

	ds := &DoubleSided{Bank: 0, Victim: 8}
	seen := map[int]int{}
	for i := 0; i < 10; i++ {
		_, r := ds.NextRow()
		seen[r]++
	}
	if seen[7] != 5 || seen[9] != 5 {
		t.Fatalf("double-sided rows %v", seen)
	}

	ms := &ManySided{Bank: 0, Rows: []int{1, 2, 3}}
	if ms.Name() != "3-sided" {
		t.Fatalf("name %q", ms.Name())
	}
	_, r1 := ms.NextRow()
	_, r2 := ms.NextRow()
	_, r3 := ms.NextRow()
	_, r4 := ms.NextRow()
	if r1 != 1 || r2 != 2 || r3 != 3 || r4 != 1 {
		t.Fatal("many-sided order broken")
	}

	bl := Blast(0, 10, 2)
	_, a := bl.NextRow()
	_, b := bl.NextRow()
	if a != 8 || b != 12 {
		t.Fatalf("blast rows %d,%d want 8,12", a, b)
	}

	s1 := NewScenarioI(0, 1, 8, g, 3)
	rows := map[int]bool{}
	for i := 0; i < 64; i++ {
		_, r := s1.NextRow()
		sub, _ := g.SubarrayOf(r)
		if sub != 1 {
			t.Fatalf("scenario I left subarray: row %d", r)
		}
		rows[r] = true
	}
	if len(rows) < 2 {
		t.Fatal("scenario I never changed rows")
	}
	// Within one interval the row is constant.
	s1b := NewScenarioI(0, 1, 8, g, 4)
	_, first := s1b.NextRow()
	for i := 1; i < 8; i++ {
		if _, r := s1b.NextRow(); r != first {
			t.Fatal("scenario I changed row mid-interval")
		}
	}

	s2 := NewScenarioII(0, 2, 4, g, 5)
	if len(s2.Rows) != 4 {
		t.Fatal("scenario II aggressor count")
	}
	distinct := map[int]bool{}
	for _, r := range s2.Rows {
		sub, _ := g.SubarrayOf(r)
		if sub != 2 {
			t.Fatalf("scenario II row %d outside subarray 2", r)
		}
		if distinct[r] {
			t.Fatal("scenario II repeated aggressor")
		}
		distinct[r] = true
	}

	s3 := NewScenarioIII(0, 4, g, 6)
	subs := map[int]bool{}
	for _, r := range s3.Rows {
		sub, _ := g.SubarrayOf(r)
		subs[sub] = true
	}
	if len(subs) != 4 {
		t.Fatalf("scenario III spans %d subarrays, want 4", len(subs))
	}
}

func TestHalfDoublePattern(t *testing.T) {
	h := &HalfDouble{Bank: 0, Victim: 20, AssistEvery: 4}
	counts := map[int]int{}
	for i := 0; i < 800; i++ {
		_, r := h.NextRow()
		counts[r]++
	}
	// Distance-2 rows dominate; distance-1 decoys are rare but present.
	if counts[18]+counts[22] < 500 {
		t.Fatalf("distance-2 accesses = %d, want dominant", counts[18]+counts[22])
	}
	if counts[19] == 0 || counts[21] == 0 {
		t.Fatalf("decoy rows missing: %v", counts)
	}
	if counts[19]+counts[21] > 300 {
		t.Fatalf("decoys too frequent: %v", counts)
	}
	if counts[20] != 0 {
		t.Fatal("half-double must never touch the victim itself")
	}
}
