package trace

import (
	"bytes"
	"strings"
	"testing"

	"shadow/internal/dram"
)

func TestEventRoundTrip(t *testing.T) {
	g := dram.TestGeometry()
	gen := NewSynth(SpecHigh[3], g, 9) // mcf
	var buf bytes.Buffer
	if err := WriteEvents(&buf, gen, 500); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 500 {
		t.Fatalf("%d events", len(events))
	}
	// Re-generate the same stream and compare.
	gen2 := NewSynth(SpecHigh[3], g, 9)
	for i, e := range events {
		if want := gen2.Next(); e != want {
			t.Fatalf("event %d = %+v, want %+v", i, e, want)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	events := []Event{
		{Gap: 1, Bank: 0, Row: 1},
		{Gap: 2, Bank: 1, Row: 2, Write: true},
		{Gap: 3, Bank: 2, Row: 3},
	}
	r, err := NewReplay("rec", events)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "rec" {
		t.Fatal("name")
	}
	for i := 0; i < 7; i++ {
		got := r.Next()
		if got != events[i%3] {
			t.Fatalf("event %d = %+v", i, got)
		}
	}
	if r.Loops != 2 {
		t.Fatalf("Loops = %d, want 2", r.Loops)
	}
	if _, err := NewReplay("empty", nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestReadEventsErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"x,y\n1,2\n", // bad header
		"gap,bank,row,col,write\na,0,0,0,false\n",  // bad gap
		"gap,bank,row,col,write\n1,0,0,0,maybe\n",  // bad bool
		"gap,bank,row,col,write\n0,0,0,0,false\n",  // gap < 1
		"gap,bank,row,col,write\n1,-1,0,0,false\n", // negative bank
	}
	for i, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestClampEvents(t *testing.T) {
	events := []Event{
		{Gap: 1, Bank: 0, Row: 10},
		{Gap: 1, Bank: 17, Row: 9000},
	}
	n := ClampEvents(events, 16, 8192)
	if n != 1 {
		t.Fatalf("clamped = %d, want 1", n)
	}
	if events[0].Bank != 0 || events[0].Row != 10 {
		t.Fatal("in-range event modified")
	}
	if events[1].Bank != 1 || events[1].Row != 808 {
		t.Fatalf("folded event = %+v", events[1])
	}
}
