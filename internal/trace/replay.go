package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Event streams can be exported to CSV and replayed later, so a workload can
// be captured once (or produced by an external tool) and fed to the
// simulator reproducibly. The format is one event per record:
//
//	gap,bank,row,col,write
//
// with a header row. WriteEvents/ReadEvents round-trip exactly.

// WriteEvents exports n events from gen to w.
func WriteEvents(w io.Writer, gen Generator, n int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"gap", "bank", "row", "col", "write"}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		e := gen.Next()
		rec := []string{
			strconv.Itoa(e.Gap),
			strconv.Itoa(e.Bank),
			strconv.Itoa(e.Row),
			strconv.Itoa(e.Col),
			strconv.FormatBool(e.Write),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEvents parses an exported event stream.
func ReadEvents(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty event file")
	}
	if len(recs[0]) != 5 || recs[0][0] != "gap" {
		return nil, fmt.Errorf("trace: bad header %v", recs[0])
	}
	events := make([]Event, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		var e Event
		var err error
		if e.Gap, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("trace: record %d gap: %w", i+1, err)
		}
		if e.Bank, err = strconv.Atoi(rec[1]); err != nil {
			return nil, fmt.Errorf("trace: record %d bank: %w", i+1, err)
		}
		if e.Row, err = strconv.Atoi(rec[2]); err != nil {
			return nil, fmt.Errorf("trace: record %d row: %w", i+1, err)
		}
		if e.Col, err = strconv.Atoi(rec[3]); err != nil {
			return nil, fmt.Errorf("trace: record %d col: %w", i+1, err)
		}
		if e.Write, err = strconv.ParseBool(rec[4]); err != nil {
			return nil, fmt.Errorf("trace: record %d write: %w", i+1, err)
		}
		if e.Gap < 1 || e.Bank < 0 || e.Row < 0 || e.Col < 0 {
			return nil, fmt.Errorf("trace: record %d out of range: %+v", i+1, e)
		}
		events = append(events, e)
	}
	return events, nil
}

// ClampEvents folds events into a target geometry (bank and row counts),
// so a trace recorded on one organization replays on another. Returns the
// number of events that needed folding.
func ClampEvents(events []Event, banks, rowsPerBank int) int {
	clamped := 0
	for i := range events {
		if events[i].Bank >= banks || events[i].Row >= rowsPerBank {
			clamped++
		}
		events[i].Bank %= banks
		events[i].Row %= rowsPerBank
	}
	return clamped
}

// Replay is a Generator over a recorded event list, looping when exhausted
// (simulations run for a time horizon, not an event count).
type Replay struct {
	name   string
	events []Event
	i      int
	// Loops counts completed passes over the recording.
	Loops int
}

var _ Generator = (*Replay)(nil)

// NewReplay wraps recorded events as a generator.
func NewReplay(name string, events []Event) (*Replay, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: replay needs at least one event")
	}
	return &Replay{name: name, events: events}, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Next implements Generator.
func (r *Replay) Next() Event {
	e := r.events[r.i]
	r.i++
	if r.i == len(r.events) {
		r.i = 0
		r.Loops++
	}
	return e
}
