package power

import "shadow/internal/dram"

// AreaModel reproduces the Section VII-D synthesis analysis: the SHADOW
// logic was written in Verilog, synthesized at CMOS 40 nm, and scaled to a
// 22 nm DRAM process with the standard 10x density penalty (DRAM processes
// offer weaker drive current and fewer metal layers). Per-component areas
// below are the scaled values; the calculator aggregates them over a chip's
// organization. Unlike every tracker-based scheme, none of these terms
// depends on H_cnt.
type AreaModel struct {
	// ControllerPerBank covers the per-bank SHADOW controller: the ACT
	// counter, six 9-bit row-address latches, the 7-bit subarray index
	// latch, the column-decoder MUX, and control logic. mm^2.
	ControllerPerBank float64
	// PerSubarray covers each subarray's added MUX and DEMUX on the
	// LIO/decoder paths. mm^2.
	PerSubarray float64
	// RNG is the per-chip PRINCE-based CSPRNG unit. mm^2.
	RNG float64
	// IsolationPerSubarray covers the isolation transistors and their
	// drivers for the remapping-row segment. mm^2.
	IsolationPerSubarray float64
	// ChipArea is the DDR5 die size used as the denominator (16 Gb die,
	// ISSCC'19). mm^2.
	ChipArea float64
}

// DefaultAreaModel returns the calibrated component areas.
func DefaultAreaModel() *AreaModel {
	return &AreaModel{
		ControllerPerBank:    0.0050,
		PerSubarray:          0.000030,
		IsolationPerSubarray: 0.000010,
		RNG:                  0.025,
		ChipArea:             74.0,
	}
}

// LogicArea returns the total added logic area in mm^2 for a chip with the
// given organization.
func (m *AreaModel) LogicArea(g dram.Geometry) float64 {
	subs := float64(g.Banks * g.SubarraysPerBank)
	return m.ControllerPerBank*float64(g.Banks) +
		(m.PerSubarray+m.IsolationPerSubarray)*subs +
		m.RNG
}

// AreaOverhead returns the logic area as a fraction of the chip (the paper
// reports 0.47% for the DDR5 organization).
func (m *AreaModel) AreaOverhead(g dram.Geometry) float64 {
	return m.LogicArea(g) / m.ChipArea
}

// CapacityOverhead returns the DRAM capacity sacrificed per subarray: the
// empty row (Row_empt), the remapping-row, and the isolation dummy segment,
// relative to the 512 addressable rows — the paper's 0.6%.
func (m *AreaModel) CapacityOverhead(g dram.Geometry) float64 {
	extraRows := float64(g.ExtraRows) + 2 // + remapping-row + isolation dummy
	return extraRows / float64(g.RowsPerSubarray)
}
