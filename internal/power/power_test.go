package power

import (
	"math"
	"testing"

	"shadow/internal/dram"
	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

func activityFor(acts int64, shadowOn bool, dur timing.Tick) Activity {
	a := Activity{
		Acts:     acts,
		Reads:    acts * 4,
		Writes:   acts,
		Refs:     int64(dur / (7800 * timing.Nanosecond)),
		Duration: dur,
	}
	if shadowOn {
		a.RemapAccesses = acts
		a.RFMs = acts / 64
		a.RowCopies = 2 * a.RFMs
		a.IncRefreshes = a.RFMs
	}
	return a
}

func TestDRAMPowerPlausible(t *testing.T) {
	m := DefaultModel()
	// Memory-intensive: one ACT per 100ns per rank.
	dur := 10 * timing.Millisecond
	a := activityFor(int64(dur/(100*timing.Nanosecond)), false, dur)
	p := m.DRAMPower(a)
	if p < 1 || p > 15 {
		t.Fatalf("DRAM power %.2f W implausible for an active DDR4 rank", p)
	}
	// Idle: background only.
	idle := m.DRAMPower(Activity{Duration: dur})
	if math.Abs(idle-m.PBackground) > 1e-9 {
		t.Fatalf("idle power %.3f, want background %.3f", idle, m.PBackground)
	}
}

// TestShadowSystemPowerUnderPaperBound: the paper reports <0.63% system
// power increase even at H_cnt 2K (RAAIMT 32) on memory-intensive loads.
func TestShadowSystemPowerUnderPaperBound(t *testing.T) {
	m := DefaultModel()
	dur := 10 * timing.Millisecond
	acts := int64(dur / (100 * timing.Nanosecond))
	base := activityFor(acts, false, dur)
	sh := activityFor(acts, true, dur)
	sh.RFMs = acts / 32 // H_cnt 2K operating point
	sh.RowCopies = 2 * sh.RFMs
	sh.IncRefreshes = sh.RFMs
	rel := m.RelativeSystemPower(sh, base)
	if rel <= 1.0 {
		t.Fatalf("SHADOW power ratio %.4f should exceed 1", rel)
	}
	if rel > 1.0063 {
		t.Fatalf("system power increase %.3f%% exceeds the paper's 0.63%%", (rel-1)*100)
	}
}

// TestPowerDominatedByRemapAccesses: the paper observes SHADOW's added power
// is dominated by the per-ACT remapping-row accesses, not the shuffles.
func TestPowerDominatedByRemapAccesses(t *testing.T) {
	m := DefaultModel()
	dur := 10 * timing.Millisecond
	acts := int64(dur / (100 * timing.Nanosecond))
	full := activityFor(acts, true, dur)
	noRemap := full
	noRemap.RemapAccesses = 0
	noShuffle := full
	noShuffle.RowCopies, noShuffle.IncRefreshes, noShuffle.RFMs = 0, 0, 0

	base := activityFor(acts, false, dur)
	remapCost := m.DRAMEnergy(full) - m.DRAMEnergy(noRemap)
	shuffleCost := m.DRAMEnergy(full) - m.DRAMEnergy(noShuffle)
	if remapCost <= shuffleCost {
		t.Fatalf("remap cost %.0f nJ should dominate shuffle cost %.0f nJ", remapCost, shuffleCost)
	}
	_ = base
}

func TestMoreRFMsMorePower(t *testing.T) {
	m := DefaultModel()
	dur := 10 * timing.Millisecond
	acts := int64(dur / (100 * timing.Nanosecond))
	mk := func(raaimt int64) float64 {
		a := activityFor(acts, true, dur)
		a.RFMs = acts / raaimt
		a.RowCopies = 2 * a.RFMs
		a.IncRefreshes = a.RFMs
		return m.DRAMPower(a)
	}
	if !(mk(32) > mk(64) && mk(64) > mk(128)) {
		t.Fatal("power not monotonic in RFM frequency")
	}
}

func TestFromStats(t *testing.T) {
	mc := memctrl.Stats{Acts: 10, Reads: 20, Writes: 5, Refs: 2, RFMs: 1}
	a := FromStats(mc, 2, 1, 10, timing.Millisecond)
	if a.Acts != 10 || a.RowCopies != 2 || a.RemapAccesses != 10 || a.Duration != timing.Millisecond {
		t.Fatalf("FromStats = %+v", a)
	}
}

func TestZeroDuration(t *testing.T) {
	if DefaultModel().DRAMPower(Activity{}) != 0 {
		t.Fatal("zero-duration power should be 0")
	}
}

// TestAreaOverheadMatchesPaper: 0.47% of a DDR5 chip, ~0.35 mm^2, and 0.6%
// capacity overhead.
func TestAreaOverheadMatchesPaper(t *testing.T) {
	am := DefaultAreaModel()
	g := dram.DefaultGeometry(true)
	area := am.LogicArea(g)
	if math.Abs(area-0.35) > 0.05 {
		t.Errorf("logic area %.3f mm^2, paper reports 0.35", area)
	}
	ov := am.AreaOverhead(g)
	if math.Abs(ov-0.0047) > 0.0007 {
		t.Errorf("area overhead %.4f, paper reports 0.47%%", ov)
	}
	cap := am.CapacityOverhead(g)
	if math.Abs(cap-0.006) > 0.0005 {
		t.Errorf("capacity overhead %.4f, paper reports 0.6%%", cap)
	}
}

// TestAreaIndependentOfHCnt is the paper's key scaling claim: SHADOW's area
// has no H_cnt term at all (unlike tracker-based schemes whose tables grow
// as H_cnt falls). The model's inputs are purely geometric.
func TestAreaIndependentOfHCnt(t *testing.T) {
	am := DefaultAreaModel()
	g := dram.DefaultGeometry(true)
	a := am.LogicArea(g)
	// Nothing about H_cnt exists to vary; assert the computation is pure
	// geometry by recomputing.
	if am.LogicArea(g) != a {
		t.Fatal("area model not deterministic")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	m := DefaultModel()
	dur := 5 * timing.Millisecond
	a := activityFor(int64(dur/(120*timing.Nanosecond)), true, dur)
	parts := m.Breakdown(a)
	sum := 0.0
	for _, v := range parts {
		sum += v
	}
	if total := m.DRAMEnergy(a); math.Abs(sum-total)/total > 1e-9 {
		t.Fatalf("breakdown sum %.1f != total %.1f", sum, total)
	}
	// The SHADOW-added components: remap accesses dominate shuffle work.
	added := parts["remap-access"]
	shuffle := parts["row-copy"] + parts["inc-refresh"] + parts["rfm"]
	if added <= shuffle {
		t.Fatalf("remap access %.0f nJ should dominate shuffle %.0f nJ", added, shuffle)
	}
}
