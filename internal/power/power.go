// Package power models DRAM and system power (Section VII-D, Figure 12) and
// the SHADOW area/capacity overheads.
//
// The energy model follows the Micron DDR4 system-power-calculator
// methodology: per-command energies derived from IDD currents
// (ACT/PRE from IDD0, column bursts from IDD4R/W, refresh from IDD5) plus a
// background term, evaluated over the command counts a simulation produced.
// SHADOW adds (i) a remapping-row access on every ACT — cheap because the
// isolation transistor cuts the sensed capacitance >100x — and (ii) the
// RFM-time work: one incremental refresh plus two row copies. System power
// adds the CPU's TDP (the paper uses the i9-7940X's 165 W), which is why the
// system-level impact stays below 0.63% even at H_cnt 2K.
package power

import (
	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

// Model holds per-command energies (nanojoules, whole rank) and static power
// (watts).
type Model struct {
	EAct float64 // one ACT+PRE pair
	ERd  float64 // one 64B read burst
	EWr  float64 // one 64B write burst
	ERef float64 // one all-bank REF command
	ERFM float64 // RFM overhead excluding the scheme's row work

	// SHADOW-specific energies.
	ERemapAccess float64 // remapping-row activate+read, added to every ACT
	ERowCopy     float64 // one intra-subarray row copy
	EIncRefresh  float64 // one incremental refresh (ACT+PRE)

	PBackground float64 // rank background power, W
	CPUTDP      float64 // processor TDP, W
}

// DefaultModel returns energies for a DDR4-2666 2-rank DIMM derived from
// Micron datasheet IDD values (IDD0 55 mA, IDD3N 45 mA, IDD4R/W ~150 mA,
// IDD5B 250 mA at VDD 1.2 V, x8, 8 chips per rank) and the paper's system
// (165 W TDP).
func DefaultModel() *Model {
	return &Model{
		EAct: 4.4, // (IDD0-IDD3N)*tRC*VDD*8
		ERd:  3.0, // (IDD4R-IDD3N)*tBL*VDD*8
		EWr:  3.1,
		ERef: 570, // (IDD5B-IDD3N)*tRFC*VDD*8
		ERFM: 10,  // command overhead + bank idling

		// The isolation transistor reduces the sensed capacitance >100x, so
		// a remapping-row access costs a small fraction of a full ACT; the
		// paper observes total power is nonetheless dominated by this term
		// because it is paid on every activation.
		ERemapAccess: 0.9,
		ERowCopy:     6.8, // ~1.55 restore phases: between one and two ACTs
		EIncRefresh:  4.4,

		PBackground: 0.9,
		CPUTDP:      165,
	}
}

// Activity is the command mix of one run.
type Activity struct {
	Acts, Reads, Writes int64
	Refs, RFMs          int64
	RowCopies           int64 // SHADOW shuffle copies (2 per shuffle)
	IncRefreshes        int64
	RemapAccesses       int64 // = Acts when SHADOW is installed, else 0
	Duration            timing.Tick
}

// FromStats assembles an Activity from controller stats and device counts.
func FromStats(mc memctrl.Stats, rowCopies, incRefreshes, remapAccesses int64, dur timing.Tick) Activity {
	return Activity{
		Acts: mc.Acts, Reads: mc.Reads, Writes: mc.Writes,
		Refs: mc.Refs, RFMs: mc.RFMs,
		RowCopies: rowCopies, IncRefreshes: incRefreshes,
		RemapAccesses: remapAccesses,
		Duration:      dur,
	}
}

// DRAMEnergy returns the rank's total energy in nanojoules.
func (m *Model) DRAMEnergy(a Activity) float64 {
	e := float64(a.Acts)*m.EAct +
		float64(a.Reads)*m.ERd +
		float64(a.Writes)*m.EWr +
		float64(a.Refs)*m.ERef +
		float64(a.RFMs)*m.ERFM +
		float64(a.RowCopies)*m.ERowCopy +
		float64(a.IncRefreshes)*m.EIncRefresh +
		float64(a.RemapAccesses)*m.ERemapAccess
	e += m.PBackground * a.Duration.Nanoseconds() // W * ns = nJ
	return e
}

// DRAMPower returns the rank's average power in watts.
func (m *Model) DRAMPower(a Activity) float64 {
	if a.Duration <= 0 {
		return 0
	}
	return m.DRAMEnergy(a) / a.Duration.Nanoseconds() // nJ / ns = W
}

// SystemPower adds the CPU TDP.
func (m *Model) SystemPower(a Activity) float64 {
	return m.CPUTDP + m.DRAMPower(a)
}

// RelativeSystemPower returns scheme/baseline system power — the Figure 12
// metric.
func (m *Model) RelativeSystemPower(scheme, baseline Activity) float64 {
	return m.SystemPower(scheme) / m.SystemPower(baseline)
}

// Breakdown decomposes the DRAM energy by component (nanojoules), the data
// behind the paper's observation that SHADOW's added power is dominated by
// remapping-row accesses.
func (m *Model) Breakdown(a Activity) map[string]float64 {
	return map[string]float64{
		"activate":     float64(a.Acts) * m.EAct,
		"read":         float64(a.Reads) * m.ERd,
		"write":        float64(a.Writes) * m.EWr,
		"refresh":      float64(a.Refs) * m.ERef,
		"rfm":          float64(a.RFMs) * m.ERFM,
		"row-copy":     float64(a.RowCopies) * m.ERowCopy,
		"inc-refresh":  float64(a.IncRefreshes) * m.EIncRefresh,
		"remap-access": float64(a.RemapAccesses) * m.ERemapAccess,
		"background":   m.PBackground * a.Duration.Nanoseconds(),
	}
}
