package circuit

import (
	"math"
	"strings"
	"testing"

	"shadow/internal/timing"
)

func eval(t *testing.T) Results {
	t.Helper()
	p := timing.NewParams(timing.DDR4_2666)
	return DefaultModel().Evaluate(p)
}

// TestTableIIIValues checks every row of the paper's Table III against the
// analytical model, with tolerances reflecting first-order modelling.
func TestTableIIIValues(t *testing.T) {
	r := eval(t)
	cases := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"tRCD baseline", r.TRCDBaseline, 13.7, 0.5},
		{"tRCD' (SHADOW activation)", r.TRCDShadow, 17.7, 0.7},
		{"row copy w/ precharge", r.RowCopy, 73.9, 3.0},
		{"tRCD_RM (remap sensing)", r.TRCDRM, 2.3, 0.3},
		{"tWR_RM (remap write recovery)", r.TWRRM, 9.0, 0.5},
		{"tWR baseline", r.TWRBaseline, 11.8, 0.5},
		{"tRD_RM (remap read latency)", r.TRDRM, 4.0, 0.4},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %.2fns, want %.1f±%.1fns", c.name, c.got, c.want, c.tol)
		}
	}
}

// TestTableIIIRatios checks the ratio column of Table III: tRCD' is ~+29%,
// remapping-row sensing is ~-83%, write recovery ~-24%, read latency ~-71%.
func TestTableIIIRatios(t *testing.T) {
	r := eval(t)
	cases := []struct {
		name      string
		num, den  float64
		want, tol float64
	}{
		{"tRCD' ratio", r.TRCDShadow, r.TRCDBaseline, 1.29, 0.05},
		{"tRCD_RM ratio", r.TRCDRM, r.TRCDBaseline, 0.17, 0.03},
		{"tWR_RM ratio", r.TWRRM, r.TWRBaseline, 0.76, 0.05},
		{"tRD_RM ratio", r.TRDRM, r.TRCDBaseline, 0.29, 0.04},
	}
	for _, c := range cases {
		got := c.num / c.den
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s = %.3f, want %.2f±%.2f", c.name, got, c.want, c.tol)
		}
	}
}

func TestCapacitanceReduction(t *testing.T) {
	m := DefaultModel()
	if got := m.CapacitanceReduction(); got < 100 {
		t.Errorf("isolation capacitance reduction = %.0fx, paper requires >100x", got)
	}
}

func TestDATraversalUnderOneNS(t *testing.T) {
	// Paper: "the wire delay for DA traversal is less than 1ns".
	r := eval(t)
	if r.DATraversal >= 1.0 {
		t.Errorf("DA traversal = %.2fns, want < 1ns", r.DATraversal)
	}
	if r.DATraversal <= 0 {
		t.Errorf("DA traversal = %.2fns, want positive", r.DATraversal)
	}
}

// TestSenseTimeMonotonicity: more bitline capacitance -> smaller ΔV ->
// longer sensing. The model must be monotonic for the isolation-transistor
// argument to hold at any segment size.
func TestSenseTimeMonotonicity(t *testing.T) {
	m := DefaultModel()
	prev := -1.0
	for cells := 1; cells <= m.CellsPerBitline; cells *= 2 {
		st := m.SenseTime(m.bitlineFF(cells))
		if st <= prev {
			t.Fatalf("SenseTime not increasing at %d cells: %.3f <= %.3f", cells, st, prev)
		}
		prev = st
	}
}

func TestChargeShareDV(t *testing.T) {
	m := DefaultModel()
	full := m.ChargeShareDV(m.bitlineFF(m.CellsPerBitline))
	iso := m.ChargeShareDV(m.bitlineFF(m.IsoSegmentCells))
	if full >= iso {
		t.Fatalf("ΔV full bitline (%.3fV) should be below isolated (%.3fV)", full, iso)
	}
	if iso >= m.VDD/2 {
		t.Fatalf("ΔV cannot exceed half-swing: %.3fV", iso)
	}
	// Isolated remapping-row should develop nearly the full half-swing.
	if iso < 0.9*m.VDD/2 {
		t.Fatalf("isolated ΔV = %.3fV, want >= 90%% of half-swing", iso)
	}
}

func TestShadowTimingsConversion(t *testing.T) {
	p := timing.NewParams(timing.DDR4_2666)
	st := DefaultShadowTimings(p)
	if st.RDRM <= 0 || st.RCDRM <= 0 || st.WRRM <= 0 || st.RowCopy <= 0 {
		t.Fatalf("non-positive shadow timings: %+v", st)
	}
	sp := p.WithShadow(st)
	if err := sp.Validate(); err != nil {
		t.Fatalf("shadow params invalid: %v", err)
	}
	// tRCD' must land near 17.7ns per Table III.
	if got := sp.EffectiveRCD().Nanoseconds(); math.Abs(got-17.7) > 1.0 {
		t.Fatalf("EffectiveRCD = %.2fns, want ~17.7ns", got)
	}
}

func TestResultsString(t *testing.T) {
	s := eval(t).String()
	for _, frag := range []string{"tRCD'", "tRCD_RM", "tWR_RM", "tRD_RM", "Row copy"} {
		if !strings.Contains(s, frag) {
			t.Errorf("table rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestSenseTimeSaturates(t *testing.T) {
	m := DefaultModel()
	// With zero bitline capacitance ΔV hits the target and only the fixed
	// overhead remains.
	if got := m.SenseTime(0); got != m.SenseBase {
		t.Fatalf("SenseTime(0) = %.2f, want SenseBase %.2f", got, m.SenseBase)
	}
}
