// Package circuit is the analytical substitute for the paper's SPICE DRAM
// circuit simulation (Section VII-B, Table III).
//
// The paper derives SHADOW's timing values from a transistor-level SPICE
// model of a 22 nm DRAM subarray (scaled from the 55 nm Rambus model). We do
// not have SPICE or the proprietary device models, so this package encodes
// the first-order physics that determines those values:
//
//   - Activation sensing time is governed by the charge-sharing voltage
//     division between the cell capacitance and the bitline capacitance: a
//     bitline loaded by 512 cells develops a small ΔV that the sense
//     amplifier must regenerate exponentially, while the isolation
//     transistor (Section V-A) cuts the bitline seen by the remapping-row to
//     a few cells' worth of metal, >100x less capacitance, so ΔV is almost
//     the full half-swing and sensing is nearly instant.
//   - Write recovery scales with the capacitance that the write driver must
//     slew (bitline + cell).
//   - The remapping-data (DA) traversal to the paired subarray's local row
//     decoder is a distributed-RC wire of half the bank's height plus width.
//
// Free constants (sense-amplifier time constant, driver slew rate, decoder
// latencies) are calibrated once against the paper's 13.7 ns baseline tRCD
// and 11.8 ns baseline tWR; everything SHADOW-specific is then *derived*
// from the capacitance ratios, which is the effect the paper measures.
package circuit

import (
	"fmt"
	"math"

	"shadow/internal/timing"
)

// Model holds the physical parameters of one DRAM subarray bitline and the
// calibrated electrical constants. The zero value is not usable; start from
// DefaultModel.
type Model struct {
	// Geometry and capacitance.
	CellsPerBitline int     // rows sharing one bitline (512)
	CCellFF         float64 // storage cell capacitance, fF
	CBitlinePerCell float64 // bitline metal+junction capacitance per attached cell, fF
	IsoSegmentCells int     // cells' worth of bitline left after the isolation transistor

	// Supply.
	VDD float64 // array voltage
	// VSenseTarget is the bitline swing the sense amplifier must develop
	// before a column read is reliable, as a fraction of VDD/2.
	VSenseTarget float64

	// Calibrated constants.
	SenseTau     float64 // sense-amp regeneration time constant, ns
	SenseBase    float64 // fixed sense overhead (wordline rise, SA enable), ns
	WriteSlew    float64 // write-driver slew cost, ns per fF
	WriteBase    float64 // fixed write-recovery overhead, ns
	DecodeCA     float64 // command/address traversal, ns
	DecodeGlobal float64 // global row decode, ns
	DecodeLocal  float64 // local row decode, ns
	DecodeRRA    float64 // remapping-row decode via the RRA signal, ns
	RestoreTau   float64 // full cell restoration time constant multiplier

	// Paired-subarray DA path (new wire added for subarray pairing).
	WireROhmPerMM float64 // wire resistance, ohm/mm
	WireCFFPerMM  float64 // wire capacitance, fF/mm
	WireLenMM     float64 // DA traversal distance: half bank height + half width
	TraversalPad  float64 // latch/mux setup pad on the DA path, ns

	// CopyRestoreFrac is the measured fraction of a full restoration needed
	// to drive latched row-buffer data into the destination row of a row
	// copy (0.55 in the paper's SPICE run: the destination cell is a small
	// capacitance compared to bitline + row-buffer).
	CopyRestoreFrac float64
}

// DefaultModel returns the 22 nm-scaled subarray model used throughout the
// reproduction. Capacitances are typical published values for modern DRAM
// (cell ~22 fF, bitline ~40 fF for 512 cells); calibration constants were
// fitted once to the paper's baseline column of Table III.
func DefaultModel() *Model {
	return &Model{
		CellsPerBitline: 512,
		CCellFF:         22.0,
		CBitlinePerCell: 0.080, // 512 cells -> 41 fF bitline
		IsoSegmentCells: 4,     // >100x capacitance reduction
		VDD:             1.2,
		VSenseTarget:    1.0, // full half-swing before RD

		SenseTau:     9.18,
		SenseBase:    2.07,
		WriteSlew:    0.0688,
		WriteBase:    7.46,
		DecodeCA:     0.50,
		DecodeGlobal: 0.90,
		DecodeLocal:  0.60,
		DecodeRRA:    0.33, // paper: "minimal at 0.33 ns"
		RestoreTau:   4.195,

		WireROhmPerMM: 1800,
		WireCFFPerMM:  220,
		WireLenMM:     2.0, // half height + half width of a DDR4 bank (Samsung DDR4 floorplan)
		TraversalPad:  0.65,

		CopyRestoreFrac: 0.55,
	}
}

// bitlineFF returns the effective bitline capacitance in fF for a bitline
// loaded by n cells' worth of wire.
func (m *Model) bitlineFF(cells int) float64 {
	return m.CBitlinePerCell * float64(cells)
}

// ChargeShareDV returns the bitline voltage developed by charge sharing with
// one cell, for a bitline of the given effective capacitance, in volts. The
// bitline is precharged to VDD/2; a fully charged cell at VDD redistributes
// onto the bitline.
func (m *Model) ChargeShareDV(cblFF float64) float64 {
	return (m.VDD / 2) * m.CCellFF / (m.CCellFF + cblFF)
}

// SenseTime returns the time in ns for the sense amplifier to regenerate
// ΔV up to the target swing: exponential regeneration, tau*ln(target/ΔV),
// plus a fixed overhead.
func (m *Model) SenseTime(cblFF float64) float64 {
	dv := m.ChargeShareDV(cblFF)
	target := m.VSenseTarget * m.VDD / 2
	if dv >= target {
		return m.SenseBase
	}
	return m.SenseTau*math.Log(target/dv) + m.SenseBase
}

// WriteRecovery returns the write-recovery time in ns for a write driver
// slewing the given bitline capacitance plus one cell.
func (m *Model) WriteRecovery(cblFF float64) float64 {
	return m.WriteSlew*(cblFF+m.CCellFF) + m.WriteBase
}

// WireDelay returns the Elmore delay of the distributed DA wire in ns:
// 0.5 * R * C * L^2 (R in ohm/mm, C in fF/mm -> ohm*fF = 1e-6 ns).
func (m *Model) WireDelay() float64 {
	return 0.5 * m.WireROhmPerMM * m.WireCFFPerMM * m.WireLenMM * m.WireLenMM * 1e-6
}

// Results is the output of the circuit model: Table III of the paper.
// All values are in nanoseconds.
type Results struct {
	TRCDBaseline float64 // ordinary row activation (baseline tRCD component)
	TRCDShadow   float64 // row activation in SHADOW (tRCD')
	RowCopy      float64 // one row copy including precharge
	TRCDRM       float64 // remapping-row sensing (tRCD_RM)
	TWRRM        float64 // remapping-row write recovery (tWR_RM)
	TWRBaseline  float64 // ordinary write recovery (baseline for tWR_RM)
	TRDRM        float64 // remapping-row read latency (tRD_RM), added to every ACT
	DATraversal  float64 // DA wire traversal component of tRD_RM
	RestoreFull  float64 // full cell restoration (row-copy source phase)
}

// Evaluate runs the analytical model and returns the Table III values.
func (m *Model) Evaluate(p *timing.Params) Results {
	fullBL := m.bitlineFF(m.CellsPerBitline)
	isoBL := m.bitlineFF(m.IsoSegmentCells)

	var r Results
	r.TRCDBaseline = m.DecodeCA + m.DecodeGlobal + m.DecodeLocal + m.SenseTime(fullBL)
	r.TRCDRM = m.SenseTime(isoBL)
	r.DATraversal = m.WireDelay()
	r.TRDRM = m.DecodeRRA + r.TRCDRM + r.DATraversal + m.TraversalPad
	r.TRCDShadow = r.TRCDBaseline + r.TRDRM
	r.TWRBaseline = m.WriteRecovery(fullBL)
	r.TWRRM = m.WriteRecovery(isoBL)
	r.RestoreFull = m.SenseTau * m.RestoreTau
	r.RowCopy = r.RestoreFull*(1+m.CopyRestoreFrac) + p.RP.Nanoseconds()
	return r
}

// ShadowTimings converts the circuit results into the timing-parameter form
// consumed by the rest of the system.
func (r Results) ShadowTimings() timing.ShadowTimings {
	return timing.ShadowTimings{
		RDRM:            timing.NS(r.TRDRM),
		RCDRM:           timing.NS(r.TRCDRM),
		WRRM:            timing.NS(r.TWRRM),
		RowCopy:         timing.NS(r.RowCopy),
		CopyRestoreFrac: 0.55,
	}
}

// CapacitanceReduction reports the factor by which the isolation transistor
// reduces the bitline capacitance seen by the remapping-row. The paper
// reports "more than 100x".
func (m *Model) CapacitanceReduction() float64 {
	return float64(m.CellsPerBitline) / float64(m.IsoSegmentCells)
}

// String renders the results as the rows of Table III.
func (r Results) String() string {
	row := func(def, abbr string, t, base float64) string {
		ratio := "-"
		if base > 0 {
			ratio = fmt.Sprintf("%+.0f%%", (t/base-1)*100)
		}
		baseStr := "-"
		if base > 0 {
			baseStr = fmt.Sprintf("%.1fns", base)
		}
		return fmt.Sprintf("%-32s %-9s %6.1fns %9s %6s\n", def, abbr, t, baseStr, ratio)
	}
	s := fmt.Sprintf("%-32s %-9s %8s %9s %6s\n", "Definition", "Abbrev.", "Timing", "Baseline", "Ratio")
	s += row("Row activation in SHADOW", "tRCD'", r.TRCDShadow, r.TRCDBaseline)
	s += row("Row copy w/ precharge", "-", r.RowCopy, 0)
	s += row("Remapping-row sensing", "tRCD_RM", r.TRCDRM, r.TRCDBaseline)
	s += row("Remapping-row write recovery", "tWR_RM", r.TWRRM, r.TWRBaseline)
	s += row("Remapping-row read latency", "tRD_RM", r.TRDRM, r.TRCDBaseline)
	return s
}

// DefaultShadowTimings evaluates the default model against the given params
// and returns SHADOW timing additions — the one-call path used by the
// simulator setup code.
func DefaultShadowTimings(p *timing.Params) timing.ShadowTimings {
	return DefaultModel().Evaluate(p).ShadowTimings()
}
