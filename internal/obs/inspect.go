package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"shadow/internal/timing"
)

// InspectorSources supplies the data the live inspector serves. Every source
// is invoked only from the simulation goroutine (inside Observe), never from
// HTTP handlers, so sources may read live simulation state without locking.
type InspectorSources struct {
	// Metrics returns the current metrics dump as JSON (e.g. a closure over
	// Metrics.WriteJSON). Nil omits the endpoint's payload.
	Metrics func() []byte
	// Blame returns the current rolling blame breakdown as JSON (e.g.
	// report.BlameJSON over the span collector's aggregate so far).
	Blame func() []byte
	// Events returns the number of recorded trace events (Recorder.EventCount).
	Events func() int64
	// Prom returns the instrument registry rendered in Prometheus text
	// exposition format (e.g. a closure over Metrics.WritePrometheus); the
	// /metrics endpoint appends it to the run-status metrics.
	Prom func() []byte
	// Flight returns the flight-recorder dump as JSON (e.g. a closure over
	// flight.Watch.WriteDump), served on /flight.json.
	Flight func() []byte
}

// Inspector is the live run inspector behind the -inspect flag: an opt-in
// HTTP endpoint serving heartbeat state, a metrics snapshot, and a rolling
// blame breakdown while a run is in flight.
//
// Thread model: the simulation goroutine drives Observe (wired into the sim
// Progress callback) and Done; HTTP handlers — on server goroutines — read
// only the cached snapshot bytes under the mutex. Snapshots are refreshed at
// most once per second of wall time, so inspection stays off the hot path.
// Like Heartbeat, the wall clock is injected (time.Now in production),
// keeping the package free of direct wall-clock reads.
type Inspector struct {
	clock func() time.Time

	mu      sync.Mutex
	label   string
	worker  string
	now     timing.Tick
	total   timing.Tick
	started time.Time
	// points tracks every label Observe has seen, in first-observation
	// order: shadowexp sweeps move the inspector through one labeled point
	// after another, and the /metrics exposition reports each under its own
	// point label instead of letting the last writer clobber a shared gauge.
	points   []pointState
	pointIdx map[string]int
	// lastObserve/lastSim are the previous snapshot's wall and simulated
	// time, for the sim-us-per-wall-second rate.
	lastObserve time.Time
	lastSim     timing.Tick
	rate        float64
	events      int64
	done        bool
	metricsJSON []byte
	blameJSON   []byte
	promText    []byte
	flightJSON  []byte

	src    InspectorSources
	minGap time.Duration
	nextAt time.Time
	seen   bool
}

// pointState is one observed run phase (experiment point) for the
// per-point progress gauges.
type pointState struct {
	label string
	now   timing.Tick
	total timing.Tick
	done  bool
}

// NewInspector builds an inspector. clock supplies wall time (time.Now in
// production, a fake in tests).
func NewInspector(clock func() time.Time) *Inspector {
	return &Inspector{clock: clock, minGap: time.Second, pointIdx: map[string]int{}}
}

// SetWorker attaches a fleet worker identity: it appears as the "worker"
// field of /status.json and a shadow_worker_info gauge on /metrics, letting
// a fleet collector scraping this process key its registry entry. Safe on a
// nil receiver.
func (ins *Inspector) SetWorker(id string) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	ins.worker = id
}

// SetSources attaches the data sources. Call before the run starts.
func (ins *Inspector) SetSources(src InspectorSources) {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	ins.src = src
}

// Observe records run progress; call it from the simulation goroutine (the
// sim Progress callback). At most once per second it refreshes the cached
// snapshots the HTTP handlers serve. Safe on a nil receiver.
func (ins *Inspector) Observe(label string, now, total timing.Tick) {
	if ins == nil {
		return
	}
	wall := ins.clock()
	ins.mu.Lock()
	defer ins.mu.Unlock()
	if !ins.seen || label != ins.label {
		// First observation, or a new run phase (shadowexp moves through
		// labeled experiment points): reset the rate baseline and mark the
		// previous point finished — a sequential sweep only moves on when
		// its current point completes.
		if ins.seen {
			if i, ok := ins.pointIdx[ins.label]; ok {
				ins.points[i].done = true
			}
		}
		ins.seen = true
		ins.label = label
		ins.started = wall
		ins.lastObserve = wall
		ins.lastSim = 0
		ins.rate = 0
		ins.nextAt = wall // refresh immediately
	}
	ins.now, ins.total = now, total
	i, ok := ins.pointIdx[label]
	if !ok {
		if ins.pointIdx == nil {
			ins.pointIdx = map[string]int{}
		}
		i = len(ins.points)
		ins.pointIdx[label] = i
		ins.points = append(ins.points, pointState{label: label})
	}
	ins.points[i].now, ins.points[i].total = now, total
	if wall.Before(ins.nextAt) {
		return
	}
	if secs := wall.Sub(ins.lastObserve).Seconds(); secs > 0 {
		ins.rate = float64(now-ins.lastSim) / float64(timing.Microsecond) / secs
	}
	ins.lastObserve = wall
	ins.lastSim = now
	ins.nextAt = wall.Add(ins.minGap)
	ins.refreshLocked()
}

// refreshLocked re-runs the sources into the cached snapshots. Caller holds
// mu; runs on the simulation goroutine.
func (ins *Inspector) refreshLocked() {
	if ins.src.Metrics != nil {
		ins.metricsJSON = ins.src.Metrics()
	}
	if ins.src.Blame != nil {
		ins.blameJSON = ins.src.Blame()
	}
	if ins.src.Events != nil {
		ins.events = ins.src.Events()
	}
	if ins.src.Prom != nil {
		ins.promText = ins.src.Prom()
	}
	if ins.src.Flight != nil {
		ins.flightJSON = ins.src.Flight()
	}
}

// Done marks the run finished and takes a final snapshot. Safe on a nil
// receiver.
func (ins *Inspector) Done() {
	if ins == nil {
		return
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()
	ins.done = true
	ins.now = ins.total
	for i := range ins.points {
		ins.points[i].done = true
		ins.points[i].now = ins.points[i].total
	}
	ins.refreshLocked()
}

// status is the JSON shape of /status.json.
type status struct {
	Label       string  `json:"label"`
	Worker      string  `json:"worker,omitempty"`
	Done        bool    `json:"done"`
	SimNowPS    int64   `json:"sim_now_ps"`
	SimTotalPS  int64   `json:"sim_total_ps"`
	Percent     float64 `json:"percent"`
	SimUSPerSec float64 `json:"sim_us_per_sec"`
	Events      int64   `json:"events"`
	ElapsedSec  float64 `json:"elapsed_sec"`
}

// snap is one consistent copy of the cached state, taken under the lock.
type snap struct {
	st      status
	points  []pointState
	metrics []byte
	blame   []byte
	prom    []byte
	flight  []byte
}

// snapshot copies the current state under the lock.
func (ins *Inspector) snapshot() snap {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	st := status{
		Label:       ins.label,
		Worker:      ins.worker,
		Done:        ins.done,
		SimNowPS:    int64(ins.now),
		SimTotalPS:  int64(ins.total),
		SimUSPerSec: ins.rate,
		Events:      ins.events,
	}
	if ins.total > 0 {
		st.Percent = 100 * float64(ins.now) / float64(ins.total)
	}
	if ins.seen {
		st.ElapsedSec = ins.clock().Sub(ins.started).Seconds()
	}
	return snap{
		st:      st,
		points:  append([]pointState(nil), ins.points...),
		metrics: ins.metricsJSON,
		blame:   ins.blameJSON,
		prom:    ins.promText,
		flight:  ins.flightJSON,
	}
}

// writeRunMetrics renders the run-status half of the /metrics payload:
// progress, rate, and event count as Prometheus gauges/counters, ahead of
// the cached instrument-registry exposition. Every observed point gets its
// own point-labelled progress/done series (first-observation order, which
// is deterministic for a given sweep) — the shared shadow_run_* gauges
// describe only the most recently observed point.
func writeRunMetrics(w io.Writer, st status, points []pointState) {
	state := int64(0)
	if st.Done {
		state = 1
	}
	fmt.Fprintf(w, "# HELP shadow_run_info Run identity; the label carries the run or experiment-point name.\n")
	fmt.Fprintf(w, "# TYPE shadow_run_info gauge\nshadow_run_info{%s} 1\n", PromLabel("label", st.Label))
	if st.Worker != "" {
		fmt.Fprintf(w, "# HELP shadow_worker_info Fleet worker identity of this process.\n")
		fmt.Fprintf(w, "# TYPE shadow_worker_info gauge\nshadow_worker_info{%s} 1\n", PromLabel("worker", st.Worker))
	}
	fmt.Fprintf(w, "# TYPE shadow_run_done gauge\nshadow_run_done %d\n", state)
	fmt.Fprintf(w, "# TYPE shadow_run_progress_ratio gauge\nshadow_run_progress_ratio %g\n", st.Percent/100)
	fmt.Fprintf(w, "# TYPE shadow_run_sim_picoseconds gauge\nshadow_run_sim_picoseconds %d\n", st.SimNowPS)
	fmt.Fprintf(w, "# TYPE shadow_run_sim_total_picoseconds gauge\nshadow_run_sim_total_picoseconds %d\n", st.SimTotalPS)
	fmt.Fprintf(w, "# TYPE shadow_run_sim_us_per_second gauge\nshadow_run_sim_us_per_second %g\n", st.SimUSPerSec)
	fmt.Fprintf(w, "# TYPE shadow_run_events_total counter\nshadow_run_events_total %d\n", st.Events)
	if len(points) > 0 {
		fmt.Fprintf(w, "# HELP shadow_run_point_progress_ratio Per-point progress; every observed experiment point keeps its own series.\n")
		fmt.Fprintf(w, "# TYPE shadow_run_point_progress_ratio gauge\n")
		for _, p := range points {
			ratio := 0.0
			if p.total > 0 {
				ratio = float64(p.now) / float64(p.total)
			}
			fmt.Fprintf(w, "shadow_run_point_progress_ratio{%s} %g\n", PromLabel("point", p.label), ratio)
		}
		fmt.Fprintf(w, "# TYPE shadow_run_point_done gauge\n")
		for _, p := range points {
			d := 0
			if p.done {
				d = 1
			}
			fmt.Fprintf(w, "shadow_run_point_done{%s} %d\n", PromLabel("point", p.label), d)
		}
	}
}

// Handler returns the inspector's HTTP handler:
//
//	/             HTML overview (auto-refreshing)
//	/status.json  heartbeat state (progress, rate, event count)
//	/metrics.json latest metrics snapshot
//	/blame.json   rolling blame breakdown
//	/flight.json  flight-recorder dump (event window + watchdog trip)
//	/metrics      Prometheus text exposition (run status + instruments)
//	/healthz      liveness probe (200 "ok")
//
// Every JSON endpoint sends Cache-Control: no-store — the payloads change
// every refresh and must never be served stale by an intermediary.
func (ins *Inspector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		s := ins.snapshot()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		json.NewEncoder(w).Encode(s.st)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		metrics := ins.snapshot().metrics
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if len(metrics) == 0 {
			metrics = []byte("{}\n")
		}
		w.Write(metrics)
	})
	mux.HandleFunc("/blame.json", func(w http.ResponseWriter, r *http.Request) {
		blame := ins.snapshot().blame
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if len(blame) == 0 {
			blame = []byte("[]\n")
		}
		w.Write(blame)
	})
	mux.HandleFunc("/flight.json", func(w http.ResponseWriter, r *http.Request) {
		flight := ins.snapshot().flight
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if len(flight) == 0 {
			flight = []byte("{}\n")
		}
		w.Write(flight)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := ins.snapshot()
		w.Header().Set("Content-Type", ContentTypePrometheus)
		w.Header().Set("Cache-Control", "no-store")
		writeRunMetrics(w, s.st, s.points)
		w.Write(s.prom)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		s := ins.snapshot()
		st, blame := s.st, s.blame
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		state := "running"
		if st.Done {
			state = "done"
		}
		fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="2"><title>shadowtap inspector</title></head><body style="font-family:monospace">`)
		fmt.Fprintf(w, "<h2>shadowtap inspector</h2>")
		fmt.Fprintf(w, "<p>%s — %s — %.1f%% (%.1f of %.1f sim-us) — %.1f sim-us/s — %d events — %.1fs elapsed</p>",
			htmlEscape(st.Label), state, st.Percent,
			float64(st.SimNowPS)/1e6, float64(st.SimTotalPS)/1e6,
			st.SimUSPerSec, st.Events, st.ElapsedSec)
		fmt.Fprintf(w, `<p><a href="/status.json">status.json</a> · <a href="/metrics.json">metrics.json</a> · <a href="/blame.json">blame.json</a> · <a href="/flight.json">flight.json</a> · <a href="/metrics">metrics (Prometheus)</a> · <a href="/healthz">healthz</a></p>`)
		if len(blame) > 0 {
			fmt.Fprintf(w, "<h3>rolling blame</h3><pre>%s</pre>", htmlEscape(string(blame)))
		}
		fmt.Fprintf(w, "</body></html>")
	})
	return mux
}

// htmlEscape covers the characters that matter inside the inspector's text
// nodes.
func htmlEscape(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b = append(b, "&lt;"...)
		case '>':
			b = append(b, "&gt;"...)
		case '&':
			b = append(b, "&amp;"...)
		default:
			b = append(b, s[i])
		}
	}
	return string(b)
}
