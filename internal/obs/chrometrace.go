package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing consume). ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tidOf maps a bank index to a trace thread: tid 0 is the rank (bank -1),
// bank i is tid i+1.
func tidOf(bank int) int { return bank + 1 }

// eventTID resolves an event's trace thread: an explicit TID (request-span
// lanes) wins, otherwise the bank-per-thread default.
func eventTID(e Event) int {
	if e.TID != 0 {
		return e.TID
	}
	return tidOf(e.Bank)
}

// threadName names a trace thread for metadata: the rank, a bank, or a
// request lane.
func threadName(tid int) string {
	if tid >= reqTIDBase {
		core, lane := (tid-reqTIDBase)/ReqLanes, (tid-reqTIDBase)%ReqLanes
		return "core " + itoa(core) + " lane " + itoa(lane)
	}
	if tid > 0 {
		return "bank " + itoa(tid-1)
	}
	return "rank"
}

// ticksToUS converts picosecond ticks to trace microseconds.
func ticksToUS(t int64) float64 { return float64(t) / 1e6 }

// WriteChromeTrace renders the captured events as Chrome trace-event JSON,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing: one process
// per track/channel, one thread per bank, duration slices ("X") for
// commands with service time and thread-scoped instants ("i") otherwise.
// The output is byte-deterministic for a deterministic event stream.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := func(first *bool, ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !*first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		*first = false
		_, err = bw.Write(b)
		return err
	}
	first := true

	// Metadata: name every (pid, tid) pair that appears, sorted.
	pairs := make([]int64, 0, len(r.events))
	for _, e := range r.events {
		pairs = append(pairs, int64(e.PID)<<20|int64(eventTID(e)))
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i] < pairs[j] })
	lastPID := -1
	var lastPair int64 = -1
	for _, pair := range pairs {
		if pair == lastPair {
			continue
		}
		lastPair = pair
		pid, tid := int(pair>>20), int(pair&(1<<20-1))
		if pid != lastPID {
			lastPID = pid
			if err := enc(&first, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": r.trackName(pid)},
			}); err != nil {
				return err
			}
		}
		if err := enc(&first, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": threadName(tid)},
		}); err != nil {
			return err
		}
	}

	for _, e := range r.events {
		name := e.Kind.String()
		if e.Label != "" {
			name = e.Label
		}
		ce := chromeEvent{
			Name: name,
			Cat:  e.Kind.Category(),
			Ts:   ticksToUS(int64(e.At)),
			PID:  e.PID,
			TID:  eventTID(e),
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = ticksToUS(int64(e.Dur))
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		ce.Args = eventArgs(e)
		if err := enc(&first, ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// eventArgs builds the kind-specific argument map shown in the trace UI's
// detail pane. json.Marshal emits map keys sorted, keeping output
// deterministic.
func eventArgs(e Event) map[string]any {
	args := map[string]any{}
	if e.Row >= 0 {
		args["row"] = e.Row
	}
	switch e.Kind {
	case KindSwap:
		args["partner_row"] = e.Aux
	case KindShuffle, KindFlip:
		args["subarray"] = e.Aux
	case KindThrottle:
		args["min_gap_ps"] = int64(e.Dur)
	case KindSpan:
		args["bank"] = e.Bank
		args["stall_ps"] = e.Aux
	default:
		// The plain command kinds carry no extra operand beyond row.
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// itoa is strconv.Itoa without the import (keeps the hot-path file lean).
func itoa(v int) string {
	b, _ := json.Marshal(v)
	return string(b)
}
