// Package obs is shadowscope: the simulator's deterministic observability
// layer — metrics (counters, gauges, tick-bucketed histograms,
// fixed-interval time series) and a structured event sink capturing DRAM
// commands, RFM issues, SHADOW shuffles, RRS swaps, and BlockHammer
// throttle decisions.
//
// Two properties define the design:
//
//   - Determinism. Every instrument is keyed to *simulated* time
//     (timing.Tick); nothing in this package reads the wall clock or any
//     unseeded entropy source, so it passes the shadowvet determinism
//     analyzer and instrumented same-seed runs stay bit-identical. The one
//     component that needs wall time — the progress Heartbeat — takes the
//     clock as an injected func from the (unrestricted) cmd layer.
//
//   - Nil-safety. The off path costs one nil check: a nil *Probe, and every
//     instrument obtained from it, is valid and inert. Simulation code
//     stores instruments unconditionally and calls them on hot paths with
//     no branches of its own.
//
// A Recorder owns the collected data for one run and renders it through
// WriteChromeTrace (Perfetto-viewable trace-event JSON, one process track
// per channel, one thread track per bank) and the Metrics dump
// (WriteJSON/WriteCSV). Probes are handed out per track (NewTrack) and per
// channel (ForChannel); the simulator threads them through the memory
// controller, the DRAM device, and the mitigation schemes.
//
// A Recorder is not safe for concurrent use: attach it to one
// single-threaded simulation at a time (the experiment harness forces
// Workers=1 when probing for exactly this reason).
package obs

import (
	"fmt"

	"shadow/internal/timing"
)

// trackStride spaces track base PIDs so per-channel probes (ForChannel) can
// derive distinct PIDs without registration.
const trackStride = 64

// EventSink receives every emitted event, even when the growable event log
// (Options.Events) is off. The flight recorder (obs/flight.Ring) implements
// it with a fixed-capacity overwrite-oldest ring, which is why the tee runs
// unconditionally: a sink that cannot grow is safe to leave always on.
type EventSink interface {
	Record(Event)
}

// Options selects what a Recorder collects. The zero value collects
// nothing (useful only for benchmarks of the probe overhead itself).
type Options struct {
	// Metrics enables the instrument registry (counters, gauges,
	// histograms, series).
	Metrics bool
	// Events enables the structured event sink.
	Events bool
	// Flight, when non-nil, receives every emitted event regardless of
	// Events: the always-on flight recorder lane. The sink must be
	// bounded (overwrite-oldest); it is called on the simulation hot path.
	Flight EventSink
	// SampleInterval is the bucket width of every time series (default
	// 1 us of simulated time).
	SampleInterval timing.Tick
	// MaxEvents bounds the event sink's memory (default 1<<22 ≈ 4M
	// events); excess events are counted in Dropped, never silently lost.
	MaxEvents int
}

// Track is one top-level trace group (a Chrome trace "process"): one per
// simulation run, or one per experiment operating point.
type Track struct {
	PID  int
	Name string
}

// Recorder owns the observability data of one run.
type Recorder struct {
	opt     Options
	met     *Metrics
	events  []Event
	dropped int64
	tracks  []Track
}

// NewRecorder builds a recorder.
func NewRecorder(opt Options) *Recorder {
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = timing.Microsecond
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = 1 << 22
	}
	r := &Recorder{opt: opt}
	if opt.Metrics {
		r.met = newMetrics(opt.SampleInterval)
	}
	return r
}

// NewTrack allocates a new top-level trace group and returns its probe.
// The track name prefixes every metric recorded through the probe, so
// multiple tracks (one per experiment operating point) never collide in the
// shared registry.
func (r *Recorder) NewTrack(name string) *Probe {
	pid := len(r.tracks) * trackStride
	r.tracks = append(r.tracks, Track{PID: pid, Name: name})
	return &Probe{rec: r, pid: pid, prefix: name + "/"}
}

// Metrics returns the instrument registry (nil when metrics are disabled).
func (r *Recorder) Metrics() *Metrics { return r.met }

// Events returns the captured events in emission order.
func (r *Recorder) Events() []Event { return r.events }

// EventCount returns how many events have been captured so far.
func (r *Recorder) EventCount() int64 { return int64(len(r.events)) }

// Dropped returns how many events were discarded after MaxEvents.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Tracks returns the allocated trace groups.
func (r *Recorder) Tracks() []Track { return r.tracks }

func (r *Recorder) emit(e Event) {
	if r.opt.Flight != nil {
		r.opt.Flight.Record(e)
	}
	if !r.opt.Events {
		return
	}
	if len(r.events) >= r.opt.MaxEvents {
		r.dropped++
		return
	}
	r.events = append(r.events, e) //shadowvet:ignore allocflow -- event buffer bounded by MaxEvents; growth is amortized and stops at the cap
}

// trackName resolves a PID (base track or channel-derived) to a display
// name for trace metadata.
func (r *Recorder) trackName(pid int) string {
	base, ch := pid/trackStride, pid%trackStride
	name := fmt.Sprintf("track %d", base)
	if base < len(r.tracks) {
		name = r.tracks[base].Name
	}
	if ch > 0 {
		name = fmt.Sprintf("%s ch%d", name, ch)
	}
	return name
}

// Probe is the instrumentation handle threaded through the simulator. A
// nil *Probe is valid and disables everything; every method is safe on the
// nil receiver.
type Probe struct {
	rec    *Recorder
	pid    int
	prefix string
}

// Enabled reports whether the probe records anything at all.
func (p *Probe) Enabled() bool { return p != nil }

// EventsOn reports whether emitted events reach any sink — the growable
// event log or a flight recorder. Hot paths that build an Event per command
// may skip the construction entirely when it is false.
func (p *Probe) EventsOn() bool {
	return p != nil && (p.rec.opt.Events || p.rec.opt.Flight != nil)
}

// ForChannel derives a per-channel probe: channel ch's events land on
// PID base+ch and its metric names gain a "ch<N>/" prefix. Channel 0 is
// the base track itself.
func (p *Probe) ForChannel(ch int) *Probe {
	if p == nil || ch == 0 {
		return p
	}
	if ch < 0 || ch >= trackStride {
		panic(fmt.Sprintf("obs: channel %d out of range [0,%d)", ch, trackStride))
	}
	return &Probe{rec: p.rec, pid: p.pid + ch, prefix: fmt.Sprintf("%sch%d/", p.prefix, ch)}
}

// Emit records a structured event (no-op when events are disabled).
func (p *Probe) Emit(e Event) {
	if p == nil {
		return
	}
	e.PID = p.pid
	p.rec.emit(e)
}

// Counter returns (creating on first use) the named counter, nil-inert
// when the probe or the metrics registry is off.
func (p *Probe) Counter(name string) *Counter {
	if p == nil {
		return nil
	}
	return p.rec.met.Counter(p.prefix + name)
}

// Gauge returns the named gauge.
func (p *Probe) Gauge(name string) *Gauge {
	if p == nil {
		return nil
	}
	return p.rec.met.Gauge(p.prefix + name)
}

// Histogram returns the named histogram.
func (p *Probe) Histogram(name string) *Histogram {
	if p == nil {
		return nil
	}
	return p.rec.met.Histogram(p.prefix + name)
}

// Series returns the named fixed-interval time series.
func (p *Probe) Series(name string) *Series {
	if p == nil {
		return nil
	}
	return p.rec.met.Series(p.prefix + name)
}
