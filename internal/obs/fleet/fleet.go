// Package fleet is shadowfleet: fleet-wide observability for sharded
// sweeps. A Collector registers every worker of a shadowexp point fan-out
// (and, through the Poller, remote shadowsim processes scraped over HTTP),
// merges their Prometheus metric families into fleet-level series with
// worker/scheme/point labels, retains recent history in a bounded trend
// store, and runs fleet watchdogs — straggler, stalled-worker, and
// cross-worker divergence — on the flight recorder's trip-and-freeze
// pattern. The fleet Inspector (inspect.go) serves the merged view live:
// /fleet.json, /fleet/metrics, /fleet/workers.json, /fleet/trends.json, and
// an HTML dashboard with per-worker progress bars and sparkline trends.
//
// Two sources, one path: in-process workers render their obs.Recorder
// registries through obs.(*Metrics).WritePrometheus and hand the text to
// Ingest; the Poller scrapes the same exposition from remote /metrics
// endpoints. Both go through the package's text-format parser (parse.go),
// so the aggregator never distinguishes local from remote.
//
// Like the rest of the obs layer, the package is deterministic (no direct
// wall-clock reads — the Collector takes its clock injected from the cmd
// layer; every map iteration is sorted) and nil-safe (a nil *Collector or
// *Store is valid and inert).
package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"shadow/internal/obs/flight"
	"shadow/internal/timing"
)

// Options configures a Collector.
type Options struct {
	// Clock supplies wall time (time.Now in production, a fake in tests).
	// Required: the collector stamps point durations and scrape staleness
	// with it so the fleet package itself stays free of wall-clock reads.
	Clock func() time.Time
	// TrendCapacity bounds each trend series (default DefaultTrendCapacity).
	TrendCapacity int
	// RefreshEvery is the minimum wall-time gap between metric snapshots of
	// one worker (default 1s): PointProgress returns true at most this often.
	RefreshEvery time.Duration
	// StragglerFactor is the straggler watchdog's K: an in-flight point
	// running longer than K times the median completed-point duration trips
	// it (default 4; needs >= 3 completed points before it can trip).
	StragglerFactor float64
	// StallIntervals is the stalled-worker watchdog's M: a worker whose
	// metric snapshot has not changed at all across M consecutive ingests
	// while a point is in flight trips it (default 5).
	StallIntervals int
}

func (o Options) withDefaults() Options {
	if o.RefreshEvery <= 0 {
		o.RefreshEvery = time.Second
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 4
	}
	if o.StallIntervals <= 0 {
		o.StallIntervals = 5
	}
	return o
}

// PointRecord is one completed operating point, as reported by a worker.
type PointRecord struct {
	Worker  string  `json:"worker"`
	Point   string  `json:"point"`
	Scheme  string  `json:"scheme"`
	Seed    uint64  `json:"seed"`
	CmdHash string  `json:"cmd_hash"`
	WallMS  float64 `json:"wall_ms"`
}

// worker is the registry entry for one fleet member.
type worker struct {
	id     string
	source string // "local", or the scrape base URL

	// Current point, as reported by hooks (local) or /status.json (scraped).
	point  string
	scheme string
	seed   uint64
	now    timing.Tick
	total  timing.Tick
	done   bool // no point in flight

	startedAt  time.Time // wall time the current point started
	lastIngest time.Time

	families []Family // latest parsed metric snapshot
	// famScheme/famPoint are the worker's scheme and point at the time of
	// the last metrics ingest — the identity labels the aggregator stamps on
	// re-exposed samples (the live point may already have moved on).
	famScheme string
	famPoint  string
	blame     []BlameRowJSON // latest ingested blame rows

	// Stall detection: a fingerprint of the whole exposition at the last
	// ingest, and how many consecutive ingests it has not changed while a
	// point was in flight. The fingerprint covers every sample — counters
	// alone are too quiet a signal (a short benign run may never increment
	// dram/flips_total, the simulator's only counter), while a live worker's
	// gauges and latency histograms move on every snapshot.
	moveSig      uint64
	counterTotal float64
	idleIngests  int

	pointsDone int
	lastErr    string
}

// progressPct returns the worker's current-point progress in percent.
func (w *worker) progressPct() float64 {
	if w.done {
		return 100
	}
	if w.total <= 0 {
		return 0
	}
	return 100 * float64(w.now) / float64(w.total)
}

// Collector is the fleet registry and aggregation point. All methods are
// safe for concurrent use (hooks arrive from every sweep worker goroutine
// and the Poller; HTTP handlers read snapshots) and safe on a nil receiver.
type Collector struct {
	mu  sync.Mutex
	opt Options

	workers map[string]*worker
	store   *Store
	watch   *flight.Watch

	startAt  time.Time // first activity; ETA regression origin
	expected int       // planned point count (0 = unknown)
	seq      int64     // scrape/refresh sequence, the trend time axis

	completed []PointRecord
	// completions records (wall seconds since startAt, cumulative count)
	// pairs for the ETA throughput regression.
	completions []completion

	// hashes detects cross-worker divergence: first (hash, worker) seen per
	// point+seed key.
	hashes    map[string]hashSeen
	divergent string // non-empty once two workers disagreed
}

type completion struct{ atSec, count float64 }

type hashSeen struct {
	hash   uint64
	worker string
}

// NewCollector builds a collector and arms the three fleet watchdogs. opt
// must carry a Clock.
func NewCollector(opt Options) *Collector {
	if opt.Clock == nil {
		panic("fleet: Options.Clock is required (inject time.Now from the cmd layer)")
	}
	c := &Collector{
		opt:     opt.withDefaults(),
		workers: map[string]*worker{},
		store:   NewStore(opt.TrendCapacity),
		watch:   flight.NewWatch(nil),
		hashes:  map[string]hashSeen{},
	}
	// The probes run under c.mu (Tick holds it), so they read state directly.
	c.watch.Add(flight.Check{Name: "fleet-straggler", Probe: c.stragglerLocked})
	c.watch.Add(flight.Check{Name: "fleet-stalled-worker", Probe: c.stalledLocked})
	c.watch.Add(flight.Check{Name: "fleet-divergence", Probe: c.divergenceLocked})
	return c
}

// Watch exposes the fleet watchdogs (trip inspection, OnTrip hooks).
func (c *Collector) Watch() *flight.Watch {
	if c == nil {
		return nil
	}
	return c.watch
}

// ExpectPoints adds n to the planned point count (each experiment of a
// sweep announces its jobs as it starts). Drives fleet progress % and ETA.
func (c *Collector) ExpectPoints(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markStartedLocked()
	c.expected += n
}

// Register adds a worker to the registry. source is "local" for in-process
// sweep workers or the scrape base URL for remote ones. Registering an
// existing id is a no-op.
func (c *Collector) Register(id, source string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerLocked(id, source)
}

func (c *Collector) workerLocked(id, source string) *worker {
	w := c.workers[id]
	if w == nil {
		w = &worker{id: id, source: source, done: true}
		c.workers[id] = w
	}
	return w
}

func (c *Collector) markStartedLocked() {
	if c.startAt.IsZero() {
		c.startAt = c.opt.Clock()
	}
}

// PointStart records that a worker began an operating point.
func (c *Collector) PointStart(id, point, scheme string, seed uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markStartedLocked()
	w := c.workerLocked(id, "local")
	w.point, w.scheme, w.seed = point, scheme, seed
	w.now, w.total = 0, 0
	w.done = false
	w.idleIngests = 0
	w.startedAt = c.opt.Clock()
}

// PointProgress updates a worker's current-point progress. The return value
// asks the caller — who owns the worker's obs.Recorder and runs on that
// worker's goroutine — for a fresh metrics snapshot: it is true at most once
// per Options.RefreshEvery of wall time per worker.
func (c *Collector) PointProgress(id, point string, now, total timing.Tick) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(id, "local")
	if w.point != point {
		// Progress for a point we never saw start (scraped worker moved on).
		w.point = point
		w.startedAt = c.opt.Clock()
	}
	w.now, w.total = now, total
	w.done = false
	wall := c.opt.Clock()
	if wall.Sub(w.lastIngest) < c.opt.RefreshEvery {
		return false
	}
	w.lastIngest = wall
	return true
}

// PointDone records a completed point: its wall duration (for the straggler
// median and the ETA regression) and its FNV command hash (for the
// cross-worker divergence watchdog).
func (c *Collector) PointDone(id, point, scheme string, seed, cmdHash uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workerLocked(id, "local")
	wall := c.opt.Clock()
	var ms float64
	if !w.startedAt.IsZero() {
		ms = float64(wall.Sub(w.startedAt)) / float64(time.Millisecond)
	}
	w.done = true
	w.point, w.scheme, w.seed = point, scheme, seed
	w.now = w.total
	w.pointsDone++
	w.idleIngests = 0
	c.completed = append(c.completed, PointRecord{
		Worker: id, Point: point, Scheme: scheme, Seed: seed,
		CmdHash: fmt.Sprintf("%#016x", cmdHash), WallMS: ms,
	})
	c.markStartedLocked()
	c.completions = append(c.completions, completion{
		atSec: wall.Sub(c.startAt).Seconds(),
		count: float64(len(c.completed)),
	})

	key := fmt.Sprintf("%s|%d", point, seed)
	if seen, ok := c.hashes[key]; ok {
		if seen.hash != cmdHash && c.divergent == "" {
			c.divergent = fmt.Sprintf("point %s seed %d: worker %s hash %#016x != worker %s hash %#016x",
				point, seed, seen.worker, seen.hash, id, cmdHash)
		}
	} else {
		c.hashes[key] = hashSeen{hash: cmdHash, worker: id}
	}
}

// Ingest parses a worker's Prometheus exposition snapshot and replaces its
// stored families, feeding the trend store and the stalled-worker detector.
func (c *Collector) Ingest(id string, promText []byte) error {
	if c == nil {
		return nil
	}
	fams, err := Parse(promText)
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.workerLocked(id, "local").lastErr = err.Error()
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markStartedLocked()
	w := c.workerLocked(id, "local")
	w.families = fams
	w.famScheme, w.famPoint = w.scheme, w.point
	w.lastErr = ""
	w.lastIngest = c.opt.Clock()

	sig := movementSig(fams)
	if !w.done && sig == w.moveSig {
		w.idleIngests++
	} else {
		w.idleIngests = 0
	}
	w.moveSig = sig
	w.counterTotal = counterTotal(fams)

	c.store.Append("worker/"+id+"/progress", c.seq, w.progressPct())
	c.store.Append("worker/"+id+"/counter_total", c.seq, w.counterTotal)
	return nil
}

// movementSig fingerprints an exposition (FNV-1a over every family name,
// sample label set, and raw value): the liveness signal the stalled-worker
// watchdog compares across ingests. Two identical snapshots — a frozen
// worker re-serving the same /metrics, or a local point whose simulation
// stopped updating its instruments — hash equal; any sample changing
// anywhere counts as movement.
func movementSig(fams []Family) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64 // field separator
	}
	for _, f := range fams {
		mix(f.Name)
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				mix(l.Key)
				mix(l.Value)
			}
			mix(s.Raw)
		}
	}
	return h
}

// counterTotal sums every counter-family sample: the movement signal the
// stalled-worker watchdog compares across ingests.
func counterTotal(fams []Family) float64 {
	var total float64
	for _, f := range fams {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			total += s.Value
		}
	}
	return total
}

// workerStatus is the scraped /status.json shape (the obs.Inspector's),
// reduced to the fields the fleet tracks.
type workerStatus struct {
	Label      string  `json:"label"`
	Worker     string  `json:"worker"`
	Done       bool    `json:"done"`
	SimNowPS   int64   `json:"sim_now_ps"`
	SimTotalPS int64   `json:"sim_total_ps"`
	Percent    float64 `json:"percent"`
}

// IngestStatus folds a scraped /status.json payload into the worker's
// registry entry: current point label (scheme is its first path segment),
// progress, and done state.
func (c *Collector) IngestStatus(id string, statusJSON []byte) error {
	if c == nil {
		return nil
	}
	var st workerStatus
	if err := json.Unmarshal(statusJSON, &st); err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.workerLocked(id, "local").lastErr = err.Error()
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.markStartedLocked()
	w := c.workerLocked(id, "local")
	if w.point != st.Label {
		w.startedAt = c.opt.Clock()
	}
	w.point = st.Label
	w.scheme, _, _ = strings.Cut(st.Label, "/")
	w.now, w.total = timing.Tick(st.SimNowPS), timing.Tick(st.SimTotalPS)
	if st.Done && !w.done {
		w.pointsDone++
	}
	w.done = st.Done
	return nil
}

// SetError records a scrape failure against a worker (shown in
// /fleet/workers.json rather than silently dropping the target).
func (c *Collector) SetError(id string, err error) {
	if c == nil || err == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerLocked(id, "local").lastErr = err.Error()
}

// Tick advances the fleet: appends the roll-up trends and runs the
// watchdogs once. Call it at the scrape/refresh cadence; the first trip
// freezes (the watch records it and later Ticks return it unchanged).
func (c *Collector) Tick() *flight.Trip {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	c.store.Append("fleet/points_done", c.seq, float64(len(c.completed)))
	c.store.Append("fleet/progress", c.seq, c.progressPctLocked())
	return c.watch.Check(timing.Tick(c.seq))
}

// progressPctLocked is the fleet-wide progress estimate: completed points
// plus the fractional progress of every in-flight point, over the expected
// total (or over completed+in-flight when no total was announced).
func (c *Collector) progressPctLocked() float64 {
	doing := 0.0
	inflight := 0
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		if !w.done && w.point != "" {
			inflight++
			doing += w.progressPct() / 100
		}
	}
	total := float64(c.expected)
	if total <= 0 {
		total = float64(len(c.completed) + inflight)
	}
	if total <= 0 {
		return 0
	}
	pct := 100 * (float64(len(c.completed)) + doing) / total
	if pct > 100 {
		pct = 100
	}
	return pct
}

// etaSecondsLocked estimates seconds until the sweep completes, from a
// least-squares regression of cumulative completed points over wall time:
// the slope is the fleet's point throughput, and remaining/slope the ETA. 0
// means "no estimate" (unknown total, fewer than 2 completions, or no
// forward progress).
func (c *Collector) etaSecondsLocked() float64 {
	if c.expected <= 0 || len(c.completions) < 2 {
		return 0
	}
	remaining := float64(c.expected - len(c.completed))
	if remaining <= 0 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(c.completions))
	for _, p := range c.completions {
		sx += p.atSec
		sy += p.count
		sxx += p.atSec * p.atSec
		sxy += p.atSec * p.count
	}
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / den // points per second
	if slope <= 0 {
		return 0
	}
	return remaining / slope
}

// workerIDsLocked returns the registered worker ids, sorted.
func (c *Collector) workerIDsLocked() []string {
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(ids)
	return ids
}

// Watchdog probes. All run with c.mu held (Tick holds it across
// watch.Check); they read collector state directly and never lock.

// stragglerLocked trips when an in-flight point has been running longer
// than StragglerFactor times the median completed-point wall duration.
func (c *Collector) stragglerLocked(timing.Tick) (string, bool) {
	med := c.medianPointMSLocked()
	if med <= 0 || len(c.completed) < 3 {
		return "", false
	}
	limit := c.opt.StragglerFactor * med
	wall := c.opt.Clock()
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		if w.done || w.point == "" || w.startedAt.IsZero() {
			continue
		}
		ms := float64(wall.Sub(w.startedAt)) / float64(time.Millisecond)
		if ms > limit {
			return fmt.Sprintf("worker %s point %s running %.0f ms > %.1fx median %.0f ms over %d completed points",
				id, w.point, ms, c.opt.StragglerFactor, med, len(c.completed)), true
		}
	}
	return "", false
}

// stalledLocked trips when a worker's metric snapshot has not changed
// across StallIntervals consecutive ingests while a point was in flight.
func (c *Collector) stalledLocked(timing.Tick) (string, bool) {
	for _, id := range c.workerIDsLocked() {
		w := c.workers[id]
		if w.done || w.idleIngests < c.opt.StallIntervals {
			continue
		}
		return fmt.Sprintf("worker %s point %s: metrics frozen across %d scrape intervals",
			id, w.point, w.idleIngests), true
	}
	return "", false
}

// divergenceLocked trips once two workers reported different command hashes
// for the same point+seed.
func (c *Collector) divergenceLocked(timing.Tick) (string, bool) {
	return c.divergent, c.divergent != ""
}

// medianPointMSLocked is the median completed-point wall duration.
func (c *Collector) medianPointMSLocked() float64 {
	if len(c.completed) == 0 {
		return 0
	}
	ms := make([]float64, 0, len(c.completed))
	for _, r := range c.completed {
		ms = append(ms, r.WallMS)
	}
	sort.Float64s(ms)
	return ms[len(ms)/2]
}
