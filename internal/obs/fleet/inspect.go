package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"shadow/internal/obs"
)

// The fleet Inspector: the HTTP face of the Collector, behind shadowexp's
// -fleet-inspect flag.
//
//	/                    HTML dashboard (auto-refreshing): fleet progress,
//	                     ETA, per-worker progress bars, sparkline trends,
//	                     watchdog state, flips per scheme
//	/fleet.json          full fleet roll-up (FleetJSON)
//	/fleet/metrics       merged Prometheus exposition (WriteMetrics)
//	/fleet/workers.json  per-worker state with progress trends
//	/fleet/trends.json   every stored trend series
//	/healthz             liveness probe (200 "ok")
//
// Every endpoint sends Cache-Control: no-store, matching the obs.Inspector:
// payloads change every scrape interval and must never be served stale.

// Handler returns the fleet inspector's HTTP handler over the collector.
func (c *Collector) Handler() http.Handler {
	if c == nil {
		return http.NotFoundHandler()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		w.Write(c.MarshalFleet())
	})
	mux.HandleFunc("/fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		w.Header().Set("Cache-Control", "no-store")
		c.WriteMetrics(w)
	})
	mux.HandleFunc("/fleet/workers.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		workers := c.WorkersJSON()
		if workers == nil {
			workers = []WorkerJSON{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(workers)
	})
	mux.HandleFunc("/fleet/trends.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		trends := c.Trends()
		if trends == nil {
			trends = map[string][]TrendPoint{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(trends)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		writeDashboard(w, c.Fleet(), c.Trends())
	})
	return mux
}

// writeDashboard renders the HTML fleet dashboard from one consistent
// snapshot pair.
func writeDashboard(w http.ResponseWriter, fj FleetJSON, trends map[string][]TrendPoint) {
	fmt.Fprintf(w, `<!doctype html><html><head><meta http-equiv="refresh" content="2"><title>shadowfleet</title></head><body style="font-family:monospace;background:#111;color:#ddd">`)
	fmt.Fprintf(w, "<h2>shadowfleet dashboard</h2>")
	eta := "-"
	if fj.ETASeconds > 0 {
		eta = fmt.Sprintf("%.0fs", fj.ETASeconds)
	}
	fmt.Fprintf(w, "<p>%d workers — %d/%d points — %.1f%% — ETA %s</p>",
		fj.Workers, fj.PointsDone, fj.PointsExpected, fj.ProgressPercent, eta)
	fmt.Fprintf(w, "<div style=\"background:#333;width:480px;height:14px\"><div style=\"background:#4a9;height:14px;width:%.1f%%\"></div></div>", clampPct(fj.ProgressPercent))
	if fj.Watchdog != nil {
		fmt.Fprintf(w, `<p style="color:#f66"><b>WATCHDOG TRIPPED</b> %s: %s</p>`,
			htmlEscape(fj.Watchdog.Watchdog), htmlEscape(fj.Watchdog.Detail))
	}
	fmt.Fprintf(w, `<p><a href="/fleet.json" style="color:#8cf">fleet.json</a> · <a href="/fleet/metrics" style="color:#8cf">fleet/metrics</a> · <a href="/fleet/workers.json" style="color:#8cf">fleet/workers.json</a> · <a href="/fleet/trends.json" style="color:#8cf">fleet/trends.json</a> · <a href="/healthz" style="color:#8cf">healthz</a></p>`)

	fmt.Fprintf(w, "<h3>workers</h3><table cellpadding=\"4\">")
	fmt.Fprintf(w, "<tr><th align=\"left\">worker</th><th align=\"left\">point</th><th align=\"left\">progress</th><th align=\"left\">done</th><th align=\"left\">trend</th></tr>")
	for _, wk := range fj.WorkerList {
		state := htmlEscape(wk.Point)
		if wk.Error != "" {
			state = `<span style="color:#f66">` + htmlEscape(wk.Error) + `</span>`
		} else if wk.Done && wk.Point == "" {
			state = "(idle)"
		}
		fmt.Fprintf(w, `<tr><td>%s</td><td>%s</td><td><div style="background:#333;width:160px;height:10px"><div style="background:#4a9;height:10px;width:%.1f%%"></div></div></td><td>%d</td><td>%s</td></tr>`,
			htmlEscape(wk.ID), state, clampPct(wk.Percent), wk.PointsDone,
			sparkline(trends["worker/"+wk.ID+"/progress"], 0, 100))
	}
	fmt.Fprintf(w, "</table>")

	if len(fj.FlipsPerScheme) > 0 {
		fmt.Fprintf(w, "<h3>bit flips per scheme</h3><table cellpadding=\"4\">")
		for _, scheme := range sortedFlipSchemes(fj.FlipsPerScheme) {
			fmt.Fprintf(w, "<tr><td>%s</td><td align=\"right\">%d</td></tr>", htmlEscape(scheme), fj.FlipsPerScheme[scheme])
		}
		fmt.Fprintf(w, "</table>")
	}

	if pts := trends["fleet/progress"]; len(pts) > 1 {
		fmt.Fprintf(w, "<h3>fleet progress trend</h3>%s", sparkline(pts, 0, 100))
	}
	fmt.Fprintf(w, "</body></html>")
}

func clampPct(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// sparkline renders a trend as an inline SVG polyline. lo/hi fix the value
// axis when hi > lo; otherwise the trend autoscales to its own range.
func sparkline(pts []TrendPoint, lo, hi float64) string {
	if len(pts) < 2 {
		return ""
	}
	if hi <= lo {
		lo, hi = pts[0].V, pts[0].V
		for _, p := range pts {
			if p.V < lo {
				lo = p.V
			}
			if p.V > hi {
				hi = p.V
			}
		}
		if hi == lo {
			hi = lo + 1
		}
	}
	const width, height = 120, 24
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d"><polyline fill="none" stroke="#4a9" stroke-width="1.5" points="`,
		width, height, width, height)
	for i, p := range pts {
		x := float64(i) / float64(len(pts)-1) * (width - 2)
		y := (height - 2) - (p.V-lo)/(hi-lo)*(height-4)
		fmt.Fprintf(&b, "%.1f,%.1f ", x+1, y)
	}
	b.WriteString(`"/></svg>`)
	return b.String()
}

// htmlEscape covers the characters that matter inside the dashboard's text
// nodes (same contract as the obs.Inspector's).
func htmlEscape(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			b = append(b, "&lt;"...)
		case '>':
			b = append(b, "&gt;"...)
		case '&':
			b = append(b, "&amp;"...)
		case '"':
			b = append(b, "&quot;"...)
		default:
			b = append(b, s[i])
		}
	}
	return string(b)
}
