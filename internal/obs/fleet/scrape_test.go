package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTarget(t *testing.T) {
	tgt, err := ParseTarget("sim0=http://127.0.0.1:8081")
	if err != nil || tgt.ID != "sim0" || tgt.BaseURL != "http://127.0.0.1:8081" {
		t.Fatalf("tgt = %+v, err = %v", tgt, err)
	}
	// Bare URL derives the id from host:port; trailing slash is trimmed.
	tgt, err = ParseTarget("http://127.0.0.1:8082/")
	if err != nil || tgt.ID != "127.0.0.1:8082" || tgt.BaseURL != "http://127.0.0.1:8082" {
		t.Fatalf("tgt = %+v, err = %v", tgt, err)
	}
	if _, err := ParseTarget("127.0.0.1:8083"); err == nil {
		t.Fatal("schemeless target accepted")
	}
	if _, err := ParseTarget("sim0=ftp://x"); err == nil {
		t.Fatal("non-http scheme accepted")
	}
}

// fakeWorker serves the three obs.Inspector endpoints the Poller scrapes.
func fakeWorker(t *testing.T, promText []byte, status, blame string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write(promText)
	})
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, status)
	})
	mux.HandleFunc("/blame.json", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, blame)
	})
	return httptest.NewServer(mux)
}

func TestScrapeOnce(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	srv := fakeWorker(t, workerExposition(t, "shadow", 4),
		`{"label":"shadow/mix/h128","done":false,"sim_now_ps":250,"sim_total_ps":1000}`,
		`[{"label":"reader","requests":8,"reads":8,"conserved":true,"stall_ps":{}}]`)
	defer srv.Close()

	p := NewPoller(c, []Target{{ID: "sim0", BaseURL: srv.URL}}, srv.Client())
	p.ScrapeAll()

	ws := c.WorkersJSON()
	if len(ws) != 1 || ws[0].ID != "sim0" {
		t.Fatalf("workers = %+v", ws)
	}
	w := ws[0]
	if w.Error != "" {
		t.Fatalf("scrape error: %s", w.Error)
	}
	if w.Point != "shadow/mix/h128" || w.Scheme != "shadow" || w.Percent != 25 || w.Done {
		t.Fatalf("scraped state = %+v", w)
	}
	fj := c.Fleet()
	if fj.FlipsPerScheme["shadow"] != 4 {
		t.Fatalf("flips = %+v", fj.FlipsPerScheme)
	}
	if len(fj.Blame) != 1 || fj.Blame[0].Requests != 8 {
		t.Fatalf("blame = %+v", fj.Blame)
	}
}

func TestScrapeFailureRecordsError(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	p := NewPoller(c, []Target{{ID: "sim0", BaseURL: srv.URL}}, srv.Client())
	p.ScrapeAll()
	ws := c.WorkersJSON()
	if len(ws) != 1 || ws[0].Error == "" {
		t.Fatalf("scrape failure not recorded: %+v", ws)
	}
	if !strings.Contains(ws[0].Error, "500") {
		t.Fatalf("error %q does not carry the status", ws[0].Error)
	}
}

func TestPollerStartStop(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	srv := fakeWorker(t, workerExposition(t, "shadow", 1),
		`{"label":"shadow/mix/h64","done":true}`, `[]`)
	defer srv.Close()
	p := NewPoller(c, []Target{{ID: "sim0", BaseURL: srv.URL}}, srv.Client())
	p.Start(time.Millisecond)
	scraped := false
	for i := 0; i < 5000 && !scraped; i++ {
		if ws := c.WorkersJSON(); len(ws) == 1 && ws[0].Error == "" && ws[0].Point != "" {
			scraped = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !scraped {
		t.Fatalf("poller never scraped: %+v", c.WorkersJSON())
	}
	p.Stop() // must not hang; waits for the goroutine to exit
	var nilPoller *Poller
	nilPoller.Start(time.Millisecond)
	nilPoller.Stop()
	nilPoller.ScrapeAll()
}
