package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"shadow/internal/obs"
	"shadow/internal/obs/flight"
)

// The aggregator: merges every worker's parsed metric families into one
// fleet-level exposition and one fleet.json roll-up. All of it renders from
// a single consistent snapshot taken under the Collector's mutex, and every
// ordering is explicit (family name, then instrument name, then worker id),
// so two renders of the same state are byte-identical.

// flipsSuffix identifies bit-flip counters among ingested samples: the dram
// layer registers "dram/flips_total" and per-point probe tracks prepend
// "<scheme>/<workloads>/h<N>/" (and channel tracks "chN/"), so the scheme of
// a flips counter is the first path segment of its instrument name.
const flipsSuffix = "dram/flips_total"

// WorkerJSON is one entry of /fleet/workers.json.
type WorkerJSON struct {
	ID         string       `json:"id"`
	Source     string       `json:"source"`
	Point      string       `json:"point"`
	Scheme     string       `json:"scheme,omitempty"`
	Seed       uint64       `json:"seed"`
	Done       bool         `json:"done"`
	Percent    float64      `json:"percent"`
	PointsDone int          `json:"points_done"`
	Error      string       `json:"error,omitempty"`
	Trend      []TrendPoint `json:"trend,omitempty"`
}

// BlameRowJSON mirrors report.BlameRow's JSON shape (the fleet layer sits
// below report in the import DAG, so it re-declares the wire format rather
// than importing the renderer).
type BlameRowJSON struct {
	Label         string           `json:"label"`
	Requests      int64            `json:"requests"`
	Reads         int64            `json:"reads"`
	Writes        int64            `json:"writes"`
	RowHits       int64            `json:"row_hits"`
	ResidentPS    int64            `json:"resident_ps"`
	ResidentPerNS float64          `json:"resident_per_req_ns"`
	Conserved     bool             `json:"conserved"`
	StallPS       map[string]int64 `json:"stall_ps"`
}

// FleetJSON is the /fleet.json roll-up.
type FleetJSON struct {
	Workers         int              `json:"workers"`
	PointsExpected  int              `json:"points_expected"`
	PointsDone      int              `json:"points_done"`
	ProgressPercent float64          `json:"progress_percent"`
	ETASeconds      float64          `json:"eta_seconds"`
	Watchdog        *flight.Trip     `json:"watchdog,omitempty"`
	FlipsPerScheme  map[string]int64 `json:"flips_per_scheme"`
	Completed       []PointRecord    `json:"completed"`
	Blame           []BlameRowJSON   `json:"blame,omitempty"`
	WorkerList      []WorkerJSON     `json:"worker_list"`
}

// IngestBlame folds a worker's /blame.json payload (an array of
// report.BlameRow objects) into its registry entry for the fleet-wide
// aggregated blame table.
func (c *Collector) IngestBlame(id string, blameJSON []byte) error {
	if c == nil {
		return nil
	}
	var rows []BlameRowJSON
	if err := json.Unmarshal(blameJSON, &rows); err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.workerLocked(id, "local").lastErr = err.Error()
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerLocked(id, "local").blame = rows
	return nil
}

// Fleet builds the /fleet.json snapshot.
func (c *Collector) Fleet() FleetJSON {
	if c == nil {
		return FleetJSON{FlipsPerScheme: map[string]int64{}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fj := FleetJSON{
		Workers:         len(c.workers),
		PointsExpected:  c.expected,
		PointsDone:      len(c.completed),
		ProgressPercent: c.progressPctLocked(),
		ETASeconds:      c.etaSecondsLocked(),
		Watchdog:        c.watch.Tripped(),
		FlipsPerScheme:  c.flipsPerSchemeLocked(),
		Completed:       append([]PointRecord(nil), c.completed...),
		Blame:           c.blameLocked(),
	}
	for _, id := range c.workerIDsLocked() {
		fj.WorkerList = append(fj.WorkerList, c.workerJSONLocked(id, false))
	}
	return fj
}

// WorkersJSON builds the /fleet/workers.json payload: every registered
// worker, sorted by id, each with its recent progress trend for sparklines.
func (c *Collector) WorkersJSON() []WorkerJSON {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []WorkerJSON
	for _, id := range c.workerIDsLocked() {
		out = append(out, c.workerJSONLocked(id, true))
	}
	return out
}

func (c *Collector) workerJSONLocked(id string, withTrend bool) WorkerJSON {
	w := c.workers[id]
	wj := WorkerJSON{
		ID:         id,
		Source:     w.source,
		Point:      w.point,
		Scheme:     w.scheme,
		Seed:       w.seed,
		Done:       w.done,
		Percent:    w.progressPct(),
		PointsDone: w.pointsDone,
		Error:      w.lastErr,
	}
	if withTrend {
		wj.Trend = c.store.Trend("worker/" + id + "/progress")
	}
	return wj
}

// Trends returns the store's series for the dashboard, keyed by name,
// deterministically ordered when marshalled (maps encode with sorted keys).
func (c *Collector) Trends() map[string][]TrendPoint {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]TrendPoint, len(c.store.series))
	for _, name := range c.store.Names() {
		out[name] = c.store.Trend(name)
	}
	return out
}

// flipsPerSchemeLocked sums every flips counter across workers, keyed by
// the scheme (first path segment of the instrument name).
func (c *Collector) flipsPerSchemeLocked() map[string]int64 {
	flips := map[string]int64{}
	for _, id := range c.workerIDsLocked() {
		for _, f := range c.workers[id].families {
			if f.Type != "counter" {
				continue
			}
			for _, s := range f.Samples {
				name := s.Label("name")
				if !strings.HasSuffix(name, flipsSuffix) {
					continue
				}
				scheme, _, _ := strings.Cut(name, "/")
				if scheme == flipsSuffix || scheme == "dram" {
					scheme = "(untracked)"
				}
				flips[scheme] += int64(s.Value)
			}
		}
	}
	return flips
}

// blameLocked merges every worker's blame rows by label: counters and stall
// picoseconds sum, conservation ANDs, and the per-request residency is
// recomputed from the merged sums.
func (c *Collector) blameLocked() []BlameRowJSON {
	merged := map[string]*BlameRowJSON{}
	for _, id := range c.workerIDsLocked() {
		for _, row := range c.workers[id].blame {
			m := merged[row.Label]
			if m == nil {
				m = &BlameRowJSON{Label: row.Label, Conserved: true, StallPS: map[string]int64{}}
				merged[row.Label] = m
			}
			m.Requests += row.Requests
			m.Reads += row.Reads
			m.Writes += row.Writes
			m.RowHits += row.RowHits
			m.ResidentPS += row.ResidentPS
			m.Conserved = m.Conserved && row.Conserved
			for _, cause := range sortedStallCauses(row.StallPS) {
				m.StallPS[cause] += row.StallPS[cause]
			}
		}
	}
	labels := make([]string, 0, len(merged))
	for l := range merged {
		labels = append(labels, l) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(labels)
	out := make([]BlameRowJSON, 0, len(labels))
	for _, l := range labels {
		m := merged[l]
		if m.Requests > 0 {
			m.ResidentPerNS = float64(m.ResidentPS) / float64(m.Requests) / 1e3
		}
		out = append(out, *m)
	}
	return out
}

func sortedStallCauses(m map[string]int64) []string {
	causes := make([]string, 0, len(m))
	for cause := range m {
		causes = append(causes, cause) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(causes)
	return causes
}

// WriteMetrics renders the merged fleet exposition (/fleet/metrics):
//
//	shadow_fleet_* roll-up gauges (workers, points, progress, ETA)
//	shadow_fleet_flips_total{scheme=...}
//	shadow_counter/gauge/histogram_* — every worker's samples, re-exposed
//	    with worker/scheme/point labels appended
//	shadow_fleet_counter{name=...} — per-instrument sums across workers
//	shadow_fleet_histogram_* — per-instrument cumulative-bucket merges
//
// Per-worker sample values are re-emitted verbatim (Sample.Raw), so a
// single-worker fleet exposition embeds the worker's own /metrics document
// byte-for-byte modulo the added labels; the fleet sums account for 100% of
// the per-worker counters (sum over workers == fleet total — a regression
// test parses this output and asserts it).
func (c *Collector) WriteMetrics(w io.Writer) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	c.writeRollupsLocked(&buf)
	ids := c.workerIDsLocked()
	c.writePerWorkerLocked(&buf, ids)
	c.writeFleetSumsLocked(&buf, ids)
	_, err := w.Write(buf.Bytes())
	return err
}

func (c *Collector) writeRollupsLocked(buf *bytes.Buffer) {
	fmt.Fprintf(buf, "# HELP shadow_fleet_workers Registered fleet workers.\n")
	fmt.Fprintf(buf, "# TYPE shadow_fleet_workers gauge\nshadow_fleet_workers %d\n", len(c.workers))
	fmt.Fprintf(buf, "# TYPE shadow_fleet_points_expected gauge\nshadow_fleet_points_expected %d\n", c.expected)
	fmt.Fprintf(buf, "# TYPE shadow_fleet_points_done gauge\nshadow_fleet_points_done %d\n", len(c.completed))
	fmt.Fprintf(buf, "# TYPE shadow_fleet_progress_percent gauge\nshadow_fleet_progress_percent %s\n", formatValue(c.progressPctLocked()))
	fmt.Fprintf(buf, "# TYPE shadow_fleet_eta_seconds gauge\nshadow_fleet_eta_seconds %s\n", formatValue(c.etaSecondsLocked()))
	watchdog := 0
	if c.watch.Tripped() != nil {
		watchdog = 1
	}
	fmt.Fprintf(buf, "# TYPE shadow_fleet_watchdog_tripped gauge\nshadow_fleet_watchdog_tripped %d\n", watchdog)
	if flips := c.flipsPerSchemeLocked(); len(flips) > 0 {
		fmt.Fprintf(buf, "# HELP shadow_fleet_flips_total Bit flips summed across workers, keyed by scheme.\n")
		fmt.Fprintf(buf, "# TYPE shadow_fleet_flips_total counter\n")
		for _, scheme := range sortedFlipSchemes(flips) {
			fmt.Fprintf(buf, "shadow_fleet_flips_total{%s} %d\n", obs.PromLabel("scheme", scheme), flips[scheme])
		}
	}
}

func sortedFlipSchemes(m map[string]int64) []string {
	schemes := make([]string, 0, len(m))
	for s := range m {
		schemes = append(schemes, s) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(schemes)
	return schemes
}

// writePerWorkerLocked re-exposes every worker's samples grouped by family
// name (sorted), each sample tagged with worker/scheme/point labels.
func (c *Collector) writePerWorkerLocked(buf *bytes.Buffer, ids []string) {
	for _, fam := range c.familyNamesLocked(ids) {
		first := true
		for _, id := range ids {
			w := c.workers[id]
			for _, f := range w.families {
				if f.Name != fam {
					continue
				}
				if first {
					if f.Help != "" {
						fmt.Fprintf(buf, "# HELP %s %s\n", f.Name, f.Help)
					}
					if f.Type != "" && f.Type != "untyped" {
						fmt.Fprintf(buf, "# TYPE %s %s\n", f.Name, f.Type)
					}
					first = false
				}
				for _, s := range f.Samples {
					buf.WriteString(renderSample(withWorkerLabels(s, w)))
				}
			}
		}
	}
}

// familyNamesLocked is the sorted union of family names across workers.
func (c *Collector) familyNamesLocked(ids []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, id := range ids {
		for _, f := range c.workers[id].families {
			if !seen[f.Name] {
				seen[f.Name] = true
				names = append(names, f.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// withWorkerLabels appends the fleet identity labels to a sample's own.
func withWorkerLabels(s Sample, w *worker) Sample {
	labels := make([]Label, 0, len(s.Labels)+3)
	labels = append(labels, s.Labels...)
	labels = append(labels, Label{Key: "worker", Value: w.id})
	if w.famScheme != "" {
		labels = append(labels, Label{Key: "scheme", Value: w.famScheme})
	}
	if w.famPoint != "" {
		labels = append(labels, Label{Key: "point", Value: w.famPoint})
	}
	s.Labels = labels
	return s
}

// renderSample renders one sample line to a string.
func renderSample(s Sample) string {
	var b strings.Builder
	writeSample(&b, s)
	return b.String()
}

// writeFleetSumsLocked renders the fleet-total families.
func (c *Collector) writeFleetSumsLocked(buf *bytes.Buffer, ids []string) {
	c.writeSumFamilyLocked(buf, ids, "shadow_counter", "shadow_fleet_counter", "counter",
		"Per-instrument counter totals summed across workers.")
	c.writeSumFamilyLocked(buf, ids, "shadow_gauge", "shadow_fleet_gauge", "gauge",
		"Per-instrument gauge sums across workers.")
	c.writeFleetHistogramsLocked(buf, ids)
}

// writeSumFamilyLocked sums one name-labelled family across workers.
func (c *Collector) writeSumFamilyLocked(buf *bytes.Buffer, ids []string, src, dst, typ, help string) {
	sums := map[string]float64{}
	var names []string
	for _, id := range ids {
		for _, f := range c.workers[id].families {
			if f.Name != src {
				continue
			}
			for _, s := range f.Samples {
				name := s.Label("name")
				if _, ok := sums[name]; !ok {
					names = append(names, name)
				}
				sums[name] += s.Value
			}
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintf(buf, "# HELP %s %s\n# TYPE %s %s\n", dst, help, dst, typ)
	for _, name := range names {
		fmt.Fprintf(buf, "%s{%s} %s\n", dst, obs.PromLabel("name", name), formatValue(sums[name]))
	}
}

// histAgg accumulates one instrument's histogram across workers.
type histAgg struct {
	// edges maps le label -> numeric edge; buckets maps worker -> le -> its
	// cumulative count at that edge.
	edges   map[string]float64
	buckets map[string]map[string]float64
	sum     float64
	count   float64
}

// writeFleetHistogramsLocked merges shadow_histogram families across workers
// by cumulative step-function addition: for every union bucket edge e, each
// worker contributes its cumulative count at its largest edge <= e, so the
// merged series is monotone and its +Inf bucket equals the summed _count
// even when workers expose different edge sets.
func (c *Collector) writeFleetHistogramsLocked(buf *bytes.Buffer, ids []string) {
	aggs := map[string]*histAgg{}
	var names []string
	agg := func(name string) *histAgg {
		a := aggs[name]
		if a == nil {
			a = &histAgg{edges: map[string]float64{}, buckets: map[string]map[string]float64{}}
			aggs[name] = a
			names = append(names, name)
		}
		return a
	}
	for _, id := range ids {
		for _, f := range c.workers[id].families {
			if f.Name != "shadow_histogram" {
				continue
			}
			for _, s := range f.Samples {
				name := s.Label("name")
				switch s.Name {
				case "shadow_histogram_sum":
					agg(name).sum += s.Value
				case "shadow_histogram_count":
					agg(name).count += s.Value
				case "shadow_histogram_bucket":
					a := agg(name)
					le := s.Label("le")
					edge, err := parseValue(le)
					if err != nil {
						continue
					}
					a.edges[le] = edge
					if a.buckets[id] == nil {
						a.buckets[id] = map[string]float64{}
					}
					a.buckets[id][le] = s.Value
				}
			}
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Fprintf(buf, "# HELP shadow_fleet_histogram Per-instrument distributions merged across workers; le is the inclusive bucket upper edge.\n")
	fmt.Fprintf(buf, "# TYPE shadow_fleet_histogram histogram\n")
	for _, name := range names {
		writeFleetHistogram(buf, name, aggs[name], ids)
	}
}

func writeFleetHistogram(buf *bytes.Buffer, name string, a *histAgg, ids []string) {
	type edge struct {
		le string
		v  float64
	}
	edges := make([]edge, 0, len(a.edges))
	for le, v := range a.edges {
		edges = append(edges, edge{le: le, v: v}) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].v < edges[j].v })
	label := obs.PromLabel("name", name)
	for _, e := range edges {
		if math.IsInf(e.v, 1) {
			continue // +Inf re-derived from the merged count below
		}
		var total float64
		for _, id := range ids {
			total += cumulativeAt(a.buckets[id], e.v)
		}
		fmt.Fprintf(buf, "shadow_fleet_histogram_bucket{%s,%s} %s\n", label, obs.PromLabel("le", e.le), formatValue(total))
	}
	fmt.Fprintf(buf, "shadow_fleet_histogram_bucket{%s,le=\"+Inf\"} %s\n", label, formatValue(a.count))
	fmt.Fprintf(buf, "shadow_fleet_histogram_sum{%s} %s\n", label, formatValue(a.sum))
	fmt.Fprintf(buf, "shadow_fleet_histogram_count{%s} %s\n", label, formatValue(a.count))
}

// cumulativeAt returns a worker's cumulative count at its largest finite
// edge <= e (its +Inf bucket only answers for e == +Inf, handled above).
func cumulativeAt(buckets map[string]float64, e float64) float64 {
	var best float64
	bestEdge := math.Inf(-1)
	for _, le := range sortedBucketEdges(buckets) {
		edge, err := parseValue(le)
		if err != nil || math.IsInf(edge, 1) {
			continue
		}
		if edge <= e && edge > bestEdge {
			bestEdge = edge
			best = buckets[le]
		}
	}
	return best
}

func sortedBucketEdges(buckets map[string]float64) []string {
	les := make([]string, 0, len(buckets))
	for le := range buckets {
		les = append(les, le) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(les)
	return les
}

// MarshalFleet renders /fleet.json deterministically.
func (c *Collector) MarshalFleet() []byte {
	if c == nil {
		return []byte("{}\n")
	}
	fj := c.Fleet()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fj); err != nil {
		return []byte("{}\n")
	}
	return buf.Bytes()
}
