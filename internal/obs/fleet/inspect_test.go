package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestFleetHandlerEndpoints(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.ExpectPoints(4)
	completePoint(c, clk, "w0", "shadow/mix/h64", 7, 0xabc, 50*time.Millisecond)
	c.PointStart("w1", "baseline/mix/h64", "baseline", 7)
	if err := c.Ingest("w1", workerExposition(t, "baseline", 2)); err != nil {
		t.Fatal(err)
	}
	c.Tick()

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/fleet.json")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("fleet.json: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatal("fleet.json served without no-store")
	}
	var fj FleetJSON
	if err := json.Unmarshal(body, &fj); err != nil {
		t.Fatalf("fleet.json does not decode: %v\n%s", err, body)
	}
	if fj.Workers != 2 || fj.PointsDone != 1 || fj.PointsExpected != 4 {
		t.Fatalf("fleet.json = %+v", fj)
	}
	if len(fj.Completed) != 1 || fj.Completed[0].CmdHash != "0x0000000000000abc" {
		t.Fatalf("completed = %+v", fj.Completed)
	}

	resp, body = get(t, srv, "/fleet/metrics")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("fleet/metrics: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if _, err := Parse(body); err != nil {
		t.Fatalf("fleet/metrics does not re-parse: %v", err)
	}
	if !strings.Contains(string(body), "shadow_fleet_workers 2") {
		t.Fatalf("fleet/metrics missing roll-ups:\n%s", body)
	}

	resp, body = get(t, srv, "/fleet/workers.json")
	var workers []WorkerJSON
	if err := json.Unmarshal(body, &workers); err != nil {
		t.Fatalf("workers.json: %v", err)
	}
	if len(workers) != 2 || workers[0].ID != "w0" || workers[1].ID != "w1" {
		t.Fatalf("workers.json = %+v", workers)
	}

	resp, body = get(t, srv, "/fleet/trends.json")
	var trends map[string][]TrendPoint
	if err := json.Unmarshal(body, &trends); err != nil {
		t.Fatalf("trends.json: %v", err)
	}

	resp, body = get(t, srv, "/healthz")
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, srv, "/")
	if resp.StatusCode != 200 || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	html := string(body)
	for _, want := range []string{"shadowfleet dashboard", "w0", "w1", "baseline/mix/h64"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	resp, _ = get(t, srv, "/nope")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path: %d, want 404", resp.StatusCode)
	}
}

func TestFleetHandlerEmptyCollector(t *testing.T) {
	clk := newFakeClock()
	srv := httptest.NewServer(newTestCollector(clk).Handler())
	defer srv.Close()
	_, body := get(t, srv, "/fleet/workers.json")
	if strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty workers.json = %q, want []", body)
	}
	resp, _ := get(t, srv, "/fleet.json")
	if resp.StatusCode != 200 {
		t.Fatalf("empty fleet.json: %d", resp.StatusCode)
	}
}

func TestNilCollectorHandler(t *testing.T) {
	var c *Collector
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, _ := get(t, srv, "/fleet.json")
	if resp.StatusCode != 404 {
		t.Fatalf("nil handler: %d, want 404", resp.StatusCode)
	}
}

func TestDashboardEscapesHostileLabels(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.PointStart("w0", `<script>alert("x")</script>`, "s", 1)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	_, body := get(t, srv, "/")
	if strings.Contains(string(body), "<script>alert") {
		t.Fatal("dashboard does not escape point labels")
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil, 0, 100) != "" || sparkline([]TrendPoint{{At: 0, V: 1}}, 0, 100) != "" {
		t.Fatal("sparkline of <2 points should be empty")
	}
	svg := sparkline([]TrendPoint{{At: 0, V: 0}, {At: 1, V: 50}, {At: 2, V: 100}}, 0, 100)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "polyline") {
		t.Fatalf("sparkline = %q", svg)
	}
	// Autoscale path: hi <= lo triggers min/max fitting, constant series
	// avoids division by zero.
	if s := sparkline([]TrendPoint{{At: 0, V: 7}, {At: 1, V: 7}}, 0, 0); !strings.HasPrefix(s, "<svg") {
		t.Fatalf("autoscaled constant sparkline = %q", s)
	}
}
