package fleet

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The scrape path: remote shadowsim processes started with -inspect (and a
// -worker-id) already serve /metrics, /status.json, and /blame.json; the
// Poller fetches them on a fixed interval and feeds the same Collector
// entry points the in-process hooks use — one merge path for both sources.

// Target is one remote worker to scrape.
type Target struct {
	// ID is the fleet worker id ("" derives it from the URL host:port).
	ID string
	// BaseURL is the worker inspector's root, e.g. "http://127.0.0.1:8081".
	BaseURL string
}

// ParseTarget parses a -fleet-scrape flag value: "id=url" or a bare URL.
func ParseTarget(s string) (Target, error) {
	id, url, found := strings.Cut(s, "=")
	if !found {
		url = s
		id = ""
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		return Target{}, fmt.Errorf("fleet: scrape target %q: URL must start with http:// or https://", s)
	}
	if id == "" {
		id = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
	}
	return Target{ID: id, BaseURL: url}, nil
}

// Poller periodically scrapes a set of remote workers into a Collector.
type Poller struct {
	c       *Collector
	client  *http.Client
	targets []Target
	ticker  *time.Ticker
	stop    chan struct{}
	done    chan struct{}
}

// NewPoller builds a poller over the collector. client may be nil (a 5 s
// timeout default is used); targets are registered immediately so the
// dashboard lists them before the first scrape lands.
func NewPoller(c *Collector, targets []Target, client *http.Client) *Poller {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	for _, t := range targets {
		c.Register(t.ID, t.BaseURL)
	}
	return &Poller{c: c, client: client, targets: targets, stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the scrape loop at the given interval. The goroutine exits
// when Stop is called; each round scrapes every target then ticks the
// collector (trends + watchdogs).
func (p *Poller) Start(interval time.Duration) {
	if p == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	p.ticker = time.NewTicker(interval)
	go func() {
		defer close(p.done)
		for {
			select { //shadowvet:ignore detflow -- shutdown ordering of a wall-clock scrape loop; simulation results never flow through the poller
			case <-p.stop:
				return
			case <-p.ticker.C:
				p.ScrapeAll()
				p.c.Tick()
			}
		}
	}()
}

// Stop halts the scrape loop and waits for the goroutine to exit.
func (p *Poller) Stop() {
	if p == nil {
		return
	}
	if p.ticker != nil {
		p.ticker.Stop()
	}
	close(p.stop)
	<-p.done
}

// ScrapeAll scrapes every target once (also usable without Start for
// poll-on-demand tests).
func (p *Poller) ScrapeAll() {
	if p == nil {
		return
	}
	for _, t := range p.targets {
		p.ScrapeOnce(t)
	}
}

// ScrapeOnce fetches one worker's /metrics, /status.json, and /blame.json
// and folds them into the collector. A failed endpoint is recorded against
// the worker (shown on the dashboard) without aborting the others.
func (p *Poller) ScrapeOnce(t Target) {
	if p == nil {
		return
	}
	if body, err := p.get(t.BaseURL + "/metrics"); err != nil {
		p.c.SetError(t.ID, err)
	} else if err := p.c.Ingest(t.ID, body); err != nil {
		p.c.SetError(t.ID, err)
	}
	if body, err := p.get(t.BaseURL + "/status.json"); err != nil {
		p.c.SetError(t.ID, err)
	} else if err := p.c.IngestStatus(t.ID, body); err != nil {
		p.c.SetError(t.ID, err)
	}
	// Blame is optional: shadowsim runs without -blame serve an empty array,
	// and older workers may not expose the endpoint at all.
	if body, err := p.get(t.BaseURL + "/blame.json"); err == nil {
		p.c.IngestBlame(t.ID, body)
	}
}

func (p *Poller) get(url string) ([]byte, error) {
	resp, err := p.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
