package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"shadow/internal/obs"
	"shadow/internal/timing"
)

// fakeClock is the injected wall clock: tests advance it explicitly, so the
// straggler and throttle behavior is exact instead of sleep-based.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestCollector(clk *fakeClock) *Collector {
	return NewCollector(Options{Clock: clk.now})
}

// workerExposition renders one synthetic worker's registry: a point-labelled
// flips counter, request counters, a gauge, and a latency histogram whose
// observations differ per worker so bucket edge sets differ too.
func workerExposition(t *testing.T, scheme string, base int64) []byte {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{Metrics: true})
	p := rec.NewTrack(scheme + "/mix-high/h256")
	p.Counter("dram/flips_total").Add(base)
	p.Counter("memctrl/reads_total").Add(base * 100)
	p.Gauge("memctrl/queue_depth").Set(base)
	h := p.Histogram("memctrl/read_latency_ps")
	for i := int64(0); i < 20; i++ {
		h.Observe(base * (i + 1))
	}
	var buf bytes.Buffer
	if err := rec.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// samplesBy indexes a parsed exposition: family name -> samples.
func samplesBy(fams []Family) map[string][]Sample {
	out := map[string][]Sample{}
	for _, f := range fams {
		out[f.Name] = append(out[f.Name], f.Samples...)
	}
	return out
}

// TestFleetSumInvariant is the acceptance-criteria assertion: the merged
// exposition accounts for 100% of the per-worker counters — for every
// instrument, shadow_fleet_counter equals the sum of shadow_counter over
// workers, and likewise for gauges and histogram counts.
func TestFleetSumInvariant(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	schemes := []string{"shadow", "baseline", "prac"}
	for i, scheme := range schemes {
		id := fmt.Sprintf("w%d", i)
		c.PointStart(id, scheme+"/mix-high/h256", scheme, 42)
		if err := c.Ingest(id, workerExposition(t, scheme, int64(i+1)*3)); err != nil {
			t.Fatal(err)
		}
	}
	var merged bytes.Buffer
	if err := c.WriteMetrics(&merged); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(merged.Bytes())
	if err != nil {
		t.Fatalf("merged exposition does not re-parse: %v\n%s", err, merged.String())
	}
	by := samplesBy(fams)

	for _, fam := range []string{"shadow_counter", "shadow_gauge"} {
		perWorker := map[string]float64{}
		for _, s := range by[fam] {
			if s.Label("worker") == "" {
				t.Fatalf("%s sample without worker label: %+v", fam, s)
			}
			perWorker[s.Label("name")] += s.Value
		}
		if len(perWorker) == 0 {
			t.Fatalf("no %s samples in merged exposition", fam)
		}
		fleet := map[string]float64{}
		for _, s := range by["shadow_fleet_"+strings.TrimPrefix(fam, "shadow_")] {
			fleet[s.Label("name")] = s.Value
		}
		for name, sum := range perWorker {
			if got, ok := fleet[name]; !ok || got != sum {
				t.Errorf("%s: fleet total for %q = %v, worker sum = %v", fam, name, got, sum)
			}
		}
		if len(fleet) != len(perWorker) {
			t.Errorf("%s: fleet totals cover %d instruments, workers expose %d", fam, len(fleet), len(perWorker))
		}
	}

	// Histogram: merged count equals summed per-worker counts, buckets are
	// monotone along le, and +Inf equals _count.
	perWorkerCount := map[string]float64{}
	for _, s := range by["shadow_histogram"] {
		if s.Name == "shadow_histogram_count" {
			perWorkerCount[s.Label("name")] += s.Value
		}
	}
	fleetBuckets := map[string][]Sample{}
	fleetCount := map[string]float64{}
	for _, s := range by["shadow_fleet_histogram"] {
		switch s.Name {
		case "shadow_fleet_histogram_bucket":
			name := s.Label("name")
			fleetBuckets[name] = append(fleetBuckets[name], s)
		case "shadow_fleet_histogram_count":
			fleetCount[s.Label("name")] = s.Value
		}
	}
	if len(fleetCount) == 0 {
		t.Fatal("no merged histograms")
	}
	for name, want := range perWorkerCount {
		if fleetCount[name] != want {
			t.Errorf("histogram %q: fleet count %v != summed worker counts %v", name, fleetCount[name], want)
		}
		buckets := fleetBuckets[name]
		prev := -1.0
		for _, s := range buckets {
			if s.Value < prev {
				t.Errorf("histogram %q: merged bucket le=%s decreases (%v < %v)", name, s.Label("le"), s.Value, prev)
			}
			prev = s.Value
		}
		last := buckets[len(buckets)-1]
		if last.Label("le") != "+Inf" || last.Value != want {
			t.Errorf("histogram %q: +Inf bucket = %+v, want value %v", name, last, want)
		}
	}

	// Flips roll up per scheme (first path segment of the instrument name).
	fj := c.Fleet()
	for i, scheme := range schemes {
		if got, want := fj.FlipsPerScheme[scheme], int64(i+1)*3; got != want {
			t.Errorf("FlipsPerScheme[%q] = %d, want %d", scheme, got, want)
		}
	}
}

// TestFleetMetricsDeterministic: two renders of the same collector state are
// byte-identical — every fold is sorted, nothing depends on map order.
func TestFleetMetricsDeterministic(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("w%d", i)
		c.PointStart(id, fmt.Sprintf("s%d/mix/h64", i), fmt.Sprintf("s%d", i), uint64(i))
		if err := c.Ingest(id, workerExposition(t, fmt.Sprintf("s%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	var a, b bytes.Buffer
	if err := c.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteMetrics renders of the same state differ")
	}
	if !bytes.Equal(c.MarshalFleet(), c.MarshalFleet()) {
		t.Fatal("two MarshalFleet renders of the same state differ")
	}
}

func completePoint(c *Collector, clk *fakeClock, id, point string, seed, hash uint64, d time.Duration) {
	c.PointStart(id, point, "shadow", seed)
	clk.advance(d)
	c.PointDone(id, point, "shadow", seed, hash)
}

func TestStragglerWatchdog(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.ExpectPoints(5)
	for i := 0; i < 3; i++ {
		completePoint(c, clk, "w0", fmt.Sprintf("p%d", i), uint64(i), uint64(100+i), 100*time.Millisecond)
	}
	if tr := c.Tick(); tr != nil {
		t.Fatalf("tripped early: %+v", tr)
	}
	// In-flight point runs past 4x the 100 ms median.
	c.PointStart("w1", "p-slow", "shadow", 9)
	clk.advance(450 * time.Millisecond)
	tr := c.Tick()
	if tr == nil || tr.Watchdog != "fleet-straggler" {
		t.Fatalf("trip = %+v, want fleet-straggler", tr)
	}
	if !strings.Contains(tr.Detail, "w1") || !strings.Contains(tr.Detail, "p-slow") {
		t.Fatalf("trip detail %q does not name the straggler", tr.Detail)
	}
	// The trip freezes and marshals deterministically.
	if tr2 := c.Tick(); tr2 != tr {
		t.Fatal("trip did not freeze")
	}
	dump, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"watchdog":"fleet-straggler"`, `"detail"`, `"at_ps"`} {
		if !strings.Contains(string(dump), want) {
			t.Fatalf("trip JSON %s missing %s", dump, want)
		}
	}
}

func TestStalledWorkerWatchdog(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.PointStart("w0", "p0", "shadow", 1)
	text := workerExposition(t, "shadow", 5)
	if err := c.Ingest("w0", text); err != nil {
		t.Fatal(err)
	}
	// Five more ingests with identical counters: no movement while in flight.
	for i := 0; i < 5; i++ {
		clk.advance(time.Second)
		if err := c.Ingest("w0", text); err != nil {
			t.Fatal(err)
		}
	}
	tr := c.Tick()
	if tr == nil || tr.Watchdog != "fleet-stalled-worker" {
		t.Fatalf("trip = %+v, want fleet-stalled-worker", tr)
	}
	if !strings.Contains(tr.Detail, "w0") {
		t.Fatalf("trip detail %q does not name the worker", tr.Detail)
	}
}

func TestStalledWorkerResetsOnMovement(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.PointStart("w0", "p0", "shadow", 1)
	for i := 0; i < 12; i++ {
		clk.advance(time.Second)
		// Counters move on every ingest: never stalls.
		if err := c.Ingest("w0", workerExposition(t, "shadow", int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if tr := c.Tick(); tr != nil {
		t.Fatalf("tripped on a moving worker: %+v", tr)
	}
}

// TestStalledWorkerIgnoresFlatCounters pins the movement signal to the whole
// exposition, not counters alone. A healthy short run may never increment a
// counter (dram/flips_total is the simulator's only one, and benign
// workloads don't flip bits), while its gauges and histograms move on every
// snapshot — that must never read as a stall. Caught live on a fig9 sweep.
func TestStalledWorkerIgnoresFlatCounters(t *testing.T) {
	exposition := func(t *testing.T, gauge int64) []byte {
		t.Helper()
		rec := obs.NewRecorder(obs.Options{Metrics: true})
		p := rec.NewTrack("shadow/mix-high/h256")
		p.Counter("dram/flips_total").Add(0) // flat forever
		p.Gauge("memctrl/queue_depth").Set(gauge)
		var buf bytes.Buffer
		if err := rec.Metrics().WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.PointStart("w0", "p0", "shadow", 1)
	for i := 0; i < 12; i++ {
		clk.advance(time.Second)
		if err := c.Ingest("w0", exposition(t, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if tr := c.Tick(); tr != nil {
		t.Fatalf("tripped with flat counters but moving gauges: %+v", tr)
	}
	// Freeze the gauge too: now the snapshot is truly static and the
	// watchdog must trip.
	for i := 0; i < 6; i++ {
		clk.advance(time.Second)
		if err := c.Ingest("w0", exposition(t, 99)); err != nil {
			t.Fatal(err)
		}
	}
	if tr := c.Tick(); tr == nil || tr.Watchdog != "fleet-stalled-worker" {
		t.Fatalf("trip = %+v, want fleet-stalled-worker once fully frozen", tr)
	}
}

func TestDivergenceWatchdog(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	completePoint(c, clk, "w0", "p0", 42, 0xdead, 10*time.Millisecond)
	if tr := c.Tick(); tr != nil {
		t.Fatalf("tripped early: %+v", tr)
	}
	// Same point+seed, different command hash from another worker.
	completePoint(c, clk, "w1", "p0", 42, 0xbeef, 10*time.Millisecond)
	tr := c.Tick()
	if tr == nil || tr.Watchdog != "fleet-divergence" {
		t.Fatalf("trip = %+v, want fleet-divergence", tr)
	}
	for _, want := range []string{"w0", "w1", "p0", "42"} {
		if !strings.Contains(tr.Detail, want) {
			t.Fatalf("trip detail %q missing %q", tr.Detail, want)
		}
	}
}

func TestDivergenceSameHashNoTrip(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	completePoint(c, clk, "w0", "p0", 42, 0xfeed, 10*time.Millisecond)
	completePoint(c, clk, "w1", "p0", 42, 0xfeed, 10*time.Millisecond)
	// Different seed may hash differently without being divergence.
	completePoint(c, clk, "w1", "p0", 43, 0xdead, 10*time.Millisecond)
	if tr := c.Tick(); tr != nil {
		t.Fatalf("agreeing workers tripped: %+v", tr)
	}
}

func TestProgressAndETA(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.ExpectPoints(10)
	fj := c.Fleet()
	if fj.ProgressPercent != 0 || fj.ETASeconds != 0 {
		t.Fatalf("fresh fleet: %+v", fj)
	}
	// One point per second, steadily.
	for i := 0; i < 4; i++ {
		completePoint(c, clk, "w0", fmt.Sprintf("p%d", i), uint64(i), uint64(i), time.Second)
	}
	fj = c.Fleet()
	if fj.PointsDone != 4 || fj.PointsExpected != 10 {
		t.Fatalf("fleet = %+v", fj)
	}
	if math.Abs(fj.ProgressPercent-40) > 1e-9 {
		t.Fatalf("progress = %v, want 40", fj.ProgressPercent)
	}
	// Throughput is 1 point/s, 6 remain: ETA ~6 s.
	if math.Abs(fj.ETASeconds-6) > 0.5 {
		t.Fatalf("ETA = %v, want ~6", fj.ETASeconds)
	}
	// An in-flight point at 50% adds half a point of fractional progress.
	c.PointStart("w1", "p4", "shadow", 4)
	c.PointProgress("w1", "p4", 50, 100)
	fj = c.Fleet()
	if math.Abs(fj.ProgressPercent-45) > 1e-9 {
		t.Fatalf("progress with in-flight = %v, want 45", fj.ProgressPercent)
	}
}

func TestPointProgressThrottle(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.PointStart("w0", "p0", "shadow", 1)
	if !c.PointProgress("w0", "p0", 1, 100) {
		t.Fatal("first progress should request a snapshot")
	}
	if c.PointProgress("w0", "p0", 2, 100) {
		t.Fatal("immediate second progress should be throttled")
	}
	clk.advance(time.Second)
	if !c.PointProgress("w0", "p0", 3, 100) {
		t.Fatal("progress after RefreshEvery should request a snapshot")
	}
}

func TestIngestStatusAndBlame(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.Register("remote0", "http://localhost:9999")
	status := `{"label":"shadow/mix-high/h256","done":false,"sim_now_ps":500,"sim_total_ps":1000,"percent":50}`
	if err := c.IngestStatus("remote0", []byte(status)); err != nil {
		t.Fatal(err)
	}
	ws := c.WorkersJSON()
	if len(ws) != 1 || ws[0].ID != "remote0" || ws[0].Scheme != "shadow" || ws[0].Percent != 50 {
		t.Fatalf("workers = %+v", ws)
	}
	if ws[0].Source != "http://localhost:9999" {
		t.Fatalf("source = %q", ws[0].Source)
	}

	blame := `[{"label":"reader","requests":10,"reads":10,"writes":0,"row_hits":5,"resident_ps":20000,"resident_per_req_ns":2,"conserved":true,"stall_ps":{"bank_busy":100}},
	           {"label":"writer","requests":4,"reads":0,"writes":4,"row_hits":1,"resident_ps":8000,"resident_per_req_ns":2,"conserved":true,"stall_ps":{}}]`
	if err := c.IngestBlame("remote0", []byte(blame)); err != nil {
		t.Fatal(err)
	}
	c.Register("remote1", "http://localhost:9998")
	if err := c.IngestBlame("remote1", []byte(blame)); err != nil {
		t.Fatal(err)
	}
	rows := c.Fleet().Blame
	if len(rows) != 2 {
		t.Fatalf("blame rows = %+v", rows)
	}
	// Sorted by label, sums doubled, residency recomputed from merged sums.
	if rows[0].Label != "reader" || rows[0].Requests != 20 || rows[0].StallPS["bank_busy"] != 200 {
		t.Fatalf("merged reader row = %+v", rows[0])
	}
	if math.Abs(rows[0].ResidentPerNS-2) > 1e-9 {
		t.Fatalf("merged residency = %v, want 2", rows[0].ResidentPerNS)
	}
	if rows[1].Label != "writer" || rows[1].Writes != 8 {
		t.Fatalf("merged writer row = %+v", rows[1])
	}
}

func TestIngestBadPayloadsRecordError(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	if err := c.Ingest("w0", []byte("{} not prom\n")); err == nil {
		t.Fatal("bad exposition accepted")
	}
	if err := c.IngestStatus("w0", []byte("not json")); err == nil {
		t.Fatal("bad status accepted")
	}
	ws := c.WorkersJSON()
	if len(ws) != 1 || ws[0].Error == "" {
		t.Fatalf("scrape error not recorded: %+v", ws)
	}
	// A clean ingest clears the error.
	if err := c.Ingest("w0", workerExposition(t, "shadow", 1)); err != nil {
		t.Fatal(err)
	}
	if ws := c.WorkersJSON(); ws[0].Error != "" {
		t.Fatalf("error not cleared: %+v", ws)
	}
}

func TestTrendsFeedFromIngest(t *testing.T) {
	clk := newFakeClock()
	c := newTestCollector(clk)
	c.ExpectPoints(2)
	c.PointStart("w0", "p0", "shadow", 1)
	for i := 0; i < 3; i++ {
		clk.advance(time.Second)
		c.PointProgress("w0", "p0", timing.Tick(i*30), timing.Tick(100))
		if err := c.Ingest("w0", workerExposition(t, "shadow", int64(i+1))); err != nil {
			t.Fatal(err)
		}
		c.Tick()
	}
	tr := c.Trends()
	for _, name := range []string{"worker/w0/progress", "worker/w0/counter_total", "fleet/progress", "fleet/points_done"} {
		if len(tr[name]) == 0 {
			t.Errorf("trend %q empty; have %v", name, c.store.Names())
		}
	}
}

func TestNilCollectorInert(t *testing.T) {
	var c *Collector
	c.Register("w0", "local")
	c.ExpectPoints(5)
	c.PointStart("w0", "p", "s", 1)
	if c.PointProgress("w0", "p", 1, 2) {
		t.Fatal("nil collector requested a snapshot")
	}
	c.PointDone("w0", "p", "s", 1, 2)
	if err := c.Ingest("w0", []byte("x 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestStatus("w0", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBlame("w0", []byte("[]")); err != nil {
		t.Fatal(err)
	}
	c.SetError("w0", nil)
	if c.Tick() != nil || c.Watch() != nil || c.WorkersJSON() != nil || c.Trends() != nil {
		t.Fatal("nil collector produced state")
	}
	if err := c.WriteMetrics(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.MarshalFleet(), []byte("{}\n")) {
		t.Fatalf("nil MarshalFleet = %q", c.MarshalFleet())
	}
}
