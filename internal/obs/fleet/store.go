package fleet

import "sort"

// The embedded time-series store: every scrape interval appends one raw
// sample per tracked series (worker progress, fleet counter totals, flips),
// and the dashboard renders the retained window as sparkline trends. The
// discipline matches the flight recorder's ring: memory is fixed at
// construction and never grows. Instead of overwriting the oldest point,
// though, a full trend halves itself — adjacent pairs merge into their mean —
// and doubles its stride (how many raw samples condense into one stored
// point). The stored window therefore always spans the whole run: the ring
// trades resolution for range in power-of-two steps, never truncating the
// left edge the way overwrite-oldest would. Old points are still overwritten
// in place by the compaction, so the capacity bound is as hard as the
// flight ring's.

// DefaultTrendCapacity holds ~4 minutes of 1 s scrapes at full resolution
// per series, compacting to 8-minute resolution-halved windows and so on.
const DefaultTrendCapacity = 256

// TrendPoint is one stored sample: At is the collector's scrape sequence
// number (or any caller-supplied monotonic instant) of the first raw sample
// the point condenses; V is the mean of its raw samples.
type TrendPoint struct {
	At int64   `json:"at"`
	V  float64 `json:"v"`
}

// trend is one bounded series.
type trend struct {
	cap    int
	stride int // raw samples per stored point; doubles on each compaction
	accN   int
	accAt  int64
	acc    float64
	pts    []TrendPoint
}

// add folds one raw sample in, compacting when the ring fills.
func (t *trend) add(at int64, v float64) {
	if t.accN == 0 {
		t.accAt = at
	}
	t.accN++
	t.acc += v
	if t.accN < t.stride {
		return
	}
	t.pts = append(t.pts, TrendPoint{At: t.accAt, V: t.acc / float64(t.accN)})
	t.accN, t.acc = 0, 0
	if len(t.pts) < t.cap {
		return
	}
	// Power-of-two downsample: merge adjacent pairs in place, keeping each
	// pair's first instant and mean value.
	half := len(t.pts) / 2
	for i := 0; i < half; i++ {
		a, b := t.pts[2*i], t.pts[2*i+1]
		t.pts[i] = TrendPoint{At: a.At, V: (a.V + b.V) / 2}
	}
	t.pts = t.pts[:half]
	t.stride *= 2
}

// Store holds the bounded trend series, keyed by name. A nil *Store is valid
// and inert, matching the obs-layer contract. Store is not internally
// locked: the Collector owns one and serializes access under its own mutex.
type Store struct {
	cap    int
	series map[string]*trend
}

// NewStore builds a store whose series each hold up to capacity points
// (DefaultTrendCapacity when capacity <= 0; odd capacities round up so the
// pairwise compaction is exact).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultTrendCapacity
	}
	if capacity%2 == 1 {
		capacity++
	}
	return &Store{cap: capacity, series: map[string]*trend{}}
}

// Append folds one raw sample into the named series, creating it on first
// use.
func (s *Store) Append(name string, at int64, v float64) {
	if s == nil {
		return
	}
	t := s.series[name]
	if t == nil {
		t = &trend{cap: s.cap, stride: 1}
		s.series[name] = t
	}
	t.add(at, v)
}

// Trend returns a copy of the named series' stored points, oldest first
// (nil when the series does not exist).
func (s *Store) Trend(name string) []TrendPoint {
	if s == nil {
		return nil
	}
	t := s.series[name]
	if t == nil {
		return nil
	}
	return append([]TrendPoint(nil), t.pts...)
}

// Stride returns how many raw samples condense into one stored point of the
// named series (0 when the series does not exist).
func (s *Store) Stride(name string) int {
	if s == nil {
		return 0
	}
	t := s.series[name]
	if t == nil {
		return 0
	}
	return t.stride
}

// Names returns every series name, sorted.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.series))
	for n := range s.series {
		names = append(names, n) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(names)
	return names
}
