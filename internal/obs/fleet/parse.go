package fleet

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"shadow/internal/obs"
)

// Prometheus text-format (0.0.4) parser: the inverse of obs.WritePrometheus.
// Scraped /metrics payloads from remote shadowsim workers and in-process
// worker registries render through the same exposition writer, so one parser
// brings both back into a common model and the fleet aggregator never needs
// two merge paths. The parser is deliberately faithful rather than lenient:
// Write(Parse(text)) is byte-identical for everything the obs layer emits
// (the round-trip regression test pins this), because each sample keeps its
// verbatim value text alongside the parsed float.

// Label is one parsed label pair, unescaped.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Sample is one exposition line: a metric name, its ordered label pairs, and
// the sample value. Raw preserves the value text exactly as scraped so
// re-exposition is byte-identical; Value carries the parsed number for
// aggregation.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	Raw    string
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Family groups the samples declared under one # TYPE line. For histogram
// families the samples carry the _bucket/_sum/_count suffixes on their own
// names, following the exposition convention.
type Family struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Samples []Sample
}

// Parse reads a Prometheus text-format 0.0.4 document into its families, in
// document order. Samples that precede any # TYPE declaration, or that do
// not belong to the current family (name mismatch beyond the histogram
// suffixes), open a new untyped family. Blank lines are ignored; any other
// unparsable line is an error naming its line number.
func Parse(data []byte) ([]Family, error) {
	var fams []Family
	cur := -1 // index into fams of the open family
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("fleet: line %d: HELP without a metric name", ln+1)
			}
			// HELP opens a family; the TYPE line for the same name joins it.
			fams = append(fams, Family{Name: name, Help: help, Type: "untyped"})
			cur = len(fams) - 1
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("fleet: line %d: unknown metric type %q", ln+1, typ)
			}
			if cur >= 0 && fams[cur].Name == name && len(fams[cur].Samples) == 0 {
				fams[cur].Type = typ
				continue
			}
			fams = append(fams, Family{Name: name, Type: typ})
			cur = len(fams) - 1
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("fleet: line %d: %w", ln+1, err)
		}
		if cur < 0 || !sampleBelongs(fams[cur], s) {
			fams = append(fams, Family{Name: s.Name, Type: "untyped"})
			cur = len(fams) - 1
		}
		fams[cur].Samples = append(fams[cur].Samples, s)
	}
	return fams, nil
}

// sampleBelongs reports whether a sample line continues family f: its name
// matches the family name, or — for histograms — the name plus one of the
// _bucket/_sum/_count suffixes.
func sampleBelongs(f Family, s Sample) bool {
	if s.Name == f.Name {
		return true
	}
	if f.Type != "histogram" && f.Type != "summary" {
		return false
	}
	rest, ok := strings.CutPrefix(s.Name, f.Name)
	if !ok {
		return false
	}
	switch rest {
	case "_bucket", "_sum", "_count":
		return true
	}
	return false
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := metricNameEnd(line)
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels = labels
		rest = tail
	}
	raw := strings.TrimSpace(rest)
	if raw == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := parseValue(raw)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, raw)
	}
	s.Raw = raw
	s.Value = v
	return s, nil
}

// metricNameEnd returns the length of the metric-name prefix of line.
func metricNameEnd(line string) int {
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return i
	}
	return len(line)
}

// parseLabels reads a {k="v",...} block (s starts at the '{'), returning the
// unescaped pairs and the remainder of the line after the '}'.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return labels, s[i+1:], nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j == len(s) || j == i {
			return nil, "", fmt.Errorf("malformed label near %q", s[i:])
		}
		key := s[i:j]
		if j+1 >= len(s) || s[j+1] != '"' {
			return nil, "", fmt.Errorf("label %s: value is not quoted", key)
		}
		value, next, err := parseQuoted(s[j+1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", key, err)
		}
		labels = append(labels, Label{Key: key, Value: value})
		i = j + 1 + next
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseQuoted unescapes a double-quoted label value (s starts at the opening
// quote), handling \\, \", and \n. It returns the value and how many input
// bytes were consumed including both quotes.
func parseQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

// parseValue parses a sample value, accepting the exposition format's +Inf,
// -Inf, and NaN spellings alongside ordinary numbers.
func parseValue(raw string) (float64, error) {
	switch raw {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(raw, 64)
}

// Write renders families back to exposition text: # HELP (when present) and
// # TYPE lines per family, then each sample with obs.PromLabel escaping.
// For documents produced by obs.WritePrometheus, Write(Parse(doc)) == doc.
func Write(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		if f.Type != "" && f.Type != "untyped" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, s := range f.Samples {
			writeSample(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample renders one sample line.
func writeSample(b *strings.Builder, s Sample) {
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(obs.PromLabel(l.Key, l.Value))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(s.Raw)
	b.WriteByte('\n')
}

// formatValue renders an aggregated number the way the obs layer would have:
// integral values print as integers (counters and gauges are int64-backed),
// everything else through the shortest float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
