package fleet

import (
	"math"
	"testing"
)

func TestStoreCapacityBound(t *testing.T) {
	s := NewStore(8)
	for i := 0; i < 10000; i++ {
		s.Append("x", int64(i), float64(i))
	}
	pts := s.Trend("x")
	if len(pts) >= 8 {
		t.Fatalf("series holds %d points, capacity 8", len(pts))
	}
	if len(pts) == 0 {
		t.Fatal("series empty")
	}
}

func TestStoreStrideDoubles(t *testing.T) {
	s := NewStore(4)
	if s.Stride("x") != 0 {
		t.Fatalf("stride of missing series = %d, want 0", s.Stride("x"))
	}
	s.Append("x", 0, 1)
	if got := s.Stride("x"); got != 1 {
		t.Fatalf("fresh stride = %d, want 1", got)
	}
	// Filling to capacity triggers one compaction: stride 1 -> 2.
	for i := 1; i < 4; i++ {
		s.Append("x", int64(i), 1)
	}
	if got := s.Stride("x"); got != 2 {
		t.Fatalf("stride after first compaction = %d, want 2", got)
	}
	// Reaching capacity again needs 2 raw samples per point now.
	for i := 4; i < 8; i++ {
		s.Append("x", int64(i), 1)
	}
	if got := s.Stride("x"); got != 4 {
		t.Fatalf("stride after second compaction = %d, want 4", got)
	}
}

// TestStoreWindowSpansRun: downsampling keeps the left edge — the oldest
// stored point always condenses the run's first raw sample, unlike an
// overwrite-oldest ring.
func TestStoreWindowSpansRun(t *testing.T) {
	s := NewStore(16)
	for i := 0; i < 5000; i++ {
		s.Append("x", int64(i), float64(i))
	}
	pts := s.Trend("x")
	if pts[0].At != 0 {
		t.Fatalf("oldest stored point At = %d, want 0 (left edge truncated)", pts[0].At)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatalf("stored instants not increasing: %v", pts)
		}
	}
}

// TestStoreMeanPreserved: compaction merges by mean, so a constant series
// stays constant and a linear ramp keeps its mean per merged window.
func TestStoreMeanPreserved(t *testing.T) {
	s := NewStore(8)
	for i := 0; i < 1000; i++ {
		s.Append("flat", int64(i), 7)
	}
	for _, p := range s.Trend("flat") {
		if p.V != 7 {
			t.Fatalf("constant series drifted: %v", s.Trend("flat"))
		}
	}
	s2 := NewStore(4)
	// 8 raw samples 0..7 through capacity 4: ends at stride 4, 2 points with
	// means 1.5 and 5.5.
	for i := 0; i < 8; i++ {
		s2.Append("ramp", int64(i), float64(i))
	}
	pts := s2.Trend("ramp")
	if len(pts) != 2 || math.Abs(pts[0].V-1.5) > 1e-12 || math.Abs(pts[1].V-5.5) > 1e-12 {
		t.Fatalf("ramp trend = %v, want means [1.5 5.5]", pts)
	}
}

func TestStoreOddCapacityRoundsUp(t *testing.T) {
	s := NewStore(5)
	if s.cap != 6 {
		t.Fatalf("cap = %d, want 6", s.cap)
	}
	if NewStore(0).cap != DefaultTrendCapacity {
		t.Fatal("zero capacity should take the default")
	}
}

func TestStoreNamesSortedAndNilSafe(t *testing.T) {
	var nilStore *Store
	nilStore.Append("x", 0, 1)
	if nilStore.Trend("x") != nil || nilStore.Names() != nil || nilStore.Stride("x") != 0 {
		t.Fatal("nil Store must be inert")
	}
	s := NewStore(8)
	s.Append("b", 0, 1)
	s.Append("a", 0, 1)
	s.Append("c", 0, 1)
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("Names() = %v, want sorted [a b c]", names)
	}
	// Trend returns a copy: mutating it must not corrupt the store.
	pts := s.Trend("a")
	pts[0].V = 999
	if s.Trend("a")[0].V != 1 {
		t.Fatal("Trend() aliases internal storage")
	}
}
