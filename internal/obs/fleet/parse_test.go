package fleet

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"shadow/internal/obs"
)

// buildRegistry populates a recorder's metrics with the golden instrument
// mix: counters, gauges, histograms with several buckets, and hostile
// instrument names exercising every escape the exposition format defines.
func buildRegistry(t *testing.T) *obs.Metrics {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{Metrics: true})
	p := rec.NewTrack(`shadow/mix-high/h4096`)
	c := p.Counter("dram/flips_total")
	c.Add(7)
	p.Counter("memctrl/acts_total").Add(123456)
	p.Gauge("memctrl/queue_depth").Set(42)
	h := p.Histogram("memctrl/read_latency_ps")
	for _, v := range []int64{1, 2, 5, 100, 10000, 0, 3} {
		h.Observe(v)
	}
	// Hostile label value: backslash, quote, newline.
	hostile := rec.NewTrack("evil\\name\"with\nnewline")
	hostile.Counter("x").Add(1)
	return rec.Metrics()
}

// TestRoundTripByteIdentical is the satellite regression: WritePrometheus →
// Parse → Write must be byte-identical, including escaped label values and
// histogram families.
func TestRoundTripByteIdentical(t *testing.T) {
	m := buildRegistry(t)
	var orig bytes.Buffer
	if err := m.WritePrometheus(&orig); err != nil {
		t.Fatal(err)
	}
	if orig.Len() == 0 {
		t.Fatal("empty exposition")
	}
	fams, err := Parse(orig.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := Write(&back, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), back.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- original ---\n%s\n--- re-exposed ---\n%s", orig.String(), back.String())
	}
}

// TestParseHistogramMonotonic checks bucket monotonicity survives the parse:
// cumulative counts never decrease along le, and +Inf equals _count.
func TestParseHistogramMonotonic(t *testing.T) {
	var b bytes.Buffer
	if err := buildRegistry(t).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, f := range fams {
		if f.Type != "histogram" {
			continue
		}
		// Group bucket samples by instrument name.
		byName := map[string][]Sample{}
		counts := map[string]float64{}
		var order []string
		for _, s := range f.Samples {
			name := s.Label("name")
			switch s.Name {
			case f.Name + "_bucket":
				if _, ok := byName[name]; !ok {
					order = append(order, name)
				}
				byName[name] = append(byName[name], s)
			case f.Name + "_count":
				counts[name] = s.Value
			}
		}
		for _, name := range order {
			buckets := byName[name]
			prev := -1.0
			for _, s := range buckets {
				if s.Value < prev {
					t.Errorf("%s{%s}: bucket at le=%s decreases (%v < %v)", f.Name, name, s.Label("le"), s.Value, prev)
				}
				prev = s.Value
			}
			last := buckets[len(buckets)-1]
			if last.Label("le") != "+Inf" {
				t.Errorf("%s{%s}: last bucket le=%q, want +Inf", f.Name, name, last.Label("le"))
			}
			if last.Value != counts[name] {
				t.Errorf("%s{%s}: +Inf bucket %v != count %v", f.Name, name, last.Value, counts[name])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no histograms checked")
	}
}

func TestParseEscapedLabels(t *testing.T) {
	doc := "shadow_counter{name=\"evil\\\\name\\\"with\\nnewline/x\"} 1\n"
	fams, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 {
		t.Fatalf("families = %+v", fams)
	}
	got := fams[0].Samples[0].Label("name")
	want := "evil\\name\"with\nnewline/x"
	if got != want {
		t.Fatalf("unescaped label = %q, want %q", got, want)
	}
	var back bytes.Buffer
	if err := Write(&back, fams); err != nil {
		t.Fatal(err)
	}
	if back.String() != doc {
		t.Fatalf("re-exposed %q, want %q", back.String(), doc)
	}
}

func TestParseSpecialValues(t *testing.T) {
	doc := "a 1\nb +Inf\nc -Inf\nd NaN\ne 1.5e-3\n"
	fams, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			vals[s.Name] = s.Value
		}
	}
	if vals["a"] != 1 || !math.IsInf(vals["b"], 1) || !math.IsInf(vals["c"], -1) || !math.IsNaN(vals["d"]) || vals["e"] != 0.0015 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestParseErrorsNameLines(t *testing.T) {
	cases := []string{
		"ok 1\n{} 2\n",                         // malformed sample, line 2
		"x{name=\"unterminated} 1\n",           // unterminated quote, line 1
		"# TYPE x flotsam\n",                   // unknown type
		"x{name=\"a\"} notanumber\n",           // bad value
		"x{name=\"a\\q\"} 1\n",                 // unknown escape
		"# HELP  missing-name-help\nok 1\n",    // HELP without metric name
		"x 1 trailing junk that is no float\n", // value is not one token
	}
	for _, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("Parse(%q): no error", doc)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("Parse(%q): error %q does not name a line", doc, err)
		}
	}
}

func TestParseGroupsHistogramSuffixes(t *testing.T) {
	doc := "# TYPE shadow_histogram histogram\n" +
		"shadow_histogram_bucket{name=\"a\",le=\"1\"} 1\n" +
		"shadow_histogram_sum{name=\"a\"} 3\n" +
		"shadow_histogram_count{name=\"a\"} 1\n" +
		"other 9\n"
	fams, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("got %d families, want 2 (histogram + stray untyped)", len(fams))
	}
	if fams[0].Name != "shadow_histogram" || len(fams[0].Samples) != 3 {
		t.Fatalf("histogram family = %+v", fams[0])
	}
	if fams[1].Name != "other" || fams[1].Type != "untyped" {
		t.Fatalf("stray family = %+v", fams[1])
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		42:     "42",
		-3:     "-3",
		1.5:    "1.5",
		0.0015: "0.0015",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
