package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"shadow/internal/timing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sampleRecorder() *Recorder {
	rec := NewRecorder(Options{Events: true})
	p := rec.NewTrack("shadow/mix-high")
	ch1 := p.ForChannel(1)
	us := timing.Microsecond
	p.Emit(Event{At: 1 * us, Dur: timing.NS(35), Kind: KindACT, Bank: 0, Row: 42})
	p.Emit(Event{At: 2 * us, Dur: timing.NS(15), Kind: KindRD, Bank: 0, Row: 42})
	p.Emit(Event{At: 3 * us, Dur: timing.NS(410), Kind: KindRFM, Bank: 2, Row: -1})
	p.Emit(Event{At: 3 * us, Kind: KindShuffle, Bank: 2, Row: 77, Aux: 1})
	p.Emit(Event{At: 4 * us, Dur: timing.NS(195), Kind: KindREF, Bank: -1, Row: -1})
	p.Emit(Event{At: 5 * us, Kind: KindThrottle, Bank: 1, Row: 9, Dur: timing.NS(1000)})
	ch1.Emit(Event{At: 6 * us, Dur: timing.NS(35), Kind: KindACT, Bank: 3, Row: 8})
	ch1.Emit(Event{At: 7 * us, Kind: KindFlip, Bank: 3, Row: 10, Aux: 0})
	return rec
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from golden (re-run with -update to refresh):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed validates the Perfetto-required fields: every
// event has a valid ph, a non-negative ts, and pid/tid consistent with the
// track and bank that produced it.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	rec := sampleRecorder()
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  *int           `json:"pid"`
			TID  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	meta, slices, instants := 0, 0, 0
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.PID == nil || e.TID == nil {
			t.Fatalf("event %q missing pid/tid", e.Name)
		}
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == "" {
				t.Fatalf("metadata event without a name arg: %+v", e)
			}
		case "X":
			slices++
			if e.Dur <= 0 {
				t.Fatalf("complete event %q with non-positive dur", e.Name)
			}
		case "i":
			instants++
			if e.S != "t" {
				t.Fatalf("instant %q has scope %q, want thread scope", e.Name, e.S)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
		if e.Ts < 0 {
			t.Fatalf("event %q has negative ts", e.Name)
		}
		names[e.Name] = true
	}
	if meta == 0 || slices == 0 || instants == 0 {
		t.Fatalf("meta/slices/instants = %d/%d/%d, want all nonzero", meta, slices, instants)
	}
	for _, want := range []string{"ACT", "RFM", "shuffle", "process_name", "thread_name"} {
		if !names[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
	// ACT at tick 1us on the base track must be ts=1.0us, pid 0, tid 1.
	found := false
	for _, e := range doc.TraceEvents {
		if e.Name == "ACT" && *e.PID == 0 {
			found = true
			if e.Ts != 1.0 || *e.TID != 1 {
				t.Fatalf("base ACT ts/tid = %g/%d, want 1.0/1", e.Ts, *e.TID)
			}
			if row, ok := e.Args["row"].(float64); !ok || row != 42 {
				t.Fatalf("base ACT row arg = %v, want 42", e.Args["row"])
			}
			break
		}
	}
	if !found {
		t.Fatal("no ACT event on the base track")
	}
}
