package obs

import (
	"fmt"

	"shadow/internal/timing"
)

// Kind classifies a structured event.
type Kind uint8

// Event kinds: the DRAM command stream plus the mitigation decisions and
// faults the paper's diagnosis needs time-resolved.
const (
	// DRAM commands, as issued by the memory controller.
	KindACT Kind = iota
	KindPRE
	KindRD
	KindWR
	KindREF
	KindRFM
	// Mitigation actions.
	KindTRR        // MC-side target-row-refresh activation (Graphene, PARA)
	KindShuffle    // SHADOW row-shuffle (Row is the sampled aggressor PA row; Aux its subarray)
	KindIncRefresh // SHADOW incremental refresh (Row is the refreshed DA row)
	KindSwap       // RRS row swap (Row/Aux are the PA rows; Dur the channel-blocking time)
	KindThrottle   // BlockHammer throttle decision (Dur is the enforced minimum ACT gap)
	// Faults.
	KindFlip // Row Hammer bit flip (Row is the victim DA row; Aux its subarray)
	// Request lifecycle (shadowtap spans): one duration event per completed
	// memory request on a per-core lane track (Aux is the attributed stall;
	// Label names the dominant cause).
	KindSpan

	// NumKinds sizes per-kind arrays (the flight recorder's kind counts);
	// it is a count sentinel, not an event kind.
	NumKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindACT:
		return "ACT"
	case KindPRE:
		return "PRE"
	case KindRD:
		return "RD"
	case KindWR:
		return "WR"
	case KindREF:
		return "REF"
	case KindRFM:
		return "RFM"
	case KindTRR:
		return "TRR"
	case KindShuffle:
		return "shuffle"
	case KindIncRefresh:
		return "inc-refresh"
	case KindSwap:
		return "swap"
	case KindThrottle:
		return "throttle"
	case KindFlip:
		return "flip"
	case KindSpan:
		return "req"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Category groups kinds for trace filtering: "cmd", "mitigation", "fault",
// "req".
func (k Kind) Category() string {
	switch k {
	case KindACT, KindPRE, KindRD, KindWR, KindREF, KindRFM:
		return "cmd"
	case KindFlip:
		return "fault"
	case KindSpan:
		return "req"
	default: // KindTRR, KindShuffle, KindIncRefresh, KindSwap, KindThrottle
		return "mitigation"
	}
}

// Event is one structured observation. Zero Dur means an instant.
type Event struct {
	At   timing.Tick
	Dur  timing.Tick
	Kind Kind
	// PID is the trace group (track + channel), filled by Probe.Emit.
	PID int
	// TID overrides the trace thread; 0 derives it from Bank (the default
	// bank-per-thread layout). Request spans use ReqTID lanes.
	TID int
	// Bank is the bank index, -1 for rank-level commands (all-bank REF).
	Bank int
	// Row is the kind-specific row (-1 when not applicable).
	Row int
	// Aux carries the kind-specific extra operand; see the Kind comments.
	Aux int64
	// Label overrides the rendered event name (empty = Kind.String()); span
	// events use it to color slices by dominant stall cause.
	Label string
}

// Request-span lane layout: completed request spans render on per-core
// "lane" threads so overlapping requests appear as parallel flame rows.
// reqTIDBase keeps the lane thread IDs clear of any realistic bank count.
const (
	reqTIDBase = 1 << 12
	// ReqLanes is the number of flame rows per core (matching the default
	// MSHR-bounded memory-level parallelism).
	ReqLanes = 8
)

// ReqTID returns the trace thread ID of a core's request lane.
func ReqTID(core, lane int) int { return reqTIDBase + core*ReqLanes + lane }
