package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// metricsDump is the JSON shape of a metrics export. Maps marshal with
// sorted keys, so the output is byte-deterministic.
type metricsDump struct {
	SampleIntervalPS int64                    `json:"sample_interval_ps"`
	Counters         map[string]int64         `json:"counters,omitempty"`
	Gauges           map[string]int64         `json:"gauges,omitempty"`
	Histograms       map[string]histogramDump `json:"histograms,omitempty"`
	Series           map[string][]float64     `json:"series,omitempty"`
}

type histogramDump struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// P50/P95/P99 follow the upper-bound-of-bucket convention (see
	// Histogram.Quantile): each is the inclusive upper edge of the
	// power-of-two bucket holding that quantile's sample, clamped to Max —
	// a conservative estimate that never understates the true quantile.
	P50     int64        `json:"p50"`
	P95     int64        `json:"p95"`
	P99     int64        `json:"p99"`
	Buckets []bucketDump `json:"buckets,omitempty"`
}

type bucketDump struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

func (m *Metrics) dump() metricsDump {
	d := metricsDump{SampleIntervalPS: int64(m.interval)}
	if len(m.counters) > 0 {
		d.Counters = make(map[string]int64, len(m.counters))
		for _, k := range sortedKeysCounter(m.counters) {
			d.Counters[k] = m.counters[k].Value()
		}
	}
	if len(m.gauges) > 0 {
		d.Gauges = make(map[string]int64, len(m.gauges))
		for _, k := range sortedKeysGauge(m.gauges) {
			d.Gauges[k] = m.gauges[k].Value()
		}
	}
	if len(m.hists) > 0 {
		d.Histograms = make(map[string]histogramDump, len(m.hists))
		for _, k := range sortedKeysHistogram(m.hists) {
			h := m.hists[k]
			hd := histogramDump{
				Count: h.Count(), Sum: h.Sum(),
				Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
				P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			}
			for _, b := range h.Buckets() {
				hd.Buckets = append(hd.Buckets, bucketDump{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
			}
			d.Histograms[k] = hd
		}
	}
	if len(m.series) > 0 {
		d.Series = make(map[string][]float64, len(m.series))
		for _, k := range sortedKeysSeries(m.series) {
			d.Series[k] = m.series[k].Values()
		}
	}
	return d
}

// WriteJSON dumps every instrument as indented JSON. Safe on a nil registry
// (writes an empty document).
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.dump())
}

// WriteCSV dumps every instrument as flat `kind,name,field,value` rows,
// sorted by kind then name, for spreadsheet or awk consumption. The output
// is RFC 4180 (encoding/csv): instrument names containing commas, quotes,
// or newlines are quoted, not mangled. Histogram quantile rows (p50/p95/p99)
// follow the upper-bound-of-bucket convention of Histogram.Quantile. Safe on
// a nil registry (writes only the header).
func (m *Metrics) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "field", "value"}); err != nil {
		return err
	}
	if m == nil {
		cw.Flush()
		return cw.Error()
	}
	row := func(kind, name, field string, value any) error {
		return cw.Write([]string{kind, name, field, fmt.Sprint(value)})
	}
	for _, k := range sortedKeysCounter(m.counters) {
		if err := row("counter", k, "value", m.counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeysGauge(m.gauges) {
		if err := row("gauge", k, "value", m.gauges[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeysHistogram(m.hists) {
		h := m.hists[k]
		fields := []struct {
			name  string
			value any
		}{
			{"count", h.Count()},
			{"sum", h.Sum()},
			{"min", h.Min()},
			{"max", h.Max()},
			{"mean", fmt.Sprintf("%.3f", h.Mean())},
			{"p50", h.Quantile(0.50)},
			{"p95", h.Quantile(0.95)},
			{"p99", h.Quantile(0.99)},
		}
		for _, f := range fields {
			if err := row("histogram", k, f.name, f.value); err != nil {
				return err
			}
		}
		for _, b := range h.Buckets() {
			if err := row("histogram", k, fmt.Sprintf("bucket[%d-%d]", b.Lo, b.Hi), b.Count); err != nil {
				return err
			}
		}
	}
	for _, k := range sortedKeysSeries(m.series) {
		for i, v := range m.series[k].Values() {
			if err := row("series", k, fmt.Sprintf("t%d", i), fmt.Sprintf("%g", v)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
