package obs

import (
	"math"
	"math/bits"
	"sort"

	"shadow/internal/timing"
)

// Metrics is the instrument registry: named counters, gauges, histograms,
// and time series, created on first use. A nil *Metrics is valid and hands
// out nil (inert) instruments.
type Metrics struct {
	interval timing.Tick
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

func newMetrics(interval timing.Tick) *Metrics {
	return &Metrics{
		interval: interval,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// SampleInterval returns the bucket width shared by every time series.
func (m *Metrics) SampleInterval() timing.Tick {
	if m == nil {
		return 0
	}
	return m.interval
}

// Counter returns (creating on first use) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Series returns (creating on first use) the named time series.
func (m *Metrics) Series(name string) *Series {
	if m == nil {
		return nil
	}
	s := m.series[name]
	if s == nil {
		s = &Series{interval: m.interval}
		m.series[name] = s
	}
	return s
}

// LookupSeries returns the named series without creating it (nil if absent).
func (m *Metrics) LookupSeries(name string) *Series {
	if m == nil {
		return nil
	}
	return m.series[name]
}

// LookupHistogram returns the named histogram without creating it.
func (m *Metrics) LookupHistogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	return m.hists[name]
}

// SeriesNames returns every registered series name, sorted.
func (m *Metrics) SeriesNames() []string {
	if m == nil {
		return nil
	}
	return sortedKeysSeries(m.series)
}

func sortedKeysCounter(m map[string]*Counter) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysGauge(m map[string]*Gauge) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysHistogram(m map[string]*Histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSeries(m map[string]*Series) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(keys)
	return keys
}

// Counter is a monotonic int64 count. Nil-inert.
type Counter struct{ v int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-written int64 value. Nil-inert.
type Gauge struct{ v int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last written value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is one bucket per possible bit length of an int64 value,
// plus bucket 0 for values <= 0: bucket i counts values in
// [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a power-of-two-bucketed distribution of int64 samples
// (latencies in ticks, queue depths, hit streaks). Nil-inert.
type Histogram struct {
	count, sum int64
	min, max   int64
	buckets    [histBuckets]int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the inclusive upper edge of the power-of-two bucket holding the sample of
// rank ceil(q*count), clamped to the observed maximum. The convention is
// conservative — the true quantile is never underestimated — and documented
// in the metrics dumps, which carry p50/p95/p99 under it. Returns 0 when
// empty (or on a nil receiver).
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum < rank {
			continue
		}
		if i == 0 {
			// Bucket 0 holds values <= 0; its upper edge is 0, tightened to
			// Max when every sample is negative.
			if h.max < 0 {
				return h.max
			}
			return 0
		}
		hi := int64(math.MaxInt64)
		if i < 63 {
			hi = int64(1)<<i - 1
		}
		if hi > h.max {
			hi = h.max
		}
		return hi
	}
	return h.max
}

// Bucket is one non-empty histogram bucket covering [Lo, Hi].
type Bucket struct {
	Lo, Hi int64
	Count  int64
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = int64(1) << (i - 1)
			b.Hi = b.Lo<<1 - 1
		}
		out = append(out, b)
	}
	return out
}

// Series is a fixed-interval time series over simulated time: Add(now, v)
// accumulates v into the bucket now/interval, so the values are sums per
// interval (rates, stall time, instruction counts). Nil-inert.
type Series struct {
	interval timing.Tick
	vals     []float64
}

// Add accumulates v into the bucket covering simulated time now.
func (s *Series) Add(now timing.Tick, v float64) {
	if s == nil {
		return
	}
	i := int(now / s.interval)
	for len(s.vals) <= i {
		s.vals = append(s.vals, 0) //shadowvet:ignore allocflow -- per-interval series growth is amortized doubling; the dynamic gate stays at 0 allocs/op
	}
	s.vals[i] += v
}

// Interval returns the bucket width.
func (s *Series) Interval() timing.Tick {
	if s == nil {
		return 0
	}
	return s.interval
}

// Values returns the per-interval sums (bucket i covers
// [i*Interval, (i+1)*Interval)).
func (s *Series) Values() []float64 {
	if s == nil {
		return nil
	}
	return s.vals
}
