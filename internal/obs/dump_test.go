package obs

import (
	"encoding/csv"
	"strings"
	"testing"

	"shadow/internal/timing"
)

// TestWriteCSVHostileNames round-trips instrument names containing commas,
// quotes, and spaces through the RFC 4180 writer: a reader must recover
// every field byte for byte (hand-rolled joining would shear these rows).
func TestWriteCSVHostileNames(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true, SampleInterval: timing.Microsecond})
	hostile := []string{
		`acts,per,bank`,
		`lat "p99" spike`,
		`mix, of "both"`,
	}
	p := rec.NewTrack(`track,with"quirks`)
	p.Counter(hostile[0]).Add(7)
	p.Histogram(hostile[1]).Observe(42)
	p.Series(hostile[2]).Add(0, 3)

	var out strings.Builder
	if err := rec.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}

	r := csv.NewReader(strings.NewReader(out.String()))
	records, err := r.ReadAll()
	if err != nil {
		t.Fatalf("CSV output does not re-parse: %v\n%s", err, out.String())
	}
	if len(records) == 0 || strings.Join(records[0], "|") != "kind|name|field|value" {
		t.Fatalf("bad header: %v", records)
	}
	seen := map[string]bool{}
	for _, rec := range records[1:] {
		if len(rec) != 4 {
			t.Fatalf("row has %d fields, want 4: %v", len(rec), rec)
		}
		seen[rec[1]] = true
	}
	for _, name := range hostile {
		full := `track,with"quirks/` + name
		if !seen[full] {
			t.Errorf("hostile name %q did not round-trip; rows: %v", full, records)
		}
	}
}

// TestHistogramQuantiles pins the upper-bound-of-bucket convention: each
// quantile reports the inclusive upper edge of the power-of-two bucket
// holding that quantile's sample, clamped to the observed max.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 samples in bucket [8,15], 10 in bucket [1024,2047].
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	if got := h.Quantile(0.50); got != 15 {
		t.Errorf("p50 = %d, want 15 (upper edge of [8,15])", got)
	}
	if got := h.Quantile(0.90); got != 15 {
		t.Errorf("p90 = %d, want 15", got)
	}
	if got := h.Quantile(0.95); got != 1500 {
		t.Errorf("p95 = %d, want 1500 (bucket edge 2047 clamped to max)", got)
	}
	if got := h.Quantile(0.99); got != 1500 {
		t.Errorf("p99 = %d, want 1500", got)
	}

	// Degenerate and edge inputs.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
	var one Histogram
	one.Observe(100)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got != 100 {
			t.Errorf("single-sample q%.1f = %d, want 100", q, got)
		}
	}
	var zero Histogram
	zero.Observe(0)
	if got := zero.Quantile(0.99); got != 0 {
		t.Errorf("zero-sample p99 = %d, want 0", got)
	}
	var neg Histogram
	neg.Observe(-5) // negatives clamp into bucket 0; max stays negative
	if got := neg.Quantile(0.5); got != -5 {
		t.Errorf("negative-sample p50 = %d, want -5 (clamped to max)", got)
	}
}

// TestDumpIncludesQuantiles checks the JSON and CSV dumps carry the
// documented p50/p95/p99 fields.
func TestDumpIncludesQuantiles(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true})
	p := rec.NewTrack("run")
	for i := int64(1); i <= 100; i++ {
		p.Histogram("lat").Observe(i)
	}
	var js strings.Builder
	if err := rec.Metrics().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"p50": 63`, `"p95": 100`, `"p99": 100`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON dump missing %s:\n%s", want, js.String())
		}
	}
	var out strings.Builder
	if err := rec.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"histogram,run/lat,p50,63", "histogram,run/lat,p95,100", "histogram,run/lat,p99,100"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("CSV dump missing %s:\n%s", want, out.String())
		}
	}
}
