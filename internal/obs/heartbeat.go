package obs

import (
	"fmt"
	"io"
	"time"

	"shadow/internal/timing"
)

// Heartbeat prints a rate-limited progress line to a writer: simulated-time
// percentage, simulated-vs-wall speed, and (optionally) events/sec. It is
// the only obs component that needs wall time, and it takes the clock as an
// injected func so the simulation core stays free of wall-clock reads: pass
// time.Now from the cmd layer.
type Heartbeat struct {
	w      io.Writer
	label  string
	total  timing.Tick
	clock  func() time.Time
	events func() int64

	minGap     time.Duration
	started    time.Time
	lastPrint  time.Time
	lastSim    timing.Tick
	lastEvents int64
	printed    bool
}

// NewHeartbeat builds a heartbeat for a run covering total simulated ticks.
// clock supplies wall time (time.Now in production, a fake in tests).
func NewHeartbeat(w io.Writer, label string, total timing.Tick, clock func() time.Time) *Heartbeat {
	now := clock()
	return &Heartbeat{
		w: w, label: label, total: total, clock: clock,
		minGap: 500 * time.Millisecond, started: now, lastPrint: now,
	}
}

// WithEvents attaches an event-count source (e.g. Recorder.EventCount) so
// progress lines include an events/sec rate. Safe on a nil receiver.
func (h *Heartbeat) WithEvents(events func() int64) *Heartbeat {
	if h == nil {
		return nil
	}
	h.events = events
	return h
}

// Tick reports simulated progress; it prints at most once per 500ms of wall
// time. Safe on a nil receiver.
func (h *Heartbeat) Tick(now timing.Tick) {
	if h == nil {
		return
	}
	wall := h.clock()
	dt := wall.Sub(h.lastPrint)
	if h.printed && dt < h.minGap {
		return
	}
	pct := 0.0
	if h.total > 0 {
		pct = 100 * float64(now) / float64(h.total)
	}
	simRate := 0.0 // simulated microseconds per wall second
	if secs := dt.Seconds(); secs > 0 {
		simRate = float64(now-h.lastSim) / float64(timing.Microsecond) / secs
	}
	line := fmt.Sprintf("\r%s %5.1f%%  %8.1f sim-us/s", h.label, pct, simRate)
	if h.events != nil {
		n := h.events()
		evRate := 0.0
		if secs := dt.Seconds(); secs > 0 {
			evRate = float64(n-h.lastEvents) / secs
		}
		h.lastEvents = n
		line += fmt.Sprintf("  %10.0f events/s", evRate)
	}
	fmt.Fprint(h.w, line)
	h.printed = true
	h.lastPrint = wall
	h.lastSim = now
}

// Done terminates the progress line (prints the trailing newline only if a
// progress line was ever printed). Safe on a nil receiver.
func (h *Heartbeat) Done() {
	if h == nil || !h.printed {
		return
	}
	elapsed := h.clock().Sub(h.started)
	fmt.Fprintf(h.w, "\r%s 100.0%%  done in %s\n", h.label, elapsed.Round(time.Millisecond))
}
