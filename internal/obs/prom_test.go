package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one exposition line: a comment or a sample with an
// optional label set. Every non-empty output line must match — the
// "/metrics parses as Prometheus text format" contract.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9+\-.eEInf]+)$`)

func promText(t *testing.T, m *Metrics) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

func TestWritePrometheusGolden(t *testing.T) {
	m := newMetrics(1000)
	m.Counter("run/mc/acts").Add(42)
	m.Gauge("run/queue").Set(-3)
	h := m.Histogram("run/lat")
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(9)

	want := strings.Join([]string{
		"# HELP shadow_counter Monotonic counters, keyed by instrument name.",
		"# TYPE shadow_counter counter",
		`shadow_counter{name="run/mc/acts"} 42`,
		"# HELP shadow_gauge Last-written gauges, keyed by instrument name.",
		"# TYPE shadow_gauge gauge",
		`shadow_gauge{name="run/queue"} -3`,
		"# HELP shadow_histogram Power-of-two-bucketed distributions; le is the inclusive bucket upper edge.",
		"# TYPE shadow_histogram histogram",
		`shadow_histogram_bucket{name="run/lat",le="0"} 1`,
		`shadow_histogram_bucket{name="run/lat",le="1"} 2`,
		`shadow_histogram_bucket{name="run/lat",le="3"} 4`,
		`shadow_histogram_bucket{name="run/lat",le="15"} 5`,
		`shadow_histogram_bucket{name="run/lat",le="+Inf"} 5`,
		`shadow_histogram_sum{name="run/lat"} 15`,
		`shadow_histogram_count{name="run/lat"} 5`,
		"",
	}, "\n")
	if got := promText(t, m); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusParses(t *testing.T) {
	m := newMetrics(1000)
	m.Counter("a").Inc()
	m.Gauge("b").Set(7)
	m.Histogram("c").Observe(100)
	for i, line := range strings.Split(promText(t, m), "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line %d is not valid exposition text: %q", i+1, line)
		}
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	m := newMetrics(1000)
	m.Counter("weird\"name\\with\nnewline").Inc()
	got := promText(t, m)
	want := `shadow_counter{name="weird\"name\\with\nnewline"} 1`
	if !strings.Contains(got, want) {
		t.Fatalf("escaped label missing:\n%s\nwant line: %s", got, want)
	}
	// The raw newline must not survive into the sample line.
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "shadow_counter{") && !promLine.MatchString(line) {
			t.Fatalf("sample line broken by unescaped character: %q", line)
		}
	}
}

// TestWritePrometheusBucketMonotonic checks the histogram contract scrape
// clients depend on: cumulative bucket counts never decrease, le edges
// strictly increase, and the +Inf bucket equals _count.
func TestWritePrometheusBucketMonotonic(t *testing.T) {
	m := newMetrics(1000)
	h := m.Histogram("lat")
	for _, v := range []int64{-5, 0, 1, 1, 2, 7, 8, 100, 5000, 1 << 40} {
		h.Observe(v)
	}
	bucketRe := regexp.MustCompile(`^shadow_histogram_bucket\{name="lat",le="([^"]+)"\} (\d+)$`)
	var lastLe, lastCum int64
	first := true
	var infCum int64
	seenInf := false
	for _, line := range strings.Split(promText(t, m), "\n") {
		sub := bucketRe.FindStringSubmatch(line)
		if sub == nil {
			continue
		}
		cum, err := strconv.ParseInt(sub[2], 10, 64)
		if err != nil {
			t.Fatalf("bad cumulative count %q: %v", sub[2], err)
		}
		if cum < lastCum {
			t.Fatalf("cumulative count decreased: %d after %d (%s)", cum, lastCum, line)
		}
		lastCum = cum
		if sub[1] == "+Inf" {
			seenInf, infCum = true, cum
			continue
		}
		if seenInf {
			t.Fatalf("bucket after +Inf: %s", line)
		}
		le, err := strconv.ParseInt(sub[1], 10, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", sub[1], err)
		}
		if !first && le <= lastLe {
			t.Fatalf("le not increasing: %d after %d", le, lastLe)
		}
		first, lastLe = false, le
	}
	if !seenInf {
		t.Fatal("no +Inf bucket")
	}
	if infCum != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", infCum, h.Count())
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var m *Metrics
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}
