package span

import (
	"testing"

	"shadow/internal/obs"
	"shadow/internal/timing"
)

// TestTimelineFolding drives one bank's cause timeline through a scripted
// sequence and checks a span enqueued mid-sequence sees exactly the segments
// that overlap its residency.
func TestTimelineFolding(t *testing.T) {
	tr := NewTracker(1, 0, nil)

	tr.SetCause(0, 0, CauseService)
	tr.SetCause(0, 100, CauseBankBusy)  // [0,100) service
	sp := tr.Start(0, 0, 7, false, 130) // enqueue mid bank-busy segment
	tr.SetCause(0, 150, CauseRefresh)   // [100,150) bank-busy, span sees [130,150)
	tr.SetCause(0, 250, CauseService)   // [150,250) refresh
	sp.NoteACT(280)
	tr.Complete(sp, 300, 320) // [250,300) service

	want := map[Cause]timing.Tick{
		CauseBankBusy: 20,
		CauseRefresh:  100,
		CauseService:  50,
	}
	for c := Cause(0); c < NumCauses; c++ {
		if got := sp.Stall[c]; got != want[c] {
			t.Errorf("Stall[%s] = %d, want %d", c, got, want[c])
		}
	}
	if sp.StallTotal() != sp.Resident() {
		t.Errorf("conservation: StallTotal %d != Resident %d", sp.StallTotal(), sp.Resident())
	}
	if sp.RowHit {
		t.Error("span with an ACT stamp reported RowHit")
	}
	if sp.Blame() != CauseRefresh {
		t.Errorf("Blame = %s, want refresh", sp.Blame())
	}
}

// TestBackpressureConservation checks queue-full time extends the invariant
// to [FirstAttempt, CAS).
func TestBackpressureConservation(t *testing.T) {
	tr := NewTracker(1, 0, nil)
	tr.SetCause(0, 0, CauseService)
	sp := tr.Start(0, 0, 3, true, 500)
	sp.NoteBackpressure(420)
	tr.Complete(sp, 600, 650)

	if sp.FirstAttempt != 420 {
		t.Fatalf("FirstAttempt = %d, want 420", sp.FirstAttempt)
	}
	if got := sp.Stall[CauseQueueFull]; got != 80 {
		t.Errorf("Stall[queue-full] = %d, want 80", got)
	}
	if sp.Resident() != 180 {
		t.Errorf("Resident = %d, want 180", sp.Resident())
	}
	if sp.StallTotal() != sp.Resident() {
		t.Errorf("conservation: StallTotal %d != Resident %d", sp.StallTotal(), sp.Resident())
	}

	// A no-op backpressure note (firstAttempt >= Enqueue) must not corrupt
	// the span.
	sp2 := tr.Start(0, 0, 3, false, 700)
	sp2.NoteBackpressure(700)
	if sp2.FirstAttempt != 700 || sp2.Stall[CauseQueueFull] != 0 {
		t.Error("NoteBackpressure with firstAttempt == Enqueue mutated the span")
	}
}

// TestBusyWindows checks NoteBusy/BusyCause resolve bank-readiness blame to
// the open window's cause, falling back to the default once it closes.
func TestBusyWindows(t *testing.T) {
	tr := NewTracker(2, 0, nil)
	tr.NoteBusy(1, 100, 400, CauseShuffle)
	if got := tr.BusyCause(1, 250, CauseBankBusy); got != CauseShuffle {
		t.Errorf("BusyCause inside window = %s, want shuffle", got)
	}
	if got := tr.BusyCause(1, 400, CauseBankBusy); got != CauseBankBusy {
		t.Errorf("BusyCause at window close = %s, want bank-busy", got)
	}
	if got := tr.BusyCause(0, 250, CauseBankBusy); got != CauseBankBusy {
		t.Errorf("BusyCause on unnoted bank = %s, want bank-busy", got)
	}
}

// TestAggregateMergeAndConserved exercises the aggregate arithmetic across
// trackers via a Collector.
func TestAggregateMergeAndConserved(t *testing.T) {
	col := NewCollector(0)
	for ch := 0; ch < 2; ch++ {
		tr := col.ForChannel(ch, 1, nil)
		tr.SetCause(0, 0, CauseService)
		sp := tr.Start(ch, 0, 1, ch == 1, 10)
		tr.SetCause(0, 40, CauseBus)
		tr.Complete(sp, 60, 90)
	}
	agg := col.Aggregate()
	if agg.Spans != 2 || agg.Reads != 1 || agg.Writes != 1 {
		t.Fatalf("agg counts = %d spans / %d reads / %d writes, want 2/1/1", agg.Spans, agg.Reads, agg.Writes)
	}
	if agg.Resident != 100 {
		t.Errorf("Resident = %d, want 100", agg.Resident)
	}
	if agg.Stall[CauseService] != 60 || agg.Stall[CauseBus] != 40 {
		t.Errorf("Stall split = service %d / bus %d, want 60/40", agg.Stall[CauseService], agg.Stall[CauseBus])
	}
	if !agg.Conserved() {
		t.Error("aggregate not conserved")
	}
}

// TestRetentionCap checks spans past maxSpans are dropped individually but
// stay accounted in the aggregate.
func TestRetentionCap(t *testing.T) {
	tr := NewTracker(1, 2, nil)
	tr.SetCause(0, 0, CauseService)
	for i := 0; i < 5; i++ {
		sp := tr.Start(0, 0, i, false, timing.Tick(i*100))
		tr.Complete(sp, timing.Tick(i*100+50), timing.Tick(i*100+60))
	}
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("retained %d spans, want 2", got)
	}
	agg := tr.Aggregate()
	if agg.Spans != 5 || agg.Dropped != 3 {
		t.Errorf("agg = %d spans / %d dropped, want 5/3", agg.Spans, agg.Dropped)
	}
	if !agg.Conserved() {
		t.Error("aggregate not conserved across dropped spans")
	}
}

// TestLaneAssignment checks the Perfetto lane allocator: overlapping spans
// take distinct lanes, a freed lane is reused first-fit, and saturation
// falls back to the earliest-free lane.
func TestLaneAssignment(t *testing.T) {
	tr := NewTracker(1, 0, nil)
	mk := func(enq, done timing.Tick) *Span {
		return &Span{Core: 0, Enqueue: enq, Done: done}
	}
	if got := tr.lane(mk(0, 100)); got != 0 {
		t.Errorf("first span lane = %d, want 0", got)
	}
	if got := tr.lane(mk(50, 150)); got != 1 {
		t.Errorf("overlapping span lane = %d, want 1", got)
	}
	if got := tr.lane(mk(100, 200)); got != 0 {
		t.Errorf("span after lane 0 freed = %d, want 0 (first-fit)", got)
	}
	// Saturate all lanes with overlapping spans, then confirm the fallback
	// picks the earliest-free one.
	tr2 := NewTracker(1, 0, nil)
	for i := 0; i < obs.ReqLanes; i++ {
		tr2.lane(mk(0, timing.Tick(1000+i)))
	}
	if got := tr2.lane(mk(10, 5000)); got != 0 {
		t.Errorf("saturated fallback lane = %d, want 0 (earliest free)", got)
	}
}

// TestNilSafety calls every method on nil receivers; the unprobed hot path
// relies on all of them being inert.
func TestNilSafety(t *testing.T) {
	var tr *Tracker
	var col *Collector
	var sp *Span
	tr.SetCause(0, 0, CauseRefresh)
	tr.SetAllCauses(0, CauseRefresh)
	tr.NoteBusy(0, 0, 10, CauseRFM)
	tr.NoteAllBusy(0, 10, CauseRefresh)
	if got := tr.BusyCause(0, 5, CauseBankBusy); got != CauseBankBusy {
		t.Errorf("nil BusyCause = %s, want default", got)
	}
	if tr.Start(0, 0, 0, false, 0) != nil {
		t.Error("nil tracker returned a span")
	}
	tr.Complete(nil, 0, 0)
	if agg := tr.Aggregate(); agg.Spans != 0 {
		t.Error("nil tracker aggregate not empty")
	}
	if tr.Spans() != nil {
		t.Error("nil tracker returned spans")
	}
	sp.NoteBackpressure(0)
	sp.NoteACT(0)
	if col.ForChannel(0, 4, nil) != nil {
		t.Error("nil collector returned a tracker")
	}
	if col.Trackers() != nil || col.Spans() != nil {
		t.Error("nil collector returned trackers or spans")
	}
	if agg := col.Aggregate(); agg.Spans != 0 {
		t.Error("nil collector aggregate not empty")
	}
}

// TestBlameTieBreak checks ties break toward the lower-numbered cause and an
// all-zero span blames service.
func TestBlameTieBreak(t *testing.T) {
	var sp Span
	if sp.Blame() != CauseService {
		t.Errorf("zero span Blame = %s, want service", sp.Blame())
	}
	sp.Stall[CauseRefresh] = 50
	sp.Stall[CauseShuffle] = 50
	if sp.Blame() != CauseRefresh {
		t.Errorf("tie Blame = %s, want refresh (lower-numbered)", sp.Blame())
	}
}

// TestNoteACTFirstWins checks a precharge-conflict re-activation cannot move
// the ACT stamp.
func TestNoteACTFirstWins(t *testing.T) {
	sp := &Span{}
	sp.NoteACT(100)
	sp.NoteACT(200)
	if sp.ACT != 100 {
		t.Errorf("ACT = %d, want 100 (first wins)", sp.ACT)
	}
}

// TestCauseStrings pins the cause labels the blame reports and Perfetto
// labels key on.
func TestCauseStrings(t *testing.T) {
	want := []string{
		"service", "bank-busy", "act-spacing", "bus", "refresh", "rfm",
		"shuffle", "swap", "throttle", "trr", "queue-full",
	}
	for c := Cause(0); c < NumCauses; c++ {
		if got := c.String(); got != want[c] {
			t.Errorf("Cause(%d).String() = %q, want %q", c, got, want[c])
		}
	}
	if got := NumCauses.String(); got != "Cause(11)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

// TestProbeEmission checks a probed tracker emits one KindSpan duration
// event per completed request, on a per-core lane TID, labeled by blame.
func TestProbeEmission(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Events: true})
	probe := rec.NewTrack("spans")
	tr := NewTracker(1, 0, probe)
	tr.SetCause(0, 0, CauseService)
	sp := tr.Start(2, 0, 9, false, 100)
	tr.SetCause(0, 140, CauseRefresh)
	tr.Complete(sp, 200, 240)

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != obs.KindSpan {
		t.Errorf("Kind = %v, want KindSpan", e.Kind)
	}
	if e.At != 100 || e.Dur != 140 {
		t.Errorf("At/Dur = %d/%d, want 100/140", e.At, e.Dur)
	}
	if e.TID != obs.ReqTID(2, 0) {
		t.Errorf("TID = %d, want ReqTID(2,0) = %d", e.TID, obs.ReqTID(2, 0))
	}
	if e.Label != "req:refresh" {
		t.Errorf("Label = %q, want req:refresh", e.Label)
	}
	if e.Aux != int64(sp.StallTotal()) {
		t.Errorf("Aux = %d, want StallTotal %d", e.Aux, sp.StallTotal())
	}
}
