// Package span is shadowtap: request-lifecycle span tracing with exact
// stall-cause attribution. A Tracker follows every memory request from core
// issue to data return, recording the enqueue/ACT/CAS/complete timestamps
// and attributing each tick the request spent waiting to exactly one cause
// (bank busy, ACT spacing, refresh, RFM, SHADOW shuffle blocking, RRS swap
// blocking, BlockHammer throttling, queue-full backpressure, ...).
//
// Attribution is conservation-exact by construction. Each bank carries a
// cause timeline — a current cause, the instant it started, and a cumulative
// per-cause tick array — and the memory controller moves the timeline at its
// scheduling decision points. A span snapshots the cumulative array when the
// request enqueues and again when its column command issues; the difference
// splits the request's entire wait into per-cause ticks that sum exactly to
// CAS - Enqueue (every tick of the interval belongs to exactly one timeline
// segment). Queue-full backpressure before a successful enqueue is accounted
// separately, so the full invariant is
//
//	sum(Span.Stall) == Span.CAS - Span.FirstAttempt
//
// for every completed span, enforced by regression tests across all
// mitigation schemes.
//
// Like shadowscope (package obs), the tracker is nil-safe: a nil *Tracker or
// *Collector is valid and inert, so the unprobed hot path costs one nil
// check, and span-tracked same-seed runs stay bit-identical to untracked
// ones. Nothing here reads the wall clock or unseeded entropy; the package
// is policed by the shadowvet determinism analyzer.
package span

import (
	"fmt"

	"shadow/internal/obs"
	"shadow/internal/timing"
)

// Cause labels one reason a queued request was not making progress. Every
// tick of a bank's timeline belongs to exactly one Cause.
type Cause uint8

// The attribution taxonomy. CauseService is the "no one to blame" bucket:
// the bank was actively working demand traffic (its own tRCD, column
// bursts, and the requests queued ahead).
const (
	// CauseService: the bank was serving demand work — row activation in
	// flight, column bursts, or earlier queued requests draining.
	CauseService Cause = iota
	// CauseBankBusy: precharge/recovery timing (tRP, tRAS) before the bank
	// could open the needed row.
	CauseBankBusy
	// CauseActSpacing: rank-level activation spacing (tRRD_S/L, tFAW).
	CauseActSpacing
	// CauseBus: column-command spacing or data-bus occupancy (tCCD_S/L,
	// burst collision).
	CauseBus
	// CauseRefresh: auto-refresh (REF/REFsb) drain and busy windows.
	CauseRefresh
	// CauseRFM: RFM busy time and RAA-saturation ACT holds for TRR-backed
	// schemes (PARFM, Mithril), plus the generic DDR5 RFM interface.
	CauseRFM
	// CauseShuffle: SHADOW's in-DRAM work inside tRFM — row shuffling and
	// incremental refresh blocking the bank.
	CauseShuffle
	// CauseSwap: RRS row-swap channel blocking.
	CauseSwap
	// CauseThrottle: BlockHammer delaying the activation.
	CauseThrottle
	// CauseTRR: MC-side target-row-refresh cycles (Graphene, PARA)
	// occupying the bank.
	CauseTRR
	// CauseQueueFull: backpressure — the core's request was rejected by a
	// full bank queue before it could enqueue.
	CauseQueueFull

	// NumCauses sizes per-cause arrays.
	NumCauses
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseService:
		return "service"
	case CauseBankBusy:
		return "bank-busy"
	case CauseActSpacing:
		return "act-spacing"
	case CauseBus:
		return "bus"
	case CauseRefresh:
		return "refresh"
	case CauseRFM:
		return "rfm"
	case CauseShuffle:
		return "shuffle"
	case CauseSwap:
		return "swap"
	case CauseThrottle:
		return "throttle"
	case CauseTRR:
		return "trr"
	case CauseQueueFull:
		return "queue-full"
	}
	return fmt.Sprintf("Cause(%d)", int(c)) //shadowvet:ignore allocflow -- unreachable fallback: every defined Cause returns a constant above
}

// Attributor lets a mitigation scheme claim the blame for the RFM busy
// windows it fills: SHADOW returns CauseShuffle (the window is spent
// shuffling rows and incrementally refreshing), TRR-backed schemes return
// CauseRFM. The device and controller resolve it once at construction via a
// type assertion on the installed mitigator.
type Attributor interface {
	RFMBlame() Cause
}

// Span is the lifecycle record of one memory request. Timestamps are absolute
// simulated ticks; a zero ACT means the request was served from an already
// open row (RowHit).
type Span struct {
	Core  int
	Bank  int // channel-local bank
	Row   int
	Write bool

	// FirstAttempt is when the core first tried to enqueue (equals Enqueue
	// unless the bank queue rejected it), Enqueue when the request entered
	// the controller queue, ACT when its own activation issued (0 on a row
	// hit), CAS when the column command issued, and Done when data was fully
	// returned (reads) or the write was accepted.
	FirstAttempt timing.Tick
	Enqueue      timing.Tick
	ACT          timing.Tick
	CAS          timing.Tick
	Done         timing.Tick
	RowHit       bool

	// Stall attributes every tick of [FirstAttempt, CAS) to one cause:
	// sum(Stall) == CAS - FirstAttempt, exactly.
	Stall [NumCauses]timing.Tick

	// base is the bank timeline snapshot taken at Enqueue.
	base [NumCauses]timing.Tick
}

// Resident returns the request's total wait, first enqueue attempt to column
// issue.
func (sp *Span) Resident() timing.Tick { return sp.CAS - sp.FirstAttempt }

// StallTotal sums the per-cause attribution; equals Resident for every
// completed span (the conservation invariant).
func (sp *Span) StallTotal() timing.Tick {
	var t timing.Tick
	for _, v := range sp.Stall {
		t += v
	}
	return t
}

// Blame returns the dominant stall cause (CauseService when nothing
// dominates; ties break toward the lower-numbered cause).
func (sp *Span) Blame() Cause {
	best, bestV := CauseService, timing.Tick(0)
	for c := Cause(0); c < NumCauses; c++ {
		if sp.Stall[c] > bestV {
			best, bestV = c, sp.Stall[c]
		}
	}
	return best
}

// NoteBackpressure records that the core first tried to enqueue at
// firstAttempt and was rejected until the eventual Enqueue; the rejected
// window is attributed to CauseQueueFull. Safe on a nil receiver.
func (sp *Span) NoteBackpressure(firstAttempt timing.Tick) {
	if sp == nil || firstAttempt >= sp.Enqueue {
		return
	}
	sp.FirstAttempt = firstAttempt
	sp.Stall[CauseQueueFull] = sp.Enqueue - firstAttempt
}

// NoteACT stamps the request's own activation (first one wins; a precharge
// conflict can re-activate without moving the stamp). Safe on a nil
// receiver.
func (sp *Span) NoteACT(now timing.Tick) {
	if sp != nil && sp.ACT == 0 {
		sp.ACT = now
	}
}

// Aggregate is the rolled-up blame of a set of completed spans.
type Aggregate struct {
	Spans   int64
	Reads   int64
	Writes  int64
	RowHits int64
	// Dropped counts spans past the retention cap; they are still fully
	// accounted in the aggregate, only their individual records are gone.
	Dropped int64
	// Resident sums CAS - FirstAttempt; Stall[c] sums per-cause attribution.
	// sum(Stall) == Resident (conservation).
	Resident timing.Tick
	Stall    [NumCauses]timing.Tick
}

func (a *Aggregate) add(sp *Span) {
	a.Spans++
	if sp.Write {
		a.Writes++
	} else {
		a.Reads++
	}
	if sp.RowHit {
		a.RowHits++
	}
	a.Resident += sp.Resident()
	for c, v := range sp.Stall {
		a.Stall[c] += v
	}
}

// Merge folds another aggregate (e.g. another channel's) into a.
func (a *Aggregate) Merge(b Aggregate) {
	a.Spans += b.Spans
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.RowHits += b.RowHits
	a.Dropped += b.Dropped
	a.Resident += b.Resident
	for c, v := range b.Stall {
		a.Stall[c] += v
	}
}

// StallTotal sums the per-cause attribution.
func (a Aggregate) StallTotal() timing.Tick {
	var t timing.Tick
	for _, v := range a.Stall {
		t += v
	}
	return t
}

// Conserved reports the conservation invariant: attributed ticks sum exactly
// to total wait ticks.
func (a Aggregate) Conserved() bool { return a.StallTotal() == a.Resident }

// Violation returns "" while the conservation invariant holds, otherwise a
// description of the mismatch. The flight-recorder conservation watchdog
// trips on a non-empty result.
func (a Aggregate) Violation() string {
	if a.Conserved() {
		return ""
	}
	return fmt.Sprintf("span conservation violated: attributed %d ticks != resident %d ticks over %d spans (delta %+d)",
		a.StallTotal(), a.Resident, a.Spans, a.StallTotal()-a.Resident)
}

// bankTimeline attributes a bank's time: every tick since `since` belongs to
// `cause`; earlier ticks are folded into cum.
type bankTimeline struct {
	cause Cause
	since timing.Tick
	cum   [NumCauses]timing.Tick
}

// snapshot returns cumulative per-cause ticks as of now, without mutating.
func (tl *bankTimeline) snapshot(now timing.Tick) [NumCauses]timing.Tick {
	s := tl.cum
	if now > tl.since {
		s[tl.cause] += now - tl.since
	}
	return s
}

// set folds the elapsed segment and starts a new one.
func (tl *bankTimeline) set(now timing.Tick, c Cause) {
	if now > tl.since {
		tl.cum[tl.cause] += now - tl.since
		tl.since = now
	}
	tl.cause = c
}

// busyNote marks a bank-busy window whose blame is known in advance (REF,
// REFsb, RFM): while the window is open, ACT waits on the bank are
// attributed to its cause rather than generic bank-busy.
type busyNote struct {
	until timing.Tick
	cause Cause
}

// defaultMaxSpans bounds per-tracker span retention (~4 MB per tracker at
// full capacity); the aggregate keeps counting past the cap.
const defaultMaxSpans = 1 << 16

// Tracker traces the requests of one channel. All methods are safe on a nil
// receiver (inert), so simulation code threads it unconditionally.
type Tracker struct {
	maxSpans int
	probe    *obs.Probe
	banks    []bankTimeline
	busy     []busyNote
	agg      Aggregate
	spans    []*Span
	// free recycles spans dropped past the retention cap: once retention is
	// full every new span is aggregate-only, so Start can reuse the dropped
	// object (after a whole-struct reset) instead of allocating — the span
	// path of a long run reaches a zero-allocation steady state.
	free []*Span
	// lanes assigns completed spans to per-core Perfetto rows: a request
	// takes the first lane free at its enqueue time, so concurrent requests
	// render as parallel flame rows.
	lanes [][]timing.Tick
}

// NewTracker builds a tracker for one channel of `banks` banks. maxSpans
// bounds individual span retention (0 = default 65536; the aggregate is
// unaffected). probe, when non-nil, receives one duration event per
// completed request on a per-core lane track.
func NewTracker(banks, maxSpans int, probe *obs.Probe) *Tracker {
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	return &Tracker{
		maxSpans: maxSpans,
		probe:    probe,
		banks:    make([]bankTimeline, banks),
		busy:     make([]busyNote, banks),
	}
}

// SetCause moves bank's timeline to cause c at time now. The controller
// calls this at every scheduling decision point; between calls the cause
// holds steady (the limiting factor identified at a quiescent instant stays
// the limiting factor until the next event).
func (t *Tracker) SetCause(bank int, now timing.Tick, c Cause) {
	if t == nil {
		return
	}
	t.banks[bank].set(now, c)
}

// SetAllCauses moves every bank's timeline to cause c (refresh drains, RRS
// channel blocking).
func (t *Tracker) SetAllCauses(now timing.Tick, c Cause) {
	if t == nil {
		return
	}
	for i := range t.banks {
		t.banks[i].set(now, c)
	}
}

// NoteBusy opens a pre-attributed busy window on bank until `until` and
// moves the timeline to its cause. The device calls it when REF/REFsb/RFM
// commands start their busy time.
func (t *Tracker) NoteBusy(bank int, now, until timing.Tick, c Cause) {
	if t == nil {
		return
	}
	t.busy[bank] = busyNote{until: until, cause: c}
	t.banks[bank].set(now, c)
}

// NoteAllBusy opens a pre-attributed busy window on every bank (all-bank
// REF).
func (t *Tracker) NoteAllBusy(now, until timing.Tick, c Cause) {
	if t == nil {
		return
	}
	for i := range t.banks {
		t.busy[i] = busyNote{until: until, cause: c}
		t.banks[i].set(now, c)
	}
}

// BusyCause resolves the blame for an ACT blocked on bank readiness at time
// now: the open busy window's cause if one covers now, else def (generic
// precharge/restore recovery).
func (t *Tracker) BusyCause(bank int, now timing.Tick, def Cause) Cause {
	if t == nil {
		return def
	}
	if n := t.busy[bank]; now < n.until {
		return n.cause
	}
	return def
}

// Start opens a span for a request entering bank's queue at time now.
// Returns nil on a nil tracker.
func (t *Tracker) Start(core, bank, row int, write bool, now timing.Tick) *Span {
	if t == nil {
		return nil
	}
	var sp *Span
	if n := len(t.free); n > 0 {
		sp = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		sp = &Span{} //shadowvet:ignore allocflow -- slab refill when the free list is empty; live spans are bounded, so steady state always pops
	}
	*sp = Span{
		Core: core, Bank: bank, Row: row, Write: write,
		FirstAttempt: now, Enqueue: now,
	}
	sp.base = t.banks[bank].snapshot(now)
	return sp
}

// Complete closes a span at its column issue (cas) with completion time
// done: the bank timeline delta since Enqueue becomes the span's stall
// attribution, the aggregate absorbs it, and — when a probe is attached — a
// per-request duration event lands on the span's core lane track.
func (t *Tracker) Complete(sp *Span, cas, done timing.Tick) {
	if t == nil || sp == nil {
		return
	}
	snap := t.banks[sp.Bank].snapshot(cas)
	for c := range snap {
		sp.Stall[c] += snap[c] - sp.base[c]
	}
	sp.CAS, sp.Done = cas, done
	sp.RowHit = sp.ACT == 0
	t.agg.add(sp)
	recycle := false
	if len(t.spans) < t.maxSpans {
		t.spans = append(t.spans, sp) //shadowvet:ignore allocflow -- bounded by maxSpans; once full, spans recycle through the free list
	} else {
		t.agg.Dropped++
		recycle = true
	}
	if t.probe != nil {
		t.probe.Emit(obs.Event{
			At: sp.Enqueue, Dur: done - sp.Enqueue,
			Kind: obs.KindSpan,
			TID:  obs.ReqTID(sp.Core, t.lane(sp)),
			Bank: sp.Bank, Row: sp.Row,
			Aux:   int64(sp.StallTotal()),
			Label: "req:" + sp.Blame().String(), //shadowvet:ignore allocflow -- span-trace label, built only with a probe attached; the probed dynamic gate still holds 0 allocs/op
		})
	}
	if recycle {
		// Recycle only after the probe has read the span; the caller's
		// Request no longer references it (requests reset their Span
		// pointer when recycled themselves).
		t.free = append(t.free, sp) //shadowvet:ignore allocflow -- free-list push reuses capacity released by earlier pops
	}
}

// lane picks the first per-core flame row free at the span's enqueue time
// (deterministic first-fit; rows are bounded by obs.ReqLanes, matching the
// cores' MSHR-bounded parallelism).
func (t *Tracker) lane(sp *Span) int {
	for len(t.lanes) <= sp.Core {
		t.lanes = append(t.lanes, nil) //shadowvet:ignore allocflow -- lanes grow to the core count on first touch only
	}
	rows := t.lanes[sp.Core]
	for i, busyUntil := range rows {
		if busyUntil <= sp.Enqueue {
			t.lanes[sp.Core][i] = sp.Done
			return i
		}
	}
	if len(rows) < obs.ReqLanes {
		t.lanes[sp.Core] = append(rows, sp.Done) //shadowvet:ignore allocflow -- per-core lane rows bounded by obs.ReqLanes; first-touch growth only
		return len(rows)
	}
	// All lanes busy: reuse the earliest-free one (slices may overlap).
	best := 0
	for i := 1; i < len(rows); i++ {
		if rows[i] < rows[best] {
			best = i
		}
	}
	t.lanes[sp.Core][best] = sp.Done
	return best
}

// Aggregate returns the tracker's rolled-up blame.
func (t *Tracker) Aggregate() Aggregate {
	if t == nil {
		return Aggregate{}
	}
	return t.agg
}

// Spans returns the retained spans in completion order.
func (t *Tracker) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Collector owns span tracking for one multi-channel run: one Tracker per
// channel, created on demand by the simulator. A nil *Collector is valid
// and hands out nil trackers.
type Collector struct {
	maxSpans int
	trackers []*Tracker
}

// NewCollector builds a collector. maxSpans bounds per-tracker span
// retention (0 = default).
func NewCollector(maxSpans int) *Collector {
	return &Collector{maxSpans: maxSpans}
}

// ForChannel creates (or returns) channel ch's tracker. Safe on a nil
// receiver (returns a nil, inert tracker).
func (c *Collector) ForChannel(ch, banks int, probe *obs.Probe) *Tracker {
	if c == nil {
		return nil
	}
	for len(c.trackers) <= ch {
		c.trackers = append(c.trackers, nil)
	}
	if c.trackers[ch] == nil {
		c.trackers[ch] = NewTracker(banks, c.maxSpans, probe)
	}
	return c.trackers[ch]
}

// Trackers returns the per-channel trackers (nil entries possible).
func (c *Collector) Trackers() []*Tracker {
	if c == nil {
		return nil
	}
	return c.trackers
}

// Aggregate merges every channel's blame.
func (c *Collector) Aggregate() Aggregate {
	if c == nil {
		return Aggregate{}
	}
	var a Aggregate
	for _, t := range c.trackers {
		if t != nil {
			a.Merge(t.agg)
		}
	}
	return a
}

// Spans returns every channel's retained spans, channel-major.
func (c *Collector) Spans() []*Span {
	if c == nil {
		return nil
	}
	var out []*Span
	for _, t := range c.trackers {
		out = append(out, t.Spans()...)
	}
	return out
}
