package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shadow/internal/timing"
)

// TestInspectorEndpoints drives an inspector with a stepped fake clock and
// checks all four endpoints serve coherent snapshots.
func TestInspectorEndpoints(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	ins := NewInspector(clock)

	metricsCalls, blameCalls := 0, 0
	ins.SetSources(InspectorSources{
		Metrics: func() []byte { metricsCalls++; return []byte(`{"m":1}`) },
		Blame:   func() []byte { blameCalls++; return []byte(`[{"label":"run<1>"}]`) },
		Events:  func() int64 { return 42 },
	})

	srv := httptest.NewServer(ins.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Before any observation: valid empty documents, not errors.
	if code, body := get("/metrics.json"); code != 200 || body != "{}\n" {
		t.Errorf("pre-run /metrics.json = %d %q", code, body)
	}
	if code, body := get("/blame.json"); code != 200 || body != "[]\n" {
		t.Errorf("pre-run /blame.json = %d %q", code, body)
	}

	ins.Observe("fig8/mix/h4096", 25*timing.Microsecond, 100*timing.Microsecond)

	var st struct {
		Label      string  `json:"label"`
		Done       bool    `json:"done"`
		SimNowPS   int64   `json:"sim_now_ps"`
		SimTotalPS int64   `json:"sim_total_ps"`
		Percent    float64 `json:"percent"`
		Events     int64   `json:"events"`
	}
	_, body := get("/status.json")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status.json does not parse: %v\n%s", err, body)
	}
	if st.Label != "fig8/mix/h4096" || st.Done || st.Percent != 25 || st.Events != 42 {
		t.Errorf("status = %+v", st)
	}
	if st.SimNowPS != int64(25*timing.Microsecond) || st.SimTotalPS != int64(100*timing.Microsecond) {
		t.Errorf("sim times = %d/%d", st.SimNowPS, st.SimTotalPS)
	}

	if _, body := get("/metrics.json"); body != `{"m":1}` {
		t.Errorf("/metrics.json = %q", body)
	}
	if _, body := get("/blame.json"); !strings.Contains(body, "run<1>") {
		t.Errorf("/blame.json = %q", body)
	}

	// HTML overview: escaped label and links to the JSON endpoints.
	_, html := get("/")
	for _, want := range []string{"fig8/mix/h4096", "running", "status.json", "blame.json", "run&lt;1&gt;"} {
		if !strings.Contains(html, want) {
			t.Errorf("overview missing %q:\n%s", want, html)
		}
	}
	if code, _ := get("/nosuch"); code != 404 {
		t.Errorf("unknown path served %d, want 404", code)
	}

	// Observations inside the 1s refresh window update progress but do not
	// re-run the sources.
	calls := metricsCalls
	now = now.Add(300 * time.Millisecond)
	ins.Observe("fig8/mix/h4096", 50*timing.Microsecond, 100*timing.Microsecond)
	if metricsCalls != calls {
		t.Errorf("sources re-ran inside the refresh window (%d -> %d)", calls, metricsCalls)
	}
	_, body = get("/status.json")
	if !strings.Contains(body, `"percent":50`) {
		t.Errorf("progress not updated inside window: %s", body)
	}

	// Past the window: sources refresh.
	now = now.Add(time.Second)
	ins.Observe("fig8/mix/h4096", 75*timing.Microsecond, 100*timing.Microsecond)
	if metricsCalls == calls {
		t.Error("sources did not refresh after the window elapsed")
	}

	// Done: final snapshot, 100%, state flips.
	ins.Done()
	_, body = get("/status.json")
	if !strings.Contains(body, `"done":true`) || !strings.Contains(body, `"percent":100`) {
		t.Errorf("final status: %s", body)
	}
	if _, html := get("/"); !strings.Contains(html, "done") {
		t.Errorf("overview after Done missing state:\n%s", html)
	}
	if blameCalls == 0 {
		t.Error("blame source never ran")
	}

	// Nil receiver: observation entry points are inert.
	var nilIns *Inspector
	nilIns.SetSources(InspectorSources{})
	nilIns.Observe("x", 0, 0)
	nilIns.Done()
}

// TestInspectorScrapeEndpoints covers the Prometheus exposition, the
// liveness probe, the flight dump, and the no-store cache contract on every
// JSON endpoint.
func TestInspectorScrapeEndpoints(t *testing.T) {
	now := time.Unix(0, 0)
	ins := NewInspector(func() time.Time { return now })

	m := newMetrics(timing.Microsecond)
	m.Counter("run/dram/flips_total").Add(2)
	var promBuf []byte
	ins.SetSources(InspectorSources{
		Prom: func() []byte {
			var b strings.Builder
			m.WritePrometheus(&b)
			promBuf = []byte(b.String())
			return promBuf
		},
		Flight: func() []byte { return []byte(`{"capacity":8,"events":[]}` + "\n") },
		Events: func() int64 { return 7 },
	})

	srv := httptest.NewServer(ins.Handler())
	defer srv.Close()

	get := func(path string) (int, string, map[string][]string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// Pre-run /flight.json: a valid empty document.
	if code, body, _ := get("/flight.json"); code != 200 || body != "{}\n" {
		t.Errorf("pre-run /flight.json = %d %q", code, body)
	}

	ins.Observe("shadow/mix", 30*timing.Microsecond, 60*timing.Microsecond)

	code, body, hdr := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr["Content-Type"][0]; ct != ContentTypePrometheus {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		`shadow_run_info{label="shadow/mix"} 1`,
		"shadow_run_done 0",
		"shadow_run_progress_ratio 0.5",
		"shadow_run_events_total 7",
		`shadow_counter{name="run/dram/flips_total"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Every line must be valid exposition text.
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("/metrics line %d invalid: %q", i+1, line)
		}
	}

	if _, body, _ := get("/flight.json"); !strings.Contains(body, `"capacity":8`) {
		t.Errorf("/flight.json = %q", body)
	}

	for _, path := range []string{"/status.json", "/metrics.json", "/blame.json", "/flight.json", "/metrics", "/healthz"} {
		if _, _, hdr := get(path); len(hdr["Cache-Control"]) == 0 || hdr["Cache-Control"][0] != "no-store" {
			t.Errorf("%s lacks Cache-Control: no-store (%v)", path, hdr["Cache-Control"])
		}
	}

	ins.Done()
	if _, body, _ := get("/metrics"); !strings.Contains(body, "shadow_run_done 1") {
		t.Errorf("/metrics after Done:\n%s", body)
	}
}

// TestInspectorLabelChangeResetsRate checks a new run label restarts the
// rate baseline instead of blending two runs' progress.
func TestInspectorLabelChangeResetsRate(t *testing.T) {
	now := time.Unix(0, 0)
	ins := NewInspector(func() time.Time { return now })

	ins.Observe("a", 10*timing.Microsecond, 100*timing.Microsecond)
	now = now.Add(2 * time.Second)
	ins.Observe("a", 90*timing.Microsecond, 100*timing.Microsecond)

	ins.Observe("b", 5*timing.Microsecond, 100*timing.Microsecond)
	st := ins.snapshot().st
	if st.Label != "b" {
		t.Fatalf("label = %q, want b", st.Label)
	}
	if st.SimUSPerSec != 0 {
		t.Errorf("rate carried across label change: %f", st.SimUSPerSec)
	}
}

// TestInspectorPerPointGauges is the last-writer-clobber regression: a sweep
// moving through several labeled points must keep one progress/done series
// per point on /metrics instead of a single shared gauge that only describes
// the latest point.
func TestInspectorPerPointGauges(t *testing.T) {
	now := time.Unix(0, 0)
	ins := NewInspector(func() time.Time { return now })
	srv := httptest.NewServer(ins.Handler())
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	ins.Observe("shadow/mix/h64", 50*timing.Microsecond, 100*timing.Microsecond)
	// The sweep moves to its second point: the first is thereby complete.
	ins.Observe("baseline/mix/h64", 25*timing.Microsecond, 100*timing.Microsecond)

	body := scrape()
	for _, want := range []string{
		`shadow_run_point_progress_ratio{point="shadow/mix/h64"} 0.5`,
		`shadow_run_point_progress_ratio{point="baseline/mix/h64"} 0.25`,
		`shadow_run_point_done{point="shadow/mix/h64"} 1`,
		`shadow_run_point_done{point="baseline/mix/h64"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The shared gauge still describes the current point only.
	if !strings.Contains(body, "shadow_run_progress_ratio 0.25") {
		t.Errorf("shared gauge wrong:\n%s", body)
	}

	ins.Done()
	body = scrape()
	for _, want := range []string{
		`shadow_run_point_done{point="baseline/mix/h64"} 1`,
		`shadow_run_point_progress_ratio{point="baseline/mix/h64"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics after Done missing %q:\n%s", want, body)
		}
	}
}

// TestInspectorSetWorker: the fleet worker identity reaches /status.json and
// the shadow_worker_info gauge, and stays absent when unset.
func TestInspectorSetWorker(t *testing.T) {
	now := time.Unix(0, 0)
	ins := NewInspector(func() time.Time { return now })
	ins.Observe("shadow/mix", 1, 2)

	var st struct {
		Worker string `json:"worker"`
	}
	srv := httptest.NewServer(ins.Handler())
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); strings.Contains(body, "shadow_worker_info") {
		t.Errorf("worker gauge emitted without an identity:\n%s", body)
	}
	if err := json.Unmarshal([]byte(get("/status.json")), &st); err != nil || st.Worker != "" {
		t.Fatalf("status worker = %q err %v, want empty", st.Worker, err)
	}

	ins.SetWorker("sim3")
	if body := get("/metrics"); !strings.Contains(body, `shadow_worker_info{worker="sim3"} 1`) {
		t.Errorf("/metrics missing worker identity:\n%s", body)
	}
	if err := json.Unmarshal([]byte(get("/status.json")), &st); err != nil || st.Worker != "sim3" {
		t.Fatalf("status worker = %q err %v, want sim3", st.Worker, err)
	}

	var nilIns *Inspector
	nilIns.SetWorker("x") // must not panic
}
