package obs

import (
	"strings"
	"testing"
	"time"

	"shadow/internal/timing"
)

func TestNilProbeIsInert(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports Enabled")
	}
	if q := p.ForChannel(3); q != nil {
		t.Fatalf("nil probe ForChannel = %v, want nil", q)
	}
	p.Emit(Event{Kind: KindACT}) // must not panic
	p.Counter("c").Inc()
	p.Gauge("g").Set(7)
	p.Histogram("h").Observe(42)
	p.Series("s").Add(timing.Microsecond, 1)
	if got := p.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	if got := p.Histogram("h").Mean(); got != 0 {
		t.Fatalf("nil histogram Mean = %g, want 0", got)
	}
	if got := p.Series("s").Values(); got != nil {
		t.Fatalf("nil series Values = %v, want nil", got)
	}
}

func TestNilMetricsRegistry(t *testing.T) {
	// Events-only recorder: probe is live but the registry is nil, so
	// instruments must still be inert.
	rec := NewRecorder(Options{Events: true})
	p := rec.NewTrack("run")
	p.Counter("c").Inc()
	p.Histogram("h").Observe(1)
	if rec.Metrics() != nil {
		t.Fatal("events-only recorder has a metrics registry")
	}
}

func TestCounterGauge(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true})
	p := rec.NewTrack("run")
	c := p.Counter("acts")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := p.Counter("acts"); got != c {
		t.Fatal("Counter does not return the same instrument for the same name")
	}
	g := p.Gauge("depth")
	g.Set(9)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 4, 7, 1000} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 1016 {
		t.Fatalf("count/sum = %d/%d, want 7/1016", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},      // 0
		{Lo: 1, Hi: 1, Count: 2},      // 1, 1
		{Lo: 2, Hi: 3, Count: 1},      // 3
		{Lo: 4, Hi: 7, Count: 2},      // 4, 7
		{Lo: 512, Hi: 1023, Count: 1}, // 1000
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSeriesBucketing(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true, SampleInterval: 10})
	s := rec.NewTrack("run").Series("rfm")
	s.Add(0, 1)
	s.Add(9, 1)  // same bucket
	s.Add(10, 2) // next bucket
	s.Add(35, 5) // bucket 3, skipping 2
	want := []float64{2, 2, 0, 5}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestForChannelPrefixesAndPIDs(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true, Events: true})
	p := rec.NewTrack("run")
	p2 := rec.NewTrack("other")
	ch1 := p2.ForChannel(1)
	ch1.Counter("acts").Inc()
	ch1.Emit(Event{At: 5, Kind: KindACT, Bank: 0})
	if got := rec.Metrics().Counter("other/ch1/acts").Value(); got != 1 {
		t.Fatalf("other/ch1/acts = %d, want 1", got)
	}
	ev := rec.Events()
	if len(ev) != 1 || ev[0].PID != trackStride+1 {
		t.Fatalf("event PID = %+v, want pid %d", ev, trackStride+1)
	}
	if got := rec.trackName(ev[0].PID); got != "other ch1" {
		t.Fatalf("trackName = %q, want %q", got, "other ch1")
	}
	if got := p.ForChannel(0); got != p {
		t.Fatal("ForChannel(0) must return the base probe")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForChannel out of range did not panic")
		}
	}()
	p.ForChannel(trackStride)
}

func TestRecorderDropsAfterMaxEvents(t *testing.T) {
	rec := NewRecorder(Options{Events: true, MaxEvents: 2})
	p := rec.NewTrack("run")
	for i := 0; i < 5; i++ {
		p.Emit(Event{At: timing.Tick(i), Kind: KindACT})
	}
	if got := rec.EventCount(); got != 2 {
		t.Fatalf("EventCount = %d, want 2", got)
	}
	if got := rec.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestMetricsDumpJSONAndCSV(t *testing.T) {
	rec := NewRecorder(Options{Metrics: true, SampleInterval: timing.Microsecond})
	p := rec.NewTrack("run")
	p.Counter("acts").Add(12)
	p.Gauge("depth").Set(4)
	p.Histogram("lat").Observe(100)
	p.Histogram("lat").Observe(200)
	p.Series("rfm").Add(0, 1)
	p.Series("rfm").Add(2*timing.Microsecond, 3)

	var js strings.Builder
	if err := rec.Metrics().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"sample_interval_ps": 1000000`,
		`"run/acts": 12`,
		`"run/depth": 4`,
		`"count": 2`,
		`"mean": 150`,
		`"run/rfm": [`,
	} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON dump missing %q:\n%s", want, js.String())
		}
	}

	var csv strings.Builder
	if err := rec.Metrics().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kind,name,field,value\n",
		"counter,run/acts,value,12\n",
		"gauge,run/depth,value,4\n",
		"histogram,run/lat,count,2\n",
		"histogram,run/lat,mean,150.000\n",
		"series,run/rfm,t0,1\n",
		"series,run/rfm,t2,3\n",
	} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("CSV dump missing %q:\n%s", want, csv.String())
		}
	}

	// Nil registry: valid empty documents.
	var nilM *Metrics
	js.Reset()
	if err := nilM.WriteJSON(&js); err != nil || js.String() != "{}\n" {
		t.Fatalf("nil WriteJSON = %q, %v", js.String(), err)
	}
	csv.Reset()
	if err := nilM.WriteCSV(&csv); err != nil || csv.String() != "kind,name,field,value\n" {
		t.Fatalf("nil WriteCSV = %q, %v", csv.String(), err)
	}
}

func TestHeartbeat(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var out strings.Builder
	n := int64(0)
	h := NewHeartbeat(&out, "sim", 100*timing.Microsecond, clock).
		WithEvents(func() int64 { return n })

	h.Tick(10 * timing.Microsecond) // first tick always prints
	if !strings.Contains(out.String(), "10.0%") {
		t.Fatalf("first tick did not print percentage: %q", out.String())
	}

	before := out.Len()
	h.Tick(20 * timing.Microsecond) // same wall instant: rate-limited
	if out.Len() != before {
		t.Fatal("heartbeat printed before minGap elapsed")
	}

	now = now.Add(300 * time.Millisecond) // stepped, but below the 500ms gap
	h.Tick(30 * timing.Microsecond)
	if out.Len() != before {
		t.Fatal("heartbeat printed 300ms after the last print (gap is 500ms)")
	}

	now = now.Add(700 * time.Millisecond) // 1s past the last print: due
	n = 500
	h.Tick(60 * timing.Microsecond)
	if !strings.Contains(out.String(), "60.0%") || !strings.Contains(out.String(), "500 events/s") {
		t.Fatalf("second tick output: %q", out.String())
	}
	// 50 sim-us advanced over 1 wall second.
	if !strings.Contains(out.String(), "50.0 sim-us/s") {
		t.Fatalf("sim rate missing: %q", out.String())
	}

	h.Done()
	if !strings.Contains(out.String(), "100.0%") || !strings.HasSuffix(out.String(), "\n") {
		t.Fatalf("Done output: %q", out.String())
	}

	// Nil receiver and never-printed Done are silent.
	var nilH *Heartbeat
	nilH.Tick(0)
	nilH.Done()
	var quiet strings.Builder
	NewHeartbeat(&quiet, "x", 0, clock).Done()
	if quiet.Len() != 0 {
		t.Fatalf("Done printed without any Tick: %q", quiet.String())
	}
}

func TestKindStringAndCategory(t *testing.T) {
	cases := []struct {
		k   Kind
		s   string
		cat string
	}{
		{KindACT, "ACT", "cmd"},
		{KindRFM, "RFM", "cmd"},
		{KindShuffle, "shuffle", "mitigation"},
		{KindSwap, "swap", "mitigation"},
		{KindThrottle, "throttle", "mitigation"},
		{KindFlip, "flip", "fault"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.s {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.s)
		}
		if got := c.k.Category(); got != c.cat {
			t.Errorf("Kind(%d).Category() = %q, want %q", c.k, got, c.cat)
		}
	}
	if got := Kind(250).String(); got != "Kind(250)" {
		t.Errorf("unknown kind String = %q", got)
	}
}
