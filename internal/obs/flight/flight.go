// Package flight is shadowflight: an always-on, fixed-capacity flight
// recorder for the simulator's hot-path event stream, plus the anomaly
// watchdogs that freeze and dump it.
//
// The Ring implements obs.EventSink: attached through obs.Options.Flight it
// receives every emitted event — DRAM commands with bank/row/tick, the
// mitigation actions (RFM, shuffle, swap, throttle, TRR), faults, and span
// milestones — overwriting the oldest once full. Recording is zero-alloc
// and mutex-protected, so an Inspector goroutine can Snapshot the window
// concurrently with the simulation writer under -race.
//
// Watchdogs (watchdog.go) are invariant probes run off the hot path, at the
// progress cadence: span-conservation violation, stall spike (p99 over the
// ring's recent request spans), bit-flip detection, and scheduler-
// equivalence divergence. The first trip freezes the ring, so the dump
// (dump.go: deterministic JSON, no wall-clock or host fields) preserves the
// event window that *led up to* the anomaly rather than whatever happened
// after it.
//
// Like the rest of the obs layer the package is nil-safe: a nil *Ring,
// *Watch, or *CmdHash is valid and inert, so callers wire them
// unconditionally.
package flight

import (
	"sync"

	"shadow/internal/obs"
)

// DefaultCapacity is the ring capacity used when none is given: deep enough
// to hold several refresh intervals' worth of commands around an anomaly,
// small enough (~0.3 MB) to leave always on.
const DefaultCapacity = 4096

// Ring is a fixed-capacity, overwrite-oldest event buffer. All methods are
// safe on a nil receiver and safe for concurrent use; Record is zero-alloc.
type Ring struct {
	mu     sync.Mutex
	buf    []obs.Event
	next   int  // index the next event lands on
	filled bool // buf has wrapped at least once
	total  int64
	frozen bool
	counts [obs.NumKinds]int64
}

// NewRing builds a ring holding the last capacity events (DefaultCapacity
// when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]obs.Event, capacity)}
}

// Record implements obs.EventSink: append e, overwriting the oldest event
// once the ring is full. No-op once frozen.
func (r *Ring) Record(e obs.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen {
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.filled = true
	}
	r.total++
	if int(e.Kind) < len(r.counts) {
		r.counts[e.Kind]++
	}
}

// Freeze stops recording; subsequent Record calls are dropped so the
// current window survives until dumped. Idempotent.
func (r *Ring) Freeze() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frozen = true
}

// Frozen reports whether the ring has been frozen.
func (r *Ring) Frozen() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Snapshot returns the buffered events oldest-first. The slice is a copy;
// the writer may keep recording while the caller inspects it.
func (r *Ring) Snapshot() []obs.Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.Event, 0, r.lenLocked())
	if r.filled {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events the ring currently holds (≤ Cap).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *Ring) lenLocked() int {
	if r.filled {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns how many events have ever been recorded (including
// overwritten ones).
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// KindCount returns how many events of kind k have ever been recorded —
// counts survive overwriting, so watchdogs (flip detection) see every
// occurrence, not just those still buffered.
func (r *Ring) KindCount(k obs.Kind) int64 {
	if r == nil || int(k) >= int(obs.NumKinds) {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[k]
}
