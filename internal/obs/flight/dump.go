package flight

import (
	"encoding/json"
	"io"
)

// EventDump is one buffered event in the dump: simulated picoseconds only,
// kinds spelled out, empty fields omitted. No wall-clock or host fields —
// same-seed runs produce byte-identical dumps.
type EventDump struct {
	AtPS  int64  `json:"at_ps"`
	DurPS int64  `json:"dur_ps,omitempty"`
	Kind  string `json:"kind"`
	PID   int    `json:"pid,omitempty"`
	TID   int    `json:"tid,omitempty"`
	Bank  int    `json:"bank"`
	Row   int    `json:"row"`
	Aux   int64  `json:"aux,omitempty"`
	Label string `json:"label,omitempty"`
}

// Dump is the serialized flight recorder: the ring's state plus the trip
// that froze it, if any.
type Dump struct {
	Capacity int `json:"capacity"`
	// Total counts every event ever recorded; Total - len(Events) of them
	// have been overwritten.
	Total  int64 `json:"events_total"`
	Frozen bool  `json:"frozen"`
	Trip   *Trip `json:"trip,omitempty"`
	// Events is the preserved window, oldest first.
	Events []EventDump `json:"events"`
}

// BuildDump snapshots r (oldest-first) into a Dump carrying trip. Safe on a
// nil ring: the result is a valid empty dump.
func BuildDump(r *Ring, trip *Trip) Dump {
	events := r.Snapshot()
	d := Dump{
		Capacity: r.Cap(),
		Total:    r.Total(),
		Frozen:   r.Frozen(),
		Trip:     trip,
		Events:   make([]EventDump, 0, len(events)),
	}
	for _, e := range events {
		d.Events = append(d.Events, EventDump{
			AtPS:  int64(e.At),
			DurPS: int64(e.Dur),
			Kind:  e.Kind.String(),
			PID:   e.PID,
			TID:   e.TID,
			Bank:  e.Bank,
			Row:   e.Row,
			Aux:   e.Aux,
			Label: e.Label,
		})
	}
	return d
}

// WriteDump writes the ring as deterministic, indented JSON.
func WriteDump(w io.Writer, r *Ring, trip *Trip) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildDump(r, trip))
}

// WriteDump writes the watch's ring and trip as deterministic JSON — the
// form the cmd layer and the Inspector's /flight.json serve.
func (w *Watch) WriteDump(out io.Writer) error {
	if w == nil {
		return WriteDump(out, nil, nil)
	}
	return WriteDump(out, w.ring, w.trip)
}
