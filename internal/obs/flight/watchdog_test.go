package flight

import (
	"strings"
	"testing"

	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

func TestWatchFreezesRingOnFirstTrip(t *testing.T) {
	r := NewRing(8)
	w := NewWatch(r)
	var fired []Trip
	w.OnTrip(func(tr Trip) { fired = append(fired, tr) })

	armed := false
	w.Add(Check{Name: "a", Probe: func(timing.Tick) (string, bool) { return "first", armed }})
	w.Add(Check{Name: "b", Probe: func(timing.Tick) (string, bool) { return "second", true }})

	r.Record(obs.Event{At: 1, Kind: obs.KindACT})
	// Check order: "a" is clean, so "b" trips first.
	tr := w.Check(100)
	if tr == nil || tr.Watchdog != "b" || tr.Detail != "second" || tr.AtPS != 100 {
		t.Fatalf("trip = %+v", tr)
	}
	if !r.Frozen() {
		t.Fatal("ring not frozen on trip")
	}
	// Once tripped, later checks change nothing — even if an earlier check
	// would now also trip.
	armed = true
	if tr2 := w.Check(200); tr2 != tr {
		t.Fatalf("second Check returned a new trip: %+v", tr2)
	}
	if got := w.Tripped(); got != tr {
		t.Fatalf("Tripped = %+v, want the original", got)
	}
	if len(fired) != 1 || fired[0].Watchdog != "b" {
		t.Fatalf("OnTrip fired %d times: %+v", len(fired), fired)
	}
}

func TestWatchCleanRunNeverTrips(t *testing.T) {
	w := NewWatch(NewRing(4))
	w.Add(Check{Name: "never", Probe: func(timing.Tick) (string, bool) { return "", false }})
	for now := timing.Tick(0); now < 10; now++ {
		if tr := w.Check(now); tr != nil {
			t.Fatalf("clean run tripped: %+v", tr)
		}
	}
	if w.Ring().Frozen() {
		t.Fatal("clean run froze the ring")
	}
}

func TestConservationCheck(t *testing.T) {
	agg := span.Aggregate{Spans: 3, Resident: 100}
	agg.Stall[span.CauseService] = 100
	c := Conservation(func() span.Aggregate { return agg })
	if detail, bad := c.Probe(0); bad {
		t.Fatalf("conserved aggregate tripped: %s", detail)
	}
	agg.Stall[span.CauseService] = 90 // break the invariant
	detail, bad := c.Probe(0)
	if !bad {
		t.Fatal("violated aggregate did not trip")
	}
	if !strings.Contains(detail, "90") || !strings.Contains(detail, "100") {
		t.Fatalf("detail lacks the mismatch: %q", detail)
	}
}

func TestFlipDetectorCheck(t *testing.T) {
	r := NewRing(2)
	c := FlipDetector(r)
	if _, bad := c.Probe(0); bad {
		t.Fatal("tripped with no flips")
	}
	r.Record(obs.Event{At: 1, Kind: obs.KindFlip, Bank: 0, Row: 7})
	// Rotate the flip event out of the window; the count must still trip.
	r.Record(obs.Event{At: 2, Kind: obs.KindACT})
	r.Record(obs.Event{At: 3, Kind: obs.KindACT})
	detail, bad := c.Probe(10)
	if !bad {
		t.Fatal("flip did not trip after rotating out of the window")
	}
	if !strings.Contains(detail, "1 Row Hammer") {
		t.Fatalf("detail = %q", detail)
	}
}

func TestStallSpikeCheck(t *testing.T) {
	r := NewRing(128)
	// 20 fast spans and one slow one, all completing near now=1000: with 21
	// samples the p99 rank (ceil(0.99*21) = 21) lands on the outlier.
	for i := 0; i < 20; i++ {
		r.Record(obs.Event{At: timing.Tick(900 + i), Dur: 10, Kind: obs.KindSpan, Aux: 50})
	}
	r.Record(obs.Event{At: 995, Dur: 5, Kind: obs.KindSpan, Aux: 5000})

	c := StallSpike(r, 500, 1000)
	detail, bad := c.Probe(1000)
	if !bad {
		t.Fatal("p99=5000 over limit 1000 did not trip")
	}
	if !strings.Contains(detail, "5000") {
		t.Fatalf("detail = %q", detail)
	}

	// A generous limit stays quiet.
	if detail, bad := StallSpike(r, 500, 10000).Probe(1000); bad {
		t.Fatalf("under-limit p99 tripped: %s", detail)
	}
	// Spans completed before the window don't count: from now=10000 the
	// window [9500,10000] is empty.
	if _, bad := c.Probe(10000); bad {
		t.Fatal("stale spans tripped outside the window")
	}
}

func TestStallSpikeIgnoresNonSpanEvents(t *testing.T) {
	r := NewRing(16)
	r.Record(obs.Event{At: 10, Kind: obs.KindACT, Aux: 1 << 40})
	if _, bad := StallSpike(r, 100, 1).Probe(20); bad {
		t.Fatal("non-span event fed the stall spike")
	}
}

func TestDivergenceCheck(t *testing.T) {
	want, got := uint64(7), uint64(7)
	c := Divergence("sched-equiv", func() uint64 { return want }, func() uint64 { return got })
	if _, bad := c.Probe(0); bad {
		t.Fatal("equal hashes tripped")
	}
	got = 8
	detail, bad := c.Probe(0)
	if !bad {
		t.Fatal("diverged hashes did not trip")
	}
	if !strings.Contains(detail, "diverged") {
		t.Fatalf("detail = %q", detail)
	}
}

func TestCmdHashOrderSensitive(t *testing.T) {
	a, b := NewCmdHash(), NewCmdHash()
	a.Note(1, 2, 3, 4)
	a.Note(5, 6, 7, 8)
	b.Note(5, 6, 7, 8)
	b.Note(1, 2, 3, 4)
	if a.Sum() == b.Sum() {
		t.Fatal("command order does not affect the hash")
	}
	c := NewCmdHash()
	c.Note(1, 2, 3, 4)
	c.Note(5, 6, 7, 8)
	if a.Sum() != c.Sum() {
		t.Fatal("identical logs hash differently")
	}
	if a.Sum() == NewCmdHash().Sum() {
		t.Fatal("non-empty log matches the empty hash")
	}
	// Negative rows (rank-level commands) must not collide with small
	// positive ones.
	d, e := NewCmdHash(), NewCmdHash()
	d.Note(0, 0, -1, 0)
	e.Note(0, 0, 1, 0)
	if d.Sum() == e.Sum() {
		t.Fatal("row -1 and row 1 collide")
	}
}
