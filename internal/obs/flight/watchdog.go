package flight

import (
	"fmt"
	"sort"

	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

// Check is one anomaly watchdog: a named invariant probe. Probe is called
// at the progress cadence (never on the command hot path) with the current
// simulated time and reports whether the invariant is violated, with a
// human-readable detail when it is.
type Check struct {
	Name  string
	Probe func(now timing.Tick) (detail string, tripped bool)
}

// Trip records the first watchdog violation of a run.
type Trip struct {
	Watchdog string `json:"watchdog"`
	Detail   string `json:"detail"`
	AtPS     int64  `json:"at_ps"`
}

// Watch runs a set of Checks against a Ring and freezes the ring on the
// first trip, preserving the event window that preceded the anomaly. A nil
// *Watch is valid and inert.
type Watch struct {
	ring   *Ring
	checks []Check
	trip   *Trip
	onTrip func(Trip)
}

// NewWatch builds a watch over ring (which may be nil: checks still run,
// there is just no window to freeze).
func NewWatch(ring *Ring) *Watch {
	return &Watch{ring: ring}
}

// Ring returns the watched ring.
func (w *Watch) Ring() *Ring {
	if w == nil {
		return nil
	}
	return w.ring
}

// Add registers a check. Checks run in registration order; the first to
// trip wins and later ones are never consulted again.
func (w *Watch) Add(c Check) {
	if w == nil || c.Probe == nil {
		return
	}
	w.checks = append(w.checks, c)
}

// OnTrip registers a hook invoked once, at the moment of the first trip
// (after the ring is frozen). Used by the cmd layer to log immediately
// rather than at run end.
func (w *Watch) OnTrip(fn func(Trip)) {
	if w == nil {
		return
	}
	w.onTrip = fn
}

// Check runs every registered check once. On the first violation it freezes
// the ring, records the Trip, and fires the OnTrip hook. Once tripped it
// returns the recorded trip without re-running anything, so the first
// anomaly's window is never disturbed by later ones.
func (w *Watch) Check(now timing.Tick) *Trip {
	if w == nil {
		return nil
	}
	if w.trip != nil {
		return w.trip
	}
	for _, c := range w.checks {
		detail, bad := c.Probe(now)
		if !bad {
			continue
		}
		t := Trip{Watchdog: c.Name, Detail: detail, AtPS: int64(now)}
		w.trip = &t
		w.ring.Freeze()
		if w.onTrip != nil {
			w.onTrip(t)
		}
		return w.trip
	}
	return nil
}

// Tripped returns the recorded trip, nil while all invariants hold.
func (w *Watch) Tripped() *Trip {
	if w == nil {
		return nil
	}
	return w.trip
}

// Conservation builds the span-conservation watchdog: it trips the moment
// the aggregate blame stops satisfying sum(Stall) == Resident. agg is
// polled each check (typically Tracker.Aggregate or a Collector merge).
func Conservation(agg func() span.Aggregate) Check {
	return Check{Name: "span-conservation", Probe: func(timing.Tick) (string, bool) {
		v := agg().Violation()
		return v, v != ""
	}}
}

// FlipDetector builds the bit-flip watchdog: it trips on the first Row
// Hammer flip the ring has recorded. Flip counts survive ring overwriting,
// so a flip is never missed even if its event has rotated out by the next
// check.
func FlipDetector(r *Ring) Check {
	return Check{Name: "bit-flip", Probe: func(timing.Tick) (string, bool) {
		n := r.KindCount(obs.KindFlip)
		if n == 0 {
			return "", false
		}
		return fmt.Sprintf("%d Row Hammer bit flip(s) recorded", n), true
	}}
}

// StallSpike builds the stall-spike watchdog: it trips when the p99
// attributed stall of the request spans completed within the trailing
// window exceeds limit. The p99 is computed over the ring's buffered
// KindSpan events (Aux carries each span's attributed stall), sorted — a
// deterministic, off-hot-path computation.
func StallSpike(r *Ring, window, limit timing.Tick) Check {
	return Check{Name: "stall-spike", Probe: func(now timing.Tick) (string, bool) {
		var stalls []int64
		for _, e := range r.Snapshot() {
			if e.Kind != obs.KindSpan {
				continue
			}
			if done := e.At + e.Dur; done < now-window {
				continue
			}
			stalls = append(stalls, e.Aux)
		}
		if len(stalls) == 0 {
			return "", false
		}
		sort.Slice(stalls, func(i, j int) bool { return stalls[i] < stalls[j] })
		rank := (99*len(stalls) + 99) / 100 // ceil(0.99*n)
		if rank > len(stalls) {
			rank = len(stalls)
		}
		p99 := stalls[rank-1]
		if p99 <= int64(limit) {
			return "", false
		}
		return fmt.Sprintf("p99 request stall %d ps > limit %d ps over %d spans in trailing %d ps",
			p99, int64(limit), len(stalls), int64(window)), true
	}}
}

// Divergence builds a generic two-source comparison watchdog (scheduler
// equivalence: the event-driven scheduler's command-log hash against a
// reference). It trips when the two sums differ; callers ensure both
// sources are at the same checkpoint when the check runs.
func Divergence(name string, want, got func() uint64) Check {
	return Check{Name: name, Probe: func(timing.Tick) (string, bool) {
		w, g := want(), got()
		if w == g {
			return "", false
		}
		return fmt.Sprintf("command-log hash diverged: want %#016x, got %#016x", w, g), true
	}}
}

// FNV-1a parameters (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// CmdHash accumulates an order-sensitive FNV-1a hash of a command log:
// feed it (kind, bank, row, at) from an OnCommand hook and compare Sums
// across schedulers via the Divergence watchdog. Not safe for concurrent
// use (commands are issued from the single simulation goroutine); a nil
// *CmdHash is valid and inert.
type CmdHash struct {
	sum uint64
}

// NewCmdHash returns an empty hash.
func NewCmdHash() *CmdHash { return &CmdHash{sum: fnvOffset} }

// Note folds one command into the hash.
func (h *CmdHash) Note(kind, bank, row int, at timing.Tick) {
	if h == nil {
		return
	}
	s := h.sum
	for _, v := range [4]uint64{uint64(kind), uint64(bank), uint64(uint32(row)), uint64(at)} {
		for i := 0; i < 8; i++ {
			s ^= (v >> (8 * i)) & 0xff
			s *= fnvPrime
		}
	}
	h.sum = s
}

// Sum returns the accumulated hash (the FNV-1a offset basis when empty).
func (h *CmdHash) Sum() uint64 {
	if h == nil {
		return fnvOffset
	}
	return h.sum
}
