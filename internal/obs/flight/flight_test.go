package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"shadow/internal/obs"
	"shadow/internal/timing"
)

func TestNilSafety(t *testing.T) {
	var r *Ring
	r.Record(obs.Event{Kind: obs.KindACT}) // must not panic
	r.Freeze()
	if r.Frozen() {
		t.Fatal("nil ring reports frozen")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil ring Snapshot = %v, want nil", got)
	}
	if r.Len() != 0 || r.Cap() != 0 || r.Total() != 0 || r.KindCount(obs.KindACT) != 0 {
		t.Fatal("nil ring reports non-zero sizes")
	}

	var w *Watch
	w.Add(Check{Name: "x", Probe: func(timing.Tick) (string, bool) { return "", true }})
	w.OnTrip(func(Trip) {})
	if w.Check(0) != nil || w.Tripped() != nil || w.Ring() != nil {
		t.Fatal("nil watch tripped")
	}
	var buf bytes.Buffer
	if err := w.WriteDump(&buf); err != nil {
		t.Fatalf("nil watch WriteDump: %v", err)
	}

	var h *CmdHash
	h.Note(1, 2, 3, 4)
	if h.Sum() != NewCmdHash().Sum() {
		t.Fatal("nil CmdHash sum != empty hash")
	}
}

// TestWraparoundAtExactCapacity drives the ring to exactly its capacity,
// then one past it, checking the oldest-first window at each boundary.
func TestWraparoundAtExactCapacity(t *testing.T) {
	const capacity = 8
	r := NewRing(capacity)
	for i := 0; i < capacity; i++ {
		r.Record(obs.Event{At: timing.Tick(i), Kind: obs.KindACT})
	}
	if r.Len() != capacity || r.Total() != capacity {
		t.Fatalf("Len/Total = %d/%d, want %d/%d", r.Len(), r.Total(), capacity, capacity)
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.At != timing.Tick(i) {
			t.Fatalf("at capacity: event %d has At=%d, want %d", i, e.At, i)
		}
	}

	// One more overwrites the oldest: window becomes [1..capacity].
	r.Record(obs.Event{At: capacity, Kind: obs.KindPRE})
	if r.Len() != capacity {
		t.Fatalf("after wrap: Len = %d, want %d", r.Len(), capacity)
	}
	if r.Total() != capacity+1 {
		t.Fatalf("after wrap: Total = %d, want %d", r.Total(), capacity+1)
	}
	snap = r.Snapshot()
	for i, e := range snap {
		if e.At != timing.Tick(i+1) {
			t.Fatalf("after wrap: event %d has At=%d, want %d", i, e.At, i+1)
		}
	}
	// Kind counts survive the overwrite.
	if got := r.KindCount(obs.KindACT); got != capacity {
		t.Fatalf("KindCount(ACT) = %d, want %d", got, capacity)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultCapacity {
		t.Fatalf("NewRing(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
}

func TestFreezeStopsRecording(t *testing.T) {
	r := NewRing(4)
	r.Record(obs.Event{At: 1, Kind: obs.KindACT})
	r.Freeze()
	if !r.Frozen() {
		t.Fatal("not frozen after Freeze")
	}
	r.Record(obs.Event{At: 2, Kind: obs.KindPRE})
	if r.Total() != 1 || r.Len() != 1 {
		t.Fatalf("frozen ring accepted an event: Total=%d Len=%d", r.Total(), r.Len())
	}
	r.Freeze() // idempotent
	if snap := r.Snapshot(); len(snap) != 1 || snap[0].At != 1 {
		t.Fatalf("frozen window disturbed: %v", snap)
	}
}

// TestRecordDoesNotAllocate pins the hot path: recording into the ring —
// including past the wraparound point — must stay at 0 allocs/op.
func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRing(64)
	e := obs.Event{At: 1, Kind: obs.KindACT, Bank: 3, Row: 99}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(e) }); avg != 0 {
		t.Fatalf("Ring.Record allocates %.1f allocs/op, want 0", avg)
	}
}

// TestConcurrentWriterSnapshot exercises the writer/reader race the -race
// lane is meant to catch: one goroutine records while another snapshots.
func TestConcurrentWriterSnapshot(t *testing.T) {
	r := NewRing(32)
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			r.Record(obs.Event{At: timing.Tick(i), Kind: obs.KindACT})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n/10; i++ {
			snap := r.Snapshot()
			if len(snap) > r.Cap() {
				t.Errorf("snapshot longer than capacity: %d", len(snap))
				return
			}
			_ = r.Len()
			_ = r.Total()
			_ = r.KindCount(obs.KindACT)
		}
	}()
	wg.Wait()
	if r.Total() != n {
		t.Fatalf("Total = %d, want %d", r.Total(), n)
	}
}

func TestDumpShape(t *testing.T) {
	r := NewRing(4)
	r.Record(obs.Event{At: 10, Dur: 5, Kind: obs.KindRFM, Bank: 2, Row: -1})
	r.Record(obs.Event{At: 20, Kind: obs.KindShuffle, Bank: 2, Row: 7, Aux: 1})
	var buf bytes.Buffer
	if err := WriteDump(&buf, r, &Trip{Watchdog: "bit-flip", Detail: "d", AtPS: 30}); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if d.Capacity != 4 || d.Total != 2 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Events[0].Kind != "RFM" || d.Events[1].Kind != "shuffle" {
		t.Fatalf("dump kinds = %q, %q", d.Events[0].Kind, d.Events[1].Kind)
	}
	if d.Trip == nil || d.Trip.Watchdog != "bit-flip" || d.Trip.AtPS != 30 {
		t.Fatalf("dump trip = %+v", d.Trip)
	}
}

// TestDumpDeterministic: identical rings serialize to identical bytes.
func TestDumpDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRing(8)
		for i := 0; i < 12; i++ {
			r.Record(obs.Event{At: timing.Tick(i), Kind: obs.Kind(i % int(obs.NumKinds)), Bank: i % 4, Row: i})
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, r, nil); err != nil {
			t.Fatalf("WriteDump: %v", err)
		}
		return buf.Bytes()
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("dumps differ:\n%s\n---\n%s", a, b)
	}
}

// TestRecorderTee checks the obs wiring: a recorder with Flight set tees
// every emitted event into the ring even with the event log disabled.
func TestRecorderTee(t *testing.T) {
	ring := NewRing(16)
	rec := obs.NewRecorder(obs.Options{Flight: ring})
	p := rec.NewTrack("run")
	if !p.EventsOn() {
		t.Fatal("EventsOn = false with a flight sink attached")
	}
	p.Emit(obs.Event{At: 1, Kind: obs.KindACT, Bank: 0, Row: 5})
	p.Emit(obs.Event{At: 2, Kind: obs.KindFlip, Bank: 1, Row: 9})
	if rec.EventCount() != 0 {
		t.Fatalf("event log grew to %d with Events off", rec.EventCount())
	}
	if ring.Total() != 2 || ring.KindCount(obs.KindFlip) != 1 {
		t.Fatalf("ring missed the tee: total=%d flips=%d", ring.Total(), ring.KindCount(obs.KindFlip))
	}
	// The probe's PID stamping happens before the tee.
	if snap := ring.Snapshot(); snap[0].PID != 0 {
		t.Fatalf("teed event PID = %d, want track PID 0", snap[0].PID)
	}
}
