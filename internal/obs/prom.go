package obs

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format 0.0.4), stdlib-only. Instruments are
// exported as three shared families keyed by a "name" label — the registry
// is dynamic, so per-instrument metric names would force clients to discover
// an open-ended namespace, while label-keyed families make every shadowsim
// and shadowexp worker scrapeable with three static queries:
//
//	shadow_counter{name="..."}            monotonic counters
//	shadow_gauge{name="..."}              last-written gauges
//	shadow_histogram_bucket{name,le=...}  cumulative power-of-two buckets
//	shadow_histogram_sum{name="..."}      + _count, per histogram
//
// Histogram buckets follow the Prometheus convention: each _bucket carries
// the count of samples ≤ le, the le values are the inclusive upper edges of
// the registry's power-of-two buckets (0, 1, 3, 7, ..., 2^i-1), and the
// series ends with le="+Inf" equal to _count. Time series (simulated-time
// sums) have no exposition analogue and stay in the JSON/CSV dumps.

// ContentTypePrometheus is the Content-Type of the /metrics endpoint.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// promLabelEscaper escapes a label value per the exposition format:
// backslash, double quote, and line feed.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// PromLabel renders one label pair, escaping the value.
func PromLabel(key, value string) string {
	return key + `="` + promLabelEscaper.Replace(value) + `"`
}

// WritePrometheus renders every counter, gauge, and histogram in Prometheus
// text exposition format 0.0.4, sorted by instrument name. A nil registry
// writes nothing.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	var buf bytes.Buffer
	if names := sortedKeysCounter(m.counters); len(names) > 0 {
		buf.WriteString("# HELP shadow_counter Monotonic counters, keyed by instrument name.\n")
		buf.WriteString("# TYPE shadow_counter counter\n")
		for _, name := range names {
			fmt.Fprintf(&buf, "shadow_counter{%s} %d\n", PromLabel("name", name), m.counters[name].Value())
		}
	}
	if names := sortedKeysGauge(m.gauges); len(names) > 0 {
		buf.WriteString("# HELP shadow_gauge Last-written gauges, keyed by instrument name.\n")
		buf.WriteString("# TYPE shadow_gauge gauge\n")
		for _, name := range names {
			fmt.Fprintf(&buf, "shadow_gauge{%s} %d\n", PromLabel("name", name), m.gauges[name].Value())
		}
	}
	if names := sortedKeysHistogram(m.hists); len(names) > 0 {
		buf.WriteString("# HELP shadow_histogram Power-of-two-bucketed distributions; le is the inclusive bucket upper edge.\n")
		buf.WriteString("# TYPE shadow_histogram histogram\n")
		for _, name := range names {
			writePromHistogram(&buf, name, m.hists[name])
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func writePromHistogram(buf *bytes.Buffer, name string, h *Histogram) {
	label := PromLabel("name", name)
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(buf, "shadow_histogram_bucket{%s,%s} %d\n", label, PromLabel("le", fmt.Sprint(b.Hi)), cum)
	}
	fmt.Fprintf(buf, "shadow_histogram_bucket{%s,le=\"+Inf\"} %d\n", label, h.Count())
	fmt.Fprintf(buf, "shadow_histogram_sum{%s} %d\n", label, h.Sum())
	fmt.Fprintf(buf, "shadow_histogram_count{%s} %d\n", label, h.Count())
}
