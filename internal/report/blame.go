// Blame reporting for shadowtap spans: per-workload, per-scheme stall
// breakdown tables and a critical-path summary, rendered from the
// conservation-exact aggregates of internal/obs/span.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

// BlameRow is one labeled run (a scheme, a workload mix, an operating point)
// in a blame table.
type BlameRow struct {
	Label string
	Agg   span.Aggregate
}

// blameCauses returns the causes worth a column: CauseService always, plus
// every cause with nonzero attributed time in at least one row, in taxonomy
// order.
func blameCauses(rows []BlameRow) []span.Cause {
	var out []span.Cause
	for c := span.Cause(0); c < span.NumCauses; c++ {
		nonzero := c == span.CauseService
		for _, r := range rows {
			if r.Agg.Stall[c] > 0 {
				nonzero = true
				break
			}
		}
		if nonzero {
			out = append(out, c)
		}
	}
	return out
}

// BlameTable renders the per-run stall breakdown: one row per labeled run,
// one column per stall cause that appears anywhere, each cell the percentage
// of the runs' total resident time attributed to that cause (so a row sums
// to 100% — the conservation invariant made visible). A trailing column
// reports the mean resident time per request in nanoseconds.
func BlameTable(title string, rows []BlameRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(rows) == 0 {
		b.WriteString("  (no spans recorded)\n")
		return b.String()
	}
	causes := blameCauses(rows)

	labelW := len("run")
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %10s", labelW, "run", "requests")
	for _, c := range causes {
		fmt.Fprintf(&b, "  %11s", c)
	}
	fmt.Fprintf(&b, "  %12s\n", "resident/req")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s  %10d", labelW, r.Label, r.Agg.Spans)
		for _, c := range causes {
			fmt.Fprintf(&b, "  %10.1f%%", pct(r.Agg.Stall[c], r.Agg.Resident))
		}
		fmt.Fprintf(&b, "  %10.1fns\n", residentPerReq(r.Agg))
	}
	return b.String()
}

// CriticalPath renders one run's blame ranked by attributed time, with bars —
// the "where did the time go" view for a single scheme.
func CriticalPath(label string, agg span.Aggregate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %s\n", label)
	if agg.Spans == 0 {
		b.WriteString("  (no spans recorded)\n")
		return b.String()
	}
	type slice struct {
		cause span.Cause
		ticks timing.Tick
	}
	var slices []slice
	for c := span.Cause(0); c < span.NumCauses; c++ {
		if agg.Stall[c] > 0 {
			slices = append(slices, slice{cause: c, ticks: agg.Stall[c]})
		}
	}
	sort.SliceStable(slices, func(i, j int) bool { return slices[i].ticks > slices[j].ticks })
	const width = 40
	for _, s := range slices {
		p := pct(s.ticks, agg.Resident)
		bar := int(p / 100 * width)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-11s %6.1f%%  %s\n", s.cause, p, strings.Repeat("#", bar))
	}
	fmt.Fprintf(&b, "  %d requests, %.1f%% row hits, %.1fns mean resident",
		agg.Spans, 100*float64(agg.RowHits)/float64(agg.Spans), residentPerReq(agg))
	if !agg.Conserved() {
		fmt.Fprintf(&b, "  [CONSERVATION VIOLATED: stall %d != resident %d]",
			agg.StallTotal(), agg.Resident)
	}
	b.WriteString("\n")
	return b.String()
}

// blameJSON is the machine-readable shape of one blame row.
type blameJSON struct {
	Label         string           `json:"label"`
	Requests      int64            `json:"requests"`
	Reads         int64            `json:"reads"`
	Writes        int64            `json:"writes"`
	RowHits       int64            `json:"row_hits"`
	ResidentPS    int64            `json:"resident_ps"`
	ResidentPerNS float64          `json:"resident_per_req_ns"`
	Conserved     bool             `json:"conserved"`
	StallPS       map[string]int64 `json:"stall_ps"`
}

// BlameJSON renders blame rows as deterministic JSON (maps marshal with
// sorted keys; only nonzero causes appear).
func BlameJSON(rows []BlameRow) []byte {
	out := make([]blameJSON, 0, len(rows))
	for _, r := range rows {
		j := blameJSON{
			Label:         r.Label,
			Requests:      r.Agg.Spans,
			Reads:         r.Agg.Reads,
			Writes:        r.Agg.Writes,
			RowHits:       r.Agg.RowHits,
			ResidentPS:    int64(r.Agg.Resident),
			ResidentPerNS: residentPerReq(r.Agg),
			Conserved:     r.Agg.Conserved(),
			StallPS:       map[string]int64{},
		}
		for c := span.Cause(0); c < span.NumCauses; c++ {
			if r.Agg.Stall[c] > 0 {
				j.StallPS[c.String()] = int64(r.Agg.Stall[c])
			}
		}
		out = append(out, j)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("report: blame marshal: %v", err))
	}
	return b
}

// pct is 100*num/den, 0 on an empty denominator.
func pct(num, den timing.Tick) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// residentPerReq is the mean resident time per request in nanoseconds.
func residentPerReq(a span.Aggregate) float64 {
	if a.Spans == 0 {
		return 0
	}
	return float64(a.Resident) / float64(a.Spans) / float64(timing.Nanosecond)
}
