package report

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	c := &BarChart{Title: "demo", YMax: 1.0, MaxWidth: 10}
	c.Add("shadow", "2048", 0.99)
	c.Add("rrs", "2048", 0.5)
	c.Add("shadow", "4096", 1.0)
	out := c.String()
	for _, frag := range []string{"demo", "2048", "4096", "shadow", "rrs", "0.990", "0.500"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
	// A full-scale bar has MaxWidth filled cells; half-scale about half.
	lines := strings.Split(out, "\n")
	var full, half string
	for _, l := range lines {
		if strings.Contains(l, "1.000") {
			full = l
		}
		if strings.Contains(l, "0.500") {
			half = l
		}
	}
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar has %d cells: %q", strings.Count(full, "█"), full)
	}
	if n := strings.Count(half, "█"); n < 4 || n > 6 {
		t.Errorf("half bar has %d cells: %q", n, half)
	}
}

func TestBarChartAutoScale(t *testing.T) {
	c := &BarChart{MaxWidth: 20}
	c.Add("a", "x", 2)
	c.Add("a", "y", 4)
	out := c.String()
	var maxBar int
	for _, l := range strings.Split(out, "\n") {
		if n := strings.Count(l, "█"); n > maxBar {
			maxBar = n
		}
	}
	if maxBar != 20 {
		t.Fatalf("auto-scale max bar = %d, want 20", maxBar)
	}
	// Empty chart must not panic or divide by zero.
	empty := &BarChart{}
	if empty.String() != "" {
		t.Fatal("empty chart should render empty")
	}
	zero := &BarChart{}
	zero.Add("a", "x", 0)
	_ = zero.String()
}

func TestBarChartClamping(t *testing.T) {
	c := &BarChart{YMax: 1, MaxWidth: 10}
	c.Add("a", "x", 1.7) // above YMax: clamp, don't overflow
	out := c.String()
	if strings.Count(out, "█") != 10 {
		t.Fatalf("over-scale bar not clamped:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 0.78, 0.6, 0.36, 0.16, 0.04, 0.01})
	if len([]rune(s)) != 7 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '█' || runes[len(runes)-1] != '▁' {
		t.Fatalf("sparkline shape wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	// Constant input: all minimum glyphs, no division by zero.
	flat := Sparkline([]float64{3, 3, 3})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram("flips", map[string]int{"bank0": 4, "bank1": 2, "bank2": 0}, 8)
	for _, frag := range []string{"flips", "bank0", "bank1", "bank2", "4", "2", "0"} {
		if !strings.Contains(h, frag) {
			t.Errorf("histogram missing %q:\n%s", frag, h)
		}
	}
	lines := strings.Split(strings.TrimSpace(h), "\n")
	// Sorted by label, max bar 8 cells.
	if !strings.HasPrefix(lines[1], "bank0") {
		t.Fatalf("not sorted: %v", lines)
	}
	if strings.Count(lines[1], "█") != 8 {
		t.Fatalf("max bar wrong: %q", lines[1])
	}
}

func TestStripChartResample(t *testing.T) {
	// 8 values into 4 columns: pairwise means.
	vals := []float64{0, 2, 4, 4, 10, 0, 1, 3}
	got := resample(vals, 4)
	want := []float64{1, 4, 5, 2}
	if len(got) != len(want) {
		t.Fatalf("resample = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Short inputs pass through untouched.
	short := []float64{1, 2}
	if out := resample(short, 4); len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("short resample = %v", out)
	}
}

func TestStripChartString(t *testing.T) {
	c := &StripChart{Title: "rates", Span: "0 - 150us", Width: 10}
	c.Add("mc/rfms", []float64{0, 0, 5, 5, 0, 0, 20, 0})
	c.Add("shadow/shuffles", nil)
	out := c.String()
	for _, frag := range []string{
		"rates", "[0 - 150us]", "mc/rfms", "min=0", "max=20", "sum=30",
		"shadow/shuffles", "(no samples)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("strip chart missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected title + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	// Labels align: both rows start their sparkline at the same column.
	if !strings.HasPrefix(lines[1], "mc/rfms         ") {
		t.Fatalf("row not padded to widest label: %q", lines[1])
	}
	// The peak column renders the tallest glyph.
	if !strings.Contains(lines[1], "█") {
		t.Fatalf("peak glyph missing: %q", lines[1])
	}
}
