package report

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	c := &BarChart{Title: "demo", YMax: 1.0, MaxWidth: 10}
	c.Add("shadow", "2048", 0.99)
	c.Add("rrs", "2048", 0.5)
	c.Add("shadow", "4096", 1.0)
	out := c.String()
	for _, frag := range []string{"demo", "2048", "4096", "shadow", "rrs", "0.990", "0.500"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chart missing %q:\n%s", frag, out)
		}
	}
	// A full-scale bar has MaxWidth filled cells; half-scale about half.
	lines := strings.Split(out, "\n")
	var full, half string
	for _, l := range lines {
		if strings.Contains(l, "1.000") {
			full = l
		}
		if strings.Contains(l, "0.500") {
			half = l
		}
	}
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar has %d cells: %q", strings.Count(full, "█"), full)
	}
	if n := strings.Count(half, "█"); n < 4 || n > 6 {
		t.Errorf("half bar has %d cells: %q", n, half)
	}
}

func TestBarChartAutoScale(t *testing.T) {
	c := &BarChart{MaxWidth: 20}
	c.Add("a", "x", 2)
	c.Add("a", "y", 4)
	out := c.String()
	var maxBar int
	for _, l := range strings.Split(out, "\n") {
		if n := strings.Count(l, "█"); n > maxBar {
			maxBar = n
		}
	}
	if maxBar != 20 {
		t.Fatalf("auto-scale max bar = %d, want 20", maxBar)
	}
	// Empty chart must not panic or divide by zero.
	empty := &BarChart{}
	if empty.String() != "" {
		t.Fatal("empty chart should render empty")
	}
	zero := &BarChart{}
	zero.Add("a", "x", 0)
	_ = zero.String()
}

func TestBarChartClamping(t *testing.T) {
	c := &BarChart{YMax: 1, MaxWidth: 10}
	c.Add("a", "x", 1.7) // above YMax: clamp, don't overflow
	out := c.String()
	if strings.Count(out, "█") != 10 {
		t.Fatalf("over-scale bar not clamped:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{1, 0.78, 0.6, 0.36, 0.16, 0.04, 0.01})
	if len([]rune(s)) != 7 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '█' || runes[len(runes)-1] != '▁' {
		t.Fatalf("sparkline shape wrong: %s", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	// Constant input: all minimum glyphs, no division by zero.
	flat := Sparkline([]float64{3, 3, 3})
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram("flips", map[string]int{"bank0": 4, "bank1": 2, "bank2": 0}, 8)
	for _, frag := range []string{"flips", "bank0", "bank1", "bank2", "4", "2", "0"} {
		if !strings.Contains(h, frag) {
			t.Errorf("histogram missing %q:\n%s", frag, h)
		}
	}
	lines := strings.Split(strings.TrimSpace(h), "\n")
	// Sorted by label, max bar 8 cells.
	if !strings.HasPrefix(lines[1], "bank0") {
		t.Fatalf("not sorted: %v", lines)
	}
	if strings.Count(lines[1], "█") != 8 {
		t.Fatalf("max bar wrong: %q", lines[1])
	}
}
