// Package report renders experiment results as ASCII charts for terminal
// output — the closest offline equivalent of the paper's bar charts
// (Figures 8-12). It is deliberately dependency-free: a Series is just
// labeled values.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named sequence of (label, value) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one labeled value.
type Point struct {
	Label string
	Value float64
}

// BarChart renders grouped horizontal bars: one group per label, one bar per
// series, scaled to maxWidth characters at the maximum value.
type BarChart struct {
	Title string
	// YMax fixes the scale (0 = auto from data). Relative-performance charts
	// use 1.0 so bars read as fractions of baseline.
	YMax     float64
	MaxWidth int // bar width in characters (default 40)
	Series   []Series
}

// Add appends a point to the named series, creating it on first use.
func (c *BarChart) Add(series, label string, value float64) {
	for i := range c.Series {
		if c.Series[i].Name == series {
			c.Series[i].Points = append(c.Series[i].Points, Point{Label: label, Value: value})
			return
		}
	}
	c.Series = append(c.Series, Series{Name: series, Points: []Point{{Label: label, Value: value}}})
}

// labels returns the union of point labels in first-seen order.
func (c *BarChart) labels() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range c.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				out = append(out, p.Label)
			}
		}
	}
	return out
}

func (c *BarChart) value(series, label string) (float64, bool) {
	for _, s := range c.Series {
		if s.Name != series {
			continue
		}
		for _, p := range s.Points {
			if p.Label == label {
				return p.Value, true
			}
		}
	}
	return 0, false
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.MaxWidth
	if width <= 0 {
		width = 40
	}
	max := c.YMax
	if max <= 0 {
		for _, s := range c.Series {
			for _, p := range s.Points {
				max = math.Max(max, p.Value)
			}
		}
		if max <= 0 {
			max = 1
		}
	}

	nameW, labelW := 0, 0
	for _, s := range c.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	labels := c.labels()
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, label := range labels {
		fmt.Fprintf(&b, "%-*s\n", labelW, label)
		for _, s := range c.Series {
			v, ok := c.value(s.Name, label)
			if !ok {
				continue
			}
			n := int(v/max*float64(width) + 0.5)
			if n > width {
				n = width
			}
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s %s %.3f\n", nameW, s.Name, strings.Repeat("█", n)+strings.Repeat("·", width-n), v)
		}
	}
	return b.String()
}

// Sparkline renders a compact single-line trend of values using eighth-block
// glyphs, for decay curves and sweeps.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// StripRow is one named time series of a strip chart.
type StripRow struct {
	Label  string
	Values []float64
}

// StripChart renders fixed-interval time series (shadowscope's obs.Series
// values) as terminal strip charts: one sparkline row per series, resampled
// to Width columns by chunk means, annotated with min/max/sum — the
// eyeball-grade equivalent of a Perfetto counter track for RFM-rate and
// stall-time traces.
type StripChart struct {
	Title string
	// Span optionally labels the covered time range (e.g. "0 - 150us").
	Span  string
	Width int // columns per row (default 60)
	Rows  []StripRow
}

// Add appends one series row.
func (c *StripChart) Add(label string, values []float64) {
	c.Rows = append(c.Rows, StripRow{Label: label, Values: values})
}

// resample reduces vals to at most w points by averaging contiguous chunks,
// so long runs stay readable without losing bursts entirely.
func resample(vals []float64, w int) []float64 {
	if len(vals) <= w {
		return vals
	}
	out := make([]float64, w)
	for j := 0; j < w; j++ {
		lo := j * len(vals) / w
		hi := (j + 1) * len(vals) / w
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[j] = sum / float64(hi-lo)
	}
	return out
}

// String renders the chart.
func (c *StripChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 60
	}
	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s", c.Title)
		if c.Span != "" {
			fmt.Fprintf(&b, "  [%s]", c.Span)
		}
		b.WriteString("\n")
	}
	for _, r := range c.Rows {
		if len(r.Values) == 0 {
			fmt.Fprintf(&b, "%-*s (no samples)\n", labelW, r.Label)
			continue
		}
		min, max, sum := r.Values[0], r.Values[0], 0.0
		for _, v := range r.Values {
			min = math.Min(min, v)
			max = math.Max(max, v)
			sum += v
		}
		fmt.Fprintf(&b, "%-*s %s min=%g max=%g sum=%g\n",
			labelW, r.Label, Sparkline(resample(r.Values, width)), min, max, sum)
	}
	return b.String()
}

// Histogram renders value counts as sorted "label: count" bars — used for
// flip distributions and tracker occupancy dumps.
func Histogram(title string, counts map[string]int, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	keys := make([]string, 0, len(counts))
	max := 0
	for k, v := range counts {
		keys = append(keys, k)
		if v > max {
			max = v
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	labelW := 0
	for _, k := range keys {
		if len(k) > labelW {
			labelW = len(k)
		}
	}
	for _, k := range keys {
		n := 0
		if max > 0 {
			n = counts[k] * maxWidth / max
		}
		fmt.Fprintf(&b, "%-*s %s %d\n", labelW, k, strings.Repeat("█", n), counts[k])
	}
	return b.String()
}
