package report

import (
	"encoding/json"
	"strings"
	"testing"

	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

func blameFixture() []BlameRow {
	var base, sh span.Aggregate
	base.Spans, base.Reads, base.Writes, base.RowHits = 100, 80, 20, 60
	base.Stall[span.CauseService] = 600 * timing.Nanosecond
	base.Stall[span.CauseRefresh] = 400 * timing.Nanosecond
	base.Resident = 1000 * timing.Nanosecond

	sh.Spans, sh.Reads, sh.Writes, sh.RowHits = 100, 80, 20, 55
	sh.Stall[span.CauseService] = 500 * timing.Nanosecond
	sh.Stall[span.CauseRefresh] = 300 * timing.Nanosecond
	sh.Stall[span.CauseShuffle] = 200 * timing.Nanosecond
	sh.Resident = 1000 * timing.Nanosecond

	return []BlameRow{{Label: "baseline", Agg: base}, {Label: "shadow", Agg: sh}}
}

func TestBlameTable(t *testing.T) {
	out := BlameTable("stall blame", blameFixture())
	for _, want := range []string{
		"stall blame",
		"baseline", "shadow",
		"service", "refresh", "shuffle",
		"60.0%", // baseline service
		"20.0%", // shadow shuffle
		"10.0ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Causes absent from every run get no column.
	if strings.Contains(out, "throttle") || strings.Contains(out, "swap") {
		t.Errorf("table grew columns for unattributed causes:\n%s", out)
	}
	if got := BlameTable("empty", nil); !strings.Contains(got, "no spans recorded") {
		t.Errorf("empty table = %q", got)
	}
}

func TestCriticalPath(t *testing.T) {
	rows := blameFixture()
	out := CriticalPath("shadow", rows[1].Agg)
	// Ranked by attributed time: service first, then refresh, then shuffle.
	si := strings.Index(out, "service")
	ri := strings.Index(out, "refresh")
	hi := strings.Index(out, "shuffle")
	if !(si >= 0 && si < ri && ri < hi) {
		t.Errorf("causes not ranked by time (service %d, refresh %d, shuffle %d):\n%s", si, ri, hi, out)
	}
	for _, want := range []string{"#", "100 requests", "55.0% row hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("critical path missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "CONSERVATION VIOLATED") {
		t.Errorf("conserved aggregate flagged as violated:\n%s", out)
	}

	// A broken aggregate must be called out loudly, not silently renormalized.
	bad := rows[1].Agg
	bad.Resident += 5
	if out := CriticalPath("bad", bad); !strings.Contains(out, "CONSERVATION VIOLATED") {
		t.Errorf("violated aggregate not flagged:\n%s", out)
	}

	if got := CriticalPath("empty", span.Aggregate{}); !strings.Contains(got, "no spans recorded") {
		t.Errorf("empty critical path = %q", got)
	}
}

func TestBlameJSON(t *testing.T) {
	b := BlameJSON(blameFixture())
	var rows []struct {
		Label     string           `json:"label"`
		Requests  int64            `json:"requests"`
		Conserved bool             `json:"conserved"`
		StallPS   map[string]int64 `json:"stall_ps"`
	}
	if err := json.Unmarshal(b, &rows); err != nil {
		t.Fatalf("BlameJSON does not re-parse: %v\n%s", err, b)
	}
	if len(rows) != 2 || rows[0].Label != "baseline" || rows[1].Label != "shadow" {
		t.Fatalf("rows = %+v", rows)
	}
	if !rows[0].Conserved || !rows[1].Conserved {
		t.Error("conserved fixture marshaled as unconserved")
	}
	if got := rows[1].StallPS["shuffle"]; got != int64(200*timing.Nanosecond) {
		t.Errorf("shadow shuffle stall = %d, want %d", got, int64(200*timing.Nanosecond))
	}
	if _, ok := rows[0].StallPS["shuffle"]; ok {
		t.Error("baseline row carries a zero shuffle cause")
	}
	// Deterministic output: two renders are byte-identical.
	if string(b) != string(BlameJSON(blameFixture())) {
		t.Error("BlameJSON not deterministic")
	}
}
