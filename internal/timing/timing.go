// Package timing defines the simulation time base and the JEDEC DRAM timing
// parameter sets used throughout the SHADOW reproduction.
//
// Simulation time is expressed in Ticks (picoseconds). Timing parameters are
// stored in Ticks so code never has to care about the speed grade's clock
// period, but helpers are provided to convert to and from DRAM command-clock
// cycles (tCK units) because JEDEC specifies most constraints in cycles.
//
// Two speed grades from the paper are provided: DDR4-2666 (the actual-system
// configuration, Table IV) and DDR5-4800 (the architectural-simulation
// configuration). SHADOW-specific parameters (tRD_RM, tRCD', row-copy and
// row-shuffle service times, Section VI) are derived by Params.WithShadow
// from the circuit-model results.
package timing

import "fmt"

// Tick is one picosecond of simulated time. All absolute times and durations
// in the simulator are Ticks.
type Tick int64

// Common durations.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
	Second      Tick = 1000 * Millisecond
)

// Forever is a sentinel meaning "never" for next-event computations.
const Forever Tick = 1<<63 - 1

// Nanoseconds reports t as a float64 number of nanoseconds.
func (t Tick) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the tick in engineering units for logs and tests.
func (t Tick) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// NS converts a (possibly fractional) nanosecond count to Ticks.
func NS(ns float64) Tick { return Tick(ns*float64(Nanosecond) + 0.5) }

// Grade identifies a DRAM speed grade / standard generation.
type Grade int

// Supported speed grades.
const (
	DDR4_2666 Grade = iota
	DDR5_4800
)

// String implements fmt.Stringer.
func (g Grade) String() string {
	switch g {
	case DDR4_2666:
		return "DDR4-2666"
	case DDR5_4800:
		return "DDR5-4800"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// Params is a complete DRAM timing parameter set. All durations are Ticks.
// Field names follow JEDEC conventions with the leading "t" dropped.
type Params struct {
	Grade Grade
	TCK   Tick // command clock period

	// Core access timings.
	RCD Tick // ACT to internal RD/WR delay
	RP  Tick // PRE to ACT delay
	RAS Tick // ACT to PRE delay (row restoration)
	RC  Tick // ACT to ACT delay, same bank (RAS+RP)
	AA  Tick // RD to first data (CAS latency, a.k.a. tCL/tAA)
	WL  Tick // WR to first data in (write latency)
	BL  Tick // burst duration on the data bus

	// Intra-device spacing constraints.
	CCDL Tick // RD/WR to RD/WR, same bank group
	CCDS Tick // RD/WR to RD/WR, different bank group
	RRDL Tick // ACT to ACT, same bank group
	RRDS Tick // ACT to ACT, different bank group
	FAW  Tick // rolling window for four ACTs per rank
	WR   Tick // write recovery (last data-in to PRE)
	RTP  Tick // RD to PRE

	// Refresh and refresh management.
	REFI  Tick // average periodic refresh interval
	RFC   Tick // refresh cycle time (all-bank REF busy time)
	RFCsb Tick // same-bank refresh busy time (tRFCsb; 0 = REFsb unsupported)
	REFW  Tick // refresh window (every cell refreshed once per REFW)
	RFM   Tick // RFM command busy time (tRFM)

	// RFM interface configuration (JEDEC DDR5): an RFM command is issued by
	// the MC when a bank's Rolling Accumulated ACT (RAA) counter reaches
	// RAAIMT. Zero disables RFM.
	RAAIMT int
	// RAAMMT is the maximum RAA value; ACTs to a bank stall when its RAA
	// counter would exceed RAAMMT before an RFM is serviced.
	RAAMMT int

	// Shadow holds SHADOW-specific additions; nil for an unmodified device.
	Shadow *ShadowTimings
}

// ShadowTimings are the SHADOW-specific timing values of Sections V-VI,
// normally produced by the circuit model (package circuit, Table III).
type ShadowTimings struct {
	RDRM    Tick // tRD_RM: activate + read remapping-row (added to every ACT)
	RCDRM   Tick // tRCD_RM: remapping-row sensing time
	WRRM    Tick // tWR_RM: remapping-row write recovery
	RowCopy Tick // one intra-subarray row copy including precharge

	// CopyRestoreFrac is the fraction of tRAS needed to drive the row-buffer
	// contents into the destination row (0.55 from the SPICE analysis; the
	// conservative pre-SPICE value is 1.0).
	CopyRestoreFrac float64
}

// Cycles converts a cycle count at this grade's clock into Ticks.
func (p *Params) Cycles(n int) Tick { return Tick(n) * p.TCK }

// ToCycles converts a duration into a (rounded-up) number of command clocks.
func (p *Params) ToCycles(t Tick) int {
	if t <= 0 {
		return 0
	}
	return int((t + p.TCK - 1) / p.TCK)
}

// EffectiveRCD is the ACT-to-RD delay the memory controller must honor:
// tRCD' = tRCD + tRD_RM when SHADOW is present (Section VI-A), else tRCD.
func (p *Params) EffectiveRCD() Tick {
	if p.Shadow != nil {
		return p.RCD + p.Shadow.RDRM
	}
	return p.RCD
}

// ShuffleTime is the total service time of a SHADOW row-shuffle performed
// during an RFM: tRD_RM + (tRAS + tRP) for the incremental refresh followed
// by two row-copies at (1+CopyRestoreFrac)*tRAS each plus a tRP after each
// copy (Section VI-B as revised by the SPICE results in Section VII-B:
// tRD_RM + tRAS + tRP + 3.1*tRAS + 2*tRP for CopyRestoreFrac = 0.55).
func (p *Params) ShuffleTime() Tick {
	s := p.Shadow
	if s == nil {
		return 0
	}
	copyPair := Tick(float64(2*p.RAS)*(1+s.CopyRestoreFrac)) + 2*p.RP
	return s.RDRM + p.RAS + p.RP + copyPair
}

// Validate checks internal consistency of the parameter set.
func (p *Params) Validate() error {
	switch {
	case p.TCK <= 0:
		return fmt.Errorf("timing: TCK must be positive, got %v", p.TCK)
	case p.RC != p.RAS+p.RP:
		return fmt.Errorf("timing: RC (%v) != RAS+RP (%v)", p.RC, p.RAS+p.RP)
	case p.RCD <= 0 || p.RP <= 0 || p.RAS <= 0:
		return fmt.Errorf("timing: core timings must be positive")
	case p.REFI <= 0 || p.RFC <= 0 || p.REFW <= 0:
		return fmt.Errorf("timing: refresh timings must be positive")
	case p.RFC >= p.REFI:
		return fmt.Errorf("timing: RFC (%v) must be below REFI (%v)", p.RFC, p.REFI)
	case p.RAAIMT < 0:
		return fmt.Errorf("timing: RAAIMT must be non-negative")
	case p.RAAIMT > 0 && p.RAAMMT < p.RAAIMT:
		return fmt.Errorf("timing: RAAMMT (%d) below RAAIMT (%d)", p.RAAMMT, p.RAAIMT)
	}
	if s := p.Shadow; s != nil {
		if s.RDRM <= 0 || s.RowCopy <= 0 {
			return fmt.Errorf("timing: shadow timings must be positive")
		}
		if s.CopyRestoreFrac <= 0 || s.CopyRestoreFrac > 1 {
			return fmt.Errorf("timing: CopyRestoreFrac out of (0,1]: %g", s.CopyRestoreFrac)
		}
		if p.ShuffleTime() > p.RFM {
			return fmt.Errorf("timing: shuffle time %v exceeds tRFM %v", p.ShuffleTime(), p.RFM)
		}
	}
	return nil
}

// Clone returns a deep copy of p so experiments can mutate parameters freely.
func (p *Params) Clone() *Params {
	q := *p
	if p.Shadow != nil {
		s := *p.Shadow
		q.Shadow = &s
	}
	return &q
}

// WithShadow returns a copy of p carrying the given SHADOW timings.
func (p *Params) WithShadow(s ShadowTimings) *Params {
	q := p.Clone()
	q.Shadow = &s
	return q
}

// WithRAAIMT returns a copy of p with the RFM threshold set. RAAMMT is set
// to the JEDEC-typical 3x RAAIMT.
func (p *Params) WithRAAIMT(raaimt int) *Params {
	q := p.Clone()
	q.RAAIMT = raaimt
	q.RAAMMT = 3 * raaimt
	return q
}

// WithRefreshScale returns a copy of p with tREFI divided by factor. Used to
// emulate the double-refresh-rate (DRR) baseline (factor 2) and the paper's
// RFM-emulation-by-extra-refresh methodology (Equation 1).
func (p *Params) WithRefreshScale(factor float64) *Params {
	q := p.Clone()
	q.REFI = Tick(float64(q.REFI) / factor)
	return q
}

// NewParams returns the timing parameter set for a speed grade. The values
// follow the paper's Table IV for DDR4-2666 (19-19-19, tRFC 467 tCK, tREFI
// 10400 tCK) and JEDEC DDR5-4800B for DDR5.
func NewParams(g Grade) *Params {
	switch g {
	case DDR4_2666:
		tck := NS(0.75)
		p := &Params{
			Grade: g,
			TCK:   tck,
			RCD:   19 * tck,
			RP:    19 * tck,
			AA:    19 * tck,
			WL:    18 * tck,
			RAS:   43 * tck, // 32.25 ns
			BL:    4 * tck,  // BL8, DDR
			CCDL:  7 * tck,
			CCDS:  4 * tck,
			RRDL:  7 * tck,
			RRDS:  4 * tck,
			FAW:   28 * tck,
			WR:    20 * tck,
			RTP:   10 * tck,
			REFI:  10400 * tck, // 7.8 us
			RFC:   467 * tck,   // 350 ns (16Gb)
			REFW:  32 * Millisecond,
			RFM:   NS(195.0), // JEDEC DDR5-style tRFM; the shuffle (178ns) fits
		}
		p.RC = p.RAS + p.RP
		return p
	case DDR5_4800:
		tck := NS(1.0 / 2.4) // 0.41666 ns
		p := &Params{
			Grade: g,
			TCK:   tck,
			RCD:   NS(16.0),
			RP:    NS(16.0),
			AA:    NS(16.0),
			WL:    NS(15.0),
			RAS:   NS(32.0),
			BL:    8 * tck, // BL16, DDR
			CCDL:  NS(5.0),
			CCDS:  8 * tck,
			RRDL:  NS(5.0),
			RRDS:  8 * tck,
			FAW:   NS(13.333),
			WR:    NS(30.0),
			RTP:   NS(7.5),
			REFI:  NS(3900.0), // fine-granularity refresh, per-bank pace
			RFC:   NS(295.0),  // tRFC1 16Gb
			RFCsb: NS(130.0),  // tRFCsb 16Gb: per-bank refresh (DDR5 REFsb)
			REFW:  32 * Millisecond,
			RFM:   NS(195.0), // JEDEC tRFM (16Gb); the shuffle (186ns) fits
		}
		p.RC = p.RAS + p.RP
		return p
	default:
		panic(fmt.Sprintf("timing: unknown grade %d", int(g)))
	}
}
