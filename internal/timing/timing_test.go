package timing

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTickString(t *testing.T) {
	cases := []struct {
		t    Tick
		want string
	}{
		{500, "500ps"},
		{NS(0.75), "750ps"},
		{NS(13.7), "13.700ns"},
		{7800 * Nanosecond, "7.800us"},
		{32 * Millisecond, "32.000ms"},
		{2 * Second, "2.000s"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Tick(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestNSRoundTrip(t *testing.T) {
	if NS(1) != Nanosecond {
		t.Fatalf("NS(1) = %d, want %d", NS(1), Nanosecond)
	}
	if got := NS(0.5); got != 500 {
		t.Fatalf("NS(0.5) = %d, want 500", got)
	}
	if got := NS(13.7).Nanoseconds(); math.Abs(got-13.7) > 1e-9 {
		t.Fatalf("Nanoseconds() = %g, want 13.7", got)
	}
}

func TestNewParamsValidates(t *testing.T) {
	for _, g := range []Grade{DDR4_2666, DDR5_4800} {
		p := NewParams(g)
		if err := p.Validate(); err != nil {
			t.Errorf("%v: Validate() = %v", g, err)
		}
		if p.Grade != g {
			t.Errorf("%v: Grade = %v", g, p.Grade)
		}
	}
}

func TestDDR4TableIVValues(t *testing.T) {
	p := NewParams(DDR4_2666)
	// Table IV: 19-19-19 (tCL-tRCD-tRP), 467 tRFC, 10400 tREFI, all in tCK.
	if got := p.ToCycles(p.AA); got != 19 {
		t.Errorf("tCL = %d tCK, want 19", got)
	}
	if got := p.ToCycles(p.RCD); got != 19 {
		t.Errorf("tRCD = %d tCK, want 19", got)
	}
	if got := p.ToCycles(p.RP); got != 19 {
		t.Errorf("tRP = %d tCK, want 19", got)
	}
	if got := p.ToCycles(p.RFC); got != 467 {
		t.Errorf("tRFC = %d tCK, want 467", got)
	}
	if got := p.ToCycles(p.REFI); got != 10400 {
		t.Errorf("tREFI = %d tCK, want 10400", got)
	}
	if p.TCK != NS(0.75) {
		t.Errorf("tCK = %v, want 0.75ns", p.TCK)
	}
}

func TestCyclesRoundTrip(t *testing.T) {
	p := NewParams(DDR4_2666)
	f := func(n uint8) bool {
		return p.ToCycles(p.Cycles(int(n))) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToCyclesRoundsUp(t *testing.T) {
	p := NewParams(DDR4_2666)
	if got := p.ToCycles(p.TCK + 1); got != 2 {
		t.Errorf("ToCycles(TCK+1) = %d, want 2", got)
	}
	if got := p.ToCycles(0); got != 0 {
		t.Errorf("ToCycles(0) = %d, want 0", got)
	}
	if got := p.ToCycles(-5); got != 0 {
		t.Errorf("ToCycles(-5) = %d, want 0", got)
	}
}

func TestEffectiveRCD(t *testing.T) {
	p := NewParams(DDR4_2666)
	if p.EffectiveRCD() != p.RCD {
		t.Fatalf("baseline EffectiveRCD = %v, want tRCD %v", p.EffectiveRCD(), p.RCD)
	}
	sp := p.WithShadow(ShadowTimings{
		RDRM: NS(4.0), RCDRM: NS(2.3), WRRM: NS(9.0),
		RowCopy: NS(73.9), CopyRestoreFrac: 0.55,
	})
	want := p.RCD + NS(4.0)
	if sp.EffectiveRCD() != want {
		t.Fatalf("shadow EffectiveRCD = %v, want %v", sp.EffectiveRCD(), want)
	}
	// The original must be untouched.
	if p.Shadow != nil {
		t.Fatal("WithShadow mutated the receiver")
	}
}

// TestShuffleTimePaperValues checks the revised Section VII-B formula:
// tRD_RM + tRAS + tRP + 3.1*tRAS + 2*tRP = 178 ns (DDR4-2666) and
// 186 ns (DDR5-4800), within rounding of the paper's reported values.
func TestShuffleTimePaperValues(t *testing.T) {
	st := ShadowTimings{RDRM: NS(4.0), RCDRM: NS(2.3), WRRM: NS(9.0), RowCopy: NS(73.9), CopyRestoreFrac: 0.55}
	cases := []struct {
		grade  Grade
		wantNS float64
		tolNS  float64
	}{
		{DDR4_2666, 178, 6},
		{DDR5_4800, 186, 6},
	}
	for _, c := range cases {
		p := NewParams(c.grade).WithShadow(st)
		got := p.ShuffleTime().Nanoseconds()
		if math.Abs(got-c.wantNS) > c.tolNS {
			t.Errorf("%v: ShuffleTime = %.1fns, want %.0f±%.0fns", c.grade, got, c.wantNS, c.tolNS)
		}
		if p.ShuffleTime() > p.RFM {
			t.Errorf("%v: shuffle %v does not fit in tRFM %v", c.grade, p.ShuffleTime(), p.RFM)
		}
	}
}

func TestWithRAAIMT(t *testing.T) {
	p := NewParams(DDR5_4800).WithRAAIMT(64)
	if p.RAAIMT != 64 || p.RAAMMT != 192 {
		t.Fatalf("RAAIMT/RAAMMT = %d/%d, want 64/192", p.RAAIMT, p.RAAMMT)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithRefreshScale(t *testing.T) {
	p := NewParams(DDR4_2666)
	q := p.WithRefreshScale(2)
	if q.REFI != p.REFI/2 {
		t.Fatalf("REFI = %v, want %v", q.REFI, p.REFI/2)
	}
	if p.REFI == q.REFI {
		t.Fatal("WithRefreshScale mutated the receiver")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		frag   string
	}{
		{"zero TCK", func(p *Params) { p.TCK = 0 }, "TCK"},
		{"RC mismatch", func(p *Params) { p.RC++ }, "RC"},
		{"RFC over REFI", func(p *Params) { p.RFC = p.REFI + 1 }, "RFC"},
		{"negative RAAIMT", func(p *Params) { p.RAAIMT = -1 }, "RAAIMT"},
		{"RAAMMT below RAAIMT", func(p *Params) { p.RAAIMT = 64; p.RAAMMT = 32 }, "RAAMMT"},
		{"bad restore frac", func(p *Params) {
			p.Shadow = &ShadowTimings{RDRM: 1, RowCopy: 1, CopyRestoreFrac: 1.5}
		}, "CopyRestoreFrac"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewParams(DDR4_2666)
			c.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not mention %q", err, c.frag)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	st := ShadowTimings{RDRM: NS(4), RCDRM: NS(2.3), WRRM: NS(9), RowCopy: NS(73.9), CopyRestoreFrac: 0.55}
	p := NewParams(DDR5_4800).WithShadow(st)
	q := p.Clone()
	q.Shadow.RDRM = NS(99)
	if p.Shadow.RDRM != NS(4) {
		t.Fatal("Clone shares ShadowTimings")
	}
}

func TestGradeString(t *testing.T) {
	if DDR4_2666.String() != "DDR4-2666" || DDR5_4800.String() != "DDR5-4800" {
		t.Fatalf("unexpected grade strings %q %q", DDR4_2666, DDR5_4800)
	}
	if !strings.Contains(Grade(42).String(), "42") {
		t.Fatal("unknown grade should include numeric value")
	}
}

func TestValidateMoreErrorPaths(t *testing.T) {
	p := NewParams(DDR5_4800)
	p.RCD = 0
	if err := p.Validate(); err == nil {
		t.Error("zero RCD accepted")
	}
	p = NewParams(DDR5_4800)
	p.REFI = 0
	if err := p.Validate(); err == nil {
		t.Error("zero REFI accepted")
	}
	p = NewParams(DDR5_4800)
	p.Shadow = &ShadowTimings{RDRM: 0, RowCopy: 1, CopyRestoreFrac: 0.5}
	if err := p.Validate(); err == nil {
		t.Error("zero RDRM accepted")
	}
	p = NewParams(DDR5_4800)
	p.Shadow = &ShadowTimings{RDRM: NS(4), RowCopy: NS(70), CopyRestoreFrac: 1.0}
	p.RFM = NS(100) // shuffle cannot fit
	if err := p.Validate(); err == nil {
		t.Error("shuffle overflow of tRFM accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown grade did not panic")
		}
	}()
	NewParams(Grade(99))
}
