// Package sim is the system-level simulator behind the paper's performance
// experiments (Figures 8-12): N cores replaying workload traces against the
// memory controller and DRAM device, with any combination of DRAM-side
// (SHADOW, PARFM, Mithril) and MC-side (BlockHammer, RRS) mitigations.
//
// The core model is the standard trace-driven abstraction used to study
// memory-system changes: each core retires the trace's non-memory
// instructions at a fixed rate and issues its memory accesses with bounded
// memory-level parallelism (MSHRs); a core stalls when its MSHRs are full,
// so added DRAM latency (tRCD', RFM busy time, throttling delays, channel
// blocking) flows directly into lost instruction throughput. Relative
// performance between schemes — all the paper reports — is governed by the
// same mechanisms as on real hardware.
package sim

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/memsys"
	"shadow/internal/minq"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// probeSetter is implemented by mitigation schemes that accept shadowscope
// instrumentation after construction (shadow.Controller, BlockHammer).
type probeSetter interface {
	SetProbe(*obs.Probe)
}

// Config describes one simulation run.
type Config struct {
	// Params must be fully configured (speed grade, RAAIMT, SHADOW timings,
	// refresh scaling).
	Params *timing.Params
	// Geometry defaults to dram.DefaultGeometry for the params' grade.
	Geometry dram.Geometry
	// Hammer defaults to hammer.DefaultConfig.
	Hammer hammer.Config
	// DeviceMit is the in-DRAM mitigation (nil = unprotected).
	DeviceMit dram.Mitigator
	// MCSide is the controller-side mitigation (nil = none).
	MCSide mitigate.MCSide
	// RFMFilter optionally gates RFMs (Section VIII).
	RFMFilter *mitigate.RFMFilter
	// Workload supplies one generator per core.
	Workload []trace.Generator
	// Duration is the simulated time horizon.
	Duration timing.Tick
	// Warmup excludes the first Warmup ticks from the reported statistics
	// (instructions and controller counters), so threshold-based schemes
	// (tracker tables, Bloom filters) are measured in steady state rather
	// than while still filling. Must be below Duration.
	Warmup timing.Tick
	// Channels builds a multi-channel system (default 1). Workload
	// generators must then emit global bank indices in
	// [0, Channels*Geometry.Banks) — build them over a geometry whose Banks
	// field is the total. With Channels > 1, per-channel mitigators come
	// from DeviceMitFor/MCSideFor (mitigation state must not be shared
	// across channels, since bank indices repeat).
	Channels     int
	DeviceMitFor func(ch int) dram.Mitigator
	MCSideFor    func(ch int) mitigate.MCSide
	// InstPerNS is each core's peak retirement rate (instructions per
	// nanosecond); 4.0 models a ~3 GHz out-of-order core.
	InstPerNS float64
	// MSHR bounds each core's outstanding misses (default 8, approximating
	// an out-of-order core with prefetching).
	MSHR int
	// OnCommand, when set, observes every DRAM command each channel's
	// controller issues (protocol validation; see package cmdtrace). The
	// channel index is passed alongside the command.
	OnCommand func(ch int, cmd memctrl.Cmd)
	// Probe, when set, threads shadowscope instrumentation through the
	// memory controllers, devices, and mitigation schemes; channel ch
	// records on the probe's ForChannel(ch). Nil disables all observation.
	Probe *obs.Probe
	// Spans, when set, threads shadowtap request-lifecycle tracing through
	// the controllers and devices: every request gets a span with
	// conservation-exact stall-cause attribution, rolled up per channel.
	// Nil disables span tracking entirely.
	Spans *span.Collector
	// Progress, when set, is called with the current simulated time roughly
	// every ProgressEvery ticks (observation only; drives the CLI
	// heartbeat). It must not mutate simulation state.
	Progress func(now timing.Tick)
	// ProgressEvery is the Progress callback period (default Duration/100).
	ProgressEvery timing.Tick
	// FullRescan runs every channel's controller with the pre-event-driven
	// full-rescan scheduler (see memctrl.Options.FullRescan). Exists for the
	// scheduler-equivalence regression test.
	FullRescan bool
	// NoTimeSkip runs the per-tick runner loop — every wakeup steps every
	// channel and scans every core — instead of the event wheel that skips
	// quiescent channels and cores and jumps time straight to the next
	// actionable bound. The per-tick loop is the oracle the wheel is proven
	// bit-identical against (see TestSchedulerEquivalence and DESIGN.md §10),
	// exactly as FullRescan preserves the pre-event-driven controller.
	NoTimeSkip bool
}

// Result summarizes a run.
type Result struct {
	Duration timing.Tick
	// Insts and IPC are per core; IPC is in instructions per nanosecond.
	Insts []int64
	IPC   []float64
	MC    memctrl.Stats
	Dev   dram.BankStats
	Flips int
	// Device is channel 0's rank, available for post-run inspection
	// (mapping state, row contents, flip records); Devices lists every
	// channel's rank.
	Device  *dram.Device
	Devices []*dram.Device
}

// core is the per-core replay state.
type core struct {
	gen         trace.Generator
	nextIssueAt timing.Tick
	pending     trace.Event
	outstanding int
	insts       int64
	stalled     bool
	// backoff marks a pending request rejected by a full bank queue;
	// backoffAt is the first rejected attempt, reported to the request's
	// span as queue-full backpressure once it finally enqueues.
	backoff   bool
	backoffAt timing.Tick
}

// completion is one outstanding miss awaiting retirement: the core to
// credit and the time its data returns.
type completion struct {
	core int
	at   timing.Tick
}

// runner holds the hot-loop state of one simulation. The per-iteration work
// lives in tick() — factored out of Run so the allocation regression test
// can pump a steady-state runner directly and pin the loop to 0 allocs.
type runner struct {
	cfg     *Config
	cores   []*core
	mc      *memsys.System
	devices []*dram.Device

	// Event-wheel state (see tickWheel; unused under Config.NoTimeSkip).
	// ctls caches the per-channel controllers so the wheel can step a single
	// channel. coreq holds every unstalled core keyed by its next issue time;
	// stalled cores leave the queue and re-enter on retire. ctlNext caches
	// each channel's advance bound (Controller.NextReadyAt) so quiescent
	// channels are not stepped at all; chDirty marks channels that received a
	// request this tick; chPend/chSel/dueCores are per-tick scratch.
	ctls     []*memctrl.Controller
	coreq    *minq.Queue
	dueCores []int
	ctlNext  []timing.Tick
	chPend   []timing.Tick
	chSel    []bool
	chDirty  []bool

	inflight []completion
	// nextDone is the earliest completion time in inflight (Forever when
	// empty): maintained by onComplete on insert and recomputed by the retire
	// pass, so the advance phase never rescans the inflight list.
	nextDone timing.Tick
	// freeReqs recycles Request objects. A request is recyclable as soon as
	// its column command issues (OnComplete): the controller has dequeued it
	// and the simulator tracks only the (core, done) pair. Live requests are
	// bounded by cores×MSHR, so the pre-filled slab makes the steady-state
	// issue path allocation-free. Recycled requests are reset by whole-struct
	// assignment, clearing stale Span pointers before reuse.
	freeReqs []*memctrl.Request
	reqSlab  []memctrl.Request

	instSeries *obs.Series
	progEvery  timing.Tick
	nextProg   timing.Tick
	now        timing.Tick
}

// newRunner validates cfg, applies defaults, and builds the cores,
// controllers, devices, and recycling pools for one run. Split from Run so
// the allocation regression test can pump a steady-state runner's tick()
// under testing.AllocsPerRun.
func newRunner(cfg Config) (*runner, error) {
	if cfg.Params == nil {
		return nil, fmt.Errorf("sim: Params required")
	}
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration")
	}
	if cfg.Geometry.Banks == 0 {
		cfg.Geometry = dram.DefaultGeometry(cfg.Params.Grade == timing.DDR5_4800)
	}
	if cfg.Hammer.HCnt == 0 {
		cfg.Hammer = hammer.DefaultConfig()
	}
	if cfg.InstPerNS <= 0 {
		cfg.InstPerNS = 4.0
	}
	if cfg.MSHR <= 0 {
		cfg.MSHR = 8
	}
	if cfg.Warmup >= cfg.Duration {
		return nil, fmt.Errorf("sim: warmup %v must be below duration %v", cfg.Warmup, cfg.Duration)
	}

	channels := cfg.Channels
	if channels <= 0 {
		channels = 1
	}
	if channels > 1 && cfg.DeviceMit != nil {
		return nil, fmt.Errorf("sim: with Channels > 1 use DeviceMitFor, not DeviceMit")
	}
	if channels > 1 && cfg.MCSide != nil {
		return nil, fmt.Errorf("sim: with Channels > 1 use MCSideFor, not MCSide")
	}

	cores := make([]*core, len(cfg.Workload))
	for i, g := range cfg.Workload {
		cores[i] = &core{gen: g}
		cores[i].fetch(cfg.InstPerNS, 0)
	}

	r := &runner{cfg: &cfg, cores: cores}
	r.reqSlab = make([]memctrl.Request, len(cores)*cfg.MSHR)
	r.freeReqs = make([]*memctrl.Request, 0, len(r.reqSlab))
	for i := range r.reqSlab {
		r.freeReqs = append(r.freeReqs, &r.reqSlab[i])
	}
	r.inflight = make([]completion, 0, len(r.reqSlab))
	r.nextDone = timing.Forever
	// Completion queue: (coreID, doneAt) pairs, unsorted (small). The
	// completed request goes straight back on the free list.
	onComplete := func(req *memctrl.Request) {
		r.inflight = append(r.inflight, completion{core: req.Core, at: req.Done})
		if req.Done < r.nextDone {
			r.nextDone = req.Done
		}
		r.freeReqs = append(r.freeReqs, req)
	}

	ctls := make([]*memctrl.Controller, channels)
	devices := make([]*dram.Device, channels)
	for ch := 0; ch < channels; ch++ {
		mit := cfg.DeviceMit
		if cfg.DeviceMitFor != nil {
			mit = cfg.DeviceMitFor(ch)
		}
		mcside := cfg.MCSide
		if cfg.MCSideFor != nil {
			mcside = cfg.MCSideFor(ch)
		}
		chProbe := cfg.Probe.ForChannel(ch)
		if chProbe != nil {
			if ps, ok := mit.(probeSetter); ok {
				ps.SetProbe(chProbe)
			}
			if ps, ok := mcside.(probeSetter); ok {
				ps.SetProbe(chProbe)
			}
		}
		spanTr := cfg.Spans.ForChannel(ch, cfg.Geometry.Banks, chProbe)
		dev, err := dram.NewDevice(dram.Config{
			Geometry:  cfg.Geometry,
			Params:    cfg.Params,
			Hammer:    cfg.Hammer,
			Mitigator: mit,
			Probe:     chProbe,
			Spans:     spanTr,
		})
		if err != nil {
			return nil, err
		}
		devices[ch] = dev
		var onCmd func(memctrl.Cmd)
		if cfg.OnCommand != nil {
			chID := ch
			onCmd = func(c memctrl.Cmd) { cfg.OnCommand(chID, c) }
		}
		ctls[ch] = memctrl.New(dev, memctrl.Options{
			MCSide:     mcside,
			RFMFilter:  cfg.RFMFilter,
			OnComplete: onComplete,
			OnCommand:  onCmd,
			Probe:      chProbe,
			Spans:      spanTr,
			FullRescan: cfg.FullRescan,
		})
	}
	mc, err := memsys.New(ctls)
	if err != nil {
		return nil, err
	}
	r.mc = mc
	r.devices = devices
	r.ctls = ctls
	r.coreq = minq.New(len(cores))
	for i, c := range cores {
		r.coreq.Set(i, c.nextIssueAt)
	}
	r.dueCores = make([]int, 0, len(cores))
	r.ctlNext = make([]timing.Tick, channels)
	r.chPend = make([]timing.Tick, channels)
	r.chSel = make([]bool, channels)
	r.chDirty = make([]bool, channels)

	r.instSeries = cfg.Probe.Series("sim/insts")
	r.progEvery = cfg.ProgressEvery
	if r.progEvery <= 0 {
		r.progEvery = cfg.Duration / 100
	}
	if r.progEvery <= 0 {
		r.progEvery = 1
	}
	r.nextProg = r.progEvery
	return r, nil
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	// Defaults were applied to the runner's copy of the config.
	rcfg := r.cfg

	var warmInsts []int64
	var warmMC memctrl.Stats
	warmTaken := false
	for r.now < rcfg.Duration {
		if !warmTaken && r.now >= rcfg.Warmup && rcfg.Warmup > 0 {
			warmTaken = true
			warmInsts = make([]int64, len(r.cores))
			for i, c := range r.cores {
				warmInsts[i] = c.insts
			}
			warmMC = r.mc.Stats()
		}
		r.tick()
	}

	measured := rcfg.Duration - rcfg.Warmup
	res := &Result{
		Duration: measured,
		Insts:    make([]int64, len(r.cores)),
		IPC:      make([]float64, len(r.cores)),
		MC:       r.mc.Stats(),
		Dev:      r.mc.DeviceStats(),
		Flips:    r.mc.FlipCount(),
		Device:   r.devices[0],
		Devices:  r.devices,
	}
	if warmTaken {
		res.MC = subStats(r.mc.Stats(), warmMC)
	}
	for i, c := range r.cores {
		res.Insts[i] = c.insts
		if warmTaken {
			res.Insts[i] -= warmInsts[i]
		}
		res.IPC[i] = float64(res.Insts[i]) / measured.Nanoseconds()
	}
	return res, nil
}

// tick runs one iteration of the event loop: retire due completions, let
// cores issue, drain the controllers at the current instant, and advance to
// the earliest future event. Allocation-free in steady state. The default
// path is the event wheel (tickWheel); Config.NoTimeSkip selects the
// per-tick oracle loop (tickStep) the wheel is proven bit-identical against.
func (r *runner) tick() {
	if r.cfg.NoTimeSkip {
		r.tickStep()
		return
	}
	r.tickWheel()
}

// tickStep is the per-tick oracle: every wakeup retires, scans every core,
// and steps every channel, then advances to the minimum of the raw Step
// returns, the earliest unstalled core, and the earliest completion. Kept
// verbatim (bar the shared O(1) progress catch-up) as the reference for
// TestSchedulerEquivalence's wheel axis.
func (r *runner) tickStep() {
	cfg := r.cfg
	now := r.now

	// 1. Retire completions due by now, recomputing the earliest surviving
	// completion in the same pass (onComplete keeps it current for inserts).
	if r.nextDone <= now {
		nextDone := timing.Forever
		for i := 0; i < len(r.inflight); {
			if r.inflight[i].at <= now {
				c := r.cores[r.inflight[i].core]
				c.outstanding--
				if c.stalled {
					c.stalled = false
					if c.nextIssueAt < r.inflight[i].at {
						c.nextIssueAt = r.inflight[i].at
					}
				}
				r.inflight[i] = r.inflight[len(r.inflight)-1]
				r.inflight = r.inflight[:len(r.inflight)-1]
			} else {
				if r.inflight[i].at < nextDone {
					nextDone = r.inflight[i].at
				}
				i++
			}
		}
		r.nextDone = nextDone
	}

	// 2. Cores issue due requests, recycling Request objects off the free
	// list (whole-struct reset: a recycled request must not leak its old
	// Span pointer or channel-rewritten bank index into the new attempt).
	// Each core's next wake-up is folded into coreNext as its issue loop
	// ends — core state never changes after its own iteration, so the
	// advance phase needs no second scan.
	coreNext := timing.Forever
	for id, c := range r.cores {
		for !c.stalled && c.nextIssueAt <= now {
			if c.outstanding >= cfg.MSHR {
				c.stalled = true
				break
			}
			req := r.getReq()
			*req = memctrl.Request{
				Core:   id,
				Bank:   c.pending.Bank,
				Row:    c.pending.Row,
				Col:    c.pending.Col,
				Write:  c.pending.Write,
				Arrive: now,
			}
			if !r.mc.Enqueue(req) {
				// Bank queue full: retry after a short backoff.
				r.freeReqs = append(r.freeReqs, req) //shadowvet:ignore allocflow -- slab return: freeReqs capacity came from the pops that emptied it
				if !c.backoff {
					c.backoff, c.backoffAt = true, now
				}
				c.nextIssueAt = now + cfg.Params.TCK*4
				break
			}
			if c.backoff {
				req.Span.NoteBackpressure(c.backoffAt)
				c.backoff = false
			}
			c.outstanding++
			c.fetch(cfg.InstPerNS, now)
			r.instSeries.Add(now, float64(c.pending.Gap))
		}
		if !c.stalled && c.nextIssueAt > now && c.nextIssueAt < coreNext {
			coreNext = c.nextIssueAt
		}
	}

	// 3. Controllers issue commands available at now.
	next := timing.Forever
	for {
		t := r.mc.Step(now)
		if t > now {
			next = t
			break
		}
	}

	// 4. Advance to the earliest future event: the controllers' next action,
	// the earliest unstalled core, or the earliest outstanding completion.
	if coreNext < next {
		next = coreNext
	}
	if r.nextDone > now && r.nextDone < next {
		next = r.nextDone
	}
	if next <= now {
		next = now + cfg.Params.TCK
	}
	r.now = next
	r.noteProgress()
}

// tickWheel is the event-wheel scheduler. It performs the same three phases
// as tickStep but touches only the state that can act at this instant:
//
//   - cores come off an indexed min-queue keyed by next issue time, so a
//     wakeup costs O(due cores) instead of O(cores);
//   - a channel is stepped only when it received a request this tick, its
//     cached bound (Controller.NextReadyAt) has arrived, or it is volatile —
//     a skipped Step is provably a pure no-op (DESIGN.md §10);
//   - advance() jumps straight to the minimum cached bound.
//
// Volatility clamp: while ANY channel is volatile (throttle-bound ACTs,
// span-tracked non-idle banks, or full-rescan mode), the set of Step
// instants is observable, so the wheel steps every channel at every wakeup
// and advances only on raw Step returns — the exact per-tick behavior.
func (r *runner) tickWheel() {
	cfg := r.cfg
	now := r.now

	// 1. Retire completions due by now (same pass as tickStep); a core that
	// unstalls re-enters the issue queue at its adjusted issue time.
	if r.nextDone <= now {
		nextDone := timing.Forever
		for i := 0; i < len(r.inflight); {
			if r.inflight[i].at <= now {
				c := r.cores[r.inflight[i].core]
				c.outstanding--
				if c.stalled {
					c.stalled = false
					if c.nextIssueAt < r.inflight[i].at {
						c.nextIssueAt = r.inflight[i].at
					}
					r.coreq.Set(r.inflight[i].core, c.nextIssueAt)
				}
				r.inflight[i] = r.inflight[len(r.inflight)-1]
				r.inflight = r.inflight[:len(r.inflight)-1]
			} else {
				if r.inflight[i].at < nextDone {
					nextDone = r.inflight[i].at
				}
				i++
			}
		}
		r.nextDone = nextDone
	}

	// 2. Pop the due cores and replay them in core-index order — tickStep
	// scans cores ascending, and bank-queue insertion order (FR-FCFS
	// tie-break) must match it exactly. The pop loop yields key order, so the
	// scratch list is insertion-sorted by index (due sets are tiny).
	due := r.dueCores[:0]
	for {
		id, key, ok := r.coreq.Min()
		if !ok || key > now {
			break
		}
		r.coreq.Remove(id)
		due = append(due, id) //shadowvet:ignore allocflow -- scratch reused via [:0]; capacity fixed at the core count by newRunner
	}
	r.dueCores = due
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j] < due[j-1]; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for _, id := range due {
		c := r.cores[id]
		for !c.stalled && c.nextIssueAt <= now {
			if c.outstanding >= cfg.MSHR {
				c.stalled = true
				break
			}
			req := r.getReq()
			*req = memctrl.Request{
				Core:   id,
				Bank:   c.pending.Bank,
				Row:    c.pending.Row,
				Col:    c.pending.Col,
				Write:  c.pending.Write,
				Arrive: now,
			}
			ok, ch := r.mc.EnqueueCh(req)
			if !ok {
				// Bank queue full: retry after a short backoff. A failed
				// enqueue mutates nothing, so the channel stays clean.
				r.freeReqs = append(r.freeReqs, req) //shadowvet:ignore allocflow -- slab return: freeReqs capacity came from the pops that emptied it
				if !c.backoff {
					c.backoff, c.backoffAt = true, now
				}
				c.nextIssueAt = now + cfg.Params.TCK*4
				break
			}
			r.chDirty[ch] = true
			if c.backoff {
				req.Span.NoteBackpressure(c.backoffAt)
				c.backoff = false
			}
			c.outstanding++
			c.fetch(cfg.InstPerNS, now)
			r.instSeries.Add(now, float64(c.pending.Gap))
		}
		if !c.stalled {
			r.coreq.Set(id, c.nextIssueAt)
		}
	}

	// 3. Step the channels that can act: enqueued-into this tick, cached
	// bound arrived, or volatile. The round structure replicates
	// memsys.Step's ascending-channel interleaving so multi-channel command
	// (and completion) order is bit-identical to the per-tick loop; skipped
	// re-steps of already-quiescent channels within the same instant are
	// idempotent no-ops.
	for ch, ctl := range r.ctls {
		r.chSel[ch] = r.chDirty[ch] || r.ctlNext[ch] <= now || ctl.Volatile()
		r.chPend[ch] = now
		r.chDirty[ch] = false
	}
	r.stepSelected(now)
	// Clamp check: if any channel ended this wakeup volatile, the wakeup set
	// must match the per-tick loop exactly from here on. Step the channels
	// the selection skipped — still at this same instant, and provably
	// without effect (their bound had not arrived) — and advance on raw Step
	// returns alone.
	clamped := false
	for _, ctl := range r.ctls {
		if ctl.Volatile() {
			clamped = true
			break
		}
	}
	if clamped {
		again := false
		for ch := range r.ctls {
			if !r.chSel[ch] {
				r.chSel[ch] = true
				r.chPend[ch] = now
				again = true
			}
		}
		if again {
			r.stepSelected(now)
		}
		for ch := range r.ctls {
			r.ctlNext[ch] = r.chPend[ch]
		}
	} else {
		for ch, ctl := range r.ctls {
			if !r.chSel[ch] {
				continue
			}
			// The bound is the max of the raw Step return (the per-tick
			// loop's own advance source — it carries transient bounds like
			// mid-drain precharge times that the cached-state query cannot
			// see) and NextReadyAt (which can exceed the Step return by
			// looking past the post-command bus echo). Both are sound lower
			// bounds on the channel's next action, so their max is too, and
			// every wakeup skipped by taking the later one is an instant
			// where the channel provably could not act.
			b := ctl.NextReadyAt(now)
			if r.chPend[ch] > b {
				b = r.chPend[ch]
			}
			r.ctlNext[ch] = b
		}
	}

	// 4. Jump to the wheel's bound.
	r.advance(now)
}

// stepSelected drains every selected channel to quiescence at now, one
// ascending-channel pass per round exactly like memsys.Step, leaving each
// selected channel's raw Step return in chPend.
func (r *runner) stepSelected(now timing.Tick) {
	for {
		again := false
		for ch, ctl := range r.ctls {
			if r.chSel[ch] && r.chPend[ch] <= now {
				r.chPend[ch] = ctl.Step(now)
				if r.chPend[ch] <= now {
					again = true
				}
			}
		}
		if !again {
			return
		}
	}
}

// advance moves simulated time to the wheel's sound lower bound on the next
// actionable event: the minimum over per-channel bounds, the earliest
// unstalled core's issue time, and the earliest outstanding completion. A
// bound at or before now (volatile channels, refresh drains) clamps the jump
// to +1 tCK — the wheel degrades to the per-tick cadence, never skips.
func (r *runner) advance(now timing.Tick) {
	next := timing.Forever
	for _, b := range r.ctlNext {
		if b < next {
			next = b
		}
	}
	if _, key, ok := r.coreq.Min(); ok && key < next {
		next = key
	}
	if r.nextDone > now && r.nextDone < next {
		next = r.nextDone
	}
	if next <= now {
		next = now + r.cfg.Params.TCK
	}
	r.now = next
	r.noteProgress()
}

// noteProgress fires the optional Progress heartbeat and re-arms it with the
// anchored O(1) catch-up: the next deadline is the first multiple of the
// cadence past now, keeping the phase stable across arbitrarily large event
// jumps without iterating the skipped intervals.
func (r *runner) noteProgress() {
	if r.cfg.Progress == nil || r.now < r.nextProg {
		return
	}
	r.cfg.Progress(r.now) //shadowvet:ignore allocflow -- Progress is an optional throttled UI hook, nil in measured configs and off the per-tick fast path
	r.nextProg += ((r.now-r.nextProg)/r.progEvery + 1) * r.progEvery
}

// getReq pops a recycled Request (the slab bounds live requests at
// cores×MSHR, so this only allocates if that invariant is ever broken).
func (r *runner) getReq() *memctrl.Request {
	if n := len(r.freeReqs); n > 0 {
		req := r.freeReqs[n-1]
		r.freeReqs = r.freeReqs[:n-1]
		return req
	}
	return &memctrl.Request{} //shadowvet:ignore allocflow -- slab refill; the cores-times-MSHR bound keeps this off the steady-state path
}

// subStats subtracts warmup-phase counters from the final totals.
func subStats(a, w memctrl.Stats) memctrl.Stats {
	a.Acts -= w.Acts
	a.Reads -= w.Reads
	a.Writes -= w.Writes
	a.Pres -= w.Pres
	a.Refs -= w.Refs
	a.RFMs -= w.RFMs
	a.SkippedRFMs -= w.SkippedRFMs
	a.Swaps -= w.Swaps
	a.TRRs -= w.TRRs
	a.RowHits -= w.RowHits
	a.RowMisses -= w.RowMisses
	a.ReadLatency -= w.ReadLatency
	a.CompletedReads -= w.CompletedReads
	a.CompletedWrites -= w.CompletedWrites
	a.BlockedTime -= w.BlockedTime
	return a
}

// fetch loads the core's next trace event and schedules its issue time after
// the event's instruction gap.
func (c *core) fetch(instPerNS float64, now timing.Tick) {
	c.pending = c.gen.Next()
	c.insts += int64(c.pending.Gap)
	gapTime := timing.Tick(float64(c.pending.Gap) / instPerNS * float64(timing.Nanosecond))
	if gapTime < 1 {
		gapTime = 1
	}
	base := c.nextIssueAt
	if now > base {
		base = now
	}
	c.nextIssueAt = base + gapTime
}

// TotalIPC sums per-core IPC.
func (r *Result) TotalIPC() float64 {
	s := 0.0
	for _, v := range r.IPC {
		s += v
	}
	return s
}

// WeightedSpeedup computes the paper's multiprogram metric: the mean of
// per-core IPC ratios between a scheme run and its baseline run (normalized
// weighted speedup; 1.0 = no slowdown).
func WeightedSpeedup(scheme, baseline *Result) float64 {
	if len(scheme.IPC) != len(baseline.IPC) {
		panic("sim: mismatched core counts")
	}
	s := 0.0
	for i := range scheme.IPC {
		if baseline.IPC[i] == 0 {
			continue
		}
		s += scheme.IPC[i] / baseline.IPC[i]
	}
	return s / float64(len(scheme.IPC))
}

// RelativePerformance for single-threaded runs: inverse-execution-time ratio
// equals the IPC ratio over a fixed horizon.
func RelativePerformance(scheme, baseline *Result) float64 {
	return scheme.TotalIPC() / baseline.TotalIPC()
}
