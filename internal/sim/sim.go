// Package sim is the system-level simulator behind the paper's performance
// experiments (Figures 8-12): N cores replaying workload traces against the
// memory controller and DRAM device, with any combination of DRAM-side
// (SHADOW, PARFM, Mithril) and MC-side (BlockHammer, RRS) mitigations.
//
// The core model is the standard trace-driven abstraction used to study
// memory-system changes: each core retires the trace's non-memory
// instructions at a fixed rate and issues its memory accesses with bounded
// memory-level parallelism (MSHRs); a core stalls when its MSHRs are full,
// so added DRAM latency (tRCD', RFM busy time, throttling delays, channel
// blocking) flows directly into lost instruction throughput. Relative
// performance between schemes — all the paper reports — is governed by the
// same mechanisms as on real hardware.
package sim

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/memsys"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// probeSetter is implemented by mitigation schemes that accept shadowscope
// instrumentation after construction (shadow.Controller, BlockHammer).
type probeSetter interface {
	SetProbe(*obs.Probe)
}

// Config describes one simulation run.
type Config struct {
	// Params must be fully configured (speed grade, RAAIMT, SHADOW timings,
	// refresh scaling).
	Params *timing.Params
	// Geometry defaults to dram.DefaultGeometry for the params' grade.
	Geometry dram.Geometry
	// Hammer defaults to hammer.DefaultConfig.
	Hammer hammer.Config
	// DeviceMit is the in-DRAM mitigation (nil = unprotected).
	DeviceMit dram.Mitigator
	// MCSide is the controller-side mitigation (nil = none).
	MCSide mitigate.MCSide
	// RFMFilter optionally gates RFMs (Section VIII).
	RFMFilter *mitigate.RFMFilter
	// Workload supplies one generator per core.
	Workload []trace.Generator
	// Duration is the simulated time horizon.
	Duration timing.Tick
	// Warmup excludes the first Warmup ticks from the reported statistics
	// (instructions and controller counters), so threshold-based schemes
	// (tracker tables, Bloom filters) are measured in steady state rather
	// than while still filling. Must be below Duration.
	Warmup timing.Tick
	// Channels builds a multi-channel system (default 1). Workload
	// generators must then emit global bank indices in
	// [0, Channels*Geometry.Banks) — build them over a geometry whose Banks
	// field is the total. With Channels > 1, per-channel mitigators come
	// from DeviceMitFor/MCSideFor (mitigation state must not be shared
	// across channels, since bank indices repeat).
	Channels     int
	DeviceMitFor func(ch int) dram.Mitigator
	MCSideFor    func(ch int) mitigate.MCSide
	// InstPerNS is each core's peak retirement rate (instructions per
	// nanosecond); 4.0 models a ~3 GHz out-of-order core.
	InstPerNS float64
	// MSHR bounds each core's outstanding misses (default 8, approximating
	// an out-of-order core with prefetching).
	MSHR int
	// OnCommand, when set, observes every DRAM command each channel's
	// controller issues (protocol validation; see package cmdtrace). The
	// channel index is passed alongside the command.
	OnCommand func(ch int, cmd memctrl.Cmd)
	// Probe, when set, threads shadowscope instrumentation through the
	// memory controllers, devices, and mitigation schemes; channel ch
	// records on the probe's ForChannel(ch). Nil disables all observation.
	Probe *obs.Probe
	// Spans, when set, threads shadowtap request-lifecycle tracing through
	// the controllers and devices: every request gets a span with
	// conservation-exact stall-cause attribution, rolled up per channel.
	// Nil disables span tracking entirely.
	Spans *span.Collector
	// Progress, when set, is called with the current simulated time roughly
	// every ProgressEvery ticks (observation only; drives the CLI
	// heartbeat). It must not mutate simulation state.
	Progress func(now timing.Tick)
	// ProgressEvery is the Progress callback period (default Duration/100).
	ProgressEvery timing.Tick
}

// Result summarizes a run.
type Result struct {
	Duration timing.Tick
	// Insts and IPC are per core; IPC is in instructions per nanosecond.
	Insts []int64
	IPC   []float64
	MC    memctrl.Stats
	Dev   dram.BankStats
	Flips int
	// Device is channel 0's rank, available for post-run inspection
	// (mapping state, row contents, flip records); Devices lists every
	// channel's rank.
	Device  *dram.Device
	Devices []*dram.Device
}

// core is the per-core replay state.
type core struct {
	gen         trace.Generator
	nextIssueAt timing.Tick
	pending     trace.Event
	outstanding int
	insts       int64
	stalled     bool
	// backoff marks a pending request rejected by a full bank queue;
	// backoffAt is the first rejected attempt, reported to the request's
	// span as queue-full backpressure once it finally enqueues.
	backoff   bool
	backoffAt timing.Tick
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Params == nil {
		return nil, fmt.Errorf("sim: Params required")
	}
	if len(cfg.Workload) == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration")
	}
	if cfg.Geometry.Banks == 0 {
		cfg.Geometry = dram.DefaultGeometry(cfg.Params.Grade == timing.DDR5_4800)
	}
	if cfg.Hammer.HCnt == 0 {
		cfg.Hammer = hammer.DefaultConfig()
	}
	if cfg.InstPerNS <= 0 {
		cfg.InstPerNS = 4.0
	}
	if cfg.MSHR <= 0 {
		cfg.MSHR = 8
	}
	if cfg.Warmup >= cfg.Duration {
		return nil, fmt.Errorf("sim: warmup %v must be below duration %v", cfg.Warmup, cfg.Duration)
	}

	channels := cfg.Channels
	if channels <= 0 {
		channels = 1
	}
	if channels > 1 && cfg.DeviceMit != nil {
		return nil, fmt.Errorf("sim: with Channels > 1 use DeviceMitFor, not DeviceMit")
	}
	if channels > 1 && cfg.MCSide != nil {
		return nil, fmt.Errorf("sim: with Channels > 1 use MCSideFor, not MCSide")
	}

	cores := make([]*core, len(cfg.Workload))
	for i, g := range cfg.Workload {
		cores[i] = &core{gen: g}
		cores[i].fetch(cfg.InstPerNS, 0)
	}

	// Completion queue: (coreID, doneAt) pairs, unsorted (small).
	type completion struct {
		core int
		at   timing.Tick
	}
	var inflight []completion
	onComplete := func(r *memctrl.Request) {
		inflight = append(inflight, completion{core: r.Core, at: r.Done})
	}

	ctls := make([]*memctrl.Controller, channels)
	devices := make([]*dram.Device, channels)
	for ch := 0; ch < channels; ch++ {
		mit := cfg.DeviceMit
		if cfg.DeviceMitFor != nil {
			mit = cfg.DeviceMitFor(ch)
		}
		mcside := cfg.MCSide
		if cfg.MCSideFor != nil {
			mcside = cfg.MCSideFor(ch)
		}
		chProbe := cfg.Probe.ForChannel(ch)
		if chProbe != nil {
			if ps, ok := mit.(probeSetter); ok {
				ps.SetProbe(chProbe)
			}
			if ps, ok := mcside.(probeSetter); ok {
				ps.SetProbe(chProbe)
			}
		}
		spanTr := cfg.Spans.ForChannel(ch, cfg.Geometry.Banks, chProbe)
		dev, err := dram.NewDevice(dram.Config{
			Geometry:  cfg.Geometry,
			Params:    cfg.Params,
			Hammer:    cfg.Hammer,
			Mitigator: mit,
			Probe:     chProbe,
			Spans:     spanTr,
		})
		if err != nil {
			return nil, err
		}
		devices[ch] = dev
		var onCmd func(memctrl.Cmd)
		if cfg.OnCommand != nil {
			chID := ch
			onCmd = func(c memctrl.Cmd) { cfg.OnCommand(chID, c) }
		}
		ctls[ch] = memctrl.New(dev, memctrl.Options{
			MCSide:     mcside,
			RFMFilter:  cfg.RFMFilter,
			OnComplete: onComplete,
			OnCommand:  onCmd,
			Probe:      chProbe,
			Spans:      spanTr,
		})
	}
	mc, err := memsys.New(ctls)
	if err != nil {
		return nil, err
	}

	instSeries := cfg.Probe.Series("sim/insts")
	progEvery := cfg.ProgressEvery
	if progEvery <= 0 {
		progEvery = cfg.Duration / 100
	}
	if progEvery <= 0 {
		progEvery = 1
	}
	nextProg := progEvery

	now := timing.Tick(0)
	var warmInsts []int64
	var warmMC memctrl.Stats
	warmTaken := false
	for now < cfg.Duration {
		if !warmTaken && now >= cfg.Warmup && cfg.Warmup > 0 {
			warmTaken = true
			warmInsts = make([]int64, len(cores))
			for i, c := range cores {
				warmInsts[i] = c.insts
			}
			warmMC = mc.Stats()
		}
		// 1. Retire completions due by now.
		for i := 0; i < len(inflight); {
			if inflight[i].at <= now {
				c := cores[inflight[i].core]
				c.outstanding--
				if c.stalled {
					c.stalled = false
					if c.nextIssueAt < inflight[i].at {
						c.nextIssueAt = inflight[i].at
					}
				}
				inflight[i] = inflight[len(inflight)-1]
				inflight = inflight[:len(inflight)-1]
			} else {
				i++
			}
		}

		// 2. Cores issue due requests.
		for id, c := range cores {
			for !c.stalled && c.nextIssueAt <= now {
				if c.outstanding >= cfg.MSHR {
					c.stalled = true
					break
				}
				req := &memctrl.Request{
					Core:   id,
					Bank:   c.pending.Bank,
					Row:    c.pending.Row,
					Col:    c.pending.Col,
					Write:  c.pending.Write,
					Arrive: now,
				}
				if !mc.Enqueue(req) {
					// Bank queue full: retry after a short backoff.
					if !c.backoff {
						c.backoff, c.backoffAt = true, now
					}
					c.nextIssueAt = now + cfg.Params.TCK*4
					break
				}
				if c.backoff {
					req.Span.NoteBackpressure(c.backoffAt)
					c.backoff = false
				}
				c.outstanding++
				c.fetch(cfg.InstPerNS, now)
				instSeries.Add(now, float64(c.pending.Gap))
			}
		}

		// 3. Controllers issue commands available at now.
		next := timing.Forever
		for {
			t := mc.Step(now)
			if t > now {
				next = t
				break
			}
		}

		// 4. Advance to the earliest future event.
		for _, c := range cores {
			if !c.stalled && c.nextIssueAt > now && c.nextIssueAt < next {
				next = c.nextIssueAt
			}
		}
		for _, f := range inflight {
			if f.at > now && f.at < next {
				next = f.at
			}
		}
		if next <= now {
			next = now + cfg.Params.TCK
		}
		now = next
		if cfg.Progress != nil && now >= nextProg {
			cfg.Progress(now)
			nextProg = now + progEvery
		}
	}

	measured := cfg.Duration - cfg.Warmup
	res := &Result{
		Duration: measured,
		Insts:    make([]int64, len(cores)),
		IPC:      make([]float64, len(cores)),
		MC:       mc.Stats(),
		Dev:      mc.DeviceStats(),
		Flips:    mc.FlipCount(),
		Device:   devices[0],
		Devices:  devices,
	}
	if warmTaken {
		res.MC = subStats(mc.Stats(), warmMC)
	}
	for i, c := range cores {
		res.Insts[i] = c.insts
		if warmTaken {
			res.Insts[i] -= warmInsts[i]
		}
		res.IPC[i] = float64(res.Insts[i]) / measured.Nanoseconds()
	}
	return res, nil
}

// subStats subtracts warmup-phase counters from the final totals.
func subStats(a, w memctrl.Stats) memctrl.Stats {
	a.Acts -= w.Acts
	a.Reads -= w.Reads
	a.Writes -= w.Writes
	a.Pres -= w.Pres
	a.Refs -= w.Refs
	a.RFMs -= w.RFMs
	a.SkippedRFMs -= w.SkippedRFMs
	a.Swaps -= w.Swaps
	a.TRRs -= w.TRRs
	a.RowHits -= w.RowHits
	a.RowMisses -= w.RowMisses
	a.ReadLatency -= w.ReadLatency
	a.CompletedReads -= w.CompletedReads
	a.CompletedWrites -= w.CompletedWrites
	a.BlockedTime -= w.BlockedTime
	return a
}

// fetch loads the core's next trace event and schedules its issue time after
// the event's instruction gap.
func (c *core) fetch(instPerNS float64, now timing.Tick) {
	c.pending = c.gen.Next()
	c.insts += int64(c.pending.Gap)
	gapTime := timing.Tick(float64(c.pending.Gap) / instPerNS * float64(timing.Nanosecond))
	if gapTime < 1 {
		gapTime = 1
	}
	base := c.nextIssueAt
	if now > base {
		base = now
	}
	c.nextIssueAt = base + gapTime
}

// TotalIPC sums per-core IPC.
func (r *Result) TotalIPC() float64 {
	s := 0.0
	for _, v := range r.IPC {
		s += v
	}
	return s
}

// WeightedSpeedup computes the paper's multiprogram metric: the mean of
// per-core IPC ratios between a scheme run and its baseline run (normalized
// weighted speedup; 1.0 = no slowdown).
func WeightedSpeedup(scheme, baseline *Result) float64 {
	if len(scheme.IPC) != len(baseline.IPC) {
		panic("sim: mismatched core counts")
	}
	s := 0.0
	for i := range scheme.IPC {
		if baseline.IPC[i] == 0 {
			continue
		}
		s += scheme.IPC[i] / baseline.IPC[i]
	}
	return s / float64(len(scheme.IPC))
}

// RelativePerformance for single-threaded runs: inverse-execution-time ratio
// equals the IPC ratio over a fixed horizon.
func RelativePerformance(scheme, baseline *Result) float64 {
	return scheme.TotalIPC() / baseline.TotalIPC()
}
