package sim

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// The perf contract of the event-driven scheduler is a zero-allocation
// steady state: once the Request slab, completion queue, and per-bank
// readiness structures are warm, neither the simulator's issue/retire loop
// nor Controller.Step may touch the heap. These tests pin that with
// testing.AllocsPerRun so a regression (a stray append past capacity, a
// recycled object escaping, a map in the hot path) fails CI rather than
// silently costing GC time.

// steadyRunner builds a runner and pumps it past warmup so pools and queue
// capacities have reached their high-water marks.
func steadyRunner(t *testing.T, p *timing.Params, mit dram.Mitigator) *runner {
	return steadyProbedRunner(t, p, mit, nil)
}

// steadyStepRunner is steadyRunner on the retained per-tick scheduler loop
// (Config.NoTimeSkip): the equivalence matrix keeps that path compiled as
// the event wheel's oracle, and the oracle must stay allocation-free too.
func steadyStepRunner(t *testing.T, p *timing.Params, mit dram.Mitigator) *runner {
	t.Helper()
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	r, err := newRunner(Config{
		Params:     p,
		Geometry:   g,
		Hammer:     hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		DeviceMit:  mit,
		Workload:   trace.Generators(profiles, g, 42),
		Duration:   timing.Second,
		NoTimeSkip: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r.now < 30*timing.Microsecond {
		r.tick()
	}
	return r
}

// steadyProbedRunner is steadyRunner with an optional probe attached, for
// pinning the instrumented hot path.
func steadyProbedRunner(t *testing.T, p *timing.Params, mit dram.Mitigator, probe *obs.Probe) *runner {
	t.Helper()
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	r, err := newRunner(Config{
		Params:    p,
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		DeviceMit: mit,
		Workload:  trace.Generators(profiles, g, 42),
		Duration:  timing.Second, // far beyond what the test ever simulates
		Probe:     probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past several refresh intervals so REF scheduling, bank queue
	// growth, and the free-list round trip have all happened at least once.
	for r.now < 30*timing.Microsecond {
		r.tick()
	}
	return r
}

func TestTickDoesNotAllocate(t *testing.T) {
	cases := []struct {
		name string
		p    *timing.Params
		mit  func() dram.Mitigator
	}{
		{name: "baseline", p: baseParams(), mit: func() dram.Mitigator { return nil }},
		{name: "shadow", p: shadowParams(64), mit: func() dram.Mitigator {
			return shadow.New(shadow.Options{Seed: 99})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Default path: the tick-skipping event wheel (tickWheel + advance).
			r := steadyRunner(t, tc.p, tc.mit())
			if avg := testing.AllocsPerRun(2000, r.tick); avg != 0 {
				t.Errorf("runner.tick (wheel) allocates %.3f objects/op in steady state; want 0", avg)
			}
		})
		t.Run(tc.name+"-pertick", func(t *testing.T) {
			// Oracle path: the per-tick loop behind Config.NoTimeSkip.
			r := steadyStepRunner(t, tc.p, tc.mit())
			if avg := testing.AllocsPerRun(2000, r.tick); avg != 0 {
				t.Errorf("runner.tick (per-tick) allocates %.3f objects/op in steady state; want 0", avg)
			}
		})
	}
}

// TestTickWithFlightDoesNotAllocate pins the always-on telemetry lane: a
// probe whose recorder tees every event into a flight ring (no metrics
// registry, no growable event log — the budgeted production config's event
// path) must keep the steady-state loop at 0 allocs/op. Event structs are
// built on the stack and the ring overwrites in place, so enabling the
// flight recorder costs copies, never heap.
func TestTickWithFlightDoesNotAllocate(t *testing.T) {
	ring := flight.NewRing(flight.DefaultCapacity)
	rec := obs.NewRecorder(obs.Options{Flight: ring})
	r := steadyProbedRunner(t, shadowParams(64), shadow.New(shadow.Options{Seed: 99}), rec.NewTrack("flight"))
	if avg := testing.AllocsPerRun(2000, r.tick); avg != 0 {
		t.Errorf("runner.tick with flight recorder allocates %.3f objects/op in steady state; want 0", avg)
	}
	if ring.Total() == 0 {
		t.Fatal("flight ring recorded nothing; the 0-alloc result is vacuous")
	}
}

func TestControllerStepDoesNotAllocate(t *testing.T) {
	p := baseParams()
	dev, err := dram.NewDevice(dram.Config{
		Geometry: dram.TestGeometry(),
		Params:   p,
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc := memctrl.New(dev, memctrl.Options{ClosedPage: true})

	// Single-request hammer loop (the attack runner's shape): one recycled
	// Request, every access a fresh activation.
	var reqStore memctrl.Request
	pat := &trace.SingleSided{Bank: 0, Row: 16}
	now := timing.Tick(0)
	var cur *memctrl.Request
	iter := func() {
		if cur == nil || cur.Done > 0 {
			if cur != nil && cur.Done > now {
				now = cur.Done
			}
			bank, row := pat.NextRow()
			cur = &reqStore
			*cur = memctrl.Request{Bank: bank, Row: row, Arrive: now}
			if !mc.Enqueue(cur) {
				t.Fatal("enqueue failed")
			}
		}
		next := mc.Step(now)
		if next > now {
			if cur != nil && cur.Done > 0 && cur.Done < next {
				next = cur.Done
			}
			now = next
		}
	}
	// Warm up through a few refresh intervals.
	for now < 30*timing.Microsecond {
		iter()
	}
	if avg := testing.AllocsPerRun(2000, iter); avg != 0 {
		t.Errorf("Enqueue+Step allocates %.3f objects/op in steady state; want 0", avg)
	}
}
