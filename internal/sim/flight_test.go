package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// flightConfig is the shared scenario for the flight-recorder integration
// tests: the SHADOW scheme under the high-locality mix, identical to the
// neutrality test's shape.
func flightConfig(t *testing.T) Config {
	t.Helper()
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	return Config{
		Params:    shadowParams(64),
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
		DeviceMit: shadow.New(shadow.Options{Seed: 99}),
		Workload:  trace.Generators(profiles, g, 99),
		Duration:  60 * timing.Microsecond,
	}
}

// TestFlightDumpDeterministicAcrossRuns: two same-seed runs with flight
// recording produce byte-identical dumps — the dump carries only simulated
// time and event payloads, never wall-clock or host state.
func TestFlightDumpDeterministicAcrossRuns(t *testing.T) {
	dump := func() []byte {
		ring := flight.NewRing(256)
		rec := obs.NewRecorder(obs.Options{Flight: ring})
		cfg := flightConfig(t)
		cfg.Probe = rec.NewTrack("run")
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flight.WriteDump(&buf, ring, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if len(a) == 0 {
		t.Fatal("empty dump")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed flight dumps differ (%d vs %d bytes)", len(a), len(b))
	}
	var d flight.Dump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if d.Total == 0 || len(d.Events) == 0 {
		t.Fatalf("dump is vacuous: %+v", d)
	}
}

// TestFlightConservationWatchdogTripsMidRun injects a span-conservation
// violation partway through a live run and checks the watchdog freezes the
// ring at that moment, preserving the preceding event window (the
// EXPERIMENTS.md debugging walkthrough drives this same scenario).
func TestFlightConservationWatchdogTripsMidRun(t *testing.T) {
	ring := flight.NewRing(256)
	rec := obs.NewRecorder(obs.Options{Flight: ring})
	col := span.NewCollector(0)

	// The injection: past half the run, report the aggregate with one
	// resident tick the attribution never claimed.
	inject := false
	watch := flight.NewWatch(ring)
	watch.Add(flight.Conservation(func() span.Aggregate {
		a := col.Aggregate()
		if inject {
			a.Resident += 7
		}
		return a
	}))

	cfg := flightConfig(t)
	cfg.Probe = rec.NewTrack("run")
	cfg.Spans = col
	cfg.ProgressEvery = 5 * timing.Microsecond
	cfg.Progress = func(now timing.Tick) {
		if now >= 30*timing.Microsecond {
			inject = true
		}
		watch.Check(now)
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	tr := watch.Tripped()
	if tr == nil {
		t.Fatal("injected conservation violation never tripped")
	}
	if tr.Watchdog != "span-conservation" {
		t.Fatalf("tripped watchdog = %q", tr.Watchdog)
	}
	if tr.AtPS < int64(30*timing.Microsecond) {
		t.Fatalf("tripped before the injection: at %d ps", tr.AtPS)
	}
	if !ring.Frozen() {
		t.Fatal("ring not frozen after trip")
	}
	frozenTotal := ring.Total()

	var buf bytes.Buffer
	if err := watch.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var d flight.Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if !d.Frozen || d.Trip == nil || d.Trip.Watchdog != "span-conservation" {
		t.Fatalf("dump state = frozen:%v trip:%+v", d.Frozen, d.Trip)
	}
	if len(d.Events) == 0 {
		t.Fatal("frozen dump preserved no events")
	}
	// The run continued past the trip but the window did not move.
	if ring.Total() != frozenTotal {
		t.Fatalf("frozen ring kept recording: %d -> %d", frozenTotal, ring.Total())
	}
}

// TestFlightDivergenceWatchdogSchedulers feeds both schedulers' command
// logs through CmdHash and checks the divergence watchdog: quiet when the
// event-driven scheduler matches the full-rescan reference, tripping on a
// doctored hash.
func TestFlightDivergenceWatchdogSchedulers(t *testing.T) {
	runHash := func(fullRescan bool) *flight.CmdHash {
		h := flight.NewCmdHash()
		cfg := flightConfig(t)
		cfg.FullRescan = fullRescan
		cfg.OnCommand = func(ch int, cmd memctrl.Cmd) {
			h.Note(int(cmd.Kind), cmd.Bank, cmd.Row, cmd.At)
		}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return h
	}
	ref, got := runHash(true), runHash(false)
	if ref.Sum() == flight.NewCmdHash().Sum() {
		t.Fatal("reference run issued no commands")
	}

	watch := flight.NewWatch(flight.NewRing(8))
	watch.Add(flight.Divergence("sched-equiv", ref.Sum, got.Sum))
	if tr := watch.Check(0); tr != nil {
		t.Fatalf("equivalent schedulers tripped divergence: %+v", tr)
	}

	// A diverging log must trip.
	doctored := flight.NewCmdHash()
	doctored.Note(1, 2, 3, 4)
	watch2 := flight.NewWatch(flight.NewRing(8))
	watch2.Add(flight.Divergence("sched-equiv", ref.Sum, doctored.Sum))
	tr := watch2.Check(0)
	if tr == nil || tr.Watchdog != "sched-equiv" {
		t.Fatalf("doctored hash did not trip: %+v", tr)
	}
}
