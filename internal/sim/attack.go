package sim

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// AttackConfig describes a Row Hammer attack run: a single attacker thread
// issuing cache-bypassing reads as fast as the protocol allows, one access
// in flight at a time so every access is a row activation (the
// conflict-inducing access pattern real attacks construct).
type AttackConfig struct {
	Params    *timing.Params
	Geometry  dram.Geometry
	Hammer    hammer.Config
	DeviceMit dram.Mitigator
	MCSide    mitigate.MCSide
	// MaxActs stops the attack after this many activations (0 = unlimited).
	MaxActs int64
	// Duration stops the attack at this simulated time (0 = one tREFW).
	Duration timing.Tick
	// StopOnFlip ends the run at the first bit flip.
	StopOnFlip bool
	// Probe, when set, threads shadowscope instrumentation through the
	// controller, device, and mitigation schemes.
	Probe *obs.Probe
	// FullRescan runs the controller with the pre-event-driven full-rescan
	// scheduler (see memctrl.Options.FullRescan); equivalence testing only.
	FullRescan bool
	// NoTimeSkip disables the event-wheel fast path that skips controller
	// Steps at instants where the cached readiness bound proves the channel
	// cannot act; equivalence testing only.
	NoTimeSkip bool
}

// AttackResult reports the outcome.
type AttackResult struct {
	Acts      int64
	Flips     int
	FirstFlip timing.Tick // zero if none
	Elapsed   timing.Tick
	MC        memctrl.Stats
	Device    *dram.Device
}

// RunAttack mounts the pattern against a device built from cfg.
func RunAttack(cfg AttackConfig, pat trace.Pattern) (*AttackResult, error) {
	if cfg.Params == nil {
		return nil, fmt.Errorf("sim: Params required")
	}
	if cfg.Geometry.Banks == 0 {
		cfg.Geometry = dram.DefaultGeometry(cfg.Params.Grade == timing.DDR5_4800)
	}
	if cfg.Hammer.HCnt == 0 {
		cfg.Hammer = hammer.DefaultConfig()
	}
	if cfg.Duration == 0 {
		cfg.Duration = cfg.Params.REFW
	}
	if cfg.Probe != nil {
		if ps, ok := cfg.DeviceMit.(probeSetter); ok {
			ps.SetProbe(cfg.Probe)
		}
		if ps, ok := cfg.MCSide.(probeSetter); ok {
			ps.SetProbe(cfg.Probe)
		}
	}
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  cfg.Geometry,
		Params:    cfg.Params,
		Hammer:    cfg.Hammer,
		Mitigator: cfg.DeviceMit,
		Probe:     cfg.Probe,
	})
	if err != nil {
		return nil, err
	}

	// The attacker keeps one access in flight, so a single Request object is
	// recycled for the whole run (whole-struct reset per access).
	var reqStore memctrl.Request
	var cur *memctrl.Request
	mc := memctrl.New(dev, memctrl.Options{
		MCSide: cfg.MCSide, ClosedPage: true, Probe: cfg.Probe,
		FullRescan: cfg.FullRescan,
	})

	res := &AttackResult{Device: dev}
	now := timing.Tick(0)
	// Event-wheel state: ctlNext is a sound lower bound on the controller's
	// next possible action; dirty forces a Step after an enqueue. When the
	// bound proves the controller quiescent at a wakeup (we woke early only
	// to check cur.Done), the Step call is skipped entirely.
	ctlNext := timing.Tick(0)
	dirty := true
	for now < cfg.Duration {
		if cur == nil || cur.Done > 0 {
			if cur != nil && cur.Done > now {
				now = cur.Done
			}
			if cfg.MaxActs > 0 && res.Acts >= cfg.MaxActs {
				break
			}
			if cfg.StopOnFlip && dev.FlipCount() > 0 {
				break
			}
			bank, row := pat.NextRow()
			cur = &reqStore
			*cur = memctrl.Request{Bank: bank, Row: row, Arrive: now}
			if !mc.Enqueue(cur) {
				return nil, fmt.Errorf("sim: attack enqueue failed")
			}
			res.Acts++
			dirty = true
		}
		if cfg.NoTimeSkip || dirty || ctlNext <= now || mc.Volatile() {
			pend := mc.Step(now)
			dirty = false
			if pend <= now {
				continue
			}
			ctlNext = pend
			if !cfg.NoTimeSkip && !mc.Volatile() {
				// As in the trace runner, fold the raw Step return with the
				// cached-state bound: their max is still sound and skips
				// post-command bus-echo wakeups the raw return would force.
				if b := mc.NextReadyAt(now); b > ctlNext {
					ctlNext = b
				}
			}
		}
		next := ctlNext
		if cur != nil && cur.Done > 0 && cur.Done < next {
			next = cur.Done
		}
		if next <= now {
			next = now + cfg.Params.TCK
		}
		now = next
	}
	res.Elapsed = now
	res.Flips = dev.FlipCount()
	res.MC = mc.Stats
	if res.Flips > 0 {
		// The fault model does not timestamp flips; approximate the first
		// flip time by when the run ended if StopOnFlip, else leave elapsed.
		res.FirstFlip = res.Elapsed
	}
	return res, nil
}
