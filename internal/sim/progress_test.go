package sim

import (
	"testing"

	"shadow/internal/timing"
)

// TestProgressCatchUpIsAnchored pins the O(1) heartbeat re-arm: when the
// event wheel jumps simulated time across many progress intervals at once
// (an idle stretch), noteProgress must fire exactly one callback and re-arm
// on the first cadence multiple past now — not replay every skipped
// interval, and not drift off the cadence grid.
func TestProgressCatchUpIsAnchored(t *testing.T) {
	const every = timing.Tick(100)
	var fired []timing.Tick
	r := &runner{
		cfg:       &Config{Progress: func(now timing.Tick) { fired = append(fired, now) }},
		progEvery: every,
		nextProg:  every,
	}

	// One jump past 10k+ cadence intervals.
	r.now = every*10_000 + 37
	r.noteProgress()
	if len(fired) != 1 || fired[0] != r.now {
		t.Fatalf("jump across 10k intervals fired %v; want exactly one heartbeat at %d", fired, r.now)
	}
	if want := every * 10_001; r.nextProg != want {
		t.Fatalf("re-armed at %d; want the next cadence multiple %d", r.nextProg, want)
	}

	// Inside the re-armed interval: silent.
	r.now = every*10_001 - 1
	r.noteProgress()
	if len(fired) != 1 {
		t.Fatalf("heartbeat fired early at %d (deadline %d)", r.now, r.nextProg)
	}

	// Exactly on the deadline: fires once and advances one interval.
	r.now = every * 10_001
	r.noteProgress()
	if len(fired) != 2 || fired[1] != r.now {
		t.Fatalf("deadline heartbeat: fired %v; want a second firing at %d", fired, r.now)
	}
	if want := every * 10_002; r.nextProg != want {
		t.Fatalf("re-armed at %d; want %d", r.nextProg, want)
	}

	// A second huge jump stays phase-anchored to the same grid.
	r.now = every*1_000_000 + 1
	r.noteProgress()
	if want := every * 1_000_001; r.nextProg != want {
		t.Fatalf("after second jump re-armed at %d; want grid multiple %d", r.nextProg, want)
	}
}
