package sim

import (
	"math"
	"testing"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/rng"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

func baseParams() *timing.Params {
	return timing.NewParams(timing.DDR4_2666)
}

func shadowParams(raaimt int) *timing.Params {
	p := timing.NewParams(timing.DDR4_2666)
	return p.WithShadow(circuit.DefaultShadowTimings(p)).WithRAAIMT(raaimt)
}

func smallGeo() dram.Geometry {
	g := dram.DefaultGeometry(false)
	g.SubarraysPerBank = 8 // keep memory small in tests
	return g
}

func runWorkload(t *testing.T, p *timing.Params, mit dram.Mitigator, mc mitigate.MCSide, cores int, dur timing.Tick) *Result {
	t.Helper()
	g := smallGeo()
	profiles := trace.MixHigh(cores)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	res, err := Run(Config{
		Params:    p,
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		DeviceMit: mit,
		MCSide:    mc,
		Workload:  trace.Generators(profiles, g, 42),
		Duration:  dur,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBasics(t *testing.T) {
	res := runWorkload(t, baseParams(), nil, nil, 2, 100*timing.Microsecond)
	if res.MC.Reads == 0 {
		t.Fatal("no reads issued")
	}
	if res.MC.Refs == 0 {
		t.Fatal("no refreshes in 100us (tREFI is 7.8us)")
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 8 {
			t.Fatalf("core %d IPC %.2f implausible", i, ipc)
		}
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("zero total IPC")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil params accepted")
	}
	if _, err := Run(Config{Params: baseParams()}); err == nil {
		t.Error("empty workload accepted")
	}
	g := smallGeo()
	w := trace.Generators(trace.MixHigh(1), g, 1)
	if _, err := Run(Config{Params: baseParams(), Workload: w}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runWorkload(t, baseParams(), nil, nil, 2, 50*timing.Microsecond)
	b := runWorkload(t, baseParams(), nil, nil, 2, 50*timing.Microsecond)
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("core %d IPC differs across identical runs", i)
		}
	}
	if a.MC.Acts != b.MC.Acts {
		t.Fatal("MC stats differ across identical runs")
	}
}

// TestShadowOverheadSmall reproduces the paper's headline: SHADOW costs only
// a few percent even on memory-intensive multiprogrammed workloads.
func TestShadowOverheadSmallButNonzero(t *testing.T) {
	dur := 200 * timing.Microsecond
	base := runWorkload(t, baseParams(), nil, nil, 4, dur)
	sh := runWorkload(t, shadowParams(64), shadow.New(shadow.Options{Seed: 7}), nil, 4, dur)
	ws := WeightedSpeedup(sh, base)
	if ws > 1.001 {
		t.Fatalf("SHADOW faster than baseline? WS = %.3f", ws)
	}
	if ws < 0.90 {
		t.Fatalf("SHADOW overhead too large: WS = %.3f (paper: <3%%)", ws)
	}
	if sh.Dev.RFMs == 0 {
		t.Fatal("no RFMs issued under memory-intensive load")
	}
	if sh.Dev.RowCopies == 0 {
		t.Fatal("no row copies: shuffles not running")
	}
}

// TestLowerRAAIMTCostsMore: more frequent RFMs must cost performance.
func TestLowerRAAIMTCostsMore(t *testing.T) {
	dur := 200 * timing.Microsecond
	base := runWorkload(t, baseParams(), nil, nil, 4, dur)
	loose := runWorkload(t, shadowParams(256), shadow.New(shadow.Options{Seed: 7}), nil, 4, dur)
	tight := runWorkload(t, shadowParams(16), shadow.New(shadow.Options{Seed: 7}), nil, 4, dur)
	wsLoose := WeightedSpeedup(loose, base)
	wsTight := WeightedSpeedup(tight, base)
	if wsTight >= wsLoose {
		t.Fatalf("RAAIMT 16 (WS %.3f) should be slower than 256 (WS %.3f)", wsTight, wsLoose)
	}
}

// TestDRRSlowdown: doubling the refresh rate costs measurable performance.
func TestDRRCostsPerformance(t *testing.T) {
	dur := 200 * timing.Microsecond
	base := runWorkload(t, baseParams(), nil, nil, 4, dur)
	drr := runWorkload(t, baseParams().WithRefreshScale(2), nil, nil, 4, dur)
	ws := WeightedSpeedup(drr, base)
	if ws >= 1.0 {
		t.Fatalf("DRR did not cost anything: WS = %.3f", ws)
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	a := runWorkload(t, baseParams(), nil, nil, 2, 50*timing.Microsecond)
	if ws := WeightedSpeedup(a, a); math.Abs(ws-1) > 1e-12 {
		t.Fatalf("self speedup = %g", ws)
	}
	if rp := RelativePerformance(a, a); math.Abs(rp-1) > 1e-12 {
		t.Fatalf("self relative perf = %g", rp)
	}
}

func TestAttackBaselineFlips(t *testing.T) {
	g := dram.TestGeometry()
	res, err := RunAttack(AttackConfig{
		Params:     baseParams(),
		Geometry:   g,
		Hammer:     hammer.Config{HCnt: 512, BlastRadius: 3},
		MaxActs:    4096,
		StopOnFlip: true,
	}, &trace.SingleSided{Bank: 0, Row: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Fatal("unprotected device survived 4096 single-row ACTs at HCnt 512")
	}
	if res.Acts < 512 {
		t.Fatalf("flip after only %d ACTs", res.Acts)
	}
}

func TestAttackShadowDefends(t *testing.T) {
	g := dram.TestGeometry()
	p := shadowParams(16)
	res, err := RunAttack(AttackConfig{
		Params:    p,
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 512, BlastRadius: 3},
		DeviceMit: shadow.New(shadow.Options{Seed: 3}),
		MaxActs:   16384,
	}, &trace.SingleSided{Bank: 0, Row: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatalf("SHADOW flipped %d bits under single-row attack", res.Flips)
	}
	if res.Device.TotalStats().RFMs == 0 {
		t.Fatal("attack never triggered RFMs")
	}
}

func TestAttackDoubleSidedVsBlast(t *testing.T) {
	// Both classic and blast patterns must flip the unprotected device; the
	// blast pattern needs ~2x the activations (weight 0.5 at distance 2).
	g := dram.TestGeometry()
	run := func(pat trace.Pattern) int64 {
		res, err := RunAttack(AttackConfig{
			Params:     baseParams(),
			Geometry:   g,
			Hammer:     hammer.Config{HCnt: 256, BlastRadius: 3},
			MaxActs:    8192,
			StopOnFlip: true,
		}, pat)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flips == 0 {
			t.Fatalf("%s never flipped", pat.Name())
		}
		return res.Acts
	}
	ds := run(&trace.DoubleSided{Bank: 0, Victim: 16})
	bl := run(trace.Blast(0, 16, 2))
	if bl <= ds {
		t.Fatalf("blast (%d acts) should need more than double-sided (%d)", bl, ds)
	}
}

func TestAttackRespectsDuration(t *testing.T) {
	g := dram.TestGeometry()
	res, err := RunAttack(AttackConfig{
		Params:   baseParams(),
		Geometry: g,
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 1},
		Duration: 10 * timing.Microsecond,
	}, &trace.SingleSided{Bank: 0, Row: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed > 11*timing.Microsecond {
		t.Fatalf("ran past duration: %v", res.Elapsed)
	}
	if res.Acts == 0 {
		t.Fatal("no activations")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	g := smallGeo()
	profiles := trace.MixHigh(2)
	mk := func(warmup timing.Tick) *Result {
		res, err := Run(Config{
			Params:   baseParams(),
			Geometry: g,
			Hammer:   hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
			Workload: trace.Generators(profiles, g, 5),
			Duration: 100*timing.Microsecond + warmup,
			Warmup:   warmup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := mk(0)
	warm := mk(50 * timing.Microsecond)
	if warm.Duration != cold.Duration {
		t.Fatalf("measured durations differ: %v vs %v", warm.Duration, cold.Duration)
	}
	// Warm-measured activity must be in the same ballpark as cold-measured
	// (same measured horizon), NOT 1.5x larger (which would mean warmup
	// leaked into the stats).
	ratio := float64(warm.MC.Acts) / float64(cold.MC.Acts)
	if ratio > 1.25 || ratio < 0.75 {
		t.Fatalf("warmup leaked into stats: acts ratio %.2f", ratio)
	}
	if _, err := Run(Config{
		Params:   baseParams(),
		Geometry: g,
		Workload: trace.Generators(profiles, g, 5),
		Duration: timing.Microsecond,
		Warmup:   timing.Microsecond,
	}); err == nil {
		t.Fatal("warmup >= duration accepted")
	}
}

// TestRandomWorkloadFuzz drives random profiles through the full stack and
// relies on the device's internal timing validation (any protocol violation
// panics): a property-style check that the MC never issues an illegal
// command sequence.
func TestRandomWorkloadFuzz(t *testing.T) {
	g := smallGeo()
	src := rng.NewSplitMix(77)
	for trial := 0; trial < 6; trial++ {
		prof := trace.Profile{
			Name:           "fuzz",
			MPKI:           5 + float64(rng.Intn(src, 150)),
			RowLocality:    rng.Float64(src) * 0.9,
			WorkingSetRows: 64 + rng.Intn(src, 4096),
			WriteFrac:      rng.Float64(src) * 0.6,
			HotFrac:        rng.Float64(src) * 0.4,
			HotRows:        1 + rng.Intn(src, 32),
		}
		nCores := 1 + rng.Intn(src, 4)
		profs := make([]trace.Profile, nCores)
		for i := range profs {
			profs[i] = prof
		}
		p := shadowParams(8 << rng.Intn(src, 4))
		res, err := Run(Config{
			Params:    p,
			Geometry:  g,
			Hammer:    hammer.Config{HCnt: 256 << rng.Intn(src, 4), BlastRadius: 1 + rng.Intn(src, 5)},
			DeviceMit: shadow.New(shadow.Options{Seed: uint64(trial)}),
			Workload:  trace.Generators(profs, g, uint64(trial)*13),
			Duration:  40 * timing.Microsecond,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.MC.Acts == 0 {
			t.Fatalf("trial %d: no activity", trial)
		}
	}
}

// TestHalfDoubleDefeatsNarrowTRRNotShadow reproduces the Half-Double story:
// the distance-2 pattern flips bits on an unprotected device, and SHADOW
// stops it (it relocates aggressors; attack distance is irrelevant).
func TestHalfDoubleDefeatsNarrowTRRNotShadow(t *testing.T) {
	g := dram.TestGeometry()
	hd := func() trace.Pattern { return &trace.HalfDouble{Bank: 0, Victim: 16} }

	base, err := RunAttack(AttackConfig{
		Params:   baseParams(),
		Geometry: g,
		Hammer:   hammer.Config{HCnt: 384, BlastRadius: 3},
		MaxActs:  16384,
	}, hd())
	if err != nil {
		t.Fatal(err)
	}
	if base.Flips == 0 {
		t.Fatal("half-double did not flip the unprotected device")
	}

	prot, err := RunAttack(AttackConfig{
		Params:    shadowParams(16),
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 384, BlastRadius: 3},
		DeviceMit: shadow.New(shadow.Options{Seed: 8}),
		MaxActs:   16384,
	}, hd())
	if err != nil {
		t.Fatal(err)
	}
	if prot.Flips != 0 {
		t.Fatalf("SHADOW flipped %d bits under half-double", prot.Flips)
	}
}
