package sim

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/mitigate"
	"shadow/internal/obs/span"
	"shadow/internal/report"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// The simulator's two scheduler optimizations must be behaviorally
// invisible, separately and combined:
//
//   - the event-driven controller scheduler (per-bank readiness cache +
//     min-queue, toggled off by Config.FullRescan), and
//   - the tick-skipping event wheel (simulated time jumps straight to the
//     next actionable instant, toggled off by Config.NoTimeSkip).
//
// For every mitigation scheme, every seed, and every observation mode, each
// of the four {event-cache, full-rescan} x {event-wheel, per-tick} variants
// must produce bit-identical statistics, DRAM command streams, flip records,
// and span blame tables against the double-oracle (full-rescan + per-tick,
// both pre-optimization paths kept compiled exactly for this test). Any
// divergence means a cache-invalidation rule or a readiness lower bound is
// wrong and an optimization changed simulated behavior, not just speed.

// equivScheme builds one protection configuration. Constructors are funcs so
// each run gets fresh mitigation state (trackers, CSPRNGs, Bloom filters).
type equivScheme struct {
	name   string
	params func() *timing.Params
	dev    func(seed uint64) dram.Mitigator
	mc     func(p *timing.Params, seed uint64) mitigate.MCSide
	filter func(p *timing.Params) *mitigate.RFMFilter
}

func equivSchemes() []equivScheme {
	h := hammer.Config{HCnt: 4096, BlastRadius: 3}
	rows := smallGeo().PARowsPerBank()
	return []equivScheme{
		{name: "none", params: baseParams},
		{
			name:   "shadow",
			params: func() *timing.Params { return shadowParams(64) },
			dev:    func(seed uint64) dram.Mitigator { return shadow.New(shadow.Options{Seed: seed + 1}) },
		},
		{
			name:   "shadow-filtered",
			params: func() *timing.Params { return shadowParams(64) },
			dev:    func(seed uint64) dram.Mitigator { return shadow.New(shadow.Options{Seed: seed + 1}) },
			filter: func(p *timing.Params) *mitigate.RFMFilter {
				return mitigate.NewRFMFilter(1024, 4, 16, p.REFW)
			},
		},
		{
			name:   "parfm",
			params: func() *timing.Params { return baseParams().WithRAAIMT(32) },
			dev:    func(seed uint64) dram.Mitigator { return mitigate.NewPARFM(h.BlastRadius, seed+2) },
		},
		{
			name:   "mithril",
			params: func() *timing.Params { return baseParams().WithRAAIMT(64) },
			dev:    func(seed uint64) dram.Mitigator { return mitigate.NewMithril(2048, h.BlastRadius) },
		},
		{
			name:   "panopticon",
			params: func() *timing.Params { return baseParams().WithRAAIMT(64) },
			dev:    func(seed uint64) dram.Mitigator { return mitigate.NewPanopticon(h.HCnt, h.BlastRadius) },
		},
		{
			name:   "drr",
			params: func() *timing.Params { return baseParams().WithRefreshScale(2) },
		},
		{
			name:   "blockhammer",
			params: baseParams,
			mc: func(p *timing.Params, seed uint64) mitigate.MCSide {
				return mitigate.NewBlockHammer(mitigate.BlockHammerConfig{
					Hammer: h, REFW: p.REFW, Seed: seed + 3,
				})
			},
		},
		{
			name:   "rrs",
			params: baseParams,
			mc: func(p *timing.Params, seed uint64) mitigate.MCSide {
				return mitigate.NewRRS(mitigate.RRSConfig{
					SwapThreshold: int64(h.HCnt / 6),
					RowsPerBank:   rows,
					REFW:          p.REFW,
					Seed:          seed + 4,
				})
			},
		},
		{
			name:   "graphene",
			params: baseParams,
			mc: func(p *timing.Params, seed uint64) mitigate.MCSide {
				return mitigate.NewGraphene(mitigate.GrapheneConfig{
					Hammer: h, RowsPerBank: rows, REFW: p.REFW,
				})
			},
		},
		{
			name:   "para",
			params: baseParams,
			mc: func(p *timing.Params, seed uint64) mitigate.MCSide {
				return mitigate.NewPARA(h, rows, seed+5)
			},
		},
	}
}

// equivView is the full observable surface of one run: the determinism-test
// statsView plus a hash of every DRAM command the controller issued (kind,
// bank, row, tick) and the rendered blame table when spans are attached.
type equivView struct {
	Duration timing.Tick
	Insts    []int64
	IPC      []float64
	MC       memctrl.Stats
	Dev      dram.BankStats
	Flips    int
	Records  []dram.FlipRecord
	Scrub    dram.ScrubReport
	CmdHash  uint64
	Blame    string
}

// equivVariants is the scheduler matrix: the double-oracle first, then the
// three optimized combinations that must match it bit for bit.
var equivVariants = []struct {
	name       string
	fullRescan bool
	noTimeSkip bool
}{
	{"rescan+tick", true, true}, // double-oracle
	{"event+tick", false, true},
	{"rescan+wheel", true, false},
	{"event+wheel", false, false},
}

func runEquiv(t *testing.T, sc equivScheme, seed uint64, spans, fullRescan, noTimeSkip bool) equivView {
	t.Helper()
	p := sc.params()
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	var dev dram.Mitigator
	if sc.dev != nil {
		dev = sc.dev(seed)
	}
	var mcside mitigate.MCSide
	if sc.mc != nil {
		mcside = sc.mc(p, seed)
	}
	var filter *mitigate.RFMFilter
	if sc.filter != nil {
		filter = sc.filter(p)
	}
	var col *span.Collector
	if spans {
		col = span.NewCollector(4096)
	}
	cmdHash := fnv.New64a()
	res, err := Run(Config{
		Params:    p,
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
		DeviceMit: dev,
		MCSide:    mcside,
		RFMFilter: filter,
		Workload:  trace.Generators(profiles, g, seed),
		Duration:  60 * timing.Microsecond,
		Spans:     col,
		OnCommand: func(ch int, cmd memctrl.Cmd) {
			fmt.Fprintf(cmdHash, "%d %d %d %d %d\n", ch, cmd.Kind, cmd.Bank, cmd.Row, cmd.At)
		},
		FullRescan: fullRescan,
		NoTimeSkip: noTimeSkip,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := equivView{
		Duration: res.Duration,
		Insts:    res.Insts,
		IPC:      res.IPC,
		MC:       res.MC,
		Dev:      res.Dev,
		Flips:    res.Flips,
		Records:  res.Device.Flips(),
		Scrub:    res.Device.Scrub(),
		CmdHash:  cmdHash.Sum64(),
	}
	if col != nil {
		v.Blame = string(report.BlameJSON([]report.BlameRow{{Label: sc.name, Agg: col.Aggregate()}}))
	}
	return v
}

// TestSchedulerEquivalence is the bit-identity gate for the scheduler
// matrix: every scheme, three seeds, all four scheduler variants,
// statistics + command stream against the double-oracle.
func TestSchedulerEquivalence(t *testing.T) {
	for _, sc := range equivSchemes() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []uint64{42, 7, 1234} {
				oracle := runEquiv(t, sc, seed, false, equivVariants[0].fullRescan, equivVariants[0].noTimeSkip)
				for _, v := range equivVariants[1:] {
					got := runEquiv(t, sc, seed, false, v.fullRescan, v.noTimeSkip)
					if !reflect.DeepEqual(oracle, got) {
						t.Errorf("seed %d: %s diverged from %s:\n oracle: %+v\n got:    %+v",
							seed, v.name, equivVariants[0].name, oracle, got)
					}
				}
			}
		})
	}
}

// TestSchedulerEquivalenceWithSpans repeats the check with shadowtap span
// tracking attached: stall-cause attribution must blame identical causes for
// identical durations under both schedulers (this is what forces non-idle
// banks to stay volatile in the readiness cache — a cached bank could
// otherwise miss a blame-cause transition driven by another bank's command).
func TestSchedulerEquivalenceWithSpans(t *testing.T) {
	for _, sc := range equivSchemes() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			oracle := runEquiv(t, sc, 42, true, equivVariants[0].fullRescan, equivVariants[0].noTimeSkip)
			if oracle.Blame == "" {
				t.Fatal("span run produced no blame table")
			}
			for _, v := range equivVariants[1:] {
				got := runEquiv(t, sc, 42, true, v.fullRescan, v.noTimeSkip)
				if got.Blame == "" {
					t.Fatal("span run produced no blame table")
				}
				if !reflect.DeepEqual(oracle, got) {
					diff := ""
					if oracle.Blame != got.Blame {
						diff = fmt.Sprintf("\n blame oracle: %s\n blame %s: %s", oracle.Blame, v.name, got.Blame)
					}
					t.Errorf("span-tracked %s diverged:\n oracle: %+v\n got:    %+v%s", v.name, oracle, got, diff)
				}
			}
		})
	}
}

// TestSchedulerEquivalenceAttack covers the attack runner: a single-request
// closed-page hammer loop against both an unprotected and a SHADOW-protected
// device must observe identical activation counts, flips, and controller
// stats under both schedulers.
func TestSchedulerEquivalenceAttack(t *testing.T) {
	cases := []struct {
		name string
		p    *timing.Params
		dev  func() dram.Mitigator
		pat  func() trace.Pattern
	}{
		{
			name: "unprotected-double-sided",
			p:    baseParams(),
			dev:  func() dram.Mitigator { return nil },
			pat:  func() trace.Pattern { return &trace.DoubleSided{Bank: 0, Victim: 16} },
		},
		{
			name: "shadow-single-sided",
			p:    shadowParams(16),
			dev:  func() dram.Mitigator { return shadow.New(shadow.Options{Seed: 3}) },
			pat:  func() trace.Pattern { return &trace.SingleSided{Bank: 0, Row: 16} },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(fullRescan, noTimeSkip bool) ([]byte, *AttackResult) {
				res, err := RunAttack(AttackConfig{
					Params:     tc.p,
					Geometry:   dram.TestGeometry(),
					Hammer:     hammer.Config{HCnt: 512, BlastRadius: 3},
					DeviceMit:  tc.dev(),
					MaxActs:    8192,
					FullRescan: fullRescan,
					NoTimeSkip: noTimeSkip,
				}, tc.pat())
				if err != nil {
					t.Fatal(err)
				}
				sum := []byte(fmt.Sprintf("%d %d %d %+v %+v",
					res.Acts, res.Flips, res.Elapsed, res.MC, res.Device.Flips()))
				return sum, res
			}
			oracleSum, oracleRes := run(equivVariants[0].fullRescan, equivVariants[0].noTimeSkip)
			for _, v := range equivVariants[1:] {
				gotSum, _ := run(v.fullRescan, v.noTimeSkip)
				if !bytes.Equal(oracleSum, gotSum) {
					t.Errorf("attack %s diverged:\n oracle: %s\n got:    %s", v.name, oracleSum, gotSum)
				}
			}
			if oracleRes.Acts == 0 {
				t.Fatal("attack issued no activations; equivalence check is vacuous")
			}
		})
	}
}
