package sim

import (
	"reflect"
	"strings"
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/obs"
	"shadow/internal/obs/flight"
	"shadow/internal/obs/span"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// TestObservationDoesNotPerturbStats is the shadowscope counterpart of
// TestRunDeterministicAcrossRuns: attaching probes must never change what the
// simulator computes. The same seeded config runs three ways — probes off,
// metrics only, and full event tracing — and every reported statistic must be
// bit-identical across all three. A divergence means an instrument leaked
// into simulation state (e.g. an Observe with a side effect, or probe-gated
// control flow).
func TestObservationDoesNotPerturbStats(t *testing.T) {
	run := func(probe *obs.Probe, spans *span.Collector) *Result {
		g := smallGeo()
		profiles := trace.MixHigh(2)
		for i := range profiles {
			profiles[i].WorkingSetRows = 1 << 10
		}
		res, err := Run(Config{
			Params:    shadowParams(64),
			Geometry:  g,
			Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
			DeviceMit: shadow.New(shadow.Options{Seed: 99}),
			Workload:  trace.Generators(profiles, g, 99),
			Duration:  80 * timing.Microsecond,
			Probe:     probe,
			Spans:     spans,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	type statsView struct {
		Duration timing.Tick
		Insts    []int64
		IPC      []float64
		MC       any
		Dev      dram.BankStats
		Flips    int
		Records  []dram.FlipRecord
		Scrub    dram.ScrubReport
	}
	view := func(r *Result) statsView {
		return statsView{
			Duration: r.Duration,
			Insts:    r.Insts,
			IPC:      r.IPC,
			MC:       r.MC,
			Dev:      r.Dev,
			Flips:    r.Flips,
			Records:  r.Device.Flips(),
			Scrub:    r.Device.Scrub(),
		}
	}

	bare := view(run(nil, nil))

	metRec := obs.NewRecorder(obs.Options{Metrics: true})
	metrics := view(run(metRec.NewTrack("m"), nil))

	fullRec := obs.NewRecorder(obs.Options{Metrics: true, Events: true})
	full := view(run(fullRec.NewTrack("f"), nil))

	// Shadowtap's span tracking sits directly on the controller's scheduling
	// decisions, so it is held to the same neutrality bar: spans on (with and
	// without event probing) must not move a single statistic.
	spanCol := span.NewCollector(0)
	spanned := view(run(nil, spanCol))

	spanRec := obs.NewRecorder(obs.Options{Metrics: true, Events: true})
	spanFullCol := span.NewCollector(0)
	spanFull := view(run(spanRec.NewTrack("s"), spanFullCol))

	// The always-on telemetry config — metrics plus a flight ring, no
	// growable event log — is held to the same neutrality bar: the tee in
	// Recorder.emit and the emitEvents fast path in the controller must not
	// move a single statistic.
	flightRing := flight.NewRing(1024)
	flightRec := obs.NewRecorder(obs.Options{Metrics: true, Flight: flightRing})
	flighted := view(run(flightRec.NewTrack("fl"), nil))

	// And flight combined with spans and the event log (everything on).
	flightFullRing := flight.NewRing(1024)
	flightFullRec := obs.NewRecorder(obs.Options{Metrics: true, Events: true, Flight: flightFullRing})
	flightFullCol := span.NewCollector(0)
	flightFull := view(run(flightFullRec.NewTrack("ff"), flightFullCol))

	if !reflect.DeepEqual(bare, metrics) {
		t.Errorf("metrics-only run diverged from unobserved run:\n bare: %+v\n metrics: %+v", bare, metrics)
	}
	if !reflect.DeepEqual(bare, full) {
		t.Errorf("fully traced run diverged from unobserved run:\n bare: %+v\n traced: %+v", bare, full)
	}
	if !reflect.DeepEqual(bare, spanned) {
		t.Errorf("span-tracked run diverged from unobserved run:\n bare: %+v\n spans: %+v", bare, spanned)
	}
	if !reflect.DeepEqual(bare, spanFull) {
		t.Errorf("span+trace run diverged from unobserved run:\n bare: %+v\n span+trace: %+v", bare, spanFull)
	}
	if !reflect.DeepEqual(bare, flighted) {
		t.Errorf("flight-recorded run diverged from unobserved run:\n bare: %+v\n flight: %+v", bare, flighted)
	}
	if !reflect.DeepEqual(bare, flightFull) {
		t.Errorf("flight+span+trace run diverged from unobserved run:\n bare: %+v\n flight+all: %+v", bare, flightFull)
	}

	// The flight runs must actually have recorded, or their equalities are
	// vacuous; the everything-on ring additionally sees span events.
	if flightRing.Total() == 0 {
		t.Fatal("flight run recorded no events")
	}
	if flightRing.KindCount(obs.KindACT) == 0 {
		t.Error("flight ring captured no ACT events")
	}
	if flightFullRing.KindCount(obs.KindSpan) == 0 {
		t.Error("flight+span ring captured no span events")
	}

	// The span runs must have recorded conserved spans, or their equalities
	// are vacuous; and the two span runs must agree with each other (probing
	// must not change what the tracker records).
	for _, col := range []*span.Collector{spanCol, spanFullCol} {
		agg := col.Aggregate()
		if agg.Spans == 0 {
			t.Fatal("span run recorded no spans")
		}
		if !agg.Conserved() {
			t.Errorf("span aggregate not conserved: stall %d != resident %d", agg.StallTotal(), agg.Resident)
		}
	}
	if a, b := spanCol.Aggregate(), spanFullCol.Aggregate(); !reflect.DeepEqual(a, b) {
		t.Errorf("span aggregates differ with/without event probe:\n unprobed: %+v\n probed: %+v", a, b)
	}

	// The observed runs must actually have observed something, or the
	// equalities above are vacuous.
	if h := metRec.Metrics().LookupHistogram("m/mc/read_latency_ticks"); h.Count() == 0 {
		t.Error("metrics run recorded no read latencies")
	}
	kinds := map[obs.Kind]int{}
	for _, e := range fullRec.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindACT, obs.KindRFM, obs.KindShuffle} {
		if kinds[k] == 0 {
			t.Errorf("traced run captured no %s events (got %v)", k, kinds)
		}
	}

	// And the capture must render as a Chrome trace naming those events.
	var b strings.Builder
	if err := fullRec.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"ACT"`, `"name":"RFM"`, `"name":"shuffle"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Chrome trace missing %s", want)
		}
	}

	// The probed span run must have emitted per-request duration events that
	// render as blame-labeled flame rows on per-core lane threads.
	spanEvents := 0
	for _, e := range spanRec.Events() {
		if e.Kind == obs.KindSpan {
			spanEvents++
		}
	}
	if spanEvents == 0 {
		t.Fatal("span+trace run emitted no KindSpan events")
	}
	var sb strings.Builder
	if err := spanRec.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"req:`, `"name":"core 0 lane 0"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Chrome trace missing %s", want)
		}
	}
}
