package sim

import (
	"reflect"
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// TestRunDeterministicAcrossRuns is the dynamic counterpart of shadowvet's
// determinism analyzer: the analyzer proves no wall-clock/global-rand/map-
// order entropy enters the simulation packages statically, and this test
// guards what it cannot prove — two runs of the same config with the same
// seed must produce bit-identical statistics, IPC vectors, and flip counts.
// It runs the full stack (memory controller, SHADOW shuffling with its
// CSPRNG, workload generators) so any order-dependence anywhere in the
// pipeline shows up as a diff.
func TestRunDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		g := smallGeo()
		profiles := trace.MixHigh(2)
		for i := range profiles {
			profiles[i].WorkingSetRows = 1 << 10
		}
		res, err := Run(Config{
			Params:    shadowParams(64),
			Geometry:  g,
			Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
			DeviceMit: shadow.New(shadow.Options{Seed: 99}),
			Workload:  trace.Generators(profiles, g, 99),
			Duration:  80 * timing.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()

	// Compare the full stats surface; the live device trees are compared
	// through their aggregate stats and flip records rather than pointer
	// identity.
	type statsView struct {
		Duration timing.Tick
		Insts    []int64
		IPC      []float64
		MC       any
		Dev      dram.BankStats
		Flips    int
		Records  []dram.FlipRecord
		Scrub    dram.ScrubReport
	}
	view := func(r *Result) statsView {
		return statsView{
			Duration: r.Duration,
			Insts:    r.Insts,
			IPC:      r.IPC,
			MC:       r.MC,
			Dev:      r.Dev,
			Flips:    r.Flips,
			Records:  r.Device.Flips(),
			Scrub:    r.Device.Scrub(),
		}
	}
	va, vb := view(a), view(b)
	if !reflect.DeepEqual(va, vb) {
		t.Errorf("two same-seed runs diverged:\n run A: %+v\n run B: %+v", va, vb)
	}

	// A different seed must actually change the command stream — otherwise
	// the equality above would be vacuous.
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	c, err := Run(Config{
		Params:    shadowParams(64),
		Geometry:  g,
		Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
		DeviceMit: shadow.New(shadow.Options{Seed: 7}),
		Workload:  trace.Generators(profiles, g, 7),
		Duration:  80 * timing.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(va.MC, c.MC) && reflect.DeepEqual(va.Insts, c.Insts) {
		t.Error("different seeds produced identical MC stats and instruction counts; seeding appears dead")
	}
}
