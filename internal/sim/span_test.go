package sim

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/obs/span"
	"shadow/internal/shadow"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// spanScheme is one mitigation configuration for the conservation sweep,
// mirroring the exp harness's Point.Build (which sim cannot import — exp
// depends on sim).
type spanScheme struct {
	name string
	mit  func(g dram.Geometry) (p *timing.Params, dev dram.Mitigator, mc mitigate.MCSide)
	// wantCause must show nonzero aggregate stall under this scheme, so the
	// conservation check is not vacuously passing on an all-service split.
	wantCause span.Cause
}

func spanSchemes() []spanScheme {
	const blast = 3
	return []spanScheme{
		{
			name: "baseline",
			mit: func(dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				return baseParams(), nil, nil
			},
			wantCause: span.CauseRefresh,
		},
		{
			name: "shadow",
			mit: func(dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				return shadowParams(64), shadow.New(shadow.Options{Seed: 7}), nil
			},
			wantCause: span.CauseShuffle,
		},
		{
			name: "parfm",
			mit: func(dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				p := baseParams().WithRAAIMT(32)
				return p, mitigate.NewPARFM(blast, 2), nil
			},
			wantCause: span.CauseRFM,
		},
		{
			name: "mithril",
			mit: func(dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				p := baseParams().WithRAAIMT(32)
				return p, mitigate.NewMithril(2048, blast), nil
			},
			wantCause: span.CauseRFM,
		},
		{
			name: "blockhammer",
			mit: func(dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				p := baseParams()
				// A tiny threshold and a short (test-scaled) window so the
				// blacklist trips and the ~REFW/budget throttle delay still
				// lets throttled requests complete inside the run (the sweep
				// also concentrates this scheme's rows; see run below).
				return p, nil, mitigate.NewBlockHammer(mitigate.BlockHammerConfig{
					Hammer: hammer.Config{HCnt: 16, BlastRadius: blast},
					REFW:   40 * timing.Microsecond,
					Seed:   3,
				})
			},
			wantCause: span.CauseThrottle,
		},
		{
			name: "rrs",
			mit: func(g dram.Geometry) (*timing.Params, dram.Mitigator, mitigate.MCSide) {
				p := baseParams()
				// A tiny swap threshold so swaps happen inside the window.
				return p, nil, mitigate.NewRRS(mitigate.RRSConfig{
					SwapThreshold: 8,
					RowsPerBank:   g.PARowsPerBank(),
					REFW:          p.REFW,
					Seed:          4,
				})
			},
			wantCause: span.CauseSwap,
		},
	}
}

// TestSpanConservationAcrossSchemes is the regression test behind the
// conservation invariant: for every mitigation scheme, every completed span's
// per-cause stall must sum exactly to its residency, the aggregate must
// conserve, and milestone timestamps must be monotone. Each scheme must also
// show its signature cause, so the sweep cannot pass vacuously.
func TestSpanConservationAcrossSchemes(t *testing.T) {
	for _, sc := range spanSchemes() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			g := smallGeo()
			p, dev, mc := sc.mit(g)
			profiles := trace.MixHigh(2)
			for i := range profiles {
				profiles[i].WorkingSetRows = 1 << 10
				if sc.name == "blockhammer" {
					// Concentrate row changes so per-row activation counts
					// cross the blacklist threshold inside the window.
					profiles[i].WorkingSetRows = 4
					profiles[i].RowLocality = 0
				}
			}
			col := span.NewCollector(0)
			_, err := Run(Config{
				Params:    p,
				Geometry:  g,
				Hammer:    hammer.Config{HCnt: 4096, BlastRadius: 3},
				DeviceMit: dev,
				MCSide:    mc,
				Workload:  trace.Generators(profiles, g, 42),
				Duration:  100 * timing.Microsecond,
				Spans:     col,
			})
			if err != nil {
				t.Fatal(err)
			}

			spans := col.Spans()
			if len(spans) == 0 {
				t.Fatal("no spans recorded")
			}
			for i, sp := range spans {
				if sp.StallTotal() != sp.Resident() {
					t.Fatalf("span %d (core %d bank %d row %d): stall %d != resident %d (stall %v)",
						i, sp.Core, sp.Bank, sp.Row, sp.StallTotal(), sp.Resident(), sp.Stall)
				}
				if !(sp.FirstAttempt <= sp.Enqueue && sp.Enqueue <= sp.CAS && sp.CAS <= sp.Done) {
					t.Fatalf("span %d: non-monotone milestones first=%d enq=%d cas=%d done=%d",
						i, sp.FirstAttempt, sp.Enqueue, sp.CAS, sp.Done)
				}
				if !sp.RowHit && !(sp.Enqueue <= sp.ACT && sp.ACT <= sp.CAS) {
					t.Fatalf("span %d: ACT %d outside [enqueue %d, cas %d]", i, sp.ACT, sp.Enqueue, sp.CAS)
				}
			}

			agg := col.Aggregate()
			if !agg.Conserved() {
				t.Fatalf("aggregate not conserved: stall %d != resident %d (split %v)",
					agg.StallTotal(), agg.Resident, agg.Stall)
			}
			if agg.Spans != int64(len(spans)) {
				t.Fatalf("aggregate %d spans, retained %d (dropped %d)", agg.Spans, len(spans), agg.Dropped)
			}
			if agg.RowHits == 0 || agg.RowHits == agg.Spans {
				t.Errorf("row-hit count %d of %d implausible", agg.RowHits, agg.Spans)
			}
			if agg.Stall[sc.wantCause] == 0 {
				t.Errorf("scheme %s: no stall attributed to signature cause %s (split %v)",
					sc.name, sc.wantCause, agg.Stall)
			}
		})
	}
}

// TestSpanSchemeCauseExclusivity checks the scheme-specific causes do not
// leak across schemes: a baseline run must never blame shuffle, swap,
// throttle, or RFM.
func TestSpanSchemeCauseExclusivity(t *testing.T) {
	g := smallGeo()
	profiles := trace.MixHigh(2)
	for i := range profiles {
		profiles[i].WorkingSetRows = 1 << 10
	}
	col := span.NewCollector(0)
	_, err := Run(Config{
		Params:   baseParams(),
		Geometry: g,
		Hammer:   hammer.Config{HCnt: 4096, BlastRadius: 3},
		Workload: trace.Generators(profiles, g, 42),
		Duration: 80 * timing.Microsecond,
		Spans:    col,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := col.Aggregate()
	for _, c := range []span.Cause{span.CauseRFM, span.CauseShuffle, span.CauseSwap, span.CauseThrottle, span.CauseTRR} {
		if agg.Stall[c] != 0 {
			t.Errorf("baseline run attributed %d ticks to %s", agg.Stall[c], c)
		}
	}
}

// TestSpanBackpressureObserved drives a single slow bank hard enough to fill
// its queue and checks queue-full backpressure is captured with the
// conservation invariant still holding.
func TestSpanBackpressureObserved(t *testing.T) {
	g := smallGeo()
	prof := trace.Profile{
		MPKI:           200, // extremely memory-bound
		WorkingSetRows: 2,   // conflicting rows, no locality
		RowLocality:    0,
	}
	profiles := make([]trace.Profile, 8)
	for i := range profiles {
		profiles[i] = prof
	}
	col := span.NewCollector(0)
	_, err := Run(Config{
		Params:   baseParams(),
		Geometry: g,
		Hammer:   hammer.Config{HCnt: 4096, BlastRadius: 3},
		Workload: trace.Generators(profiles, g, 9),
		Duration: 60 * timing.Microsecond,
		MSHR:     256, // deep cores so bank queues actually fill
		Spans:    col,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := col.Aggregate()
	if agg.Spans == 0 {
		t.Fatal("no spans recorded")
	}
	if !agg.Conserved() {
		t.Fatalf("aggregate not conserved: stall %d != resident %d", agg.StallTotal(), agg.Resident)
	}
	if agg.Stall[span.CauseQueueFull] == 0 {
		t.Skip("no backpressure generated at this scale; conservation verified above")
	}
}
