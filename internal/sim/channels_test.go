package sim_test

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/mitigate"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// TestFourChannelsScaleBandwidth runs the same aggregate workload on 1 vs 4
// channels through the full simulator: four channels must deliver clearly
// more throughput for a memory-bound mix.
func TestFourChannelsScaleBandwidth(t *testing.T) {
	run := func(channels int) float64 {
		geo := dram.TestGeometry()
		wlGeo := geo
		wlGeo.Banks = geo.Banks * channels // generators span the global bank space
		profiles := []trace.Profile{
			{Name: "stream", MPKI: 150, RowLocality: 0.2, WorkingSetRows: 512, WriteFrac: 0.2},
			{Name: "stream2", MPKI: 150, RowLocality: 0.2, WorkingSetRows: 512, WriteFrac: 0.2},
			{Name: "stream3", MPKI: 150, RowLocality: 0.2, WorkingSetRows: 512, WriteFrac: 0.2},
			{Name: "stream4", MPKI: 150, RowLocality: 0.2, WorkingSetRows: 512, WriteFrac: 0.2},
		}
		res, err := sim.Run(sim.Config{
			Params:   timing.NewParams(timing.DDR4_2666),
			Geometry: geo,
			Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
			Channels: channels,
			Workload: trace.Generators(profiles, wlGeo, 5),
			Duration: 50 * timing.Microsecond,
			MSHR:     16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalIPC()
	}
	one := run(1)
	four := run(4)
	if four < one*1.5 {
		t.Fatalf("4 channels (%.2f IPC) not clearly faster than 1 (%.2f IPC)", four, one)
	}
}

// TestPerChannelMitigatorsIsolated: each channel gets its own SHADOW
// controller and their states never mix.
func TestPerChannelMitigatorsIsolated(t *testing.T) {
	ctrls := map[int]*shadow.Controller{}
	geo := dram.TestGeometry()
	wlGeo := geo
	wlGeo.Banks = geo.Banks * 2
	p := timing.NewParams(timing.DDR4_2666)
	params := p.WithShadow(timing.ShadowTimings{RDRM: timing.NS(4), RCDRM: timing.NS(2.3), WRRM: timing.NS(9), RowCopy: timing.NS(73.9), CopyRestoreFrac: 0.55}).WithRAAIMT(8)
	res, err := sim.Run(sim.Config{
		Params:   params,
		Geometry: geo,
		Hammer:   hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Channels: 2,
		DeviceMitFor: func(ch int) dram.Mitigator {
			c := shadow.New(shadow.Options{Seed: uint64(ch) + 1})
			ctrls[ch] = c
			return c
		},
		Workload: trace.Generators([]trace.Profile{
			{Name: "a", MPKI: 100, RowLocality: 0.1, WorkingSetRows: 256},
			{Name: "b", MPKI: 100, RowLocality: 0.1, WorkingSetRows: 256},
		}, wlGeo, 7),
		Duration: 100 * timing.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrls) != 2 {
		t.Fatalf("%d controllers built, want 2", len(ctrls))
	}
	if ctrls[0].Stats.Shuffles == 0 || ctrls[1].Stats.Shuffles == 0 {
		t.Fatalf("both channels should shuffle: %d / %d",
			ctrls[0].Stats.Shuffles, ctrls[1].Stats.Shuffles)
	}
	for ch, dev := range res.Devices {
		for bank := 0; bank < dev.Banks(); bank++ {
			if err := ctrls[ch].CheckInvariants(dev.Bank(bank)); err != nil {
				t.Fatalf("channel %d: %v", ch, err)
			}
		}
	}
}

func TestSharedMitigatorRejectedWithChannels(t *testing.T) {
	geo := dram.TestGeometry()
	_, err := sim.Run(sim.Config{
		Params:    timing.NewParams(timing.DDR4_2666),
		Geometry:  geo,
		Channels:  2,
		DeviceMit: shadow.New(shadow.Options{}),
		Workload:  trace.Generators(trace.MixHigh(1), geo, 1),
		Duration:  timing.Microsecond,
	})
	if err == nil {
		t.Fatal("shared device mitigator across channels accepted")
	}
	_, err = sim.Run(sim.Config{
		Params:   timing.NewParams(timing.DDR4_2666),
		Geometry: geo,
		Channels: 2,
		MCSide:   mitigate.NopMCSide{},
		Workload: trace.Generators(trace.MixHigh(1), geo, 1),
		Duration: timing.Microsecond,
	})
	if err == nil {
		t.Fatal("shared MC-side policy across channels accepted")
	}
}
