package security

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/shadow"
	"shadow/internal/sim"
	"shadow/internal/timing"
	"shadow/internal/trace"
)

// MonteCarlo mounts real attack patterns against the actual SHADOW
// implementation (not the closed-form model) on a scaled-down device and
// measures the empirical bit-flip rate. The closed-form Table II values are
// far below anything samplable, so the Monte Carlo uses small H_cnt and
// subarray sizes to put the flip probability in a measurable range; its role
// is validating the *model shape*: scenario ordering, the effect of RAAIMT,
// and SHADOW-vs-baseline.
type MonteCarloConfig struct {
	// HCnt and RAAIMT define the (scaled) operating point.
	HCnt, RAAIMT int
	// RowsPerSubarray shrinks the shuffle space to make flips samplable.
	RowsPerSubarray int
	// ActsPerTrial bounds each trial's activations.
	ActsPerTrial int64
	// Trials is the number of independent runs.
	Trials int
	// Shadow disables the mitigation when false (unprotected baseline).
	Shadow bool
	// BlastRadius for the fault model (default 3).
	BlastRadius int
}

// MonteCarloResult reports the empirical flip statistics.
type MonteCarloResult struct {
	Trials, FlippedTrials int
	TotalFlips            int
	TotalActs             int64
	Shuffles              int64
}

// FlipRate returns the fraction of trials with at least one flip.
func (r MonteCarloResult) FlipRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.FlippedTrials) / float64(r.Trials)
}

// PatternFactory builds a fresh attack pattern per trial.
type PatternFactory func(trial int, g dram.Geometry) trace.Pattern

// RunMonteCarlo executes the trials.
func RunMonteCarlo(cfg MonteCarloConfig, mk PatternFactory) (MonteCarloResult, error) {
	if cfg.Trials <= 0 || cfg.ActsPerTrial <= 0 {
		return MonteCarloResult{}, fmt.Errorf("security: trials and acts must be positive")
	}
	if cfg.BlastRadius == 0 {
		cfg.BlastRadius = 3
	}
	geo := dram.Geometry{
		Banks:            2,
		SubarraysPerBank: 4,
		RowsPerSubarray:  cfg.RowsPerSubarray,
		RowBytes:         64,
		ExtraRows:        1,
	}
	var res MonteCarloResult
	for trial := 0; trial < cfg.Trials; trial++ {
		p := timing.NewParams(timing.DDR5_4800).WithRAAIMT(cfg.RAAIMT)
		var mit dram.Mitigator
		var ctrl *shadow.Controller
		if cfg.Shadow {
			ctrl = shadow.New(shadow.Options{Seed: uint64(trial)*2654435761 + 1})
			mit = ctrl
		}
		out, err := sim.RunAttack(sim.AttackConfig{
			Params:    p,
			Geometry:  geo,
			Hammer:    hammer.Config{HCnt: cfg.HCnt, BlastRadius: cfg.BlastRadius},
			DeviceMit: mit,
			MaxActs:   cfg.ActsPerTrial,
			Duration:  timing.Forever / 2,
		}, mk(trial, geo))
		if err != nil {
			return res, err
		}
		res.Trials++
		res.TotalActs += out.Acts
		res.TotalFlips += out.Flips
		if out.Flips > 0 {
			res.FlippedTrials++
		}
		if ctrl != nil {
			res.Shuffles += ctrl.Stats.Shuffles
		}
	}
	return res, nil
}
