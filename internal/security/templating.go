package security

import (
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/rng"
	"shadow/internal/shadow"
	"shadow/internal/timing"
)

// Memory templating (Section II-C) is the attack phase that discovers which
// physical addresses are DRAM-adjacent so the second phase can aim at a
// chosen victim. Against a static PA-to-DA mapping, templates stay valid
// forever; SHADOW's claim (Section III-A) is that shuffling invalidates them
// faster than an attacker can exploit them. TemplatingDecay measures this
// directly on the real implementation: the fraction of initially adjacent
// PA row pairs that are still physically adjacent after the device has
// performed a given number of row-shuffles.

// DecayPoint is one (shuffles, valid-fraction) sample.
type DecayPoint struct {
	Shuffles int64
	// ValidFraction is the share of PA pairs (i, i+1) within the hammered
	// subarray whose device rows are still adjacent.
	ValidFraction float64
}

// TemplatingConfig scales the measurement.
type TemplatingConfig struct {
	// RowsPerSubarray for the scaled device (default 64).
	RowsPerSubarray int
	// RAAIMT for the RFM interface (default 16).
	RAAIMT int
	// Checkpoints are the shuffle counts to sample (default 0..64 by 8).
	Checkpoints []int64
	Seed        uint64
}

// MeasureTemplatingDecay drives uniform-random activations through a
// SHADOW-protected bank and samples template validity at each checkpoint.
// Traffic is confined to one subarray so every shuffle hits the templated
// region (the attacker's worst case is the defender's best measurement).
func MeasureTemplatingDecay(cfg TemplatingConfig) ([]DecayPoint, error) {
	if cfg.RowsPerSubarray == 0 {
		cfg.RowsPerSubarray = 64
	}
	if cfg.RAAIMT == 0 {
		cfg.RAAIMT = 16
	}
	if len(cfg.Checkpoints) == 0 {
		for s := int64(0); s <= 64; s += 8 {
			cfg.Checkpoints = append(cfg.Checkpoints, s)
		}
	}
	geo := dram.Geometry{
		Banks:            1,
		SubarraysPerBank: 2,
		RowsPerSubarray:  cfg.RowsPerSubarray,
		RowBytes:         (cfg.RowsPerSubarray*2*10)/8 + 16,
		ExtraRows:        1,
	}
	params := timing.NewParams(timing.DDR5_4800).WithRAAIMT(cfg.RAAIMT)
	ctrl := shadow.New(shadow.Options{Seed: cfg.Seed + 1})
	dev, err := dram.NewDevice(dram.Config{
		Geometry:  geo,
		Params:    params,
		Hammer:    hammer.Config{HCnt: 1 << 30, BlastRadius: 3},
		Mitigator: ctrl,
	})
	if err != nil {
		return nil, err
	}

	src := rng.NewSplitMix(cfg.Seed + 2)
	now := timing.Tick(0)
	var out []DecayPoint
	ci := 0
	for ci < len(cfg.Checkpoints) {
		if ctrl.Stats.Shuffles >= cfg.Checkpoints[ci] {
			out = append(out, DecayPoint{
				Shuffles:      ctrl.Stats.Shuffles,
				ValidFraction: templateValidity(ctrl, dev.Bank(0), 0),
			})
			ci++
			continue
		}
		// Hammer a random row of subarray 0.
		pa := rng.Intn(src, cfg.RowsPerSubarray)
		if err := dev.Activate(0, pa, now); err != nil {
			return nil, err
		}
		now += params.RAS
		if err := dev.Precharge(0, now); err != nil {
			return nil, err
		}
		now += params.RP
		if dev.Bank(0).RAA >= cfg.RAAIMT {
			if err := dev.RFM(0, now); err != nil {
				return nil, err
			}
			now += params.RFM
		}
	}
	return out, nil
}

// templateValidity counts PA pairs (i, i+1) whose device rows remain
// adjacent in DA space.
func templateValidity(ctrl *shadow.Controller, b *dram.Bank, sub int) float64 {
	m := ctrl.MappingOf(b, sub)
	rows := b.Geometry().RowsPerSubarray
	valid := 0
	for i := 0; i+1 < rows; i++ {
		d := m[i] - m[i+1]
		if d == 1 || d == -1 {
			valid++
		}
	}
	return float64(valid) / float64(rows-1)
}
