// Package security implements the paper's protection-capability analysis
// (Section VII-A and Appendix XI): closed-form RH-induced bit-flip
// probabilities for the three adversarial scenarios against SHADOW, scaled
// to a DDR5 rank over a year — the numbers of Table II — plus a Monte Carlo
// harness that mounts the same attack patterns against the real
// implementation.
//
// All probability arithmetic runs in log space: the interesting values range
// from 0.5 down to 1e-111 and below.
package security

import (
	"math"
	"sync"

	"shadow/internal/timing"
)

// Config parameterizes the analysis. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// HCnt is the Row Hammer threshold; RAAIMT the RFM interval in ACTs.
	HCnt, RAAIMT int
	// NRow is the number of rows per subarray (512).
	NRow int
	// WSum is the weighted aggressor sum over the blast radius (3.5).
	WSum float64
	// Banks per rank (32 for DDR5).
	Banks int
	// TRC is the minimum ACT-to-ACT time: the attacker's maximum per-bank
	// activation rate is 1/tRC.
	TRC timing.Tick
	// TREFW is the refresh window bounding scenario III attacks.
	TREFW timing.Tick
	// HorizonSeconds is the total attack time (one year).
	HorizonSeconds float64
}

// DefaultConfig returns the paper's Table II setting for a DDR5-4800 rank.
func DefaultConfig(hcnt, raaimt int) Config {
	p := timing.NewParams(timing.DDR5_4800)
	return Config{
		HCnt:           hcnt,
		RAAIMT:         raaimt,
		NRow:           512,
		WSum:           3.5,
		Banks:          32,
		TRC:            p.RC,
		TREFW:          p.REFW,
		HorizonSeconds: 365.25 * 24 * 3600,
	}
}

// actsPerSecond is the attacker's peak per-bank activation rate.
func (c Config) actsPerSecond() float64 {
	return 1.0 / (float64(c.TRC) / float64(timing.Second))
}

// perYear expands a per-window probability to the rank-year probability:
// 1 - (1-p)^(windows * banks), computed stably.
func (c Config) perYear(pWindow, windowSeconds float64) float64 {
	if pWindow <= 0 || windowSeconds <= 0 {
		return 0
	}
	if pWindow >= 1 {
		return 1
	}
	k := c.HorizonSeconds / windowSeconds * float64(c.Banks)
	// 1-(1-p)^k = -expm1(k*log1p(-p))
	return -math.Expm1(k * math.Log1p(-pWindow))
}

// logChoose returns ln C(n, k).
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// ScenarioI evaluates Appendix XI attack scenario I (Equation 2): a
// birthday-paradox attack that hammers one fresh PA row per RFM interval,
// betting that M1 = ceil(HCnt/RAAIMT) of the shuffled locations land within
// blast range of a common victim before the incremental refresh window (NRow
// RFM commands) expires. Returns the rank-year bit-flip probability.
func (c Config) ScenarioI() float64 {
	m1 := ceilDiv(c.HCnt, c.RAAIMT)
	if m1 > c.NRow {
		return 0 // cannot land enough balls within the incremental window
	}
	p := c.WSum / float64(c.NRow)
	// P1 = NRow * C(NRow, M1) * p^M1 * (1-p)^(NRow-M1)
	logP := math.Log(float64(c.NRow)) +
		logChoose(c.NRow, m1) +
		float64(m1)*math.Log(p) +
		float64(c.NRow-m1)*math.Log1p(-p)
	pw := math.Exp(logP)
	windowSeconds := float64(c.NRow) * float64(c.RAAIMT) / c.actsPerSecond()
	return c.perYear(pw, windowSeconds)
}

// evadeRecurrence evaluates the Equation 3 recurrence
//
//	P[n] = P[n-1] + (1 - P[n-M-1]) * (1/N) * (1-1/N)^M
//
// for n steps, returning N * P[n] (the paper conservatively multiplies by
// the number of aggressors).
func evadeRecurrence(nAggr, m, steps int) float64 {
	if m <= 0 {
		return 1
	}
	if steps <= m {
		return 0
	}
	invN := 1.0 / float64(nAggr)
	// q = (1/N) * (1-1/N)^M in log space.
	logQ := math.Log(invN) + float64(m)*math.Log1p(-invN)
	q := math.Exp(logQ)
	if q == 0 {
		return 0
	}
	// The recurrence needs a sliding window of M+1 past values; for the
	// common regime where P stays tiny, P[n] ~= (n-M)*q and the (1-P[...])
	// factor is 1. Run it exactly with a ring buffer when feasible,
	// otherwise use the linear bound (which is an upper bound, conservative
	// in the paper's spirit).
	const maxExact = 1 << 22
	if steps <= maxExact {
		hist := make([]float64, steps+1)
		for n := m + 1; n <= steps; n++ {
			prevIdx := n - m - 1
			hist[n] = hist[n-1] + (1-hist[prevIdx])*q
			if hist[n] > 1 {
				hist[n] = 1
			}
		}
		return clamp01(float64(nAggr) * hist[steps])
	}
	return clamp01(float64(nAggr) * float64(steps-m) * q)
}

// ScenarioII evaluates attack scenario II: N_Aggr aggressors within a single
// subarray, each receiving m = RAAIMT/N_Aggr activations per RFM interval,
// hoping one evades the shuffle for M2 consecutive RFMs. The incremental
// refresh bounds the attack to NRow RFM intervals and imposes
// m*NRow < HCnt. The result maximizes over N_Aggr.
func (c Config) ScenarioII() float64 {
	best := 0.0
	for nAggr := 1; nAggr <= c.RAAIMT; nAggr++ {
		m := c.RAAIMT / nAggr // ACTs per aggressor per interval
		if m == 0 {
			continue
		}
		m2 := ceilDiv(c.HCnt, m) // intervals to survive
		if m2 > c.NRow {
			continue // incremental refresh resets victims first
		}
		p := evadeRecurrence(nAggr, m2, c.NRow)
		if p > best {
			best = p
		}
	}
	windowSeconds := float64(c.NRow) * float64(c.RAAIMT) / c.actsPerSecond()
	return c.perYear(best, windowSeconds)
}

// ScenarioIII evaluates attack scenario III: aggressors spread across
// multiple subarrays of a bank, so each RFM's shuffle thins only one of
// them; the attack window is a full tREFW. The incremental refresh benefit
// is conservatively ignored (as in the paper). The result maximizes over
// N_Aggr.
func (c Config) ScenarioIII() float64 {
	actsPerWindow := float64(c.TREFW) / float64(c.TRC)
	steps := int(actsPerWindow / float64(c.RAAIMT))
	best := 0.0
	for nAggr := 1; nAggr <= c.RAAIMT; nAggr++ {
		m := c.RAAIMT / nAggr
		if m == 0 {
			continue
		}
		m3 := ceilDiv(c.HCnt, m)
		p := evadeRecurrence(nAggr, m3, steps)
		if p > best {
			best = p
		}
	}
	windowSeconds := float64(c.TREFW) / float64(timing.Second)
	return c.perYear(best, windowSeconds)
}

// BitFlipProbability returns the rank-year bit-flip probability: the worst
// (maximum) of the three attack scenarios, as reported in Table II.
func (c Config) BitFlipProbability() float64 {
	return math.Max(c.ScenarioI(), math.Max(c.ScenarioII(), c.ScenarioIII()))
}

// SpecificVictimProbability returns the rank-year probability of flipping a
// bit in one *chosen* victim row, rather than any row. Section VII-A: "the
// bit-flip probability is analyzed with regard to the bit-flip of any victim
// row, not a specific victim row. SHADOW prevents a bit-flip of a specific
// victim row more strongly" — under dynamic shuffling the attacker cannot
// know which PA currently neighbors the target, so the any-victim
// probability divides across the NRow equally-likely victims of the
// subarray.
func (c Config) SpecificVictimProbability() float64 {
	return c.BitFlipProbability() / float64(c.NRow)
}

// Secure reports whether the configuration achieves the paper's
// near-complete protection bar: below 1% bit-flip probability per rank-year.
func (c Config) Secure() bool { return c.BitFlipProbability() < 0.01 }

// secureRAAIMTCache memoizes SecureRAAIMT: the search evaluates the full
// evasion recurrence for up to ten candidate thresholds, and the experiment
// harness re-derives the threshold for every simulation it configures —
// without the cache that analytic dominates short benchmark runs.
var (
	secureRAAIMTMu    sync.Mutex
	secureRAAIMTCache = map[int]int{}
)

// SecureRAAIMT returns the largest power-of-two RAAIMT (fewest RFMs, lowest
// overhead) in [8, 4096] that is secure for the given H_cnt, or 0 if none.
// Table II bolds exactly these configurations.
func SecureRAAIMT(hcnt int) int {
	secureRAAIMTMu.Lock()
	defer secureRAAIMTMu.Unlock()
	if r, ok := secureRAAIMTCache[hcnt]; ok {
		return r
	}
	r := 0
	for raaimt := 4096; raaimt >= 8; raaimt /= 2 {
		if DefaultConfig(hcnt, raaimt).Secure() {
			r = raaimt
			break
		}
	}
	secureRAAIMTCache[hcnt] = r
	return r
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
