package security

import (
	"math"
	"testing"

	"shadow/internal/dram"
	"shadow/internal/trace"
)

// TestTableII reproduces the paper's Table II: the rank-year bit-flip
// probability for RAAIMT x H_cnt, checked to order of magnitude (the paper
// reports one significant digit; our tRC/tREFW constants differ slightly
// from theirs).
func TestTableII(t *testing.T) {
	cases := []struct {
		raaimt, hcnt int
		paper        float64
		// tolOrders is the allowed |log10| deviation.
		tolOrders float64
	}{
		{128, 8192, 2e-15, 1.5},
		{128, 4096, 4e-01, 0.5},
		{128, 2048, 1, 0.1},
		{64, 8192, 2e-43, 1.5},
		{64, 4096, 1e-14, 1.5},
		{64, 2048, 5e-01, 0.5},
		{32, 4096, 1e-43, 1.5},
		{32, 2048, 9e-15, 1.5},
	}
	for _, c := range cases {
		got := DefaultConfig(c.hcnt, c.raaimt).BitFlipProbability()
		if got <= 0 {
			t.Errorf("RAAIMT %d HCnt %d: probability 0, paper %.0e", c.raaimt, c.hcnt, c.paper)
			continue
		}
		d := math.Abs(math.Log10(got) - math.Log10(c.paper))
		if d > c.tolOrders {
			t.Errorf("RAAIMT %d HCnt %d: got %.2e, paper %.0e (off by %.1f orders)",
				c.raaimt, c.hcnt, got, c.paper, d)
		}
	}
	// The (32, 8K) cell is 0 in the paper; ours must be astronomically small.
	if got := DefaultConfig(8192, 32).BitFlipProbability(); got > 1e-90 {
		t.Errorf("RAAIMT 32 HCnt 8K: got %.2e, paper reports 0", got)
	}
}

// TestSecureDiagonal: the bolded secure configurations of Table II.
func TestSecureDiagonal(t *testing.T) {
	want := map[int]int{16384: 256, 8192: 128, 4096: 64, 2048: 32}
	for hcnt, raaimt := range want {
		if got := SecureRAAIMT(hcnt); got != raaimt {
			t.Errorf("SecureRAAIMT(%d) = %d, want %d", hcnt, got, raaimt)
		}
		if !DefaultConfig(hcnt, raaimt).Secure() {
			t.Errorf("config (%d, %d) should be secure", hcnt, raaimt)
		}
		if DefaultConfig(hcnt, raaimt*4).Secure() {
			t.Errorf("config (%d, %d) should NOT be secure", hcnt, raaimt*4)
		}
	}
}

// TestScenarioOrdering: scenario III (cross-subarray, no incremental-refresh
// bound) must dominate I and II, as the appendix analysis shows.
func TestScenarioOrdering(t *testing.T) {
	for _, hcnt := range []int{4096, 8192} {
		c := DefaultConfig(hcnt, 64)
		s1, s2, s3 := c.ScenarioI(), c.ScenarioII(), c.ScenarioIII()
		if s3 < s2 || s3 < s1 {
			t.Errorf("HCnt %d: scenario III (%.2e) not dominant (I %.2e, II %.2e)", hcnt, s3, s1, s2)
		}
	}
}

// TestMonotonicity: lower RAAIMT (more frequent shuffles) and higher H_cnt
// must both reduce the flip probability.
func TestMonotonicity(t *testing.T) {
	for _, hcnt := range []int{2048, 4096, 8192} {
		prev := math.Inf(1)
		for _, raaimt := range []int{256, 128, 64, 32} {
			p := DefaultConfig(hcnt, raaimt).BitFlipProbability()
			if p > prev*1.0000001 {
				t.Errorf("HCnt %d: probability rose when RAAIMT dropped to %d (%.2e > %.2e)",
					hcnt, raaimt, p, prev)
			}
			prev = p
		}
	}
	for _, raaimt := range []int{32, 64, 128} {
		pLow := DefaultConfig(2048, raaimt).BitFlipProbability()
		pHigh := DefaultConfig(8192, raaimt).BitFlipProbability()
		if pHigh > pLow {
			t.Errorf("RAAIMT %d: higher HCnt increased probability", raaimt)
		}
	}
}

func TestEvadeRecurrenceProperties(t *testing.T) {
	// Zero steps beyond M -> zero probability.
	if got := evadeRecurrence(4, 100, 100); got != 0 {
		t.Fatalf("steps <= M should be 0, got %g", got)
	}
	// Probability grows with steps.
	a := evadeRecurrence(4, 40, 50)
	b := evadeRecurrence(4, 40, 500)
	if b <= a || a <= 0 {
		t.Fatalf("recurrence not growing: %g -> %g", a, b)
	}
	// Never exceeds its N*1 cap and clamps at 1.
	if got := evadeRecurrence(2, 1, 1<<20); got > 1 {
		t.Fatalf("recurrence exceeded 1: %g", got)
	}
	// m <= 0 is immediate success (degenerate guard).
	if got := evadeRecurrence(4, 0, 10); got != 1 {
		t.Fatalf("m=0 should return 1, got %g", got)
	}
}

func TestLogChoose(t *testing.T) {
	if got := math.Exp(logChoose(5, 2)); math.Abs(got-10) > 1e-9 {
		t.Fatalf("C(5,2) = %g", got)
	}
	if !math.IsInf(logChoose(3, 5), -1) {
		t.Fatal("C(3,5) should be -inf in log space")
	}
}

func TestPerYearStability(t *testing.T) {
	c := DefaultConfig(4096, 64)
	// Tiny probabilities scale linearly with window count.
	p := c.perYear(1e-30, 1.0)
	windows := c.HorizonSeconds * float64(c.Banks)
	if math.Abs(p-1e-30*windows)/p > 1e-6 {
		t.Fatalf("perYear linear regime broken: %g", p)
	}
	if got := c.perYear(1, 1); got != 1 {
		t.Fatalf("perYear(1) = %g", got)
	}
	if got := c.perYear(0, 1); got != 0 {
		t.Fatalf("perYear(0) = %g", got)
	}
}

// TestMonteCarloShadowVsBaseline: at a samplable operating point, the
// unprotected device flips in every trial while SHADOW eliminates (nearly)
// all flips — the empirical counterpart of Table II's many orders of
// magnitude.
func TestMonteCarloShadowVsBaseline(t *testing.T) {
	mk := func(trial int, g dram.Geometry) trace.Pattern {
		return &trace.SingleSided{Bank: 0, Row: g.RowsPerSubarray / 2}
	}
	base, err := RunMonteCarlo(MonteCarloConfig{
		HCnt: 256, RAAIMT: 16, RowsPerSubarray: 32,
		ActsPerTrial: 4096, Trials: 5, Shadow: false,
	}, mk)
	if err != nil {
		t.Fatal(err)
	}
	if base.FlipRate() != 1 {
		t.Fatalf("unprotected flip rate %.2f, want 1.0", base.FlipRate())
	}
	prot, err := RunMonteCarlo(MonteCarloConfig{
		HCnt: 256, RAAIMT: 16, RowsPerSubarray: 32,
		ActsPerTrial: 4096, Trials: 5, Shadow: true,
	}, mk)
	if err != nil {
		t.Fatal(err)
	}
	if prot.FlipRate() > 0.2 {
		t.Fatalf("SHADOW flip rate %.2f under single-sided attack", prot.FlipRate())
	}
	if prot.Shuffles == 0 {
		t.Fatal("no shuffles recorded")
	}
}

// TestMonteCarloScenarioIIIStrongest: among the appendix scenarios at equal
// budget, the cross-subarray multi-aggressor attack should achieve at least
// as many flips against SHADOW as scenario I — mirroring the analytical
// ordering.
func TestMonteCarloScenarioIIIStrongest(t *testing.T) {
	cfg := MonteCarloConfig{
		HCnt: 96, RAAIMT: 16, RowsPerSubarray: 16,
		ActsPerTrial: 40000, Trials: 6, Shadow: true, BlastRadius: 3,
	}
	s1, err := RunMonteCarlo(cfg, func(trial int, g dram.Geometry) trace.Pattern {
		return trace.NewScenarioI(0, 1, cfg.RAAIMT, g, uint64(trial)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := RunMonteCarlo(cfg, func(trial int, g dram.Geometry) trace.Pattern {
		return trace.NewScenarioIII(0, 4, g, uint64(trial)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if s3.TotalFlips < s1.TotalFlips {
		t.Errorf("scenario III (%d flips) weaker than scenario I (%d flips)", s3.TotalFlips, s1.TotalFlips)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	_, err := RunMonteCarlo(MonteCarloConfig{}, nil)
	if err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTemplatingDecay(t *testing.T) {
	points, err := MeasureTemplatingDecay(TemplatingConfig{
		RowsPerSubarray: 64,
		RAAIMT:          16,
		Checkpoints:     []int64{0, 16, 64, 256},
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].ValidFraction != 1.0 {
		t.Fatalf("initial validity %.2f, want 1.0 (identity mapping)", points[0].ValidFraction)
	}
	// Validity must decay substantially: after 256 shuffles of a 64-row
	// subarray essentially no templated pair survives.
	last := points[len(points)-1]
	if last.ValidFraction > 0.3 {
		t.Fatalf("after %d shuffles %.0f%% of templates still valid", last.Shuffles, last.ValidFraction*100)
	}
	// And it must be (weakly) monotone in this run.
	for i := 1; i < len(points); i++ {
		if points[i].ValidFraction > points[i-1].ValidFraction+0.1 {
			t.Fatalf("validity rose from %.2f to %.2f", points[i-1].ValidFraction, points[i].ValidFraction)
		}
	}
}

func TestSpecificVictimWeaker(t *testing.T) {
	c := DefaultConfig(4096, 128) // insecure any-victim point
	anyV := c.BitFlipProbability()
	spec := c.SpecificVictimProbability()
	if spec >= anyV {
		t.Fatalf("specific-victim %.2e should be below any-victim %.2e", spec, anyV)
	}
	if ratio := anyV / spec; math.Abs(ratio-512) > 1 {
		t.Fatalf("ratio = %.1f, want NRow (512)", ratio)
	}
}
