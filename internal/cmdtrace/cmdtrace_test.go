package cmdtrace

import (
	"strings"
	"testing"

	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

func params() *timing.Params { return timing.NewParams(timing.DDR4_2666) }

func TestCleanSequenceAccepted(t *testing.T) {
	p := params()
	c := New(p, 4)
	now := timing.Tick(0)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 5, At: now})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRD, Bank: 0, At: now + p.RCD})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdPRE, Bank: 0, At: now + p.RAS})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 6, At: now + p.RC})
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Commands() != 4 {
		t.Fatalf("Commands = %d", c.Commands())
	}
}

func TestDetectsEarlyRead(t *testing.T) {
	p := params()
	c := New(p, 4)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 5, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRD, Bank: 0, At: p.RCD - 1})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "tRCD") {
		t.Fatalf("err = %v, want tRCD violation", err)
	}
}

func TestDetectsEarlyPrecharge(t *testing.T) {
	p := params()
	c := New(p, 4)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 1, Row: 5, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdPRE, Bank: 1, At: p.RAS - 1})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "precharge too early") {
		t.Fatalf("err = %v", err)
	}
}

func TestDetectsTRRDViolation(t *testing.T) {
	p := params()
	c := New(p, 8)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 1, Row: 1, At: p.RRDS - 1})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "tRRD_S") {
		t.Fatalf("err = %v", err)
	}
}

func TestDetectsTFAWViolation(t *testing.T) {
	p := params()
	c := New(p, 8)
	// Four ACTs exactly at tRRD spacing (legal), then a fifth inside tFAW.
	at := timing.Tick(0)
	for b := 0; b < 4; b++ {
		c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: b, Row: 1, At: at})
		at += p.RRDS
	}
	if err := c.Err(); err != nil {
		t.Fatalf("legal burst rejected: %v", err)
	}
	fifth := c.actWindow[0] + p.FAW - 1
	if fifth < at {
		fifth = at // respect tRRD too; FAW must still bind
	}
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 4, Row: 1, At: p.FAW - 1})
	found := false
	for _, v := range c.Violations() {
		if v.Rule == "tFAW" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tFAW violation not detected: %v", c.Violations())
	}
	_ = fifth
}

func TestDetectsWriteRecovery(t *testing.T) {
	p := params()
	c := New(p, 4)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	wrAt := p.RCD
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdWR, Bank: 0, At: wrAt})
	// PRE at tRAS is now too early: write recovery extends the hold.
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdPRE, Bank: 0, At: p.RAS})
	if err := c.Err(); err == nil {
		t.Fatal("write-recovery violation not detected")
	}
}

func TestDetectsRefreshViolations(t *testing.T) {
	p := params()
	c := New(p, 2)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdREF, Bank: -1, At: p.RCD})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "REF with bank 0 open") {
		t.Fatalf("err = %v", err)
	}
	// ACT during tRFC.
	c2 := New(p, 2)
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdREF, Bank: -1, At: 0})
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: p.RFC - 1})
	if err := c2.Err(); err == nil {
		t.Fatal("ACT during tRFC not detected")
	}
}

func TestDetectsRFMViolations(t *testing.T) {
	p := params().WithRAAIMT(32)
	c := New(p, 2)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRFM, Bank: 0, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: p.RFM - 1})
	if err := c.Err(); err == nil {
		t.Fatal("ACT during tRFM not detected")
	}
}

func TestBusSpacing(t *testing.T) {
	p := params()
	c := New(p, 4)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 4 % 4, Row: 1, At: p.TCK / 2})
	found := false
	for _, v := range c.Violations() {
		if strings.Contains(v.Rule, "command-bus") {
			found = true
		}
	}
	if !found {
		t.Fatal("bus spacing violation not detected")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{
		Cmd:      memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 3, At: 100},
		Rule:     "tFAW",
		Earliest: 200,
	}
	s := v.String()
	for _, frag := range []string{"ACT", "bank 3", "tFAW"} {
		if !strings.Contains(s, frag) {
			t.Errorf("violation string missing %q: %s", frag, s)
		}
	}
}

func TestBadBankIndices(t *testing.T) {
	p := params()
	c := New(p, 2)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 9, Row: 1, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdPRE, Bank: -1, At: p.TCK})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRD, Bank: 7, At: 2 * p.TCK})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRFM, Bank: 4, At: 3 * p.TCK})
	bad := 0
	for _, v := range c.Violations() {
		if v.Rule == "bank index" {
			bad++
		}
	}
	if bad != 4 {
		t.Fatalf("bank-index violations = %d, want 4", bad)
	}
}

func TestColumnOnClosedBankAndRTP(t *testing.T) {
	p := params()
	c := New(p, 2)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRD, Bank: 0, At: 0})
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "closed bank") {
		t.Fatalf("err = %v", err)
	}
	// Late RD extends PRE hold by tRTP past tRAS.
	c2 := New(p, 2)
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	late := p.RAS - p.TCK
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdRD, Bank: 0, At: late})
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdPRE, Bank: 0, At: p.RAS})
	if err := c2.Err(); err == nil {
		t.Fatal("PRE inside tRTP accepted")
	}
}

func TestRFMOnOpenBank(t *testing.T) {
	p := params().WithRAAIMT(16)
	c := New(p, 2)
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 1, Row: 1, At: 0})
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdRFM, Bank: 1, At: p.TCK})
	found := false
	for _, v := range c.Violations() {
		if strings.Contains(v.Rule, "RFM with bank open") {
			found = true
		}
	}
	if !found {
		t.Fatalf("RFM-on-open not detected: %v", c.Violations())
	}
}

func TestREFsbChecking(t *testing.T) {
	p := timing.NewParams(timing.DDR5_4800)
	c := New(p, 4)
	// Legal REFsb on an idle bank.
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdREF, Bank: 2, At: 0})
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// ACT on the refreshing bank during tRFCsb is illegal; other banks fine.
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 3, Row: 1, At: p.TCK})
	if err := c.Err(); err != nil {
		t.Fatalf("other bank blocked: %v", err)
	}
	c.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 2, Row: 1, At: p.RFCsb / 2})
	if err := c.Err(); err == nil {
		t.Fatal("ACT during tRFCsb accepted")
	}
	// REFsb on an open bank.
	c2 := New(p, 4)
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdACT, Bank: 0, Row: 1, At: 0})
	c2.Observe(memctrl.Cmd{Kind: memctrl.CmdREF, Bank: 0, At: p.TCK})
	if err := c2.Err(); err == nil || !strings.Contains(err.Error(), "REFsb with bank open") {
		t.Fatalf("err = %v", err)
	}
}
