package cmdtrace

import (
	"testing"

	"shadow/internal/circuit"
	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/memctrl"
	"shadow/internal/mitigate"
	"shadow/internal/rng"
	"shadow/internal/shadow"
	"shadow/internal/timing"
)

// TestControllerStreamsAreClean replays the command streams the real
// controller produces — under every mitigation class, with refreshes, RFMs,
// TRRs, and swaps in play — through the independent checker and requires
// zero protocol violations. This is the repository's strongest correctness
// statement about the memory controller.
func TestControllerStreamsAreClean(t *testing.T) {
	base := timing.NewParams(timing.DDR4_2666)
	ddr5 := timing.NewParams(timing.DDR5_4800)
	geo := dram.TestGeometry()
	cases := []struct {
		name     string
		params   *timing.Params
		mit      func() dram.Mitigator
		mcside   func() mitigate.MCSide
		closed   bool
		sameBank bool
	}{
		{name: "baseline", params: base},
		{name: "ddr5-refsb", params: ddr5.WithRAAIMT(16), sameBank: true,
			mit: func() dram.Mitigator { return shadow.New(shadow.Options{Seed: 12}) }},
		{
			name:   "shadow",
			params: base.WithShadow(circuit.DefaultShadowTimings(base)).WithRAAIMT(8),
			mit:    func() dram.Mitigator { return shadow.New(shadow.Options{Seed: 1}) },
		},
		{
			name:   "parfm",
			params: base.WithRAAIMT(8),
			mit:    func() dram.Mitigator { return mitigate.NewPARFM(3, 2) },
		},
		{
			name:   "graphene-trr",
			params: base,
			mcside: func() mitigate.MCSide {
				return mitigate.NewGraphene(mitigate.GrapheneConfig{
					Hammer:      hammer.Config{HCnt: 64, BlastRadius: 2},
					RowsPerBank: geo.PARowsPerBank(),
					REFW:        base.REFW,
				})
			},
		},
		{
			name:   "rrs-swaps",
			params: base,
			mcside: func() mitigate.MCSide {
				return mitigate.NewRRS(mitigate.RRSConfig{
					SwapThreshold: 6,
					RowsPerBank:   geo.PARowsPerBank(),
					REFW:          base.REFW,
					Seed:          4,
				})
			},
		},
		{
			name:   "closed-page-attack",
			params: base.WithRAAIMT(8),
			mit:    func() dram.Mitigator { return shadow.New(shadow.Options{Seed: 9}) },
			closed: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mit dram.Mitigator
			if tc.mit != nil {
				mit = tc.mit()
			}
			d, err := dram.NewDevice(dram.Config{
				Geometry:  geo,
				Params:    tc.params,
				Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
				Mitigator: mit,
			})
			if err != nil {
				t.Fatal(err)
			}
			checker := New(tc.params, geo.Banks)
			var mcside mitigate.MCSide
			if tc.mcside != nil {
				mcside = tc.mcside()
			}
			ctl := memctrl.New(d, memctrl.Options{
				MCSide:          mcside,
				ClosedPage:      tc.closed,
				SameBankRefresh: tc.sameBank,
				OnCommand:       checker.Observe,
			})

			// Random request stream with bursty hot rows, driven for 100us.
			src := rng.NewSplitMix(11)
			now := timing.Tick(0)
			nextReq := timing.Tick(0)
			for now < 100*timing.Microsecond {
				for nextReq <= now {
					row := rng.Intn(src, 8) // few rows: conflicts and hits
					if rng.Intn(src, 4) == 0 {
						row = rng.Intn(src, geo.PARowsPerBank())
					}
					ctl.Enqueue(&memctrl.Request{
						Bank:   rng.Intn(src, geo.Banks),
						Row:    row,
						Col:    rng.Intn(src, 4),
						Write:  rng.Intn(src, 4) == 0,
						Arrive: now,
					})
					nextReq += timing.Tick(20+rng.Intn(src, 200)) * timing.Nanosecond
				}
				next := ctl.Step(now)
				if next <= now {
					continue
				}
				if next > nextReq {
					next = nextReq
				}
				now = next
			}
			if checker.Commands() < 100 {
				t.Fatalf("only %d commands observed", checker.Commands())
			}
			if err := checker.Err(); err != nil {
				for i, v := range checker.Violations() {
					if i >= 5 {
						break
					}
					t.Logf("violation: %s", v)
				}
				t.Fatal(err)
			}
		})
	}
}
