// Package cmdtrace validates DRAM command streams against the JEDEC timing
// constraints, independently of both the memory controller that produced
// them and the device model that executed them — double-entry bookkeeping
// for the protocol. The checker replays the stream against its own bank
// state machines and reports every violation.
//
// The device model already rejects per-bank ordering mistakes at execution
// time; the checker additionally covers the rank-level constraints the
// device does not see (tRRD ACT spacing, the tFAW four-activation window,
// command-bus occupancy) and produces a complete report instead of failing
// on the first error.
package cmdtrace

import (
	"fmt"

	"shadow/internal/memctrl"
	"shadow/internal/timing"
)

// Violation is one detected protocol error.
type Violation struct {
	Cmd      memctrl.Cmd
	Rule     string
	Earliest timing.Tick // the earliest legal time for the command
}

func (v Violation) String() string {
	return fmt.Sprintf("%v bank %d at %v violates %s (earliest %v)",
		v.Cmd.Kind, v.Cmd.Bank, v.Cmd.At, v.Rule, v.Earliest)
}

// Checker replays a command stream.
type Checker struct {
	p     *timing.Params
	banks []checkerBank

	lastCmdAt   timing.Tick // command bus: one command per tCK
	haveLastCmd bool
	lastActAt   timing.Tick // tRRD_S
	sawAnyAct   bool
	actWindow   []timing.Tick
	refBusyTo   timing.Tick

	violations []Violation
	commands   int
}

type checkerBank struct {
	open     bool
	actAt    timing.Tick
	rdReady  timing.Tick
	preReady timing.Tick
	actReady timing.Tick
	sawAct   bool
}

// New builds a checker for the parameter set (banks per rank from geometry).
func New(p *timing.Params, banks int) *Checker {
	return &Checker{p: p, banks: make([]checkerBank, banks)}
}

// Observe ingests one command in issue order.
func (c *Checker) Observe(cmd memctrl.Cmd) {
	c.commands++
	c.checkBus(cmd)
	switch cmd.Kind {
	case memctrl.CmdACT:
		c.checkACT(cmd)
	case memctrl.CmdPRE:
		c.checkPRE(cmd)
	case memctrl.CmdRD, memctrl.CmdWR:
		c.checkColumn(cmd)
	case memctrl.CmdREF:
		c.checkREF(cmd)
	case memctrl.CmdRFM:
		c.checkRFM(cmd)
	}
}

func (c *Checker) violate(cmd memctrl.Cmd, rule string, earliest timing.Tick) {
	c.violations = append(c.violations, Violation{Cmd: cmd, Rule: rule, Earliest: earliest})
}

func (c *Checker) checkBus(cmd memctrl.Cmd) {
	if c.haveLastCmd && cmd.At < c.lastCmdAt+c.p.TCK {
		c.violate(cmd, "command-bus tCK spacing", c.lastCmdAt+c.p.TCK)
	}
	if c.haveLastCmd && cmd.At < c.lastCmdAt {
		c.violate(cmd, "command order (time went backwards)", c.lastCmdAt)
	}
	c.lastCmdAt = cmd.At
	c.haveLastCmd = true
}

func (c *Checker) bank(cmd memctrl.Cmd) *checkerBank {
	if cmd.Bank < 0 || cmd.Bank >= len(c.banks) {
		return nil
	}
	return &c.banks[cmd.Bank]
}

func (c *Checker) checkACT(cmd memctrl.Cmd) {
	b := c.bank(cmd)
	if b == nil {
		c.violate(cmd, "bank index", cmd.At)
		return
	}
	if b.open {
		c.violate(cmd, "ACT on open bank", b.preReady+c.p.RP)
	}
	if cmd.At < b.actReady {
		c.violate(cmd, "tRP/tRC (bank not precharged long enough)", b.actReady)
	}
	if cmd.At < c.refBusyTo {
		c.violate(cmd, "tRFC (refresh in progress)", c.refBusyTo)
	}
	// Rank-level spacing.
	if c.sawAnyAct && cmd.At < c.lastActAt+c.p.RRDS {
		c.violate(cmd, "tRRD_S", c.lastActAt+c.p.RRDS)
	}
	if len(c.actWindow) >= 4 {
		if oldest := c.actWindow[len(c.actWindow)-4]; cmd.At < oldest+c.p.FAW {
			c.violate(cmd, "tFAW", oldest+c.p.FAW)
		}
	}
	c.lastActAt = cmd.At
	c.sawAnyAct = true
	c.actWindow = append(c.actWindow, cmd.At)
	if len(c.actWindow) > 8 {
		c.actWindow = c.actWindow[len(c.actWindow)-8:]
	}
	b.open = true
	b.sawAct = true
	b.actAt = cmd.At
	b.rdReady = cmd.At + c.p.EffectiveRCD()
	b.preReady = cmd.At + c.p.RAS
	b.actReady = cmd.At + c.p.RC
}

func (c *Checker) checkPRE(cmd memctrl.Cmd) {
	b := c.bank(cmd)
	if b == nil {
		c.violate(cmd, "bank index", cmd.At)
		return
	}
	if !b.open {
		return // PRE on closed bank is a legal no-op
	}
	if cmd.At < b.preReady {
		c.violate(cmd, "tRAS/tRTP/tWR (precharge too early)", b.preReady)
	}
	b.open = false
	if ready := cmd.At + c.p.RP; ready > b.actReady {
		b.actReady = ready
	}
}

func (c *Checker) checkColumn(cmd memctrl.Cmd) {
	b := c.bank(cmd)
	if b == nil {
		c.violate(cmd, "bank index", cmd.At)
		return
	}
	if !b.open {
		c.violate(cmd, "column command on closed bank", cmd.At)
		return
	}
	if cmd.At < b.rdReady {
		c.violate(cmd, "tRCD", b.rdReady)
	}
	// RD extends the earliest precharge (tRTP); WR extends further.
	var hold timing.Tick
	if cmd.Kind == memctrl.CmdWR {
		hold = cmd.At + c.p.WL + c.p.BL + c.p.WR
	} else {
		hold = cmd.At + c.p.RTP
	}
	if hold > b.preReady {
		b.preReady = hold
	}
}

func (c *Checker) checkREF(cmd memctrl.Cmd) {
	if cmd.Bank >= 0 {
		// Same-bank refresh (REFsb): only the named bank must be idle.
		b := c.bank(cmd)
		if b == nil {
			c.violate(cmd, "bank index", cmd.At)
			return
		}
		if b.open {
			c.violate(cmd, "REFsb with bank open", b.preReady)
		}
		if cmd.At < b.actReady && b.sawAct {
			c.violate(cmd, "REFsb before tRP", b.actReady)
		}
		if ready := cmd.At + c.p.RFCsb; ready > b.actReady {
			b.actReady = ready
		}
		return
	}
	for i := range c.banks {
		if c.banks[i].open {
			c.violate(cmd, fmt.Sprintf("REF with bank %d open", i), c.banks[i].preReady)
		}
		if cmd.At < c.banks[i].actReady && c.banks[i].sawAct {
			c.violate(cmd, fmt.Sprintf("REF before bank %d tRP", i), c.banks[i].actReady)
		}
	}
	c.refBusyTo = cmd.At + c.p.RFC
	for i := range c.banks {
		if c.refBusyTo > c.banks[i].actReady {
			c.banks[i].actReady = c.refBusyTo
		}
	}
}

func (c *Checker) checkRFM(cmd memctrl.Cmd) {
	b := c.bank(cmd)
	if b == nil {
		c.violate(cmd, "bank index", cmd.At)
		return
	}
	if b.open {
		c.violate(cmd, "RFM with bank open", b.preReady)
	}
	if cmd.At < b.actReady {
		c.violate(cmd, "RFM before tRP", b.actReady)
	}
	if ready := cmd.At + c.p.RFM; ready > b.actReady {
		b.actReady = ready
	}
}

// Violations returns every detected protocol error.
func (c *Checker) Violations() []Violation { return c.violations }

// Commands returns the number of commands observed.
func (c *Checker) Commands() int { return c.commands }

// Err returns nil when the stream was clean, or an error summarizing the
// first violation and the total count.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("cmdtrace: %d violations in %d commands; first: %s",
		len(c.violations), c.commands, c.violations[0])
}
