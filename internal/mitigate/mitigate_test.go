package mitigate

import (
	"testing"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/timing"
)

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(2)
	tr.Observe(1)
	tr.Observe(1)
	tr.Observe(2)
	if tr.Count(1) != 2 || tr.Count(2) != 1 {
		t.Fatalf("counts = %d/%d", tr.Count(1), tr.Count(2))
	}
	row, c, ok := tr.Top()
	if !ok || row != 1 || c != 2 {
		t.Fatalf("Top = (%d,%d,%v)", row, c, ok)
	}
	// Space-Saving eviction: new element takes min+1.
	tr.Observe(3)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Count(3) != 2 { // evicted row 2 with count 1
		t.Fatalf("Count(3) = %d, want 2", tr.Count(3))
	}
	if tr.Count(2) != 0 {
		t.Fatal("row 2 not evicted")
	}
}

// TestTrackerGuarantee: any row activated more than total/capacity times is
// guaranteed present — the Misra-Gries property Mithril's protection relies
// on.
func TestTrackerGuarantee(t *testing.T) {
	const capacity, rounds = 8, 1000
	tr := NewTracker(capacity)
	// Heavy hitter: every other observation; noise: fresh rows.
	for i := 0; i < rounds; i++ {
		tr.Observe(42)
		tr.Observe(1000 + i)
	}
	if tr.Count(42) == 0 {
		t.Fatal("heavy hitter lost from tracker")
	}
	row, _, _ := tr.Top()
	if row != 42 {
		t.Fatalf("Top = %d, want 42", row)
	}
}

func TestTrackerMitigatedDemotes(t *testing.T) {
	tr := NewTracker(4)
	for i := 0; i < 10; i++ {
		tr.Observe(7)
	}
	tr.Observe(8)
	tr.Mitigated(7)
	if tr.Count(7) != tr.Count(8) {
		t.Fatalf("mitigated row count %d, want table min %d", tr.Count(7), tr.Count(8))
	}
	tr.Mitigated(999) // absent row: no-op
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func newDevice(t *testing.T, mit dram.Mitigator, hcnt int) *dram.Device {
	t.Helper()
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8),
		Hammer:    hammer.Config{HCnt: hcnt, BlastRadius: 3},
		Mitigator: mit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// drive runs n ACT-PRE cycles on pa, issuing RFM at RAAIMT like the MC.
func drive(t *testing.T, d *dram.Device, bank, pa, n int) {
	t.Helper()
	p := d.Params()
	now := timing.Tick(0)
	for i := 0; i < n; i++ {
		if err := d.Activate(bank, pa, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(bank, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
		if d.Bank(bank).RAA >= p.RAAIMT {
			if err := d.RFM(bank, now); err != nil {
				t.Fatal(err)
			}
			now += p.RFM
		}
	}
}

func TestPARFMDefendsSingleRow(t *testing.T) {
	const hcnt = 128
	m := NewPARFM(3, 1)
	d := newDevice(t, m, hcnt)
	drive(t, d, 0, 16, 8*hcnt)
	// Single-aggressor attack against PARFM with RAAIMT 8: the sampled row
	// is always the aggressor, so victims are refreshed every 8 ACTs and
	// never accumulate 128.
	if d.FlipCount() != 0 {
		t.Fatalf("PARFM flipped %d bits under single-row attack", d.FlipCount())
	}
	if m.TRRs == 0 {
		t.Fatal("no TRRs issued")
	}
}

func TestMithrilDefendsSingleRow(t *testing.T) {
	const hcnt = 128
	m := NewMithril(16, 3)
	d := newDevice(t, m, hcnt)
	drive(t, d, 0, 16, 8*hcnt)
	if d.FlipCount() != 0 {
		t.Fatalf("Mithril flipped %d bits", d.FlipCount())
	}
	if m.TRRs == 0 {
		t.Fatal("no TRRs issued")
	}
	if m.Name() != "mithril-16" {
		t.Fatalf("name = %q", m.Name())
	}
	if m.TableBytesPerBank() != 80 {
		t.Fatalf("table bytes = %d", m.TableBytesPerBank())
	}
}

func TestBaselineFlipsWhereMitigationsDefend(t *testing.T) {
	const hcnt = 128
	d := newDevice(t, dram.Identity{}, hcnt)
	drive(t, d, 0, 16, 8*hcnt) // RFMs still consume time but do nothing
	if d.FlipCount() == 0 {
		t.Fatal("unprotected device survived the attack the baselines defend")
	}
}

func TestTRRVictimCoverage(t *testing.T) {
	m := NewPARFM(2, 1)
	d := newDevice(t, m, 1<<20)
	b := d.Bank(0)
	// Hammer PA row 16 (sub 0 in TestGeometry has 32 rows; 16 is interior).
	drive(t, d, 0, 16, 8)
	sa := b.Subarray(0)
	// After the RFM, victims 14,15,17,18 were refreshed (pressure 0 except
	// disturbance from the TRR activations themselves, < 3).
	for _, v := range []int{15, 17} {
		if p := sa.Hammer.Pressure(v); p > 3 {
			t.Errorf("victim %d pressure %g after TRR", v, p)
		}
	}
}

func TestDualCBFEstimateNeverUnderestimates(t *testing.T) {
	cbf := NewDualCBF(256, 4, 99)
	for i := 0; i < 100; i++ {
		cbf.Insert(7)
	}
	if got := cbf.Estimate(7); got < 100 {
		t.Fatalf("estimate %d below true count 100", got)
	}
	if cbf.Estimate(12345) > 0 {
		t.Log("collision for absent key (allowed, bloom filters overestimate)")
	}
}

func TestDualCBFRotateBoundsHistory(t *testing.T) {
	cbf := NewDualCBF(256, 4, 1)
	for i := 0; i < 50; i++ {
		cbf.Insert(7)
	}
	cbf.Rotate() // elder (with 50) clears; younger (with 50) becomes elder
	if got := cbf.Estimate(7); got != 50 {
		t.Fatalf("estimate after one rotate = %d, want 50", got)
	}
	cbf.Rotate()
	if got := cbf.Estimate(7); got != 0 {
		t.Fatalf("estimate after two rotates = %d, want 0", got)
	}
	if cbf.Epoch() != 2 {
		t.Fatalf("Epoch = %d", cbf.Epoch())
	}
}

func TestBlockHammerThrottlesHotRow(t *testing.T) {
	cfg := BlockHammerConfig{
		Hammer: hammer.Config{HCnt: 1024, BlastRadius: 1},
		REFW:   32 * timing.Millisecond,
		Seed:   3,
	}
	bh := NewBlockHammer(cfg)
	now := timing.Tick(0)
	rc := timing.NS(45)
	delayed := false
	for i := 0; i < 1000; i++ {
		at := bh.ACTAllowedAt(0, 5, now)
		if at > now {
			delayed = true
			now = at
		}
		bh.OnACT(0, 5, now)
		now += rc
	}
	if !delayed {
		t.Fatal("hot row never throttled")
	}
	if bh.Blacklisted == 0 {
		t.Fatal("row never blacklisted")
	}
	// The throttle must keep the row below the effective H_cnt per window:
	// time for 1000 ACTs must now far exceed the unthrottled 45us.
	if now < 10*timing.Microsecond {
		t.Fatalf("1000 throttled ACTs took only %v", now)
	}
}

func TestBlockHammerLeavesColdRowsAlone(t *testing.T) {
	cfg := BlockHammerConfig{
		Hammer: hammer.Config{HCnt: 4096, BlastRadius: 1},
		REFW:   32 * timing.Millisecond,
	}
	bh := NewBlockHammer(cfg)
	now := timing.Tick(0)
	for i := 0; i < 2000; i++ {
		row := i % 500 // spread across many rows
		if at := bh.ACTAllowedAt(1, row, now); at != now {
			t.Fatalf("cold row %d delayed at iteration %d", row, i)
		}
		bh.OnACT(1, row, now)
		now += timing.NS(45)
	}
}

func TestBlockHammerEpochResetsBlacklist(t *testing.T) {
	cfg := BlockHammerConfig{
		Hammer: hammer.Config{HCnt: 256, BlastRadius: 1},
		REFW:   1 * timing.Millisecond,
	}
	bh := NewBlockHammer(cfg)
	now := timing.Tick(0)
	for i := 0; i < 200; i++ {
		bh.OnACT(0, 9, now)
		now += timing.NS(50)
	}
	if bh.ACTAllowedAt(0, 9, now) == now {
		t.Fatal("row should be throttled before epoch end")
	}
	// Jump two epochs: both filters rotate out, row is clean again.
	now += 2 * cfg.REFW
	if at := bh.ACTAllowedAt(0, 9, now); at != now {
		t.Fatalf("row still throttled after full window: %v > %v", at, now)
	}
}

func TestRRSSwapTriggersAndIndirection(t *testing.T) {
	cfg := RRSConfig{
		SwapThreshold: 16,
		RowsPerBank:   128,
		SwapLatency:   4 * timing.Microsecond,
		REFW:          32 * timing.Millisecond,
		Seed:          5,
	}
	r := NewRRS(cfg)
	now := timing.Tick(0)
	var req *SwapRequest
	n := 0
	for req == nil {
		n++
		if n > 17 {
			t.Fatal("no swap after threshold+1 ACTs")
		}
		if act := r.OnACT(2, 40, now); act != nil {
			req = act.Swap
		}
		now += timing.NS(50)
	}
	if n != 16 {
		t.Fatalf("swap after %d ACTs, want 16", n)
	}
	if req.Bank != 2 || req.RowA != 40 || req.BlockFor != cfg.SwapLatency {
		t.Fatalf("bad request %+v", req)
	}
	if req.RowB == 40 {
		t.Fatal("swapped with itself")
	}
	// Indirection: logical 40 now lives at RowB and vice versa.
	if got := r.TranslateRow(2, 40); got != req.RowB {
		t.Fatalf("TranslateRow(40) = %d, want %d", got, req.RowB)
	}
	if got := r.TranslateRow(2, req.RowB); got != 40 {
		t.Fatalf("TranslateRow(%d) = %d, want 40", req.RowB, got)
	}
	if r.Swaps != 1 {
		t.Fatalf("Swaps = %d", r.Swaps)
	}
}

// TestRRSRepeatedSwapsStayConsistent: after many swaps the indirection table
// must remain an involution-free permutation (every logical row resolves to
// exactly one physical row).
func TestRRSRepeatedSwapsStayConsistent(t *testing.T) {
	cfg := RRSConfig{SwapThreshold: 4, RowsPerBank: 64, REFW: 32 * timing.Millisecond, Seed: 11}
	r := NewRRS(cfg)
	now := timing.Tick(0)
	for i := 0; i < 3000; i++ {
		r.OnACT(0, i%8, now)
		now += timing.NS(45)
	}
	if r.Swaps < 10 {
		t.Fatalf("only %d swaps", r.Swaps)
	}
	phys := make(map[int]int)
	for l := 0; l < cfg.RowsPerBank; l++ {
		p := r.TranslateRow(0, l)
		if p < 0 || p >= cfg.RowsPerBank {
			t.Fatalf("logical %d -> invalid physical %d", l, p)
		}
		if prev, dup := phys[p]; dup {
			t.Fatalf("physical %d claimed by logical %d and %d", p, prev, l)
		}
		phys[p] = l
	}
}

func TestNopMCSide(t *testing.T) {
	var n NopMCSide
	if n.Name() != "none" || n.TranslateRow(1, 5) != 5 {
		t.Fatal("NopMCSide misbehaves")
	}
	if n.ACTAllowedAt(0, 0, 7) != 7 || n.OnACT(0, 0, 7) != nil {
		t.Fatal("NopMCSide should never delay or swap")
	}
}

func TestRFMFilterSkipsColdIssuesHot(t *testing.T) {
	f := NewRFMFilter(512, 4, 16, 32*timing.Millisecond)
	now := timing.Tick(0)
	// Cold phase: spread ACTs.
	for i := 0; i < 64; i++ {
		f.Observe(0, i*13, now)
		now += timing.NS(45)
	}
	if f.ShouldRFM(0, now) {
		t.Fatal("filter issued RFM for spread accesses")
	}
	// Hot phase: concentrate.
	for i := 0; i < 32; i++ {
		f.Observe(0, 7, now)
		now += timing.NS(45)
	}
	if !f.ShouldRFM(0, now) {
		t.Fatal("filter skipped RFM for a hot row")
	}
	if f.Issued != 1 || f.Skipped != 1 {
		t.Fatalf("issued/skipped = %d/%d", f.Issued, f.Skipped)
	}
}
