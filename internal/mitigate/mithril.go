package mitigate

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

// Mithril is the DRAM-side tracker baseline (Kim et al., HPCA 2022): each
// bank runs a Counter-based-Summary tracker over activated rows; on every
// RFM, the row with the highest count receives TRR on its victims and its
// counter is demoted to the table minimum. The paper evaluates two
// configurations: Mithril-perf (a ~10 KB-per-bank CAM, expensive in DRAM
// technology) and Mithril-area (a small table with RAAIMT pinned to 32).
type Mithril struct {
	entries int
	blast   int
	banks   map[int]*Tracker

	// Stats
	TRRs int64
}

var _ dram.Mitigator = (*Mithril)(nil)

// NewMithril returns a Mithril mitigator with the given per-bank tracker
// capacity and protected blast radius.
func NewMithril(entries, blast int) *Mithril {
	if entries <= 0 {
		panic("mitigate: mithril needs a positive tracker size")
	}
	return &Mithril{entries: entries, blast: blast, banks: make(map[int]*Tracker)}
}

// Name implements dram.Mitigator.
func (m *Mithril) Name() string { return fmt.Sprintf("mithril-%d", m.entries) }

// RFMBlame implements span.Attributor: Mithril fills RFM windows with
// tracker-directed TRR, plain refresh-management work.
func (m *Mithril) RFMBlame() span.Cause { return span.CauseRFM }

// TableEntries returns the per-bank tracker capacity.
func (m *Mithril) TableEntries() int { return m.entries }

// TableBytesPerBank estimates the CAM cost: each entry stores a row address
// (~17 bits for a DDR5 bank) plus a counter (~20 bits), ~5 bytes per entry.
func (m *Mithril) TableBytesPerBank() int { return m.entries * 5 }

func (m *Mithril) tracker(id int) *Tracker {
	t, ok := m.banks[id]
	if !ok {
		t = NewTracker(m.entries)
		m.banks[id] = t
	}
	return t
}

// Translate implements dram.Mitigator (identity).
func (m *Mithril) Translate(b *dram.Bank, paRow int) (int, int) {
	return b.Geometry().SubarrayOf(paRow)
}

// OnACT implements dram.Mitigator: feed the tracker.
func (m *Mithril) OnACT(b *dram.Bank, paRow, sub, da int, now timing.Tick) {
	m.tracker(b.ID()).Observe(paRow)
}

// NextEventAt implements dram.Mitigator: Mithril acts only inside RFM
// windows, whose cadence the controller's RAA counters already drive.
func (m *Mithril) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnRFM implements dram.Mitigator: TRR the victims of the hottest row.
func (m *Mithril) OnRFM(b *dram.Bank, now timing.Tick) {
	t := m.tracker(b.ID())
	row, _, ok := t.Top()
	if !ok {
		return
	}
	sub, da := b.Geometry().SubarrayOf(row)
	trrVictims(b, sub, da, m.blast)
	t.Mitigated(row)
	m.TRRs++
}
