// Package mitigate implements the Row Hammer mitigation baselines the paper
// compares SHADOW against (Sections III, VII-C):
//
//   - PARFM: PARA retargeted to the RFM interface — on every RFM, TRR the
//     victims of one row sampled uniformly from the activations since the
//     previous RFM (DRAM-side).
//   - Mithril: a Counter-based-Summary (Space-Saving/Misra-Gries family)
//     tracker per bank; on every RFM, TRR the victims of the row with the
//     highest tracked count (DRAM-side; -perf and -area points differ only
//     in table size and RAAIMT).
//   - BlockHammer: a dual counting Bloom filter per bank that blacklists
//     rapidly activated rows and throttles their activation rate below the
//     RH threshold (MC-side).
//   - RRS (Randomized Row-Swap): a Misra-Gries tracker plus a row
//     indirection table at the MC; rows crossing the swap threshold are
//     swapped with a random row over the memory channel, blocking it for
//     multiple microseconds (MC-side).
//   - DRR (double refresh rate) needs no logic here: it is expressed by
//     halving tREFI (timing.Params.WithRefreshScale(2)).
//
// DRAM-side schemes implement dram.Mitigator; MC-side schemes implement
// MCSide, consumed by package memctrl.
package mitigate

import "shadow/internal/timing"

// SwapRequest asks the memory controller to swap the contents of two PA
// rows of a bank over the memory channel (the RRS mitigating action). The
// issuing mitigator has already updated its indirection table; the MC must
// move the data and block the channel for the scheme's swap latency.
type SwapRequest struct {
	Bank, RowA, RowB int
	// BlockFor is how long the channel is unavailable while the swap's
	// reads and writes occupy it.
	BlockFor timing.Tick
}

// Action is the mitigating work an MC-side policy requests after observing
// an activation.
type Action struct {
	// Swap moves two rows' contents over the channel (RRS).
	Swap *SwapRequest
	// TRR lists PA rows the MC must refresh by activating them — the
	// MC-side target-row-refresh of Graphene and PARA. Each costs a normal
	// ACT-PRE cycle on the bank (and counts toward its RAA counter).
	TRR []int
}

// MCSide is a memory-controller-side mitigation policy.
type MCSide interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// TranslateRow maps the physical row the core addresses to the row the
	// MC sends to the device (RRS's indirection table; identity elsewhere).
	TranslateRow(bank, paRow int) int
	// ACTAllowedAt returns the earliest time an ACT to (bank, paRow) may
	// issue — the throttling hook (BlockHammer). Return now for no delay.
	ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick
	// OnACT observes an issued ACT and may demand mitigating work.
	OnACT(bank, paRow int, now timing.Tick) *Action
	// NextEventAt returns the earliest future instant at which the policy
	// could act on its own schedule rather than in response to a command
	// (BlockHammer's epoch rotation; timing.Forever when there is no
	// autonomous timer). The event wheel folds this into its jump bound; a
	// too-early time costs an extra no-op wakeup, never correctness.
	NextEventAt(now timing.Tick) timing.Tick
}

// NopMCSide is the no-op MC-side policy used with DRAM-side schemes.
type NopMCSide struct{}

// Name implements MCSide.
func (NopMCSide) Name() string { return "none" }

// TranslateRow implements MCSide.
func (NopMCSide) TranslateRow(bank, paRow int) int { return paRow }

// ACTAllowedAt implements MCSide.
func (NopMCSide) ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick { return now }

// OnACT implements MCSide.
func (NopMCSide) OnACT(bank, paRow int, now timing.Tick) *Action { return nil }

// NextEventAt implements MCSide: no timers.
func (NopMCSide) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }
