package mitigate

import (
	"shadow/internal/rng"
	"shadow/internal/timing"
)

// RRS is Randomized Row-Swap (Saileshwar et al., ASPLOS 2022), the prior
// row-shuffle baseline: a Misra-Gries-family tracker at the MC detects rows
// crossing the swap threshold (H_cnt/6 in the paper's favorable
// configuration) and swaps their contents with a uniformly random row of the
// same bank. Because the swap moves data over the memory channel, the
// channel is blocked for multiple microseconds per swap — the overhead
// SHADOW's in-DRAM copies avoid (Section III-A).
type RRS struct {
	cfg   RRSConfig
	src   rng.Source
	banks map[int]*rrsBank

	// Stats
	Swaps int64
}

type rrsBank struct {
	tracker   *Tracker
	toPhys    map[int]int // logical (core-visible) row -> physical row
	toLogical map[int]int // inverse
	lastReset timing.Tick
}

// RRSConfig sizes the scheme.
type RRSConfig struct {
	// SwapThreshold is the tracked count that triggers a swap (H_cnt/6).
	SwapThreshold int64
	// RowsPerBank bounds the random partner choice.
	RowsPerBank int
	// TrackerEntries sizes the per-bank Misra-Gries table.
	TrackerEntries int
	// SwapLatency is how long one swap blocks the channel (>= 4 us per the
	// paper's discussion of RRS).
	SwapLatency timing.Tick
	// REFW resets tracker state every refresh window.
	REFW timing.Tick
	Seed uint64
}

var _ MCSide = (*RRS)(nil)

// NewRRS returns the row-swap policy.
func NewRRS(cfg RRSConfig) *RRS {
	if cfg.SwapThreshold <= 0 {
		panic("mitigate: RRS needs a positive swap threshold")
	}
	if cfg.TrackerEntries == 0 {
		cfg.TrackerEntries = 1024
	}
	if cfg.SwapLatency == 0 {
		cfg.SwapLatency = 4 * timing.Microsecond
	}
	return &RRS{cfg: cfg, src: rng.NewCSPRNG(cfg.Seed), banks: make(map[int]*rrsBank)}
}

// Name implements MCSide.
func (r *RRS) Name() string { return "rrs" }

func (r *RRS) bank(id int) *rrsBank {
	b, ok := r.banks[id]
	if !ok {
		b = &rrsBank{
			tracker:   NewTracker(r.cfg.TrackerEntries),
			toPhys:    make(map[int]int),
			toLogical: make(map[int]int),
		}
		r.banks[id] = b
	}
	return b
}

// TranslateRow implements MCSide: the row indirection table.
func (r *RRS) TranslateRow(bank, paRow int) int {
	b := r.bank(bank)
	if p, ok := b.toPhys[paRow]; ok {
		return p
	}
	return paRow
}

// ACTAllowedAt implements MCSide (RRS does not throttle).
func (r *RRS) ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick { return now }

// NextEventAt implements MCSide: RRS swaps are triggered by ACT counts, and
// an in-flight swap already blocks the channel until its end.
func (r *RRS) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnACT implements MCSide: count the *physical* row (aggression follows the
// physical location) and trigger a swap at the threshold. The returned
// request names physical rows; the MC moves the data and stalls the channel.
func (r *RRS) OnACT(bank, paRow int, now timing.Tick) *Action {
	if req := r.onACT(bank, paRow, now); req != nil {
		return &Action{Swap: req}
	}
	return nil
}

func (r *RRS) onACT(bank, paRow int, now timing.Tick) *SwapRequest {
	b := r.bank(bank)
	if r.cfg.REFW > 0 && now-b.lastReset >= r.cfg.REFW {
		b.tracker.Reset()
		b.lastReset += (now - b.lastReset) / r.cfg.REFW * r.cfg.REFW
	}
	phys := r.TranslateRow(bank, paRow)
	if b.tracker.Observe(phys) < r.cfg.SwapThreshold {
		return nil
	}
	// Swap with a uniformly random other physical row of the bank.
	partner := rng.Intn(r.src, r.cfg.RowsPerBank-1)
	if partner >= phys {
		partner++
	}
	r.swap(b, phys, partner)
	b.tracker.Remove(phys)
	b.tracker.Remove(partner)
	r.Swaps++
	return &SwapRequest{Bank: bank, RowA: phys, RowB: partner, BlockFor: r.cfg.SwapLatency}
}

// swap updates the indirection table: the logical rows resident at physical
// rows pa and pb exchange locations.
func (r *RRS) swap(b *rrsBank, pa, pb int) {
	la, oka := b.toLogical[pa]
	if !oka {
		la = pa
	}
	lb, okb := b.toLogical[pb]
	if !okb {
		lb = pb
	}
	setMap := func(logical, phys int) {
		if logical == phys {
			delete(b.toPhys, logical)
			delete(b.toLogical, phys)
			return
		}
		b.toPhys[logical] = phys
		b.toLogical[phys] = logical
	}
	// Clear stale inverse entries before rewriting.
	delete(b.toLogical, pa)
	delete(b.toLogical, pb)
	setMap(la, pb)
	setMap(lb, pa)
}

// MappingOf returns the logical->physical overrides of a bank (tests).
func (r *RRS) MappingOf(bank int) map[int]int {
	out := make(map[int]int)
	for l, p := range r.bank(bank).toPhys {
		out[l] = p
	}
	return out
}
