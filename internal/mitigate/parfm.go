package mitigate

import (
	"shadow/internal/dram"
	"shadow/internal/obs/span"
	"shadow/internal/rng"
	"shadow/internal/timing"
)

// trrVictims refreshes every victim of aggressor DA row (both sides of the
// blast radius) — the TRR mitigating action shared by PARFM and Mithril.
// TRR uses the refresh path, which restores charge without disturbing
// neighbors (unlike ordinary activations).
func trrVictims(b *dram.Bank, sub, da, blast int) {
	daRows := b.Geometry().DARowsPerSubarray()
	for d := 1; d <= blast; d++ {
		for _, v := range [2]int{da - d, da + d} {
			if v >= 0 && v < daRows {
				b.RefreshRow(sub, v)
			}
		}
	}
}

// PARFM is PARA on the RFM interface (the paper's "PARFM" baseline,
// following Mithril's formulation): the DRAM device samples one row
// uniformly from the activations since the previous RFM and, on the RFM,
// refreshes that row's victims. Identity PA-to-DA mapping throughout.
type PARFM struct {
	src   rng.Source
	blast int

	// per-bank reservoir sample
	sampled map[int]int
	n       map[int]int

	// Stats
	TRRs int64
}

var _ dram.Mitigator = (*PARFM)(nil)

// NewPARFM returns a PARFM mitigator protecting the given blast radius.
func NewPARFM(blast int, seed uint64) *PARFM {
	return &PARFM{
		src:     rng.NewCSPRNG(seed),
		blast:   blast,
		sampled: make(map[int]int),
		n:       make(map[int]int),
	}
}

// Name implements dram.Mitigator.
func (m *PARFM) Name() string { return "parfm" }

// RFMBlame implements span.Attributor: PARFM fills RFM windows with
// probabilistic TRR, plain refresh-management work.
func (m *PARFM) RFMBlame() span.Cause { return span.CauseRFM }

// Translate implements dram.Mitigator (identity).
func (m *PARFM) Translate(b *dram.Bank, paRow int) (int, int) {
	return b.Geometry().SubarrayOf(paRow)
}

// OnACT implements dram.Mitigator (reservoir sampling, stateless otherwise).
func (m *PARFM) OnACT(b *dram.Bank, paRow, sub, da int, now timing.Tick) {
	id := b.ID()
	m.n[id]++
	if rng.Intn(m.src, m.n[id]) == 0 {
		m.sampled[id] = paRow
	}
}

// NextEventAt implements dram.Mitigator: PARFM acts only inside RFM windows.
func (m *PARFM) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnRFM implements dram.Mitigator: TRR the sampled row's victims.
func (m *PARFM) OnRFM(b *dram.Bank, now timing.Tick) {
	id := b.ID()
	if m.n[id] == 0 {
		return
	}
	pa := m.sampled[id]
	m.n[id] = 0
	sub, da := b.Geometry().SubarrayOf(pa)
	trrVictims(b, sub, da, m.blast)
	m.TRRs++
}
