package mitigate

import (
	"shadow/internal/dram"
	"shadow/internal/timing"
)

// Panopticon is the tracker-less in-DRAM baseline from the paper's related
// work (Bennett et al., DRAMSec 2021): a counter per DRAM row, held in
// modified mat structures inside the device, incremented on every activation
// of a neighbor; when a row's counter crosses the threshold the device
// refreshes it and resets the counter. Perfect per-row information — but its
// TRR action still chases victims, so blast-attacks dilute it exactly as
// Section IX argues (one mitigation per victim, 2*blast victims per
// aggressor), and the counter mats cost area on every mat.
//
// This implementation piggybacks the refresh work on RFM commands (the
// in-DRAM maintenance slot of this codebase); rows whose counters crossed
// the threshold queue up and drain at each RFM.
type Panopticon struct {
	threshold float64
	blast     int

	// counters[bank] tracks per-DA pressure; lazily allocated per subarray
	// like the device's own structures. Indexed [bank][sub][da].
	counters map[int]map[int][]float64
	pending  map[int][]pendingRefresh

	// Stats
	Refreshes int64
}

type pendingRefresh struct{ sub, da int }

var _ dram.Mitigator = (*Panopticon)(nil)

// NewPanopticon returns the per-row-counter mitigator. The refresh threshold
// is the blast-adjusted H_cnt halved (refresh well before danger).
func NewPanopticon(hcnt, blast int) *Panopticon {
	w := 0.0
	for d := 1; d <= blast; d++ {
		w += 2.0 / float64(int(1)<<(d-1))
	}
	return &Panopticon{
		threshold: float64(hcnt) / 2,
		blast:     blast,
		counters:  make(map[int]map[int][]float64),
		pending:   make(map[int][]pendingRefresh),
	}
}

// Name implements dram.Mitigator.
func (pn *Panopticon) Name() string { return "panopticon" }

// Translate implements dram.Mitigator (identity mapping).
func (pn *Panopticon) Translate(b *dram.Bank, paRow int) (int, int) {
	return b.Geometry().SubarrayOf(paRow)
}

func (pn *Panopticon) subCounters(b *dram.Bank, sub int) []float64 {
	bankC, ok := pn.counters[b.ID()]
	if !ok {
		bankC = make(map[int][]float64)
		pn.counters[b.ID()] = bankC
	}
	c, ok := bankC[sub]
	if !ok {
		c = make([]float64, b.Geometry().DARowsPerSubarray())
		bankC[sub] = c
	}
	return c
}

// OnACT implements dram.Mitigator: bump the neighbors' counters; queue any
// that crossed the threshold.
func (pn *Panopticon) OnACT(b *dram.Bank, paRow, sub, da int, now timing.Tick) {
	c := pn.subCounters(b, sub)
	for d := 1; d <= pn.blast; d++ {
		w := 1.0 / float64(int(1)<<(d-1))
		for _, v := range [2]int{da - d, da + d} {
			if v < 0 || v >= len(c) {
				continue
			}
			c[v] += w
			if c[v] >= pn.threshold {
				c[v] = 0
				pn.pending[b.ID()] = append(pn.pending[b.ID()], pendingRefresh{sub: sub, da: v})
			}
		}
	}
	// The activated row itself is restored by its own ACT.
	c[da] = 0
}

// NextEventAt implements dram.Mitigator: Panopticon's counters move only on
// ACTs and its queued refreshes drain inside RFM windows.
func (pn *Panopticon) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnRFM implements dram.Mitigator: drain the queued refreshes.
func (pn *Panopticon) OnRFM(b *dram.Bank, now timing.Tick) {
	q := pn.pending[b.ID()]
	for _, r := range q {
		b.RefreshRow(r.sub, r.da)
		pn.Refreshes++
	}
	pn.pending[b.ID()] = q[:0]
}

// PendingRefreshes reports queued-but-unserved refreshes for a bank (tests).
func (pn *Panopticon) PendingRefreshes(bank int) int { return len(pn.pending[bank]) }
