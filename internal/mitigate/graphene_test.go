package mitigate

import (
	"testing"

	"shadow/internal/hammer"
	"shadow/internal/timing"
)

func TestGrapheneTriggersAtThreshold(t *testing.T) {
	g := NewGraphene(GrapheneConfig{
		Hammer:      hammer.Config{HCnt: 280, BlastRadius: 1}, // threshold 280/2/4 = 35
		RowsPerBank: 128,
		REFW:        32 * timing.Millisecond,
	})
	if g.Threshold() != 35 {
		t.Fatalf("threshold = %d, want 35", g.Threshold())
	}
	now := timing.Tick(0)
	var act *Action
	n := 0
	for act == nil {
		n++
		if n > int(g.Threshold())+1 {
			t.Fatal("never triggered")
		}
		act = g.OnACT(0, 50, now)
		now += timing.NS(46)
	}
	if n != int(g.Threshold()) {
		t.Fatalf("triggered after %d ACTs, want %d", n, g.Threshold())
	}
	if len(act.TRR) != 2 || act.TRR[0] != 49 || act.TRR[1] != 51 {
		t.Fatalf("TRR victims %v, want [49 51]", act.TRR)
	}
	if act.Swap != nil {
		t.Fatal("graphene must not swap")
	}
	// Counter was demoted: the very next ACT must not re-trigger.
	if g.OnACT(0, 50, now) != nil {
		t.Fatal("re-triggered immediately after mitigation")
	}
	if g.Mitigations != 1 {
		t.Fatalf("Mitigations = %d", g.Mitigations)
	}
}

func TestGrapheneVictimClamping(t *testing.T) {
	g := NewGraphene(GrapheneConfig{
		Hammer:      hammer.Config{HCnt: 56, BlastRadius: 3}, // threshold 2
		RowsPerBank: 64,
		REFW:        32 * timing.Millisecond,
	})
	var act *Action
	now := timing.Tick(0)
	for act == nil {
		act = g.OnACT(0, 0, now) // edge row
		now += timing.NS(46)
	}
	for _, v := range act.TRR {
		if v < 0 || v >= 64 {
			t.Fatalf("victim %d out of bank", v)
		}
	}
	// Only the +d side exists for row 0.
	if len(act.TRR) != 3 {
		t.Fatalf("TRR %v, want the 3 high-side victims", act.TRR)
	}
}

func TestGrapheneWindowReset(t *testing.T) {
	g := NewGraphene(GrapheneConfig{
		Hammer:      hammer.Config{HCnt: 800, BlastRadius: 1}, // threshold 100
		RowsPerBank: 128,
		REFW:        timing.Millisecond,
	})
	now := timing.Tick(0)
	for i := 0; i < 99; i++ { // just below threshold
		if g.OnACT(0, 7, now) != nil {
			t.Fatal("triggered below threshold")
		}
		now += timing.NS(46)
	}
	// Jump past the window: counters reset, so 99 more ACTs still no trigger.
	now += timing.Millisecond
	for i := 0; i < 99; i++ {
		if g.OnACT(0, 7, now) != nil {
			t.Fatalf("triggered at %d after window reset", i)
		}
		now += timing.NS(46)
	}
}

func TestPARASamplingRate(t *testing.T) {
	h := hammer.Config{HCnt: 4096, BlastRadius: 3}
	pa := NewPARA(h, 1<<16, 9)
	want := pa.Probability()
	if want <= 0 || want >= 1 {
		t.Fatalf("probability %g out of range", want)
	}
	const acts = 200000
	trrs := 0
	now := timing.Tick(0)
	for i := 0; i < acts; i++ {
		if act := pa.OnACT(0, 1000, now); act != nil {
			trrs += len(act.TRR)
		}
		now += timing.NS(46)
	}
	got := float64(trrs) / acts
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("sampling rate %.5f, want ~%.5f", got, want)
	}
}

func TestPARAVictimsWithinBlast(t *testing.T) {
	h := hammer.Config{HCnt: 64, BlastRadius: 3} // p saturates to 1
	pa := NewPARA(h, 1<<10, 3)
	if pa.Probability() != 1 {
		t.Fatalf("probability %g, want saturation at 1", pa.Probability())
	}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		act := pa.OnACT(0, 100, 0)
		if act == nil {
			t.Fatal("p=1 PARA skipped an ACT")
		}
		v := act.TRR[0]
		d := v - 100
		if d < 0 {
			d = -d
		}
		if d > 3 {
			t.Fatalf("victim %d outside blast radius", v)
		}
		seen[v] = true
	}
	if len(seen) < 6 {
		t.Fatalf("only %d distinct victims sampled, want all 6", len(seen))
	}
}

func TestPARAEdgeRows(t *testing.T) {
	h := hammer.Config{HCnt: 64, BlastRadius: 3}
	pa := NewPARA(h, 8, 3)
	for i := 0; i < 200; i++ {
		act := pa.OnACT(0, 0, 0)
		if act == nil {
			continue
		}
		if v := act.TRR[0]; v < 0 || v >= 8 {
			t.Fatalf("victim %d escaped the bank", v)
		}
	}
}

func TestPARAHigherHcntLowerRate(t *testing.T) {
	a := NewPARA(hammer.Config{HCnt: 2048, BlastRadius: 3}, 0, 1)
	b := NewPARA(hammer.Config{HCnt: 16384, BlastRadius: 3}, 0, 1)
	if b.Probability() >= a.Probability() {
		t.Fatalf("p(16K)=%g should be below p(2K)=%g", b.Probability(), a.Probability())
	}
}

func TestPanopticonDefendsSingleRow(t *testing.T) {
	const hcnt = 128
	pn := NewPanopticon(hcnt, 3)
	d := newDevice(t, pn, hcnt)
	drive(t, d, 0, 16, 8*hcnt)
	if d.FlipCount() != 0 {
		t.Fatalf("panopticon flipped %d bits", d.FlipCount())
	}
	if pn.Refreshes == 0 {
		t.Fatal("no refreshes issued")
	}
	if pn.Name() != "panopticon" {
		t.Fatal("bad name")
	}
}

func TestPanopticonQueuesUntilRFM(t *testing.T) {
	pn := NewPanopticon(16, 1) // threshold 8
	d := newDevice(t, pn, 1<<20)
	p := d.Params()
	now := timing.Tick(0)
	// 8 ACTs cross the threshold for both neighbors; no RFM yet.
	for i := 0; i < 8; i++ {
		if err := d.Activate(0, 16, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(0, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
	}
	if pn.PendingRefreshes(0) != 2 {
		t.Fatalf("pending = %d, want 2", pn.PendingRefreshes(0))
	}
	if err := d.RFM(0, now); err != nil {
		t.Fatal(err)
	}
	if pn.PendingRefreshes(0) != 0 {
		t.Fatal("RFM did not drain the queue")
	}
	if pn.Refreshes != 2 {
		t.Fatalf("Refreshes = %d, want 2", pn.Refreshes)
	}
}

// TestPanopticonBlastDilution: under a blast attack the per-victim counters
// grow at half rate per distance step, so the refresh *rate* Panopticon must
// sustain grows with the radius — the Section IX inefficiency.
func TestPanopticonBlastDilution(t *testing.T) {
	refreshes := func(blast int) int64 {
		pn := NewPanopticon(64, blast)
		d := newDevice(t, pn, 1<<20)
		drive(t, d, 0, 16, 512)
		return pn.Refreshes
	}
	if r3, r1 := refreshes(3), refreshes(1); r3 <= r1 {
		t.Fatalf("blast-3 refreshes (%d) should exceed blast-1 (%d)", r3, r1)
	}
}
