package mitigate

import (
	"shadow/internal/hammer"
	"shadow/internal/timing"
)

// Graphene is the MC-side tracker baseline (Park et al., MICRO 2020): a
// Misra-Gries-family table per bank counts activations; when a row's count
// crosses the threshold the MC refreshes its victims with its own ACT-PRE
// cycles and the row's counter restarts. Guaranteed protection requires the
// threshold to be the blast-adjusted H_cnt divided by a safety factor (4
// here, covering double-sided accumulation within one window with margin).
type Graphene struct {
	cfg    GrapheneConfig
	banks  map[int]*grapheneBank
	thresh int64

	// Stats
	Mitigations int64
}

type grapheneBank struct {
	tracker   *Tracker
	lastReset timing.Tick
}

// GrapheneConfig sizes the scheme.
type GrapheneConfig struct {
	// Hammer supplies H_cnt and the blast radius.
	Hammer hammer.Config
	// TableEntries sizes the per-bank tracker (Graphene's area cost grows
	// as H_cnt falls — the scalability problem Section III-B describes).
	TableEntries int
	// RowsPerBank clamps victim rows to the bank.
	RowsPerBank int
	// REFW resets the counters every refresh window.
	REFW timing.Tick
}

var _ MCSide = (*Graphene)(nil)

// NewGraphene returns the tracker + MC-TRR policy.
func NewGraphene(cfg GrapheneConfig) *Graphene {
	if cfg.TableEntries == 0 {
		// The table must hold every row that can cross the threshold in a
		// window; sizing it to acts-per-window / threshold is the paper's
		// rule. We default to a generous fixed size.
		cfg.TableEntries = 1024
	}
	thresh := int64(float64(cfg.Hammer.HCnt) / cfg.Hammer.WSum() / 4)
	if thresh < 1 {
		thresh = 1
	}
	return &Graphene{cfg: cfg, banks: make(map[int]*grapheneBank), thresh: thresh}
}

// Name implements MCSide.
func (g *Graphene) Name() string { return "graphene" }

// Threshold returns the mitigation threshold.
func (g *Graphene) Threshold() int64 { return g.thresh }

// TranslateRow implements MCSide (identity).
func (g *Graphene) TranslateRow(bank, paRow int) int { return paRow }

// ACTAllowedAt implements MCSide (no throttling).
func (g *Graphene) ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick { return now }

// NextEventAt implements MCSide: Graphene acts only in response to ACTs (its
// counter reset rides on the REF schedule the controller already anchors).
func (g *Graphene) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

func (g *Graphene) bank(id int) *grapheneBank {
	b, ok := g.banks[id]
	if !ok {
		b = &grapheneBank{tracker: NewTracker(g.cfg.TableEntries)}
		g.banks[id] = b
	}
	return b
}

// OnACT implements MCSide: track and, at the threshold, refresh the victims.
func (g *Graphene) OnACT(bank, paRow int, now timing.Tick) *Action {
	b := g.bank(bank)
	if g.cfg.REFW > 0 && now-b.lastReset >= g.cfg.REFW {
		b.tracker.Reset()
		b.lastReset += (now - b.lastReset) / g.cfg.REFW * g.cfg.REFW
	}
	if b.tracker.Observe(paRow) < g.thresh {
		return nil
	}
	b.tracker.ResetRow(paRow)
	g.Mitigations++
	victims := make([]int, 0, 2*g.cfg.Hammer.BlastRadius)
	for d := 1; d <= g.cfg.Hammer.BlastRadius; d++ {
		for _, v := range [2]int{paRow - d, paRow + d} {
			if v >= 0 && (g.cfg.RowsPerBank == 0 || v < g.cfg.RowsPerBank) {
				victims = append(victims, v)
			}
		}
	}
	return &Action{TRR: victims}
}
