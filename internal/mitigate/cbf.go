package mitigate

// countingBloom is one counting Bloom filter: k hash functions over m
// counters; an element's estimated count is the minimum of its counters
// (never an underestimate).
type countingBloom struct {
	counters []uint32
	hashes   int
	salt     uint64
	inserts  int64
}

func newCountingBloom(m, k int, salt uint64) *countingBloom {
	return &countingBloom{counters: make([]uint32, m), hashes: k, salt: salt} //shadowvet:ignore allocflow -- first-touch filter build, warm before steady state
}

func (f *countingBloom) index(key uint64, i int) int {
	z := key ^ f.salt ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(f.counters)))
}

// insert increments the element's counters.
func (f *countingBloom) insert(key uint64) {
	f.inserts++
	for i := 0; i < f.hashes; i++ {
		f.counters[f.index(key, i)]++
	}
}

// estimate returns the element's count upper bound.
func (f *countingBloom) estimate(key uint64) uint32 {
	min := ^uint32(0)
	for i := 0; i < f.hashes; i++ {
		if c := f.counters[f.index(key, i)]; c < min {
			min = c
		}
	}
	return min
}

func (f *countingBloom) reset() {
	for i := range f.counters {
		f.counters[i] = 0
	}
	f.inserts = 0
}

// DualCBF is BlockHammer's dual counting Bloom filter: two CBFs alternate
// over epochs of half a refresh window, so any row's activation history over
// the last tREFW is bounded by the longer-lived filter's estimate while the
// younger filter warms up to replace it.
type DualCBF struct {
	filters [2]*countingBloom
	elder   int // index of the longer-running filter
	epoch   int64
}

// NewDualCBF builds a dual filter with m counters and k hashes per filter.
func NewDualCBF(m, k int, salt uint64) *DualCBF {
	return &DualCBF{filters: [2]*countingBloom{ //shadowvet:ignore allocflow -- first-touch filter build, warm before steady state
		newCountingBloom(m, k, salt),
		newCountingBloom(m, k, salt^0xABCDEF),
	}}
}

// Insert records one activation of key.
func (d *DualCBF) Insert(key uint64) {
	d.filters[0].insert(key)
	d.filters[1].insert(key)
}

// Estimate returns the activation-count upper bound for key within the
// current history window.
func (d *DualCBF) Estimate(key uint64) uint32 {
	return d.filters[d.elder].estimate(key)
}

// Rotate ends an epoch: the elder filter (whose history is now a full
// window old) clears and becomes the younger.
func (d *DualCBF) Rotate() {
	d.filters[d.elder].reset()
	d.elder = 1 - d.elder
	d.epoch++
}

// Epoch returns the number of rotations so far.
func (d *DualCBF) Epoch() int64 { return d.epoch }
