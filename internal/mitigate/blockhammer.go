package mitigate

import (
	"shadow/internal/hammer"
	"shadow/internal/obs"
	"shadow/internal/timing"
)

// BlockHammer is the throttling baseline (Yaglikci et al., HPCA 2021): a
// dual counting Bloom filter per bank tracks row activation counts over the
// refresh window; a row whose estimate crosses the blacklist threshold is
// throttled so it cannot reach the (blast-radius-adjusted) RH threshold
// before its victims are refreshed. Bloom collisions make the scheme
// increasingly likely to misidentify — and throttle — benign rows as the
// threshold drops, which is the effect behind its low-H_cnt overhead in
// Fig. 11.
type BlockHammer struct {
	cfg BlockHammerConfig

	// blThreshold and thDelay cache blacklistThreshold/throttleDelay, which
	// depend only on the fixed config but sit on the controller's per-ACT
	// scheduling path.
	blThreshold uint32
	thDelay     timing.Tick

	banks map[int]*bhBank
	// throttleRows counts blacklisted rows across all banks (lastACT entries);
	// maintained incrementally so NextEventAt needs no map iteration.
	throttleRows int

	probe          *obs.Probe
	throttleSeries *obs.Series

	// Stats
	Blacklisted int64       // ACTs that hit the blacklist
	Delayed     timing.Tick // total delay injected
}

// bhBank is the per-bank filter state.
type bhBank struct {
	cbf        *DualCBF
	epochStart timing.Tick
	lastACT    map[int]timing.Tick // last ACT time of blacklisted rows
}

// BlockHammerConfig sizes the scheme.
type BlockHammerConfig struct {
	// Hammer supplies H_cnt and the blast radius; the effective per-row
	// budget is H_cnt / W_sum since blast weights let several aggressors
	// share the work of flipping one victim.
	Hammer hammer.Config
	// REFW is the refresh window; the filter epoch is REFW/2.
	REFW timing.Tick
	// Counters and Hashes size each Bloom filter (per bank). The hardware
	// budget in the paper's comparison is a few KB per bank.
	Counters, Hashes int
	Seed             uint64
}

var _ MCSide = (*BlockHammer)(nil)

// NewBlockHammer returns the throttling policy.
func NewBlockHammer(cfg BlockHammerConfig) *BlockHammer {
	if cfg.Counters == 0 {
		cfg.Counters = 1024
	}
	if cfg.Hashes == 0 {
		cfg.Hashes = 4
	}
	bh := &BlockHammer{cfg: cfg, banks: make(map[int]*bhBank)}
	bh.blThreshold = bh.computeBlacklistThreshold()
	bh.thDelay = bh.computeThrottleDelay()
	return bh
}

// Name implements MCSide.
func (bh *BlockHammer) Name() string { return "blockhammer" }

// SetProbe (re)attaches shadowscope instrumentation: throttle decisions as
// events plus a throttled-ACT rate series. A nil probe detaches.
func (bh *BlockHammer) SetProbe(p *obs.Probe) {
	bh.probe = p
	bh.throttleSeries = p.Series("blockhammer/throttled")
}

// TranslateRow implements MCSide (identity).
func (bh *BlockHammer) TranslateRow(bank, paRow int) int { return paRow }

func (bh *BlockHammer) bank(id int) *bhBank {
	b, ok := bh.banks[id]
	if !ok {
		b = &bhBank{
			cbf:     NewDualCBF(bh.cfg.Counters, bh.cfg.Hashes, bh.cfg.Seed+uint64(id)*7919),
			lastACT: make(map[int]timing.Tick),
		}
		bh.banks[id] = b
	}
	return b
}

// effectiveHCnt is the per-aggressor activation budget once blast weights
// are accounted for.
func (bh *BlockHammer) effectiveHCnt() float64 {
	return float64(bh.cfg.Hammer.HCnt) / bh.cfg.Hammer.WSum()
}

// computeBlacklistThreshold is half the effective budget, per the
// BlockHammer design (N_BL = n_RH*/2). Cached as blThreshold.
func (bh *BlockHammer) computeBlacklistThreshold() uint32 {
	t := uint32(bh.effectiveHCnt() / 2)
	if t < 1 {
		t = 1
	}
	return t
}

// computeThrottleDelay spreads a blacklisted row's remaining budget over the
// rest of the window: with at most (H* - N_BL) ACTs allowed in up to a full
// refresh window, consecutive ACTs must be at least REFW/(H*-N_BL) apart.
// Cached as thDelay.
func (bh *BlockHammer) computeThrottleDelay() timing.Tick {
	budget := bh.effectiveHCnt() - float64(bh.computeBlacklistThreshold())
	if budget < 1 {
		budget = 1
	}
	return timing.Tick(float64(bh.cfg.REFW) / budget)
}

func (bh *BlockHammer) blacklistThreshold() uint32 { return bh.blThreshold }
func (bh *BlockHammer) throttleDelay() timing.Tick { return bh.thDelay }

func (bh *BlockHammer) rotate(b *bhBank, now timing.Tick) {
	for now-b.epochStart >= bh.cfg.REFW/2 {
		b.cbf.Rotate()
		b.epochStart += bh.cfg.REFW / 2
		// Blacklist status must be re-earned each epoch.
		bh.throttleRows -= len(b.lastACT)
		b.lastACT = make(map[int]timing.Tick)
	}
}

// ACTAllowedAt implements MCSide: blacklisted rows are delayed.
func (bh *BlockHammer) ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick {
	b := bh.bank(bank)
	bh.rotate(b, now)
	if b.cbf.Estimate(rowKey(bank, paRow)) < bh.blacklistThreshold() {
		return now
	}
	last, seen := b.lastACT[paRow]
	if !seen {
		return now
	}
	allowed := last + bh.throttleDelay()
	if allowed < now {
		return now
	}
	return allowed
}

// NextEventAt implements MCSide. BlockHammer's only autonomous timer is the
// epoch rotation, and a rotation is observable only while some row is
// blacklisted (it clears the lastACT throttle state; filter rotation alone
// changes nothing until the next ACT consults it, which is its own event).
// Epochs start at 0 and advance in exact REFW/2 steps, so every bank's
// boundaries sit on the same global grid.
func (bh *BlockHammer) NextEventAt(now timing.Tick) timing.Tick {
	half := bh.cfg.REFW / 2
	if half <= 0 {
		return timing.Forever
	}
	// Any non-empty blacklist makes the next grid boundary observable; the
	// incremental count avoids iterating the bank map here.
	if bh.throttleRows == 0 {
		return timing.Forever
	}
	return (now/half + 1) * half
}

// OnACT implements MCSide: count the activation.
func (bh *BlockHammer) OnACT(bank, paRow int, now timing.Tick) *Action {
	b := bh.bank(bank)
	bh.rotate(b, now)
	key := rowKey(bank, paRow)
	b.cbf.Insert(key)
	if b.cbf.Estimate(key) >= bh.blacklistThreshold() {
		if _, seen := b.lastACT[paRow]; !seen {
			bh.throttleRows++
		}
		b.lastACT[paRow] = now
		bh.Blacklisted++
		if bh.probe != nil {
			bh.probe.Emit(obs.Event{
				At: now, Dur: bh.throttleDelay(), Kind: obs.KindThrottle,
				Bank: bank, Row: paRow,
			})
			bh.throttleSeries.Add(now, 1)
		}
	}
	return nil
}

func rowKey(bank, row int) uint64 {
	return uint64(bank)<<40 | uint64(uint32(row))
}
