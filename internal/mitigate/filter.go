package mitigate

import "shadow/internal/timing"

// RFMFilter is the Section VIII optimization: a random-projection counter
// structure (here a dual counting Bloom filter, as in BlockHammer/Hydra) in
// front of the RFM interface. The MC still counts RAA per bank, but when the
// counter reaches RAAIMT it consults the filter and skips the RFM if no row
// in the bank has been activated often enough to matter — most normal
// workloads spread their activations and never need mitigation. Skipping is
// safe down to the filter threshold because an attacker concentrating on few
// rows necessarily drives some estimate past it.
type RFMFilter struct {
	counters, hashes int
	refw             timing.Tick
	// Threshold is the hot-row estimate above which RFMs are honored.
	Threshold uint32

	banks map[int]*filterBank

	// Stats
	Issued, Skipped int64
}

type filterBank struct {
	cbf        *DualCBF
	epochStart timing.Tick
	maxEst     uint32
}

// NewRFMFilter builds a filter; threshold is typically RAAIMT/2.
func NewRFMFilter(counters, hashes int, threshold uint32, refw timing.Tick) *RFMFilter {
	if counters <= 0 {
		counters = 1024
	}
	if hashes <= 0 {
		hashes = 4
	}
	return &RFMFilter{
		counters: counters, hashes: hashes, refw: refw,
		Threshold: threshold, banks: make(map[int]*filterBank),
	}
}

func (f *RFMFilter) bank(id int) *filterBank {
	b, ok := f.banks[id]
	if !ok {
		b = &filterBank{cbf: NewDualCBF(f.counters, f.hashes, uint64(id)*104729)} //shadowvet:ignore allocflow -- per-bank filter created on first touch only
		f.banks[id] = b                                                           //shadowvet:ignore allocflow -- map keyed by bank id; all banks are inserted during warmup, no steady-state growth
	}
	return b
}

// Observe records an ACT.
func (f *RFMFilter) Observe(bank, paRow int, now timing.Tick) {
	b := f.bank(bank)
	for f.refw > 0 && now-b.epochStart >= f.refw/2 {
		b.cbf.Rotate()
		b.epochStart += f.refw / 2
		b.maxEst = 0
	}
	key := rowKey(bank, paRow)
	b.cbf.Insert(key)
	if e := b.cbf.Estimate(key); e > b.maxEst {
		b.maxEst = e
	}
}

// ShouldRFM reports whether the pending RFM for a bank is worth issuing.
func (f *RFMFilter) ShouldRFM(bank int, now timing.Tick) bool {
	b := f.bank(bank)
	if b.maxEst >= f.Threshold {
		f.Issued++
		return true
	}
	f.Skipped++
	return false
}
