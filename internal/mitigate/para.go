package mitigate

import (
	"math"

	"shadow/internal/hammer"
	"shadow/internal/rng"
	"shadow/internal/timing"
)

// PARA is the classic stateless probabilistic defense (Kim et al., ISCA
// 2014), implemented at the MC: every activation triggers, with probability
// p, a target-row-refresh of one uniformly chosen victim within the blast
// radius. No tracking state exists; protection is purely probabilistic, and
// the required p — hence the performance cost — grows quickly as H_cnt
// falls (the paper's Section IX criticism).
type PARA struct {
	p     float64
	blast int
	rows  int
	src   rng.Source

	// Stats
	Samples int64
}

var _ MCSide = (*PARA)(nil)

// NewPARA returns a PARA policy with probability chosen for the target
// failure rate: an aggressor evades all H_cnt/2 coin flips per side with
// probability (1-p/2)^(H_cnt/2); solving for a 1e-15-per-attack bound gives
// p = 2 * ln(1e15) / (H_cnt/2).
func NewPARA(h hammer.Config, rowsPerBank int, seed uint64) *PARA {
	p := 2 * math.Log(1e15) / (float64(h.HCnt) / h.WSum() / 2)
	if p > 1 {
		p = 1
	}
	return &PARA{p: p, blast: h.BlastRadius, rows: rowsPerBank, src: rng.NewCSPRNG(seed)}
}

// Name implements MCSide.
func (pa *PARA) Name() string { return "para" }

// Probability returns the per-ACT sampling probability.
func (pa *PARA) Probability() float64 { return pa.p }

// TranslateRow implements MCSide (identity).
func (pa *PARA) TranslateRow(bank, paRow int) int { return paRow }

// ACTAllowedAt implements MCSide (no throttling).
func (pa *PARA) ACTAllowedAt(bank, paRow int, now timing.Tick) timing.Tick { return now }

// NextEventAt implements MCSide: PARA is stateless and purely reactive.
func (pa *PARA) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnACT implements MCSide: flip the coin, refresh one victim.
func (pa *PARA) OnACT(bank, paRow int, now timing.Tick) *Action {
	if rng.Float64(pa.src) >= pa.p {
		return nil
	}
	pa.Samples++
	d := 1 + rng.Intn(pa.src, pa.blast)
	v := paRow - d
	if rng.Intn(pa.src, 2) == 1 {
		v = paRow + d
	}
	if v < 0 || (pa.rows > 0 && v >= pa.rows) {
		v = paRow // edge: refresh the aggressor itself (harmless)
	}
	return &Action{TRR: []int{v}}
}
