package mitigate

// Tracker is a Counter-based-Summary frequent-items tracker (the
// Space-Saving variant of the Misra-Gries family) as used per bank by
// Mithril (its "CbS algorithm") and by RRS's aggressor tracker. It
// guarantees that any row activated more than N/capacity times since the
// last reset is present in the table.
type Tracker struct {
	cap    int
	counts map[int]int64
	total  int64
}

// NewTracker returns a tracker with the given entry capacity (the CAM size
// of the hardware implementation).
func NewTracker(capacity int) *Tracker {
	if capacity <= 0 {
		panic("mitigate: tracker capacity must be positive")
	}
	return &Tracker{cap: capacity, counts: make(map[int]int64, capacity)}
}

// Cap returns the entry capacity.
func (t *Tracker) Cap() int { return t.cap }

// Total returns the number of Observe calls since the last Reset.
func (t *Tracker) Total() int64 { return t.total }

// Len returns the number of occupied entries.
func (t *Tracker) Len() int { return len(t.counts) }

// Observe records one activation of row and returns the row's current
// estimated count.
func (t *Tracker) Observe(row int) int64 {
	t.total++
	if c, ok := t.counts[row]; ok {
		t.counts[row] = c + 1
		return c + 1
	}
	if len(t.counts) < t.cap {
		t.counts[row] = 1
		return 1
	}
	// Space-Saving replacement: evict a minimum-count entry and take over
	// its count + 1 (an overestimate, never an underestimate). Ties break
	// toward the lowest row so the evicted entry never depends on map
	// iteration order.
	minRow, minCount := -1, int64(1)<<62
	for r, c := range t.counts {
		if c < minCount || (c == minCount && r < minRow) {
			minRow, minCount = r, c //shadowvet:ignore determinism -- order-independent min reduction (key tie-break)
		}
	}
	delete(t.counts, minRow)
	t.counts[row] = minCount + 1
	return minCount + 1
}

// Count returns the estimated count of a row (0 if untracked).
func (t *Tracker) Count(row int) int64 { return t.counts[row] }

// Top returns the row with the highest estimated count, or ok=false when the
// table is empty.
func (t *Tracker) Top() (row int, count int64, ok bool) {
	best, bestC := -1, int64(-1)
	for r, c := range t.counts {
		if c > bestC || (c == bestC && r < best) {
			best, bestC = r, c //shadowvet:ignore determinism -- order-independent max reduction (key tie-break)
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestC, true
}

// Mitigated informs the tracker that row received a mitigating action:
// per Mithril, its counter drops to the current table minimum so it must
// re-earn its position before being mitigated again.
func (t *Tracker) Mitigated(row int) {
	if _, ok := t.counts[row]; !ok {
		return
	}
	min := int64(1) << 62
	for _, c := range t.counts {
		if c < min {
			min = c //shadowvet:ignore determinism -- pure min over values, order-independent
		}
	}
	t.counts[row] = min
}

// ResetRow zeroes a row's counter in place (Graphene restarts a mitigated
// row's count; unlike Mitigated, the entry does not inherit the table
// minimum).
func (t *Tracker) ResetRow(row int) {
	if _, ok := t.counts[row]; ok {
		t.counts[row] = 0
	}
}

// Remove drops a row from the table (RRS removes a row after swapping it).
func (t *Tracker) Remove(row int) { delete(t.counts, row) }

// Reset clears the table (refresh-window boundary).
func (t *Tracker) Reset() {
	t.counts = make(map[int]int64, t.cap)
	t.total = 0
}
