// Package shadow implements the paper's contribution: SHADOW (Shuffling
// Aggressor DRAM Rows), an in-DRAM Row Hammer mitigation that randomizes the
// PA-to-DA mapping of every subarray by shuffling rows on each RFM command
// (Sections IV-VI).
//
// The controller plugs into the DRAM device as its Mitigator:
//
//   - Translate reads the per-subarray remapping-row — a real DRAM row in
//     the *paired* subarray (subarray pairing, Section V-B) — to resolve
//     which device row currently holds a PA row's data.
//   - OnACT reservoir-samples one aggressor row uniformly from the RAAIMT
//     activations since the last RFM, using the PRINCE CSPRNG; no SRAM/CAM
//     tracking table exists.
//   - OnRFM performs the DA-based incremental refresh and then the
//     row-shuffle: Row_rand is copied to Row_empt, Row_aggr to the old
//     location of Row_rand, and the old location of Row_aggr becomes the new
//     empty row; the remapping-row is rewritten to match (Section IV-B).
package shadow

import "fmt"

// Table is the decoded form of one subarray's remapping-row: the incremental
// refresh pointer plus the DA location of every logical slot. Slots
// 0..RowsPerSubarray-1 are the PA rows of the subarray; slot RowsPerSubarray
// (EmptySlot) tracks Row_empt. The encoded form lives in the paired
// subarray's remapping-row payload; this type only interprets those bytes.
type Table struct {
	slots int  // logical slots including the empty slot
	width uint // bits per entry
}

// NewTable describes the remapping-row layout for a subarray with the given
// number of DA rows (PA rows + empty rows).
func NewTable(daRows int) Table {
	return Table{slots: daRows, width: bitsFor(daRows)}
}

// bitsFor returns the number of bits needed to store values in [0, n).
// The paper uses 9 bits for 512-row subarrays; with the Row_empt slot the
// value range is 513 and one more bit is required — still comfortably within
// a 1 KB remapping-row (514 entries x 10 bits = 643 bytes).
func bitsFor(n int) uint {
	b := uint(1)
	for 1<<b < n {
		b++
	}
	return b
}

// EmptySlot returns the logical slot index tracking Row_empt.
func (t Table) EmptySlot() int { return t.slots - 1 }

// Bytes returns the encoded size of the table, which must fit in one row.
func (t Table) Bytes() int {
	bits := (t.slots + 1) * int(t.width) // +1 for the incremental pointer
	return (bits + 7) / 8
}

// entry offsets: entry 0 is the incremental refresh pointer, entry 1+i is
// logical slot i.

func (t Table) get(data []byte, entry int) int {
	off := uint(entry) * t.width
	var v uint
	for b := uint(0); b < t.width; b++ {
		bit := off + b
		if data[bit/8]&(1<<(bit%8)) != 0 {
			v |= 1 << b
		}
	}
	return int(v)
}

func (t Table) set(data []byte, entry, val int) {
	off := uint(entry) * t.width
	for b := uint(0); b < t.width; b++ {
		bit := off + b
		mask := byte(1) << (bit % 8)
		if val&(1<<b) != 0 {
			data[bit/8] |= mask
		} else {
			data[bit/8] &^= mask
		}
	}
}

// IncrPtr reads the incremental refresh pointer from an encoded table.
func (t Table) IncrPtr(data []byte) int { return t.get(data, 0) }

// SetIncrPtr writes the incremental refresh pointer.
func (t Table) SetIncrPtr(data []byte, v int) { t.set(data, 0, v) }

// Slot reads the DA row of logical slot i.
func (t Table) Slot(data []byte, i int) int {
	t.mustSlot(i)
	return t.get(data, 1+i)
}

// SetSlot writes the DA row of logical slot i.
func (t Table) SetSlot(data []byte, i, da int) {
	t.mustSlot(i)
	if da < 0 || da >= t.slots {
		panic(fmt.Sprintf("shadow: DA %d out of range [0,%d)", da, t.slots))
	}
	t.set(data, 1+i, da)
}

// InitIdentity writes the power-on mapping: slot i lives at DA i (the empty
// slot at the extra row), pointer at 0.
func (t Table) InitIdentity(data []byte) {
	t.SetIncrPtr(data, 0)
	for i := 0; i < t.slots; i++ {
		t.SetSlot(data, i, i)
	}
}

// Mapping decodes the full slot->DA mapping (for tests and inspection).
func (t Table) Mapping(data []byte) []int {
	m := make([]int, t.slots)
	for i := range m {
		m[i] = t.Slot(data, i)
	}
	return m
}

// CheckPermutation verifies the decoded mapping is a bijection onto
// [0, slots) — the invariant every shuffle must preserve.
func (t Table) CheckPermutation(data []byte) error {
	seen := make([]bool, t.slots)
	for i := 0; i < t.slots; i++ {
		da := t.Slot(data, i)
		if da < 0 || da >= t.slots {
			return fmt.Errorf("shadow: slot %d maps to invalid DA %d", i, da)
		}
		if seen[da] {
			return fmt.Errorf("shadow: DA %d mapped twice", da)
		}
		seen[da] = true
	}
	return nil
}

func (t Table) mustSlot(i int) {
	if i < 0 || i >= t.slots {
		panic(fmt.Sprintf("shadow: slot %d out of range [0,%d)", i, t.slots))
	}
}
