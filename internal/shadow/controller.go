package shadow

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/rng"
	"shadow/internal/timing"
)

// Options configures a SHADOW controller.
type Options struct {
	// PairDistance selects the subarray-pairing geometry: 1 pairs adjacent
	// subarrays (even/odd); 2 pairs subarrays that sandwich another, the
	// open-bitline arrangement of Section V-B.
	PairDistance int
	// Source provides randomness for Row_aggr sampling and Row_rand
	// selection; defaults to the PRINCE CSPRNG seeded with Seed.
	Source rng.Source
	// Seed seeds the default CSPRNG when Source is nil.
	Seed uint64
	// DisableIncrementalRefresh turns off the incremental refresh step
	// (ablation only; the paper's protection analysis assumes it on).
	DisableIncrementalRefresh bool
	// DisableShuffle turns off the row-shuffle step (ablation only).
	DisableShuffle bool
	// ReseedEvery rekeys the CSPRNG after this many shuffles, modelling the
	// Section VIII periodic key/counter re-initialization from a CPU-side
	// true RNG. Zero disables periodic reseeding. Only effective when the
	// default CSPRNG is used (a custom Source is the caller's business).
	ReseedEvery int64
	// Probe, when set, records shuffle and incremental-refresh events plus a
	// shuffle-rate series (shadowscope).
	Probe *obs.Probe
}

// Stats counts the controller's mitigation work.
type Stats struct {
	Shuffles     int64 // row-shuffle operations executed
	IncRefreshes int64 // incremental refresh activations
	SampledACTs  int64 // activations observed for reservoir sampling
	IdleRFMs     int64 // RFMs with no activation since the previous RFM
	RemapReads   int64 // remapping-row entry reads (every ACT costs one)
	RemapWrites  int64 // remapping-row update bursts (one per shuffle)
	Reseeds      int64 // periodic CSPRNG rekeys (Section VIII)
}

// bankState is the per-bank part of the controller: the recent-activation
// ring the aggressor is sampled from ("randomly selected among recent RAAIMT
// numbers of activated rows", Section IV-B) and which subarray tables have
// been initialized. The remapping tables themselves live in DRAM rows.
type bankState struct {
	recent     []int // PA rows of the activations since the last RFM
	tablesInit []bool
}

// Controller implements dram.Mitigator with the SHADOW scheme.
type Controller struct {
	opt    Options
	src    rng.Source
	csprng *rng.CSPRNG // non-nil when the default source is in use
	banks  map[int]*bankState

	probe         *obs.Probe
	shuffleSeries *obs.Series

	Stats Stats
}

var _ dram.Mitigator = (*Controller)(nil)

// New returns a SHADOW controller.
func New(opt Options) *Controller {
	if opt.PairDistance == 0 {
		opt.PairDistance = 1
	}
	c := &Controller{opt: opt, banks: make(map[int]*bankState)}
	if opt.Source != nil {
		c.src = opt.Source
	} else {
		c.csprng = rng.NewCSPRNG(opt.Seed)
		c.src = c.csprng
	}
	c.SetProbe(opt.Probe)
	return c
}

// SetProbe (re)attaches shadowscope instrumentation; sim calls it for
// mitigators built before the probe existed. A nil probe detaches.
func (c *Controller) SetProbe(p *obs.Probe) {
	c.probe = p
	c.shuffleSeries = p.Series("shadow/shuffles")
}

// Name implements dram.Mitigator.
func (c *Controller) Name() string { return "shadow" }

// RFMBlame implements span.Attributor: SHADOW spends its RFM windows
// shuffling rows and incrementally refreshing, so shadowtap attributes the
// resulting ACT holds to shuffle work rather than generic RFM.
func (c *Controller) RFMBlame() span.Cause { return span.CauseShuffle }

// PairOf returns the subarray paired with sub: the subarray whose
// remapping-row stores sub's mapping. Pairing is an involution.
func (c *Controller) PairOf(sub, totalSubs int) int {
	d := c.opt.PairDistance
	group := 2 * d
	base := sub - sub%group
	off := sub % group
	p := base + (off+d)%group
	if p >= totalSubs { // odd tail: pair with self (degenerate, tiny geometries)
		return sub
	}
	return p
}

func (c *Controller) state(b *dram.Bank) *bankState {
	s, ok := c.banks[b.ID()]
	if !ok {
		cap := b.Params().RAAIMT
		if cap <= 0 {
			cap = 64
		}
		s = &bankState{
			recent:     make([]int, 0, cap),
			tablesInit: make([]bool, b.Geometry().SubarraysPerBank),
		}
		c.banks[b.ID()] = s
	}
	return s
}

// table returns the Table layout and the encoded payload holding sub's
// mapping (in the paired subarray's remapping-row), initializing the
// identity mapping on first use.
func (c *Controller) table(b *dram.Bank, sub int) (Table, []byte) {
	g := b.Geometry()
	if g.ExtraRows != 1 {
		panic(fmt.Sprintf("shadow: geometry must provision exactly one empty row per subarray, got %d", g.ExtraRows))
	}
	t := NewTable(g.DARowsPerSubarray())
	if t.Bytes() > g.RowBytes {
		panic(fmt.Sprintf("shadow: remap table (%dB) exceeds row size (%dB)", t.Bytes(), g.RowBytes))
	}
	pair := c.PairOf(sub, g.SubarraysPerBank)
	data := b.Subarray(pair).RemapRow().Bytes(g.RowBytes)
	st := c.state(b)
	if !st.tablesInit[sub] {
		t.InitIdentity(data)
		st.tablesInit[sub] = true
	}
	return t, data
}

// Translate implements dram.Mitigator: every ACT first reads the
// remapping-row of the paired subarray (costing tRD_RM, already folded into
// the device's EffectiveRCD) to find the DA row holding the PA row's data.
func (c *Controller) Translate(b *dram.Bank, paRow int) (int, int) {
	sub, idx := b.Geometry().SubarrayOf(paRow)
	t, data := c.table(b, sub)
	c.Stats.RemapReads++
	return sub, t.Slot(data, idx)
}

// OnACT implements dram.Mitigator: remember the activation in the per-bank
// recent-ACT ring the aggressor will be drawn from. The ring never exceeds
// RAAIMT entries because the MC issues an RFM (which drains it) at RAAIMT;
// if RFMs are deferred toward RAAMMT the oldest entries are overwritten.
func (c *Controller) OnACT(b *dram.Bank, paRow, sub, da int, now timing.Tick) {
	st := c.state(b)
	c.Stats.SampledACTs++
	if len(st.recent) < cap(st.recent) {
		st.recent = append(st.recent, paRow)
		return
	}
	// Ring full: overwrite pseudo-round-robin, keeping the window recent.
	st.recent[int(c.Stats.SampledACTs)%len(st.recent)] = paRow
}

// NextEventAt implements dram.Mitigator: SHADOW's shuffles happen strictly
// inside the RFM windows the controller's RAA counters schedule; the scheme
// has no timer of its own.
func (c *Controller) NextEventAt(timing.Tick) timing.Tick { return timing.Forever }

// OnRFM implements dram.Mitigator: perform the incremental refresh and the
// row-shuffle of Section IV within tRFM (the device holds the bank busy; the
// remapping-row update in the paired subarray is fully hidden behind the
// row-copies, Section VI-B).
func (c *Controller) OnRFM(b *dram.Bank, now timing.Tick) {
	st := c.state(b)
	if len(st.recent) == 0 {
		// No activity since the last RFM (can only happen with MC-side
		// policies that issue periodic RFMs); nothing to shuffle.
		c.Stats.IdleRFMs++
		return
	}
	aggr := st.recent[rng.Intn(c.src, len(st.recent))]
	st.recent = st.recent[:0]

	g := b.Geometry()
	sub, aggrIdx := g.SubarrayOf(aggr)
	t, data := c.table(b, sub)

	// (2) Incremental refresh: activate the DA row the pointer names, then
	// advance it round-robin over the subarray's DA space.
	if !c.opt.DisableIncrementalRefresh {
		ptr := t.IncrPtr(data)
		b.InternalActivate(sub, ptr)
		t.SetIncrPtr(data, (ptr+1)%g.DARowsPerSubarray())
		c.Stats.IncRefreshes++
		if c.probe != nil {
			c.probe.Emit(obs.Event{
				At: now, Kind: obs.KindIncRefresh, Bank: b.ID(), Row: ptr, Aux: int64(sub),
			})
		}
	}

	// (3) Row-shuffle: two row-copies through Row_empt.
	if !c.opt.DisableShuffle {
		randIdx := rng.Intn(c.src, g.RowsPerSubarray-1)
		if randIdx >= aggrIdx {
			randIdx++ // uniform over slots != aggrIdx
		}
		daAggr := t.Slot(data, aggrIdx)
		daRand := t.Slot(data, randIdx)
		daEmpt := t.Slot(data, t.EmptySlot())

		mustCopy(b, sub, daRand, daEmpt, now) // Row_rand -> Row_empt
		mustCopy(b, sub, daAggr, daRand, now) // Row_aggr -> old Row_rand

		// (4) Remapping-row write: the new mapping.
		t.SetSlot(data, randIdx, daEmpt)
		t.SetSlot(data, aggrIdx, daRand)
		t.SetSlot(data, t.EmptySlot(), daAggr)
		c.Stats.Shuffles++
		c.Stats.RemapWrites++
		if c.probe != nil {
			c.probe.Emit(obs.Event{
				At: now, Kind: obs.KindShuffle, Bank: b.ID(), Row: aggr, Aux: int64(sub),
			})
			c.shuffleSeries.Add(now, 1)
		}

		// Section VIII hardening: periodically rekey the PRINCE stream.
		if c.opt.ReseedEvery > 0 && c.csprng != nil && c.Stats.Shuffles%c.opt.ReseedEvery == 0 {
			c.csprng.Reseed(c.opt.Seed ^ uint64(c.Stats.Shuffles)*0x9E3779B97F4A7C15)
			c.Stats.Reseeds++
		}
	}
}

func mustCopy(b *dram.Bank, sub, src, dst int, now timing.Tick) {
	if err := b.RowCopy(sub, src, dst, now); err != nil {
		// RowCopy only fails on protocol violations (open bank, self-copy),
		// which indicate a controller bug, not a runtime condition.
		panic(fmt.Sprintf("shadow: row copy failed: %v", err))
	}
}

// MappingOf decodes the current PA-slot -> DA mapping of one subarray, for
// tests, experiments, and the attack examples.
func (c *Controller) MappingOf(b *dram.Bank, sub int) []int {
	t, data := c.table(b, sub)
	return t.Mapping(data)
}

// CheckInvariants verifies every initialized subarray's table is still a
// permutation — the correctness condition for data never being lost.
func (c *Controller) CheckInvariants(b *dram.Bank) error {
	st := c.state(b)
	for sub, ok := range st.tablesInit {
		if !ok {
			continue
		}
		t, data := c.table(b, sub)
		if err := t.CheckPermutation(data); err != nil {
			return fmt.Errorf("bank %d subarray %d: %w", b.ID(), sub, err)
		}
	}
	return nil
}
