package shadow

import (
	"testing"
	"testing/quick"

	"shadow/internal/dram"
	"shadow/internal/hammer"
	"shadow/internal/rng"
	"shadow/internal/timing"
)

func TestTableCodecRoundTrip(t *testing.T) {
	tab := NewTable(513)
	data := make([]byte, tab.Bytes())
	f := func(slot uint16, da uint16) bool {
		s := int(slot) % 513
		d := int(da) % 513
		tab.SetSlot(data, s, d)
		return tab.Slot(data, s) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	tab.SetIncrPtr(data, 512)
	if tab.IncrPtr(data) != 512 {
		t.Fatalf("IncrPtr = %d", tab.IncrPtr(data))
	}
}

// TestTableFitsInRow: the paper stores the complete mapping of a 513-row
// subarray plus the incremental pointer in a single 1 KB remapping-row.
func TestTableFitsInRow(t *testing.T) {
	tab := NewTable(513)
	if tab.Bytes() > 1024 {
		t.Fatalf("encoded table = %dB, must fit a 1KB row", tab.Bytes())
	}
	if tab.EmptySlot() != 512 {
		t.Fatalf("EmptySlot = %d, want 512", tab.EmptySlot())
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]uint{2: 1, 3: 2, 4: 2, 512: 9, 513: 10, 1024: 10}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTableInitIdentityAndPermutation(t *testing.T) {
	tab := NewTable(33)
	data := make([]byte, tab.Bytes())
	tab.InitIdentity(data)
	for i := 0; i < 33; i++ {
		if tab.Slot(data, i) != i {
			t.Fatalf("identity slot %d = %d", i, tab.Slot(data, i))
		}
	}
	if err := tab.CheckPermutation(data); err != nil {
		t.Fatal(err)
	}
	tab.SetSlot(data, 3, 7) // now 7 appears twice
	if err := tab.CheckPermutation(data); err == nil {
		t.Fatal("CheckPermutation accepted a non-permutation")
	}
}

func TestPairOfInvolutionAndDistance(t *testing.T) {
	for _, dist := range []int{1, 2} {
		c := New(Options{PairDistance: dist, Seed: 1})
		const subs = 16
		for s := 0; s < subs; s++ {
			p := c.PairOf(s, subs)
			if p == s {
				t.Errorf("dist %d: subarray %d paired with itself", dist, s)
			}
			if back := c.PairOf(p, subs); back != s {
				t.Errorf("dist %d: pairing not involutive: %d->%d->%d", dist, s, p, back)
			}
			if got := abs(p - s); got != dist {
				t.Errorf("dist %d: |pair-sub| = %d", dist, got)
			}
		}
	}
	// Open-bitline pairing must sandwich one subarray: pairs (0,2),(1,3),...
	c := New(Options{PairDistance: 2, Seed: 1})
	if c.PairOf(0, 8) != 2 || c.PairOf(1, 8) != 3 || c.PairOf(4, 8) != 6 {
		t.Error("open-bitline pairing shape wrong")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func newShadowDevice(t *testing.T, hcnt int) (*dram.Device, *Controller) {
	t.Helper()
	c := New(Options{Seed: 42})
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8).WithShadow(timing.ShadowTimings{RDRM: timing.NS(4), RCDRM: timing.NS(2.3), WRRM: timing.NS(9), RowCopy: timing.NS(73.9), CopyRestoreFrac: 0.55}),
		Hammer:    hammer.Config{HCnt: hcnt, BlastRadius: 3},
		Mitigator: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

func TestTranslateIdentityBeforeShuffle(t *testing.T) {
	d, _ := newShadowDevice(t, 1<<20)
	g := d.Geometry()
	for pa := 0; pa < g.PARowsPerBank(); pa += 7 {
		if err := d.Activate(0, pa, timing.Tick(pa)*d.Params().RC); err != nil {
			t.Fatal(err)
		}
		sub, da, ok := d.Bank(0).Open()
		wsub, wda := g.SubarrayOf(pa)
		if !ok || sub != wsub || da != wda {
			t.Fatalf("PA %d opened (%d,%d), want (%d,%d)", pa, sub, da, wsub, wda)
		}
		if err := d.Precharge(0, timing.Tick(pa)*d.Params().RC+d.Params().RAS); err != nil {
			t.Fatal(err)
		}
	}
}

// hammerRow drives `n` ACT-PRE pairs on one PA row, issuing an RFM whenever
// the bank's RAA counter reaches RAAIMT — exactly the MC behaviour of the
// JEDEC RFM interface. Returns the final time.
func hammerRow(t *testing.T, d *dram.Device, bank, pa, n int, now timing.Tick) timing.Tick {
	t.Helper()
	p := d.Params()
	for i := 0; i < n; i++ {
		if err := d.Activate(bank, pa, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(bank, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
		if d.Bank(bank).RAA >= p.RAAIMT {
			if err := d.RFM(bank, now); err != nil {
				t.Fatal(err)
			}
			now += p.RFM
		}
	}
	return now
}

func TestShuffleChangesMappingAndPreservesData(t *testing.T) {
	d, c := newShadowDevice(t, 1<<20)
	g := d.Geometry()
	b := d.Bank(0)

	before := c.MappingOf(b, 0)
	hammerRow(t, d, 0, 3, 200, 0)
	after := c.MappingOf(b, 0)

	if c.Stats.Shuffles == 0 {
		t.Fatal("no shuffles executed")
	}
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("mapping unchanged after 25 shuffles")
	}
	if err := c.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
	// Every PA row in the shuffled subarray still reads back its original
	// data: shuffling must be transparent.
	for pa := 0; pa < g.RowsPerSubarray; pa++ {
		if bits := d.CorruptedBitsPA(0, pa); bits != 0 {
			t.Fatalf("PA row %d lost data after shuffles: %d corrupted bits", pa, bits)
		}
	}
}

// TestShuffleSemantics pins the exact Section IV-B dance on a single RFM:
// Row_rand -> Row_empt, Row_aggr -> old Row_rand, old Row_aggr becomes empty.
func TestShuffleSemantics(t *testing.T) {
	d, c := newShadowDevice(t, 1<<20)
	b := d.Bank(0)
	before := c.MappingOf(b, 0)
	emptyBefore := before[len(before)-1]

	// One burst of ACTs on PA row 5, then one RFM. The reservoir sample is
	// guaranteed to be row 5 (it is the only activated row).
	now := hammerRow(t, d, 0, 5, d.Params().RAAIMT, 0)
	_ = now
	after := c.MappingOf(b, 0)
	if c.Stats.Shuffles != 1 {
		t.Fatalf("Shuffles = %d, want 1", c.Stats.Shuffles)
	}

	daAggrBefore := before[5]
	daAggrAfter := after[5]
	if daAggrAfter == daAggrBefore {
		t.Fatal("aggressor row did not move")
	}
	// The aggressor moved to some row's old DA; that row moved to the old
	// empty row; the old aggressor DA is the new empty.
	randIdx := -1
	for i := range before {
		if i != 5 && before[i] != after[i] {
			if i == len(before)-1 {
				continue // empty slot
			}
			randIdx = i
		}
	}
	if randIdx < 0 {
		t.Fatal("no random partner row moved")
	}
	if after[5] != before[randIdx] {
		t.Fatalf("aggressor at DA %d, want Row_rand's old DA %d", after[5], before[randIdx])
	}
	if after[randIdx] != emptyBefore {
		t.Fatalf("Row_rand at DA %d, want old empty DA %d", after[randIdx], emptyBefore)
	}
	if after[len(after)-1] != daAggrBefore {
		t.Fatalf("new empty = %d, want aggressor's old DA %d", after[len(after)-1], daAggrBefore)
	}
	if err := c.CheckInvariants(b); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRefreshAdvances(t *testing.T) {
	d, c := newShadowDevice(t, 1<<20)
	b := d.Bank(0)
	tab, data := c.table(b, 0)
	if tab.IncrPtr(data) != 0 {
		t.Fatal("pointer not initialized to 0")
	}
	hammerRow(t, d, 0, 1, 3*d.Params().RAAIMT, 0)
	if c.Stats.IncRefreshes != 3 {
		t.Fatalf("IncRefreshes = %d, want 3", c.Stats.IncRefreshes)
	}
	if got := tab.IncrPtr(data); got != 3 {
		t.Fatalf("pointer = %d, want 3", got)
	}
}

// TestShadowPreventsSingleRowFlip: an attack that trivially flips bits on
// the unprotected device is defeated by SHADOW at the same H_cnt.
func TestShadowPreventsSingleRowFlip(t *testing.T) {
	const hcnt = 256
	// Baseline: flips after hcnt ACTs.
	base, err := dram.NewDevice(dram.Config{
		Geometry: dram.TestGeometry(),
		Params:   timing.NewParams(timing.DDR4_2666),
		Hammer:   hammer.Config{HCnt: hcnt, BlastRadius: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := timing.Tick(0)
	for i := 0; i < 4*hcnt; i++ {
		if err := base.Activate(0, 16, now); err != nil {
			t.Fatal(err)
		}
		now += base.Params().RAS
		if err := base.Precharge(0, now); err != nil {
			t.Fatal(err)
		}
		now += base.Params().RP
	}
	if base.FlipCount() == 0 {
		t.Fatal("baseline device did not flip")
	}

	// SHADOW with RAAIMT 8 (hcnt/RAAIMT = 32 evasion rounds needed).
	d, c := newShadowDevice(t, hcnt)
	hammerRow(t, d, 0, 16, 4*hcnt, 0)
	if d.FlipCount() != 0 {
		t.Fatalf("SHADOW device flipped %d bits under single-row hammering", d.FlipCount())
	}
	if c.Stats.Shuffles == 0 {
		t.Fatal("no shuffles")
	}
}

func TestIdleRFMDoesNothing(t *testing.T) {
	d, c := newShadowDevice(t, 1<<20)
	if err := d.RFM(0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats.Shuffles != 0 || c.Stats.IdleRFMs != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestAblationFlags(t *testing.T) {
	mk := func(opt Options) (*dram.Device, *Controller) {
		opt.Seed = 9
		c := New(opt)
		d, err := dram.NewDevice(dram.Config{
			Geometry:  dram.TestGeometry(),
			Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8),
			Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 1},
			Mitigator: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d, c
	}
	d, c := mk(Options{DisableShuffle: true})
	hammerRow(t, d, 0, 1, 64, 0)
	if c.Stats.Shuffles != 0 || c.Stats.IncRefreshes == 0 {
		t.Fatalf("shuffle-ablated stats = %+v", c.Stats)
	}
	d, c = mk(Options{DisableIncrementalRefresh: true})
	hammerRow(t, d, 0, 1, 64, 0)
	if c.Stats.IncRefreshes != 0 || c.Stats.Shuffles == 0 {
		t.Fatalf("incref-ablated stats = %+v", c.Stats)
	}
}

// TestManyShufflesPermutationProperty: after hundreds of shuffles across
// several subarrays and banks, every table remains a permutation and all
// data is intact.
func TestManyShufflesPermutationProperty(t *testing.T) {
	d, c := newShadowDevice(t, 1<<20)
	g := d.Geometry()
	now := timing.Tick(0)
	src := rng.NewCSPRNG(7)
	p := d.Params()
	for i := 0; i < 2000; i++ {
		bank := rng.Intn(src, g.Banks)
		pa := rng.Intn(src, g.PARowsPerBank())
		if err := d.Activate(bank, pa, now); err != nil {
			t.Fatal(err)
		}
		now += p.RAS
		if err := d.Precharge(bank, now); err != nil {
			t.Fatal(err)
		}
		now += p.RP
		if d.Bank(bank).RAA >= p.RAAIMT {
			if err := d.RFM(bank, now); err != nil {
				t.Fatal(err)
			}
			now += p.RFM
		}
	}
	if c.Stats.Shuffles < 100 {
		t.Fatalf("only %d shuffles", c.Stats.Shuffles)
	}
	for bank := 0; bank < g.Banks; bank++ {
		if err := c.CheckInvariants(d.Bank(bank)); err != nil {
			t.Fatal(err)
		}
		for pa := 0; pa < g.PARowsPerBank(); pa++ {
			if bits := d.CorruptedBitsPA(bank, pa); bits != 0 {
				t.Fatalf("bank %d PA %d: %d corrupted bits", bank, pa, bits)
			}
		}
	}
}

func TestControllerName(t *testing.T) {
	if New(Options{}).Name() != "shadow" {
		t.Fatal("unexpected controller name")
	}
}

func TestPeriodicReseed(t *testing.T) {
	c := New(Options{Seed: 3, ReseedEvery: 2})
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8),
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Mitigator: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	hammerRow(t, d, 0, 3, 64, 0) // 8 RFMs -> 8 shuffles -> 4 reseeds
	if c.Stats.Shuffles != 8 {
		t.Fatalf("Shuffles = %d, want 8", c.Stats.Shuffles)
	}
	if c.Stats.Reseeds != 4 {
		t.Fatalf("Reseeds = %d, want 4", c.Stats.Reseeds)
	}
	if err := c.CheckInvariants(d.Bank(0)); err != nil {
		t.Fatal(err)
	}
	// A custom source never reseeds.
	c2 := New(Options{Source: rng.NewLFSR(5), ReseedEvery: 1})
	d2, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8),
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Mitigator: c2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hammerRow(t, d2, 0, 3, 16, 0)
	if c2.Stats.Reseeds != 0 {
		t.Fatalf("custom-source controller reseeded %d times", c2.Stats.Reseeds)
	}
}

// TestOpenBitlinePairingFullRun exercises the Section V-B open-bitline
// configuration (pairing distance 2) end-to-end.
func TestOpenBitlinePairingFullRun(t *testing.T) {
	c := New(Options{Seed: 5, PairDistance: 2})
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.TestGeometry(),
		Params:    timing.NewParams(timing.DDR4_2666).WithRAAIMT(8),
		Hammer:    hammer.Config{HCnt: 1 << 20, BlastRadius: 3},
		Mitigator: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := d.Geometry()
	// Hammer rows across all subarrays of bank 0.
	now := timing.Tick(0)
	for i := 0; i < 400; i++ {
		pa := (i * 7) % g.PARowsPerBank()
		if err := d.Activate(0, pa, now); err != nil {
			t.Fatal(err)
		}
		now += d.Params().RAS
		if err := d.Precharge(0, now); err != nil {
			t.Fatal(err)
		}
		now += d.Params().RP
		if d.Bank(0).RAA >= 8 {
			if err := d.RFM(0, now); err != nil {
				t.Fatal(err)
			}
			now += d.Params().RFM
		}
	}
	if c.Stats.Shuffles == 0 {
		t.Fatal("no shuffles under open-bitline pairing")
	}
	if err := c.CheckInvariants(d.Bank(0)); err != nil {
		t.Fatal(err)
	}
	for pa := 0; pa < g.PARowsPerBank(); pa++ {
		if bits := d.CorruptedBitsPA(0, pa); bits != 0 {
			t.Fatalf("PA %d corrupted under open-bitline pairing", pa)
		}
	}
}
