package cfg

import "go/ast"

// A Fact is one immutable dataflow value. Implementations are supplied
// by the Analysis; the engine only moves them around, so any type works
// as long as Transfer returns fresh values instead of mutating its
// input (a mutated fact corrupts every block sharing it).
type Fact any

// An Analysis is one forward dataflow problem over a Graph. The facts
// must form a join-semilattice of finite height and Transfer must be
// monotone, or the fixpoint cannot converge; Forward guards against
// that with a hard iteration cap rather than hanging.
type Analysis interface {
	// Entry is the fact at function entry.
	Entry() Fact
	// Transfer applies one block node to the incoming fact and returns
	// the outgoing fact (a new value; in must not be mutated).
	Transfer(n ast.Node, in Fact) Fact
	// Join merges the facts of two predecessor edges.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are the same lattice point; it
	// decides convergence.
	Equal(a, b Fact) bool
}

// A Result holds the converged facts of one Forward run. A block absent
// from In was never reached by any path from Entry — analyzers use that
// to detect unreachable code (e.g. the fall-through after an infinite
// loop).
type Result struct {
	In  map[*Block]Fact
	Out map[*Block]Fact
}

// maxVisitsPerBlock caps worklist revisits per block. Any finite-height
// lattice with monotone transfer converges in height×blocks visits; the
// analyzers here use small bitset or boolean lattices, so 64 revisits
// per block means the Analysis is broken, not the graph large.
const maxVisitsPerBlock = 64

// Forward runs the analysis over the graph to a fixpoint with a
// worklist and returns the per-block facts.
func Forward(g *Graph, a Analysis) *Result {
	res := &Result{
		In:  make(map[*Block]Fact, len(g.Blocks)),
		Out: make(map[*Block]Fact, len(g.Blocks)),
	}
	res.In[g.Entry] = a.Entry()
	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	visits := 0
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if visits++; visits > maxVisitsPerBlock*len(g.Blocks) {
			panic("cfg: dataflow fixpoint did not converge (non-monotone Transfer/Join or unstable Equal)")
		}
		f := res.In[blk]
		for _, n := range blk.Nodes {
			f = a.Transfer(n, f)
		}
		if old, ok := res.Out[blk]; ok && a.Equal(old, f) {
			continue
		}
		res.Out[blk] = f
		for _, s := range blk.Succs {
			next := f
			if cur, ok := res.In[s]; ok {
				next = a.Join(cur, f)
				if a.Equal(cur, next) {
					continue
				}
			}
			res.In[s] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// Visit replays the converged facts in block order, calling fn with the
// fact in force immediately before each node — the hook analyzers report
// diagnostics from. Unreachable blocks are skipped.
func (r *Result) Visit(g *Graph, a Analysis, fn func(n ast.Node, before Fact)) {
	for _, b := range g.Blocks {
		f, ok := r.In[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			fn(n, f)
			f = a.Transfer(n, f)
		}
	}
}
