// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies and runs forward dataflow analyses over them to a
// fixpoint. Like the rest of shadowvet it is standard library only — a
// deliberately small reimplementation of the golang.org/x/tools/go/cfg
// idea, sized for the analyzers this repository needs.
//
// A Graph is a set of basic blocks connected by directed edges. Blocks
// hold the statements (and control-relevant expressions: if/for
// conditions, switch tags and case expressions, select communication
// clauses, range subjects) in execution order. Control flow is modeled
// structurally:
//
//   - if/else, for, range, switch (including fallthrough), type switch,
//     select, labeled break/continue, and goto produce the expected edges;
//   - return statements and calls that provably terminate the function
//     (the panic builtin, os.Exit, runtime.Goexit, log.Fatal*, and
//     testing's Fatal/FailNow/Skip family) edge to the single Exit block;
//   - an explicit panic therefore reaches Exit, which is exactly where
//     deferred calls run — analyses that model defer (as part of their
//     dataflow fact) see panic and return paths uniformly;
//   - function literals are opaque leaves: their bodies never enter the
//     enclosing graph and must be analyzed as functions of their own.
//
// Statements after a jump land in a block that no edge reaches;
// Forward leaves such blocks without an input fact, which is how
// analyzers detect unreachability.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal straight-line run of statements
// and control-relevant expressions, executed in order, with control
// transferring to exactly one successor afterwards.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order;
	// Exit is always last).
	Index int
	// Kind names the construct that created the block ("entry", "exit",
	// "if.then", "for.head", ...) with a ":<label>" suffix on labeled
	// loops and switches — for tests and dumps, not for analysis logic.
	Kind string
	// Nodes are the block's statements and expressions in execution
	// order. Function literal bodies never appear (they are separate
	// functions); a RangeStmt node stands for the loop head (subject
	// evaluation + iteration), not its body.
	Nodes []ast.Node
	// Succs and Preds are the block's edges, deduplicated, in creation
	// order.
	Succs []*Block
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block execution starts in; it has no predecessors.
	Entry *Block
	// Exit is the single synthetic exit block: every return, terminal
	// call, and fall-off-the-end edge leads here. It holds no nodes.
	Exit *Block
	// Blocks lists every block in creation order; Entry is first and
	// Exit last.
	Blocks []*Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit)
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return g
}

// String renders the graph one block per line ("b1 if.then [2 nodes] ->
// b3 b4") for tests and debugging; output is deterministic.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Kind)
		if len(b.Nodes) > 0 {
			fmt.Fprintf(&sb, " [%d nodes]", len(b.Nodes))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// builder threads the current block and the break/continue/goto context
// through the recursive statement walk.
type builder struct {
	g   *Graph
	cur *Block
	// breaks and continues are the innermost-last stacks of jump
	// targets; switches and selects push a break target only.
	breaks    []ctrlTarget
	continues []ctrlTarget
	// labels maps a label name to its block, created on first reference
	// so forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label of the labeled statement being built; the
	// next loop/switch/select consumes it for labeled break/continue.
	pendingLabel string
	// fallTargets is the stack of next-case entry blocks for fallthrough
	// (nil for the last clause of a switch).
	fallTargets []*Block
}

// ctrlTarget is one break or continue destination, with the loop or
// switch label when present.
type ctrlTarget struct {
	label string
	block *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label, returning it and a Kind suffix.
func (b *builder) takeLabel() (label, suffix string) {
	label = b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		suffix = ":" + label
	}
	return label, suffix
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("unreachable")
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && Terminates(call) {
			b.edge(b.cur, b.g.Exit)
			b.cur = b.newBlock("unreachable")
		}
	default:
		// DeclStmt, AssignStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt,
		// EmptyStmt: straight-line.
		b.add(s)
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	b.edge(b.cur, lb)
	b.cur = lb
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label:" + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = b.newBlock("unreachable")
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = b.newBlock("unreachable")
	case token.GOTO:
		b.edge(b.cur, b.labelBlock(label))
		b.cur = b.newBlock("unreachable")
	case token.FALLTHROUGH:
		if n := len(b.fallTargets); n > 0 && b.fallTargets[n-1] != nil {
			b.edge(b.cur, b.fallTargets[n-1])
		}
		b.cur = b.newBlock("unreachable")
	}
}

// findTarget resolves a break/continue: the innermost target when the
// statement is unlabeled, the matching labeled one otherwise.
func findTarget(stack []ctrlTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // a label on an if only matters for goto, handled already
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur
	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	done := b.newBlock("if.done")
	b.edge(thenEnd, done)
	if elseEnd != nil {
		b.edge(elseEnd, done)
	} else {
		b.edge(cond, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label, suffix := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head" + suffix)
	b.edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body" + suffix)
	b.edge(head, body)
	continueTo := head
	if s.Post != nil {
		post := b.newBlock("for.post" + suffix)
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		continueTo = post
	}
	done := b.newBlock("for.done" + suffix)
	if s.Cond != nil {
		b.edge(head, done)
	}
	b.breaks = append(b.breaks, ctrlTarget{label, done})
	b.continues = append(b.continues, ctrlTarget{label, continueTo})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, continueTo)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label, suffix := b.takeLabel()
	head := b.newBlock("range.head" + suffix)
	b.edge(b.cur, head)
	// The RangeStmt node stands for the loop head: subject evaluation
	// and per-iteration key/value assignment. Analyses walking a node's
	// subtree must treat it shallowly (X/Key/Value, not Body).
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body" + suffix)
	done := b.newBlock("range.done" + suffix)
	b.edge(head, body)
	b.edge(head, done)
	b.breaks = append(b.breaks, ctrlTarget{label, done})
	b.continues = append(b.continues, ctrlTarget{label, head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edge(b.cur, head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label, suffix := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	done := b.newBlock("switch.done" + suffix)
	b.breaks = append(b.breaks, ctrlTarget{label, done})
	entries := make([]*Block, len(s.Body.List))
	for i := range s.Body.List {
		entries[i] = b.newBlock("switch.case" + suffix)
	}
	hasDefault := false
	for i, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(head, entries[i])
		b.cur = entries[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var next *Block
		if i+1 < len(entries) {
			next = entries[i+1]
		}
		b.fallTargets = append(b.fallTargets, next)
		b.stmtList(cc.Body)
		b.fallTargets = b.fallTargets[:len(b.fallTargets)-1]
		b.edge(b.cur, done)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label, suffix := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	done := b.newBlock("typeswitch.done" + suffix)
	b.breaks = append(b.breaks, ctrlTarget{label, done})
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("typeswitch.case" + suffix)
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label, suffix := b.takeLabel()
	head := b.cur
	done := b.newBlock("select.done" + suffix)
	b.breaks = append(b.breaks, ctrlTarget{label, done})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind + suffix)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// select{} blocks forever: head keeps no successors and everything
	// after is unreachable — which falling into the pred-less done block
	// models exactly.
	b.cur = done
}

// terminalSelectors are selector method/function names whose call never
// returns, matched syntactically (the CFG has no type information):
// os.Exit, runtime.Goexit, log.Fatal*, and testing's Fatal/FailNow/Skip
// family on any receiver.
var terminalSelectors = map[string]bool{
	"Exit":    true, // os.Exit (only with receiver ident "os")
	"Goexit":  true, // runtime.Goexit (only with receiver ident "runtime")
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
	"FailNow": true,
	"SkipNow": true,
	"Skip":    true,
	"Skipf":   true,
}

// onlyWithPkgIdent restricts ambiguous terminal names to a well-known
// package qualifier, so an arbitrary method named Exit is not treated as
// terminal.
var onlyWithPkgIdent = map[string]string{
	"Exit":   "os",
	"Goexit": "runtime",
}

// Terminates reports whether a call statement provably never returns:
// the panic builtin or one of the well-known terminal calls. The match
// is syntactic; a shadowed `panic` identifier would be misclassified,
// which is acceptable for this repository's conventions.
func Terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if !terminalSelectors[name] {
			return false
		}
		if pkg, restricted := onlyWithPkgIdent[name]; restricted {
			id, ok := fun.X.(*ast.Ident)
			return ok && id.Name == pkg
		}
		return true
	}
	return false
}
