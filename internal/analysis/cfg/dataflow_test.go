package cfg

import (
	"go/ast"
	"strings"
	"testing"
)

// assignedVars is a may-analysis collecting the names assigned on some
// path: facts are sorted comma-joined name sets (strings compare cheaply
// and are immutable, matching the engine's contract).
type assignedVars struct{ transfers int }

func (a *assignedVars) Entry() Fact { return "" }

func (a *assignedVars) Transfer(n ast.Node, in Fact) Fact {
	a.transfers++
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	set := factSet(in)
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	return setFact(set)
}

func (a *assignedVars) Join(x, y Fact) Fact {
	set := factSet(x)
	for k := range factSet(y) {
		set[k] = true
	}
	return setFact(set)
}

func (a *assignedVars) Equal(x, y Fact) bool { return x == y }

func factSet(f Fact) map[string]bool {
	set := map[string]bool{}
	for _, n := range strings.Split(f.(string), ",") {
		if n != "" {
			set[n] = true
		}
	}
	return set
}

func setFact(set map[string]bool) Fact {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	// Insertion sort: tiny sets, deterministic fact strings.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ",")
}

func TestForwardJoinsBranches(t *testing.T) {
	g := buildFunc(t, `if c() {
x = 1
} else {
y = 2
}
z = 3`)
	a := &assignedVars{}
	res := Forward(g, a)
	got := res.In[g.Exit].(string)
	if got != "x,y,z" {
		t.Errorf("exit fact = %q, want x,y,z (join of both branches plus the tail)", got)
	}
	done := findBlock(t, g, "if.done")
	if in := res.In[done].(string); in != "x,y" {
		t.Errorf("merge fact = %q, want x,y", in)
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// The loop body assigns a new name each conceptual iteration — but
	// the lattice has only the three names, so the fixpoint saturates.
	g := buildFunc(t, `for i := 0; i < 3; i++ {
x = 1
if c() {
y = 2
}
}
z = 3`)
	a := &assignedVars{}
	res := Forward(g, a)
	if got := res.In[g.Exit].(string); got != "i,x,y,z" {
		t.Errorf("exit fact = %q, want i,x,y,z", got)
	}
	// Termination with a bounded number of visits: the engine itself
	// panics past maxVisitsPerBlock, but a healthy run should be far
	// below the cap.
	if cap := maxVisitsPerBlock * len(g.Blocks) / 2; a.transfers > cap {
		t.Errorf("fixpoint took %d transfers, expected well under %d", a.transfers, cap)
	}
}

func TestForwardUnreachableBlocksHaveNoFact(t *testing.T) {
	g := buildFunc(t, "return\nx = 1")
	res := Forward(g, &assignedVars{})
	for _, b := range g.Blocks {
		if b.Kind != "unreachable" {
			continue
		}
		if _, ok := res.In[b]; ok {
			t.Errorf("unreachable block b%d has an input fact:\n%s", b.Index, g)
		}
	}
	if _, ok := res.In[g.Exit]; !ok {
		t.Error("exit must have a fact (the return reaches it)")
	}
}

// brokenAnalysis never reports facts as equal, so a graph with a loop
// can never converge; Forward must fail loudly instead of hanging.
type brokenAnalysis struct{}

func (brokenAnalysis) Entry() Fact                       { return 0 }
func (brokenAnalysis) Transfer(_ ast.Node, in Fact) Fact { return in.(int) + 1 }
func (brokenAnalysis) Join(a, b Fact) Fact               { return a.(int) + b.(int) }
func (brokenAnalysis) Equal(a, b Fact) bool              { return false }

func TestForwardDivergenceGuard(t *testing.T) {
	g := buildFunc(t, "for {\nx = 1\nif c() {\nbreak\n}\n}")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Forward should panic on a non-converging analysis")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "did not converge") {
			t.Errorf("unexpected panic value: %v", r)
		}
	}()
	Forward(g, brokenAnalysis{})
}

func TestVisitReplaysFacts(t *testing.T) {
	g := buildFunc(t, `x = 1
if c() {
y = 2
}
z = 3`)
	a := &assignedVars{}
	res := Forward(g, a)
	var before []string
	res.Visit(g, a, func(n ast.Node, f Fact) {
		if as, ok := n.(*ast.AssignStmt); ok {
			name := as.Lhs[0].(*ast.Ident).Name
			before = append(before, name+"|"+f.(string))
		}
	})
	want := []string{"x|", "y|x", "z|x,y"}
	if len(before) != len(want) {
		t.Fatalf("visited %v, want %v", before, want)
	}
	for i := range want {
		if before[i] != want[i] {
			t.Errorf("visit %d = %q, want %q", i, before[i], want[i])
		}
	}
}
