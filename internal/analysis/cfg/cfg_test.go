package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses `func f() { <body> }` and builds its graph.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of blocks reachable from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// findBlock returns the unique block whose Kind matches; it fails the
// test on zero or multiple matches.
func findBlock(t *testing.T, g *Graph, kind string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			if found != nil {
				t.Fatalf("multiple %q blocks in\n%s", kind, g)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no %q block in\n%s", kind, g)
	}
	return found
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, "x := 1\n_ = x")
	if len(g.Blocks) != 2 {
		t.Fatalf("straight-line body should be entry+exit, got\n%s", g)
	}
	if !hasEdge(g.Entry, g.Exit) {
		t.Errorf("entry must fall through to exit:\n%s", g)
	}
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry should hold both statements, got %d", len(g.Entry.Nodes))
	}
}

func TestGraphInvariants(t *testing.T) {
	bodies := []string{
		"x := 1\n_ = x",
		"if c() {\nreturn\n}",
		"for i := 0; i < 3; i++ {\nif c() {\nbreak\n}\n}",
		"L:\nfor {\nfor {\nif c() {\nbreak L\n}\ncontinue L\n}\n}",
		"switch x() {\ncase 1:\nfallthrough\ncase 2:\ndefault:\n}",
		"select {\ncase <-a():\ncase b() <- 1:\nreturn\ndefault:\n}",
		"for i := range n() {\ndefer g(i)\n}",
		"defer func() { recover() }()\nif c() {\npanic(\"p: x\")\n}",
		"i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}",
	}
	for _, body := range bodies {
		g := buildFunc(t, body)
		if g.Entry != g.Blocks[0] || g.Exit != g.Blocks[len(g.Blocks)-1] {
			t.Errorf("entry/exit must bracket Blocks:\n%s", g)
		}
		if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
			t.Errorf("exit must be empty and terminal:\n%s", g)
		}
		if len(g.Entry.Preds) != 0 {
			t.Errorf("entry must have no predecessors:\n%s", g)
		}
		for _, b := range g.Blocks {
			if b.Index >= len(g.Blocks) || g.Blocks[b.Index] != b {
				t.Errorf("block index %d out of sync:\n%s", b.Index, g)
			}
			for _, s := range b.Succs {
				ok := false
				for _, p := range s.Preds {
					if p == b {
						ok = true
					}
				}
				if !ok {
					t.Errorf("edge b%d->b%d missing from Preds:\n%s", b.Index, s.Index, g)
				}
			}
		}
		if !reachable(g)[g.Exit] {
			t.Errorf("exit should be reachable for body %q:\n%s", body, g)
		}
	}
}

func TestIfElseBothReturn(t *testing.T) {
	g := buildFunc(t, "if c() {\nreturn\n} else {\nreturn\n}\nx := 1\n_ = x")
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	if done := findBlock(t, g, "if.done"); r[done] {
		t.Errorf("code after an if/else that returns on both arms must be unreachable:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := buildFunc(t, `outer:
for i := 0; i < 3; i++ {
for {
if a() {
break outer
}
if b() {
continue outer
}
}
}`)
	r := reachable(g)
	outerDone := findBlock(t, g, "for.done:outer")
	outerPost := findBlock(t, g, "for.post:outer")
	if !r[outerDone] {
		t.Errorf("break outer must make the outer done block reachable:\n%s", g)
	}
	if !r[g.Exit] {
		t.Errorf("exit must be reachable via break outer:\n%s", g)
	}
	// The inner loop has no exit of its own: its done block is only
	// reachable through the labeled jumps.
	breakSrc, continueSrc := false, false
	for _, p := range outerDone.Preds {
		if strings.HasPrefix(p.Kind, "if.then") {
			breakSrc = true
		}
	}
	for _, p := range outerPost.Preds {
		if strings.HasPrefix(p.Kind, "if.then") {
			continueSrc = true
		}
	}
	if !breakSrc {
		t.Errorf("break outer should edge from the if.then block to for.done:outer:\n%s", g)
	}
	if !continueSrc {
		t.Errorf("continue outer should edge from the if.then block to for.post:outer:\n%s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildFunc(t, "select {\ncase <-a():\nx := 1\n_ = x\ncase b() <- 1:\ndefault:\n}")
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("select head should branch to all three clauses:\n%s", g)
	}
	done := findBlock(t, g, "select.done")
	for _, s := range g.Entry.Succs {
		if !strings.HasPrefix(s.Kind, "select.") {
			t.Errorf("head successor %s is not a select clause:\n%s", s.Kind, g)
		}
		if !hasEdge(s, done) {
			t.Errorf("clause %s must rejoin at select.done:\n%s", s.Kind, g)
		}
	}
	// Each comm clause carries its communication as the first node.
	cases := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			cases++
			if len(b.Nodes) == 0 {
				t.Errorf("comm clause block has no nodes:\n%s", g)
			}
		}
	}
	if cases != 2 {
		t.Errorf("got %d select.case blocks, want 2:\n%s", cases, g)
	}
}

func TestSelectEmptyBlocksForever(t *testing.T) {
	g := buildFunc(t, "select {}\nx := 1\n_ = x")
	if len(g.Entry.Succs) != 0 {
		t.Errorf("select{} never proceeds; entry must have no successors:\n%s", g)
	}
	if reachable(g)[g.Exit] {
		t.Errorf("exit must be unreachable after select{}:\n%s", g)
	}
}

func TestDeferInLoop(t *testing.T) {
	g := buildFunc(t, "for i := 0; i < 3; i++ {\ndefer g(i)\n}")
	body := findBlock(t, g, "for.body")
	if len(body.Nodes) != 1 {
		t.Fatalf("loop body should hold exactly the defer, got %d nodes:\n%s", len(body.Nodes), g)
	}
	if _, ok := body.Nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("loop body node should be the DeferStmt, got %T", body.Nodes[0])
	}
	head := findBlock(t, g, "for.head")
	post := findBlock(t, g, "for.post")
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Errorf("loop back-edges body->post->head missing:\n%s", g)
	}
}

func TestPanicEdgesToExit(t *testing.T) {
	g := buildFunc(t, "defer func() { recover() }()\nif c() {\npanic(\"p: x\")\n}\ng()")
	then := findBlock(t, g, "if.then")
	if !hasEdge(then, g.Exit) {
		t.Errorf("panic must edge to exit (where defers run):\n%s", g)
	}
	if len(then.Succs) != 1 {
		t.Errorf("nothing follows a panic in its block:\n%s", g)
	}
	done := findBlock(t, g, "if.done")
	if !reachable(g)[done] {
		t.Errorf("the non-panicking path must continue past the if:\n%s", g)
	}
}

func TestGotoBackward(t *testing.T) {
	g := buildFunc(t, "i := 0\nloop:\ni++\nif i < 3 {\ngoto loop\n}")
	label := findBlock(t, g, "label:loop")
	then := findBlock(t, g, "if.then")
	if !hasEdge(then, label) {
		t.Errorf("goto loop must edge back to the label block:\n%s", g)
	}
	if !reachable(g)[g.Exit] {
		t.Errorf("falling through the if must reach exit:\n%s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, "switch x() {\ncase 1:\nfallthrough\ncase 2:\ng()\ndefault:\n}")
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("got %d case blocks, want 3:\n%s", len(cases), g)
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough must edge from case 1 into case 2:\n%s", g)
	}
	// With a default clause, the head must not edge straight to done.
	done := findBlock(t, g, "switch.done")
	if hasEdge(g.Entry, done) {
		t.Errorf("a switch with default has no head->done edge:\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, "switch x() {\ncase 1:\nreturn\n}")
	done := findBlock(t, g, "switch.done")
	if !hasEdge(g.Entry, done) {
		t.Errorf("a switch without default can skip every case:\n%s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildFunc(t, "for v := range ch() {\n_ = v\n}")
	head := findBlock(t, g, "range.head")
	body := findBlock(t, g, "range.body")
	done := findBlock(t, g, "range.done")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head should hold the RangeStmt:\n%s", g)
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Errorf("range head node should be the RangeStmt, got %T", head.Nodes[0])
	}
	if !hasEdge(head, body) || !hasEdge(head, done) || !hasEdge(body, head) {
		t.Errorf("range edges head<->body and head->done missing:\n%s", g)
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := buildFunc(t, "for {\ng()\n}")
	if reachable(g)[g.Exit] {
		t.Errorf("a for{} without break never reaches exit:\n%s", g)
	}
}

func TestTerminalCalls(t *testing.T) {
	terminal := []string{
		`panic("p: x")`,
		"os.Exit(1)",
		"runtime.Goexit()",
		"log.Fatalf(\"x\")",
		"t.Fatal(\"x\")",
		"t.FailNow()",
		"t.SkipNow()",
	}
	for _, call := range terminal {
		g := buildFunc(t, call+"\ng()")
		r := reachable(g)
		for _, b := range g.Blocks {
			if b.Kind == "unreachable" && r[b] {
				t.Errorf("code after %s must be unreachable:\n%s", call, g)
			}
		}
	}
	// Non-terminal lookalikes keep flowing: a method named Exit on an
	// arbitrary receiver is not os.Exit.
	g := buildFunc(t, "app.Exit(1)\ng()")
	if len(g.Blocks) != 2 {
		t.Errorf("app.Exit must not be treated as terminal:\n%s", g)
	}
}

func TestStringDump(t *testing.T) {
	g := buildFunc(t, "if c() {\nreturn\n}")
	s := g.String()
	if !strings.Contains(s, "entry") || !strings.Contains(s, "exit") || !strings.Contains(s, "if.then") {
		t.Errorf("dump should name block kinds:\n%s", s)
	}
	if s != g.String() {
		t.Error("dump must be deterministic")
	}
}
