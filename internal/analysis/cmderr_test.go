package analysis

import "testing"

func TestCmdErrFixtures(t *testing.T) {
	checkFixture(t, CmdErr, loadFixture(t, "cmderr", ""))
}
