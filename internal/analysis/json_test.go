package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSON round-trips real findings through the -json encoding.
func TestWriteJSON(t *testing.T) {
	pkg := loadFixture(t, "panicmsg", "")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{PanicMsg})
	if len(diags) == 0 {
		t.Fatal("fixture produced no findings")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(diags) {
		t.Fatalf("decoded %d findings, want %d", len(decoded), len(diags))
	}
	for i, d := range decoded {
		if d.File != diags[i].Pos.Filename || d.Line != diags[i].Pos.Line ||
			d.Col != diags[i].Pos.Column || d.Analyzer != diags[i].Analyzer || d.Message != diags[i].Message {
			t.Errorf("finding %d mismatch: %+v vs %v", i, d, diags[i])
		}
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("JSON output should end with a newline")
	}
}

// TestWriteJSONEmpty: a clean run emits an empty array, not null — CI
// consumers iterate without a null check.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty diagnostics should encode as [], got %q", got)
	}
}
