package analysis

import (
	"sort"
	"strconv"
	"strings"
)

// internalPrefix scopes the layering DAG to the module's internal tree.
const internalPrefix = "shadow/internal/"

// layerImports is the explicit import DAG for internal/: for each package
// (path relative to internal/), the internal packages it may import
// directly. The spine is timing → dram → memctrl → sim → exp; obs (with
// obs/span), report, and rng are leaves that everything above may use but
// that must never reach back up. An edge missing here is an architecture
// decision, not a formality: add it only when the dependency direction is
// genuinely intended, because a convenience import (dram reaching into
// memctrl for a type, report pulling sim for a helper) inverts the
// architecture for every future change.
var layerImports = map[string][]string{
	// Foundations: no internal imports at all.
	"timing":       {},
	"hammer":       {},
	"rng":          {},
	"analysis/cfg": {},

	// The module-wide call graph sits beside the CFG core, below the
	// analyzer framework.
	"analysis/callgraph": {},

	// The analyzer framework sits on its own CFG core and call graph.
	"analysis": {"analysis/cfg", "analysis/callgraph"},

	// Containers over timing ticks.
	"minq": {"timing"},

	// Leaf instrumentation and reporting.
	"circuit":    {"timing"},
	"obs":        {"timing"},
	"obs/span":   {"obs", "timing"},
	"obs/flight": {"obs", "obs/span", "timing"},
	"obs/fleet":  {"obs", "obs/flight", "obs/span", "timing"},
	"report":     {"obs", "obs/span", "timing"},

	// The device and what plugs into it.
	"dram":     {"hammer", "obs", "obs/span", "rng", "timing"},
	"trace":    {"dram", "hammer", "rng", "timing"},
	"mitigate": {"dram", "hammer", "obs", "obs/span", "rng", "timing"},
	"shadow":   {"dram", "hammer", "obs", "obs/span", "rng", "timing"},

	// The controller and its observers.
	"memctrl":  {"dram", "hammer", "minq", "mitigate", "obs", "obs/span", "rng", "shadow", "timing"},
	"memsys":   {"dram", "hammer", "memctrl", "obs", "obs/span", "timing"},
	"cmdtrace": {"dram", "hammer", "memctrl", "obs", "timing"},
	"power":    {"dram", "memctrl", "timing"},

	// The simulator and the experiment layers on top.
	"sim": {"circuit", "dram", "hammer", "memctrl", "memsys", "minq", "mitigate",
		"obs", "obs/span", "rng", "shadow", "timing", "trace"},
	"security": {"dram", "hammer", "mitigate", "rng", "shadow", "sim", "timing", "trace"},
	"exp": {"circuit", "dram", "hammer", "memctrl", "mitigate", "obs", "obs/flight",
		"obs/span", "power", "report", "rng", "security", "shadow", "sim", "timing", "trace"},
}

// Layering enforces the internal import DAG: a package under internal/ may
// only import the internal packages its layerImports entry allows, and
// every internal package that imports internal packages must be registered
// in the DAG. Test files are exempt (a test may drive its package from
// above — exp tests replaying sim scenarios — without inverting the
// runtime architecture); the compiled packages are not.
var Layering = &Analyzer{
	Name: "layering",
	Doc: "enforce the internal/ import DAG (timing → dram → memctrl → sim → exp; obs, report, " +
		"rng as leaves): non-test files may only import the layers below them",
	Run: runLayering,
}

func runLayering(pass *Pass) {
	self, ok := strings.CutPrefix(pass.PkgPath, internalPrefix)
	if !ok {
		return // cmd/, examples/, and the module root are above the DAG
	}
	allowed, registered := allowedImports(self)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			dep, ok := strings.CutPrefix(path, internalPrefix)
			if !ok {
				continue
			}
			if !registered {
				pass.Reportf(imp.Pos(), "package internal/%s is not registered in the layering DAG; add it to layerImports (internal/analysis/layering.go) with the layers it may import", self)
				continue
			}
			if !allowed[dep] {
				pass.Reportf(imp.Pos(), "import of internal/%s from internal/%s violates the layering DAG (internal/%s may import: %s)",
					dep, self, self, allowedList(self))
			}
		}
	}
}

func allowedImports(self string) (map[string]bool, bool) {
	deps, ok := layerImports[self]
	if !ok {
		return nil, false
	}
	set := make(map[string]bool, len(deps))
	for _, d := range deps {
		set[d] = true
	}
	return set, true
}

func allowedList(self string) string {
	deps := append([]string(nil), layerImports[self]...)
	if len(deps) == 0 {
		return "nothing under internal/"
	}
	sort.Strings(deps)
	return strings.Join(deps, ", ")
}
