package analysis

import "testing"

func TestNilGuardFixture(t *testing.T) {
	checkFixture(t, NilGuard, loadFixture(t, "nilguard", "shadow/internal/obs"))
}

// TestNilGuardScopedByPackage proves the check is keyed by package path:
// the same fixture under a non-obs path has nothing to guard.
func TestNilGuardScopedByPackage(t *testing.T) {
	pkg := loadFixture(t, "nilguard", "shadow/internal/dram")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{NilGuard}); len(diags) > 0 {
		t.Errorf("nilguard fired outside its configured packages: %v", diags)
	}
}

// TestNilGuardOnRealTypes runs the analyzer over the live obs and span
// packages: the shipped hot-path types must honor their own contract.
func TestNilGuardOnRealTypes(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"../obs", "../obs/span"} {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if diags := RunAnalyzers(pkgs, []*Analyzer{NilGuard}); len(diags) > 0 {
			for _, d := range diags {
				t.Errorf("%s violates the nil-safe contract: %v", dir, d)
			}
		}
	}
}
