package analysis

import (
	"strings"
	"testing"
)

func TestDetFlow(t *testing.T) {
	pkg := loadFixture(t, "detflow", "shadow/internal/sim")
	checkFixture(t, DetFlow, pkg)
}

// TestDetFlowMessages pins the source descriptions and the call chain
// rendering: a finding must say what the nondeterminism is and where it
// lives, not just that the call is bad.
func TestDetFlowMessages(t *testing.T) {
	pkg := loadFixture(t, "detflow", "shadow/internal/sim")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{DetFlow})
	for _, want := range []string{
		"wall-clock read time.Now",
		"global math/rand use rand.Intn",
		"order-sensitive map iteration",
		"select over 2 channel cases",
		"reaches nondeterminism",
		" via sim.inner", // step → outer → inner chain
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding containing %q in %v", want, diags)
		}
	}
}

// TestDetFlowUnrestrictedPackageSilent: without the path override the
// fixture is an ordinary package, and detflow must not fire at all.
func TestDetFlowUnrestrictedPackageSilent(t *testing.T) {
	pkg := loadFixture(t, "detflow", "")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{DetFlow}); len(diags) > 0 {
		t.Errorf("detflow fired outside the restricted packages: %v", diags)
	}
}
