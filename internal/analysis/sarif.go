package analysis

import (
	"encoding/json"
	"io"
)

// SARIF (Static Analysis Results Interchange Format, 2.1.0) is the
// format CI forges ingest natively for inline code annotations. This is
// the minimal valid subset: one run, one tool with a rule per analyzer,
// one result per finding with a single physical location. Like the JSON
// writer, output is deterministic because the diagnostics arrive
// position-sorted and the rules follow All()'s stable order.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log (always one run,
// empty results array when clean, trailing newline) for the driver's
// -sarif mode. The rule table lists every analyzer plus the reserved
// waiver pseudo-rule, so a result's ruleId always resolves.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(All())+1)
	for _, a := range All() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               WaiverAnalyzerName,
		ShortDescription: sarifMessage{Text: "waiver hygiene: every //shadowvet:ignore must carry a reason and suppress a live finding"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "shadowvet", InformationURI: "shadow/cmd/shadowvet", Rules: rules}},
			Results: results,
		}},
	}
	b, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
