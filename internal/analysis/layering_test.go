package analysis

import (
	"strings"
	"testing"
)

func TestLayeringFixture(t *testing.T) {
	checkFixture(t, Layering, loadFixture(t, "layering", "shadow/internal/dram"))
}

// TestLayeringUnregisteredPackage: an internal package missing from the DAG
// may not import internal packages at all until it is registered.
func TestLayeringUnregisteredPackage(t *testing.T) {
	pkg := loadFixture(t, "layering", "shadow/internal/unregistered")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Layering})
	if len(diags) != 2 { // bad.go's memctrl import and good.go's timing import
		t.Fatalf("got %d findings, want 2 (every internal import of an unregistered package): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "not registered in the layering DAG") {
			t.Errorf("unexpected message: %v", d)
		}
	}
}

// TestLayeringOutsideInternal: cmd/ and examples/ sit above the DAG and may
// import anything.
func TestLayeringOutsideInternal(t *testing.T) {
	pkg := loadFixture(t, "layering", "shadow/cmd/whatever")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Layering}); len(diags) > 0 {
		t.Errorf("layering fired outside internal/: %v", diags)
	}
}

// TestLayeringDAGMatchesTree type-checks every registered package and
// asserts the live tree satisfies the DAG — and that the DAG is acyclic, so
// the declared architecture is actually a hierarchy.
func TestLayeringDAGMatchesTree(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	for rel := range layerImports {
		pkgs, err := l.LoadDir("../../internal/" + rel)
		if err != nil {
			t.Fatalf("load internal/%s: %v", rel, err)
		}
		if diags := RunAnalyzers(pkgs, []*Analyzer{Layering}); len(diags) > 0 {
			for _, d := range diags {
				t.Errorf("live tree violates the DAG: %v", d)
			}
		}
	}

	// Acyclicity by depth-first search over the allowed edges.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var visit func(pkg string, path []string)
	visit = func(pkg string, path []string) {
		switch state[pkg] {
		case grey:
			t.Fatalf("layerImports has a cycle: %s", strings.Join(append(path, pkg), " -> "))
		case black:
			return
		}
		state[pkg] = grey
		deps, ok := layerImports[pkg]
		if !ok && len(path) > 0 {
			t.Errorf("layerImports[%s] allows %s, which is not registered itself", path[len(path)-1], pkg)
		}
		for _, d := range deps {
			visit(d, append(path, pkg))
		}
		state[pkg] = black
	}
	for pkg := range layerImports {
		visit(pkg, nil)
	}
}
