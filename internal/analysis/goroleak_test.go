package analysis

import "testing"

func TestGoroLeakFixtures(t *testing.T) {
	checkFixture(t, GoroLeak, loadFixture(t, "goroleak", ""))
}
