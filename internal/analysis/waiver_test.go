package analysis

import (
	"strings"
	"testing"
)

// TestWaiverHygiene drives Options.CheckWaivers over the waiver fixture:
// justified+used directives stay silent, everything else becomes a finding.
func TestWaiverHygiene(t *testing.T) {
	pkg := loadFixture(t, "waiver", "shadow/internal/sim")
	diags := Run([]*Package{pkg}, []*Analyzer{Determinism}, Options{CheckWaivers: true})
	for _, d := range diags {
		if d.Analyzer != WaiverAnalyzerName {
			t.Errorf("suppression should have eaten every determinism finding, got %v", d)
		}
	}
	wantSubstrings := []string{
		"no justification",         // sumReasonless's reason-less directive
		"stale waiver",             // the directive above stale()
		"unknown analyzer",         // the typo'd name
		"waiver names no analyzer", // the bare directive
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d hygiene findings, want %d: %v", len(diags), len(wantSubstrings), diags)
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no hygiene finding containing %q in %v", want, diags)
		}
	}
}

// TestWaiverHygieneSubsetRuns: a waiver naming an analyzer that exists but
// did not run is left alone — fixture tests run subsets of the suite and
// must not flag each other's waivers.
func TestWaiverHygieneSubsetRuns(t *testing.T) {
	pkg := loadFixture(t, "waiver", "shadow/internal/sim")
	diags := Run([]*Package{pkg}, []*Analyzer{PanicMsg}, Options{CheckWaivers: true})
	for _, d := range diags {
		if strings.Contains(d.Message, "stale waiver") {
			t.Errorf("determinism did not run; its waivers cannot be judged stale: %v", d)
		}
	}
}

// TestRunParallelMatchesSequential: the parallel driver path must produce
// byte-identical, position-sorted output — shadowvet's output is diffed in
// CI, so scheduling may not leak into it.
func TestRunParallelMatchesSequential(t *testing.T) {
	fixtures := []struct{ name, path string }{
		{"panicmsg", ""},
		{"locks", ""},
		{"determinism", "shadow/internal/sim"},
		{"exhaustive", ""},
		{"nilguard", "shadow/internal/obs"},
		{"lockflow", ""},
		{"goroleak", ""},
		{"sharedflow", ""},
		{"allocflow", ""},
		{"detflow", "shadow/internal/sim"},
	}
	var pkgs []*Package
	for _, f := range fixtures {
		pkgs = append(pkgs, loadFixture(t, f.name, f.path))
	}
	seq := Run(pkgs, All(), Options{})
	par := Run(pkgs, All(), Options{Parallel: true})
	if len(seq) == 0 {
		t.Fatal("fixtures should produce findings")
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d findings, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("finding %d differs: sequential %v, parallel %v", i, seq[i], par[i])
		}
	}
}

// TestModuleCallGraphDeterminism: two fully independent loads of the same
// fixture tree (fresh loaders, fresh FileSets) must produce call graphs
// with identical node and edge ordering. The String() dump embeds file
// positions, which agree across loaders because the files on disk agree.
func TestModuleCallGraphDeterminism(t *testing.T) {
	build := func() string {
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		pkgs, err := l.LoadDir("testdata/src/allocflow")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		m := &Module{Packages: pkgs}
		return m.CallGraph().String()
	}
	first := build()
	if first == "" {
		t.Fatal("empty call-graph dump")
	}
	if again := build(); again != first {
		t.Fatalf("independent loads differ:\n--- first\n%s\n--- again\n%s", first, again)
	}
}
