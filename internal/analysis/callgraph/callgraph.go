// Package callgraph builds a module-wide call graph over go/types for the
// shadowvet analyzers that need whole-program facts. Like the rest of the
// suite it is standard library only — a deliberately small reimplementation
// of the golang.org/x/tools/go/callgraph idea, sized for this repository.
//
// Resolution strategy, in decreasing order of precision:
//
//   - a call of a named function or of a method on a concrete (non-interface)
//     receiver produces a single static edge (EdgeStatic) — method calls are
//     devirtualized through go/types' selection machinery, so promoted and
//     pointer-receiver methods resolve to the concrete *types.Func;
//   - a call through an interface produces one EdgeInterface edge per
//     concrete type in the analyzed unit set that implements the interface
//     (class-hierarchy analysis). The unit set is treated as a closed world:
//     implementations outside the analyzed packages are invisible, which is
//     sound for the full-tree CI run and degrades gracefully on subsets;
//   - a call through a function value (a variable, field, parameter, or
//     call result of function type) cannot be resolved and produces a single
//     EdgeDynamic edge to the synthetic Unknown node. Analyzers choose their
//     own policy for Unknown: allocflow pessimistically flags the call site,
//     detflow optimistically ignores it (matching the per-package scan it
//     replaces);
//   - an immediately-invoked function literal is a static call to the
//     literal's own node; every other literal gets a conservative EdgeLit
//     edge from its enclosing function, modeling that a literal handed to
//     sort.Slice or a mitigator callback may run as part of the enclosing
//     call. Literal nodes are named <encloser>$litN in source order, so
//     identity is stable across runs.
//
// Functions imported from outside the analyzed units (the standard library,
// packages not on the command line) appear as body-less nodes: edges lead to
// them, but their own calls are invisible. Package-level variable
// initializers and init functions are not modeled — no shadowvet analyzer
// roots there.
//
// Everything about the graph is deterministic: Nodes() sorts by ID, a
// node's edges are deduplicated by callee and ordered by first call-site
// position, and SCCs() condenses with Tarjan's algorithm over that ordering.
// Two Builds over the same tree render byte-identical String() dumps, which
// the per-package analysis framework relies on for scheduling-independent
// output.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Unit is one type-checked package handed to Build: the parsed files and
// the type information the checker filled for them.
type Unit struct {
	// Path is the unit's import path, used only for diagnostics.
	Path  string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// EdgeKind classifies how a call site was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a named function, a devirtualized
	// method call on a concrete receiver, or an immediately-invoked literal.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is one class-hierarchy candidate of an interface call.
	EdgeInterface
	// EdgeDynamic is a call through a function value; the callee is always
	// the Unknown node.
	EdgeDynamic
	// EdgeLit is the conservative "may run as part of the enclosing call"
	// edge from a function to a literal it creates but does not call
	// directly.
	EdgeLit
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeDynamic:
		return "dynamic"
	case EdgeLit:
		return "lit"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// A Node is one function: named, literal, external (body-less), or the
// synthetic Unknown.
type Node struct {
	// ID is the node's stable identity: types.Func.FullName() for named
	// functions ("(*shadow/internal/minq.Queue).Set"), "<encloser>$litN"
	// for function literals, "<unknown>" for the Unknown node.
	ID string
	// Func is the type-checker's object for named functions; nil for
	// literals and Unknown.
	Func *types.Func
	// Decl is the *ast.FuncDecl or *ast.FuncLit when the function's source
	// is part of the analyzed units; nil for external functions and Unknown.
	Decl ast.Node
	// Body is Decl's body (nil when Decl is nil or the declaration has no
	// body, e.g. assembly stubs).
	Body *ast.BlockStmt
	// PkgPath is the declaring package's import path per the type-checker
	// ("" for literals' enclosing-path inheritance failures and Unknown).
	PkgPath string
	// Out and In are the node's call edges, deduplicated by (kind, callee)
	// resp. (kind, caller) and ordered by first call-site position.
	Out []*Edge
	In  []*Edge
}

// An Edge is one resolved call relationship.
type Edge struct {
	Caller *Node
	Callee *Node
	Kind   EdgeKind
	// Pos is the first call site (or literal position for EdgeLit) that
	// produced the edge.
	Pos token.Pos
}

// A Graph is the call graph of one Build.
type Graph struct {
	Fset *token.FileSet
	// Unknown is the synthetic callee of every unresolvable call.
	Unknown *Node

	nodes map[string]*Node
	// declNodes maps *ast.FuncDecl / *ast.FuncLit to their nodes so
	// per-package analyzers can find the node for a declaration they are
	// walking.
	declNodes map[ast.Node]*Node
	// siteCallees maps each *ast.CallExpr to its resolved callee nodes in
	// deterministic order, for analyzers that report per call site.
	siteCallees map[*ast.CallExpr][]*Node
	sorted      []*Node // memoized Nodes() result
}

// Build constructs the call graph of the given units. Units must share fset.
func Build(fset *token.FileSet, units []Unit) *Graph {
	g := &Graph{
		Fset:        fset,
		nodes:       map[string]*Node{},
		declNodes:   map[ast.Node]*Node{},
		siteCallees: map[*ast.CallExpr][]*Node{},
	}
	g.Unknown = &Node{ID: "<unknown>"}
	g.nodes[g.Unknown.ID] = g.Unknown

	b := &graphBuilder{g: g, hierarchy: collectHierarchy(units)}
	// Pass 1: create a node for every declared function so cross-unit
	// references bind to the node that owns the body regardless of unit
	// order.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.ensure(fn)
				n.Decl = fd
				n.Body = fd.Body
				g.declNodes[fd] = n
			}
		}
	}
	// Pass 2: walk every body, creating literal nodes and edges.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b.walkBody(u, g.declNodes[fd], fd.Body)
			}
		}
	}
	b.finish()
	return g
}

// ensure returns the node for fn, creating a body-less one on first sight.
func (g *Graph) ensure(fn *types.Func) *Node {
	id := fn.FullName()
	if n, ok := g.nodes[id]; ok {
		// Prefer the object that owns a loaded body; either way the ID is
		// the identity, so duplicate type-checker objects (a package loaded
		// both directly and through the source importer) merge here.
		return n
	}
	n := &Node{ID: id, Func: fn}
	if fn.Pkg() != nil {
		n.PkgPath = fn.Pkg().Path()
	}
	g.nodes[id] = n
	g.sorted = nil
	return n
}

// Nodes returns every node (including Unknown and external body-less
// functions) sorted by ID.
func (g *Graph) Nodes() []*Node {
	if g.sorted == nil {
		g.sorted = make([]*Node, 0, len(g.nodes))
		for _, n := range g.nodes {
			g.sorted = append(g.sorted, n)
		}
		sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].ID < g.sorted[j].ID })
	}
	return g.sorted
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// NodeFor returns the node of a *ast.FuncDecl or *ast.FuncLit from the
// analyzed units, or nil.
func (g *Graph) NodeFor(decl ast.Node) *Node { return g.declNodes[decl] }

// CalleesFor returns the resolved callee nodes of one call expression in
// deterministic order (empty for builtins and conversions; contains Unknown
// for dynamic calls).
func (g *Graph) CalleesFor(call *ast.CallExpr) []*Node { return g.siteCallees[call] }

// String renders the graph one node per line with its outgoing edges, in
// sorted order — byte-identical across Builds over the same tree.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&sb, "%s\n", n.ID)
		for _, e := range n.Out {
			pos := ""
			if e.Pos.IsValid() {
				p := g.Fset.Position(e.Pos)
				pos = fmt.Sprintf(" %s:%d", p.Filename, p.Line)
			}
			fmt.Fprintf(&sb, "  -> %s [%s]%s\n", e.Callee.ID, e.Kind, pos)
		}
	}
	return sb.String()
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order of the condensation: every edge leaving a component
// points to an earlier component in the slice, so a bottom-up fact
// propagation (callees before callers) can run in one pass. Node order
// within a component and the component order itself are deterministic.
func (g *Graph) SCCs() [][]*Node {
	s := &sccState{
		index:   map[*Node]int{},
		lowlink: map[*Node]int{},
		onStack: map[*Node]bool{},
	}
	for _, n := range g.Nodes() {
		if _, seen := s.index[n]; !seen {
			s.strongconnect(n)
		}
	}
	return s.comps
}

// sccState is Tarjan's bookkeeping. The recursion depth is bounded by the
// deepest call chain in the module, which is small here.
type sccState struct {
	counter int
	index   map[*Node]int
	lowlink map[*Node]int
	onStack map[*Node]bool
	stack   []*Node
	comps   [][]*Node
}

func (s *sccState) strongconnect(v *Node) {
	s.index[v] = s.counter
	s.lowlink[v] = s.counter
	s.counter++
	s.stack = append(s.stack, v)
	s.onStack[v] = true
	for _, e := range v.Out {
		w := e.Callee
		if _, seen := s.index[w]; !seen {
			s.strongconnect(w)
			if s.lowlink[w] < s.lowlink[v] {
				s.lowlink[v] = s.lowlink[w]
			}
		} else if s.onStack[w] && s.index[w] < s.lowlink[v] {
			s.lowlink[v] = s.index[w]
		}
	}
	if s.lowlink[v] == s.index[v] {
		var comp []*Node
		for {
			w := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			s.onStack[w] = false
			comp = append(comp, w)
			if w == v {
				break
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i].ID < comp[j].ID })
		s.comps = append(s.comps, comp)
	}
}

// hierarchy is the class-hierarchy side table for interface devirtualization:
// every concrete named type declared in the analyzed units.
type hierarchy struct {
	concrete []types.Type // named non-interface types, deterministic order
}

func collectHierarchy(units []Unit) *hierarchy {
	h := &hierarchy{}
	seen := map[string]bool{}
	type entry struct {
		key string
		t   types.Type
	}
	var entries []entry
	for _, u := range units {
		if u.Pkg == nil {
			continue
		}
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if ok && !tn.IsAlias() {
				t := tn.Type()
				if _, isIface := t.Underlying().(*types.Interface); isIface {
					continue
				}
				key := u.Pkg.Path() + "." + name
				if !seen[key] {
					seen[key] = true
					entries = append(entries, entry{key, t})
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		h.concrete = append(h.concrete, e.t)
	}
	return h
}

// implementations returns the concrete methods satisfying one interface
// method, in deterministic order.
func (h *hierarchy) implementations(iface *types.Interface, method *types.Func) []*types.Func {
	var out []*types.Func
	for _, t := range h.concrete {
		impl := types.Implements(t, iface)
		if !impl {
			if ptr := types.NewPointer(t); types.Implements(ptr, iface) {
				impl = true
				t = ptr
			}
		}
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, method.Pkg(), method.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// graphBuilder accumulates raw edges before the deterministic dedup pass.
type graphBuilder struct {
	g         *Graph
	hierarchy *hierarchy
	raw       []rawEdge
}

type rawEdge struct {
	caller, callee *Node
	kind           EdgeKind
	pos            token.Pos
}

// walkBody records the edges of one function body. Nested literal bodies
// are handed to their own nodes; the shallow walk stops at FuncLit
// boundaries.
func (b *graphBuilder) walkBody(u Unit, caller *Node, body *ast.BlockStmt) {
	if caller == nil || body == nil {
		return
	}
	litIndex := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lit := &Node{
				ID:      fmt.Sprintf("%s$lit%d", caller.ID, litIndex),
				Decl:    n,
				Body:    n.Body,
				PkgPath: caller.PkgPath,
			}
			litIndex++
			b.g.nodes[lit.ID] = lit
			b.g.sorted = nil
			b.g.declNodes[n] = lit
			b.raw = append(b.raw, rawEdge{caller, lit, EdgeLit, n.Pos()})
			b.walkBody(u, lit, n.Body)
			return false // the literal owns its own subtree
		case *ast.CallExpr:
			b.call(u, caller, n)
		}
		return true
	})
}

// call resolves one call expression into edges and the per-site callee list.
func (b *graphBuilder) call(u Unit, caller *Node, call *ast.CallExpr) {
	callees, kind := b.resolve(u, call)
	for _, callee := range callees {
		b.raw = append(b.raw, rawEdge{caller, callee, kind, call.Lparen})
	}
	if len(callees) > 0 {
		b.g.siteCallees[call] = callees
	}
}

// resolve maps a call expression to callee nodes. Builtins and type
// conversions resolve to nothing; unresolvable calls resolve to Unknown.
func (b *graphBuilder) resolve(u Unit, call *ast.CallExpr) ([]*Node, EdgeKind) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](x) — unwrap to the underlying operand.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := u.Info.Types[idx.X]; ok && isFuncExpr(u, idx.X) {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		// Immediately invoked. The enclosing walk gives every literal an
		// EdgeLit edge from its encloser, which models "runs as part of the
		// enclosing call" — exactly what an immediate invocation is — so no
		// extra edge is needed here.
		return nil, EdgeStatic
	case *ast.Ident:
		obj := u.Info.Uses[fun]
		switch obj := obj.(type) {
		case *types.Builtin:
			return nil, EdgeStatic
		case *types.TypeName:
			return nil, EdgeStatic // conversion T(x)
		case *types.Func:
			return []*Node{b.g.ensure(obj)}, EdgeStatic
		case *types.Var:
			return []*Node{b.g.Unknown}, EdgeDynamic
		}
		return []*Node{b.g.Unknown}, EdgeDynamic
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				// Field of function type (or a method value being built and
				// called in one expression through extra parens) — dynamic.
				return []*Node{b.g.Unknown}, EdgeDynamic
			}
			recv := sel.Recv()
			if iface, isIface := recv.Underlying().(*types.Interface); isIface {
				method, _ := sel.Obj().(*types.Func)
				if method == nil {
					return []*Node{b.g.Unknown}, EdgeDynamic
				}
				impls := b.hierarchy.implementations(iface, method)
				if len(impls) == 0 {
					// No analyzed implementation: keep the interface method's
					// own (body-less) node so the call is visible in dumps.
					return []*Node{b.g.ensure(method)}, EdgeInterface
				}
				nodes := make([]*Node, 0, len(impls))
				for _, fn := range impls {
					nodes = append(nodes, b.g.ensure(fn))
				}
				return nodes, EdgeInterface
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return []*Node{b.g.ensure(fn)}, EdgeStatic
			}
			return []*Node{b.g.Unknown}, EdgeDynamic
		}
		// Qualified identifier pkg.Func, or a conversion pkg.T(x).
		switch obj := u.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return []*Node{b.g.ensure(obj)}, EdgeStatic
		case *types.TypeName:
			return nil, EdgeStatic
		case *types.Builtin:
			return nil, EdgeStatic
		}
		return []*Node{b.g.Unknown}, EdgeDynamic
	}
	return []*Node{b.g.Unknown}, EdgeDynamic
}

// finish dedups raw edges deterministically and attaches them to nodes.
func (b *graphBuilder) finish() {
	type key struct {
		caller, callee *Node
		kind           EdgeKind
	}
	first := map[key]*Edge{}
	var order []*Edge
	for _, r := range b.raw {
		k := key{r.caller, r.callee, r.kind}
		if e, ok := first[k]; ok {
			if r.pos < e.Pos {
				e.Pos = r.pos
			}
			continue
		}
		e := &Edge{Caller: r.caller, Callee: r.callee, Kind: r.kind, Pos: r.pos}
		first[k] = e
		order = append(order, e)
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, o := order[i], order[j]
		if a.Pos != o.Pos {
			return a.Pos < o.Pos
		}
		if a.Caller.ID != o.Caller.ID {
			return a.Caller.ID < o.Caller.ID
		}
		if a.Callee.ID != o.Callee.ID {
			return a.Callee.ID < o.Callee.ID
		}
		return a.Kind < o.Kind
	})
	for _, e := range order {
		e.Caller.Out = append(e.Caller.Out, e)
		e.Callee.In = append(e.Callee.In, e)
	}
}

func isFuncExpr(u Unit, e ast.Expr) bool {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}
