package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildSrc type-checks one import-free source file as package path "p" and
// builds its call graph. Each call gets a fresh FileSet and type-checker so
// repeated builds are genuinely independent.
func buildSrc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Error: func(error) {}}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Build(fset, []Unit{{Path: "p", Files: []*ast.File{f}, Info: info, Pkg: pkg}})
}

// edgeIDs returns "callerID kind calleeID" strings for every edge, for
// order-insensitive membership checks.
func edgeIDs(g *Graph) map[string]bool {
	out := map[string]bool{}
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			out[n.ID+" "+e.Kind.String()+" "+e.Callee.ID] = true
		}
	}
	return out
}

func TestStaticAndMethodCalls(t *testing.T) {
	g := buildSrc(t, `package p
type T struct{ n int }
func (t *T) bump() { t.n++ }
func helper()      {}
func root(t *T) {
	helper()
	t.bump()
}
`)
	edges := edgeIDs(g)
	for _, want := range []string{
		"p.root static p.helper",
		"p.root static (*p.T).bump",
	} {
		if !edges[want] {
			t.Errorf("missing edge %q; have %v", want, edges)
		}
	}
	if g.Node("p.root") == nil || g.Node("p.root").Body == nil {
		t.Error("p.root should be a node with a body")
	}
}

func TestInterfaceCallCHA(t *testing.T) {
	g := buildSrc(t, `package p
type doer interface{ do() }
type a struct{}
func (a) do() {}
type b struct{}
func (*b) do() {}
type unrelated struct{}
func (unrelated) other() {}
func root(d doer) { d.do() }
`)
	edges := edgeIDs(g)
	for _, want := range []string{
		"p.root interface (p.a).do",
		"p.root interface (*p.b).do",
	} {
		if !edges[want] {
			t.Errorf("missing CHA edge %q; have %v", want, edges)
		}
	}
	for e := range edges {
		if strings.Contains(e, "unrelated") {
			t.Errorf("unrelated type must not appear as an interface candidate: %s", e)
		}
	}
}

func TestDynamicCallGoesToUnknown(t *testing.T) {
	g := buildSrc(t, `package p
func root(f func()) { f() }
`)
	edges := edgeIDs(g)
	if !edges["p.root dynamic <unknown>"] {
		t.Errorf("call through a function value should edge to <unknown>; have %v", edges)
	}
}

func TestFuncLitEdges(t *testing.T) {
	g := buildSrc(t, `package p
func take(f func()) {}
func root() {
	take(func() { helper() })
	func() { helper() }()
}
func helper() {}
`)
	edges := edgeIDs(g)
	for _, want := range []string{
		"p.root lit p.root$lit0",
		"p.root lit p.root$lit1",
		"p.root$lit0 static p.helper",
		"p.root$lit1 static p.helper",
	} {
		if !edges[want] {
			t.Errorf("missing edge %q; have %v", want, edges)
		}
	}
}

func TestBuiltinsAndConversionsAreNotCalls(t *testing.T) {
	g := buildSrc(t, `package p
type mine int
func root(xs []int) (int, mine, string) {
	n := len(xs)
	m := mine(n)
	s := string(rune(n))
	return n, m, s
}
`)
	for e := range edgeIDs(g) {
		if strings.HasPrefix(e, "p.root ") {
			t.Errorf("builtins/conversions must not produce edges, got %s", e)
		}
	}
}

func TestSCCsReverseTopological(t *testing.T) {
	g := buildSrc(t, `package p
func a() { b() }
func b() { a(); c() }
func c() {}
`)
	comps := g.SCCs()
	pos := map[string]int{}
	for i, comp := range comps {
		for _, n := range comp {
			pos[n.ID] = i
		}
	}
	if pos["p.a"] != pos["p.b"] {
		t.Errorf("a and b are mutually recursive and must share a component: %v", pos)
	}
	if !(pos["p.c"] < pos["p.a"]) {
		t.Errorf("reverse topological order: callee c's component must precede a/b's: %v", pos)
	}
	// Every edge must point to the same or an earlier component.
	for _, n := range g.Nodes() {
		for _, e := range n.Out {
			if pos[e.Callee.ID] > pos[n.ID] {
				t.Errorf("edge %s -> %s violates reverse topological component order", n.ID, e.Callee.ID)
			}
		}
	}
}

func TestCalleesForAndNodeFor(t *testing.T) {
	src := `package p
func helper() {}
func root() { helper() }
`
	g := buildSrc(t, src)
	root := g.Node("p.root")
	if root == nil {
		t.Fatal("no p.root node")
	}
	if g.NodeFor(root.Decl) != root {
		t.Error("NodeFor(decl) should round-trip to the node")
	}
	found := false
	ast.Inspect(root.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callees := g.CalleesFor(call)
			if len(callees) != 1 || callees[0].ID != "p.helper" {
				t.Errorf("CalleesFor = %v, want [p.helper]", callees)
			}
			found = true
		}
		return true
	})
	if !found {
		t.Error("no call expression found in root body")
	}
}

// TestBuildDeterminism: two fully independent loads of the same tree (fresh
// FileSet, fresh type-checker, fresh maps) must render byte-identical
// String() dumps — node order, edge order, and literal numbering may not
// depend on map iteration.
func TestBuildDeterminism(t *testing.T) {
	src := `package p
type doer interface{ do() }
type a struct{}
func (a) do() { helper() }
type b struct{}
func (*b) do() {}
func helper() {}
func root(d doer, f func()) {
	d.do()
	f()
	helper()
	go func() { helper() }()
	defer func() { f() }()
}
func cycle1() { cycle2() }
func cycle2() { cycle1() }
`
	first := buildSrc(t, src).String()
	for i := 0; i < 5; i++ {
		if again := buildSrc(t, src).String(); again != first {
			t.Fatalf("build %d differs:\n--- first\n%s\n--- again\n%s", i, first, again)
		}
	}
	if first == "" {
		t.Fatal("empty dump")
	}
}
