package analysis

import "testing"

// The determinism fixtures masquerade as internal/sim: the analyzer only
// polices the simulation packages.
func TestDeterminismFlagsViolations(t *testing.T) {
	checkFixture(t, Determinism, loadFixture(t, "determinism", "shadow/internal/sim"))
}

func TestDeterminismRestrictedToSimPackages(t *testing.T) {
	// Under its real (non-simulation) import path the same fixture is not
	// this analyzer's business: tooling may read the clock.
	pkg := loadFixture(t, "determinism", "")
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("determinism fired outside the simulation packages: %v", diags)
	}
}

// TestDeterminismCoversObs checks the observability layer is policed like
// any simulation package: the obsprobe fixture seeds instrumentation-shaped
// violations (wall-clock sample stamps, wall-time rates, global-rand
// sampling, unsorted registry dumps) and sanctioned patterns (tick-bucketed
// series, an injected clock func, keyed map writes, sort-after-append under
// a waiver).
func TestDeterminismCoversObs(t *testing.T) {
	checkFixture(t, Determinism, loadFixture(t, "obsprobe", "shadow/internal/obs"))
}

// TestDeterminismCoversSpanTracker checks the span tracker is policed like
// any simulation package: the spantrack fixture seeds span-shaped violations
// (wall-clock milestone stamps, wall-time residency, rand lane assignment,
// order-dependent stall folds) and sanctioned patterns (tick milestones,
// array-indexed cause sums, first-fit lanes, keyed map writes).
func TestDeterminismCoversSpanTracker(t *testing.T) {
	checkFixture(t, Determinism, loadFixture(t, "spantrack", "shadow/internal/obs/span"))
}

func TestDeterminismEveryRestrictedPackage(t *testing.T) {
	for path := range restrictedPkgs {
		pkg := loadFixture(t, "determinism", path)
		if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism}); len(diags) == 0 {
			t.Errorf("determinism silent in restricted package %s", path)
		}
	}
}
