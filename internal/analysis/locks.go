package analysis

import (
	"go/ast"
	"go/types"
)

// lockTypeNames are the sync types that must never be copied and whose
// acquire/release must pair up.
var lockTypeNames = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// Locks enforces the no-copy rule around the sync package: sync.Mutex,
// sync.RWMutex, sync.WaitGroup, sync.Once and sync.Cond (or structs
// containing one by value) must not be copied — not passed or returned by
// value, not assigned from an existing value, not ranged over by value — a
// copied lock guards nothing.
//
// Its original second rule (every Lock has a same-function Unlock) is
// deprecated in favor of the flow-sensitive lockflow analyzer, which
// proves release on every path instead of anywhere in the body. The
// locks name survives as a waiver alias: a //shadowvet:ignore locks
// directive also suppresses lockflow findings, so waivers written
// against the old check migrate without edits.
var Locks = &Analyzer{
	Name: "locks",
	Doc:  "forbid by-value copies of sync.Mutex/WaitGroup/... (Lock/Unlock pairing is flow-checked by lockflow)",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n.Type)
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						if t := pass.Info.TypeOf(field.Type); t != nil && containsLock(t, nil) {
							pass.Reportf(field.Pos(), "method receiver copies %s; use a pointer receiver", lockIn(t))
						}
					}
				}
			case *ast.FuncLit:
				checkSignature(pass, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkLockCopy(pass, v)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); t != nil && containsLock(t, nil) {
						pass.Reportf(n.Value.Pos(), "range copies a value containing %s; range over indices or pointers instead", lockIn(t))
					}
				}
			}
			return true
		})
	}
}

// checkSignature flags parameters and results that carry a lock by value.
func checkSignature(pass *Pass, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil || !containsLock(t, nil) {
				continue
			}
			pass.Reportf(field.Pos(), "%s passes %s by value; use a pointer", kind, lockIn(t))
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkLockCopy flags reading an existing lock-bearing value (as opposed to
// constructing a fresh zero value, which is how locks are born).
func checkLockCopy(pass *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return // composite literals, calls, &x, ... are not copies of a live lock
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil || !containsLock(t, nil) {
		return
	}
	// Reading through a pointer type is fine; the copy check is on values.
	pass.Reportf(rhs.Pos(), "assignment copies a value containing %s; use a pointer", lockIn(t))
}

// containsLock reports whether t holds one of the sync lock types by value
// (directly, in a struct field, or in an array element).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockIn names the offending lock type inside t for the diagnostic.
func lockIn(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), nil) {
				return lockIn(u.Field(i).Type())
			}
		}
	case *types.Array:
		return lockIn(u.Elem())
	}
	return "a sync lock"
}

// syncMethod matches calls to methods defined in package sync
// (Lock/Unlock/RLock/RUnlock/Wait/Done/...) and returns the method name,
// the rendered receiver expression, and the receiver's named type (Mutex,
// RWMutex, WaitGroup, Cond). Shared by the locks, lockflow, goroleak, and
// sharedflow analyzers.
func syncMethod(pass *Pass, call *ast.CallExpr) (name, recv, typeName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	if t := pass.Info.TypeOf(sel.X); t != nil {
		if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			typeName = named.Obj().Name()
		}
	}
	return fn.Name(), types.ExprString(sel.X), typeName, true
}
