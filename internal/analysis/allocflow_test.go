package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestAllocFlow(t *testing.T) {
	pkg := loadFixture(t, "allocflow", "")
	checkFixture(t, AllocFlow, pkg)
}

// TestAllocFlowCategories pins every allocation category the analyzer
// knows to at least one fixture finding — a message regression cannot
// silently drop a category — and requires the hot-path chain on each.
func TestAllocFlowCategories(t *testing.T) {
	pkg := loadFixture(t, "allocflow", "")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{AllocFlow})
	categories := []string{
		"go statement starts a goroutine",
		"composite literal taken by address",
		"slice literal allocates",
		"map literal allocates",
		"string concatenation allocates",
		"map write may grow",
		"make allocates",
		"new allocates",
		"append may grow its backing array",
		"string conversion",
		"fmt.Println call allocates",
		"call through a function value",
		"outside the analyzed tree",
		"variadic call allocates its argument slice",
		"interface boxing",
		"closure capture of r allocates",
	}
	for _, cat := range categories {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, cat) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding for category %q in %d findings", cat, len(diags))
		}
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "on the allocation-free hot path (") {
			t.Errorf("finding without a hot-path chain: %v", d)
		}
	}
}

// TestAllocFlowChain: findings deep in the tree carry the root → … → fn
// blame chain, so a reader knows which registered root is violated.
func TestAllocFlowChain(t *testing.T) {
	pkg := loadFixture(t, "allocflow", "")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{AllocFlow})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "sim.runner.tick → sim.runner.mid → sim.runner.deep") {
			found = true
		}
	}
	if !found {
		t.Errorf("no finding carries the tick → mid → deep chain: %v", diags)
	}
}

// TestAllocFlowCrossPackage: the hot tree follows static calls across a
// package boundary, and the finding lands in the dependency's file.
func TestAllocFlowCrossPackage(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	rootPkgs, err := l.LoadDir(filepath.Join("testdata", "src", "allocflowx", "root"))
	if err != nil {
		t.Fatalf("load root: %v", err)
	}
	depPkgs, err := l.LoadDir(filepath.Join("testdata", "src", "allocflowx", "dep"))
	if err != nil {
		t.Fatalf("load dep: %v", err)
	}
	pkgs := append(rootPkgs, depPkgs...)
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("type error: %v", terr)
		}
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{AllocFlow})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the one in dep: %v", len(diags), diags)
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "dep.go" {
		t.Errorf("finding should land in dep.go, got %v", d)
	}
	if !strings.Contains(d.Message, "sim.runner.tick → dep.Grow") {
		t.Errorf("finding should carry the cross-package chain, got %v", d)
	}
}
