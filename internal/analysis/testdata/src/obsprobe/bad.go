// Package obsprobe is a shadowvet test fixture for the observability layer.
// The test harness analyzes it under the import path shadow/internal/obs, so
// every instrumentation antipattern seeded below must be flagged: metrics and
// events recorded from inside the simulation loop must never observe wall
// time, unseeded entropy, or map iteration order.
package obsprobe

import (
	"math/rand" // want:determinism
	"time"
)

// Tick mirrors timing.Tick (picoseconds of simulated time) so the fixture
// stays stdlib-only.
type Tick int64

type sample struct {
	at Tick
	v  float64
}

type badSeries struct {
	samples []sample
}

// Stamping a sample with the wall clock instead of the simulated tick makes
// every trace differ run to run.
func (s *badSeries) addStamped(v float64) {
	s.samples = append(s.samples, sample{at: Tick(time.Now().UnixNano()), v: v}) // want:determinism
}

// Deriving an events/sec rate from wall time inside the recorder couples the
// captured metrics to host load.
func (s *badSeries) rate(start time.Time) float64 {
	return float64(len(s.samples)) / time.Since(start).Seconds() // want:determinism
}

// Sampling decisions must come from the seeded shadow/internal/rng, never
// the global math/rand source.
func shouldSample() bool {
	return rand.Float64() < 0.01 // want:determinism
}

// Dumping a metrics registry by ranging over the map emits rows in a
// different order every run.
func dumpNames(metrics map[string]int64) []string {
	var names []string
	for name := range metrics {
		names = append(names, name) // want:determinism
	}
	return names
}
