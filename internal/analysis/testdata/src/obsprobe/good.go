package obsprobe

import (
	"sort"
	"time"
)

type goodSeries struct {
	interval Tick
	vals     []float64
}

// Bucketing by the simulated tick passed in from the simulator is the
// sanctioned pattern: no clock, no entropy, pure arithmetic.
func (s *goodSeries) add(now Tick, v float64) {
	idx := int(now / s.interval)
	for len(s.vals) <= idx {
		s.vals = append(s.vals, 0)
	}
	s.vals[idx] += v
}

// heartbeat needs real wall time to rate-limit terminal output, so it takes
// the clock as an injected func: the cmd layer passes time.Now, tests pass a
// fake, and this package never reads the clock itself.
type heartbeat struct {
	clock     func() time.Time
	lastPrint time.Time
}

func (h *heartbeat) due(minGap time.Duration) bool {
	now := h.clock()
	if now.Sub(h.lastPrint) < minGap {
		return false
	}
	h.lastPrint = now
	return true
}

// Keyed writes are order-independent: inverting a map is deterministic
// regardless of iteration order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Collecting keys then sorting is the sanctioned way to serialize a
// registry; the append carries a same-line waiver because the sort below
// fixes the order.
func sortedNames(metrics map[string]int64) []string {
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Strings(names)
	return names
}
