package layering

// Test files are exempt from layering: a test may drive its package from
// above without inverting the runtime architecture.

import "shadow/internal/memsys"

var _ = memsys.New
