// Fixture for the layering analyzer. The package masquerades as
// shadow/internal/dram (path override in the test): the device layer may
// not reach up into the memory controller.
package layering

import (
	"shadow/internal/memctrl" // want:layering (dram may not import memctrl)
)

var _ = memctrl.CmdACT
