package layering

import (
	"fmt"

	"shadow/internal/timing"
)

// dram may import timing (a layer below); non-internal imports are free.
var _ = fmt.Sprint
var _ timing.Tick
