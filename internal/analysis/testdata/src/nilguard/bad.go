// Fixture for the nilguard analyzer. The package masquerades as
// shadow/internal/obs (path override in the test), so the Probe and
// Heartbeat types here stand in for the real hot-path types.
package nilguard

// Probe mirrors the nil-safe instrumentation handle.
type Probe struct{ n int }

// Bump has no guard at all.
func (p *Probe) Bump() { // want:nilguard
	p.n++
}

// Late guards after work has already run on the receiver's behalf.
func (p *Probe) Late() int { // want:nilguard
	x := 1
	if p == nil {
		return x
	}
	return p.n + x
}

// Heartbeat mirrors the progress reporter.
type Heartbeat struct{ done bool }

// Wrong tests a different variable, not the receiver.
func (h *Heartbeat) Wrong(other *Heartbeat) { // want:nilguard
	if other == nil {
		return
	}
	h.done = true
}
