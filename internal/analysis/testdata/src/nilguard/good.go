package nilguard

// Guard: the canonical early return.
func (p *Probe) Guard() {
	if p == nil {
		return
	}
	p.n++
}

// Enabled: a single return of the nil comparison.
func (p *Probe) Enabled() bool { return p != nil }

// Wrapped: all work inside the non-nil branch.
func (p *Probe) Wrapped(d int) {
	if p != nil {
		p.n += d
	}
}

// Compound: the receiver test shares the condition.
func (h *Heartbeat) Compound() {
	if h == nil || h.done {
		return
	}
	h.done = true
}

// unexported methods are outside the exported-contract check.
func (h *Heartbeat) bump() { h.done = true }

// Value receivers cannot be nil.
func (h Heartbeat) Snapshot() bool { return h.done }

// helper is not one of the guarded types.
type helper struct{ n int }

// Bump on an unguarded type needs no guard.
func (x *helper) Bump() { x.n++ }
