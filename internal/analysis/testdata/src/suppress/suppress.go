// Package suppress is a shadowvet test fixture for the
// //shadowvet:ignore directive (analyzed as a simulation package).
package suppress

func trailing(m map[int]int) int {
	trailingTotal := 0
	for _, v := range m {
		trailingTotal += v //shadowvet:ignore determinism -- integer sum, order-independent
	}
	return trailingTotal
}

func above(m map[int]int) int {
	aboveTotal := 0
	for _, v := range m {
		//shadowvet:ignore determinism -- integer sum, order-independent
		aboveTotal += v
	}
	return aboveTotal
}

func wrongName(m map[int]int) int {
	// A directive naming a different analyzer must not waive this one.
	unsuppressed := 0
	for _, v := range m {
		unsuppressed += v //shadowvet:ignore locks -- names the wrong analyzer
	}
	return unsuppressed
}
