package minq

// Synchronous writes are the simulator hot path; only asynchronous
// contexts are checked.
func synchronousWrite(q *Queue) {
	q.dirty = true
	q.items = append(q.items, 7)
}

func guardedGoroutineWrite(q *Queue) {
	go func() {
		q.mu.Lock()
		q.dirty = true
		q.items = q.items[:0]
		q.mu.Unlock()
	}()
}

func guardedCallbackWrite(q *Queue, each func(fn func())) {
	each(func() {
		q.mu.Lock()
		defer q.mu.Unlock()
		q.items = append(q.items, 1)
	})
}

// Reads are not writes: publishing a snapshot needs no guard here.
func readInGoroutine(q *Queue, out chan int) {
	go func() {
		out <- len(q.items)
	}()
}

// Unregistered types are out of scope however they are shared.
type scratch struct{ n int }

func unregisteredType(s *scratch) {
	go func() {
		s.n = 1
	}()
}

// A waiver records the synchronization the analyzer cannot see.
func externallySerialized(q *Queue) {
	go func() {
		q.dirty = true //shadowvet:ignore sharedflow -- the spawner joins this goroutine before any other access
	}()
}
