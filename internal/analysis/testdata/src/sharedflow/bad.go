// Package minq masquerades as the real indexed min-queue: sharedflow
// matches hot-path types by declaring-package name plus type name, so
// this fixture's Queue stands in for shadow/internal/minq.Queue.
package minq

import "sync"

type Queue struct {
	mu    sync.Mutex
	items []int
	dirty bool
}

func goroutineWrite(q *Queue) {
	go func() {
		q.dirty = true // want:sharedflow
	}()
}

func callbackWrite(q *Queue, each func(fn func())) {
	each(func() {
		q.items = append(q.items, 1) // want:sharedflow
	})
}

func incDecThroughIndex(q *Queue) {
	go func() {
		q.items[0]++ // want:sharedflow
	}()
}

func lockReleasedTooEarly(q *Queue) {
	go func() {
		q.mu.Lock()
		q.items = q.items[:0]
		q.mu.Unlock()
		q.dirty = false // want:sharedflow
	}()
}
