// Fixture for the exhaustive analyzer: switches over closed enums that
// skip members without an explicit default.
package exhaustive

import "shadow/internal/timing"

// color is a local iota enum with a sentinel count constant.
type color uint8

const (
	colorRed color = iota
	colorGreen
	colorBlue
	numColors
)

// mode is a local string enum.
type mode string

const (
	modeFast mode = "fast"
	modeSlow mode = "slow"
)

func describeBad(c color) string {
	switch c { // want:exhaustive (missing colorBlue)
	case colorRed:
		return "red"
	case colorGreen:
		return "green"
	}
	return "?"
}

func gradeBad(g timing.Grade) int {
	switch g { // want:exhaustive (an imported enum counts too)
	case timing.DDR4_2666:
		return 4
	}
	return 5
}

func modeBad(m mode) bool {
	switch m { // want:exhaustive (missing modeSlow)
	case modeFast:
		return true
	}
	return false
}
