package exhaustive

import "shadow/internal/timing"

// All members covered; the numColors sentinel needs no case.
func describeGood(c color) string {
	switch c {
	case colorRed, colorGreen:
		return "warm"
	case colorBlue:
		return "cool"
	}
	return "?"
}

// An explicit default owns the remainder.
func gradeGood(g timing.Grade) int {
	switch g {
	case timing.DDR5_4800:
		return 5
	default:
		return 4
	}
}

// A non-constant case makes coverage unprovable: skipped, not flagged.
func nonConstant(c, other color) bool {
	switch c {
	case other:
		return true
	}
	return false
}

// unit has sparse constants (no contiguous 0..n-1 run): not an enum.
type unit int64

const (
	kilo unit = 1000
	mega unit = 1000 * kilo
)

func unitSwitch(u unit) string {
	switch u {
	case kilo:
		return "k"
	}
	return "?"
}

// A plain basic type is not an enum.
func plain(s string) bool {
	switch s {
	case "x":
		return true
	}
	return false
}

// A tagless switch is a cascaded if, not an enum dispatch.
func tagless(c color) bool {
	switch {
	case c == colorRed:
		return true
	}
	return false
}
