// Package panicmsg is a shadowvet test fixture: panics whose message does
// not carry the "panicmsg: " package prefix.
package panicmsg

import (
	"errors"
	"fmt"
)

func bareErr(err error) {
	if err != nil {
		panic(err) // want:panicmsg
	}
}

func wrongPrefix() {
	panic("dram: wrong package's prefix") // want:panicmsg
}

func noPrefix() {
	panic("boom") // want:panicmsg
}

func sprintfNoPrefix(x int) {
	panic(fmt.Sprintf("bad value %d", x)) // want:panicmsg
}

func wrapped() {
	panic(errors.New("panicmsg: prefix inside errors.New is not checkable")) // want:panicmsg
}
