package panicmsg

import "fmt"

const constMsg = "panicmsg: constant message"

func literal() {
	panic("panicmsg: plain literal")
}

func sprintf(x int) {
	panic(fmt.Sprintf("panicmsg: bad value %d", x))
}

func errorf(err error) {
	panic(fmt.Errorf("panicmsg: wrapped: %w", err))
}

func concat(name string) {
	panic("panicmsg: unknown name " + name)
}

func constant() {
	panic(constMsg)
}
