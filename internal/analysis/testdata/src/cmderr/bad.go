// Package cmderr is a shadowvet test fixture: DRAM command-issuing calls
// whose protocol error is discarded.
package cmderr

import (
	"shadow/internal/dram"
	"shadow/internal/timing"
)

func ignoredStatement(d *dram.Device, now timing.Tick) {
	d.Activate(0, 0, now) // want:cmderr
	d.Refresh(now)        // want:cmderr
}

func blankAssign(d *dram.Device, now timing.Tick) {
	_ = d.Precharge(0, now) // want:cmderr
}

func lostInGo(d *dram.Device, now timing.Tick) {
	go d.RFM(0, now) // want:cmderr
}

func lostInDefer(d *dram.Device, now timing.Tick) {
	defer d.Write(0, now) // want:cmderr
}

func bankLevel(b *dram.Bank, now timing.Tick) {
	b.Activate(0, 0, now) // want:cmderr
}
