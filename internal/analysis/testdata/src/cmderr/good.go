package cmderr

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/timing"
)

func checked(d *dram.Device, now timing.Tick) error {
	if err := d.Activate(0, 0, now); err != nil {
		return err
	}
	return d.Precharge(0, now)
}

func handled(d *dram.Device, now timing.Tick) {
	if err := d.Refresh(now); err != nil {
		panic(fmt.Sprintf("cmderr: REF failed: %v", err))
	}
}

// Error-free dram methods and non-dram calls are not this analyzer's
// business.
func unrelated(d *dram.Device) {
	d.Banks()
	fmt.Println(d.FlipCount())
}
