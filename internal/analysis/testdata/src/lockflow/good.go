package lockflow

func straightLine(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// A deferred release covers every path: the early return and the panic
// both run it on the way out.
func deferredUnlock(c *counter, fail bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return -1
	}
	if c.n < 0 {
		panic("counter underflow: negative count")
	}
	return c.n
}

// A guard clause before the Lock/defer pair must not erase the deferred
// release at the exit join (the untouched path holds nothing).
func guardClauseThenDefer(c *counter, skip bool) {
	if skip {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func bothBranchesRelease(c *counter, flip bool) {
	c.mu.Lock()
	if flip {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

// Read under RLock, then write under Lock — the upgrade hazard is only
// in holding both at once.
func readThenWrite(c *counter) {
	c.rw.RLock()
	n := c.n
	c.rw.RUnlock()
	if n > 0 {
		c.rw.Lock()
		c.n = 0
		c.rw.Unlock()
	}
}

func releaseBeforeBlocking(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func lockInLoop(c *counter, rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// A deferred literal releases what its body releases.
func deferredLiteralRelease(c *counter) {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	c.n++
}
