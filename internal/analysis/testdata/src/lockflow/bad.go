// Package lockflow is a shadowvet test fixture: flow-sensitive locking
// hazards — releases missing on some path, double locks, read-to-write
// upgrades, and blocking operations under a held lock.
package lockflow

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func leakOnEarlyReturn(c *counter, fail bool) int {
	c.mu.Lock() // want:lockflow
	if fail {
		return -1 // escapes without the unlock below
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func lockNoUnlock(c *counter) {
	c.mu.Lock() // want:lockflow
	c.n++
}

func rlockNoRUnlock(c *counter) int {
	c.rw.RLock() // want:lockflow
	return c.n
}

func unlockInOtherScope(c *counter) {
	c.mu.Lock() // want:lockflow
	func() {
		c.mu.Unlock() // a nested literal is a separate function
	}()
}

func leakOnOneBranch(c *counter, flip bool) {
	c.mu.Lock() // want:lockflow
	if flip {
		c.mu.Unlock()
	}
}

func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want:lockflow
	c.mu.Unlock()
	c.mu.Unlock()
}

func upgrade(c *counter) {
	c.rw.RLock()
	c.rw.Lock() // want:lockflow
	c.rw.Unlock()
	c.rw.RUnlock()
}

func sendUnderLock(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want:lockflow
	c.mu.Unlock()
}

func recvUnderLock(c *counter, ch chan int) {
	c.mu.Lock()
	c.n = <-ch // want:lockflow
	c.mu.Unlock()
}

func waitUnderLock(c *counter, wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want:lockflow
	c.mu.Unlock()
}
