package lockflow

// The deprecated locks pairing rule lives on as a waiver alias: this
// directive, written against the old analyzer name, keeps suppressing
// the flow-sensitive successor's finding, so waivers migrate unedited.

func handedToCaller(c *counter) {
	c.mu.Lock() //shadowvet:ignore locks -- acquired for the caller; released by releaseCounter when the batch completes
	c.n++
}

func releaseCounter(c *counter) {
	c.mu.Unlock()
}
