// Fixture for waiver hygiene (Options.CheckWaivers). The package
// masquerades as shadow/internal/sim so the determinism analyzer fires.
package waiver

// Used and justified: no hygiene finding.
func sumJustified(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v //shadowvet:ignore determinism -- order-independent sum
	}
	return total
}

// Used but reasonless: the suppression still works, hygiene objects.
func sumReasonless(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v //shadowvet:ignore determinism
	}
	return total
}

// Stale: there is no determinism finding here to suppress.
//
//shadowvet:ignore determinism -- leftover from a refactor
func stale() int { return 0 }

// Unknown analyzer name (a typo'd directive silently ignores nothing).
//
//shadowvet:ignore determinsm -- guard the sum below
func typo() int { return 1 }

// A directive that names no analyzer waives nothing.
//
//shadowvet:ignore
func nameless() int { return 2 }
