package determinism

import (
	"sort"
	"time"
)

// Duration arithmetic is fine; only wall-clock reads are banned.
const tick = 5 * time.Millisecond

// Keyed writes are order-independent: building one map from another is
// deterministic regardless of iteration order.
func copyMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// The sanctioned pattern for ordered iteration: collect keys (waived — the
// sort directly below restores determinism), sort, then walk the slice.
func sortedSum(m map[int]int) int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) //shadowvet:ignore determinism -- sorted immediately below
	}
	sort.Ints(keys)
	total := 0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Slice iteration is ordered; reductions over it are fine.
func sliceSum(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Loop-local accumulation inside a map range is fine.
func countLarge(m map[int]int) map[int]bool {
	out := map[int]bool{}
	for k, v := range m {
		big := v > 100
		out[k] = big
	}
	return out
}
