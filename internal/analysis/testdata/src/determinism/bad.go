// Package determinism is a shadowvet test fixture. The test harness
// analyzes it under the import path of a simulation package, so every
// seeded violation below must be flagged.
package determinism

import (
	"math/rand" // want:determinism
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want:determinism
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want:determinism
}

func globalRand() int {
	rand.Seed(42)     // want:determinism
	return rand.Int() // want:determinism
}

func reduceUnordered(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v // want:determinism
	}
	return total
}

func appendUnordered(m map[int]int) []int {
	var order []int
	for k := range m {
		order = append(order, k) // want:determinism
	}
	return order
}

type state struct{ last int }

func fieldWrite(s *state, m map[int]int) {
	for k := range m {
		s.last = k // want:determinism
	}
}

func earlyReturn(m map[int]int) int {
	for k := range m {
		return k // want:determinism
	}
	return -1
}
