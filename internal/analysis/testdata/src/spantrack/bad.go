// Package spantrack is a shadowvet test fixture for the request-lifecycle
// span tracker. The test harness analyzes it under the import path
// shadow/internal/obs/span, so every span-shaped antipattern seeded below
// must be flagged: span timestamps, stall attribution, and lane assignment
// all run inside the simulation loop and must never observe wall time,
// unseeded entropy, or map iteration order.
package spantrack

import (
	"math/rand" // want:determinism
	"time"
)

// Tick mirrors timing.Tick (picoseconds of simulated time) so the fixture
// stays stdlib-only.
type Tick int64

type badSpan struct {
	enqueue Tick
	cas     Tick
}

// Stamping a span milestone with the wall clock instead of the simulated
// tick makes every blame report differ run to run.
func (sp *badSpan) noteCAS() {
	sp.cas = Tick(time.Now().UnixNano()) // want:determinism
}

// Measuring span residency in wall time couples the stall attribution to
// host load rather than DRAM timing.
func (sp *badSpan) residentWall(start time.Time) float64 {
	return time.Since(start).Seconds() // want:determinism
}

// Lane assignment must be first-fit by enqueue tick; drawing a lane from the
// global math/rand source reshuffles the Perfetto rows every run.
func badLane(lanes int) int {
	return rand.Intn(lanes) // want:determinism
}

// Summing per-cause stall out of a map makes the conservation check's
// floating traversal order visible; causes live in a fixed-size array
// indexed by the Cause enum for exactly this reason.
func badStallTotal(stall map[string]Tick) Tick {
	var total Tick
	for _, v := range stall {
		total += v // want:determinism
	}
	return total
}
