package spantrack

type goodSpan struct {
	enqueue Tick
	cas     Tick
	stall   [4]Tick
}

// Milestones come from the simulated clock the controller passes in: pure
// tick arithmetic, reproducible bit for bit.
func (sp *goodSpan) noteCAS(now Tick) {
	if sp.cas == 0 {
		sp.cas = now
	}
}

// Per-cause stall lives in a fixed-size array indexed by the cause enum, so
// the conservation sum visits causes in declaration order every run.
func (sp *goodSpan) stallTotal() Tick {
	var total Tick
	for _, v := range sp.stall {
		total += v
	}
	return total
}

// First-fit lane assignment keyed by enqueue tick is the sanctioned pattern:
// the lane a request lands on is a pure function of simulated time.
func goodLane(laneFree []Tick, enqueue Tick) int {
	for i, free := range laneFree {
		if free <= enqueue {
			return i
		}
	}
	return 0
}

// Keyed writes are order-independent: folding spans into per-bank buckets is
// deterministic regardless of map iteration order.
func bucketByBank(spans map[int]goodSpan) map[int]Tick {
	out := make(map[int]Tick, len(spans))
	for bank, sp := range spans {
		out[bank] = sp.stallTotal()
	}
	return out
}
