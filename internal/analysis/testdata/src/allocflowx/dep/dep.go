// Package dep is the dependency half of the cross-package allocflow
// fixture: it is not a hot package by itself, but sim's tick reaches it.
package dep

func Grow(xs []int) []int {
	return append(xs, 1) // want:allocflow
}

// Shrink is not reachable from any root; its allocation is fine.
func Shrink(xs []int) []int {
	out := make([]int, 0, len(xs))
	return out
}
