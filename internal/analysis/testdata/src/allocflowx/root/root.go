// Package sim is the root half of the cross-package allocflow fixture:
// tick's hot tree crosses a package boundary into dep, and the finding
// must land in dep's file with the full blame chain.
package sim

import dep "shadow/internal/analysis/testdata/src/allocflowx/dep"

type runner struct{ buf []int }

func (r *runner) tick() {
	r.buf = dep.Grow(r.buf)
}
