package locks

import "sync"

func pointerParam(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func lockUnlock(g *guarded) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func lockDefer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func freshZero() *sync.Mutex {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
	return &mu
}

func rwRead(mu *sync.RWMutex) int {
	mu.RLock()
	defer mu.RUnlock()
	return 1
}

func waitGroupByPointer(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// The goroutine body locks and unlocks within its own literal: both sides
// live in the same scope, so the pairing check is satisfied.
func pairedInLiteral(g *guarded) {
	go func() {
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}()
}
