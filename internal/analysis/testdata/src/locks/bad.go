// Package locks is a shadowvet test fixture: sync primitives copied by
// value. (Lock/Unlock pairing moved to the lockflow fixture.)
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func use(*sync.Mutex) {}

func byValueParam(mu sync.Mutex) {} // want:locks

func byValueStruct(g guarded) int { // want:locks
	return g.n
}

func byValueResult() (wg sync.WaitGroup) { // want:locks
	return
}

func (g guarded) valueReceiver() int { // want:locks
	return g.n
}

func copyAssign() {
	var mu sync.Mutex
	mu2 := mu // want:locks
	use(&mu2)
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want:locks
		total += g.n
	}
	return total
}
