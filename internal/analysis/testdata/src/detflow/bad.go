// Package sim masquerades as shadow/internal/sim for the call-site side
// of detflow: the test overrides the pass's package path, while sources
// keep their real (unrestricted) type-checker path — so helpers in this
// very package play the role of the unrestricted utility packages whose
// nondeterminism must not leak into the simulator.
package sim

import (
	"math/rand"
	"time"
)

// wallClockHelper plays the unrestricted utility: its body reads the wall
// clock, so every caller inside the restricted set is flagged at the call
// site.
func wallClockHelper() time.Time { return time.Now() }

func inner() int { return rand.Intn(8) }

func outer() int {
	return inner() // want:detflow
}

func tickTime() {
	_ = wallClockHelper() // want:detflow
}

func step() {
	_ = outer() // want:detflow
}

// mapFold reduces a map in iteration order — an order-sensitive source.
func mapFold(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func fold(m map[int]int) {
	_ = mapFold(m) // want:detflow
}

// A multi-ready select directly in the restricted package is flagged at
// the select itself.
func waitTwo(a, b chan int) {
	select { // want:detflow
	case <-a:
	case <-b:
	}
}

// selectHelper's select is flagged directly (this package is restricted
// pass-wise) and taints its callers as a source.
func selectHelper(a, b chan int) int {
	select { // want:detflow
	case <-a:
		return 1
	case <-b:
		return 2
	}
}

func drainPair(a, b chan int) {
	_ = selectHelper(a, b) // want:detflow
}
