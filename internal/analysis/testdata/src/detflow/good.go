package sim

// Deterministic helpers: calls into these carry no taint.
func pureHelper(x int) int { return x * 2 }

func calm() int {
	return pureHelper(3)
}

// A single-case select with a default is a deterministic poll.
func tryRecv(c chan int) (int, bool) {
	select {
	case v := <-c:
		return v, true
	default:
		return 0, false
	}
}

func poll(c chan int) {
	_, _ = tryRecv(c)
}

// Per-key map writes are order-independent, so copyMap is not a source.
func copyMap(src map[int]int) map[int]int {
	out := make(map[int]int, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func use(src map[int]int) map[int]int {
	return copyMap(src)
}

// Calls through function values are optimistic, matching the per-package
// determinism scan.
func apply(f func() int) int {
	return f()
}
