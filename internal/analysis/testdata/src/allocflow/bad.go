// Package sim masquerades as the real simulator package: allocflow
// matches hot-path roots by declaring-package name plus receiver and
// method, so this runner.tick stands in for shadow/internal/sim's and
// everything it reaches must be allocation-free.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

type pair struct{ a, b int }

type stepper interface{ step() }

type fastStep struct{}

func (fastStep) step() {}

type slowStep struct{}

func (slowStep) step() {
	_ = make([]int, 1) // want:allocflow
}

type runner struct {
	mu      sync.Mutex
	buf     []int
	raw     []byte
	m       map[string]int
	label   string
	note    string
	total   int
	ch      rune
	cb      func()
	s       stepper
	ptr     *pair
	scratch *pair
}

var obsSink func()

var globalCount int

// pad's own body is clean; calling it without a spread still materializes
// the variadic argument slice at the call site.
func pad(xs ...int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
		n += xs[i]
	}
	return n
}

// sink's interface parameter forces callers to box non-pointer arguments.
func sink(v any) {
	if v == nil {
		globalCount++
	}
}

// observe stores the callback without invoking it; the literal still gets
// a conservative lit edge from its encloser, so its body is scanned hot.
func observe(f func()) {
	obsSink = f
}

func (r *runner) tick() {
	// Clean constructs first: value literals, slice index writes,
	// whitelisted external calls, and guarded sections do not allocate.
	p2 := pair{7, 8}
	var arr [4]int
	arr[0] = p2.a
	if len(r.buf) > 0 {
		r.buf[0] = arr[0]
	}
	_ = math.Abs(-1)
	if r.total < 0 {
		panic(fmt.Sprintf("bad total %d", r.total)) // exempt: crash path
	}
	r.mu.Lock()
	r.total++
	r.mu.Unlock()
	_ = pad()
	sink(r.ptr)
	sink(nil)
	observe(func() { globalCount = 0 })
	r.drain()
	r.s.step()
	r.mid()

	// Every allocation category, one per line.
	go r.drain()        // want:allocflow
	r.ptr = &pair{1, 2} // want:allocflow
	s := []int{1, 2, 3} // want:allocflow
	_ = s
	m := map[string]int{} // want:allocflow
	_ = m
	r.label = r.label + "x" // want:allocflow
	r.note += "y"           // want:allocflow
	r.m["k"] = 1            // want:allocflow
	r.buf = make([]int, 8)  // want:allocflow
	q := new(pair)          // want:allocflow
	_ = q
	r.buf = append(r.buf, 1)      // want:allocflow
	_ = string(r.raw)             // want:allocflow
	_ = string(r.ch)              // want:allocflow
	fmt.Println(r.label)          // want:allocflow
	r.cb()                        // want:allocflow
	sort.Ints(r.buf)              // want:allocflow
	r.total = pad(1, 2)           // want:allocflow
	sink(r.total)                 // want:allocflow
	observe(func() { r.total++ }) // want:allocflow
}

// drain is hot through both the plain call and the go statement; its body
// stays clean.
func (r *runner) drain() {
	for i := range r.buf {
		r.buf[i] = 0
	}
}

// mid and deep prove the interprocedural reach: the finding lands in deep
// with the tick → mid → deep chain.
func (r *runner) mid() {
	r.deep()
}

func (r *runner) deep() {
	r.scratch = new(pair) // want:allocflow
}
