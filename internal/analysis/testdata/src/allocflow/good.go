package sim

import "fmt"

// Cold code — nothing here is reachable from the registered roots, so the
// very constructs tick may not use are fine.
func (r *runner) Reset() {
	r.buf = append(r.buf[:0], 1, 2, 3)
	r.m = map[string]int{}
	r.label = fmt.Sprintf("runner-%d", r.total)
	r.raw = []byte(r.label)
	go r.drain()
	r.cb = func() { r.total = 0 }
}

// Report builds output for humans; it allocates freely off the hot path.
func Report(rs []*runner) []string {
	var out []string
	for _, r := range rs {
		out = append(out, r.label+"\n")
	}
	return out
}
