// Package goroleak is a shadowvet test fixture: goroutines whose
// termination is invisible at the spawn site.
package goroleak

import "sync"

func compute() {}

func noSignalNamed() {
	go compute() // want:goroleak
}

func plainBody() {
	go func() { // want:goroleak
		compute()
	}()
}

func spinsForever() {
	go func() { // want:goroleak
		for {
			compute()
		}
	}()
}

func doneOnOneBranchOnly(wg *sync.WaitGroup, flip bool) {
	wg.Add(1)
	go func() { // want:goroleak
		if flip {
			wg.Done()
		}
	}()
}
