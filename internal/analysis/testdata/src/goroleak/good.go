package goroleak

import (
	"context"
	"sync"
)

func workerCtx(ctx context.Context)   {}
func workerChan(stop <-chan struct{}) {}

// Named functions pass when an argument can carry the stop signal.
func namedWithContext(ctx context.Context) {
	go workerCtx(ctx)
}

func namedWithChannel(stop chan struct{}) {
	go workerChan(stop)
}

func deferredDone(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute()
	}()
	wg.Wait()
}

// Done proven on every path by the flow analysis, not just deferred.
func doneOnAllPaths(wg *sync.WaitGroup, flip bool) {
	wg.Add(1)
	go func() {
		if flip {
			compute()
			wg.Done()
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

func stopChannelLoop(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case n := <-work:
				_ = n
			}
		}
	}()
}

func rangeOverChannel(work chan int) {
	go func() {
		for n := range work {
			_ = n
		}
	}()
}

// Sending on completion makes the lifetime observable from outside.
func publishesCompletion(done chan struct{}) {
	go func() {
		compute()
		done <- struct{}{}
	}()
}

// A waiver states the process-lifetime contract explicitly.
func processLifetime() {
	//shadowvet:ignore goroleak -- deliberate process-lifetime worker; torn down only at exit
	go func() {
		for {
			compute()
		}
	}()
}
