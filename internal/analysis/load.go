package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked compilation unit ready for analysis. A
// directory yields up to two: the package proper (including in-package
// _test.go files) and, when present, the external foo_test package.
type Package struct {
	Path  string // import path; external test packages share the directory's
	Name  string // package clause name (may carry a _test suffix)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints. Analysis still runs on
	// the partial information; the driver surfaces these as warnings.
	TypeErrors []error
}

// A Loader parses and type-checks packages of the enclosing module using
// only the standard library (go/parser + go/types with the source importer,
// so no compiled export data is needed).
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string
	imp        types.Importer
}

// NewLoader locates the enclosing module from dir (walking up to the
// nearest go.mod) and returns a loader for it. The source importer resolves
// both standard-library and module-local imports; it caches aggressively,
// so one loader should be reused across packages.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module clause in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleRoot: root,
		imp:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// ImportPath maps a directory inside the module to its import path.
func (l *Loader) ImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks every .go file directly in dir, grouped by
// package clause. Hard parse failures abort; type errors are recorded on the
// package and analysis proceeds with partial information.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.ImportPath(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		files := byName[name]
		sort.Slice(files, func(i, j int) bool {
			return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
		})
		pkgs = append(pkgs, l.check(path, name, files))
	}
	return pkgs, nil
}

func (l *Loader) check(path, name string, files []*ast.File) *Package {
	pkg := &Package{
		Path:  path,
		Name:  name,
		Fset:  l.Fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The external test package needs a distinct type-checker path so it
	// can import the package under test.
	checkPath := path
	if strings.HasSuffix(name, "_test") && !strings.HasSuffix(path, "_test") {
		checkPath = path + ".test"
	}
	tpkg, err := conf.Check(checkPath, l.Fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg
}

// ExpandPatterns resolves go-style package patterns ("./...",
// "./internal/...", plain directories) to the set of directories containing
// Go files, skipping testdata, vendor, and hidden or underscore directories.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if skipDir(d.Name()) && p != root {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") && !strings.HasPrefix(d.Name(), "_") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" || name == "node_modules" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}
