package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// restrictedPkgs are the simulation packages where every bit of entropy and
// every iteration order must be reproducible: the experiment tables are
// regenerated from these, so a wall-clock read or a map-order dependence
// silently corrupts results. The only sanctioned entropy source is
// shadow/internal/rng (seeded, deterministic).
var restrictedPkgs = map[string]bool{
	"shadow/internal/sim":      true,
	"shadow/internal/dram":     true,
	"shadow/internal/memctrl":  true,
	"shadow/internal/shadow":   true,
	"shadow/internal/mitigate": true,
	"shadow/internal/trace":    true,
	"shadow/internal/exp":      true,
	// The observability layer records from inside the simulation loop, so it
	// is held to the same standard: instruments are keyed to simulated ticks
	// and its wall-clock consumers (the progress heartbeat and the live
	// inspector) take the clock as an injected func from the cmd layer.
	"shadow/internal/obs": true,
	// The flight recorder records from the Recorder's emit path and its
	// watchdogs run at the progress cadence; both must stay reproducible so
	// same-seed runs produce byte-identical flight dumps.
	"shadow/internal/obs/flight": true,
	// The span tracker stamps request milestones and attributes stall causes
	// on the memory controller's critical path; a wall-clock read or an
	// order-dependent fold there breaks the bit-identical-with-probes
	// guarantee and the stall-conservation invariant.
	"shadow/internal/obs/span": true,
	// The fleet aggregator merges per-worker metrics into exposition and
	// JSON payloads that must render byte-identically from identical state
	// (the dashboard is diffed in tests): the collector's wall clock is
	// injected from the cmd layer and every map fold is sorted.
	"shadow/internal/obs/fleet": true,
}

// wallClockFuncs are time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Determinism flags nondeterminism sources inside the simulation packages:
// wall-clock reads (time.Now/Since/Until), any use of global math/rand
// (including rand.Seed), and range statements over maps whose body is
// order-sensitive — appending to a slice, assigning to variables declared
// outside the loop, or returning early.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, math/rand, and order-sensitive map iteration " +
		"in the simulation packages (internal/{sim,dram,memctrl,shadow,mitigate,trace,exp,obs,obs/span,obs/flight})",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !restrictedPkgs[pass.PkgPath] {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a simulation package; use shadow/internal/rng (seeded, deterministic)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if _, isFn := obj.(*types.Func); isFn && wallClockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "wall-clock read time.%s in a simulation package; simulated time must come from timing.Tick", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					what := "use of " + obj.Pkg().Path() + "." + obj.Name()
					if obj.Name() == "Seed" {
						what = "seeding the global math/rand source"
					}
					pass.Reportf(n.Pos(), "%s in a simulation package; use shadow/internal/rng (seeded, deterministic)", what)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange reports a range over a map whose body makes the result
// depend on iteration order.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "map iteration order is nondeterministic: %s inside range over %s; iterate sorted keys or restructure", what, typeString(t))
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			report(n.Pos(), "early return")
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				// New variables are loop-local; their RHS is handled when used.
				return true
			}
			for _, lhs := range n.Lhs {
				if what, pos, bad := orderSensitiveLHS(pass.Info, rng, lhs); bad {
					report(pos, what)
				}
			}
		case *ast.IncDecStmt:
			if what, pos, bad := orderSensitiveLHS(pass.Info, rng, n.X); bad {
				report(pos, what)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if obj, ok := pass.Info.Uses[id]; ok {
					if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
						report(n.Pos(), "append")
					}
				}
			}
		}
		return true
	})
}

// orderSensitiveLHS decides whether assigning through lhs inside the map
// range makes the result order-dependent. Writes to plain variables or
// struct fields declared outside the loop are order-sensitive (reductions,
// last-writer-wins); writes keyed by an index expression (out[k] = v) are
// per-key and therefore order-independent, so they pass. It takes a bare
// types.Info (not a Pass) so detflow's Prepare can share it.
func orderSensitiveLHS(info *types.Info, rng *ast.RangeStmt, lhs ast.Expr) (string, token.Pos, bool) {
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return "", 0, false
		}
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil || !declaredOutside(obj, rng) {
			return "", 0, false
		}
		return "assignment to outer variable " + e.Name, e.Pos(), true
	case *ast.SelectorExpr:
		root := rootIdent(e.X)
		if root == nil {
			return "", 0, false
		}
		obj := info.Uses[root]
		if obj == nil || !declaredOutside(obj, rng) {
			return "", 0, false
		}
		return "assignment to field " + root.Name + "." + e.Sel.Name + " of outer value", e.Pos(), true
	case *ast.IndexExpr:
		// Keyed writes (m[k] = v) are order-independent.
		return "", 0, false
	case *ast.StarExpr:
		root := rootIdent(e.X)
		if root == nil {
			return "", 0, false
		}
		obj := info.Uses[root]
		if obj == nil || !declaredOutside(obj, rng) {
			return "", 0, false
		}
		return "assignment through outer pointer " + root.Name, e.Pos(), true
	}
	return "", 0, false
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func typeString(t types.Type) string {
	s := t.String()
	// Strip module path noise for readable diagnostics.
	s = strings.ReplaceAll(s, "shadow/internal/", "")
	return s
}
