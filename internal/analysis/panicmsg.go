package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicMsg enforces the repository's panic-message convention: every panic
// must carry a message prefixed with the package name, "<pkg>: ...", so a
// crash in a 16-channel simulation immediately names the subsystem at
// fault. Accepted argument shapes: a string constant with the prefix, a
// concatenation whose leftmost operand has it, or fmt.Sprintf/fmt.Errorf
// whose format string has it.
var PanicMsg = &Analyzer{
	Name: "panicmsg",
	Doc:  `require every panic message to carry the "<pkg>: " prefix (e.g. panic("dram: ...") in package dram)`,
	Run:  runPanicMsg,
}

func runPanicMsg(pass *Pass) {
	prefix := strings.TrimSuffix(pass.PkgName, "_test") + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := pass.Info.Uses[id]; ok {
				if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
					return true // shadowed panic
				}
			}
			if !panicArgOK(pass, call.Args[0], prefix) {
				pass.Reportf(call.Pos(), "panic message must carry the %q prefix (got %s)", prefix, describeExpr(call.Args[0]))
			}
			return true
		})
	}
}

// panicArgOK reports whether the panic argument resolves to a message with
// the required package prefix.
func panicArgOK(pass *Pass, arg ast.Expr, prefix string) bool {
	// Any string constant (literal, named const, or constant concatenation)
	// is checked by value.
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	switch e := arg.(type) {
	case *ast.ParenExpr:
		return panicArgOK(pass, e.X, prefix)
	case *ast.BinaryExpr:
		// "pkg: bad thing " + detail — the leftmost operand carries the prefix.
		return panicArgOK(pass, e.X, prefix)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "fmt" &&
				(obj.Name() == "Sprintf" || obj.Name() == "Errorf" || obj.Name() == "Sprint") &&
				len(e.Args) > 0 {
				return panicArgOK(pass, e.Args[0], prefix)
			}
		}
	}
	return false
}

func describeExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok {
				return x.Name + "." + sel.Sel.Name + "(...)"
			}
		}
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name + "(...)"
		}
	}
	return "a non-constant expression"
}
