package analysis

import (
	"path/filepath"
	"testing"
)

func TestLockFlowFixtures(t *testing.T) {
	checkFixture(t, LockFlow, loadFixture(t, "lockflow", ""))
}

// TestLocksWaiverAlias: a //shadowvet:ignore locks directive written
// against the deprecated pairing check must suppress the lockflow
// successor's finding (waived.go) and count as used, so migrated
// waivers are not judged stale even with hygiene on and both analyzers
// running.
func TestLocksWaiverAlias(t *testing.T) {
	pkg := loadFixture(t, "lockflow", "")
	diags := Run([]*Package{pkg}, []*Analyzer{Locks, LockFlow}, Options{CheckWaivers: true})
	if len(diags) == 0 {
		t.Fatal("bad.go should still produce lockflow findings")
	}
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "waived.go" {
			t.Errorf("the locks-named waiver must suppress lockflow findings in waived.go: %v", d)
		}
		if d.Analyzer == WaiverAnalyzerName {
			t.Errorf("a waiver used through the locks→lockflow alias is not stale: %v", d)
		}
	}
}

// TestWaiverAliasIsOneDirectional: an explicit lockflow directive does
// not reach back to suppress locks findings.
func TestWaiverAliasIsOneDirectional(t *testing.T) {
	if waiverCovers("lockflow", "locks") {
		t.Error("lockflow directive must not suppress locks findings")
	}
	if !waiverCovers("locks", "lockflow") {
		t.Error("locks directive must suppress lockflow findings")
	}
}
