package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shadow/internal/analysis/callgraph"
)

// allocRoots registers the hot-path entry points whose reachable call trees
// must be allocation-free: the perf contract of the event-driven scheduler
// (PR 5) is 0 allocs/op in steady state, measured dynamically by
// internal/sim/alloc_test.go and proved statically here. Matching is by
// declaring-package name plus receiver and method (the sharedflow
// convention), restricted to module-local packages, so fixtures can
// masquerade with a package clause.
var allocRoots = map[string]string{
	// The simulator event loop: retire, issue, drain, advance.
	"sim.runner.tick": "the per-tick simulator event loop",
	// The memory controller's scheduling step, called from tick until quiescent.
	"memctrl.Controller.Step": "the controller scheduling step",
	// The tick-skipping event wheel (PR 10). All of these already sit inside
	// tick's call tree, but they are registered as roots of their own so the
	// zero-alloc contract names them directly and survives refactors of the
	// tick dispatch.
	"sim.runner.advance":               "the event-wheel time advance",
	"sim.runner.stepSelected":          "the event-wheel channel step round",
	"memctrl.Controller.NextReadyAt":   "the channel readiness lower bound",
	"dram.Device.NextDeadline":         "the device deadline scan",
	"dram.Bank.NextDeadline":           "the bank deadline probe",
	"mitigate.BlockHammer.NextEventAt": "the BlockHammer epoch-boundary bound",
	// The indexed min-heap fronting the per-bank readiness cache; every op
	// runs inside Step's selection pass.
	"minq.Queue.Set":      "the readiness-cache heap update",
	"minq.Queue.Remove":   "the readiness-cache heap removal",
	"minq.Queue.Min":      "the readiness-cache minimum probe",
	"minq.Queue.Pop":      "the readiness-cache pop",
	"minq.Queue.Key":      "the readiness-cache key lookup",
	"minq.Queue.Contains": "the readiness-cache membership probe",
	// The flight recorder's ring write, teed from Recorder.emit on every
	// DRAM command in the always-on telemetry configuration.
	"flight.Ring.Record": "the flight-ring event write",
	// The span tracker's request-milestone and stall-attribution calls, all
	// on the controller's critical path.
	"span.Tracker.Start":        "span request start",
	"span.Tracker.Complete":     "span request completion",
	"span.Tracker.SetCause":     "span stall-cause update",
	"span.Tracker.SetAllCauses": "span stall-cause broadcast",
	"span.Tracker.NoteBusy":     "span busy-window note",
	"span.Tracker.NoteAllBusy":  "span busy-window broadcast",
	"span.Tracker.BusyCause":    "span busy-cause lookup",
}

// allocSafeExternalPkgs are packages outside the analyzed tree whose
// functions are known not to allocate on any path the hot tree uses.
var allocSafeExternalPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allocSafeExternalFuncs are individually whitelisted external functions
// (by types.Func.FullName) known not to allocate in steady state.
var allocSafeExternalFuncs = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).Unlock":    true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RLock":   true,
	"(*sync.RWMutex).RUnlock": true,
}

// allocFacts is the Prepare result: the module call graph plus the
// hot-reachable function set with BFS parents for blame chains.
type allocFacts struct {
	graph *callgraph.Graph
	// hot maps every function reachable from a registered root to its BFS
	// parent (nil for the roots themselves).
	hot map[*callgraph.Node]*callgraph.Node
	// rootOf maps each hot node to the root whose tree first reached it.
	rootOf map[*callgraph.Node]*callgraph.Node
}

// AllocFlow statically pins the zero-allocation contract of the scheduler
// hot path: every function reachable from a registered root must be free of
// constructs that allocate (or that the analyzer cannot prove allocation-
// free). The dynamic side of the same contract is
// internal/sim/alloc_test.go, which measures 0 allocs/op on warmed-up
// runs; allocflow proves it for every configuration and gives file:line
// blame, at the cost of flagging warm-slab and cold-path code that needs a
// waiver explaining why the dynamic gate stays green.
var AllocFlow = &Analyzer{
	Name: "allocflow",
	Doc: "require the call trees of the hot-path roots (sim.runner.tick, memctrl.Controller.Step, " +
		"minq.Queue ops, flight.Ring.Record, span.Tracker hot calls) to be allocation-free: " +
		"flags make/new, append, map writes, string concatenation/conversion, escaping composite " +
		"literals, interface boxing, closure captures, variadic and fmt calls, go statements, and " +
		"calls the interprocedural analysis cannot see through; constructs inside panic(...) " +
		"arguments are exempt, since a panicking run has already left the steady-state contract",
	Prepare: prepareAllocFlow,
	Run:     runAllocFlow,
}

func prepareAllocFlow(m *Module) any {
	g := m.CallGraph()
	facts := &allocFacts{
		graph:  g,
		hot:    map[*callgraph.Node]*callgraph.Node{},
		rootOf: map[*callgraph.Node]*callgraph.Node{},
	}
	// Roots in sorted node order, then BFS: deterministic parents.
	var frontier []*callgraph.Node
	for _, n := range g.Nodes() {
		if n.Func == nil || n.Body == nil {
			continue
		}
		if short, ok := shortFuncName(n.Func); ok && allocRoots[short] != "" {
			facts.hot[n] = nil
			facts.rootOf[n] = n
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []*callgraph.Node
		for _, n := range frontier {
			for _, e := range n.Out {
				callee := e.Callee
				// Unknown and body-less external callees are handled at the
				// call site (runAllocFlow); only functions whose source we
				// have join the hot set.
				if callee.Body == nil {
					continue
				}
				if _, seen := facts.hot[callee]; seen {
					continue
				}
				facts.hot[callee] = n
				facts.rootOf[callee] = facts.rootOf[n]
				next = append(next, callee)
			}
		}
		frontier = next
	}
	return facts
}

// shortFuncName renders a module-local function as pkgName.Func or
// pkgName.Recv.Method; ok is false for functions outside the shadow module.
func shortFuncName(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil || !strings.HasPrefix(pkg.Path(), "shadow/") {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		return pkg.Name() + "." + named.Obj().Name() + "." + fn.Name(), true
	}
	return pkg.Name() + "." + fn.Name(), true
}

// nodeLabel renders a node for blame chains: the short name when available,
// otherwise the ID with module-path noise stripped.
func nodeLabel(n *callgraph.Node) string {
	if n.Func != nil {
		if short, ok := shortFuncName(n.Func); ok {
			return short
		}
		return n.Func.FullName()
	}
	return strings.ReplaceAll(n.ID, "shadow/internal/", "")
}

// hotChain renders "root → … → fn" for a hot node, capped so messages stay
// readable on deep trees.
func (f *allocFacts) hotChain(n *callgraph.Node) string {
	var rev []string
	for cur := n; cur != nil; cur = f.hot[cur] {
		rev = append(rev, nodeLabel(cur))
		if f.hot[cur] == nil {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if len(rev) > 5 {
		rev = append(rev[:2], append([]string{"…"}, rev[len(rev)-2:]...)...)
	}
	return strings.Join(rev, " → ")
}

func runAllocFlow(pass *Pass) {
	facts, ok := pass.Facts.(*allocFacts)
	if !ok {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if node := facts.graph.NodeFor(n); node != nil {
					if _, hot := facts.hot[node]; hot {
						scanHotBody(pass, facts, node)
					}
				}
				// Descend either way: nested literals are their own nodes
				// and are scanned when they are hot themselves.
				return true
			}
			return true
		})
	}
}

// scanHotBody reports every allocation-relevant construct directly in one
// hot function's body. Nested function literals are their own nodes: their
// creation is checked here (closure capture), their bodies when they are
// hot themselves — which EdgeLit reachability guarantees whenever the
// literal can run as part of the hot call.
func scanHotBody(pass *Pass, facts *allocFacts, node *callgraph.Node) {
	chain := facts.hotChain(node)
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		pass.Reportf(pos, "%s on the allocation-free hot path (%s)", msg, chain)
	}
	body := node.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != node.Decl {
				checkClosureCapture(pass, node, n, report)
				return false // the literal body belongs to its own node
			}
		case *ast.GoStmt:
			report(n.Pos(), "go statement starts a goroutine (stack allocation)")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(lit.Pos(), "composite literal taken by address may escape to the heap")
					// Still scan inner expressions (nested literals, calls).
				}
			}
		case *ast.CompositeLit:
			checkCompositeLit(pass, n, report)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.TypeOf(n.X)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.Info.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates")
			}
			for _, lhs := range n.Lhs {
				checkMapWrite(pass, lhs, report)
			}
		case *ast.IncDecStmt:
			checkMapWrite(pass, n.X, report)
		case *ast.CallExpr:
			if isPanicCall(pass, n) {
				// A panicking execution has already abandoned the steady-
				// state contract: the message formatting inside panic(...)
				// never runs on a green run, so its allocations are exempt.
				return false
			}
			checkHotCall(pass, facts, n, report)
		}
		return true
	})
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// checkCompositeLit flags slice and map composite literals (their backing
// storage is heap-allocated unless escape analysis can stack them, which
// the hot path must not rely on). Value struct and array literals are
// stack copies and pass; the escaping &T{...} form is handled at the
// UnaryExpr.
func checkCompositeLit(pass *Pass, lit *ast.CompositeLit, report func(token.Pos, string, ...any)) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(lit.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		report(lit.Pos(), "map literal allocates")
	}
}

// checkMapWrite flags assignments through a map index: a map write may
// trigger bucket growth, and maps have no place on the hot path at all.
func checkMapWrite(pass *Pass, lhs ast.Expr, report func(token.Pos, string, ...any)) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	t := pass.Info.TypeOf(idx.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		report(idx.Pos(), "map write may grow the map")
	}
}

// checkHotCall classifies one call on the hot path: builtins that allocate,
// allocating string conversions, fmt calls, unresolvable or external
// callees, variadic argument slices, and interface boxing of arguments.
func checkHotCall(pass *Pass, facts *allocFacts, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// Conversions: string(bytes), []byte(s), []rune(s), string(r) all copy.
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := pass.Info.TypeOf(call.Args[0])
		if allocatingConversion(from, to) {
			report(call.Pos(), "string conversion %s allocates", types.ExprString(fun))
		}
		return
	}
	// fmt.* calls allocate their formatting state (and box every operand).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := pass.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s call allocates", obj.Name())
			return
		}
	}
	// Callee resolution: dynamic calls and external bodies are opaque.
	callees := facts.graph.CalleesFor(call)
	for _, callee := range callees {
		if callee == facts.graph.Unknown {
			report(call.Pos(), "call through a function value cannot be proven allocation-free")
			return
		}
	}
	for _, callee := range callees {
		if callee.Body != nil || callee.Func == nil {
			continue
		}
		if _, local := shortFuncName(callee.Func); local {
			continue // module-local but body-less (unloaded subset): trust the full-tree run
		}
		pkg := callee.Func.Pkg()
		if pkg != nil && allocSafeExternalPkgs[pkg.Path()] {
			continue
		}
		if allocSafeExternalFuncs[callee.Func.FullName()] {
			continue
		}
		report(call.Pos(), "call to %s outside the analyzed tree cannot be proven allocation-free", callee.Func.FullName())
		return
	}
	// Variadic calls materialize their argument slice.
	if sig := callSignature(pass, fun); sig != nil {
		if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
			report(call.Pos(), "variadic call allocates its argument slice")
		}
		checkBoxing(pass, call, sig, report)
	}
}

// callSignature returns the called function's signature, nil for builtins
// and conversions.
func callSignature(pass *Pass, fun ast.Expr) *types.Signature {
	t := pass.Info.TypeOf(fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// checkBoxing flags arguments converted to interface parameters when the
// concrete value is not pointer-shaped: storing it in the interface
// allocates. Pointers, channels, maps, funcs, and unsafe pointers are
// stored directly and pass.
func checkBoxing(pass *Pass, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string, ...any)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos:
			last := params.At(params.Len() - 1).Type()
			slice, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case sig.Variadic():
			continue // spread: no per-element conversion
		default:
			continue
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || isPointerShaped(at) {
			continue
		}
		if _, alreadyIface := at.Underlying().(*types.Interface); alreadyIface {
			continue
		}
		if bl, ok := at.(*types.Basic); ok && bl.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "interface boxing of %s argument allocates", typeString(at))
	}
}

// isPointerShaped reports whether values of t fit an interface word without
// allocation.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// allocatingConversion reports string<->byte/rune-slice (and rune-to-
// string) conversions, all of which copy to the heap.
func allocatingConversion(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	fromStr, toStr := isStringType(from), isStringType(to)
	return (fromStr && isByteOrRuneSlice(to)) ||
		(toStr && isByteOrRuneSlice(from)) ||
		(toStr && isRuneOrIntType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isRuneOrIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkClosureCapture flags function literals that capture variables of the
// enclosing function: the closure header escapes to the heap the moment the
// literal does. A literal with no free variables compiles to a static
// function value and passes.
func checkClosureCapture(pass *Pass, encloser *callgraph.Node, lit *ast.FuncLit, report func(token.Pos, string, ...any)) {
	enclStart, enclEnd := encloser.Decl.Pos(), encloser.Decl.End()
	var captured []string
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		pos := obj.Pos()
		if pos >= lit.Pos() && pos < lit.End() {
			return true // the literal's own parameter or local
		}
		if pos < enclStart || pos >= enclEnd {
			return true // package-level (or other-function): no capture
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		sort.Strings(captured)
		report(lit.Pos(), "closure capture of %s allocates", strings.Join(captured, ", "))
	}
}
