package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestSuiteMeta asserts the registry invariants the framework relies on:
// unique non-empty names, non-empty docs, a Run hook, and no analyzer
// squatting on the reserved waiver-hygiene name.
func TestSuiteMeta(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" {
			t.Error("analyzer with empty name")
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %s has no doc (required for -list)", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if a.Name == WaiverAnalyzerName {
			t.Errorf("%q is reserved for waiver-hygiene findings", WaiverAnalyzerName)
		}
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t,") {
			t.Errorf("analyzer name %q must be lowercase with no separators (it is used in ignore directives)", a.Name)
		}
	}
}

// TestFixtureMarkersRegistered walks every fixture for want:<analyzer>
// markers and requires each named analyzer to be registered in All() — a
// renamed analyzer cannot silently orphan its fixtures.
func TestFixtureMarkersRegistered(t *testing.T) {
	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
	}
	marker := regexp.MustCompile(`want:([a-z]+)`)
	fixtures := 0
	err := filepath.WalkDir(filepath.Join("testdata", "src"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fixtures++
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range marker.FindAllStringSubmatch(string(data), -1) {
			if !registered[m[1]] {
				t.Errorf("%s references analyzer %q, which is not in All()", path, m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixtures == 0 {
		t.Fatal("no fixture files found under testdata/src")
	}
}

// TestEveryAnalyzerHasFixture enforces the inverse: each registered
// analyzer keeps at least one fixture marker, so every check stays covered
// by a negative test.
func TestEveryAnalyzerHasFixture(t *testing.T) {
	used := map[string]bool{}
	marker := regexp.MustCompile(`want:([a-z]+)`)
	err := filepath.WalkDir(filepath.Join("testdata", "src"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range marker.FindAllStringSubmatch(string(data), -1) {
			used[m[1]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		if !used[a.Name] {
			t.Errorf("analyzer %s has no want:%s fixture marker under testdata/src", a.Name, a.Name)
		}
	}
}
