package analysis

import "testing"

func TestSharedFlowFixtures(t *testing.T) {
	checkFixture(t, SharedFlow, loadFixture(t, "sharedflow", ""))
}
