// Package analysis is shadowvet's analyzer framework: a dependency-free
// (standard library only) reimplementation of the go/analysis idea, sized
// for this repository. Analyzers inspect one type-checked package at a time
// and report diagnostics; cmd/shadowvet drives them over the tree.
//
// The suite exists because every figure of the paper is regenerated from a
// deterministic cycle-level simulation: a single hidden source of
// nondeterminism (a wall-clock read, global math/rand, an order-dependent
// map iteration) silently corrupts every table. The analyzers turn the
// repository's determinism and DRAM-protocol conventions into machine
// checks that run in CI (scripts/check.sh).
//
// A finding can be waived where a human can prove what the analyzer cannot
// (for example an order-independent min/max reduction over a map) by
// annotating the line — or the line directly above it — with
//
//	//shadowvet:ignore <analyzer>[,<analyzer>...] [-- reason]
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description for -list output.
	Doc string
	// Run inspects the pass's package and reports findings via Pass.Reportf.
	Run func(*Pass)
}

// All returns the full shadowvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, PanicMsg, CmdErr, Locks}
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the package's import path (e.g. shadow/internal/dram).
	// External test packages share the directory's import path.
	PkgPath string
	// PkgName is the package clause name (e.g. dram, dram_test).
	PkgName string
	// Pkg and Info hold type information; they are always non-nil, but may
	// be partial when the package had type errors.
	Pkg  *types.Package
	Info *types.Info

	diags    *[]Diagnostic
	suppress map[string]map[int]map[string]bool // filename -> line -> analyzer set
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressedAt(pos token.Position) bool {
	lines := p.suppress[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive waives its own line and the line below it (directive-only
	// comment lines annotate the statement that follows).
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[line]; set[p.Analyzer.Name] {
			return true
		}
	}
	return false
}

const ignoreDirective = "shadowvet:ignore"

// buildSuppressions scans a package's comments for ignore directives.
func buildSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				text = strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				// Strip the optional "-- reason" tail.
				if i := strings.Index(text, "--"); i >= 0 {
					text = text[:i]
				}
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					set[name] = true
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		suppress := buildSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				PkgName:  pkg.Name,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				suppress: suppress,
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
