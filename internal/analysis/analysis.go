// Package analysis is shadowvet's analyzer framework: a dependency-free
// (standard library only) reimplementation of the go/analysis idea, sized
// for this repository. Analyzers inspect one type-checked package at a time
// and report diagnostics; cmd/shadowvet drives them over the tree.
//
// The suite exists because every figure of the paper is regenerated from a
// deterministic cycle-level simulation: a single hidden source of
// nondeterminism (a wall-clock read, global math/rand, an order-dependent
// map iteration) silently corrupts every table. The analyzers turn the
// repository's determinism, DRAM-protocol, and architecture conventions
// into machine checks that run in CI (scripts/check.sh).
//
// A finding can be waived where a human can prove what the analyzer cannot
// (for example an order-independent min/max reduction over a map) by
// annotating the line — or the line directly above it — with
//
//	//shadowvet:ignore <analyzer>[,<analyzer>...] -- reason
//
// Waivers are themselves checked (Options.CheckWaivers, always on in the
// driver): a waiver must carry a "-- reason" justification, must name known
// analyzers, and must actually suppress a finding — a stale waiver that
// suppresses nothing is a finding in its own right, so waivers cannot
// outlive the code smell they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"

	"shadow/internal/analysis/callgraph"
)

// An Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description for -list output.
	Doc string
	// Run inspects the pass's package and reports findings via Pass.Reportf.
	Run func(*Pass)
	// Prepare, when non-nil, makes the analyzer cross-package: it runs once
	// per Run invocation over the whole loaded package set, before any
	// per-package pass, and its result is handed to every Run call through
	// Pass.Facts. Prepare computes whole-program facts (reachability over
	// the module call graph, interprocedural taint); Run stays the only
	// reporting path, so diagnostics keep package-local positions, waiver
	// suppression, and the scheduling-independent sorted output of the
	// parallel driver. Prepare itself always runs sequentially, in suite
	// order, so its facts cannot depend on goroutine interleaving.
	Prepare func(*Module) any
}

// All returns the full shadowvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Exhaustive, NilGuard, Layering, PanicMsg, CmdErr, Locks, LockFlow, GoroLeak, SharedFlow, AllocFlow, DetFlow}
}

// A Module is the whole package set of one Run, handed to cross-package
// analyzers' Prepare hooks.
type Module struct {
	// Packages are the loaded packages in driver order (ExpandPatterns
	// output, which is sorted — deterministic for a given tree).
	Packages []*Package

	cgOnce sync.Once
	cg     *callgraph.Graph
}

// CallGraph builds (once, lazily) the call graph over every loaded package,
// including test packages. Analyzers sharing the graph through this
// accessor pay for construction once per Run.
func (m *Module) CallGraph() *callgraph.Graph {
	m.cgOnce.Do(func() {
		var fset *token.FileSet
		units := make([]callgraph.Unit, 0, len(m.Packages))
		for _, pkg := range m.Packages {
			fset = pkg.Fset
			units = append(units, callgraph.Unit{
				Path:  pkg.Path,
				Files: pkg.Files,
				Info:  pkg.Info,
				Pkg:   pkg.Types,
			})
		}
		if fset == nil {
			fset = token.NewFileSet()
		}
		m.cg = callgraph.Build(fset, units)
	})
	return m.cg
}

// waiverAliases lets a directive written against a deprecated analyzer
// name keep working after the check moved: a //shadowvet:ignore locks
// waiver also suppresses lockflow findings, because lockflow is the
// flow-sensitive successor of the old locks pairing rule. The alias is
// one-directional — an explicit lockflow waiver does not touch locks
// findings.
var waiverAliases = map[string][]string{
	"locks": {"lockflow"},
}

// waiverCovers reports whether a directive naming `directive` suppresses
// findings of `analyzer`, directly or through an alias.
func waiverCovers(directive, analyzer string) bool {
	if directive == analyzer {
		return true
	}
	for _, aliased := range waiverAliases[directive] {
		if aliased == analyzer {
			return true
		}
	}
	return false
}

// WaiverAnalyzerName labels the waiver-hygiene findings produced when
// Options.CheckWaivers is set. It is not a real analyzer and cannot itself
// be waived — a circular waiver would defeat the check.
const WaiverAnalyzerName = "waiver"

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// PkgPath is the package's import path (e.g. shadow/internal/dram).
	// External test packages share the directory's import path.
	PkgPath string
	// PkgName is the package clause name (e.g. dram, dram_test).
	PkgName string
	// Pkg and Info hold type information; they are always non-nil, but may
	// be partial when the package had type errors.
	Pkg  *types.Package
	Info *types.Info
	// Facts is the analyzer's Prepare result for this Run (nil for
	// per-package analyzers and for direct RunAnalyzers subset calls made
	// without module preparation).
	Facts any

	diags   *[]Diagnostic
	waivers map[string]map[int][]*waiver // filename -> line -> directives
}

// Reportf records a diagnostic at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressedAt(pos token.Position) bool {
	lines := p.waivers[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive waives its own line and the line below it (directive-only
	// comment lines annotate the statement that follows).
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, w := range lines[line] {
			for _, name := range w.nameOrder {
				if waiverCovers(name, p.Analyzer.Name) {
					w.used[name] = true
					return true
				}
			}
		}
	}
	return false
}

const ignoreDirective = "shadowvet:ignore"

// A waiver is one parsed //shadowvet:ignore directive, with enough state to
// tell after the analyzers ran whether it earned its keep.
type waiver struct {
	pos       token.Position
	names     map[string]bool // analyzers the directive waives
	nameOrder []string        // declaration order, for stable diagnostics
	reason    string          // the "-- reason" tail, "" when absent
	used      map[string]bool // analyzers that actually suppressed a finding
}

// parseWaivers scans a package's comments for ignore directives and returns
// them both indexed for suppression lookup and ordered for hygiene checks.
func parseWaivers(fset *token.FileSet, files []*ast.File) (map[string]map[int][]*waiver, []*waiver) {
	index := map[string]map[int][]*waiver{}
	var all []*waiver
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				text = strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				w := &waiver{
					pos:   fset.Position(c.Pos()),
					names: map[string]bool{},
					used:  map[string]bool{},
				}
				if i := strings.Index(text, "--"); i >= 0 {
					w.reason = strings.TrimSpace(text[i+len("--"):])
					text = text[:i]
				}
				for _, name := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if !w.names[name] {
						w.names[name] = true
						w.nameOrder = append(w.nameOrder, name)
					}
				}
				lines := index[w.pos.Filename]
				if lines == nil {
					lines = map[int][]*waiver{}
					index[w.pos.Filename] = lines
				}
				lines[w.pos.Line] = append(lines[w.pos.Line], w)
				all = append(all, w)
			}
		}
	}
	return index, all
}

// Options tunes a Run.
type Options struct {
	// CheckWaivers turns waiver hygiene on: every //shadowvet:ignore must
	// carry a "-- reason", name analyzers that exist, and suppress at least
	// one finding of every analyzer it names (per name, so a two-analyzer
	// waiver with one dead name is still stale).
	CheckWaivers bool
	// Parallel analyzes packages concurrently (one goroutine per package,
	// bounded by GOMAXPROCS). Output order is unaffected: diagnostics are
	// sorted by position either way.
	Parallel bool
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Cross-package analyzers (Prepare != nil) first compute
// their whole-program facts sequentially over the full package set; the
// per-package passes — parallel or not — then consume those shared,
// read-only facts, so output stays scheduling-independent.
func Run(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	module := &Module{Packages: pkgs}
	facts := map[string]any{}
	for _, a := range analyzers {
		if a.Prepare != nil {
			facts[a.Name] = a.Prepare(module)
		}
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	if opts.Parallel && len(pkgs) > 1 {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i, pkg := range pkgs {
			wg.Add(1)
			go func(i int, pkg *Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				perPkg[i] = analyzePackage(pkg, analyzers, facts, opts)
			}(i, pkg)
		}
		wg.Wait()
	} else {
		for i, pkg := range pkgs {
			perPkg[i] = analyzePackage(pkg, analyzers, facts, opts)
		}
	}
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// RunAnalyzers is Run with default options (sequential, no waiver
// hygiene) — the shape fixture tests use, where a subset of the suite runs
// and waiver bookkeeping would misfire.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return Run(pkgs, analyzers, Options{})
}

// analyzePackage runs the analyzers over one package. Packages share no
// mutable state (the FileSet, imported type data, and prepared module facts
// are read-only here), so Run may call this concurrently.
func analyzePackage(pkg *Package, analyzers []*Analyzer, facts map[string]any, opts Options) []Diagnostic {
	var diags []Diagnostic
	index, waivers := parseWaivers(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			PkgName:  pkg.Name,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts[a.Name],
			diags:    &diags,
			waivers:  index,
		}
		a.Run(pass)
	}
	if opts.CheckWaivers {
		diags = append(diags, checkWaivers(waivers, analyzers)...)
	}
	return diags
}

// checkWaivers turns waiver-hygiene violations into findings. A name is
// judged stale only when its analyzer actually ran; names of known
// analyzers outside this run are left alone (fixture tests run subsets).
func checkWaivers(waivers []*waiver, ran []*Analyzer) []Diagnostic {
	ranSet := map[string]bool{}
	for _, a := range ran {
		ranSet[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []Diagnostic
	report := func(w *waiver, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      w.pos,
			Analyzer: WaiverAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, w := range waivers {
		if len(w.nameOrder) == 0 {
			report(w, "waiver names no analyzer; write //%s <analyzer> -- reason", ignoreDirective)
			continue
		}
		if strings.TrimSpace(w.reason) == "" {
			report(w, "waiver has no justification; append \"-- reason\" explaining why the finding is safe")
		}
		for _, name := range w.nameOrder {
			switch {
			case !known[name] && !ranSet[name]:
				report(w, "waiver names unknown analyzer %q (known: %s)", name, strings.Join(analyzerNames(All()), ", "))
			case ranSet[name] && !w.used[name]:
				report(w, "stale waiver: no %s finding here to suppress; delete the directive (or the %s entry)", name, name)
			}
		}
	}
	return out
}

func analyzerNames(as []*Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}
