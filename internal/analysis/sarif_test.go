package analysis

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteSARIF round-trips real findings from the fixture corpus
// through the -sarif encoding and checks the decoded log field by
// field: every result must resolve to a declared rule and point at the
// finding's exact file, line, and column.
func TestWriteSARIF(t *testing.T) {
	fixtures := []struct{ name, path string }{
		{"panicmsg", ""},
		{"lockflow", ""},
		{"goroleak", ""},
	}
	var pkgs []*Package
	for _, f := range fixtures {
		pkgs = append(pkgs, loadFixture(t, f.name, f.path))
	}
	diags := RunAnalyzers(pkgs, All())
	if len(diags) == 0 {
		t.Fatal("fixture corpus produced no findings")
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, diags); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("log should declare SARIF 2.1.0, got version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "shadowvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if ruleIDs[r.ID] {
			t.Errorf("duplicate rule %q", r.ID)
		}
		ruleIDs[r.ID] = true
		if strings.TrimSpace(r.ShortDescription.Text) == "" {
			t.Errorf("rule %q has no description", r.ID)
		}
	}
	for _, a := range All() {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from the rule table", a.Name)
		}
	}
	if !ruleIDs[WaiverAnalyzerName] {
		t.Errorf("the %s pseudo-rule must be declared (hygiene findings reference it)", WaiverAnalyzerName)
	}

	if len(run.Results) != len(diags) {
		t.Fatalf("decoded %d results, want %d", len(run.Results), len(diags))
	}
	for i, r := range run.Results {
		d := diags[i]
		if r.RuleID != d.Analyzer || r.Message.Text != d.Message || r.Level != "error" {
			t.Errorf("result %d mismatch: %+v vs %v", i, r, d)
		}
		if !ruleIDs[r.RuleID] {
			t.Errorf("result %d references undeclared rule %q", i, r.RuleID)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != d.Pos.Filename ||
			loc.Region.StartLine != d.Pos.Line || loc.Region.StartColumn != d.Pos.Column {
			t.Errorf("result %d location mismatch: %+v vs %v", i, loc, d.Pos)
		}
	}
}

// TestWriteSARIFEmpty: a clean run still emits a structurally complete
// log — one run, full rule table, empty (non-null) results — so CI
// uploads succeed with or without findings.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	if log.Runs[0].Results == nil {
		t.Error("results must be [] when clean, not null")
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("expected an empty results array in:\n%s", buf.String())
	}
}
