package analysis

import (
	"strings"
	"testing"
)

func TestExhaustiveFixture(t *testing.T) {
	checkFixture(t, Exhaustive, loadFixture(t, "exhaustive", ""))
}

// TestExhaustiveMessage pins the diagnostic shape: the missing members are
// named in declaration order so the fix is mechanical.
func TestExhaustiveMessage(t *testing.T) {
	pkg := loadFixture(t, "exhaustive", "")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Exhaustive})
	var colorDiag string
	for _, d := range diags {
		if strings.Contains(d.Message, "exhaustive.color") {
			colorDiag = d.Message
		}
	}
	if colorDiag == "" {
		t.Fatalf("no finding names the local color enum: %v", diags)
	}
	if !strings.Contains(colorDiag, "missing colorBlue") {
		t.Errorf("finding should name the missing member, got %q", colorDiag)
	}
	if strings.Contains(colorDiag, "numColors") {
		t.Errorf("sentinel numColors must not be a required case, got %q", colorDiag)
	}
}

// TestExhaustiveOnRealEnums proves discovery sees the repository's actual
// closed enums through the type checker, imported or local.
func TestExhaustiveOnRealEnums(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"../obs/span", "../memctrl", "../timing", "../exp"} {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if diags := RunAnalyzers(pkgs, []*Analyzer{Exhaustive}); len(diags) > 0 {
			for _, d := range diags {
				t.Errorf("%s should be exhaustive-clean: %v", dir, d)
			}
		}
	}
}
