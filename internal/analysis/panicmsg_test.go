package analysis

import "testing"

func TestPanicMsgFixtures(t *testing.T) {
	checkFixture(t, PanicMsg, loadFixture(t, "panicmsg", ""))
}
