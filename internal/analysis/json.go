package analysis

import (
	"encoding/json"
	"io"
)

// diagnosticJSON is the machine-readable shape of one finding, consumed by
// CI annotators (one object per finding; the array is sorted by position,
// so output is deterministic).
type diagnosticJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as an indented JSON array (always an array,
// "[]" when clean, trailing newline) for the driver's -json mode.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]diagnosticJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagnosticJSON{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
