package analysis

import (
	"go/ast"
	"go/token"
)

// nilGuarded lists the observability types whose exported pointer-receiver
// methods must begin with a nil-receiver guard: they sit on the simulator's
// hot path and their documented contract is "a nil receiver is valid and
// inert, the unprobed run costs one nil check". One unguarded method turns
// every unprobed simulation into a panic the first time that method is
// reached — typically long after the probe wiring that should have caught
// it. Keyed by package path so fixtures can masquerade via path override.
var nilGuarded = map[string]map[string]bool{
	"shadow/internal/obs": {
		"Probe":     true,
		"Heartbeat": true,
	},
	"shadow/internal/obs/span": {
		"Tracker":   true,
		"Collector": true,
	},
	"shadow/internal/obs/flight": {
		"Ring":    true,
		"Watch":   true,
		"CmdHash": true,
	},
	"shadow/internal/obs/fleet": {
		"Collector": true,
		"Store":     true,
	},
}

// NilGuard enforces the nil-safe hot-path contract: every exported method
// with a pointer receiver of a guarded obs-layer type must open with a
// nil-receiver check — either an if statement whose condition tests the
// receiver against nil (`if p == nil { return }`, `if t == nil || sp == nil
// { ... }`, `if c != nil { ... }`) or a single return of a nil comparison
// (`return p != nil`). The guard must be the first statement: work before
// it is work a nil receiver executes.
var NilGuard = &Analyzer{
	Name: "nilguard",
	Doc: "require exported methods on nil-safe obs hot-path types (obs.Probe, obs.Heartbeat, " +
		"span.Tracker, span.Collector, flight.Ring, flight.Watch, flight.CmdHash, " +
		"fleet.Collector, fleet.Store) to begin with a nil-receiver guard",
	Run: runNilGuard,
}

func runNilGuard(pass *Pass) {
	guarded := nilGuarded[pass.PkgPath]
	if guarded == nil {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recvName, typeName, ptr := receiver(fn)
			if !ptr || !guarded[typeName] {
				continue
			}
			if recvName == "" || recvName == "_" {
				pass.Reportf(fn.Pos(), "method %s.%s needs a named receiver to carry its nil-receiver guard", typeName, fn.Name.Name)
				continue
			}
			if !beginsWithNilGuard(fn.Body, recvName) {
				pass.Reportf(fn.Pos(), "exported method (%s *%s).%s must begin with a nil-receiver guard (the nil-safe hot-path contract: `if %s == nil { ... }`)",
					recvName, typeName, fn.Name.Name, recvName)
			}
		}
	}
}

// receiver extracts the receiver variable name, the receiver's type name,
// and whether it is a pointer receiver.
func receiver(fn *ast.FuncDecl) (recvName, typeName string, ptr bool) {
	if len(fn.Recv.List) != 1 {
		return "", "", false
	}
	field := fn.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return recvName, "", false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return recvName, t.Name, true
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			return recvName, id.Name, true
		}
	}
	return recvName, "", false
}

// beginsWithNilGuard reports whether the body's first statement tests the
// receiver against nil.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.IfStmt:
		return s.Init == nil && condTestsNil(s.Cond, recv)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if condTestsNil(r, recv) {
				return true
			}
		}
	}
	return false
}

// condTestsNil walks a boolean expression looking for `recv == nil` or
// `recv != nil` as an operand (possibly inside &&/||/!/parens, as in
// `if t == nil || sp == nil` or `if h == nil || !h.printed`).
func condTestsNil(e ast.Expr, recv string) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return condTestsNil(e.X, recv)
	case *ast.UnaryExpr:
		return e.Op == token.NOT && condTestsNil(e.X, recv)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			return condTestsNil(e.X, recv) || condTestsNil(e.Y, recv)
		case token.EQL, token.NEQ:
			return isIdent(e.X, recv) && isIdent(e.Y, "nil") ||
				isIdent(e.X, "nil") && isIdent(e.Y, recv)
		}
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
