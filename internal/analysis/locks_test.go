package analysis

import "testing"

func TestLocksFixtures(t *testing.T) {
	checkFixture(t, Locks, loadFixture(t, "locks", ""))
}
