package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires every value switch over a closed enum to either cover
// all of the enum's constants or carry an explicit default clause. The
// repository grows its enums (span.Cause gained causes in PR 3, obs.Kind in
// PR 2); a switch that silently skips a new member corrupts blame tables
// and trace output without failing any test, so the gap must be visible —
// a listed case or a deliberate default, never an accidental fall-through.
//
// Closed enums are discovered generically, not from a hardcoded list: a
// type defined in this module whose underlying kind is integer with a
// const block covering
// the contiguous run 0..n-1 (the iota idiom — span.Cause, obs.Kind,
// memctrl.CmdKind, timing.Grade), or a defined string type with at least
// two constants (exp.Scheme). Sparse integer constant sets (timing.Tick's
// unit constants, bit masks) are not enums and stay unchecked. Sentinel
// count constants (NumCauses) anchor the contiguity check but are not
// required as cases.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "require switches over closed enums (iota blocks, string-constant sets) to cover " +
		"every constant or carry an explicit default",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(pass, sw)
			return true
		})
	}
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	t := pass.Info.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	enum := enumOf(t)
	if enum == nil {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			return
		}
		if cc.List == nil {
			return // explicit default: the author owns the remainder
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not provable
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, m := range enum.members {
		if m.required && !covered[m.key] {
			missing = append(missing, m.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s is not exhaustive: missing %s; add the missing cases or an explicit default",
			enum.name, strings.Join(missing, ", "))
	}
}

// enumMember is one distinct constant value of a closed enum, keyed by its
// exact constant value so aliases (two names, one value) count once.
type enumMember struct {
	name     string
	key      string
	val      int64 // integer enums only, for declaration-order sorting
	required bool  // sentinels (NumX) are members but need no case
}

type enumInfo struct {
	name    string
	members []enumMember
}

// enumOf decides whether t is a closed enum and returns its members in
// value order, or nil. Membership comes from the type checker's view of the
// defining package, so it works identically for enums defined in the
// package under analysis and for imported ones (cmdtrace switching over
// memctrl.CmdKind).
func enumOf(t types.Type) *enumInfo {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil // predeclared types (error) are not enums
	}
	if pkg.Path() != "shadow" && !strings.HasPrefix(pkg.Path(), "shadow/") {
		// Only this module's enums are closed sets the repo controls;
		// stdlib enums (go/token.Token, reflect.Kind) are open-ended and
		// exhaustiveness over them is not a convention here.
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	isInt := basic.Info()&types.IsInteger != 0
	isString := basic.Info()&types.IsString != 0
	if !isInt && !isString {
		return nil
	}
	byKey := map[string]int{} // value key -> index in members
	var members []enumMember
	scope := pkg.Scope()
	for _, name := range scope.Names() { // sorted; value order restored below
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if i, seen := byKey[key]; seen {
			// An alias: one member, required if any of its names is real.
			if !isSentinel(name) {
				members[i].required = true
			}
			continue
		}
		m := enumMember{name: name, key: key, required: !isSentinel(name)}
		if isInt {
			v, exact := constant.Int64Val(c.Val())
			if !exact || v < 0 {
				return nil // out-of-range constants: not an iota enum
			}
			m.val = v
		}
		byKey[key] = len(members)
		members = append(members, m)
	}
	if len(members) < 2 {
		return nil // a one-constant type is not a closed enum
	}
	if isInt {
		// The iota fingerprint: distinct values are exactly {0..n-1}. This
		// separates closed enums from unit constants and bit masks.
		sort.Slice(members, func(i, j int) bool { return members[i].val < members[j].val })
		if members[0].val != 0 || members[len(members)-1].val != int64(len(members)-1) {
			return nil
		}
	}
	required := false
	for _, m := range members {
		required = required || m.required
	}
	if !required {
		return nil
	}
	return &enumInfo{name: typeString(named), members: members}
}

// isSentinel matches the NumX count-constant idiom that closes an iota
// block to size arrays (span.NumCauses): a member of the type, but not a
// value a switch is expected to handle.
func isSentinel(name string) bool {
	return strings.HasPrefix(name, "Num") || strings.HasPrefix(name, "num")
}
