package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"shadow/internal/analysis/callgraph"
)

// detSource is one nondeterminism source found in a function body.
type detSource struct {
	desc string // e.g. "wall-clock read time.Now"
	pos  token.Pos
}

// detTaint records why a function is nondeterministic: either a direct
// source in its own body (via == nil) or a tainted callee (via != nil,
// follow the links to reach src).
type detTaint struct {
	src *detSource
	// owner is the node whose body contains src.
	owner *callgraph.Node
	// via is the next hop on the call chain toward owner; nil when the
	// source is in this node's own body.
	via *callgraph.Node
}

// detFacts is the Prepare result: interprocedural nondeterminism taint over
// the module call graph.
type detFacts struct {
	graph *callgraph.Graph
	taint map[*callgraph.Node]*detTaint
}

// DetFlow propagates nondeterminism sources interprocedurally into the
// determinism-restricted packages. The per-package determinism analyzer
// flags sources written directly inside internal/{sim,dram,...}; detflow
// closes the loophole it leaves: a restricted package calling a helper in
// an unrestricted package (report, a future plugin) whose body — or whose
// transitive callees' bodies — read the wall clock, use global math/rand,
// or fold a map in iteration order. It also flags multi-ready selects
// (two or more channel cases: the runtime chooses among ready cases
// pseudo-randomly) directly in restricted packages, which the per-package
// scan never covered. Calls through function values are not tracked
// (optimistic, matching the per-package scan); sources inside restricted
// packages are excluded from the taint — the determinism analyzer already
// owns those lines, waived or fixed.
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc: "propagate nondeterminism sources (wall-clock reads, global math/rand, order-sensitive " +
		"map iteration, multi-ready selects) through the call graph into the determinism-restricted " +
		"packages: a call from restricted code that transitively reaches a source outside the " +
		"restricted set is flagged at the call site with the chain to the source",
	Prepare: prepareDetFlow,
	Run:     runDetFlow,
}

func prepareDetFlow(m *Module) any {
	g := m.CallGraph()
	facts := &detFacts{graph: g, taint: map[*callgraph.Node]*detTaint{}}
	// Direct sources, for every node outside the restricted set whose body
	// we have. Restricted-package sources are the determinism analyzer's
	// jurisdiction and must not resurface at every caller.
	direct := map[*callgraph.Node]*detSource{}
	for _, n := range g.Nodes() {
		if n.Body == nil || detRestrictedPath(n.PkgPath) {
			continue
		}
		if src := scanDetSources(m.infoFor(n), n.Body); src != nil {
			direct[n] = src
		}
	}
	// Bottom-up propagation over the SCC condensation: callees' components
	// come first, so one pass plus an intra-component fixpoint suffices.
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if facts.taint[n] != nil {
					continue
				}
				if n.Body == nil || detRestrictedPath(n.PkgPath) {
					continue
				}
				if src := direct[n]; src != nil {
					facts.taint[n] = &detTaint{src: src, owner: n}
					changed = true
					continue
				}
				for _, e := range n.Out {
					if e.Callee == g.Unknown {
						continue // optimistic on function values
					}
					if t := facts.taint[e.Callee]; t != nil {
						facts.taint[n] = &detTaint{src: t.src, owner: t.owner, via: e.Callee}
						changed = true
						break
					}
				}
			}
		}
	}
	return facts
}

// infoFor finds the types.Info that covers a node's file — the node's
// declaring package was loaded as one of the module's packages.
func (m *Module) infoFor(n *callgraph.Node) *types.Info {
	if n.Decl == nil {
		return nil
	}
	pos := n.Decl.Pos()
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			if f.Pos() <= pos && pos < f.End() {
				return pkg.Info
			}
		}
	}
	return nil
}

// detRestrictedPath reports whether a type-checker package path belongs to
// the determinism-restricted set; external test packages (path suffix
// ".test") follow their directory's package.
func detRestrictedPath(path string) bool {
	return restrictedPkgs[strings.TrimSuffix(path, ".test")]
}

// scanDetSources returns the first nondeterminism source in one function
// body (shallow: nested literals are their own nodes), or nil. "First" is
// source order, so blame is deterministic.
func scanDetSources(info *types.Info, body *ast.BlockStmt) *detSource {
	if info == nil {
		return nil
	}
	var found *detSource
	note := func(pos token.Pos, desc string) {
		if found == nil || pos < found.pos {
			found = &detSource{desc: desc, pos: pos}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literals are their own graph nodes
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if _, isFn := obj.(*types.Func); isFn && wallClockFuncs[obj.Name()] {
					note(n.Pos(), "wall-clock read time."+obj.Name())
				}
			case "math/rand", "math/rand/v2":
				note(n.Pos(), "global math/rand use "+obj.Pkg().Name()+"."+obj.Name())
			}
		case *ast.RangeStmt:
			if src := orderSensitiveMapRange(info, n); src != nil {
				note(src.pos, src.desc)
			}
		case *ast.SelectStmt:
			// A multi-ready select inside an unrestricted helper taints
			// callers just like a clock read: which ready case runs is
			// scheduler-chosen.
			if cases := multiReadySelect(n); cases > 1 {
				note(n.Pos(), fmt.Sprintf("select over %d channel cases (runtime picks among ready cases pseudo-randomly)", cases))
			}
		}
		return true
	})
	return found
}

// orderSensitiveMapRange reuses the determinism analyzer's order-
// sensitivity rules on one range statement, returning the first offending
// construct as a source description.
func orderSensitiveMapRange(info *types.Info, rng *ast.RangeStmt) *detSource {
	t := info.TypeOf(rng.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	var found *detSource
	note := func(pos token.Pos, what string) {
		if found == nil || pos < found.pos {
			found = &detSource{desc: "order-sensitive map iteration (" + what + ")", pos: pos}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			note(n.Pos(), "early return")
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if what, pos, bad := orderSensitiveLHS(info, rng, lhs); bad {
					note(pos, what)
				}
			}
		case *ast.IncDecStmt:
			if what, pos, bad := orderSensitiveLHS(info, rng, n.X); bad {
				note(pos, what)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					note(n.Pos(), "append")
				}
			}
		}
		return true
	})
	return found
}

// multiReadySelect returns the number of channel communication clauses of a
// select (default clauses excluded); two or more make the select's choice
// scheduler-dependent when several are ready.
func multiReadySelect(sel *ast.SelectStmt) int {
	cases := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			cases++
		}
	}
	return cases
}

func runDetFlow(pass *Pass) {
	if !restrictedPkgs[pass.PkgPath] {
		return
	}
	facts, ok := pass.Facts.(*detFacts)
	if !ok {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				if cases := multiReadySelect(n); cases > 1 {
					pass.Reportf(n.Pos(), "select over %d channel cases in a simulation package: the runtime picks among ready cases pseudo-randomly; restructure to a deterministic priority order or waive with the reason the choice cannot affect results", cases)
				}
			case *ast.CallExpr:
				reportTaintedCall(pass, facts, n)
			}
			return true
		})
	}
}

// reportTaintedCall flags one call site in a restricted package whose
// (transitive) callees reach a nondeterminism source outside the restricted
// set. One finding per site: the first tainted callee in deterministic
// order, with the count of further tainted candidates for interface calls.
func reportTaintedCall(pass *Pass, facts *detFacts, call *ast.CallExpr) {
	callees := facts.graph.CalleesFor(call)
	var tainted []*callgraph.Node
	for _, callee := range callees {
		if detRestrictedPath(callee.PkgPath) {
			continue // the callee's own package scan owns its sources
		}
		if facts.taint[callee] != nil {
			tainted = append(tainted, callee)
		}
	}
	if len(tainted) == 0 {
		return
	}
	first := tainted[0]
	t := facts.taint[first]
	more := ""
	if len(tainted) > 1 {
		more = fmt.Sprintf(" (+%d more tainted candidates)", len(tainted)-1)
	}
	pass.Reportf(call.Pos(), "call to %s from a simulation package reaches nondeterminism: %s at %s%s%s",
		nodeLabel(first), t.src.desc, shortPosition(pass.Fset, t.src.pos), detChain(facts, first), more)
}

// detChain renders the call chain from the flagged callee to the source
// owner (" via a → b") when the source is not in the callee itself.
func detChain(facts *detFacts, callee *callgraph.Node) string {
	t := facts.taint[callee]
	if t == nil || t.via == nil {
		return ""
	}
	var hops []string
	for cur := callee; cur != nil; {
		next := facts.taint[cur]
		if next == nil || next.via == nil {
			break
		}
		hops = append(hops, nodeLabel(next.via))
		cur = next.via
		if len(hops) >= 5 {
			hops = append(hops, "…")
			break
		}
	}
	if len(hops) == 0 {
		return ""
	}
	return " via " + strings.Join(hops, " → ")
}

// shortPosition renders file:line with just the base filename — the full
// path is the finding's own position; the source position only needs to be
// locatable.
func shortPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
