package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// testLoader is shared across tests: the source importer's cache makes the
// first load pay for stdlib type-checking and the rest nearly free.
var testLoader = sync.OnceValues(func() (*Loader, error) { return NewLoader(".") })

// loadFixture type-checks testdata/src/<name> and optionally rewrites its
// import path (the determinism analyzer only fires inside the simulation
// packages, so its fixtures masquerade as one).
func loadFixture(t *testing.T, name, pathOverride string) *Package {
	t.Helper()
	l, err := testLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := l.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	if pathOverride != "" {
		pkg.Path = pathOverride
	}
	return pkg
}

// checkFixture runs one analyzer over a fixture package and matches its
// findings line-by-line against the fixture's "want:<analyzer>" comments:
// every marked line must produce at least one finding and no finding may
// land on an unmarked line.
func checkFixture(t *testing.T, a *Analyzer, pkg *Package) {
	t.Helper()
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	marker := "want:" + a.Name
	want := map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, marker) {
					pos := pkg.Fset.Position(c.Pos())
					want[fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)] = true
				}
			}
		}
	}
	got := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		got[key] = true
		if !want[key] {
			t.Errorf("unexpected finding: %v", d)
		}
	}
	for key := range want {
		if !got[key] {
			t.Errorf("no %s finding at %s, want one", a.Name, key)
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		seen[d] = true
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion must skip testdata, got %s", d)
		}
	}
	if !seen["."] {
		t.Errorf("./... should include the package's own directory, got %v", dirs)
	}

	dirs, err = ExpandPatterns([]string{"testdata/src/locks"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != filepath.Clean("testdata/src/locks") {
		t.Errorf("plain directory pattern: got %v", dirs)
	}
}

func TestLoaderModuleDiscovery(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "shadow" {
		t.Errorf("module path = %q, want shadow", l.ModulePath)
	}
	path, err := l.ImportPath(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "shadow/internal/analysis" {
		t.Errorf("import path = %q", path)
	}
}

// TestSelfCheck runs the whole suite over this package: the analyzer
// implementation must satisfy its own rules.
func TestSelfCheck(t *testing.T) {
	l, err := testLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkgs, All()); len(diags) > 0 {
		for _, d := range diags {
			t.Errorf("self-check: %v", d)
		}
	}
}

// TestSuppressionDirective proves the ignore escape hatch works both as a
// trailing comment and as a directive-only line above the finding.
func TestSuppressionDirective(t *testing.T) {
	pkg := loadFixture(t, "suppress", "shadow/internal/sim")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{Determinism})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the unsuppressed one: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "outer variable unsuppressed") {
		t.Errorf("surviving finding should be the unsuppressed line, got %v", diags[0])
	}
}

func TestDiagnosticString(t *testing.T) {
	pkg := loadFixture(t, "panicmsg", "")
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{PanicMsg})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "bad.go:") || !strings.HasSuffix(s, "(panicmsg)") {
		t.Errorf("diagnostic format %q should be file:line:col: msg (analyzer)", s)
	}
}
