package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shadow/internal/analysis/cfg"
)

// LockFlow is the flow-sensitive successor of the locks pairing check:
// instead of asking "is there an Unlock somewhere in this function", it
// builds the function's control-flow graph and proves, per path, that
//
//   - every mu.Lock()/mu.RLock() is released on every path to the
//     function's exit — including early returns and explicit panics,
//     where only a deferred Unlock (registered on every path) runs;
//   - no lock is re-acquired while already held (double Lock, and the
//     RLock/Lock upgrade that self-deadlocks on a sync.RWMutex);
//   - no lock is held across a blocking operation: a channel send or
//     receive, a select communication, a range over a channel, or a
//     sync.WaitGroup.Wait — the pattern that turns one slow consumer
//     into a deadlock of everything sharing the mutex.
//
// Locks are identified by their rendered receiver expression ("c.mu"),
// so two different variables spelled identically in nested scopes alias
// to one lock — conservative, and irrelevant in practice for this
// repository's flat receiver conventions. Function literals are
// separate functions with their own graphs; a deferred function literal
// releases what its body releases.
var LockFlow = &Analyzer{
	Name: "lockflow",
	Doc: "prove every Lock/RLock is released on all paths (early returns, panics-via-defer), " +
		"and flag double-locks and locks held across channel ops or WaitGroup.Wait",
	Run: runLockFlow,
}

func runLockFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkLockFlow(pass, n.Body)
				}
			case *ast.FuncLit:
				checkLockFlow(pass, n.Body)
			}
			return true
		})
	}
}

// lockBits is the per-lock lattice: the held bits are a may-analysis
// (union at joins — a lock held on any path into a point is a hazard),
// the defer bits a must-analysis (intersection — a release only counts
// if every path registered it).
type lockBits uint8

const (
	lockHeld     lockBits = 1 << iota // write lock may be held
	rlockHeld                         // read lock may be held
	deferUnlock                       // Unlock deferred on all paths here
	deferRUnlock                      // RUnlock deferred on all paths here
)

const heldMask = lockHeld | rlockHeld
const deferMask = deferUnlock | deferRUnlock

// lockEntry is one lock's state plus the earliest acquire site, kept for
// diagnostics at exit (the Lock that leaks is the useful position, not
// the return statement).
type lockEntry struct {
	bits lockBits
	pos  token.Pos
}

// lockFact maps rendered receiver expressions to their state. Facts are
// immutable: transfer copies before writing.
type lockFact map[string]lockEntry

func (f lockFact) clone() lockFact {
	out := make(lockFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

// anyHeld returns the held locks' receivers, sorted for deterministic
// diagnostics.
func (f lockFact) anyHeld() []string {
	var held []string
	for recv, e := range f {
		if e.bits&heldMask != 0 {
			held = append(held, recv)
		}
	}
	sort.Strings(held)
	return held
}

// lockAnalysis adapts lockFact to the cfg dataflow engine.
type lockAnalysis struct{ pass *Pass }

func (la *lockAnalysis) Entry() cfg.Fact { return lockFact(nil) }

func (la *lockAnalysis) Transfer(n ast.Node, in cfg.Fact) cfg.Fact {
	f := in.(lockFact)
	for _, ev := range lockEvents(la.pass, n) {
		f = applyLockEvent(f, ev)
	}
	return f
}

// applyLockEvent returns a fresh fact with one event applied; entries
// whose bits drop to zero are removed so facts stay normalized (Equal
// can then compare maps directly).
func applyLockEvent(f lockFact, ev lockEvent) lockFact {
	g := f.clone()
	e := g[ev.recv]
	switch ev.kind {
	case evLock:
		if e.bits == 0 {
			e.pos = ev.pos
		}
		e.bits |= lockHeld
	case evRLock:
		if e.bits == 0 {
			e.pos = ev.pos
		}
		e.bits |= rlockHeld
	case evUnlock:
		e.bits &^= lockHeld
	case evRUnlock:
		e.bits &^= rlockHeld
	case evDeferUnlock:
		e.bits |= deferUnlock
	case evDeferRUnlock:
		e.bits |= deferRUnlock
	}
	if e.bits == 0 {
		delete(g, ev.recv)
	} else {
		g[ev.recv] = e
	}
	return g
}

func (la *lockAnalysis) Join(a, b cfg.Fact) cfg.Fact {
	fa, fb := a.(lockFact), b.(lockFact)
	out := make(lockFact, len(fa)+len(fb))
	put := func(k string, e lockEntry) {
		if e.bits != 0 {
			out[k] = e
		}
	}
	// An entry absent on one side means that path never touched the lock:
	// nothing is held there and nothing needs releasing, so the other
	// side's entry passes through unchanged. Intersecting the defer bits
	// against an absent entry would wrongly erase a deferred release when
	// a guard clause (`if x == nil { return }`) precedes the Lock/defer
	// pair.
	for k, ea := range fa {
		if eb, present := fb[k]; present {
			put(k, joinEntries(ea, eb))
		} else {
			put(k, ea)
		}
	}
	for k, eb := range fb {
		if _, seen := fa[k]; !seen {
			put(k, eb)
		}
	}
	return out
}

func joinEntries(a, b lockEntry) lockEntry {
	e := lockEntry{bits: (a.bits|b.bits)&heldMask | a.bits&b.bits&deferMask}
	// Keep the earliest valid acquire position for stable diagnostics.
	switch {
	case a.pos == token.NoPos:
		e.pos = b.pos
	case b.pos == token.NoPos || a.pos < b.pos:
		e.pos = a.pos
	default:
		e.pos = b.pos
	}
	return e
}

func (la *lockAnalysis) Equal(a, b cfg.Fact) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, ea := range fa {
		if eb, ok := fb[k]; !ok || ea != eb {
			return false
		}
	}
	return true
}

// eventKind discriminates the lock-relevant operations a node can hold.
type eventKind int

const (
	evLock eventKind = iota
	evRLock
	evUnlock
	evRUnlock
	evDeferUnlock
	evDeferRUnlock
)

type lockEvent struct {
	kind eventKind
	recv string
	pos  token.Pos
}

// lockEvents extracts the lock operations of one CFG node in source
// order. Deferred calls — direct `defer mu.Unlock()` or releases inside
// a deferred function literal — become defer events; nested function
// literals are otherwise opaque.
func lockEvents(pass *Pass, n ast.Node) []lockEvent {
	var evs []lockEvent
	if d, ok := n.(*ast.DeferStmt); ok {
		return deferEvents(pass, d)
	}
	walkShallow(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.DeferStmt:
			evs = append(evs, deferEvents(pass, sub)...)
			return false
		case *ast.CallExpr:
			if ev, ok := callEvent(pass, sub); ok {
				evs = append(evs, ev)
			}
		}
		return true
	})
	return evs
}

func callEvent(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	name, recv, _, ok := syncMethod(pass, call)
	if !ok {
		return lockEvent{}, false
	}
	var kind eventKind
	switch name {
	case "Lock":
		kind = evLock
	case "RLock":
		kind = evRLock
	case "Unlock":
		kind = evUnlock
	case "RUnlock":
		kind = evRUnlock
	default:
		return lockEvent{}, false
	}
	return lockEvent{kind: kind, recv: recv, pos: call.Pos()}, true
}

// deferEvents turns the releases a defer statement registers into defer
// events: the direct call, or every release inside a deferred literal.
func deferEvents(pass *Pass, d *ast.DeferStmt) []lockEvent {
	var evs []lockEvent
	record := func(call *ast.CallExpr) {
		ev, ok := callEvent(pass, call)
		if !ok {
			return
		}
		switch ev.kind {
		case evUnlock:
			ev.kind = evDeferUnlock
		case evRUnlock:
			ev.kind = evDeferRUnlock
		default:
			return // a deferred Lock is too strange to model
		}
		evs = append(evs, ev)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if call, isCall := n.(*ast.CallExpr); isCall {
				record(call)
			}
			return true
		})
		return evs
	}
	record(d.Call)
	return evs
}

// walkShallow visits a CFG node's subtree the way the graph means it:
// function literal bodies are separate functions and a RangeStmt node
// stands only for its subject and iteration variables, not its body.
func walkShallow(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		for _, sub := range []ast.Node{r.Key, r.Value, r.X} {
			if sub != nil {
				walkShallow(sub, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if sub == nil {
			return false
		}
		if _, isLit := sub.(*ast.FuncLit); isLit {
			return false
		}
		if r, isRange := sub.(*ast.RangeStmt); isRange && r != n {
			walkShallow(r, fn)
			return false
		}
		return fn(sub)
	})
}

// blockingOp describes the first blocking operation found in a node:
// channel send/receive, range over a channel, or WaitGroup.Wait.
func blockingOp(pass *Pass, n ast.Node) (string, bool) {
	desc, found := "", false
	if r, ok := n.(*ast.RangeStmt); ok {
		if t := pass.Info.TypeOf(r.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
	}
	walkShallow(n, func(sub ast.Node) bool {
		if found {
			return false
		}
		switch sub := sub.(type) {
		case *ast.SendStmt:
			desc, found = "channel send", true
			return false
		case *ast.UnaryExpr:
			if sub.Op == token.ARROW {
				desc, found = "channel receive", true
				return false
			}
		case *ast.CallExpr:
			if name, _, typeName, ok := syncMethod(pass, sub); ok && name == "Wait" && typeName == "WaitGroup" {
				desc, found = "WaitGroup.Wait", true
				return false
			}
		}
		return true
	})
	return desc, found
}

// checkLockFlow analyzes one function body.
func checkLockFlow(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	la := &lockAnalysis{pass: pass}
	res := cfg.Forward(g, la)

	res.Visit(g, la, func(n ast.Node, before cfg.Fact) {
		// Blocking operations under a lock, judged by the state on entry
		// to the node (a node that locks and then blocks is two nodes).
		if held := before.(lockFact).anyHeld(); len(held) > 0 {
			if desc, ok := blockingOp(pass, n); ok {
				pass.Reportf(n.Pos(), "%s while holding %s: blocking under a lock invites deadlock (release first, or waive with a reason)",
					desc, strings.Join(held, ", "))
			}
		}
		// Re-acquisition hazards, applying the node's events one by one
		// (a node rarely holds more than one, but conditions can).
		f := before.(lockFact)
		for _, ev := range lockEvents(pass, n) {
			e := f[ev.recv]
			switch ev.kind {
			case evLock:
				if e.bits&lockHeld != 0 {
					pass.Reportf(ev.pos, "%s.Lock() may already be held here (double lock deadlocks)", ev.recv)
				} else if e.bits&rlockHeld != 0 {
					pass.Reportf(ev.pos, "%s.Lock() while %s.RLock() may be held: read-to-write upgrade self-deadlocks", ev.recv, ev.recv)
				}
			case evRLock:
				if e.bits&lockHeld != 0 {
					pass.Reportf(ev.pos, "%s.RLock() while %s.Lock() may be held", ev.recv, ev.recv)
				}
			default:
				// Releases and defers carry no acquisition hazard.
			}
			f = applyLockEvent(f, ev)
		}
	})

	// Exit check: whatever may still be held, minus the releases every
	// path deferred, leaks on some path (return, panic, or fall-off).
	exitFact, reachable := res.In[g.Exit]
	if !reachable {
		return
	}
	f := exitFact.(lockFact)
	recvs := make([]string, 0, len(f))
	for recv := range f {
		recvs = append(recvs, recv)
	}
	sort.Strings(recvs)
	for _, recv := range recvs {
		e := f[recv]
		pos := e.pos
		if pos == token.NoPos {
			pos = body.Pos()
		}
		if e.bits&lockHeld != 0 && e.bits&deferUnlock == 0 {
			pass.Reportf(pos, "%s.Lock() is not released on every path to return (early return or panic escapes the unlock; defer %s.Unlock() or release before leaving)", recv, recv)
		}
		if e.bits&rlockHeld != 0 && e.bits&deferRUnlock == 0 {
			pass.Reportf(pos, "%s.RLock() is not released on every path to return (defer %s.RUnlock() or release before leaving)", recv, recv)
		}
	}
}
