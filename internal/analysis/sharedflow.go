package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shadow/internal/analysis/cfg"
)

// sharedHotTypes registers the simulator's hot-path types whose state is
// single-writer by design: the event-driven scheduler (PR 5) holds its
// zero-alloc invariants only because exactly one goroutine mutates the
// controller, the indexed min-queue, and the per-run simulation state.
// Matching is by declaring package name plus type name, restricted to
// module-local packages, so fixtures can masquerade with a package
// clause the way determinism fixtures masquerade with a path override.
var sharedHotTypes = map[string]bool{
	"memctrl.Controller": true,
	"minq.Queue":         true,
	"sim.runner":         true,
	"sim.core":           true,
	// The flight recorder's ring is written on the command hot path and
	// snapshotted from Inspector HTTP goroutines; its methods synchronize
	// internally, so any *field* write from a goroutine or callback without
	// the ring's own mutex is a bug.
	"flight.Ring": true,
	// The fleet collector is fed from every sweep worker goroutine, the
	// scrape poller, and HTTP handlers at once; all of its state is guarded
	// by one mutex, so a bare field write from a goroutine is a race.
	"fleet.Collector": true,
}

// SharedFlow protects those invariants at the concurrency boundary:
// writing a field of a registered hot-path type from inside a goroutine
// or an escaping function literal (a callback handed to another
// component) must happen with a lock provably held at the write — per
// the same flow analysis lockflow uses — or carry a waiver explaining
// the synchronization that the analyzer cannot see. Synchronous,
// same-goroutine writes (the entire simulator hot path) are untouched.
// The ROADMAP's sharded sweep service will hand simulator state to
// worker pools; this analyzer makes such sharing a reviewed decision
// instead of a silent race.
var SharedFlow = &Analyzer{
	Name: "sharedflow",
	Doc: "require writes to hot-path simulator types (memctrl.Controller, minq.Queue, sim runner state) " +
		"inside goroutines or callbacks to hold a lock",
	Run: runSharedFlow,
}

func runSharedFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkAsyncWrites(pass, lit, "goroutine")
				}
			case *ast.CallExpr:
				// A literal passed as an argument escapes into code that
				// may run it on any goroutine.
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						checkAsyncWrites(pass, lit, "callback")
					}
				}
			}
			return true
		})
	}
}

// checkAsyncWrites flags unguarded hot-type field writes inside one
// asynchronous function literal, using the lockflow dataflow to decide
// "guarded": the write is fine when some lock is held at that point in
// the literal's own body (a lock taken by the spawner does not protect
// code that runs after the spawner released it).
func checkAsyncWrites(pass *Pass, lit *ast.FuncLit, context string) {
	g := cfg.New(lit.Body)
	la := &lockAnalysis{pass: pass}
	res := cfg.Forward(g, la)
	res.Visit(g, la, func(n ast.Node, before cfg.Fact) {
		if len(before.(lockFact).anyHeld()) > 0 {
			return // guarded: some lock is held across this node
		}
		for _, write := range hotFieldWrites(pass, n) {
			pass.Reportf(write.pos, "write to %s field %s inside a %s without a lock held: %s is single-writer by design; guard the write or waive with the synchronization story",
				write.typeName, write.field, context, write.typeName)
		}
	})
}

// hotWrite is one flagged field write.
type hotWrite struct {
	typeName string // e.g. memctrl.Controller
	field    string // rendered selector, e.g. c.banks
	pos      token.Pos
}

// hotFieldWrites extracts writes to registered hot-type fields from one
// CFG node: assignment LHSs and IncDec targets, looked through index
// and dereference expressions (c.banks[i].n++ writes through c.banks).
func hotFieldWrites(pass *Pass, n ast.Node) []hotWrite {
	var writes []hotWrite
	collect := func(lhs ast.Expr) {
		ast.Inspect(lhs, func(sub ast.Node) bool {
			sel, ok := sub.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := hotSelector(pass, sel)
			if !ok {
				return true
			}
			writes = append(writes, hotWrite{
				typeName: name,
				field:    types.ExprString(sel),
				pos:      sel.Pos(),
			})
			return false
		})
	}
	walkShallow(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.AssignStmt:
			for _, lhs := range sub.Lhs {
				collect(lhs)
			}
		case *ast.IncDecStmt:
			collect(sub.X)
		}
		return true
	})
	return writes
}

// hotSelector reports whether sel selects a field of a registered
// hot-path type, returning the type's registered name.
func hotSelector(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	t := selection.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "shadow/") {
		return "", false
	}
	name := obj.Pkg().Name() + "." + obj.Name()
	if !sharedHotTypes[name] {
		return "", false
	}
	return name, true
}
