package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"shadow/internal/analysis/cfg"
)

// GoroLeak requires every `go` statement to carry a visible termination
// signal — the reviewer (and the next maintainer) must be able to see,
// at the spawn site, how the goroutine ends or how its end is observed:
//
//   - a channel operation in the body: receiving (`<-ctx.Done()`, a
//     select communication, ranging over a channel until it closes) ties
//     the goroutine's lifetime to a signal someone else controls, and
//     sending publishes its completion;
//   - a sync.WaitGroup.Done call on every path to the body's exit
//     (deferred, or flow-proven by the CFG on all branches) — a Done in
//     only one arm of an if undercounts the group and deadlocks Wait;
//   - for `go namedFunc(args)`, an argument that could carry such a
//     signal: a context.Context, a channel, or a *sync.WaitGroup.
//
// A goroutine whose body has an unreachable exit (an infinite loop) and
// no channel operation can never terminate and is always a finding. The
// deliberate process-lifetime goroutine (an HTTP server torn down only
// at exit) states its contract with a //shadowvet:ignore goroleak
// waiver. The ROADMAP's sharded sweep service and fleet dashboard will
// multiply goroutine spawn sites; this gate exists before that code
// does.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "require every go statement to show a termination signal: a channel op, a context, " +
		"or WaitGroup.Done on all paths",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
				checkGoroutineBody(pass, g, lit.Body)
				return true
			}
			if !signalCapableArgs(pass, g.Call) {
				pass.Reportf(g.Pos(), "goroutine calls a named function with no visible termination signal in its arguments (no context.Context, channel, or *sync.WaitGroup); thread one through or waive with the lifetime contract")
			}
			return true
		})
	}
}

// checkGoroutineBody accepts a literal-bodied goroutine when the body
// contains a channel operation, or when WaitGroup.Done is proven on
// every path to a reachable exit.
func checkGoroutineBody(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	if bodyHasChannelOp(pass, body) {
		return
	}
	graph := cfg.New(body)
	da := &doneAnalysis{pass: pass}
	res := cfg.Forward(graph, da)
	exitFact, exitReachable := res.In[graph.Exit]
	if exitReachable && exitFact.(bool) {
		return // Done (or a deferred Done) on every terminating path
	}
	if !exitReachable {
		pass.Reportf(g.Pos(), "goroutine never terminates: its body cannot reach the end of the function and performs no channel operation; add a stop signal (context, closed channel) or waive with the lifetime contract")
		return
	}
	pass.Reportf(g.Pos(), "goroutine has no visible termination signal: no channel operation, context, or WaitGroup.Done on every path; make the lifetime observable or waive with a reason")
}

// bodyHasChannelOp reports whether the body (excluding nested function
// literals) performs any channel operation: send, receive, select
// communication, or range over a channel.
func bodyHasChannelOp(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// doneAnalysis is the must-analysis behind the WaitGroup.Done rule: the
// fact is "Done has been called (or deferred) on every path reaching
// this point", joined with AND.
type doneAnalysis struct{ pass *Pass }

func (da *doneAnalysis) Entry() cfg.Fact { return false }

func (da *doneAnalysis) Transfer(n ast.Node, in cfg.Fact) cfg.Fact {
	if in.(bool) {
		return true
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		return deferCallsDone(da.pass, d)
	}
	done := false
	walkShallow(n, func(sub ast.Node) bool {
		if done {
			return false
		}
		if d, isDefer := sub.(*ast.DeferStmt); isDefer {
			done = deferCallsDone(da.pass, d)
			return false
		}
		if call, isCall := sub.(*ast.CallExpr); isCall && isWaitGroupDone(da.pass, call) {
			done = true
			return false
		}
		return true
	})
	return done
}

func (da *doneAnalysis) Join(a, b cfg.Fact) cfg.Fact { return a.(bool) && b.(bool) }
func (da *doneAnalysis) Equal(a, b cfg.Fact) bool    { return a.(bool) == b.(bool) }

func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	name, _, typeName, ok := syncMethod(pass, call)
	return ok && name == "Done" && typeName == "WaitGroup"
}

// deferCallsDone matches `defer wg.Done()` and `defer func() { ...
// wg.Done() ... }()` — a deferred Done runs on every path from here.
func deferCallsDone(pass *Pass, d *ast.DeferStmt) bool {
	if isWaitGroupDone(pass, d.Call) {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall && isWaitGroupDone(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// signalCapableArgs reports whether any argument of a named-function
// goroutine could carry a termination signal.
func signalCapableArgs(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pass.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if isSignalType(t) {
			return true
		}
	}
	return false
}

// isSignalType matches context.Context, channels, and *sync.WaitGroup.
func isSignalType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Chan:
		return true
	case *types.Pointer:
		if named, ok := u.Elem().(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
		}
	case *types.Interface:
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
		}
	}
	return false
}
