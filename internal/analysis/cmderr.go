package analysis

import (
	"go/ast"
	"go/types"
)

// dramPkgPath is the package whose command-issuing methods are protected.
const dramPkgPath = "shadow/internal/dram"

// CmdErr flags DRAM command-issuing calls whose error result is thrown
// away: a dropped TimingError means a protocol violation (tRC too tight, an
// ACT to a busy bank) silently vanishes and the simulation keeps running on
// an impossible command stream. Every method of internal/dram whose last
// result is an error must have that error checked — not discarded via a
// bare call statement, a blank assignment, go, or defer.
var CmdErr = &Analyzer{
	Name: "cmderr",
	Doc:  "forbid discarding the error of internal/dram command-issuing methods (Activate, Precharge, Refresh, RFM, ...)",
	Run:  runCmdErr,
}

func runCmdErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportDramCmd(pass, call, "result ignored")
				}
			case *ast.GoStmt:
				reportDramCmd(pass, n.Call, "error lost in go statement")
			case *ast.DeferStmt:
				reportDramCmd(pass, n.Call, "error lost in defer statement")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !isDramCmd(pass, call) {
					return true
				}
				// The error is the last result; flag when its receiver is blank.
				if last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
					reportDramCmd(pass, call, "error assigned to _")
				}
			}
			return true
		})
	}
}

func reportDramCmd(pass *Pass, call *ast.CallExpr, how string) {
	if !isDramCmd(pass, call) {
		return
	}
	sel := call.Fun.(*ast.SelectorExpr)
	pass.Reportf(call.Pos(), "dram.%s returns a protocol error that must be checked (%s)", sel.Sel.Name, how)
}

// isDramCmd reports whether call invokes a method of package internal/dram
// whose last result is an error.
func isDramCmd(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != dramPkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
