// Package hammer implements the Row Hammer fault model of the paper's
// threat model (Section II-D):
//
//  1. More than H_cnt (weighted) activations of aggressors near a victim row
//     within a refresh window cause a bit flip in the victim.
//  2. Aggressors also disturb non-adjacent rows within the blast radius,
//     with the effect halved per additional row of distance (blast-attacks).
//  3. Disturbance never crosses a subarray boundary.
//
// The model tracks, per DRAM-device-address (DA) row, the accumulated
// effective hammer count since that row's charge was last restored. Any full
// restore — auto-refresh, TRR, SHADOW's incremental refresh, the row's own
// activation, or being the destination of a row copy — resets the count.
// When a victim's count reaches H_cnt the model reports a bit flip.
package hammer

import "fmt"

// Config describes the vulnerability of a DRAM device.
type Config struct {
	// HCnt is the minimum effective activation count that flips a bit in a
	// victim row (the paper sweeps 16K down to 2K).
	HCnt int
	// BlastRadius is the maximum aggressor-to-victim distance that still
	// causes disturbance. 1 is classic adjacent-only RH; the paper uses 3 as
	// the default and notes radius 6 has been observed.
	BlastRadius int
}

// DefaultConfig matches the paper's defaults: H_cnt 4K, blast radius 3
// (weighted aggressor sum W_sum = 3.5).
func DefaultConfig() Config {
	return Config{HCnt: 4096, BlastRadius: 3}
}

// Weight returns the disturbance weight of an aggressor at the given
// distance from a victim: 1 for adjacent, halved per extra row, zero outside
// the blast radius.
func (c Config) Weight(distance int) float64 {
	if distance < 1 || distance > c.BlastRadius {
		return 0
	}
	return 1.0 / float64(int(1)<<(distance-1))
}

// WSum returns the paper's W_sum: the summed weight of every in-range
// aggressor position around a victim (both sides). For radius 3 it is 3.5.
func (c Config) WSum() float64 {
	s := 0.0
	for d := 1; d <= c.BlastRadius; d++ {
		s += 2 * c.Weight(d)
	}
	return s
}

// Flip records one RH-induced bit flip.
type Flip struct {
	Row      int     // DA row index within the subarray
	Pressure float64 // accumulated effective hammer count at flip time
	ByRow    int     // the aggressor DA row whose ACT completed the flip
}

// Subarray tracks hammer pressure for every DA row of one subarray.
type Subarray struct {
	cfg     Config
	eff     []float64 // effective hammer count per DA row since last restore
	flipped []bool    // rows that already flipped and were not yet restored
	flips   []Flip    // log of every flip since construction or Reset

	// Totals for experiment reporting.
	acts     int64
	restores int64
}

// NewSubarray returns a tracker for rows DA rows.
func NewSubarray(rows int, cfg Config) *Subarray {
	if rows <= 0 {
		panic(fmt.Sprintf("hammer: non-positive row count %d", rows))
	}
	if cfg.HCnt <= 0 || cfg.BlastRadius <= 0 {
		panic(fmt.Sprintf("hammer: invalid config %+v", cfg))
	}
	return &Subarray{ //shadowvet:ignore allocflow -- first-touch lazy subarray build, warm before steady state
		cfg:     cfg,
		eff:     make([]float64, rows), //shadowvet:ignore allocflow -- first-touch lazy subarray build, warm before steady state
		flipped: make([]bool, rows),    //shadowvet:ignore allocflow -- first-touch lazy subarray build, warm before steady state
	}
}

// Rows returns the number of tracked rows.
func (s *Subarray) Rows() int { return len(s.eff) }

// Config returns the vulnerability configuration.
func (s *Subarray) Config() Config { return s.cfg }

// Activate records an activation of DA row r. The activated row itself is
// fully restored (its cells are sensed and rewritten), while neighbors
// within the blast radius accumulate weighted disturbance. It returns the
// flips triggered by this activation, if any.
func (s *Subarray) Activate(r int) []Flip {
	s.mustRow(r)
	s.acts++
	// Activation restores the row's own charge.
	s.restoreRow(r)

	var out []Flip
	for d := 1; d <= s.cfg.BlastRadius; d++ {
		w := s.cfg.Weight(d)
		for _, v := range [2]int{r - d, r + d} {
			if v < 0 || v >= len(s.eff) {
				continue
			}
			s.eff[v] += w
			if s.eff[v] >= float64(s.cfg.HCnt) && !s.flipped[v] {
				f := Flip{Row: v, Pressure: s.eff[v], ByRow: r}
				s.flipped[v] = true
				s.flips = append(s.flips, f) //shadowvet:ignore allocflow -- a row enters the flip list at most once (flipped guard); bounded by rows per subarray
				out = append(out, f)         //shadowvet:ignore allocflow -- flip result list, non-empty only on rare flip events, not steady-state work
			}
		}
	}
	return out
}

// Refresh records a full charge restore of DA row r (auto-refresh, TRR,
// incremental refresh, or being written by a row copy). It clears the
// accumulated pressure; a previously flipped row is considered rewritten
// with correct data from the perspective of future flips.
func (s *Subarray) Refresh(r int) {
	s.mustRow(r)
	s.restores++
	s.restoreRow(r)
}

func (s *Subarray) restoreRow(r int) {
	s.eff[r] = 0
	s.flipped[r] = false
}

// Pressure returns the current effective hammer count of DA row r.
func (s *Subarray) Pressure(r int) float64 {
	s.mustRow(r)
	return s.eff[r]
}

// Flips returns the log of all flips recorded so far. The returned slice is
// owned by the tracker; callers must not modify it.
func (s *Subarray) Flips() []Flip { return s.flips }

// FlipCount returns the number of flips recorded so far.
func (s *Subarray) FlipCount() int { return len(s.flips) }

// Acts returns the total activations observed.
func (s *Subarray) Acts() int64 { return s.acts }

// Restores returns the total row restores observed (excluding those implied
// by activations).
func (s *Subarray) Restores() int64 { return s.restores }

// Reset clears all state including the flip log.
func (s *Subarray) Reset() {
	for i := range s.eff {
		s.eff[i] = 0
		s.flipped[i] = false
	}
	s.flips = nil
	s.acts = 0
	s.restores = 0
}

func (s *Subarray) mustRow(r int) {
	if r < 0 || r >= len(s.eff) {
		panic(fmt.Sprintf("hammer: row %d out of range [0,%d)", r, len(s.eff)))
	}
}
