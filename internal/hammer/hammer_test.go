package hammer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeight(t *testing.T) {
	c := Config{HCnt: 100, BlastRadius: 3}
	cases := []struct {
		d    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 0.5}, {3, 0.25}, {4, 0}, {-1, 0},
	}
	for _, cse := range cases {
		if got := c.Weight(cse.d); got != cse.want {
			t.Errorf("Weight(%d) = %g, want %g", cse.d, got, cse.want)
		}
	}
}

// TestWSumDefault: the paper sets W_sum = 3.5 for the default blast radius 3.
func TestWSumDefault(t *testing.T) {
	if got := DefaultConfig().WSum(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("WSum() = %g, want 3.5", got)
	}
	if got := (Config{HCnt: 1, BlastRadius: 1}).WSum(); got != 2 {
		t.Fatalf("radius-1 WSum = %g, want 2", got)
	}
}

func TestSingleSidedFlip(t *testing.T) {
	s := NewSubarray(16, Config{HCnt: 100, BlastRadius: 1})
	var flips []Flip
	for i := 0; i < 99; i++ {
		flips = append(flips, s.Activate(5)...)
	}
	if len(flips) != 0 {
		t.Fatalf("flipped after 99 ACTs with HCnt 100: %v", flips)
	}
	flips = s.Activate(5)
	if len(flips) != 2 {
		t.Fatalf("expected both neighbors to flip on ACT 100, got %v", flips)
	}
	rows := map[int]bool{flips[0].Row: true, flips[1].Row: true}
	if !rows[4] || !rows[6] {
		t.Fatalf("flipped rows %v, want 4 and 6", rows)
	}
	for _, f := range flips {
		if f.ByRow != 5 {
			t.Errorf("flip attributed to row %d, want 5", f.ByRow)
		}
		if f.Pressure < 100 {
			t.Errorf("flip pressure %g below HCnt", f.Pressure)
		}
	}
}

func TestDoubleSidedFlipTwiceAsFast(t *testing.T) {
	// Alternating ACTs on rows 4 and 6 hammer row 5 from both sides: the
	// victim accumulates 1 per ACT, so it flips after HCnt total ACTs.
	s := NewSubarray(16, Config{HCnt: 100, BlastRadius: 1})
	n := 0
	for i := 0; ; i++ {
		r := 4
		if i%2 == 1 {
			r = 6
		}
		n++
		if flips := s.Activate(r); len(flips) > 0 {
			if flips[0].Row != 5 {
				t.Fatalf("flipped row %d, want 5", flips[0].Row)
			}
			break
		}
		if n > 101 {
			t.Fatal("no flip after 101 double-sided ACTs")
		}
	}
	if n != 100 {
		t.Fatalf("double-sided flip after %d ACTs, want 100", n)
	}
}

// TestBlastRadiusDistanceHalving: a victim at distance d needs 2^(d-1) times
// the ACT count (threat model item 2).
func TestBlastRadiusDistanceHalving(t *testing.T) {
	for d := 1; d <= 3; d++ {
		s := NewSubarray(32, Config{HCnt: 64, BlastRadius: 3})
		aggr := 16
		victim := 16 + d
		acts := 0
		for s.Pressure(victim) < 64 {
			s.Activate(aggr)
			acts++
			if acts > 64*8+1 {
				t.Fatalf("distance %d: no flip after %d ACTs", d, acts)
			}
		}
		want := 64 * (1 << (d - 1))
		if acts != want {
			t.Errorf("distance %d: flip after %d ACTs, want %d", d, acts, want)
		}
	}
}

func TestRefreshResetsPressure(t *testing.T) {
	s := NewSubarray(16, Config{HCnt: 100, BlastRadius: 1})
	for i := 0; i < 99; i++ {
		s.Activate(5)
	}
	s.Refresh(4)
	if got := s.Pressure(4); got != 0 {
		t.Fatalf("pressure after refresh = %g", got)
	}
	// Row 6 was not refreshed and flips on the next ACT; row 4 does not.
	flips := s.Activate(5)
	if len(flips) != 1 || flips[0].Row != 6 {
		t.Fatalf("flips = %v, want only row 6", flips)
	}
}

// TestActivationRestoresSelf: activating the victim itself resets its
// pressure (ACT-PRE restores the charge).
func TestActivationRestoresSelf(t *testing.T) {
	s := NewSubarray(16, Config{HCnt: 100, BlastRadius: 1})
	for i := 0; i < 99; i++ {
		s.Activate(5)
	}
	if s.Pressure(6) != 99 {
		t.Fatalf("pressure = %g, want 99", s.Pressure(6))
	}
	s.Activate(6) // victim activated: restored (and hammers its own neighbors)
	if s.Pressure(6) != 0 {
		t.Fatalf("pressure after self-ACT = %g, want 0", s.Pressure(6))
	}
}

func TestFlipReportedOncePerRestoreCycle(t *testing.T) {
	s := NewSubarray(16, Config{HCnt: 10, BlastRadius: 1})
	total := 0
	for i := 0; i < 30; i++ {
		total += len(s.Activate(5))
	}
	// Rows 4 and 6 each flip exactly once (they stay flipped; pressure keeps
	// accumulating but no duplicate reports).
	if total != 2 {
		t.Fatalf("%d flips reported, want 2", total)
	}
	// After a refresh the row can flip again.
	s.Refresh(4)
	for i := 0; i < 10; i++ {
		total += len(s.Activate(5))
	}
	if total != 3 {
		t.Fatalf("%d flips reported after refresh cycle, want 3", total)
	}
	if s.FlipCount() != 3 {
		t.Fatalf("FlipCount = %d, want 3", s.FlipCount())
	}
}

func TestEdgeRowsClamped(t *testing.T) {
	s := NewSubarray(4, Config{HCnt: 5, BlastRadius: 3})
	// Activating row 0 must not panic; victims only on the high side.
	for i := 0; i < 10; i++ {
		s.Activate(0)
		s.Activate(3)
	}
	if s.FlipCount() == 0 {
		t.Fatal("expected flips near array edges")
	}
}

func TestSubarrayBoundaryIsolation(t *testing.T) {
	// Two independent subarrays model threat item 3: hammering one never
	// touches the other.
	a := NewSubarray(8, Config{HCnt: 2, BlastRadius: 3})
	b := NewSubarray(8, Config{HCnt: 2, BlastRadius: 3})
	for i := 0; i < 100; i++ {
		a.Activate(7) // last row of a; in a flat layout rows 8,9 would suffer
	}
	if b.FlipCount() != 0 || b.Pressure(0) != 0 {
		t.Fatal("disturbance crossed subarray boundary")
	}
}

func TestCountersAndReset(t *testing.T) {
	s := NewSubarray(8, Config{HCnt: 3, BlastRadius: 1})
	s.Activate(2)
	s.Activate(2)
	s.Refresh(1)
	if s.Acts() != 2 || s.Restores() != 1 {
		t.Fatalf("acts/restores = %d/%d, want 2/1", s.Acts(), s.Restores())
	}
	s.Reset()
	if s.Acts() != 0 || s.Restores() != 0 || s.FlipCount() != 0 || s.Pressure(1) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// TestPressureConservation (property): total pressure added by one ACT in
// the middle of the array equals WSum.
func TestPressureConservation(t *testing.T) {
	cfg := Config{HCnt: 1 << 30, BlastRadius: 3}
	f := func(seed uint8) bool {
		s := NewSubarray(64, cfg)
		r := 8 + int(seed)%48 // keep away from edges
		before := totalPressure(s)
		s.Activate(r)
		after := totalPressure(s)
		return math.Abs((after-before)-cfg.WSum()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func totalPressure(s *Subarray) float64 {
	sum := 0.0
	for i := 0; i < s.Rows(); i++ {
		sum += s.Pressure(i)
	}
	return sum
}

func TestPanicsOnBadInput(t *testing.T) {
	s := NewSubarray(8, DefaultConfig())
	for _, fn := range []func(){
		func() { s.Activate(-1) },
		func() { s.Activate(8) },
		func() { s.Refresh(100) },
		func() { NewSubarray(0, DefaultConfig()) },
		func() { NewSubarray(8, Config{HCnt: 0, BlastRadius: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
