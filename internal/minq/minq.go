// Package minq provides an indexed min-priority queue over a fixed universe
// of integer indices [0, n), keyed by timing.Tick. It backs the memory
// controller's per-bank readiness cache: each bank carries its earliest
// possibly-actionable tick, and the scheduler pops only the banks whose tick
// has arrived instead of rescanning every bank on every Step.
//
// The queue is a classic indexed binary heap: Set (insert or re-key), Remove,
// Min, and Pop are all O(log n); Key and Contains are O(1). Ties break toward
// the lower index, so the pop order is a pure function of the key assignment
// and never depends on insertion history — a requirement for the simulator's
// same-seed determinism guarantee (two runs issuing identical Set sequences
// must observe identical Min/Pop sequences).
//
// The zero-allocation guarantee matters as much as the asymptotics: every
// operation works in the three arrays allocated by New, so the controller's
// hot path stays free of per-Step allocations.
package minq

import "shadow/internal/timing"

// Queue is an indexed min-priority queue over indices [0, n). The zero value
// is not usable; call New.
type Queue struct {
	keys []timing.Tick
	heap []int // heap[j] is the index stored at heap position j
	pos  []int // pos[i] is i's heap position, or -1 when absent
}

// New builds an empty queue over the index universe [0, n).
func New(n int) *Queue {
	q := &Queue{
		keys: make([]timing.Tick, n),
		heap: make([]int, 0, n),
		pos:  make([]int, n),
	}
	for i := range q.pos {
		q.pos[i] = -1
	}
	return q
}

// Len returns the number of indices currently queued.
func (q *Queue) Len() int { return len(q.heap) }

// Cap returns the size of the index universe.
func (q *Queue) Cap() int { return len(q.pos) }

// Contains reports whether index i is queued.
func (q *Queue) Contains(i int) bool { return q.pos[i] >= 0 }

// Key returns index i's key; ok is false when i is not queued.
func (q *Queue) Key(i int) (key timing.Tick, ok bool) {
	if q.pos[i] < 0 {
		return 0, false
	}
	return q.keys[i], true
}

// Set inserts index i with the given key, or re-keys it if already queued.
func (q *Queue) Set(i int, key timing.Tick) {
	if q.pos[i] >= 0 {
		old := q.keys[i]
		q.keys[i] = key
		switch {
		case key < old:
			q.up(q.pos[i])
		case key > old:
			q.down(q.pos[i])
		}
		return
	}
	q.keys[i] = key
	q.pos[i] = len(q.heap)
	q.heap = append(q.heap, i) //shadowvet:ignore allocflow -- heap append; capacity tops out at the tracked index count after first touches
	q.up(q.pos[i])
}

// Remove deletes index i from the queue; removing an absent index is a no-op.
func (q *Queue) Remove(i int) {
	p := q.pos[i]
	if p < 0 {
		return
	}
	last := len(q.heap) - 1
	q.swap(p, last)
	q.heap = q.heap[:last]
	q.pos[i] = -1
	if p < last {
		q.down(p)
		q.up(p)
	}
}

// Min returns the queued index with the smallest key (ties toward the lower
// index) without removing it; ok is false when the queue is empty.
func (q *Queue) Min() (i int, key timing.Tick, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	i = q.heap[0]
	return i, q.keys[i], true
}

// Pop removes and returns the queued index with the smallest key.
func (q *Queue) Pop() (i int, key timing.Tick, ok bool) {
	i, key, ok = q.Min()
	if ok {
		q.Remove(i)
	}
	return i, key, ok
}

// less orders heap positions by (key, index): ties break toward the lower
// index so pop order is independent of insertion history.
func (q *Queue) less(a, b int) bool {
	ia, ib := q.heap[a], q.heap[b]
	if q.keys[ia] != q.keys[ib] {
		return q.keys[ia] < q.keys[ib]
	}
	return ia < ib
}

func (q *Queue) swap(a, b int) {
	q.heap[a], q.heap[b] = q.heap[b], q.heap[a]
	q.pos[q.heap[a]] = a
	q.pos[q.heap[b]] = b
}

func (q *Queue) up(p int) {
	for p > 0 {
		parent := (p - 1) / 2
		if !q.less(p, parent) {
			return
		}
		q.swap(p, parent)
		p = parent
	}
}

func (q *Queue) down(p int) {
	n := len(q.heap)
	for {
		l, r := 2*p+1, 2*p+2
		smallest := p
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == p {
			return
		}
		q.swap(p, smallest)
		p = smallest
	}
}
