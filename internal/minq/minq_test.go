package minq

import (
	"math/rand"
	"sort"
	"testing"

	"shadow/internal/timing"
)

func TestEmpty(t *testing.T) {
	q := New(4)
	if q.Len() != 0 || q.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d, want 0,4", q.Len(), q.Cap())
	}
	if _, _, ok := q.Min(); ok {
		t.Fatal("Min on empty queue reported ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
	if q.Contains(2) {
		t.Fatal("empty queue Contains(2)")
	}
	if _, ok := q.Key(2); ok {
		t.Fatal("empty queue Key(2) reported ok")
	}
	q.Remove(3) // absent removal must be a no-op
	if q.Len() != 0 {
		t.Fatalf("Len=%d after no-op Remove, want 0", q.Len())
	}
}

func TestSetUpdateAndPopOrder(t *testing.T) {
	q := New(8)
	q.Set(3, 30)
	q.Set(1, 10)
	q.Set(5, 20)
	q.Set(7, 40)
	if i, k, _ := q.Min(); i != 1 || k != 10 {
		t.Fatalf("Min=(%d,%d), want (1,10)", i, k)
	}

	// Re-key down and up.
	q.Set(7, 5)
	if i, k, _ := q.Min(); i != 7 || k != 5 {
		t.Fatalf("after re-key down Min=(%d,%d), want (7,5)", i, k)
	}
	q.Set(7, 35)
	if i, k, _ := q.Min(); i != 1 || k != 10 {
		t.Fatalf("after re-key up Min=(%d,%d), want (1,10)", i, k)
	}
	if k, ok := q.Key(7); !ok || k != 35 {
		t.Fatalf("Key(7)=(%d,%v), want (35,true)", k, ok)
	}

	wantOrder := []int{1, 5, 3, 7}
	for n, want := range wantOrder {
		i, _, ok := q.Pop()
		if !ok || i != want {
			t.Fatalf("pop %d = (%d,%v), want index %d", n, i, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len=%d after draining, want 0", q.Len())
	}
}

func TestTieBreakByIndex(t *testing.T) {
	// All keys equal: pop order must be ascending index regardless of the
	// insertion order, so scheduling never depends on heap history.
	ins := []int{6, 2, 9, 0, 4, 7, 1}
	q := New(10)
	for _, i := range ins {
		q.Set(i, 100)
	}
	want := append([]int(nil), ins...)
	sort.Ints(want)
	for n, w := range want {
		i, k, ok := q.Pop()
		if !ok || i != w || k != 100 {
			t.Fatalf("pop %d = (%d,%d,%v), want (%d,100,true)", n, i, k, ok, w)
		}
	}
}

func TestRemoveMiddle(t *testing.T) {
	q := New(6)
	for i := 0; i < 6; i++ {
		q.Set(i, timing.Tick(10*i))
	}
	q.Remove(2)
	q.Remove(0)
	if q.Contains(2) || q.Contains(0) {
		t.Fatal("removed indices still reported present")
	}
	want := []int{1, 3, 4, 5}
	for n, w := range want {
		i, _, ok := q.Pop()
		if !ok || i != w {
			t.Fatalf("pop %d = (%d,%v), want %d", n, i, ok, w)
		}
	}
}

// TestAgainstReference drives the queue with random Set/Remove/Pop against a
// brute-force model and checks every observable after every operation.
func TestAgainstReference(t *testing.T) {
	const n = 16
	rnd := rand.New(rand.NewSource(12345))
	q := New(n)
	model := make(map[int]timing.Tick)

	modelMin := func() (int, timing.Tick, bool) {
		best, bestKey, ok := -1, timing.Tick(0), false
		for i := 0; i < n; i++ {
			k, present := model[i]
			if !present {
				continue
			}
			if !ok || k < bestKey || (k == bestKey && i < best) {
				best, bestKey, ok = i, k, true
			}
		}
		return best, bestKey, ok
	}

	for step := 0; step < 20000; step++ {
		i := rnd.Intn(n)
		switch op := rnd.Intn(4); op {
		case 0, 1:
			k := timing.Tick(rnd.Intn(50))
			q.Set(i, k)
			model[i] = k
		case 2:
			q.Remove(i)
			delete(model, i)
		case 3:
			gi, gk, gok := q.Pop()
			wi, wk, wok := modelMin()
			if gok != wok || (gok && (gi != wi || gk != wk)) {
				t.Fatalf("step %d: Pop=(%d,%d,%v), want (%d,%d,%v)", step, gi, gk, gok, wi, wk, wok)
			}
			if gok {
				delete(model, gi)
			}
		}
		if q.Len() != len(model) {
			t.Fatalf("step %d: Len=%d, model has %d", step, q.Len(), len(model))
		}
		gi, gk, gok := q.Min()
		wi, wk, wok := modelMin()
		if gok != wok || (gok && (gi != wi || gk != wk)) {
			t.Fatalf("step %d: Min=(%d,%d,%v), want (%d,%d,%v)", step, gi, gk, gok, wi, wk, wok)
		}
		for j := 0; j < n; j++ {
			_, present := model[j]
			if q.Contains(j) != present {
				t.Fatalf("step %d: Contains(%d)=%v, model %v", step, j, q.Contains(j), present)
			}
		}
	}
}

func TestOperationsDoNotAllocate(t *testing.T) {
	q := New(32)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Set(i, timing.Tick(31-i))
		}
		for i := 0; i < 16; i++ {
			q.Remove(i * 2)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("AllocsPerRun=%v, want 0", allocs)
	}
}
