package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntnRange(t *testing.T) {
	src := NewCSPRNG(42)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := Intn(src, m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(src, 0) did not panic")
		}
	}()
	Intn(NewCSPRNG(1), 0)
}

// TestIntnUniform does a chi-square-style check: 513 bins (the SHADOW
// subarray row count) over many draws must all be populated evenly.
func TestIntnUniform(t *testing.T) {
	src := NewCSPRNG(7)
	const bins, draws = 513, 513 * 400
	counts := make([]int, bins)
	for i := 0; i < draws; i++ {
		counts[Intn(src, bins)]++
	}
	expect := float64(draws) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// dof = 512; mean 512, sd = sqrt(2*512) ~= 32. Allow 6 sigma.
	if chi2 > 512+6*32 {
		t.Errorf("chi-square = %.1f, too high for uniform (dof 512)", chi2)
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("bin %d never drawn", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := NewLFSR(99)
	for i := 0; i < 10000; i++ {
		v := Float64(src)
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := NewCSPRNG(3)
	for _, n := range []int{0, 1, 2, 16, 513} {
		p := Perm(src, n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestCSPRNGDeterministic(t *testing.T) {
	a, b := NewCSPRNG(1234), NewCSPRNG(1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewCSPRNG(1235)
	same := 0
	for i := 0; i < 100; i++ {
		if NewCSPRNG(1234).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent seeds collide %d/100 times", same)
	}
}

func TestCSPRNGReseedChangesStream(t *testing.T) {
	a := NewCSPRNG(1)
	first := a.Uint64()
	a.Reseed(2)
	b := NewCSPRNG(2)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Reseed(2) stream differs from NewCSPRNG(2)")
	}
	_ = first
}

// TestCSPRNGBitBalance: each of the 64 output bit positions should be set
// about half the time.
func TestCSPRNGBitBalance(t *testing.T) {
	src := NewCSPRNG(2024)
	const draws = 20000
	var ones [64]int
	for i := 0; i < draws; i++ {
		v := src.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / draws
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("bit %d set fraction %.3f, want ~0.5", b, frac)
		}
	}
}

func TestLFSRNonZeroAndDeterministic(t *testing.T) {
	l := NewLFSR(0) // zero seed must be remapped
	if l.state == 0 {
		t.Fatal("zero state accepted")
	}
	a, b := NewLFSR(77), NewLFSR(77)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("LFSR not deterministic")
		}
	}
}

// TestLFSRPeriodLongEnough: the register must not revisit its initial state
// within a large number of steps (maximal-length polynomial sanity check).
func TestLFSRPeriodLongEnough(t *testing.T) {
	l := NewLFSR(0xDEADBEEF)
	start := l.state
	for i := 0; i < 1_000_000; i++ {
		l.step()
		if l.state == start {
			t.Fatalf("LFSR state repeated after %d steps", i+1)
		}
	}
}

func TestReseededLFSR(t *testing.T) {
	plain := NewLFSR(5)
	reseeded := NewReseededLFSR(5, NewCSPRNG(9), 4)
	// First 4 outputs identical, then the reseeded one diverges.
	for i := 0; i < 4; i++ {
		if plain.Uint64() != reseeded.Uint64() {
			t.Fatalf("output %d diverged before reseed", i)
		}
	}
	if plain.Uint64() == reseeded.Uint64() {
		t.Fatal("reseed did not change the stream")
	}
}

func TestLFSRBitBalance(t *testing.T) {
	src := NewLFSR(31337)
	const draws = 20000
	total := 0
	for i := 0; i < draws; i++ {
		v := src.Uint64()
		for d := v; d != 0; d &= d - 1 {
			total++
		}
	}
	frac := float64(total) / (draws * 64)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LFSR ones fraction %.4f, want ~0.5", frac)
	}
}

func BenchmarkCSPRNGUint64(b *testing.B) {
	src := NewCSPRNG(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s ^= src.Uint64()
	}
	sink = s
}

func BenchmarkLFSRUint64(b *testing.B) {
	src := NewLFSR(1)
	var s uint64
	for i := 0; i < b.N; i++ {
		s ^= src.Uint64()
	}
	sink = s
}
