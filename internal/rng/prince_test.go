package rng

import (
	"testing"
	"testing/quick"
)

// TestPrinceVectors checks the five published test vectors from Appendix A
// of the PRINCE paper (Borghoff et al., ASIACRYPT 2012).
func TestPrinceVectors(t *testing.T) {
	vectors := []struct {
		k0, k1, pt, ct uint64
	}{
		{0x0000000000000000, 0x0000000000000000, 0x0000000000000000, 0x818665aa0d02dfda},
		{0x0000000000000000, 0x0000000000000000, 0xffffffffffffffff, 0x604ae6ca03c20ada},
		{0xffffffffffffffff, 0x0000000000000000, 0x0000000000000000, 0x9fb51935fc3df524},
		{0x0000000000000000, 0xffffffffffffffff, 0x0000000000000000, 0x78a54cbe737bb7ef},
		{0x0000000000000000, 0xfedcba9876543210, 0x0123456789abcdef, 0xae25ad3ca8fa9ccf},
	}
	for i, v := range vectors {
		p := NewPrince(v.k0, v.k1)
		if got := p.Encrypt(v.pt); got != v.ct {
			t.Errorf("vector %d: Encrypt(%016x) = %016x, want %016x", i, v.pt, got, v.ct)
		}
		if got := p.Decrypt(v.ct); got != v.pt {
			t.Errorf("vector %d: Decrypt(%016x) = %016x, want %016x", i, v.ct, got, v.pt)
		}
	}
}

func TestPrinceRoundTrip(t *testing.T) {
	f := func(k0, k1, m uint64) bool {
		p := NewPrince(k0, k1)
		return p.Decrypt(p.Encrypt(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPrinceAlphaReflection verifies the defining FX property:
// D(k0,k0',k1) == E(k0',k0,k1^alpha).
func TestPrinceAlphaReflection(t *testing.T) {
	f := func(k0, k1, m uint64) bool {
		p := NewPrince(k0, k1)
		refl := &Prince{k0: p.k0p, k0p: p.k0, k1: k1 ^ alpha}
		return p.Decrypt(m) == refl.Encrypt(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPrimeInvolution(t *testing.T) {
	f := func(s uint64) bool { return mPrime(mPrime(s)) == s }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSboxBijective(t *testing.T) {
	var seen [16]bool
	for _, v := range sbox {
		if seen[v] {
			t.Fatalf("S-box value %x repeated", v)
		}
		seen[v] = true
	}
	for i := uint64(0); i < 16; i++ {
		if sboxInv[sbox[i]] != i {
			t.Fatalf("sboxInv[sbox[%x]] = %x", i, sboxInv[sbox[i]])
		}
	}
}

func TestShiftRowsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range shiftRows {
		if seen[v] {
			t.Fatalf("shiftRows input %d used twice", v)
		}
		seen[v] = true
	}
	f := func(s uint64) bool {
		return doShiftRows(doShiftRows(s, &shiftRows), &shiftRowsInv) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPrinceDiffusion is a light avalanche check: flipping one plaintext bit
// should flip roughly half the ciphertext bits on average.
func TestPrinceDiffusion(t *testing.T) {
	p := NewPrince(0x0011223344556677, 0x8899aabbccddeeff)
	base := p.Encrypt(0)
	total := 0
	for b := 0; b < 64; b++ {
		diff := base ^ p.Encrypt(1<<b)
		n := 0
		for d := diff; d != 0; d &= d - 1 {
			n++
		}
		if n < 10 {
			t.Errorf("bit %d: only %d output bits flipped", b, n)
		}
		total += n
	}
	avg := float64(total) / 64
	if avg < 28 || avg > 36 {
		t.Errorf("average avalanche = %.1f bits, want ~32", avg)
	}
}

func BenchmarkPrinceEncrypt(b *testing.B) {
	p := NewPrince(0x0011223344556677, 0x8899aabbccddeeff)
	var s uint64
	for i := 0; i < b.N; i++ {
		s = p.Encrypt(s)
	}
	sink = s
}

var sink uint64
