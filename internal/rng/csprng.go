package rng

// CSPRNG is the paper's default per-chip random-number unit: PRINCE in
// counter (CTR) mode. Each 64-bit output block is Encrypt(nonce XOR ctr);
// the hardware version buffers blocks inside each bank's SHADOW controller
// in advance to hide generation latency, which is why throughput (>1 Gbit/s
// per instance, Section VIII) rather than latency is what matters.
type CSPRNG struct {
	cipher *Prince
	nonce  uint64
	ctr    uint64
}

var _ Source = (*CSPRNG)(nil)

// NewCSPRNG returns a PRINCE-CTR generator keyed and seeded from the given
// 64-bit seed. The seed is expanded into independent key halves and a nonce
// with a SplitMix64-style finalizer so that nearby seeds produce unrelated
// streams.
func NewCSPRNG(seed uint64) *CSPRNG {
	k0 := splitmix(&seed)
	k1 := splitmix(&seed)
	nonce := splitmix(&seed)
	return &CSPRNG{cipher: NewPrince(k0, k1), nonce: nonce}
}

// NewCSPRNGKeyed returns a PRINCE-CTR generator with an explicit key and
// nonce — the form used when modelling boot-time key initialization from a
// CPU-side true RNG (Section VIII).
func NewCSPRNGKeyed(k0, k1, nonce uint64) *CSPRNG {
	return &CSPRNG{cipher: NewPrince(k0, k1), nonce: nonce}
}

// splitmix is the SplitMix64 output function, used only for seed expansion.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 implements Source.
func (c *CSPRNG) Uint64() uint64 {
	v := c.cipher.Encrypt(c.nonce ^ c.ctr)
	c.ctr++
	return v
}

// Reseed rekeys the generator, modelling the periodic key/counter
// re-initialization strategy of Section VIII.
func (c *CSPRNG) Reseed(seed uint64) {
	*c = *NewCSPRNG(seed)
}
