package rng

// Source is the random-bit interface consumed by the SHADOW controller and
// the simulators. Implementations are deterministic given their seed so
// every experiment is reproducible.
type Source interface {
	// Uint64 returns the next 64 uniformly random bits.
	Uint64() uint64
}

// SplitMix is a fast non-cryptographic source (SplitMix64) for workload
// generation and other simulation plumbing where speed matters and
// unpredictability does not. The SHADOW controller itself must use the
// PRINCE-based CSPRNG (or the reseeded LFSR): its randomness is
// security-relevant.
type SplitMix struct{ state uint64 }

var _ Source = (*SplitMix)(nil)

// NewSplitMix returns a SplitMix64 source.
func NewSplitMix(seed uint64) *SplitMix { return &SplitMix{state: seed} }

// Uint64 implements Source.
func (s *SplitMix) Uint64() uint64 { return splitmix(&s.state) }

// Intn returns a uniform integer in [0, n) drawn from src, using rejection
// sampling so the result is exactly uniform (the controller draws row
// indices from small ranges; modulo bias would skew the shuffle analysis).
// It panics if n <= 0.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	un := uint64(n)
	// Largest multiple of n that fits in 64 bits.
	limit := (^uint64(0) / un) * un
	for {
		v := src.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform random permutation of [0, n) drawn from src.
func Perm(src Source, n int) []int {
	p := make([]int, n)
	for i := range p {
		j := Intn(src, i+1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
