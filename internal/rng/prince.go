// Package rng provides the random-number generation substrate of SHADOW's
// controller (Section V-C and Section VIII).
//
// The default generator is a CSPRNG built from the PRINCE block cipher in
// counter mode, matching the paper's choice ("cryptographically secure PRNG
// based on the PRINCE block cipher is used as default"). PRINCE is
// implemented from the specification (Borghoff et al., ASIACRYPT 2012) and
// verified against the published test vectors. A linear-feedback shift
// register (LFSR) generator with periodic reseeding is provided as the
// low-area alternative the paper discusses.
package rng

import "math/bits"

// Prince implements the PRINCE 64-bit block cipher with a 128-bit key
// (k0 || k1). PRINCE is a low-latency cipher designed for exactly the kind
// of in-DRAM hardware unit SHADOW uses; a single instance sustains more than
// 1 Gbit/s even at DRAM core frequencies (Section VIII).
type Prince struct {
	k0, k0p, k1 uint64
}

// alpha is the PRINCE reflection constant: RC[i] XOR RC[11-i] = alpha.
const alpha = 0xc0ac29b7c97c50dd

// roundConst are the PRINCE round constants RC0..RC11 (digits of pi).
var roundConst = [12]uint64{
	0x0000000000000000,
	0x13198a2e03707344,
	0xa4093822299f31d0,
	0x082efa98ec4e6c89,
	0x452821e638d01377,
	0xbe5466cf34e90c6c,
	0x7ef84f78fd955cb1,
	0x85840851f1ac43aa,
	0xc882d32f25323c54,
	0x64a51195e0e3610d,
	0xd3b5a399ca0c2399,
	0xc0ac29b7c97c50dd,
}

// sbox is the PRINCE S-box; sboxInv its inverse.
var sbox = [16]uint64{0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4}

var sboxInv = func() [16]uint64 {
	var inv [16]uint64
	for i, v := range sbox {
		inv[v] = uint64(i)
	}
	return inv
}()

// shiftRows maps output nibble position i (0 = most significant) to the
// input nibble it takes, exactly AES ShiftRows on the 4x4 nibble array.
var shiftRows = [16]int{0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11}

var shiftRowsInv = func() [16]int {
	var inv [16]int
	for i, v := range shiftRows {
		inv[v] = i
	}
	return inv
}()

// mPrimeRows is the 64x64 GF(2) matrix of the involutive M' layer, one
// uint64 row mask per output bit, with bit index 0 denoting the most
// significant state bit (the paper's bit ordering). Built at init from the
// block structure M' = diag(M̂0, M̂1, M̂1, M̂0), where each 16x16 M̂ is a 4x4
// arrangement of the 4x4 matrices m_k (identity with diagonal element k
// zeroed): block (R,C) of M̂0 is m_{(R+C) mod 4} and of M̂1 is
// m_{(R+C+1) mod 4}.
var mPrimeRows = func() [64]uint64 {
	var rows [64]uint64
	for chunk := 0; chunk < 4; chunk++ {
		offset := 0
		if chunk == 1 || chunk == 2 {
			offset = 1 // M̂1 for the middle two chunks
		}
		for br := 0; br < 4; br++ { // block row within the 16x16 M̂
			for bc := 0; bc < 4; bc++ { // block column
				k := (br + bc + offset) % 4
				// m_k is identity with row k zeroed: output bit r of the
				// block depends on input bit r unless r == k.
				for r := 0; r < 4; r++ {
					if r == k {
						continue
					}
					outBit := chunk*16 + br*4 + r // 0 = MSB
					inBit := chunk*16 + bc*4 + r
					rows[outBit] |= 1 << (63 - inBit)
				}
			}
		}
	}
	return rows
}()

// NewPrince returns a PRINCE instance for the 128-bit key (k0, k1).
func NewPrince(k0, k1 uint64) *Prince {
	return &Prince{
		k0:  k0,
		k0p: bits.RotateLeft64(k0, -1) ^ (k0 >> 63),
		k1:  k1,
	}
}

func subBytes(s uint64, box *[16]uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		out |= box[(s>>(60-4*i))&0xF] << (60 - 4*i)
	}
	return out
}

func mPrime(s uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= uint64(bits.OnesCount64(s&mPrimeRows[i])&1) << (63 - i)
	}
	return out
}

func doShiftRows(s uint64, perm *[16]int) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		nib := (s >> (60 - 4*perm[i])) & 0xF
		out |= nib << (60 - 4*i)
	}
	return out
}

// core is PRINCE-core: the FX-free part keyed by k1.
func (p *Prince) core(s uint64) uint64 {
	s ^= p.k1 ^ roundConst[0]
	for i := 1; i <= 5; i++ {
		s = subBytes(s, &sbox)
		s = doShiftRows(mPrime(s), &shiftRows)
		s ^= roundConst[i] ^ p.k1
	}
	s = subBytes(s, &sbox)
	s = mPrime(s)
	s = subBytes(s, &sboxInv)
	for i := 6; i <= 10; i++ {
		s ^= roundConst[i] ^ p.k1
		s = mPrime(doShiftRows(s, &shiftRowsInv))
		s = subBytes(s, &sboxInv)
	}
	return s ^ p.k1 ^ roundConst[11]
}

// Encrypt enciphers one 64-bit block.
func (p *Prince) Encrypt(m uint64) uint64 {
	return p.core(m^p.k0) ^ p.k0p
}

// Decrypt deciphers one 64-bit block using PRINCE's alpha-reflection
// property: decryption under (k0, k0', k1) equals encryption under
// (k0', k0, k1 XOR alpha).
func (p *Prince) Decrypt(c uint64) uint64 {
	inv := &Prince{k0: p.k0p, k0p: p.k0, k1: p.k1 ^ alpha}
	return inv.Encrypt(c)
}
