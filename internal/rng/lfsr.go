package rng

// LFSR is the low-area alternative random source discussed in Section VIII:
// a 64-bit maximal-length Galois linear-feedback shift register whose seed
// is periodically randomized (here: rekeyed from a PRINCE stream every
// ReseedInterval outputs). Recent DDR5 chips already carry an LFSR for read
// training patterns, which is the paper's argument for its negligible cost.
type LFSR struct {
	state uint64
	// reseeder, when non-nil, refreshes the state every ReseedInterval
	// outputs, closing the predictability hole of a bare LFSR.
	reseeder Source
	interval int
	produced int
}

var _ Source = (*LFSR)(nil)

// lfsrTaps is the feedback polynomial x^64 + x^63 + x^61 + x^60 + 1,
// a maximal-length polynomial for a 64-bit Galois LFSR.
const lfsrTaps = 0xD800000000000003 >> 2 << 2 // 0xD800000000000000

// NewLFSR returns a bare LFSR seeded with seed (zero is mapped to a fixed
// nonzero value, since the all-zero state is a fixed point).
func NewLFSR(seed uint64) *LFSR {
	if seed == 0 {
		seed = 0x1
	}
	return &LFSR{state: seed}
}

// NewReseededLFSR returns an LFSR that pulls a fresh state from reseeder
// every interval outputs — the configuration the paper recommends.
func NewReseededLFSR(seed uint64, reseeder Source, interval int) *LFSR {
	l := NewLFSR(seed)
	l.reseeder = reseeder
	l.interval = interval
	return l
}

// step advances the register one bit.
func (l *LFSR) step() uint64 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= lfsrTaps
	}
	return lsb
}

// Uint64 implements Source by clocking the register 64 times.
func (l *LFSR) Uint64() uint64 {
	if l.reseeder != nil && l.interval > 0 && l.produced >= l.interval {
		l.produced = 0
		s := l.reseeder.Uint64()
		if s == 0 {
			s = 1
		}
		l.state = s
	}
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | l.step()
	}
	l.produced++
	return v
}
