// Package memctrl implements the memory controller: per-bank FR-FCFS
// request scheduling with an open-page policy, full JEDEC timing enforcement
// (tRCD/tRP/tRAS/tCCD_L/S/tRRD_L/S/tFAW/bus occupancy), auto-refresh, the
// DDR5 RFM interface (per-bank RAA counters, RFM issue at RAAIMT, stall at
// RAAMMT), and the MC-side mitigation hooks (BlockHammer throttling, RRS row
// swaps with channel blocking, the Section VIII RFM filter).
//
// The controller is event-driven: Step(now) issues at most one DRAM command
// at `now` and returns the earliest future instant at which anything could
// change, so multi-millisecond refresh windows simulate quickly.
package memctrl

import (
	"fmt"

	"shadow/internal/dram"
	"shadow/internal/minq"
	"shadow/internal/mitigate"
	"shadow/internal/obs"
	"shadow/internal/obs/span"
	"shadow/internal/timing"
)

// Request is one memory transaction (a 64-byte line).
type Request struct {
	Core   int
	Bank   int
	Row    int
	Col    int
	Write  bool
	Arrive timing.Tick
	// Done is the completion time: data fully returned for reads, command
	// accepted for (posted) writes. Zero until completed.
	Done timing.Tick
	// Span is the request's shadowtap lifecycle record, opened at Enqueue
	// when span tracking is on (nil otherwise).
	Span *span.Span
}

// Stats aggregates controller activity.
type Stats struct {
	Acts, Reads, Writes, Pres int64
	Refs, RFMs, SkippedRFMs   int64
	Swaps, TRRs               int64
	RowHits, RowMisses        int64
	ReadLatency               timing.Tick // sum over completed reads (arrive -> data)
	CompletedReads            int64
	CompletedWrites           int64
	BlockedTime               timing.Tick // channel blocked by swaps
}

// Cmd is one DRAM command issued by the controller, as reported to the
// OnCommand hook (package cmdtrace validates streams of these against the
// JEDEC constraints independently of the device's own checking).
type Cmd struct {
	Kind CmdKind
	Bank int // -1 for rank-level commands (REF)
	Row  int // physical row for ACT; -1 otherwise
	At   timing.Tick
}

// CmdKind enumerates DRAM command types.
type CmdKind int

// Command kinds.
const (
	CmdACT CmdKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	CmdRFM
)

// String implements fmt.Stringer.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	case CmdRFM:
		return "RFM"
	}
	return fmt.Sprintf("CmdKind(%d)", int(k))
}

// Options configures a controller.
type Options struct {
	// MCSide is the controller-side mitigation policy (defaults to none).
	MCSide mitigate.MCSide
	// RFMFilter optionally gates RFM issue (Section VIII extension).
	RFMFilter *mitigate.RFMFilter
	// QueueCap bounds each bank's request queue (0 = 64).
	QueueCap int
	// ClosedPage precharges a bank as soon as no hits are queued, so every
	// access is an activation — the behaviour an attacker induces with
	// cache-flushing access sequences, used by the attack simulator.
	ClosedPage bool
	// SameBankRefresh uses DDR5 REFsb commands instead of all-bank REF: one
	// bank refreshes every tREFI/banks while the others keep serving,
	// trading rank-wide stalls for more frequent, cheaper ones. Requires a
	// parameter set with tRFCsb (DDR5).
	SameBankRefresh bool
	// OnComplete, when set, is invoked for every completed request.
	OnComplete func(*Request)
	// OnCommand, when set, observes every DRAM command the controller
	// issues (protocol validation, command-trace dumps).
	OnCommand func(Cmd)
	// Probe, when set, attaches shadowscope instrumentation: the command
	// stream as trace events plus read-latency / queue-depth / row-locality
	// histograms and ACT/RFM rate series. Nil costs one check per command.
	Probe *obs.Probe
	// Spans, when set, attaches shadowtap request-lifecycle tracing: every
	// request gets a Span with conservation-exact stall-cause attribution.
	// Nil costs one check per scheduling decision.
	Spans *span.Tracker
	// FullRescan reverts Step to the pre-event-driven scheduler that
	// re-evaluates every bank on every call instead of consulting the
	// per-bank readiness cache. It exists so the scheduler-equivalence
	// regression test can prove the cached path bit-identical; simulation
	// entry points expose it for the same purpose only.
	FullRescan bool
}

type bankCtl struct {
	queue   []*Request
	open    bool
	openRow int // physical (post-MC-translation) row that is open
	raa     int
	// actFor, in closed-page mode, is the single request the current
	// activation was issued for; once served the row closes.
	actFor *Request
	// trr queues victim rows awaiting an MC-side target-row-refresh
	// (an ACT-PRE cycle issued by the controller itself).
	trr []int
	// trrOpen marks the open row as a TRR activation: no column traffic,
	// precharge as soon as tRAS allows.
	trrOpen bool
	// colsSinceAct / actSeen track the column-per-activation streak for the
	// row-buffer locality histogram.
	colsSinceAct int
	actSeen      bool
}

// Controller drives one rank.
type Controller struct {
	dev *dram.Device
	p   *timing.Params
	geo dram.Geometry
	opt Options
	mc  mitigate.MCSide

	banks []bankCtl

	// Channel-global timing state.
	cmdBusFreeAt timing.Tick
	colGlobalAt  timing.Tick    // next column cmd (tCCD_S)
	colGroupAt   []timing.Tick  // per bank group (tCCD_L)
	rrdGlobalAt  timing.Tick    // next ACT (tRRD_S)
	rrdGroupAt   []timing.Tick  // per bank group (tRRD_L)
	actWindow    [4]timing.Tick // tFAW ring
	actWindowIdx int
	busFreeAt    timing.Tick // data bus
	blockedUntil timing.Tick // RRS swap channel blocking

	// Event-driven scheduling state (nil ready == FullRescan). ready caches
	// each non-volatile bank's earliest possibly-actionable tick — always a
	// lower bound on the bank's true next-action time, so stale entries cost
	// an extra (behavior-neutral) wakeup, never a missed command. Volatile
	// banks are kept out of the cache and re-evaluated every Step: banks
	// whose binding ACT constraint is the MC-side throttle (BlockHammer's
	// allowed-at can move EARLIER at an epoch rotation, with no bank event
	// to invalidate on) and, when spans are attached, every non-idle bank
	// (a global event can change a waiting bank's blame cause, and the
	// cause timeline must move at the same Step the full rescan would move
	// it). scan/bankNext are per-Step scratch.
	ready     *minq.Queue
	scan      []int
	bankNext  []timing.Tick
	vol       []bool
	volCount  int // number of banks currently in the volatile set
	throttled []bool

	nextRefreshAt timing.Tick
	refreshDrain  bool
	refreshBank   int // next REFsb target when SameBankRefresh is on

	// shadowscope instruments, resolved once at construction; all are
	// nil-inert when no probe is attached.
	probe *obs.Probe
	// emitEvents caches Probe.EventsOn at construction: metrics-only runs
	// (the always-on flight-less config) skip per-command Event building.
	emitEvents  bool
	latHist     *obs.Histogram
	depthHist   *obs.Histogram
	localHist   *obs.Histogram
	actSeries   *obs.Series
	rfmSeries   *obs.Series
	blockSeries *obs.Series

	// shadowtap span tracker (nil-inert) and the blame the installed
	// mitigator claims for RFM windows and RAA-saturation holds (SHADOW
	// shuffles inside them, TRR-backed schemes refresh).
	spans    *span.Tracker
	rfmCause span.Cause

	Stats Stats
}

// New builds a controller for the device.
func New(dev *dram.Device, opt Options) *Controller {
	if opt.QueueCap == 0 {
		opt.QueueCap = 64
	}
	mc := opt.MCSide
	if mc == nil {
		mc = mitigate.NopMCSide{}
	}
	groups := (dev.Banks() + 3) / 4
	c := &Controller{
		dev:           dev,
		p:             dev.Params(),
		geo:           dev.Geometry(),
		opt:           opt,
		mc:            mc,
		banks:         make([]bankCtl, dev.Banks()),
		colGroupAt:    make([]timing.Tick, groups),
		rrdGroupAt:    make([]timing.Tick, groups),
		nextRefreshAt: dev.Params().REFI,
	}
	if !opt.FullRescan {
		n := dev.Banks()
		c.ready = minq.New(n)
		c.scan = make([]int, 0, n)
		c.bankNext = make([]timing.Tick, n)
		c.vol = make([]bool, n)
		c.throttled = make([]bool, n)
		for i := 0; i < n; i++ {
			c.ready.Set(i, 0) // first Step classifies every bank
		}
		dev.SetBusyNotifier(c.liftBusy)
	}
	if opt.SameBankRefresh {
		if dev.Params().RFCsb <= 0 {
			panic("memctrl: SameBankRefresh requires a parameter set with tRFCsb")
		}
		// Per-bank refresh paces banks*x faster at 1/banks the work each.
		c.nextRefreshAt = dev.Params().REFI / timing.Tick(dev.Banks())
	}
	for i := range c.actWindow {
		c.actWindow[i] = -dev.Params().FAW
	}
	c.probe = opt.Probe
	c.emitEvents = c.probe.EventsOn()
	c.latHist = c.probe.Histogram("mc/read_latency_ticks")
	c.depthHist = c.probe.Histogram("mc/queue_depth")
	c.localHist = c.probe.Histogram("mc/row_hits_per_act")
	c.actSeries = c.probe.Series("mc/acts")
	c.rfmSeries = c.probe.Series("mc/rfms")
	c.blockSeries = c.probe.Series("mc/blocked_ticks")
	c.spans = opt.Spans
	c.rfmCause = span.CauseRFM
	if a, ok := dev.Mitigator().(span.Attributor); ok {
		c.rfmCause = a.RFMBlame()
	}
	return c
}

// Device returns the attached rank.
func (c *Controller) Device() *dram.Device { return c.dev }

// bankGroup maps a bank to its bank group (4 banks per group, per DDR4/5).
func bankGroup(bank int) int { return bank / 4 }

// Enqueue adds a request. It reports false when the bank queue is full (the
// core must retry later).
func (c *Controller) Enqueue(r *Request) bool {
	if r.Bank < 0 || r.Bank >= len(c.banks) {
		panic(fmt.Sprintf("memctrl: bank %d out of range", r.Bank))
	}
	b := &c.banks[r.Bank]
	if len(b.queue) >= c.opt.QueueCap {
		return false
	}
	b.queue = append(b.queue, r) //shadowvet:ignore allocflow -- bank queue bounded by QueueCap; capacity is retained across request recycling, so growth stops after warmup
	c.dirty(r.Bank, r.Arrive)
	c.depthHist.Observe(int64(len(b.queue)))
	if c.spans != nil {
		r.Span = c.spans.Start(r.Core, r.Bank, r.Row, r.Write, r.Arrive)
	}
	return true
}

// QueuedRequests returns the total number of requests waiting.
func (c *Controller) QueuedRequests() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].queue)
	}
	return n
}

// Pending reports whether any request is queued.
func (c *Controller) Pending() bool { return c.QueuedRequests() > 0 }

// Step attempts to issue one command at time `now` and returns the earliest
// time at which the controller could act next. When the return value equals
// now, call Step again (more work is possible at this instant).
func (c *Controller) Step(now timing.Tick) timing.Tick {
	if now < c.blockedUntil {
		return c.blockedUntil
	}
	if now < c.cmdBusFreeAt {
		return c.cmdBusFreeAt
	}

	next := timing.Forever

	// 1. Refresh has top priority once due: drain open banks, then REF.
	if now >= c.nextRefreshAt {
		c.refreshDrain = true
	} else {
		next = minTick(next, c.nextRefreshAt)
	}
	if c.refreshDrain {
		// Every bank's ACT progress is held by the drain; column traffic that
		// still completes below flips its bank back to service at the same
		// instant (zero-length segment), keeping attribution exact.
		c.spans.SetAllCauses(now, span.CauseRefresh)
		if t, issued := c.tryRefresh(now); issued {
			return c.afterCmd(now)
		} else if t != timing.Forever {
			next = minTick(next, t)
		}
		if c.refreshDrain {
			// While draining, do not start new row activity; allow column
			// traffic to finish below only for open rows.
			if t := c.tryDrainColumns(now); t == now {
				return c.afterCmd(now)
			} else {
				return minTick(next, t)
			}
		}
	}

	if c.ready == nil {
		return c.stepRescan(now, next)
	}
	return c.stepEvent(now, next)
}

// stepRescan is the pre-event-driven scheduler: phases 2-4 re-evaluate every
// bank on every Step. Kept verbatim behind Options.FullRescan as the
// reference the equivalence test measures the cached path against.
func (c *Controller) stepRescan(now, next timing.Tick) timing.Tick {
	// 2. Per-bank RFM when the RAA counter demands it.
	for i := range c.banks {
		t, issued := c.tryRFM(now, i)
		if issued {
			return c.afterCmd(now)
		}
		next = minTick(next, t)
	}

	// 3. MC-side target-row-refreshes (Graphene, PARA).
	for i := range c.banks {
		t, issued := c.tryTRR(now, i)
		if issued {
			return c.afterCmd(now)
		}
		next = minTick(next, t)
	}

	// 4. Demand traffic, FR-FCFS.
	for i := range c.banks {
		t, issued := c.tryDemand(now, i)
		if issued {
			return c.afterCmd(now)
		}
		next = minTick(next, t)
	}
	return next
}

// stepEvent runs phases 2-4 over only the banks that could act: the volatile
// set plus every bank whose cached readiness has arrived. The scan set is
// sorted ascending so the (phase, bank) consultation order — and therefore
// which command issues when several are legal at the same tick — matches
// stepRescan exactly.
func (c *Controller) stepEvent(now, next timing.Tick) timing.Tick {
	// Fast path: with no volatile banks and no cached readiness due, the scan
	// set below would be empty and every phase loop a no-op — return the
	// cached minimum directly. This is exactly what the slow path computes for
	// an empty scan, at O(1) instead of O(banks).
	if c.volCount == 0 {
		if _, key, ok := c.ready.Min(); !ok || key > now {
			if ok {
				next = minTick(next, key)
			}
			return next
		}
	}
	// Select the scan set in one index-order pass: volatile banks plus every
	// bank whose cached readiness has arrived (Key is O(1)). Selected banks
	// stay in the queue while they are evaluated — re-keying in place costs
	// one heap sift instead of the two a pop/re-insert pair would — and the
	// index order matches stepRescan's consultation order by construction,
	// with no sort.
	scan := c.scan[:0]
	for i := range c.banks {
		if c.vol[i] {
			scan = append(scan, i) //shadowvet:ignore allocflow -- c.scan is reused via [:0]; capacity tops out at the bank count
		} else if key, ok := c.ready.Key(i); ok && key <= now {
			scan = append(scan, i) //shadowvet:ignore allocflow -- c.scan is reused via [:0]; capacity tops out at the bank count
		}
	}
	c.scan = scan
	for _, i := range scan {
		c.bankNext[i] = timing.Forever
		c.throttled[i] = false
	}
	for _, i := range scan {
		t, issued := c.tryRFM(now, i)
		if issued {
			return c.issuedDuringScan(now, 0)
		}
		c.bankNext[i] = minTick(c.bankNext[i], t)
	}
	for _, i := range scan {
		t, issued := c.tryTRR(now, i)
		if issued {
			return c.issuedDuringScan(now, 0)
		}
		c.bankNext[i] = minTick(c.bankNext[i], t)
	}
	for s, i := range scan {
		t, issued := c.tryDemand(now, i)
		if issued {
			// Demand is the last phase: banks earlier in the scan are fully
			// evaluated and keep their computed readiness.
			return c.issuedDuringScan(now, s)
		}
		c.bankNext[i] = minTick(c.bankNext[i], t)
	}
	// Nothing issued: re-cache each scanned bank (every non-issue time from
	// the phases is strictly greater than now, so the Step loop cannot spin)
	// or keep it in the volatile set if it must be re-evaluated every Step.
	for _, i := range scan {
		c.recacheBank(i)
		if c.vol[i] {
			next = minTick(next, c.bankNext[i])
		}
	}
	if _, key, ok := c.ready.Min(); ok {
		next = minTick(next, key)
	}
	return next
}

// recacheBank files bank i after a full (all-phase, non-issuing) evaluation:
// into the volatile set if it must be re-evaluated every Step, else into the
// readiness queue under its computed next-action time.
func (c *Controller) recacheBank(i int) {
	c.updateVolatility(i)
	if !c.vol[i] {
		c.ready.Set(i, c.bankNext[i])
	}
}

// issuedDuringScan finishes a Step that issued a command mid-scan. Banks
// before position keep were evaluated by every phase, and their computed
// times stay valid lower bounds across the issued command — a command only
// adds constraints, so it can raise but never lower another bank's
// next-action time — so they re-cache at their computed readiness. Banks the
// evaluation never completed for (everything from keep on, plus every bank
// when the issue happened in the RFM or TRR phase) need no re-arming at all:
// they still sit in the queue under their collected keys (<= now), so the
// next Step collects and re-evaluates them — their partial minima are never
// trusted.
func (c *Controller) issuedDuringScan(now timing.Tick, keep int) timing.Tick {
	for _, i := range c.scan[:keep] {
		if !c.vol[i] {
			c.recacheBank(i)
		}
	}
	return c.afterCmd(now)
}

// Volatile reports whether this channel must be stepped at every runner
// wakeup: full-rescan mode (the per-Step evaluation itself is the oracle) or
// any bank in the volatile set (throttle-bound ACTs and span-tracked non-idle
// banks are re-evaluated every Step, so the set of Step instants is
// observable). The event wheel clamps its jump to the per-tick cadence while
// any channel is volatile — see sim's wheel scheduler and DESIGN.md §10.
func (c *Controller) Volatile() bool {
	return c.ready == nil || c.volCount > 0
}

// NextReadyAt returns a sound lower bound on the next instant this channel
// can issue a command or otherwise change observable state, assuming no new
// requests arrive: the earliest of the refresh deadline, the cached per-bank
// readiness minimum, the device's busy-window deadlines, and the mitigation
// timers on both sides of the channel — gated by the command-bus and
// swap-blocking windows, before which nothing can issue. Volatile channels
// return now (the caller must keep stepping them); a bound <= now likewise
// means "due now" (e.g. mid refresh drain). Between now and the returned
// bound every Step is a pure no-op, so a wheel that skips those Steps is
// bit-identical to the per-tick scheduler.
func (c *Controller) NextReadyAt(now timing.Tick) timing.Tick {
	if c.Volatile() {
		return now
	}
	next := c.nextRefreshAt
	if _, key, ok := c.ready.Min(); ok {
		next = minTick(next, key)
	}
	next = minTick(next, c.dev.NextDeadline(now))
	next = minTick(next, c.mc.NextEventAt(now))
	next = maxTick(next, c.cmdBusFreeAt)
	return maxTick(next, c.blockedUntil)
}

// dirty marks a bank's cached readiness stale as of time at. Called on every
// event that can LOWER the bank's earliest-actionable time: a request enqueue
// and any command issued on the bank (ACT/PRE/RD/WR/RFM/REFsb — command issue
// can queue TRR work, change the open row, or drain RAA). Events that only
// RAISE times (other banks' ACT/column spacing, all-bank REF, swap blocking)
// need no invalidation: the cached lower bound stays valid and costs at most
// one extra behavior-neutral wakeup.
//
// The key is set to the event time rather than zero: every future Step runs
// at now >= at, so the bank is still collected on the very next evaluation,
// and the shorter sift distance keeps the heap cheap under bursts.
func (c *Controller) dirty(bank int, at timing.Tick) {
	if c.ready == nil || bank < 0 || c.vol[bank] {
		return
	}
	// Lower-only: a key already at or below the event time stays put (it is
	// collected at the next Step either way), skipping the sift entirely.
	if key, ok := c.ready.Key(bank); !ok || key > at {
		c.ready.Set(bank, at)
	}
}

// liftBusy raises a bank's cached readiness to the end of a device-side
// busy window (REF/REFsb/RFM): the bank is closed for the whole window, so
// no command on it can be legal earlier and the lift cannot skip work.
func (c *Controller) liftBusy(bank int, until timing.Tick) {
	if c.ready == nil || c.vol[bank] {
		return
	}
	if key, ok := c.ready.Key(bank); ok && key < until {
		c.ready.Set(bank, until)
	}
}

// updateVolatility moves bank i between the cached set and the volatile set
// after a full (non-issuing) evaluation. A bank is volatile while its ACT is
// throttle-bound (the policy's allowed-at can move earlier with no bank
// event) or, under span tracking, while it has any pending work (a global
// event can change its blame cause, and the timeline must move at the same
// Step the full rescan would move it).
func (c *Controller) updateVolatility(i int) {
	wantVol := c.throttled[i] || (c.spans != nil && !c.bankIdle(i))
	if wantVol == c.vol[i] {
		return
	}
	c.vol[i] = wantVol
	if wantVol {
		c.volCount++
		c.ready.Remove(i)
	} else {
		c.volCount--
	}
}

// bankIdle reports that bank i can neither issue a command nor produce a
// span cause segment: nothing queued, no TRR work, no TRR or closed-page row
// to close, and no pending RFM obligation. Skipping idle banks is exact —
// every scheduling phase returns Forever for them without side effects.
func (c *Controller) bankIdle(i int) bool {
	b := &c.banks[i]
	return len(b.queue) == 0 && len(b.trr) == 0 && !b.trrOpen &&
		!(c.opt.ClosedPage && b.open) &&
		!(c.p.RAAIMT > 0 && b.raa >= c.p.RAAIMT)
}

// tryTRR advances a bank's pending MC-side target-row-refreshes: close the
// bank if needed, activate the victim (restoring its charge), and precharge
// again. TRR activations count toward the RAA counter like any other ACT.
func (c *Controller) tryTRR(now timing.Tick, i int) (timing.Tick, bool) {
	b := &c.banks[i]
	if b.trrOpen {
		// Precharge the TRR activation as soon as legal.
		t := c.dev.Bank(i).NextPREReady()
		if now < t {
			c.spans.SetCause(i, now, span.CauseTRR)
			return t, false
		}
		if err := c.dev.Precharge(i, now); err != nil {
			panic(fmt.Sprintf("memctrl: TRR PRE: %v", err))
		}
		b.open = false
		b.trrOpen = false
		c.Stats.Pres++
		c.log(CmdPRE, i, -1, now)
		c.spans.SetCause(i, now, span.CauseTRR)
		return now, true
	}
	if len(b.trr) == 0 {
		return timing.Forever, false
	}
	if b.open {
		t := c.dev.Bank(i).NextPREReady()
		if now < t {
			c.spans.SetCause(i, now, span.CauseTRR)
			return t, false
		}
		if err := c.dev.Precharge(i, now); err != nil {
			panic(fmt.Sprintf("memctrl: TRR drain PRE: %v", err))
		}
		b.open = false
		c.Stats.Pres++
		c.log(CmdPRE, i, -1, now)
		c.spans.SetCause(i, now, span.CauseTRR)
		return now, true
	}
	row := b.trr[0]
	t, _ := c.actReadyAt(now, i, row)
	if t == timing.Forever {
		return timing.Forever, false // RAA saturated; RFM first
	}
	if now < t {
		// Pending TRR work owns the bank regardless of which JEDEC spacing
		// delays its ACT: the queued demand requests wait on the TRR.
		c.spans.SetCause(i, now, span.CauseTRR)
		return t, false
	}
	if err := c.dev.Activate(i, row, now); err != nil {
		panic(fmt.Sprintf("memctrl: TRR ACT: %v", err))
	}
	c.log(CmdACT, i, row, now)
	if c.emitEvents {
		c.probe.Emit(obs.Event{At: now, Kind: obs.KindTRR, Bank: i, Row: row})
	}
	b.trr = b.trr[1:]
	b.open = true
	b.openRow = row
	b.trrOpen = true
	b.actFor = nil
	b.raa++
	c.Stats.Acts++
	c.Stats.TRRs++
	c.noteACT(now, i)
	c.spans.SetCause(i, now, span.CauseTRR)
	return now, true
}

// afterCmd accounts for command-bus occupancy and returns the next instant.
func (c *Controller) afterCmd(now timing.Tick) timing.Tick {
	c.cmdBusFreeAt = now + c.p.TCK
	return c.cmdBusFreeAt
}

// log reports an issued command to the OnCommand hook and the probe. Every
// issued command is also a cache-invalidation point for its bank.
func (c *Controller) log(kind CmdKind, bank, row int, at timing.Tick) {
	c.dirty(bank, at)
	if c.opt.OnCommand != nil {
		c.opt.OnCommand(Cmd{Kind: kind, Bank: bank, Row: row, At: at}) //shadowvet:ignore allocflow -- optional OnCommand hook; nil in the measured zero-alloc configurations
	}
	if c.probe == nil {
		return
	}
	var k obs.Kind
	var dur timing.Tick
	switch kind {
	case CmdACT:
		k, dur = obs.KindACT, c.p.RCD
		c.actSeries.Add(at, 1)
	case CmdPRE:
		k, dur = obs.KindPRE, c.p.RP
	case CmdRD:
		k, dur = obs.KindRD, c.p.AA+c.p.BL
	case CmdWR:
		k, dur = obs.KindWR, c.p.WL+c.p.BL
	case CmdREF:
		k, dur = obs.KindREF, c.p.RFC
		if bank >= 0 {
			dur = c.p.RFCsb
		}
	case CmdRFM:
		k, dur = obs.KindRFM, c.p.RFM
		c.rfmSeries.Add(at, 1)
	}
	if !c.emitEvents {
		return
	}
	c.probe.Emit(obs.Event{At: at, Dur: dur, Kind: k, Bank: bank, Row: row})
}

// tryRefresh advances the refresh drain: precharge open banks, then issue
// REF (or a single-bank REFsb in same-bank mode). Returns
// (nextTime, issuedCommand).
func (c *Controller) tryRefresh(now timing.Tick) (timing.Tick, bool) {
	if c.opt.SameBankRefresh {
		return c.trySameBankRefresh(now)
	}
	next := timing.Forever
	allClosed := true
	for i := range c.banks {
		b := &c.banks[i]
		if !b.open {
			continue
		}
		allClosed = false
		ready := c.dev.Bank(i).NextPREReady()
		if now >= ready {
			if err := c.dev.Precharge(i, now); err != nil {
				panic(fmt.Sprintf("memctrl: drain PRE: %v", err))
			}
			b.open = false
			c.Stats.Pres++
			c.log(CmdPRE, i, -1, now)
			return now, true
		}
		next = minTick(next, ready)
	}
	if !allClosed {
		return next, false
	}
	// All banks closed: REF when every bank is out of its busy window.
	ready := now
	for i := 0; i < c.dev.Banks(); i++ {
		ready = maxTick(ready, c.dev.Bank(i).NextACTReady())
	}
	if now < ready {
		return ready, false
	}
	if err := c.dev.Refresh(now); err != nil {
		panic(fmt.Sprintf("memctrl: REF: %v", err))
	}
	c.Stats.Refs++
	c.log(CmdREF, -1, -1, now)
	c.nextRefreshAt += c.p.REFI
	c.refreshDrain = false
	return now, true
}

// trySameBankRefresh refreshes only the rotation's target bank (REFsb).
func (c *Controller) trySameBankRefresh(now timing.Tick) (timing.Tick, bool) {
	i := c.refreshBank
	b := &c.banks[i]
	if b.open {
		ready := c.dev.Bank(i).NextPREReady()
		if now < ready {
			return ready, false
		}
		if err := c.dev.Precharge(i, now); err != nil {
			panic(fmt.Sprintf("memctrl: REFsb PRE: %v", err))
		}
		b.open = false
		b.trrOpen = false
		c.Stats.Pres++
		c.log(CmdPRE, i, -1, now)
		return now, true
	}
	if ready := c.dev.Bank(i).NextACTReady(); now < ready {
		return ready, false
	}
	if err := c.dev.RefreshBank(i, now); err != nil {
		panic(fmt.Sprintf("memctrl: REFsb: %v", err))
	}
	c.Stats.Refs++
	c.log(CmdREF, i, -1, now)
	c.refreshBank = (c.refreshBank + 1) % len(c.banks)
	c.nextRefreshAt += c.p.REFI / timing.Tick(len(c.banks))
	c.refreshDrain = false
	return now, true
}

// tryDrainColumns lets already-open rows finish pending hits during a
// refresh drain so PRE becomes legal sooner. Returns now if it issued.
func (c *Controller) tryDrainColumns(now timing.Tick) timing.Tick {
	next := timing.Forever
	for i := range c.banks {
		b := &c.banks[i]
		if !b.open {
			continue
		}
		req, idx := c.oldestHit(i)
		if req == nil {
			// No hits: PRE handled by tryRefresh next round.
			continue
		}
		// Cause stays CauseRefresh (set by Step's drain block): the drain is
		// why only column traffic may proceed.
		t, _ := c.colReadyAt(now, i)
		if now >= t {
			c.issueColumn(now, i, req, idx)
			return now
		}
		next = minTick(next, t)
	}
	return next
}

// tryRFM issues a pending RFM for bank i. Per JEDEC the MC may defer the RFM
// while the RAA counter stays below RAAMMT, so we issue opportunistically
// when the bank is idle and only force it (stalling ACTs) when the counter
// could overrun within another interval. Returns (nextTime, issued).
func (c *Controller) tryRFM(now timing.Tick, i int) (timing.Tick, bool) {
	b := &c.banks[i]
	if c.p.RAAIMT <= 0 || b.raa < c.p.RAAIMT {
		return timing.Forever, false
	}
	urgent := b.raa+c.p.RAAIMT > c.p.RAAMMT
	if !urgent && len(b.queue) > 0 {
		// Defer: demand traffic continues; a later Step retries when the
		// queue drains or the counter grows urgent.
		return timing.Forever, false
	}
	// Section VIII filter: skip the RFM when no row is hot.
	if c.opt.RFMFilter != nil && !c.opt.RFMFilter.ShouldRFM(i, now) {
		b.raa -= c.p.RAAIMT
		c.dev.Bank(i).RAA = b.raa
		c.Stats.SkippedRFMs++
		return timing.Forever, false
	}
	if b.open {
		ready := c.dev.Bank(i).NextPREReady()
		if now < ready {
			c.spans.SetCause(i, now, c.rfmCause)
			return ready, false
		}
		if err := c.dev.Precharge(i, now); err != nil {
			panic(fmt.Sprintf("memctrl: RFM PRE: %v", err))
		}
		b.open = false
		c.Stats.Pres++
		c.log(CmdPRE, i, -1, now)
		c.spans.SetCause(i, now, c.rfmCause)
		return now, true
	}
	ready := c.dev.Bank(i).NextACTReady()
	if now < ready {
		c.spans.SetCause(i, now, c.rfmCause)
		return ready, false
	}
	if err := c.dev.RFM(i, now); err != nil {
		panic(fmt.Sprintf("memctrl: RFM: %v", err))
	}
	b.raa -= c.p.RAAIMT
	c.Stats.RFMs++
	c.log(CmdRFM, i, -1, now)
	return now, true
}

// oldestHit returns the oldest queued request hitting the open row of bank i.
func (c *Controller) oldestHit(i int) (*Request, int) {
	b := &c.banks[i]
	for idx, r := range b.queue {
		if c.mc.TranslateRow(i, r.Row) == b.openRow {
			return r, idx
		}
	}
	return nil, -1
}

// colReadyAt returns the earliest legal column-command time for bank i and
// the stall cause of the limiting constraint (CauseService when the bank's
// own tRCD is the limit — the bank is working for the request).
func (c *Controller) colReadyAt(now timing.Tick, i int) (timing.Tick, span.Cause) {
	cause := span.CauseService
	t := now
	if r := c.dev.Bank(i).NextRDReady(); r > t {
		t = r // the bank's own tRCD: service, nobody to blame
	}
	if c.colGlobalAt > t {
		t = c.colGlobalAt
		cause = span.CauseBus
	}
	if r := c.colGroupAt[bankGroup(i)]; r > t {
		t = r
		cause = span.CauseBus
	}
	// Data must find the bus free: RD data occupies [t+AA, t+AA+BL].
	if c.busFreeAt > t+c.p.AA {
		t = c.busFreeAt - c.p.AA
		cause = span.CauseBus
	}
	return t, cause
}

// issueColumn sends the RD/WR for req (at queue position idx) on bank i.
func (c *Controller) issueColumn(now timing.Tick, i int, req *Request, idx int) {
	var err error
	if req.Write {
		err = c.dev.Write(i, now)
		req.Done = now + c.p.WL + c.p.BL
		c.busFreeAt = now + c.p.WL + c.p.BL
		c.Stats.Writes++
		c.Stats.CompletedWrites++
	} else {
		err = c.dev.Read(i, now)
		req.Done = now + c.p.AA + c.p.BL
		c.busFreeAt = now + c.p.AA + c.p.BL
		c.Stats.Reads++
		c.Stats.CompletedReads++
		c.Stats.ReadLatency += req.Done - req.Arrive
		c.latHist.Observe(int64(req.Done - req.Arrive))
	}
	if err != nil {
		panic(fmt.Sprintf("memctrl: column: %v", err))
	}
	if req.Write {
		c.log(CmdWR, i, -1, now)
	} else {
		c.log(CmdRD, i, -1, now)
	}
	c.colGlobalAt = now + c.p.CCDS
	c.colGroupAt[bankGroup(i)] = now + c.p.CCDL
	b := &c.banks[i]
	b.colsSinceAct++
	b.queue = append(b.queue[:idx], b.queue[idx+1:]...) //shadowvet:ignore allocflow -- in-place deletion: appending into the same backing array never grows it
	if b.actFor == req {
		// Drop the served request's pointer: callers may recycle Request
		// objects, and a stale actFor must never match a reused one.
		b.actFor = nil
	}
	c.spans.Complete(req.Span, now, req.Done)
	c.spans.SetCause(i, now, span.CauseService)
	if c.opt.OnComplete != nil {
		c.opt.OnComplete(req) //shadowvet:ignore allocflow -- OnComplete is wired to the simulator's request-recycle, which the dynamic gate measures at 0 allocs/op
	}
}

// actReadyAt returns the earliest legal ACT time for physical row physRow of
// bank i and the stall cause of the limiting constraint. The mitigation
// policy's ACTAllowedAt is consulted exactly once (it may mutate per-query
// state, e.g. BlockHammer's CBF epoch rotation), so span-tracked runs stay
// bit-identical to untracked ones.
func (c *Controller) actReadyAt(now timing.Tick, i, physRow int) (timing.Tick, span.Cause) {
	cause := span.CauseService
	t := now
	if r := c.dev.Bank(i).NextACTReady(); r > t {
		t = r
		// The bank may be busy with its own tRP/tRAS recovery (generic
		// bank-busy) or inside a pre-attributed REF/RFM window.
		cause = c.spans.BusyCause(i, now, span.CauseBankBusy)
	}
	if c.rrdGlobalAt > t {
		t = c.rrdGlobalAt
		cause = span.CauseActSpacing
	}
	if r := c.rrdGroupAt[bankGroup(i)]; r > t {
		t = r
		cause = span.CauseActSpacing
	}
	if r := c.actWindow[c.actWindowIdx] + c.p.FAW; r > t { // 4 ACTs per tFAW
		t = r
		cause = span.CauseActSpacing
	}
	if r := c.mc.ACTAllowedAt(i, physRow, t); r > t {
		t = r
		cause = span.CauseThrottle
		// A throttle-bound readiness cannot be cached: the policy may allow
		// the ACT earlier after an epoch rotation, with no bank event.
		if c.throttled != nil {
			c.throttled[i] = true
		}
	}
	// Hold ACTs when the RAA counter is at its maximum.
	if c.p.RAAIMT > 0 && c.banks[i].raa >= c.p.RAAMMT {
		return timing.Forever, c.rfmCause // an RFM will drain it first
	}
	return t, cause
}

// tryDemand schedules FR-FCFS work for bank i: column hit first, else PRE on
// conflict, else ACT for the oldest request.
func (c *Controller) tryDemand(now timing.Tick, i int) (timing.Tick, bool) {
	b := &c.banks[i]
	if len(b.queue) == 0 {
		// Closed-page policy: shut the row once nothing is queued for it.
		if c.opt.ClosedPage && b.open {
			t := c.dev.Bank(i).NextPREReady()
			if now >= t {
				if err := c.dev.Precharge(i, now); err != nil {
					panic(fmt.Sprintf("memctrl: closed-page PRE: %v", err))
				}
				b.open = false
				c.Stats.Pres++
				c.log(CmdPRE, i, -1, now)
				return now, true
			}
			return t, false
		}
		return timing.Forever, false
	}
	if b.open {
		req, idx := c.oldestHit(i)
		if c.opt.ClosedPage {
			// Only the request this activation was for may use the row.
			if b.actFor == nil {
				req = nil
			} else if req != b.actFor {
				req = nil
				for j, r := range b.queue {
					if r == b.actFor {
						req, idx = r, j
						break
					}
				}
			}
		}
		if req != nil {
			t, cause := c.colReadyAt(now, i)
			if now >= t {
				if c.opt.ClosedPage {
					b.actFor = nil
				}
				c.issueColumn(now, i, req, idx)
				return now, true
			}
			c.spans.SetCause(i, now, cause)
			return t, false
		}
		// Conflict: precharge. The head request waits on the bank's own
		// recovery — or on an MC-side TRR cycle still holding the row open.
		t := c.dev.Bank(i).NextPREReady()
		if now >= t {
			if err := c.dev.Precharge(i, now); err != nil {
				panic(fmt.Sprintf("memctrl: PRE: %v", err))
			}
			b.open = false
			c.Stats.Pres++
			c.log(CmdPRE, i, -1, now)
			c.spans.SetCause(i, now, span.CauseBankBusy)
			return now, true
		}
		cause := span.CauseBankBusy
		if b.trrOpen {
			cause = span.CauseTRR
		}
		c.spans.SetCause(i, now, cause)
		return t, false
	}
	// Closed: activate for the oldest request.
	req := b.queue[0]
	phys := c.mc.TranslateRow(i, req.Row)
	t, cause := c.actReadyAt(now, i, phys)
	if t == timing.Forever {
		c.spans.SetCause(i, now, cause)
		return timing.Forever, false
	}
	if now < t {
		c.spans.SetCause(i, now, cause)
		return t, false
	}
	if err := c.dev.Activate(i, phys, now); err != nil {
		panic(fmt.Sprintf("memctrl: ACT: %v", err))
	}
	c.log(CmdACT, i, phys, now)
	c.spans.SetCause(i, now, span.CauseService)
	req.Span.NoteACT(now)
	if b.actSeen {
		c.localHist.Observe(int64(b.colsSinceAct))
	}
	b.actSeen = true
	b.colsSinceAct = 0
	b.open = true
	b.openRow = phys
	b.actFor = req
	b.trrOpen = false
	b.raa++
	c.Stats.Acts++
	c.Stats.RowMisses++ // the head request needed this ACT
	c.noteACT(now, i)
	if c.opt.RFMFilter != nil {
		c.opt.RFMFilter.Observe(i, phys, now)
	}
	// MC-side mitigation observation; may demand work.
	if act := c.mc.OnACT(i, phys, now); act != nil {
		if act.Swap != nil {
			c.performSwap(act.Swap, now)
		}
		if len(act.TRR) > 0 {
			b.trr = append(b.trr, act.TRR...) //shadowvet:ignore allocflow -- TRR work queue; bounded per-ACT fanout reusing capacity after warmup
		}
	}
	return now, true
}

// noteACT records the rank-global ACT spacing state (tRRD, tFAW, command
// bus) shared by demand and TRR activations.
func (c *Controller) noteACT(now timing.Tick, i int) {
	c.rrdGlobalAt = now + c.p.RRDS
	c.rrdGroupAt[bankGroup(i)] = now + c.p.RRDL
	c.actWindow[c.actWindowIdx] = now
	c.actWindowIdx = (c.actWindowIdx + 1) % len(c.actWindow)
}

// performSwap executes an RRS swap: after the current ACT completes its
// minimal cycle, the channel is blocked while the MC moves both rows.
func (c *Controller) performSwap(s *mitigate.SwapRequest, now timing.Tick) {
	// Close the bank first (the swap uses its own ACTs internally).
	b := &c.banks[s.Bank]
	preAt := maxTick(c.dev.Bank(s.Bank).NextPREReady(), now)
	if err := c.dev.Precharge(s.Bank, preAt); err != nil {
		panic(fmt.Sprintf("memctrl: swap PRE: %v", err))
	}
	b.open = false
	c.Stats.Pres++
	c.log(CmdPRE, s.Bank, -1, preAt)
	if err := c.dev.SwapRows(s.Bank, s.RowA, s.RowB); err != nil {
		panic(fmt.Sprintf("memctrl: swap: %v", err))
	}
	until := maxTick(preAt, now) + s.BlockFor
	c.blockedUntil = maxTick(c.blockedUntil, until)
	c.Stats.BlockedTime += until - now
	c.Stats.Swaps++
	// The swap blocks the whole channel: every queued request waits on it.
	c.spans.SetAllCauses(now, span.CauseSwap)
	if c.emitEvents {
		c.probe.Emit(obs.Event{
			At: now, Dur: until - now, Kind: obs.KindSwap,
			Bank: s.Bank, Row: s.RowA, Aux: int64(s.RowB),
		})
	}
	c.blockSeries.Add(now, float64(until-now))
}

// RowHitRate returns the fraction of column commands served without an ACT.
func (s *Stats) RowHitRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return 1 - float64(s.RowMisses)/float64(total)
}

// AvgReadLatency returns the mean arrive-to-data latency.
func (s *Stats) AvgReadLatency() timing.Tick {
	if s.CompletedReads == 0 {
		return 0
	}
	return s.ReadLatency / timing.Tick(s.CompletedReads)
}

func minTick(a, b timing.Tick) timing.Tick {
	if a < b {
		return a
	}
	return b
}

func maxTick(a, b timing.Tick) timing.Tick {
	if a > b {
		return a
	}
	return b
}
